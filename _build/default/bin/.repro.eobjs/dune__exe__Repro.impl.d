bin/repro.ml: Arg Batsched_experiments Cmd Cmdliner Filename List Printf Sys Term
