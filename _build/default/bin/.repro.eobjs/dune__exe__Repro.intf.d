bin/repro.mli:
