bin/tgen.ml: Analysis Arg Batsched_numeric Batsched_taskgraph Cmd Cmdliner Generators Graph List Printf Stdlib String Term Textio
