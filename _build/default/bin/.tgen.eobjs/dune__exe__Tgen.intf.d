bin/tgen.mli:
