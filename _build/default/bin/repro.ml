(* repro: regenerate the paper's tables and figures.

   Usage: repro [EXPERIMENT ...] [--list] [-o DIR]
   With no arguments every experiment runs in DESIGN.md order; with
   [-o DIR] each report is also written to DIR/<name>.txt. *)

open Cmdliner

let run_experiments names list_only out_dir =
  if list_only then begin
    List.iter
      (fun (e : Batsched_experiments.Registry.experiment) ->
        Printf.printf "%-10s %s\n" e.name e.title)
      Batsched_experiments.Registry.all;
    Ok ()
  end
  else begin
    let selected =
      match names with
      | [] -> Ok Batsched_experiments.Registry.all
      | _ ->
          let rec resolve acc = function
            | [] -> Ok (List.rev acc)
            | n :: rest -> (
                match Batsched_experiments.Registry.find n with
                | Some e -> resolve (e :: acc) rest
                | None ->
                    Error
                      (Printf.sprintf "unknown experiment %S (try --list)" n))
          in
          resolve [] names
    in
    match selected with
    | Error msg -> Error msg
    | Ok experiments ->
        (match out_dir with
        | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
        | _ -> ());
        List.iter
          (fun (e : Batsched_experiments.Registry.experiment) ->
            let report = e.run () in
            Printf.printf "=== %s: %s ===\n%s\n%!" e.name e.title report;
            match out_dir with
            | Some dir ->
                let oc = open_out (Filename.concat dir (e.name ^ ".txt")) in
                output_string oc report;
                close_out oc
            | None -> ())
          experiments;
        Ok ()
  end

let names_arg =
  let doc = "Experiment ids to run (default: all)." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_arg =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let out_arg =
  let doc = "Also write each report to $(docv)/<name>.txt." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the DATE 2005 paper" in
  let term =
    Term.(
      const (fun names list out ->
          match run_experiments names list out with
          | Ok () -> `Ok ()
          | Error msg -> `Error (false, msg))
      $ names_arg $ list_arg $ out_arg)
  in
  Cmd.v (Cmd.info "repro" ~doc) (Term.ret term)

let () = exit (Cmd.eval cmd)
