bin/battsim.mli:
