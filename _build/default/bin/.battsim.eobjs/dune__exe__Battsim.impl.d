bin/battsim.ml: Arg Batsched_battery Batsched_numeric Cell Cmd Cmdliner Curves Diffusion Format Ideal Kibam Lifetime List Model Periodic Peukert Printf Profile Rakhmatov String Term
