bin/basched.mli:
