(* tgen: generate synthetic task graphs in the textio format.

   Usage: tgen --family fork-join|chain|layered|series-parallel|random
               [--n N | --widths 4,3,4] [--points M] [--seed S] [-o OUT] *)

open Cmdliner
open Batsched_taskgraph

let parse_widths s =
  try Ok (List.map int_of_string (String.split_on_char ',' s))
  with Failure _ -> Error ("bad widths: " ^ s)

let generate family n widths points seed edge_prob out =
  let rng = Batsched_numeric.Rng.create seed in
  let spec = { Generators.default_spec with Generators.num_points = points } in
  let graph =
    match family with
    | "chain" -> Ok (Generators.chain ~rng ~spec ~n)
    | "fork-join" -> (
        match parse_widths widths with
        | Ok ws -> Ok (Generators.fork_join ~rng ~spec ~widths:ws)
        | Error e -> Error e)
    | "layered" ->
        let width = Stdlib.max 1 (n / 4) in
        let layers = Stdlib.max 1 ((n + width - 1) / width) in
        Ok (Generators.layered ~rng ~spec ~layers ~width ~edge_prob)
    | "series-parallel" -> Ok (Generators.series_parallel ~rng ~spec ~size:n)
    | "random" -> Ok (Generators.random_dag ~rng ~spec ~n ~edge_prob)
    | f -> Error ("unknown family: " ^ f)
  in
  match graph with
  | Error msg -> `Error (false, msg)
  | Ok g ->
      let text = Textio.to_string g in
      (match out with
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          let fastest, slowest = Analysis.serial_time_bounds g in
          Printf.printf
            "wrote %s: %d tasks, %d edges; feasible deadlines %.1f .. %.1f min\n"
            path (Graph.num_tasks g) (Graph.num_edges g) fastest slowest
      | None -> print_string text);
      `Ok ()

let family_arg =
  Arg.(value & opt string "fork-join"
       & info [ "family" ] ~docv:"F"
           ~doc:"chain, fork-join, layered, series-parallel or random.")

let n_arg =
  Arg.(value & opt int 12 & info [ "n" ] ~docv:"N" ~doc:"Approximate task count.")

let widths_arg =
  Arg.(value & opt string "4,3,4"
       & info [ "widths" ] ~docv:"W,W,..." ~doc:"Fork-join stage widths.")

let points_arg =
  Arg.(value & opt int 5 & info [ "points" ] ~docv:"M" ~doc:"Design points per task.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")

let edge_prob_arg =
  Arg.(value & opt float 0.4
       & info [ "edge-prob" ] ~docv:"P" ~doc:"Edge probability (layered/random).")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file (default stdout).")

let cmd =
  let doc = "generate synthetic task graphs" in
  Cmd.v (Cmd.info "tgen" ~doc)
    Term.(
      ret
        (const generate $ family_arg $ n_arg $ widths_arg $ points_arg
         $ seed_arg $ edge_prob_arg $ out_arg))

let () = exit (Cmd.eval cmd)
