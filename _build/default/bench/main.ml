(* Benchmark harness.

   Two halves:

   1. Reproductions — regenerate every table and figure of the paper
      (the rows/series the paper reports), via the experiment registry.
      One section per artifact: table1..table4, fig3..fig5, plus the
      supporting curves/ablation/baselines/scaling experiments.

   2. Timing — Bechamel micro/meso benchmarks, one Test.make per paper
      artifact (how long regenerating each costs) plus kernel benches
      (RV sigma evaluation, window sweep, DP knapsack) across sizes.

   Run everything:        dune exec bench/main.exe
   Reproductions only:    dune exec bench/main.exe -- tables
   Timing only:           dune exec bench/main.exe -- timing
   One experiment:        dune exec bench/main.exe -- table3 *)

open Bechamel
open Toolkit

(* --- half 1: reproductions --- *)

let run_reproductions names =
  let selected =
    match names with
    | [] -> Batsched_experiments.Registry.all
    | _ ->
        List.filter_map Batsched_experiments.Registry.find names
  in
  List.iter
    (fun (e : Batsched_experiments.Registry.experiment) ->
      Printf.printf "=== %s: %s ===\n%s\n%!" e.name e.title (e.run ()))
    selected

(* --- half 2: bechamel timing --- *)

let model = Batsched_battery.Rakhmatov.model ()

let g3_profile =
  let g = Batsched_taskgraph.Instances.g3 in
  let cfg = Batsched.Config.make ~deadline:230.0 () in
  let r = Batsched.Iterate.run cfg g in
  Batsched_sched.Schedule.to_profile g r.Batsched.Iterate.schedule

let fork_join n_widths =
  let rng = Batsched_numeric.Rng.create 42 in
  Batsched_taskgraph.Generators.fork_join ~rng
    ~spec:Batsched_taskgraph.Generators.default_spec ~widths:n_widths

let bench_kernels =
  [ Test.make ~name:"rv-sigma/g3-schedule"
      (Staged.stage (fun () ->
           ignore (Batsched_battery.Model.sigma_end model g3_profile)));
    Test.make ~name:"kibam-sigma/g3-schedule"
      (Staged.stage (fun () ->
           ignore
             (Batsched_battery.Model.sigma_end
                (Batsched_battery.Kibam.model ())
                g3_profile)));
    (let params =
       Batsched_battery.Diffusion.make_params ~nodes:32 ~dt:0.1 ~alpha:40375.0
         ~beta:0.273 ()
     in
     let pulse =
       Batsched_battery.Profile.constant ~current:800.0 ~duration:20.0
     in
     Test.make ~name:"pde-sigma/20min-pulse"
       (Staged.stage (fun () ->
            ignore (Batsched_battery.Diffusion.sigma ~params pulse ~at:20.0))));
    (let g = Batsched_taskgraph.Instances.g3 in
     let pes = Batsched_multiproc.Mschedule.Pe.uniform 2 in
     Test.make ~name:"multiproc/battery-aware-2pe"
       (Staged.stage (fun () ->
            ignore
              (Batsched_multiproc.Mheuristics.battery_aware ~model g ~pes
                 ~deadline:150.0))));
    Test.make ~name:"rv-kernel/10-terms"
      (Staged.stage (fun () ->
           ignore (Batsched_numeric.Series.kernel ~beta:0.273 5.0 25.0)));
    (let g = Batsched_taskgraph.Instances.g3 in
     Test.make ~name:"dp-knapsack/g3-d230"
       (Staged.stage (fun () ->
            ignore
              (Batsched_baselines.Dp_energy.select_design_points g
                 ~deadline:230.0))));
    (let g = Batsched_taskgraph.Instances.g3 in
     let cfg = Batsched.Config.make ~deadline:230.0 () in
     let seq = Batsched_sched.Priorities.sequence_dec_energy g in
     Test.make ~name:"choose-dp/g3-window0"
       (Staged.stage (fun () ->
            ignore
              (Batsched.Choose.choose_design_points cfg g ~sequence:seq
                 ~window_start:0)))) ]

(* one Test.make per paper artifact: the cost of regenerating it *)
let bench_artifacts =
  [ (let g = Batsched_taskgraph.Instances.g3 in
     Test.make ~name:"table2+3/iterate-g3"
       (Staged.stage (fun () ->
            let cfg = Batsched.Config.make ~deadline:230.0 () in
            ignore (Batsched.Iterate.run cfg g))));
    (let g = Batsched_taskgraph.Instances.g2 in
     Test.make ~name:"table4/g2-three-deadlines"
       (Staged.stage (fun () ->
            List.iter
              (fun deadline ->
                let cfg = Batsched.Config.make ~deadline () in
                ignore (Batsched.Iterate.run cfg g);
                ignore (Batsched_baselines.Dp_energy.run ~model g ~deadline))
              Batsched_taskgraph.Instances.g2_deadlines)));
    Test.make ~name:"fig5/g2-dot"
      (Staged.stage (fun () ->
           ignore
             (Batsched_taskgraph.Textio.to_dot Batsched_taskgraph.Instances.g2)));
    Test.make ~name:"curves/rate-capacity"
      (Staged.stage (fun () ->
           ignore
             (Batsched_battery.Curves.rate_capacity
                ~cell:Batsched_battery.Cell.itsy
                ~currents:[ 100.0; 400.0; 1600.0 ])));
    Test.make ~name:"table1/instance-echo"
      (Staged.stage (fun () ->
           ignore
             (Batsched_taskgraph.Textio.to_string
                Batsched_taskgraph.Instances.g3)));
    Test.make ~name:"fig3/window-masks"
      (Staged.stage (fun () ->
           List.iter
             (fun ws ->
               ignore
                 (Batsched.Window.mask Batsched_taskgraph.Instances.g2
                    ~window_start:ws))
             [ 0; 1; 2 ]));
    (let g =
       let t id =
         Batsched_taskgraph.Task.of_pairs ~id
           ~name:(Printf.sprintf "T%d" (id + 1))
           [ (800.0, 2.0); (400.0, 4.0); (200.0, 6.0); (100.0, 8.0) ]
       in
       Batsched_taskgraph.Graph.make ~label:"fig4" ~edges:[] (List.init 5 t)
     in
     let a = Batsched_sched.Assignment.of_list g [ 1; 3; 1; 0; 3 ] in
     Test.make ~name:"fig4/dpf-worked-example"
       (Staged.stage (fun () ->
            ignore
              (Batsched_sched.Metrics.dpf_static g a ~free:[ 0; 1 ]
                 ~window_start:0))));
    (let g = Batsched_taskgraph.Instances.g2 in
     Test.make ~name:"ablation/one-knockout-g2"
       (Staged.stage (fun () ->
            let weights =
              { Batsched.Config.paper_weights with Batsched.Config.dpf = 0.0 }
            in
            let cfg = Batsched.Config.make ~weights ~deadline:75.0 () in
            ignore (Batsched.Iterate.run cfg g))));
    (let g = Batsched_taskgraph.Instances.g3 in
     Test.make ~name:"mechanisms/full-window-only-g3"
       (Staged.stage (fun () ->
            let cfg =
              Batsched.Config.make ~full_window_only:true ~deadline:230.0 ()
            in
            ignore (Batsched.Iterate.run cfg g))));
    (let g = Batsched_taskgraph.Instances.g3 in
     Test.make ~name:"beta/one-point"
       (Staged.stage (fun () ->
            let model = Batsched_battery.Rakhmatov.model ~beta:0.7 () in
            let cfg = Batsched.Config.make ~model ~deadline:230.0 () in
            ignore (Batsched.Iterate.run cfg g))));
    (let cycle = Batsched_battery.Profile.constant ~current:800.0 ~duration:20.0 in
     Test.make ~name:"endurance/cycles-to-death"
       (Staged.stage (fun () ->
            ignore
              (Batsched_battery.Periodic.cycles_to_death ~max_cycles:20 ~model
                 ~alpha:65000.0 ~period:40.0 cycle)))) ]

let bench_scaling =
  List.map
    (fun (label, widths) ->
      let g = fork_join widths in
      let deadline =
        Batsched_taskgraph.Generators.feasible_deadline g ~slack:0.6
      in
      let cfg = Batsched.Config.make ~deadline () in
      Test.make ~name:("scaling/iterate-" ^ label)
        (Staged.stage (fun () -> ignore (Batsched.Iterate.run cfg g))))
    [ ("n8", [ 3; 2 ]); ("n16", [ 5; 4; 4 ]); ("n26", [ 6; 6; 6; 4 ]) ]

let run_timing () =
  let tests = bench_kernels @ bench_artifacts @ bench_scaling in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  (* analyze with ordinary least squares against run count *)
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let grouped = Test.make_grouped ~name:"batsched" tests in
  let results = Benchmark.all cfg instances grouped in
  let analysis = Analyze.all ols Instance.monotonic_clock results in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> e
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> r
        | None -> Float.nan
      in
      rows := (name, estimate, r2) :: !rows)
    analysis;
  Printf.printf "%-40s %14s %8s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, estimate, r2) ->
      Printf.printf "%-40s %14.1f %8.4f\n%!" name estimate r2)
    (List.sort compare !rows)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      run_reproductions [];
      print_newline ();
      run_timing ()
  | [ "tables" ] -> run_reproductions []
  | [ "timing" ] -> run_timing ()
  | names -> run_reproductions names
