(* Quickstart: define a 4-task pipeline with three design points per
   task, schedule it battery-aware, and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Batsched_taskgraph
open Batsched_sched

let () =
  (* 1. Describe the application: a capture -> filter -> encode -> send
     pipeline.  Each task has three (current mA, duration min)
     implementation options, fastest first. *)
  let task id name pairs = Task.of_pairs ~id ~name pairs in
  let tasks =
    [ task 0 "capture" [ (600.0, 2.0); (350.0, 3.0); (150.0, 5.0) ];
      task 1 "filter" [ (800.0, 4.0); (450.0, 6.0); (200.0, 9.0) ];
      task 2 "encode" [ (900.0, 3.0); (500.0, 5.0); (220.0, 8.0) ];
      task 3 "send" [ (700.0, 1.0); (400.0, 1.5); (180.0, 2.5) ] ]
  in
  let g =
    Graph.make ~label:"pipeline" ~edges:[ (0, 1); (1, 2); (2, 3) ] tasks
  in

  (* 2. Pick a deadline between the all-fastest and all-slowest serial
     times, and run the iterative algorithm. *)
  let fastest, slowest = Analysis.serial_time_bounds g in
  Printf.printf "serial time bounds: %.1f .. %.1f min\n" fastest slowest;
  let deadline = 18.0 in
  let cfg = Batsched.Config.make ~deadline () in
  let result = Batsched.Iterate.run cfg g in

  (* 3. Inspect the schedule and its battery cost. *)
  Format.printf "schedule: %a@."
    (Schedule.pp g) result.Batsched.Iterate.schedule;
  Printf.printf "finishes at %.2f min (deadline %.1f)\n"
    result.Batsched.Iterate.finish deadline;
  Printf.printf "battery capacity used: %.1f mA*min\n"
    result.Batsched.Iterate.sigma;

  (* 4. Compare with the naive all-fastest schedule. *)
  let naive =
    Schedule.make g
      ~sequence:(Analysis.any_topological_order g)
      ~assignment:(Assignment.all_fastest g)
  in
  let model = Batsched_battery.Rakhmatov.model () in
  Printf.printf "all-fastest schedule would use: %.1f mA*min (%.1fx)\n"
    (Schedule.battery_cost ~model g naive)
    (Schedule.battery_cost ~model g naive /. result.Batsched.Iterate.sigma)
