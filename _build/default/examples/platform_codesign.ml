(* Platform-level co-design: compile an application onto a CPU model,
   schedule it battery-aware, execute it on the simulator, and see what
   DVS switch overheads do to the prediction.

   Run with: dune exec examples/platform_codesign.exe *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_platform

let () =
  let cpu = Cpu.strongarm in
  let app = Application.video_pipeline in
  let g = Application.compile ~label:"video" app ~cpu in
  Printf.printf "application: %d tasks on %s (%d operating points)\n"
    (Graph.num_tasks g) cpu.Cpu.name (Cpu.num_points cpu);
  List.iter
    (fun (t : Task.t) ->
      Printf.printf "  %-12s %6.1f min at full speed, %6.1f at lowest\n"
        t.Task.name (Task.fastest t).Task.duration
        (Task.slowest t).Task.duration)
    (Graph.tasks g);

  let fastest, slowest = Analysis.serial_time_bounds g in
  let deadline = fastest +. (0.6 *. (slowest -. fastest)) in
  Printf.printf "\nserial bounds %.1f .. %.1f min; deadline %.1f\n" fastest
    slowest deadline;

  let cfg = Batsched.Config.make ~deadline () in
  let result = Batsched.Iterate.run cfg g in
  Format.printf "schedule: %a@." (Schedule.pp g) result.Batsched.Iterate.schedule;
  Printf.printf "predicted sigma: %.0f mA*min\n\n" result.Batsched.Iterate.sigma;

  print_string (Render.gantt g result.Batsched.Iterate.schedule);

  (* execute with realistic switch costs *)
  let costly =
    Cpu.make ~name:"sa1100+ovh" ~i_base:cpu.Cpu.i_base
      ~i_dynamic:cpu.Cpu.i_dynamic ~transition_latency:0.005
      ~transition_charge:1.3
      (Array.to_list cpu.Cpu.points)
  in
  let run = Executor.execute app ~cpu:costly ~schedule:result.Batsched.Iterate.schedule in
  let model = Batsched_battery.Rakhmatov.model () in
  Printf.printf
    "\nexecuted with switch costs: %d transitions, +%.2f min, sigma %.0f \
     mA*min (%.3f%% drift)\n"
    run.Executor.transitions run.Executor.overhead_time
    (Batsched_battery.Model.sigma_end model run.Executor.profile)
    (100.0
     *. (Batsched_battery.Model.sigma_end model run.Executor.profile
         -. result.Batsched.Iterate.sigma)
     /. result.Batsched.Iterate.sigma)
