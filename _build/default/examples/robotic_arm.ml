(* The paper's Sec. 5 case study: a robotic-arm controller (G2) on a
   voltage-scalable processor, scheduled for three deadlines and
   compared against every baseline in the repository.

   Run with: dune exec examples/robotic_arm.exe *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_baselines

let model = Batsched_battery.Rakhmatov.model ()

let line deadline =
  let g = Instances.g2 in
  let cfg = Batsched.Config.make ~deadline () in
  let ours = Batsched.Iterate.run cfg g in
  let dp = Dp_energy.run ~model g ~deadline in
  let ch = Chowdhury.run ~model g ~deadline in
  let rng = Batsched_numeric.Rng.create 2005 in
  let sa = Annealing.run ~rng ~model g ~deadline in
  Printf.printf
    "deadline %3.0f min | iterative %8.0f | dp-energy %8.0f | chowdhury %8.0f \
     | annealing %8.0f mA*min\n"
    deadline ours.Batsched.Iterate.sigma dp.Solution.sigma ch.Solution.sigma
    sa.Solution.sigma;
  Format.printf "  best schedule: %a@." (Schedule.pp g)
    ours.Batsched.Iterate.schedule

let () =
  let g = Instances.g2 in
  Printf.printf "G2 robotic-arm controller: %d tasks, %d design points\n"
    (Graph.num_tasks g) (Graph.num_points g);
  let fastest, slowest = Analysis.serial_time_bounds g in
  Printf.printf "serial bounds %.1f .. %.1f min; paper deadlines: 55, 75, 95\n\n"
    fastest slowest;
  List.iter line Instances.g2_deadlines;
  (* How much battery does voltage scaling save end to end?  Compare the
     75-minute schedule against running everything at full speed. *)
  let naive =
    Schedule.make g
      ~sequence:(Analysis.any_topological_order g)
      ~assignment:(Assignment.all_fastest g)
  in
  Printf.printf
    "\nall-fastest reference: sigma %.0f mA*min at %.1f min finish\n"
    (Schedule.battery_cost ~model g naive)
    (Schedule.finish_time g naive)
