(* Walkthrough of the paper's illustrative example (Sec. 4.2): the
   15-task fork-join graph G3, deadline 230 minutes, beta = 0.273.
   Prints the full iteration/window trace that Tables 2 and 3
   summarize.

   Run with: dune exec examples/fork_join_g3.exe *)

open Batsched_taskgraph

let () =
  let g = Instances.g3 in
  let deadline = Instances.g3_deadline in
  let cfg = Batsched.Config.make ~deadline () in
  let result = Batsched.Iterate.run cfg g in
  Printf.printf "G3: %d tasks, %d design points, deadline %.0f min\n\n"
    (Graph.num_tasks g) (Graph.num_points g) deadline;
  List.iter
    (fun (it : Batsched.Iterate.iteration) ->
      Format.printf "iteration %d@." it.index;
      Format.printf "  sequence S%d:  %a@." it.index
        (Batsched_sched.Schedule.pp_sequence g) it.sequence;
      List.iter
        (fun (w : Batsched.Window.window_result) ->
          Printf.printf "    window %d:%d  sigma %8.1f  Delta %6.2f\n"
            (w.window_start + 1) (Graph.num_points g) w.sigma w.finish)
        it.windows.Batsched.Window.per_window;
      Format.printf "  weighted S%dw: %a@." it.index
        (Batsched_sched.Schedule.pp_sequence g) it.weighted_sequence;
      Printf.printf "  min sigma so far: %.1f\n\n" it.min_sigma)
    result.iterations;
  Format.printf "final: %a@." (Batsched_sched.Schedule.pp g)
    result.Batsched.Iterate.schedule;
  Printf.printf "sigma %.1f mA*min at %.2f min (paper: 13737 at 229.8)\n"
    result.sigma result.finish
