examples/mission_planning.mli:
