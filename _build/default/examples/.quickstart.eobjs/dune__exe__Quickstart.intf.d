examples/quickstart.mli:
