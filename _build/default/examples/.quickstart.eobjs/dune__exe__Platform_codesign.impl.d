examples/platform_codesign.ml: Analysis Application Array Batsched Batsched_battery Batsched_platform Batsched_sched Batsched_taskgraph Cpu Executor Format Graph List Printf Render Schedule Task
