examples/mission_planning.ml: Batsched Batsched_battery Batsched_sched Batsched_taskgraph Cell Float Graph Instances Lifetime List Printf Profile Task
