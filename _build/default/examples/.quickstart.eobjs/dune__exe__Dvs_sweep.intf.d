examples/dvs_sweep.mli:
