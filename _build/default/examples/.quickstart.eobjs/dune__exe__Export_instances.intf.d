examples/export_instances.mli:
