examples/battery_recovery.ml: Batsched_battery Cell Curves List Printf
