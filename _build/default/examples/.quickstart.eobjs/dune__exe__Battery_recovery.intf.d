examples/battery_recovery.mli:
