examples/multicore_tradeoff.mli:
