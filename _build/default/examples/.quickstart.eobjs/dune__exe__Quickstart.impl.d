examples/quickstart.ml: Analysis Assignment Batsched Batsched_battery Batsched_sched Batsched_taskgraph Format Graph Printf Schedule Task
