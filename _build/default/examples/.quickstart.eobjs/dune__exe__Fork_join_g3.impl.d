examples/fork_join_g3.ml: Batsched Batsched_sched Batsched_taskgraph Format Graph Instances List Printf
