examples/robotic_arm.mli:
