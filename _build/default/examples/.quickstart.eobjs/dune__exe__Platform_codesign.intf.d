examples/platform_codesign.mli:
