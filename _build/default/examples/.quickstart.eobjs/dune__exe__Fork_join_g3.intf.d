examples/fork_join_g3.mli:
