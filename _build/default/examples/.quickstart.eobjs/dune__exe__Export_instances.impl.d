examples/export_instances.ml: Batsched_taskgraph Filename Instances List Printf Sys Textio Tgff
