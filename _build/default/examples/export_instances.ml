(* Export the paper's instances in both on-disk formats (the native
   textio format and the TGFF dialect), demonstrating the I/O API.
   The scheduler CLI auto-detects either format:

     dune exec examples/export_instances.exe
     dune exec bin/basched.exe -- examples/data/g3.tgff
     dune exec bin/basched.exe -- examples/data/g2.btg --deadline 75 *)

open Batsched_taskgraph

let () =
  let dir = "examples/data" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Textio.save (Filename.concat dir "g2.btg") Instances.g2;
  Textio.save (Filename.concat dir "g3.btg") Instances.g3;
  Tgff.save ~deadline:75.0 (Filename.concat dir "g2.tgff") Instances.g2;
  Tgff.save ~deadline:Instances.g3_deadline
    (Filename.concat dir "g3.tgff")
    Instances.g3;
  List.iter
    (fun f -> Printf.printf "wrote %s\n" (Filename.concat dir f))
    [ "g2.btg"; "g3.btg"; "g2.tgff"; "g3.tgff" ]
