(* How many cores does a battery want?

   Parallel execution frees slack for slower, cooler design points, but
   concurrent currents add and the rate-capacity effect punishes the
   total draw.  This example sweeps core counts and a big.LITTLE mix on
   the paper's G3 workload and reports where the battery optimum lands.

   Run with: dune exec examples/multicore_tradeoff.exe *)

open Batsched_taskgraph
open Batsched_multiproc

let model = Batsched_battery.Rakhmatov.model ()

let g' = Instances.g3

let describe label pes deadline =
  match Mheuristics.battery_aware ~model g' ~pes ~deadline with
  | exception Mheuristics.Infeasible ->
      Printf.printf "  %-8s infeasible at d=%.0f\n" label deadline
  | sched ->
      Printf.printf
        "  %-8s sigma %7.0f mA*min  makespan %6.1f  peak %6.0f mA\n" label
        (Mschedule.battery_cost ~model g' sched)
        (Mschedule.makespan g' sched)
        (Mschedule.peak_total_current g' sched)

let () =
  Printf.printf "G3 (15 tasks) across platform configurations\n";
  List.iter
    (fun deadline ->
      Printf.printf "\ndeadline %.0f min:\n" deadline;
      describe "1 core" (Mschedule.Pe.uniform 1) deadline;
      describe "2 cores" (Mschedule.Pe.uniform 2) deadline;
      describe "3 cores" (Mschedule.Pe.uniform 3) deadline;
      describe "1b+1L" (Mschedule.Pe.big_little ~big:1 ~little:1) deadline;
      describe "1b+2L" (Mschedule.Pe.big_little ~big:1 ~little:2) deadline)
    [ 100.0; 150.0; 230.0 ];
  Printf.printf
    "\ntakeaway: extra identical cores help only while the freed slack \
     outweighs the superposed current; little cores (35%% current at 60%% \
     speed) shift the optimum further because they cut the draw itself.\n"
