(* Mission planning with a finite battery: how many mission cycles does
   one charge sustain, and when does peak-shaving rest save a mission
   that packed execution would kill?

   A "mission" is one complete execution of the G2 robotic-arm task
   graph.  The battery is the Itsy cell.  We compare scheduling
   policies by (a) apparent charge per mission and (b) whether a given
   battery survives a single mission at all when capacity runs low.

   Run with: dune exec examples/mission_planning.exe *)

open Batsched_taskgraph
open Batsched_battery

let cell = Cell.itsy
let model = Cell.model cell

let () =
  let g = Instances.g2 in
  let deadline = 75.0 in
  let cfg = Batsched.Config.make ~model ~deadline () in
  let result = Batsched.Iterate.run cfg g in
  let sigma = result.Batsched.Iterate.sigma in
  Printf.printf
    "one G2 mission (d = %.0f min) costs %.0f mA*min of apparent charge\n"
    deadline sigma;
  (* conservative cycles-per-charge estimate: sigma accumulates across
     back-to-back missions with partial recovery between them, so the
     coulomb count gives the ceiling and sigma the floor *)
  let profile = Batsched_sched.Schedule.to_profile g result.Batsched.Iterate.schedule in
  let coulombs = Profile.total_charge profile in
  Printf.printf
    "cycles per %.0f mAh charge: between %.0f (no recovery credit) and \
     %.0f (full recovery between missions)\n"
    (Cell.rated_capacity_mah cell)
    (Float.of_int (int_of_float (cell.Cell.alpha /. sigma)))
    (Float.of_int (int_of_float (cell.Cell.alpha /. coulombs)));

  (* end-of-life scenario: the battery has degraded; find the capacity
     window where peak-shaving rest decides mission success *)
  let idle = Batsched.Idle.optimize cfg g result.Batsched.Iterate.schedule in
  let lo, hi = Batsched.Idle.survivable_alphas idle in
  Printf.printf
    "\npeak sigma packed: %.0f; with recovery gaps: %.0f\n"
    idle.Batsched.Idle.peak_packed idle.Batsched.Idle.peak_gapped;
  if hi -. lo > 1.0 then begin
    Printf.printf
      "a degraded battery with alpha in (%.0f, %.0f) mA*min fails the \
       mission packed but completes it with these gaps:\n"
      lo hi;
    List.iter
      (fun (p : Batsched.Idle.placement) ->
        let task = List.nth result.Batsched.Iterate.schedule.Batsched_sched.Schedule.sequence
            p.Batsched.Idle.after_position
        in
        Printf.printf "  rest %.2f min after %s\n" p.Batsched.Idle.amount
          (Graph.task g task).Task.name)
      idle.Batsched.Idle.placements;
    (* verify the claim with the lifetime estimator *)
    let alpha = 0.5 *. (lo +. hi) in
    let survives p = Lifetime.survives ~model ~alpha p in
    Printf.printf
      "check at alpha = %.0f: packed survives = %b, gapped survives = %b\n"
      alpha (survives profile) (survives idle.Batsched.Idle.profile)
  end
  else
    Printf.printf
      "this schedule leaves too little slack for rest to change the \
       outcome (window %.1f mA*min wide)\n"
      (hi -. lo)
