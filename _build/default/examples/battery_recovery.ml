(* The two battery phenomena the scheduler exploits, demonstrated
   directly on the Rakhmatov-Vrudhula substrate: the rate-capacity
   effect, the recovery effect, and the decreasing-current ordering
   rule.

   Run with: dune exec examples/battery_recovery.exe *)

open Batsched_battery

let cell = Cell.itsy

let () =
  Printf.printf "cell %s: alpha = %.0f mA*min (%.0f mAh), beta = %.3f\n\n"
    cell.Cell.label cell.Cell.alpha (Cell.rated_capacity_mah cell)
    cell.Cell.beta;

  (* Rate capacity: the same battery delivers less charge under heavier
     constant load. *)
  Printf.printf "rate-capacity effect:\n";
  List.iter
    (fun (p : Curves.rate_capacity_point) ->
      Printf.printf "  %6.0f mA -> lifetime %8.1f min, delivered %6.0f mA*min \
                     (%.0f%% of rated)\n"
        p.current p.lifetime p.delivered (100.0 *. p.efficiency))
    (Curves.rate_capacity ~cell ~currents:[ 100.0; 400.0; 1600.0 ]);

  (* Recovery: idle time between bursts restores apparent capacity. *)
  Printf.printf "\nrecovery effect (two 20-min 800-mA bursts):\n";
  List.iter
    (fun (p : Curves.recovery_point) ->
      Printf.printf "  idle %5.1f min -> sigma %8.1f, recovered %7.1f mA*min\n"
        p.idle p.sigma_end p.recovered)
    (Curves.recovery ~cell ~current:800.0 ~burst:20.0
       ~idles:[ 0.0; 5.0; 20.0; 60.0 ]);

  (* Ordering: executing a fixed task set in decreasing-current order
     costs the battery least (the theorem the heuristic leans on). *)
  let tasks =
    [ (900.0, 5.0); (600.0, 8.0); (300.0, 10.0); (120.0, 15.0); (50.0, 20.0) ]
  in
  let dec, inc = Curves.ordering_gap ~cell tasks in
  Printf.printf
    "\nordering rule on a 5-task set:\n  decreasing-current order: %.1f\n  \
     increasing-current order: %.1f\n  penalty for the bad order: %.1f mA*min \
     (%.1f%%)\n"
    dec inc (inc -. dec)
    (100.0 *. (inc -. dec) /. dec)
