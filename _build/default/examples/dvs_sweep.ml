(* Deadline sweep on the G2 controller: how battery usage falls as the
   deadline loosens, for the iterative algorithm and the baselines.
   This is the "figure" behind Table 4's three sampled deadlines.

   Run with: dune exec examples/dvs_sweep.exe *)

open Batsched_taskgraph
open Batsched_baselines

let model = Batsched_battery.Rakhmatov.model ()

let () =
  let g = Instances.g2 in
  let fastest, slowest = Analysis.serial_time_bounds g in
  Printf.printf "# G2 deadline sweep (%.1f .. %.1f min feasible)\n" fastest slowest;
  Printf.printf "# deadline  iterative  dp-energy  chowdhury  all-fastest\n";
  let naive_sigma =
    let sched =
      Batsched_sched.Schedule.make g
        ~sequence:(Analysis.any_topological_order g)
        ~assignment:(Batsched_sched.Assignment.all_fastest g)
    in
    Batsched_sched.Schedule.battery_cost ~model g sched
  in
  let steps = 9 in
  for k = 0 to steps do
    let deadline =
      fastest +. ((slowest -. fastest) *. float_of_int k /. float_of_int steps)
    in
    let cfg = Batsched.Config.make ~deadline () in
    let ours = (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma in
    let dp = (Dp_energy.run ~model g ~deadline).Solution.sigma in
    let ch = (Chowdhury.run ~model g ~deadline).Solution.sigma in
    Printf.printf "%9.1f %10.0f %10.0f %10.0f %12.0f\n" deadline ours dp ch
      naive_sigma
  done;
  Printf.printf
    "# expected shape: all series decrease with deadline; iterative <= \
     dp-energy everywhere; all meet the all-fastest figure at zero slack\n"
