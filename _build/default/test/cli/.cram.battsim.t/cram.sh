  $ battsim lifetime --current 50 --alpha 1000 --model ideal
  $ battsim lifetime --current 800 | sed 's/lifetime .*//'
  $ battsim sigma --load 800:20 --load 800:20 | tail -1
  $ battsim sigma --load 800:20 --load 800:20 --idle 30 | tail -1
  $ battsim sigma --load banana
