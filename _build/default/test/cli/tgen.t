Generate a chain and feed it straight back to the scheduler.

  $ batsched-tgen --family chain -n 4 --points 3 --seed 7 -o chain.btg
  wrote chain.btg: 4 tasks, 3 edges; feasible deadlines 31.2 .. 94.6 min

  $ basched chain.btg --deadline 60 | head -2
  graph chain-4: 4 tasks, 3 design points, 3 edges
  schedule: T1,T2,T3,T4 / P2,P2,P2,P3

Generation is deterministic in the seed:

  $ batsched-tgen --family chain -n 4 --points 3 --seed 7 > a.btg
  $ batsched-tgen --family chain -n 4 --points 3 --seed 7 > b.btg
  $ cmp a.btg b.btg

Unknown families are rejected:

  $ batsched-tgen --family banana
  tgen: unknown family: banana
  [124]

The experiment registry lists every paper artifact:

  $ batsched-repro --list | cut -d' ' -f1
  table1
  table2
  table3
  table4
  fig3
  fig4
  fig5
  curves
  validation
  ablation
  mechanisms
  models
  idle
  beta
  endurance
  platform
  multiproc
  baselines
  scaling
