  $ cat > pipe.btg << EOF
  > graph pipe
  > task A 600:2 350:3 150:5
  > task B 800:4 450:6 200:9
  > task C 900:3 500:5 220:8
  > edge A B
  > edge B C
  > EOF
  $ basched pipe.btg --deadline 15
  $ basched pipe.btg --deadline 15 --algo chowdhury
  $ basched pipe.btg --deadline 5
  $ cat > pipe.tgff << EOF
  > @TASK_GRAPH 0 {
  >   TASK A TYPE 0
  >   TASK B TYPE 1
  >   ARC a0 FROM A TO B TYPE 0
  >   HARD_DEADLINE d0 ON B AT 9
  > }
  > @DESIGN_POINT 0 {
  >   0 600 2
  >   1 800 4
  > }
  > @DESIGN_POINT 1 {
  >   0 150 5
  >   1 200 9
  > }
  > EOF
  $ basched pipe.tgff
  $ printf 'task A banana\n' > broken.btg
  $ basched broken.btg --deadline 5
  $ basched pipe.btg --deadline 15 --algo iterative-ms --polish | tail -3
  $ basched pipe.btg --deadline 15 --algo branch-bound | tail -3
