  $ batsched-tgen --family chain -n 4 --points 3 --seed 7 -o chain.btg
  $ basched chain.btg --deadline 60 | head -2
  $ batsched-tgen --family chain -n 4 --points 3 --seed 7 > a.btg
  $ batsched-tgen --family chain -n 4 --points 3 --seed 7 > b.btg
  $ cmp a.btg b.btg
  $ batsched-tgen --family banana
  $ batsched-repro --list | cut -d' ' -f1
