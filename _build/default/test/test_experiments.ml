(* Tests for the experiment harness: table/CSV rendering, the registry,
   and the shape assertions embedded in each paper reproduction. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

(* --- Tables --- *)

let test_tables_render_aligns () =
  let s =
    Batsched_experiments.Tables.render ~headers:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has header" true (contains ~needle:"| a " s);
  Alcotest.(check bool) "has separator" true (contains ~needle:"+=" s);
  Alcotest.(check bool) "has value" true (contains ~needle:"333" s)

let test_tables_pads_short_rows () =
  let s =
    Batsched_experiments.Tables.render ~headers:[ "a"; "b"; "c" ]
      ~rows:[ [ "1" ] ]
  in
  Alcotest.(check bool) "renders" true (contains ~needle:"| 1 " s)

let test_tables_rejects_long_rows () =
  Alcotest.check_raises "long row"
    (Invalid_argument "Tables.render: row longer than header") (fun () ->
      ignore
        (Batsched_experiments.Tables.render ~headers:[ "a" ]
           ~rows:[ [ "1"; "2" ] ]))

let test_tables_formatters () =
  Alcotest.(check string) "f1" "228.3" (Batsched_experiments.Tables.f1 228.34);
  Alcotest.(check string) "f0" "16353" (Batsched_experiments.Tables.f0 16353.2);
  Alcotest.(check string) "pct" "+15.6%" (Batsched_experiments.Tables.pct 15.6)

(* --- Csv --- *)

let test_csv_plain () =
  Alcotest.(check string) "rows" "a,b\n1,2\n"
    (Batsched_experiments.Csv.of_rows [ [ "a"; "b" ]; [ "1"; "2" ] ])

let test_csv_quoting () =
  Alcotest.(check string) "comma" "\"a,b\"" (Batsched_experiments.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\""
    (Batsched_experiments.Csv.escape "a\"b");
  Alcotest.(check string) "plain untouched" "ab"
    (Batsched_experiments.Csv.escape "ab")

(* --- Registry --- *)

let test_registry_has_all_paper_artifacts () =
  List.iter
    (fun id ->
      match Batsched_experiments.Registry.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "missing experiment %s" id)
    [ "table1"; "table2"; "table3"; "table4"; "fig3"; "fig4"; "fig5";
      "curves"; "validation"; "ablation"; "mechanisms"; "models"; "idle"; "beta";
      "endurance"; "platform"; "baselines"; "scaling" ]

let test_registry_find_unknown () =
  Alcotest.(check bool) "unknown" true
    (Batsched_experiments.Registry.find "nope" = None)

(* --- experiment shape checks --- *)

let test_table2_mentions_all_tasks () =
  let out = Batsched_experiments.Exp_table2.run () in
  Alcotest.(check bool) "T15 present" true (contains ~needle:"T15" out);
  Alcotest.(check bool) "weighted rows present" true (contains ~needle:"S1w" out)

let test_table3_shape_checks_pass () =
  let out = Batsched_experiments.Exp_table3.run () in
  Alcotest.(check bool) "monotone check recorded" true
    (contains ~needle:"monotone non-increasing: true" out);
  Alcotest.(check bool) "deadline check recorded" true
    (contains ~needle:"meets the deadline: true" out)

let test_table4_reproduces_win () =
  let rows = Batsched_experiments.Exp_table4.compute () in
  Alcotest.(check int) "six points" 6 (List.length rows);
  List.iter
    (fun (r : Batsched_experiments.Exp_table4.row) ->
      Alcotest.(check bool) "ours wins" true (r.ours <= r.baseline +. 1e-6);
      (* our reimplementation lands within 5% of the paper's "ours" *)
      Alcotest.(check bool) "near paper" true
        (Float.abs (r.ours -. r.paper_ours) /. r.paper_ours < 0.05))
    rows

let test_fig4_worked_example_matches () =
  let out = Batsched_experiments.Exp_figures.run_fig4 () in
  Alcotest.(check bool) "match" true (contains ~needle:"MATCH" out)

let test_table1_cube_law_tight () =
  let out = Batsched_experiments.Exp_figures.run_table1 () in
  Alcotest.(check bool) "917 present" true (contains ~needle:"917" out)

let test_fig5_lists_g2 () =
  let out = Batsched_experiments.Exp_figures.run_fig5 () in
  Alcotest.(check bool) "938 present" true (contains ~needle:"938" out);
  Alcotest.(check bool) "dot present" true (contains ~needle:"digraph" out)

let test_curves_shape_checks_pass () =
  let out = Batsched_experiments.Exp_curves.run () in
  Alcotest.(check bool) "rate capacity ok" true
    (contains ~needle:"load rises: true" out);
  Alcotest.(check bool) "recovery ok" true
    (contains ~needle:"idle gap: true" out)

let test_idle_shape_checks_pass () =
  let out = Batsched_experiments.Exp_idle.run () in
  Alcotest.(check bool) "never raises peak" true
    (contains ~needle:"never raises the peak: true" out)

let test_beta_win_shrinks () =
  let out = Batsched_experiments.Exp_beta.run () in
  Alcotest.(check bool) "shrinks" true (contains ~needle:": true" out)

let test_platform_prediction_exact () =
  let out = Batsched_experiments.Exp_platform.run () in
  Alcotest.(check bool) "exact match" true
    (contains ~needle:"matches the analytic prediction exactly: true" out);
  Alcotest.(check bool) "overheads accounted" true
    (contains ~needle:"accounted overhead: true" out)

let test_multiproc_ordering_holds () =
  let out = Batsched_experiments.Exp_multiproc.run () in
  Alcotest.(check bool) "aware <= downscale" true
    (contains ~needle:"every feasible point: true" out)

let test_endurance_shape_checks () =
  let out = Batsched_experiments.Exp_endurance.run () in
  Alcotest.(check bool) "budget ordering" true
    (contains ~needle:"charge budget ordering: true" out);
  Alcotest.(check bool) "ceiling respected" true
    (contains ~needle:"ideal ceiling: true" out)

let test_mechanisms_report_degradation () =
  let out = Batsched_experiments.Exp_mechanisms.run () in
  Alcotest.(check bool) "mean line present" true
    (contains ~needle:"mean degradation" out)

let test_models_reports_win_counts () =
  let out = Batsched_experiments.Exp_models.run () in
  Alcotest.(check bool) "rv always wins" true
    (contains ~needle:"rakhmatov 6/6" out)

let () =
  Alcotest.run "experiments"
    [ ( "tables",
        [ Alcotest.test_case "render aligns" `Quick test_tables_render_aligns;
          Alcotest.test_case "pads short rows" `Quick test_tables_pads_short_rows;
          Alcotest.test_case "rejects long rows" `Quick test_tables_rejects_long_rows;
          Alcotest.test_case "formatters" `Quick test_tables_formatters ] );
      ( "csv",
        [ Alcotest.test_case "plain" `Quick test_csv_plain;
          Alcotest.test_case "quoting" `Quick test_csv_quoting ] );
      ( "registry",
        [ Alcotest.test_case "all artifacts" `Quick test_registry_has_all_paper_artifacts;
          Alcotest.test_case "unknown" `Quick test_registry_find_unknown ] );
      ( "reproductions",
        [ Alcotest.test_case "table2 tasks" `Quick test_table2_mentions_all_tasks;
          Alcotest.test_case "table3 shape" `Quick test_table3_shape_checks_pass;
          Alcotest.test_case "table4 win" `Quick test_table4_reproduces_win;
          Alcotest.test_case "fig4 worked example" `Quick test_fig4_worked_example_matches;
          Alcotest.test_case "table1 data" `Quick test_table1_cube_law_tight;
          Alcotest.test_case "fig5 g2" `Quick test_fig5_lists_g2;
          Alcotest.test_case "curves shapes" `Quick test_curves_shape_checks_pass;
          Alcotest.test_case "idle shapes" `Slow test_idle_shape_checks_pass;
          Alcotest.test_case "beta win shrinks" `Slow test_beta_win_shrinks;
          Alcotest.test_case "platform prediction" `Slow test_platform_prediction_exact;
          Alcotest.test_case "multiproc ordering" `Slow test_multiproc_ordering_holds;
          Alcotest.test_case "endurance shapes" `Slow test_endurance_shape_checks;
          Alcotest.test_case "models win counts" `Slow test_models_reports_win_counts;
          Alcotest.test_case "mechanisms degradation" `Slow test_mechanisms_report_degradation ] ) ]
