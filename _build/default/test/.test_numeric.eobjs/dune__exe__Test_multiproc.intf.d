test/test_multiproc.mli:
