test/test_platform.ml: Alcotest Analysis Application Assignment Batsched Batsched_battery Batsched_platform Batsched_sched Batsched_taskgraph Cpu Executor Graph List Schedule Task
