test/test_battery.mli:
