test/test_experiments.ml: Alcotest Batsched_experiments Float List String
