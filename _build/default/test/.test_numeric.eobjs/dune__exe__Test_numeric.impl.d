test/test_numeric.ml: Alcotest Array Batsched_numeric Float Fun Gen Interp Kahan List QCheck QCheck_alcotest Rng Rootfind Series Stats Ticks Tridiag
