test/test_battery.ml: Alcotest Batsched_battery Batsched_numeric Cell Curves Diffusion Gen Ideal Kibam Lifetime List Model Periodic Peukert Profile QCheck QCheck_alcotest Rakhmatov
