(* Tests for the task-graph substrate: tasks, graphs, analyses,
   design-point laws, generators, the paper instances and the text
   format. *)

open Batsched_taskgraph

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let pipeline () =
  (* 0 -> 1 -> 2 with 2 design points each *)
  let t id = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1))
      [ (500.0, 2.0); (100.0, 6.0) ]
  in
  Graph.make ~label:"pipe" ~edges:[ (0, 1); (1, 2) ] [ t 0; t 1; t 2 ]

let diamond () =
  (* 0 -> {1, 2} -> 3 *)
  let t id = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1))
      [ (400.0, 1.0); (200.0, 2.0); (50.0, 4.0) ]
  in
  Graph.make ~label:"diamond" ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
    [ t 0; t 1; t 2; t 3 ]

(* --- Task --- *)

let test_task_sorts_points () =
  let t = Task.of_pairs ~id:0 ~name:"T" [ (100.0, 6.0); (500.0, 2.0) ] in
  check_float "fastest duration" 2.0 (Task.fastest t).Task.duration;
  check_float "slowest duration" 6.0 (Task.slowest t).Task.duration

let test_task_rejects_tradeoff_violation () =
  (* slower AND hungrier design point is rejected *)
  Alcotest.check_raises "violation"
    (Invalid_argument
       "Task.make: currents must be non-increasing as duration grows")
    (fun () ->
      ignore (Task.of_pairs ~id:0 ~name:"T" [ (100.0, 2.0); (500.0, 6.0) ]))

let test_task_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Task.make: no design points")
    (fun () -> ignore (Task.of_pairs ~id:0 ~name:"T" []))

let test_task_rejects_nonpositive () =
  Alcotest.check_raises "bad current"
    (Invalid_argument "Task: design point current must be positive") (fun () ->
      ignore (Task.of_pairs ~id:0 ~name:"T" [ (0.0, 2.0) ]))

let test_task_energy_and_charge () =
  let t =
    Task.of_pairs ~id:0 ~name:"T" ~voltages:[ 2.0; 1.0 ]
      [ (500.0, 2.0); (100.0, 6.0) ]
  in
  check_float "energy col0" 2000.0 (Task.energy t 0);
  check_float "charge col0" 1000.0 (Task.charge t 0);
  check_float "avg energy" 1300.0 (Task.average_energy t)

let test_task_current_bounds () =
  let t = Task.of_pairs ~id:0 ~name:"T" [ (500.0, 2.0); (100.0, 6.0) ] in
  check_float "min" 100.0 (Task.min_current t);
  check_float "max" 500.0 (Task.max_current t)

let test_task_point_out_of_range () =
  let t = Task.of_pairs ~id:0 ~name:"T" [ (500.0, 2.0) ] in
  Alcotest.check_raises "range" (Invalid_argument "Task.point: column out of range")
    (fun () -> ignore (Task.point t 1))

let test_task_voltage_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Task.of_pairs: voltage list length mismatch") (fun () ->
      ignore (Task.of_pairs ~id:0 ~name:"T" ~voltages:[ 1.0 ]
                [ (500.0, 2.0); (100.0, 6.0) ]))

(* --- Graph --- *)

let test_graph_basic_accessors () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (Graph.num_tasks g);
  Alcotest.(check int) "m" 3 (Graph.num_points g);
  Alcotest.(check int) "edges" 4 (Graph.num_edges g);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (Graph.preds g 3);
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Graph.succs g 0);
  Alcotest.(check (list int)) "sources" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Graph.sinks g)

let test_graph_rejects_cycle () =
  let t id = Task.of_pairs ~id ~name:"T" [ (100.0, 1.0) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Graph.make: cycle detected")
    (fun () ->
      ignore (Graph.make ~edges:[ (0, 1); (1, 0) ] [ t 0; t 1 ]))

let test_graph_rejects_self_loop () =
  let t id = Task.of_pairs ~id ~name:"T" [ (100.0, 1.0) ] in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self loop")
    (fun () -> ignore (Graph.make ~edges:[ (0, 0) ] [ t 0 ]))

let test_graph_rejects_mixed_point_counts () =
  let a = Task.of_pairs ~id:0 ~name:"A" [ (100.0, 1.0) ] in
  let b = Task.of_pairs ~id:1 ~name:"B" [ (100.0, 1.0); (50.0, 2.0) ] in
  Alcotest.check_raises "mixed m"
    (Invalid_argument "Graph.make: tasks disagree on design-point count")
    (fun () -> ignore (Graph.make ~edges:[] [ a; b ]))

let test_graph_rejects_duplicate_ids () =
  let t _ = Task.of_pairs ~id:0 ~name:"T" [ (100.0, 1.0) ] in
  Alcotest.check_raises "dup" (Invalid_argument "Graph.make: duplicate task id")
    (fun () -> ignore (Graph.make ~edges:[] [ t 0; t 1 ]))

let test_graph_collapses_duplicate_edges () =
  let t id = Task.of_pairs ~id ~name:"T" [ (100.0, 1.0) ] in
  let g = Graph.make ~edges:[ (0, 1); (0, 1) ] [ t 0; t 1 ] in
  Alcotest.(check int) "one edge" 1 (Graph.num_edges g)

let test_graph_map_tasks_preserves_structure () =
  let g = pipeline () in
  let g' = Graph.map_tasks (fun t -> t) g in
  Alcotest.(check int) "edges kept" (Graph.num_edges g) (Graph.num_edges g')

(* --- Analysis --- *)

let test_topological_accepts_valid () =
  let g = diamond () in
  Alcotest.(check bool) "0123" true (Analysis.is_topological g [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "0213" true (Analysis.is_topological g [ 0; 2; 1; 3 ])

let test_topological_rejects_invalid () =
  let g = diamond () in
  Alcotest.(check bool) "order violation" false
    (Analysis.is_topological g [ 1; 0; 2; 3 ]);
  Alcotest.(check bool) "duplicate" false
    (Analysis.is_topological g [ 0; 1; 1; 3 ]);
  Alcotest.(check bool) "short" false (Analysis.is_topological g [ 0; 1 ])

let test_list_schedule_respects_weight () =
  let g = diamond () in
  (* weight task 2 above task 1: 2 should come first *)
  let seq =
    Analysis.list_schedule ~weight:(fun v -> if v = 2 then 10.0 else 0.0) g
  in
  Alcotest.(check (list int)) "order" [ 0; 2; 1; 3 ] seq

let test_list_schedule_tie_breaks_low_id () =
  let g = diamond () in
  let seq = Analysis.list_schedule ~weight:(fun _ -> 1.0) g in
  Alcotest.(check (list int)) "order" [ 0; 1; 2; 3 ] seq

let test_all_topological_orders_diamond () =
  let g = diamond () in
  let orders = Analysis.all_topological_orders g in
  Alcotest.(check int) "two linearizations" 2 (List.length orders);
  List.iter
    (fun o ->
      Alcotest.(check bool) "each valid" true (Analysis.is_topological g o))
    orders

let test_count_topological_orders_chain () =
  Alcotest.(check int) "chain has 1" 1
    (Analysis.count_topological_orders (pipeline ()))

let test_descendants () =
  let g = diamond () in
  Alcotest.(check (list int)) "root" [ 0; 1; 2; 3 ] (Analysis.descendants g 0);
  Alcotest.(check (list int)) "middle" [ 1; 3 ] (Analysis.descendants g 1);
  Alcotest.(check (list int)) "sink" [ 3 ] (Analysis.descendants g 3)

let test_column_time () =
  let g = pipeline () in
  check_float "fast column" 6.0 (Analysis.column_time g 0);
  check_float "slow column" 18.0 (Analysis.column_time g 1)

let test_serial_time_bounds () =
  let fast, slow = Analysis.serial_time_bounds (pipeline ()) in
  check_float "fast" 6.0 fast;
  check_float "slow" 18.0 slow

let test_current_range () =
  let lo, hi = Analysis.current_range (diamond ()) in
  check_float "lo" 50.0 lo;
  check_float "hi" 400.0 hi

let test_energy_bounds () =
  let g = pipeline () in
  (* E_min = 3 * 100*6 = 1800 ; E_max = 3 * 500*2 = 3000 *)
  let emin, emax = Analysis.energy_bounds g in
  check_float "emin" 1800.0 emin;
  check_float "emax" 3000.0 emax

let test_energy_vector_order () =
  let a = Task.of_pairs ~id:0 ~name:"A" [ (500.0, 4.0) ] (* 2000 *) in
  let b = Task.of_pairs ~id:1 ~name:"B" [ (100.0, 2.0) ] (* 200 *) in
  let c = Task.of_pairs ~id:2 ~name:"C" [ (300.0, 2.0) ] (* 600 *) in
  let g = Graph.make ~edges:[] [ a; b; c ] in
  Alcotest.(check (list int)) "increasing energy" [ 1; 2; 0 ]
    (Analysis.energy_vector g)

(* --- Designpoints --- *)

let test_cube_law_matches_g2 () =
  (* node 1 of G2: base (60 mA, 22 min) at factor 1; factor 2.5 must
     give the published 938 mA / 8.8 min *)
  let pairs, voltages =
    Designpoints.cube_law ~base_current:60.0 ~base_duration:22.0
      ~factors:Designpoints.g2_factors ()
  in
  (match pairs with
  | (i1, d1) :: _ ->
      check_close 1.0 "current" 938.0 i1;
      check_close 0.01 "duration" 8.8 d1
  | [] -> Alcotest.fail "empty");
  Alcotest.(check int) "voltages" 4 (List.length voltages)

let test_cube_law_monotone () =
  let pairs, _ =
    Designpoints.cube_law ~base_current:100.0 ~base_duration:10.0
      ~factors:[ 1.0; 0.8; 0.5 ] ()
  in
  match pairs with
  | [ (i1, d1); (i2, d2); (i3, d3) ] ->
      Alcotest.(check bool) "currents fall" true (i1 > i2 && i2 > i3);
      Alcotest.(check bool) "durations rise" true (d1 < d2 && d2 < d3)
  | _ -> Alcotest.fail "expected three points"

let test_linear_duration_law_endpoints () =
  let pairs, _ =
    Designpoints.linear_duration_law ~base_current:917.0 ~fastest_duration:7.3
      ~slowest_duration:22.0 ~factors:Designpoints.g3_factors ()
  in
  match (pairs, List.rev pairs) with
  | (i1, d1) :: _, (i5, d5) :: _ ->
      check_float "fastest duration" 7.3 d1;
      check_float "slowest duration" 22.0 d5;
      check_float "base current" 917.0 i1;
      check_close 1.0 "scaled current" 32.9 i5
  | _ -> Alcotest.fail "empty"

let test_law_validation () =
  Alcotest.check_raises "empty factors"
    (Invalid_argument "Designpoints: empty factor list") (fun () ->
      ignore (Designpoints.cube_law ~base_current:1.0 ~base_duration:1.0
                ~factors:[] ()))

(* --- Generators --- *)

let rng () = Batsched_numeric.Rng.create 11

let test_generator_chain_structure () =
  let g = Generators.chain ~rng:(rng ()) ~spec:Generators.default_spec ~n:5 in
  Alcotest.(check int) "n" 5 (Graph.num_tasks g);
  Alcotest.(check int) "edges" 4 (Graph.num_edges g);
  Alcotest.(check int) "one order" 1 (Analysis.count_topological_orders g)

let test_generator_fork_join_structure () =
  let g =
    Generators.fork_join ~rng:(rng ()) ~spec:Generators.default_spec
      ~widths:[ 3; 2 ]
  in
  (* J0 + 3 + J1 + 2 + J2 = 8 *)
  Alcotest.(check int) "n" 8 (Graph.num_tasks g);
  Alcotest.(check (list int)) "single source" [ 0 ] (Graph.sources g);
  Alcotest.(check int) "single sink" 1 (List.length (Graph.sinks g))

let test_generator_layered_connected () =
  let g =
    Generators.layered ~rng:(rng ()) ~spec:Generators.default_spec ~layers:3
      ~width:4 ~edge_prob:0.3
  in
  Alcotest.(check int) "n" 12 (Graph.num_tasks g);
  (* every non-first-layer vertex has at least one parent *)
  for v = 4 to 11 do
    Alcotest.(check bool) "has parent" true (Graph.preds g v <> [])
  done

let test_generator_series_parallel_valid () =
  let g =
    Generators.series_parallel ~rng:(rng ()) ~spec:Generators.default_spec
      ~size:12
  in
  Alcotest.(check bool) "nonempty" true (Graph.num_tasks g >= 2);
  Alcotest.(check bool) "acyclic by construction" true
    (Analysis.is_topological g (Analysis.any_topological_order g))

let test_generator_random_dag_edge_prob_extremes () =
  let g0 =
    Generators.random_dag ~rng:(rng ()) ~spec:Generators.default_spec ~n:6
      ~edge_prob:0.0
  in
  Alcotest.(check int) "no edges" 0 (Graph.num_edges g0);
  let g1 =
    Generators.random_dag ~rng:(rng ()) ~spec:Generators.default_spec ~n:6
      ~edge_prob:1.0
  in
  Alcotest.(check int) "complete dag" 15 (Graph.num_edges g1)

let test_generator_determinism () =
  let a = Generators.chain ~rng:(Batsched_numeric.Rng.create 5)
      ~spec:Generators.default_spec ~n:4
  in
  let b = Generators.chain ~rng:(Batsched_numeric.Rng.create 5)
      ~spec:Generators.default_spec ~n:4
  in
  Alcotest.(check string) "same graph" (Textio.to_string a) (Textio.to_string b)

let test_feasible_deadline_bounds () =
  let g = pipeline () in
  check_float "slack 0" 6.0 (Generators.feasible_deadline g ~slack:0.0);
  check_float "slack 1" 18.0 (Generators.feasible_deadline g ~slack:1.0);
  check_float "slack 0.5" 12.0 (Generators.feasible_deadline g ~slack:0.5)

(* --- Instances --- *)

let test_g3_shape () =
  let g = Instances.g3 in
  Alcotest.(check int) "15 tasks" 15 (Graph.num_tasks g);
  Alcotest.(check int) "5 points" 5 (Graph.num_points g);
  Alcotest.(check string) "label" "G3" (Graph.label g);
  (* spot checks against Table 1 *)
  let t1 = Graph.task g 0 in
  check_float "T1 DP1 current" 917.0 (Task.point t1 0).Task.current;
  check_float "T1 DP5 duration" 22.0 (Task.point t1 4).Task.duration;
  let t8 = Graph.task g 7 in
  Alcotest.(check (list int)) "T8 parents" [ 5; 6 ] (Graph.preds g 7);
  check_float "T8 DP2 current" 368.0 (Task.point t8 1).Task.current

let test_g3_serial_bounds_bracket_deadlines () =
  let fast, slow = Analysis.serial_time_bounds Instances.g3 in
  check_close 0.01 "fast" 85.2 fast;
  check_close 0.01 "slow" 258.0 slow;
  (* all three Table-4 deadlines are meetable but not trivial *)
  List.iter
    (fun d -> Alcotest.(check bool) "meetable nontrivial" true (d >= fast && d <= slow))
    Instances.g3_deadlines

let test_g3_fork_join_dependences () =
  let g = Instances.g3 in
  Alcotest.(check (list int)) "T1 is the only source" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "T15 is the only sink" [ 14 ] (Graph.sinks g);
  Alcotest.(check (list int)) "T14 parents" [ 10; 11; 12 ] (Graph.preds g 13)

let test_g2_shape () =
  let g = Instances.g2 in
  Alcotest.(check int) "9 tasks" 9 (Graph.num_tasks g);
  Alcotest.(check int) "4 points" 4 (Graph.num_points g);
  let n1 = Graph.task g 0 in
  check_float "N1 DP1" 938.0 (Task.point n1 0).Task.current;
  check_float "N1 DP4 duration" 22.0 (Task.point n1 3).Task.duration;
  let fast, slow = Analysis.serial_time_bounds g in
  check_close 0.01 "fast" 42.2 fast;
  check_close 0.01 "slow" 105.8 slow

let test_g2_cube_law_consistency () =
  (* currents across columns follow I4 * s^3 for s in {2.5,1.66,1.25,1}
     within table rounding *)
  let g = Instances.g2 in
  let worst = ref 0.0 in
  List.iter
    (fun (t : Task.t) ->
      List.iteri
        (fun j s ->
          let expected = (Task.slowest t).Task.current *. (s ** 3.0) in
          let actual = (Task.point t j).Task.current in
          let rel = Float.abs (actual -. expected) /. expected in
          if rel > !worst then worst := rel)
        Designpoints.g2_factors)
    (Graph.tasks g);
  Alcotest.(check bool) "within 2.5%" true (!worst < 0.025)

(* --- Textio --- *)

let test_textio_roundtrip_instances () =
  List.iter
    (fun g ->
      let g' = Textio.of_string (Textio.to_string g) in
      Alcotest.(check string) "roundtrip" (Textio.to_string g)
        (Textio.to_string g'))
    [ Instances.g2; Instances.g3; pipeline (); diamond () ]

let test_textio_parses_minimal () =
  let g =
    Textio.of_string
      "graph demo\ntask A 500:2 100:6\ntask B 400:1 80:5\nedge A B\n"
  in
  Alcotest.(check int) "n" 2 (Graph.num_tasks g);
  Alcotest.(check int) "edges" 1 (Graph.num_edges g);
  check_float "default voltage" 1.0 (Task.point (Graph.task g 0) 0).Task.voltage

let test_textio_comments_and_blanks () =
  let g =
    Textio.of_string "# header\n\ngraph x\ntask A 10:1  # trailing\n"
  in
  Alcotest.(check int) "n" 1 (Graph.num_tasks g)

let test_textio_reports_line_numbers () =
  (match Textio.of_string "graph x\ntask A 10:1\nedge A Missing\n" with
  | exception Textio.Parse_error { line; _ } ->
      Alcotest.(check int) "line" 3 line
  | _ -> Alcotest.fail "expected parse error")

let test_textio_rejects_bad_point () =
  (match Textio.of_string "task A banana\n" with
  | exception Textio.Parse_error { line; _ } ->
      Alcotest.(check int) "line" 1 line
  | _ -> Alcotest.fail "expected parse error")

let test_textio_rejects_duplicate_task () =
  (match Textio.of_string "task A 10:1\ntask A 10:1\n" with
  | exception Textio.Parse_error { line; _ } ->
      Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "expected parse error")

let test_textio_dot_mentions_all_tasks () =
  let dot = Textio.to_dot (diamond ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (let rec find i =
           if i + String.length needle > String.length dot then false
           else if String.sub dot i (String.length needle) = needle then true
           else find (i + 1)
         in
         find 0))
    [ "T1"; "T2"; "T3"; "T4"; "->" ]

(* --- Transform --- *)

let test_reduction_removes_shortcut () =
  (* 0 -> 1 -> 2 plus the redundant 0 -> 2 *)
  let t id = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" id) [ (100.0, 1.0) ] in
  let g = Graph.make ~edges:[ (0, 1); (1, 2); (0, 2) ] [ t 0; t 1; t 2 ] in
  let r = Transform.transitive_reduction g in
  Alcotest.(check (list (pair int int))) "shortcut gone" [ (0, 1); (1, 2) ]
    (Graph.edges r)

let test_reduction_preserves_reachability () =
  let rng = Batsched_numeric.Rng.create 21 in
  let g =
    Generators.random_dag ~rng
      ~spec:{ Generators.default_spec with Generators.num_points = 2 } ~n:9
      ~edge_prob:0.5
  in
  let r = Transform.transitive_reduction g in
  Alcotest.(check bool) "no more edges" true
    (Graph.num_edges r <= Graph.num_edges g);
  for v = 0 to Graph.num_tasks g - 1 do
    Alcotest.(check (list int)) "same descendants"
      (Analysis.descendants g v)
      (Analysis.descendants r v)
  done

let test_reverse_flips_edges () =
  let g = diamond () in
  let r = Transform.reverse g in
  Alcotest.(check (list int)) "old sink is source" [ 3 ] (Graph.sources r);
  Alcotest.(check (list int)) "old source is sink" [ 0 ] (Graph.sinks r)

let test_merge_collapses_pipeline () =
  let g = pipeline () in
  let info = Transform.merge_chains g in
  Alcotest.(check int) "one task" 1 (Graph.num_tasks info.Transform.graph);
  Alcotest.(check (list int)) "members in order" [ 0; 1; 2 ]
    info.Transform.members.(0)

let test_merge_preserves_column_charge () =
  let g = pipeline () in
  let info = Transform.merge_chains g in
  let merged = Graph.task info.Transform.graph 0 in
  for j = 0 to Graph.num_points g - 1 do
    let original =
      Batsched_numeric.Kahan.sum_list
        (List.map (fun t -> Task.charge t j) (Graph.tasks g))
    in
    Alcotest.(check (float 1e-9)) "charge per column" original
      (Task.charge merged j)
  done

let test_merge_keeps_parallel_structure () =
  (* the diamond has no mergeable chain (fan-out/fan-in breaks links) *)
  let g = diamond () in
  let info = Transform.merge_chains g in
  Alcotest.(check int) "untouched" 4 (Graph.num_tasks info.Transform.graph)

let test_merge_expand_sequence () =
  let g = pipeline () in
  let info = Transform.merge_chains g in
  Alcotest.(check (list int)) "expansion" [ 0; 1; 2 ]
    (Transform.expand_sequence info [ 0 ]);
  Alcotest.check_raises "bad permutation"
    (Invalid_argument "Transform.expand_sequence: not a permutation")
    (fun () -> ignore (Transform.expand_sequence info [ 5 ]))

let test_merge_g3_structure () =
  (* G3's only chain is T14 -> T15 at the tail (plus T8's neighbours
     have fan-in/out); merging must keep the graph schedulable *)
  let g = Instances.g3 in
  let info = Transform.merge_chains g in
  Alcotest.(check bool) "smaller or equal" true
    (Graph.num_tasks info.Transform.graph <= Graph.num_tasks g);
  Alcotest.(check bool) "valid" true
    (Analysis.is_topological info.Transform.graph
       (Analysis.any_topological_order info.Transform.graph))

(* --- Tgff --- *)

let tgff_sample =
  "@TASK_GRAPH 0 {\n\
  \  PERIOD 300\n\
  \  TASK t0  TYPE 0\n\
  \  TASK t1  TYPE 1\n\
  \  TASK t2  TYPE 0\n\
  \  ARC a0  FROM t0  TO t1  TYPE 0\n\
  \  ARC a1  FROM t1  TO t2  TYPE 0\n\
  \  HARD_DEADLINE d0 ON t2 AT 42.5\n\
   }\n\
   @DESIGN_POINT 0 {\n\
   # type current duration voltage\n\
  \  0 900 2.0 1.0\n\
  \  1 500 3.0 1.0\n\
   }\n\
   @DESIGN_POINT 1 {\n\
  \  0 300 5.0 0.7\n\
  \  1 150 8.0 0.7\n\
   }\n"

let test_tgff_parses_sample () =
  let doc = Tgff.of_string tgff_sample in
  Alcotest.(check int) "tasks" 3 (Graph.num_tasks doc.Tgff.graph);
  Alcotest.(check int) "points" 2 (Graph.num_points doc.Tgff.graph);
  Alcotest.(check int) "edges" 2 (Graph.num_edges doc.Tgff.graph);
  Alcotest.(check (option (float 1e-9))) "deadline" (Some 42.5) doc.Tgff.deadline;
  Alcotest.(check (option (float 1e-9))) "period" (Some 300.0) doc.Tgff.period;
  (* t0 and t2 share TYPE 0 *)
  check_float "t2 current" 900.0
    (Task.point (Graph.task doc.Tgff.graph 2) 0).Task.current;
  check_float "t1 dp1 duration" 8.0
    (Task.point (Graph.task doc.Tgff.graph 1) 1).Task.duration

let test_tgff_roundtrip_instances () =
  List.iter
    (fun g ->
      let text = Tgff.to_string ~deadline:100.0 g in
      let doc = Tgff.of_string text in
      Alcotest.(check int) "tasks" (Graph.num_tasks g)
        (Graph.num_tasks doc.Tgff.graph);
      Alcotest.(check int) "points" (Graph.num_points g)
        (Graph.num_points doc.Tgff.graph);
      Alcotest.(check (list (pair int int))) "edges" (Graph.edges g)
        (Graph.edges doc.Tgff.graph);
      List.iter2
        (fun (a : Task.t) (b : Task.t) ->
          for j = 0 to Task.num_points a - 1 do
            check_float "current" (Task.point a j).Task.current
              (Task.point b j).Task.current;
            check_float "duration" (Task.point a j).Task.duration
              (Task.point b j).Task.duration
          done)
        (Graph.tasks g) (Graph.tasks doc.Tgff.graph))
    [ Instances.g2; Instances.g3 ]

let test_tgff_missing_type_errors () =
  let broken =
    "@TASK_GRAPH 0 {\n  TASK t0 TYPE 5\n}\n@DESIGN_POINT 0 {\n  0 100 1.0\n}\n"
  in
  (match Tgff.of_string broken with
  | exception Tgff.Parse_error { message; _ } ->
      Alcotest.(check bool) "mentions type" true
        (String.length message > 0)
  | _ -> Alcotest.fail "expected parse error")

let test_tgff_bad_row_line_number () =
  let broken = "@TASK_GRAPH 0 {\n  TASK t0 TYPE 0\n}\n@DESIGN_POINT 0 {\n  banana\n}\n" in
  (match Tgff.of_string broken with
  | exception Tgff.Parse_error { line; _ } -> Alcotest.(check int) "line" 5 line
  | _ -> Alcotest.fail "expected parse error")

let test_tgff_no_blocks_errors () =
  (match Tgff.of_string "# empty\n" with
  | exception Tgff.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error")

let test_tgff_second_graph_ignored () =
  let two =
    tgff_sample
    ^ "@TASK_GRAPH 1 {\n  TASK x0 TYPE 0\n}\n"
  in
  let doc = Tgff.of_string two in
  Alcotest.(check int) "only first graph" 3 (Graph.num_tasks doc.Tgff.graph)

(* --- qcheck properties --- *)

let gen_graph =
  (* random family selector over seeds *)
  QCheck.(map
            (fun (seed, kind) ->
              let rng = Batsched_numeric.Rng.create seed in
              let spec = { Generators.default_spec with Generators.num_points = 3 } in
              match kind mod 4 with
              | 0 -> Generators.chain ~rng ~spec ~n:6
              | 1 -> Generators.fork_join ~rng ~spec ~widths:[ 2; 3 ]
              | 2 -> Generators.layered ~rng ~spec ~layers:3 ~width:3 ~edge_prob:0.4
              | _ -> Generators.random_dag ~rng ~spec ~n:7 ~edge_prob:0.3)
            (pair (int_bound 10_000) (int_bound 3)))

let prop_generated_graphs_linearizable =
  QCheck.Test.make ~count:100 ~name:"generated graphs admit a linearization"
    gen_graph (fun g ->
      Analysis.is_topological g (Analysis.any_topological_order g))

let prop_list_schedule_topological =
  QCheck.Test.make ~count:100
    ~name:"list schedule is topological for any weight"
    QCheck.(pair gen_graph (int_bound 1000))
    (fun (g, wseed) ->
      let rng = Batsched_numeric.Rng.create wseed in
      let weights =
        Array.init (Graph.num_tasks g) (fun _ -> Batsched_numeric.Rng.float rng 10.0)
      in
      Analysis.is_topological g
        (Analysis.list_schedule ~weight:(fun v -> weights.(v)) g))

let prop_textio_roundtrip =
  QCheck.Test.make ~count:50 ~name:"textio roundtrips generated graphs"
    gen_graph (fun g ->
      Textio.to_string (Textio.of_string (Textio.to_string g))
      = Textio.to_string g)

let prop_descendants_contains_self =
  QCheck.Test.make ~count:100 ~name:"descendants contain the root" gen_graph
    (fun g ->
      List.for_all
        (fun v -> List.mem v (Analysis.descendants g v))
        (List.init (Graph.num_tasks g) Fun.id))

let prop_column_times_monotone =
  QCheck.Test.make ~count:100 ~name:"column times rise toward low power"
    gen_graph (fun g ->
      let m = Graph.num_points g in
      let rec check j =
        j + 1 >= m
        || (Analysis.column_time g j <= Analysis.column_time g (j + 1) +. 1e-9
            && check (j + 1))
      in
      check 0)

(* fuzz: random single-character corruption of a valid file must either
   parse (the mutation may be harmless, e.g. inside a name) or raise the
   documented Parse_error — never crash or loop *)
let mutate ~rng text =
  let n = String.length text in
  if n = 0 then text
  else begin
    let b = Bytes.of_string text in
    let pos = Batsched_numeric.Rng.int rng n in
    (match Batsched_numeric.Rng.int rng 3 with
    | 0 -> Bytes.set b pos (Char.chr (32 + Batsched_numeric.Rng.int rng 95))
    | 1 -> Bytes.set b pos ' '
    | _ -> Bytes.set b pos '\n');
    Bytes.to_string b
  end

let prop_textio_fuzz_no_crash =
  QCheck.Test.make ~count:300 ~name:"textio survives corrupted input"
    QCheck.(pair gen_graph (int_bound 100_000))
    (fun (g, seed) ->
      let rng = Batsched_numeric.Rng.create seed in
      let corrupted = mutate ~rng (Textio.to_string g) in
      match Textio.of_string corrupted with
      | (_ : Graph.t) -> true
      | exception Textio.Parse_error _ -> true
      | exception _ -> false)

let prop_tgff_fuzz_no_crash =
  QCheck.Test.make ~count:300 ~name:"tgff survives corrupted input"
    QCheck.(pair gen_graph (int_bound 100_000))
    (fun (g, seed) ->
      let rng = Batsched_numeric.Rng.create seed in
      let corrupted = mutate ~rng (Tgff.to_string ~deadline:50.0 g) in
      match Tgff.of_string corrupted with
      | (_ : Tgff.document) -> true
      | exception Tgff.Parse_error _ -> true
      | exception _ -> false)

let prop_merge_preserves_charge =
  QCheck.Test.make ~count:100 ~name:"chain merging preserves per-column charge"
    gen_graph (fun g ->
      let info = Transform.merge_chains g in
      let m = Graph.num_points g in
      let column_charge graph j =
        Batsched_numeric.Kahan.sum_list
          (List.map (fun t -> Task.charge t j) (Graph.tasks graph))
      in
      List.for_all
        (fun j ->
          Float.abs (column_charge g j -. column_charge info.Transform.graph j)
          < 1e-6)
        (List.init m Fun.id))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_generated_graphs_linearizable;
      prop_list_schedule_topological;
      prop_textio_roundtrip;
      prop_descendants_contains_self;
      prop_column_times_monotone;
      prop_textio_fuzz_no_crash;
      prop_tgff_fuzz_no_crash;
      prop_merge_preserves_charge ]

let () =
  Alcotest.run "taskgraph"
    [ ( "task",
        [ Alcotest.test_case "sorts points" `Quick test_task_sorts_points;
          Alcotest.test_case "rejects tradeoff violation" `Quick test_task_rejects_tradeoff_violation;
          Alcotest.test_case "rejects empty" `Quick test_task_rejects_empty;
          Alcotest.test_case "rejects nonpositive" `Quick test_task_rejects_nonpositive;
          Alcotest.test_case "energy and charge" `Quick test_task_energy_and_charge;
          Alcotest.test_case "current bounds" `Quick test_task_current_bounds;
          Alcotest.test_case "point out of range" `Quick test_task_point_out_of_range;
          Alcotest.test_case "voltage mismatch" `Quick test_task_voltage_mismatch ] );
      ( "graph",
        [ Alcotest.test_case "accessors" `Quick test_graph_basic_accessors;
          Alcotest.test_case "rejects cycle" `Quick test_graph_rejects_cycle;
          Alcotest.test_case "rejects self loop" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "rejects mixed point counts" `Quick test_graph_rejects_mixed_point_counts;
          Alcotest.test_case "rejects duplicate ids" `Quick test_graph_rejects_duplicate_ids;
          Alcotest.test_case "collapses duplicate edges" `Quick test_graph_collapses_duplicate_edges;
          Alcotest.test_case "map tasks" `Quick test_graph_map_tasks_preserves_structure ] );
      ( "analysis",
        [ Alcotest.test_case "accepts valid orders" `Quick test_topological_accepts_valid;
          Alcotest.test_case "rejects invalid orders" `Quick test_topological_rejects_invalid;
          Alcotest.test_case "list schedule weight" `Quick test_list_schedule_respects_weight;
          Alcotest.test_case "tie-break low id" `Quick test_list_schedule_tie_breaks_low_id;
          Alcotest.test_case "all orders diamond" `Quick test_all_topological_orders_diamond;
          Alcotest.test_case "count orders chain" `Quick test_count_topological_orders_chain;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "column time" `Quick test_column_time;
          Alcotest.test_case "serial bounds" `Quick test_serial_time_bounds;
          Alcotest.test_case "current range" `Quick test_current_range;
          Alcotest.test_case "energy bounds" `Quick test_energy_bounds;
          Alcotest.test_case "energy vector" `Quick test_energy_vector_order ] );
      ( "designpoints",
        [ Alcotest.test_case "cube law matches G2" `Quick test_cube_law_matches_g2;
          Alcotest.test_case "cube law monotone" `Quick test_cube_law_monotone;
          Alcotest.test_case "linear law endpoints" `Quick test_linear_duration_law_endpoints;
          Alcotest.test_case "validation" `Quick test_law_validation ] );
      ( "generators",
        [ Alcotest.test_case "chain" `Quick test_generator_chain_structure;
          Alcotest.test_case "fork-join" `Quick test_generator_fork_join_structure;
          Alcotest.test_case "layered connected" `Quick test_generator_layered_connected;
          Alcotest.test_case "series-parallel valid" `Quick test_generator_series_parallel_valid;
          Alcotest.test_case "random dag extremes" `Quick test_generator_random_dag_edge_prob_extremes;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "feasible deadline" `Quick test_feasible_deadline_bounds ] );
      ( "instances",
        [ Alcotest.test_case "G3 shape" `Quick test_g3_shape;
          Alcotest.test_case "G3 bounds bracket deadlines" `Quick test_g3_serial_bounds_bracket_deadlines;
          Alcotest.test_case "G3 dependences" `Quick test_g3_fork_join_dependences;
          Alcotest.test_case "G2 shape" `Quick test_g2_shape;
          Alcotest.test_case "G2 cube-law consistency" `Quick test_g2_cube_law_consistency ] );
      ( "textio",
        [ Alcotest.test_case "roundtrip instances" `Quick test_textio_roundtrip_instances;
          Alcotest.test_case "parses minimal" `Quick test_textio_parses_minimal;
          Alcotest.test_case "comments and blanks" `Quick test_textio_comments_and_blanks;
          Alcotest.test_case "line numbers" `Quick test_textio_reports_line_numbers;
          Alcotest.test_case "rejects bad point" `Quick test_textio_rejects_bad_point;
          Alcotest.test_case "rejects duplicate task" `Quick test_textio_rejects_duplicate_task;
          Alcotest.test_case "dot output" `Quick test_textio_dot_mentions_all_tasks ] );
      ( "transform",
        [ Alcotest.test_case "reduction removes shortcut" `Quick test_reduction_removes_shortcut;
          Alcotest.test_case "reduction preserves reachability" `Quick test_reduction_preserves_reachability;
          Alcotest.test_case "reverse flips edges" `Quick test_reverse_flips_edges;
          Alcotest.test_case "merge collapses pipeline" `Quick test_merge_collapses_pipeline;
          Alcotest.test_case "merge preserves charge" `Quick test_merge_preserves_column_charge;
          Alcotest.test_case "merge keeps parallel structure" `Quick test_merge_keeps_parallel_structure;
          Alcotest.test_case "expand sequence" `Quick test_merge_expand_sequence;
          Alcotest.test_case "merge G3" `Quick test_merge_g3_structure ] );
      ( "tgff",
        [ Alcotest.test_case "parses sample" `Quick test_tgff_parses_sample;
          Alcotest.test_case "roundtrips instances" `Quick test_tgff_roundtrip_instances;
          Alcotest.test_case "missing type errors" `Quick test_tgff_missing_type_errors;
          Alcotest.test_case "bad row line number" `Quick test_tgff_bad_row_line_number;
          Alcotest.test_case "no blocks errors" `Quick test_tgff_no_blocks_errors;
          Alcotest.test_case "second graph ignored" `Quick test_tgff_second_graph_ignored ] );
      ("properties", qcheck_tests) ]
