(* Tests for the multiprocessor substrate: profile superposition,
   multi-PE schedules and the three heuristics. *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_battery
open Batsched_multiproc

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let model = Rakhmatov.model ()

let diamond () =
  let t id pairs = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) pairs in
  Graph.make ~label:"diamond" ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
    [ t 0 [ (400.0, 1.0); (200.0, 2.0); (50.0, 4.0) ];
      t 1 [ (600.0, 2.0); (300.0, 4.0); (80.0, 8.0) ];
      t 2 [ (500.0, 1.0); (250.0, 2.0); (60.0, 4.0) ];
      t 3 [ (450.0, 3.0); (220.0, 6.0); (70.0, 12.0) ] ]

(* --- Profile.superpose --- *)

let test_superpose_disjoint () =
  let a = Profile.of_intervals [ (0.0, 2.0, 100.0) ] in
  let b = Profile.of_intervals [ (5.0, 2.0, 200.0) ] in
  let s = Profile.superpose [ a; b ] in
  Alcotest.(check int) "two segments" 2 (List.length (Profile.intervals s));
  check_float "charge preserved"
    (Profile.total_charge a +. Profile.total_charge b)
    (Profile.total_charge s)

let test_superpose_overlap_adds () =
  let a = Profile.of_intervals [ (0.0, 4.0, 100.0) ] in
  let b = Profile.of_intervals [ (2.0, 4.0, 200.0) ] in
  let s = Profile.superpose [ a; b ] in
  check_float "peak adds" 300.0 (Profile.peak_current s);
  check_float "charge preserved" (400.0 +. 800.0) (Profile.total_charge s);
  check_float "length" 6.0 (Profile.length s)

let test_superpose_identical () =
  let a = Profile.constant ~current:100.0 ~duration:3.0 in
  let s = Profile.superpose [ a; a; a ] in
  Alcotest.(check int) "one segment" 1 (List.length (Profile.intervals s));
  check_float "tripled" 300.0 (Profile.peak_current s)

let test_superpose_empty () =
  check_float "empty" 0.0 (Profile.length (Profile.superpose []));
  check_float "only empties" 0.0
    (Profile.length (Profile.superpose [ Profile.empty; Profile.empty ]))

let test_superpose_sigma_exceeds_sequential ()=
  (* same work concurrently stresses the battery more than serially *)
  let a = Profile.constant ~current:400.0 ~duration:10.0 in
  let b = Profile.constant ~current:400.0 ~duration:10.0 in
  let parallel = Profile.superpose [ a; b ] in
  let serial = Profile.sequential [ (400.0, 10.0); (400.0, 10.0) ] in
  Alcotest.(check bool) "rate capacity punishes concurrency" true
    (Model.sigma_end model parallel > Model.sigma_end model serial)

(* --- Mschedule --- *)

let test_mschedule_list_schedule_valid () =
  let g = diamond () in
  let sched =
    Mschedule.list_schedule g ~pes:(Mschedule.Pe.uniform 2)
      ~assignment:(Assignment.all_fastest g)
      ~priority:(fun v -> float_of_int (-v))
  in
  (* structural validation happens in make; rebuild through it *)
  let rebuilt =
    Mschedule.make g ~pes:(Mschedule.Pe.uniform 2)
      (List.init (Graph.num_tasks g) (fun i -> Mschedule.placement sched i))
  in
  Alcotest.(check bool) "valid" true (Mschedule.makespan g rebuilt > 0.0)

let test_mschedule_parallel_beats_serial_makespan () =
  let g = diamond () in
  let ms pes =
    Mschedule.makespan g
      (Mschedule.list_schedule g ~pes:(Mschedule.Pe.uniform pes)
         ~assignment:(Assignment.all_fastest g)
         ~priority:(fun _ -> 0.0))
  in
  (* diamond at fastest: serial 7; two PEs overlap T2/T3: 1+2+3 = 6 *)
  check_float "serial" 7.0 (ms 1);
  check_float "parallel" 6.0 (ms 2)

let test_mschedule_rejects_overlap () =
  let g = diamond () in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Mschedule.make: overlapping tasks on one PE")
    (fun () ->
      ignore
        (Mschedule.make g ~pes:(Mschedule.Pe.uniform 1)
           [ { Mschedule.pe = 0; column = 0; start = 0.0 };
             { Mschedule.pe = 0; column = 0; start = 0.5 };
             { Mschedule.pe = 0; column = 0; start = 3.0 };
             { Mschedule.pe = 0; column = 0; start = 4.0 } ]))

let test_mschedule_rejects_dependence_violation () =
  let g = diamond () in
  Alcotest.check_raises "dependence"
    (Invalid_argument "Mschedule.make: dependence violated") (fun () ->
      ignore
        (Mschedule.make g ~pes:(Mschedule.Pe.uniform 2)
           [ { Mschedule.pe = 0; column = 0; start = 0.0 };
             { Mschedule.pe = 1; column = 0; start = 0.0 };
             { Mschedule.pe = 0; column = 0; start = 1.0 };
             { Mschedule.pe = 1; column = 0; start = 3.0 } ]))

let test_mschedule_profile_charge () =
  let g = diamond () in
  let sched =
    Mschedule.list_schedule g ~pes:(Mschedule.Pe.uniform 2)
      ~assignment:(Assignment.all_fastest g)
      ~priority:(fun _ -> 0.0)
  in
  let p = Mschedule.to_profile g sched in
  check_close 1e-6 "charge preserved"
    (Assignment.total_charge g (Assignment.all_fastest g))
    (Profile.total_charge p)

let test_mschedule_single_pe_matches_sequential () =
  (* on one PE the multiproc machinery degenerates to the sequential
     schedule: same makespan, same sigma *)
  let g = diamond () in
  let a = Assignment.all_fastest g in
  let msched =
    Mschedule.list_schedule g ~pes:(Mschedule.Pe.uniform 1) ~assignment:a
      ~priority:(fun v -> float_of_int (Graph.num_tasks g - v))
  in
  let seq = Schedule.make g ~sequence:[ 0; 1; 2; 3 ] ~assignment:a in
  check_close 1e-9 "makespan" (Schedule.finish_time g seq)
    (Mschedule.makespan g msched);
  check_close 1e-6 "sigma"
    (Schedule.battery_cost ~model g seq)
    (Mschedule.battery_cost ~model g msched)

(* --- heterogeneous PEs --- *)

let test_pe_big_little_composition () =
  let pes = Mschedule.Pe.big_little ~big:1 ~little:2 in
  Alcotest.(check int) "three cores" 3 (Array.length pes);
  check_float "big speed" 1.0 pes.(0).Mschedule.Pe.speed;
  check_float "little speed" 0.6 pes.(1).Mschedule.Pe.speed;
  check_float "little scale" 0.35 pes.(2).Mschedule.Pe.current_scale

let test_pe_speed_stretches_duration () =
  let g = diamond () in
  let pes = [| { Mschedule.Pe.speed = 0.5; current_scale = 1.0 } |] in
  let sched =
    Mschedule.list_schedule g ~pes ~assignment:(Assignment.all_fastest g)
      ~priority:(fun _ -> 0.0)
  in
  (* serial fastest takes 7 at speed 1, so 14 at speed 0.5 *)
  check_close 1e-9 "doubled" 14.0 (Mschedule.makespan g sched)

let test_pe_current_scale_cuts_sigma () =
  let g = diamond () in
  let run scale =
    let pes = [| { Mschedule.Pe.speed = 1.0; current_scale = scale } |] in
    Mschedule.battery_cost ~model g
      (Mschedule.list_schedule g ~pes ~assignment:(Assignment.all_fastest g)
         ~priority:(fun _ -> 0.0))
  in
  Alcotest.(check bool) "cheaper core" true (run 0.35 < run 1.0)

let test_pe_little_core_attracts_when_time_allows () =
  (* with one big and one little core and lots of slack, the
     battery-aware heuristic still produces a feasible schedule whose
     sigma beats the big-core-only latency schedule *)
  let g = Instances.g3 in
  let pes = Mschedule.Pe.big_little ~big:1 ~little:1 in
  let aware = Mheuristics.battery_aware ~model g ~pes ~deadline:230.0 in
  let fast_big =
    Mheuristics.makespan_fastest g ~pes:(Mschedule.Pe.uniform 1)
  in
  Alcotest.(check bool) "fits" true (Mschedule.makespan g aware <= 230.0 +. 1e-9);
  Alcotest.(check bool) "beats hot single core" true
    (Mschedule.battery_cost ~model g aware
     < Mschedule.battery_cost ~model g fast_big)

(* --- Mheuristics --- *)

let test_heuristics_feasibility () =
  let g = Instances.g3 in
  List.iter
    (fun num_pes ->
      List.iter
        (fun deadline ->
          let pes = Mschedule.Pe.uniform num_pes in
          let sched = Mheuristics.slack_downscale g ~pes ~deadline in
          Alcotest.(check bool) "fits" true
            (Mschedule.makespan g sched <= deadline +. 1e-9);
          let aware = Mheuristics.battery_aware ~model g ~pes ~deadline in
          Alcotest.(check bool) "aware fits" true
            (Mschedule.makespan g aware <= deadline +. 1e-9))
        [ 100.0; 230.0 ])
    [ 1; 2; 3 ]

let test_heuristics_battery_aware_no_worse () =
  let g = Instances.g3 in
  List.iter
    (fun num_pes ->
      let pes = Mschedule.Pe.uniform num_pes in
      let down = Mheuristics.slack_downscale g ~pes ~deadline:150.0 in
      let aware = Mheuristics.battery_aware ~model g ~pes ~deadline:150.0 in
      Alcotest.(check bool) "no worse" true
        (Mschedule.battery_cost ~model g aware
         <= Mschedule.battery_cost ~model g down +. 1e-6))
    [ 1; 2 ]

let test_heuristics_infeasible () =
  let g = diamond () in
  Alcotest.check_raises "infeasible" Mheuristics.Infeasible (fun () ->
      ignore
        (Mheuristics.slack_downscale g ~pes:(Mschedule.Pe.uniform 2)
           ~deadline:3.0))

let test_heuristics_parallel_slack_pays () =
  (* with 2 PEs and the serial-fastest time as deadline, the downscaler
     finds strictly cheaper schedules than 1 PE can *)
  let g = Instances.g3 in
  let deadline = 100.0 in
  let sigma n =
    Mschedule.battery_cost ~model g
      (Mheuristics.slack_downscale g ~pes:(Mschedule.Pe.uniform n) ~deadline)
  in
  Alcotest.(check bool) "two PEs cheaper" true (sigma 2 < sigma 1)

(* --- qcheck properties --- *)

let gen_case =
  QCheck.(map
            (fun (seed, npes) ->
              let rng = Batsched_numeric.Rng.create seed in
              let spec =
                { Generators.default_spec with Generators.num_points = 3 }
              in
              let g = Generators.fork_join ~rng ~spec ~widths:[ 3; 2 ] in
              (g, 1 + npes, seed))
            (pair (int_bound 10_000) (int_bound 2)))

let prop_list_schedule_always_valid =
  QCheck.Test.make ~count:60
    ~name:"multiproc list schedules always validate" gen_case
    (fun (g, npes, seed) ->
      let rng = Batsched_numeric.Rng.create (seed + 1) in
      let assignment =
        Assignment.of_list g
          (List.init (Graph.num_tasks g) (fun _ ->
               Batsched_numeric.Rng.int rng (Graph.num_points g)))
      in
      let sched =
        Mschedule.list_schedule g ~pes:(Mschedule.Pe.uniform npes) ~assignment
          ~priority:(fun v -> Batsched_numeric.Rng.float rng (float_of_int (v + 1)))
      in
      (* rebuilding through make re-runs all structural validation *)
      match
        Mschedule.make g ~pes:(Mschedule.Pe.uniform npes)
          (List.init (Graph.num_tasks g) (Mschedule.placement sched))
      with
      | (_ : Mschedule.t) -> true
      | exception Invalid_argument _ -> false)

let prop_superpose_preserves_charge =
  QCheck.Test.make ~count:60 ~name:"superposition preserves total charge"
    QCheck.(list_of_size Gen.(int_range 1 6)
              (triple (float_range 0.0 50.0) (float_range 0.5 10.0)
                 (float_range 10.0 900.0)))
    (fun triples ->
      let profiles =
        List.map
          (fun (start, d, i) -> Profile.of_intervals [ (start, d, i) ])
          triples
      in
      let total =
        List.fold_left (fun acc p -> acc +. Profile.total_charge p) 0.0 profiles
      in
      Float.abs (Profile.total_charge (Profile.superpose profiles) -. total)
      < 1e-6)

let prop_more_pes_never_longer_makespan =
  QCheck.Test.make ~count:60 ~name:"extra PEs never lengthen the makespan"
    gen_case (fun (g, npes, _) ->
      let ms n =
        Mschedule.makespan g
          (Mheuristics.makespan_fastest g ~pes:(Mschedule.Pe.uniform n))
      in
      ms (npes + 1) <= ms npes +. 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_list_schedule_always_valid;
      prop_superpose_preserves_charge;
      prop_more_pes_never_longer_makespan ]

let () =
  Alcotest.run "multiproc"
    [ ( "superpose",
        [ Alcotest.test_case "disjoint" `Quick test_superpose_disjoint;
          Alcotest.test_case "overlap adds" `Quick test_superpose_overlap_adds;
          Alcotest.test_case "identical" `Quick test_superpose_identical;
          Alcotest.test_case "empty" `Quick test_superpose_empty;
          Alcotest.test_case "concurrency costs sigma" `Quick test_superpose_sigma_exceeds_sequential ] );
      ( "mschedule",
        [ Alcotest.test_case "list schedule valid" `Quick test_mschedule_list_schedule_valid;
          Alcotest.test_case "parallel makespan" `Quick test_mschedule_parallel_beats_serial_makespan;
          Alcotest.test_case "rejects overlap" `Quick test_mschedule_rejects_overlap;
          Alcotest.test_case "rejects dependence violation" `Quick test_mschedule_rejects_dependence_violation;
          Alcotest.test_case "profile charge" `Quick test_mschedule_profile_charge;
          Alcotest.test_case "single PE degenerates" `Quick test_mschedule_single_pe_matches_sequential ] );
      ( "heterogeneous",
        [ Alcotest.test_case "big.LITTLE composition" `Quick test_pe_big_little_composition;
          Alcotest.test_case "speed stretches duration" `Quick test_pe_speed_stretches_duration;
          Alcotest.test_case "current scale cuts sigma" `Quick test_pe_current_scale_cuts_sigma;
          Alcotest.test_case "little core pays off" `Quick test_pe_little_core_attracts_when_time_allows ] );
      ( "heuristics",
        [ Alcotest.test_case "feasibility" `Quick test_heuristics_feasibility;
          Alcotest.test_case "battery-aware no worse" `Quick test_heuristics_battery_aware_no_worse;
          Alcotest.test_case "infeasible" `Quick test_heuristics_infeasible;
          Alcotest.test_case "parallel slack pays" `Quick test_heuristics_parallel_slack_pays ] );
      ("properties", qcheck_tests) ]
