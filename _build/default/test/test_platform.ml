(* Tests for the platform substrate: the CPU current/time model, the
   application compiler and the discrete-event executor. *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_platform

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let tiny_cpu ?(transition_latency = 0.0) ?(transition_charge = 0.0) () =
  Cpu.make ~name:"tiny" ~i_base:10.0 ~i_dynamic:200.0 ~transition_latency
    ~transition_charge
    [ { Cpu.voltage = 1.0; frequency_mhz = 100.0 };
      { Cpu.voltage = 0.5; frequency_mhz = 50.0 } ]

let two_task_app =
  Application.make
    ~workloads:
      [ { Application.name = "a"; megacycles = 60_000.0 };
        { Application.name = "b"; megacycles = 30_000.0 } ]
    ~edges:[ (0, 1) ]

(* --- Cpu --- *)

let test_cpu_sorts_fastest_first () =
  let cpu =
    Cpu.make ~name:"x" ~i_dynamic:100.0
      [ { Cpu.voltage = 0.5; frequency_mhz = 50.0 };
        { Cpu.voltage = 1.0; frequency_mhz = 100.0 } ]
  in
  check_float "fastest current" 100.0 (Cpu.current_at cpu 0)

let test_cpu_cube_scaling () =
  (* half voltage, half clock: dynamic current scales by 1/8 *)
  let cpu = tiny_cpu () in
  check_float "reference" 210.0 (Cpu.current_at cpu 0);
  check_float "scaled" (10.0 +. (200.0 /. 8.0)) (Cpu.current_at cpu 1)

let test_cpu_duration () =
  let cpu = tiny_cpu () in
  (* 60000 Mcycles at 100 MHz = 600 s = 10 min; at 50 MHz = 20 min *)
  check_float "fast" 10.0 (Cpu.duration_of cpu 0 ~megacycles:60_000.0);
  check_float "slow" 20.0 (Cpu.duration_of cpu 1 ~megacycles:60_000.0)

let test_cpu_design_points_bridge () =
  let cpu = tiny_cpu () in
  let points = Cpu.design_points cpu ~megacycles:60_000.0 in
  Alcotest.(check int) "two points" 2 (List.length points);
  let fastest = List.hd points in
  check_float "duration" 10.0 fastest.Task.duration;
  check_float "voltage" 1.0 fastest.Task.voltage

let test_cpu_strongarm_sanity () =
  let cpu = Cpu.strongarm in
  Alcotest.(check int) "five points" 5 (Cpu.num_points cpu);
  Alcotest.(check bool) "current falls with index" true
    (Cpu.current_at cpu 0 > Cpu.current_at cpu 4);
  Alcotest.(check bool) "floor retained" true (Cpu.current_at cpu 4 > 30.0)

let test_cpu_validation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Cpu.make: duplicate frequencies") (fun () ->
      ignore
        (Cpu.make ~name:"bad" ~i_dynamic:1.0
           [ { Cpu.voltage = 1.0; frequency_mhz = 100.0 };
             { Cpu.voltage = 0.9; frequency_mhz = 100.0 } ]))

(* --- Application --- *)

let test_application_compile_shape () =
  let cpu = tiny_cpu () in
  let g = Application.compile ~label:"two" two_task_app ~cpu in
  Alcotest.(check int) "tasks" 2 (Graph.num_tasks g);
  Alcotest.(check int) "points" 2 (Graph.num_points g);
  Alcotest.(check int) "edges" 1 (Graph.num_edges g);
  (* the compiled data round-trips the CPU model *)
  check_float "duration" 10.0 (Task.point (Graph.task g 0) 0).Task.duration;
  check_float "current" 210.0 (Task.point (Graph.task g 0) 0).Task.current

let test_application_presets_compile () =
  let cpu = Cpu.strongarm in
  List.iter
    (fun app ->
      let g = Application.compile app ~cpu in
      Alcotest.(check bool) "schedulable" true
        (Analysis.is_topological g (Analysis.any_topological_order g)))
    [ Application.video_pipeline; Application.sensor_fusion ]

let test_application_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Application.make: no workloads")
    (fun () -> ignore (Application.make ~workloads:[] ~edges:[]))

(* --- Executor --- *)

let schedule_for g cols =
  Schedule.make g
    ~sequence:(Analysis.any_topological_order g)
    ~assignment:(Assignment.of_list g cols)

let test_executor_free_transitions_match_analytic () =
  let cpu = tiny_cpu () in
  let g = Application.compile two_task_app ~cpu in
  let sched = schedule_for g [ 0; 1 ] in
  check_close 1e-12 "no drift" 0.0
    (Executor.validate_against_analytic two_task_app ~cpu ~schedule:sched)

let test_executor_event_layout () =
  let cpu = tiny_cpu () in
  let g = Application.compile two_task_app ~cpu in
  let sched = schedule_for g [ 0; 0 ] in
  let run = Executor.execute two_task_app ~cpu ~schedule:sched in
  Alcotest.(check int) "two events" 2 (List.length run.Executor.events);
  Alcotest.(check int) "no switches" 0 run.Executor.transitions;
  check_float "finish" 15.0 run.Executor.finish

let test_executor_counts_transitions () =
  let cpu = tiny_cpu ~transition_latency:0.5 ~transition_charge:50.0 () in
  let g = Application.compile two_task_app ~cpu in
  let sched = schedule_for g [ 0; 1 ] in
  let run = Executor.execute two_task_app ~cpu ~schedule:sched in
  Alcotest.(check int) "one switch" 1 run.Executor.transitions;
  check_float "overhead time" 0.5 run.Executor.overhead_time;
  check_float "overhead charge" 50.0 run.Executor.overhead_charge;
  (* 10 (fast a) + 0.5 (switch) + 20/2 = wait: task b at slow point:
     30000 Mc at 50 MHz = 10 min; total = 10 + 0.5 + 10 *)
  check_float "finish includes overhead" 20.5 run.Executor.finish

let test_executor_profile_charge () =
  let cpu = tiny_cpu ~transition_latency:0.5 ~transition_charge:50.0 () in
  let g = Application.compile two_task_app ~cpu in
  let sched = schedule_for g [ 0; 1 ] in
  let run = Executor.execute two_task_app ~cpu ~schedule:sched in
  (* a: 210 mA * 10 min; switch: 50; b: 35 mA * 10 min *)
  check_close 1e-6 "profile coulombs" (2100.0 +. 50.0 +. 350.0)
    (Batsched_battery.Profile.total_charge run.Executor.profile)

let test_executor_task_count_mismatch () =
  let cpu = tiny_cpu () in
  let other =
    Application.make
      ~workloads:[ { Application.name = "solo"; megacycles = 1000.0 } ]
      ~edges:[]
  in
  let g = Application.compile two_task_app ~cpu in
  let sched = schedule_for g [ 0; 1 ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Executor.execute: task count mismatch") (fun () ->
      ignore (Executor.execute other ~cpu ~schedule:sched))

(* full loop: compile, schedule battery-aware, execute, costs agree *)
let test_end_to_end_scheduling_on_platform () =
  let cpu = Cpu.strongarm in
  let app = Application.sensor_fusion in
  let g = Application.compile ~label:"sf" app ~cpu in
  let fastest, slowest = Analysis.serial_time_bounds g in
  let deadline = fastest +. (0.5 *. (slowest -. fastest)) in
  let cfg = Batsched.Config.make ~deadline () in
  let result = Batsched.Iterate.run cfg g in
  let run = Executor.execute app ~cpu ~schedule:result.Batsched.Iterate.schedule in
  check_close 1e-6 "finish agrees" result.Batsched.Iterate.finish
    run.Executor.finish;
  let model = Batsched_battery.Rakhmatov.model () in
  check_close 1e-6 "sigma agrees" result.Batsched.Iterate.sigma
    (Batsched_battery.Model.sigma_end model run.Executor.profile)

let () =
  Alcotest.run "platform"
    [ ( "cpu",
        [ Alcotest.test_case "sorts fastest first" `Quick test_cpu_sorts_fastest_first;
          Alcotest.test_case "cube scaling" `Quick test_cpu_cube_scaling;
          Alcotest.test_case "duration" `Quick test_cpu_duration;
          Alcotest.test_case "design-point bridge" `Quick test_cpu_design_points_bridge;
          Alcotest.test_case "strongarm sanity" `Quick test_cpu_strongarm_sanity;
          Alcotest.test_case "validation" `Quick test_cpu_validation ] );
      ( "application",
        [ Alcotest.test_case "compile shape" `Quick test_application_compile_shape;
          Alcotest.test_case "presets compile" `Quick test_application_presets_compile;
          Alcotest.test_case "validation" `Quick test_application_validation ] );
      ( "executor",
        [ Alcotest.test_case "free transitions match" `Quick test_executor_free_transitions_match_analytic;
          Alcotest.test_case "event layout" `Quick test_executor_event_layout;
          Alcotest.test_case "counts transitions" `Quick test_executor_counts_transitions;
          Alcotest.test_case "profile charge" `Quick test_executor_profile_charge;
          Alcotest.test_case "task count mismatch" `Quick test_executor_task_count_mismatch;
          Alcotest.test_case "end to end" `Quick test_end_to_end_scheduling_on_platform ] ) ]
