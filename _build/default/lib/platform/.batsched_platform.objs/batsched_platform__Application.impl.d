lib/platform/application.ml: Batsched_taskgraph Cpu Graph List Task
