lib/platform/executor.mli: Application Batsched_battery Batsched_sched Cpu Profile Schedule
