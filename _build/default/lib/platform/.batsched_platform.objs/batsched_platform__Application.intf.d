lib/platform/application.mli: Batsched_taskgraph Cpu Graph
