lib/platform/cpu.mli: Batsched_taskgraph
