lib/platform/cpu.ml: Array Batsched_taskgraph List
