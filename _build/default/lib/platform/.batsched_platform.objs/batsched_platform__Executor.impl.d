lib/platform/executor.ml: Application Array Assignment Batsched_battery Batsched_sched Batsched_taskgraph Cpu Float Graph List Profile Schedule Task
