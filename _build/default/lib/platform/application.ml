open Batsched_taskgraph

type workload = {
  name : string;
  megacycles : float;
}

type t = {
  workloads : workload list;
  edges : (int * int) list;
}

let make ~workloads ~edges =
  if workloads = [] then invalid_arg "Application.make: no workloads";
  List.iter
    (fun w ->
      if not (w.megacycles > 0.0) then
        invalid_arg "Application.make: megacycles <= 0")
    workloads;
  { workloads; edges }

let workloads t = t.workloads

let edges t = t.edges

let compile ?(label = "") t ~cpu =
  let tasks =
    List.mapi
      (fun id w ->
        Task.make ~id ~name:w.name (Cpu.design_points cpu ~megacycles:w.megacycles))
      t.workloads
  in
  Graph.make ~label ~edges:t.edges tasks

let video_pipeline =
  make
    ~workloads:
      [ { name = "capture"; megacycles = 40_000.0 };
        { name = "entropy"; megacycles = 90_000.0 };
        { name = "itransform"; megacycles = 70_000.0 };
        { name = "mc-top"; megacycles = 60_000.0 };
        { name = "mc-bottom"; megacycles = 60_000.0 };
        { name = "render"; megacycles = 50_000.0 } ]
    ~edges:[ (0, 1); (1, 2); (2, 3); (2, 4); (3, 5); (4, 5) ]

let sensor_fusion =
  make
    ~workloads:
      [ { name = "sample"; megacycles = 25_000.0 };
        { name = "imu-filter"; megacycles = 45_000.0 };
        { name = "gps-filter"; megacycles = 35_000.0 };
        { name = "mag-filter"; megacycles = 30_000.0 };
        { name = "fuse"; megacycles = 80_000.0 };
        { name = "classify"; megacycles = 65_000.0 };
        { name = "log"; megacycles = 20_000.0 };
        { name = "compress"; megacycles = 55_000.0 };
        { name = "transmit"; megacycles = 35_000.0 } ]
    ~edges:
      [ (0, 1); (0, 2); (0, 3); (1, 4); (2, 4); (3, 4); (4, 5); (4, 6);
        (5, 7); (6, 7); (7, 8) ]
