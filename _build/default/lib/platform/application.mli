(** Applications as platform workloads: tasks sized in megacycles with
    precedence edges, compiled onto a {!Cpu} into the scheduler's task
    graph. *)

open Batsched_taskgraph

type workload = {
  name : string;
  megacycles : float;  (** > 0 *)
}

type t

val make : workloads:workload list -> edges:(int * int) list -> t
(** [make ~workloads ~edges] — indices into [workloads] as in
    {!Graph.make}; validation (acyclicity etc.) is deferred to
    compilation.
    @raise Invalid_argument on empty workloads or non-positive sizes. *)

val workloads : t -> workload list
val edges : t -> (int * int) list

val compile : ?label:string -> t -> cpu:Cpu.t -> Graph.t
(** Derive every task's design points from the CPU's operating points
    and build the scheduler-facing graph.
    @raise Invalid_argument via {!Graph.make} on structural errors. *)

val video_pipeline : t
(** A 6-stage motion-compensated video decode pipeline (capture,
    entropy decode, inverse transform, motion compensation in two
    parallel slices, render) — a realistic portable workload for
    examples and experiments. *)

val sensor_fusion : t
(** A 9-task sensor-fusion/telemetry loop with a fork-join shape. *)
