(** Discrete-event execution of a schedule on a {!Cpu}.

    Where the scheduler reasons over analytic (current, duration)
    estimates, the executor actually "runs" the schedule: tasks execute
    back to back at their assigned operating points, and every change
    of operating point between consecutive tasks costs the CPU's
    transition latency and charge — an overhead the paper's model
    ignores.  The result is an event trace and the induced discharge
    profile, so predictions can be compared against (simulated)
    reality. *)

open Batsched_sched
open Batsched_battery

type event = {
  task : int;          (** task id, or -1 for a transition event *)
  op_index : int;      (** operating point in effect *)
  start : float;       (** minutes *)
  finish : float;
  current : float;     (** mA drawn during the event *)
}

type run = {
  events : event list;       (** in time order *)
  profile : Profile.t;       (** the executed discharge profile *)
  finish : float;            (** completion time, minutes *)
  transitions : int;         (** operating-point switches performed *)
  overhead_time : float;     (** minutes spent switching *)
  overhead_charge : float;   (** mA*min spent switching *)
}

val execute :
  Application.t -> cpu:Cpu.t -> schedule:Schedule.t -> run
(** [execute app ~cpu ~schedule] runs [schedule] (built against
    [Application.compile app ~cpu]) on the simulator.  The initial
    operating point is the first task's, so a uniform assignment incurs
    no transitions.
    @raise Invalid_argument if the schedule's task count or column
    count disagrees with the application/CPU. *)

val validate_against_analytic :
  Application.t -> cpu:Cpu.t -> schedule:Schedule.t -> float
(** Largest absolute relative error between the executed event
    durations/currents and the analytic design-point values — 0 (up to
    float noise) when transitions are free, since the executor and the
    estimator share the CPU model.  Used by tests and the platform
    experiment. *)
