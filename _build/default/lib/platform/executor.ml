open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

type event = {
  task : int;
  op_index : int;
  start : float;
  finish : float;
  current : float;
}

type run = {
  events : event list;
  profile : Profile.t;
  finish : float;
  transitions : int;
  overhead_time : float;
  overhead_charge : float;
}

let execute app ~cpu ~(schedule : Schedule.t) =
  let workloads = Array.of_list (Application.workloads app) in
  let n = Array.length workloads in
  if List.length schedule.Schedule.sequence <> n then
    invalid_arg "Executor.execute: task count mismatch";
  let clock = ref 0.0 in
  let events = ref [] in
  let transitions = ref 0 in
  let overhead_time = ref 0.0 in
  let overhead_charge = ref 0.0 in
  let current_op = ref None in
  List.iter
    (fun i ->
      let j = Assignment.column schedule.Schedule.assignment i in
      if j >= Cpu.num_points cpu then
        invalid_arg "Executor.execute: operating point out of range";
      (match !current_op with
      | Some op when op <> j ->
          (* switch operating points before the task starts *)
          incr transitions;
          let lat = cpu.Cpu.transition_latency in
          let chg = cpu.Cpu.transition_charge in
          if lat > 0.0 || chg > 0.0 then begin
            let current = if lat > 0.0 then chg /. lat else 0.0 in
            if lat > 0.0 then
              events :=
                { task = -1; op_index = j; start = !clock;
                  finish = !clock +. lat; current }
                :: !events;
            overhead_time := !overhead_time +. lat;
            overhead_charge := !overhead_charge +. chg;
            clock := !clock +. lat
          end
      | _ -> ());
      current_op := Some j;
      let megacycles = workloads.(i).Application.megacycles in
      let duration = Cpu.duration_of cpu j ~megacycles in
      let current = Cpu.current_at cpu j in
      events :=
        { task = i; op_index = j; start = !clock;
          finish = !clock +. duration; current }
        :: !events;
      clock := !clock +. duration)
    schedule.Schedule.sequence;
  let events = List.rev !events in
  let profile =
    Profile.of_intervals
      (List.filter_map
         (fun e ->
           if e.current > 0.0 then Some (e.start, e.finish -. e.start, e.current)
           else None)
         events)
  in
  { events;
    profile;
    finish = !clock;
    transitions = !transitions;
    overhead_time = !overhead_time;
    overhead_charge = !overhead_charge }

let validate_against_analytic app ~cpu ~(schedule : Schedule.t) =
  let g = Application.compile app ~cpu in
  let run = execute app ~cpu ~schedule in
  List.fold_left
    (fun acc e ->
      if e.task < 0 then acc
      else begin
        let p = Task.point (Graph.task g e.task) e.op_index in
        let rel_d =
          Float.abs (e.finish -. e.start -. p.Task.duration)
          /. p.Task.duration
        in
        let rel_i = Float.abs (e.current -. p.Task.current) /. p.Task.current in
        Float.max acc (Float.max rel_d rel_i)
      end)
    0.0 run.events
