(** A voltage/frequency-scalable processor model.

    The paper assumes per-design-point current and time {e estimates}
    exist; this module is the estimator.  A CPU exposes discrete
    operating points (voltage, clock).  Platform current at an
    operating point follows the classic DVS first-order model the
    paper's data generation implies:

    {[ I(V, f) = I_base + I_dyn * (V / V_ref)^2 * (f / f_ref) ]}

    With frequency proportional to voltage (the scaling the paper
    uses), current scales with the cube of the voltage ratio on top of
    a base floor for memory/display — reproducing both the cube law
    and its deviation at low power.  A task of [w] megacycles runs for
    [w / f] time at clock [f]. *)

type op_point = {
  voltage : float;         (** volts, > 0 *)
  frequency_mhz : float;   (** MHz, > 0 *)
}

type t = private {
  name : string;
  points : op_point array;   (** sorted fastest (highest clock) first *)
  i_dynamic : float;         (** dynamic current at the reference point, mA *)
  i_base : float;            (** platform floor current, mA, >= 0 *)
  transition_latency : float;(** minutes lost per operating-point switch *)
  transition_charge : float; (** mA*min drawn per switch *)
}

val make :
  ?i_base:float -> ?transition_latency:float -> ?transition_charge:float ->
  name:string -> i_dynamic:float -> op_point list -> t
(** [make ~name ~i_dynamic points] validates and sorts the operating
    points (reference = the fastest).  Defaults: no base current, free
    transitions.
    @raise Invalid_argument on empty points, non-positive fields, or
    duplicate frequencies. *)

val strongarm : t
(** An SA-1100-class CPU (the Itsy's processor): 59–221 MHz over
    0.79–1.5 V in five steps, ~230 mA dynamic at full speed, 30 mA
    platform floor. *)

val num_points : t -> int

val current_at : t -> int -> float
(** Platform current (mA) at operating-point index [j] (0 = fastest).
    @raise Invalid_argument if out of range. *)

val duration_of : t -> int -> megacycles:float -> float
(** Execution time in minutes of [megacycles] at point [j].
    @raise Invalid_argument on non-positive megacycles or bad index. *)

val design_points : t -> megacycles:float -> Batsched_taskgraph.Task.design_point list
(** The (current, duration, voltage) triples a task of this size
    exposes on this CPU — the bridge into the scheduler's data model. *)
