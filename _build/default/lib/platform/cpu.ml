type op_point = {
  voltage : float;
  frequency_mhz : float;
}

type t = {
  name : string;
  points : op_point array;
  i_dynamic : float;
  i_base : float;
  transition_latency : float;
  transition_charge : float;
}

let make ?(i_base = 0.0) ?(transition_latency = 0.0) ?(transition_charge = 0.0)
    ~name ~i_dynamic points =
  if points = [] then invalid_arg "Cpu.make: no operating points";
  List.iter
    (fun p ->
      if not (p.voltage > 0.0) then invalid_arg "Cpu.make: voltage <= 0";
      if not (p.frequency_mhz > 0.0) then invalid_arg "Cpu.make: frequency <= 0")
    points;
  if not (i_dynamic > 0.0) then invalid_arg "Cpu.make: i_dynamic <= 0";
  if i_base < 0.0 then invalid_arg "Cpu.make: i_base < 0";
  if transition_latency < 0.0 then invalid_arg "Cpu.make: transition latency < 0";
  if transition_charge < 0.0 then invalid_arg "Cpu.make: transition charge < 0";
  let arr = Array.of_list points in
  Array.sort (fun a b -> compare b.frequency_mhz a.frequency_mhz) arr;
  for j = 1 to Array.length arr - 1 do
    if arr.(j).frequency_mhz = arr.(j - 1).frequency_mhz then
      invalid_arg "Cpu.make: duplicate frequencies"
  done;
  { name; points = arr; i_dynamic; i_base; transition_latency; transition_charge }

let strongarm =
  make ~name:"sa1100" ~i_dynamic:230.0 ~i_base:30.0
    [ { voltage = 1.5; frequency_mhz = 221.0 };
      { voltage = 1.3; frequency_mhz = 192.0 };
      { voltage = 1.15; frequency_mhz = 162.0 };
      { voltage = 0.95; frequency_mhz = 133.0 };
      { voltage = 0.79; frequency_mhz = 59.0 } ]

let num_points cpu = Array.length cpu.points

let point cpu j =
  if j < 0 || j >= num_points cpu then invalid_arg "Cpu: point index out of range";
  cpu.points.(j)

let current_at cpu j =
  let p = point cpu j and r = cpu.points.(0) in
  cpu.i_base
  +. cpu.i_dynamic
     *. (p.voltage /. r.voltage) *. (p.voltage /. r.voltage)
     *. (p.frequency_mhz /. r.frequency_mhz)

let duration_of cpu j ~megacycles =
  if not (megacycles > 0.0) then invalid_arg "Cpu.duration_of: megacycles <= 0";
  let p = point cpu j in
  (* megacycles / (MHz * 60) = minutes *)
  megacycles /. (p.frequency_mhz *. 60.0)

let design_points cpu ~megacycles =
  List.init (num_points cpu) (fun j ->
      { Batsched_taskgraph.Task.current = current_at cpu j;
        duration = duration_of cpu j ~megacycles;
        voltage = (point cpu j).voltage })
