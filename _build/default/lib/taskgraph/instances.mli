(** The paper's published benchmark instances, transcribed verbatim.

    [g3] is the 15-task, 5-design-point fork-join example of Sec. 4.2
    (Table 1); [g2] is the 9-task, 4-design-point robotic-arm controller
    of the Sec. 5 case study (Figure 5).  Currents and durations are
    the published numbers; per-column voltages come from the published
    scaling factors.  G2's edge set is reconstructed (the original is
    only a bitmap figure) — see DESIGN.md, "Substitutions". *)

val g3 : Graph.t
(** Table 1: 15 tasks, 5 design points, fork-join dependences; the
    illustrative example is run with deadline 230 min, beta 0.273. *)

val g3_deadline : float
(** 230.0 — the deadline used in Sec. 4.2. *)

val g2 : Graph.t
(** Figure 5: 9-task robotic-arm controller, 4 design points. *)

val g2_deadlines : float list
(** [55; 75; 95] — the case-study deadlines of Table 4. *)

val g3_deadlines : float list
(** [100; 150; 230] — the G3 deadlines of Table 4. *)
