(** Synthetic task-graph families.

    All generators are deterministic given the {!Batsched_numeric.Rng.t}
    and produce graphs whose design points follow the paper's cube
    scaling law (see {!Designpoints}).  Fork-join graphs are the family
    the paper highlights ("such task graphs have been used in
    multiprocessor scheduling research to model the structure of
    commonly encountered parallel algorithms"). *)

type spec = {
  num_points : int;          (** design points per task, >= 2 *)
  current_lo : float;        (** base (fastest) current lower bound, mA *)
  current_hi : float;        (** base current upper bound, mA *)
  duration_lo : float;       (** base (fastest) duration lower bound, min *)
  duration_hi : float;       (** base duration upper bound, min *)
}

val default_spec : spec
(** 5 design points, currents 300..1000 mA, durations 3..12 min —
    the G3 regime. *)

val spec_factors : spec -> float list
(** Voltage scaling factors implied by the spec: [num_points] values
    linearly spaced from 1.0 down to 0.33 (the G3 end points). *)

val chain : rng:Batsched_numeric.Rng.t -> spec:spec -> n:int -> Graph.t
(** A linear pipeline [0 -> 1 -> ... -> n-1].
    @raise Invalid_argument if [n < 1]. *)

val fork_join :
  rng:Batsched_numeric.Rng.t -> spec:spec -> widths:int list -> Graph.t
(** [fork_join ~widths] alternates single junction tasks with parallel
    stages of the given widths:
    [J0 -> stage1(w1) -> J1 -> stage2(w2) -> J2 -> ...].  G3 is shaped
    like [fork_join ~widths:[2+2; 2; 3]] with an extra tail.
    @raise Invalid_argument on empty [widths] or non-positive width. *)

val layered :
  rng:Batsched_numeric.Rng.t -> spec:spec -> layers:int -> width:int ->
  edge_prob:float -> Graph.t
(** [layers] ranks of [width] tasks; each task draws edges from the
    previous rank with probability [edge_prob], plus one guaranteed
    parent so no rank is disconnected.
    @raise Invalid_argument on non-positive dimensions or
    [edge_prob] outside [0, 1]. *)

val series_parallel :
  rng:Batsched_numeric.Rng.t -> spec:spec -> size:int -> Graph.t
(** A random series-parallel DAG grown by recursive series/parallel
    composition until roughly [size] tasks.
    @raise Invalid_argument if [size < 1]. *)

val random_dag :
  rng:Batsched_numeric.Rng.t -> spec:spec -> n:int -> edge_prob:float ->
  Graph.t
(** Erdos–Renyi-style DAG: edge [(i, j)], [i < j], present with
    probability [edge_prob] over a random vertex permutation.
    @raise Invalid_argument on [n < 1] or [edge_prob] outside
    [0, 1]. *)

val feasible_deadline : Graph.t -> slack:float -> float
(** [feasible_deadline g ~slack] maps [slack] in [[0, 1]] onto the
    meetable deadline range: 0 gives the all-fastest serial time (no
    slack), 1 the all-slowest serial time (every task may use its
    lowest-power point).
    @raise Invalid_argument if [slack] is outside [0, 1]. *)
