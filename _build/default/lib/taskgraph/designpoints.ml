let g3_factors = [ 1.0; 0.85; 0.68; 0.51; 0.33 ]

let g2_factors = [ 2.5; 1.66; 1.25; 1.0 ]

let check_positive name x =
  if not (x > 0.0) then invalid_arg ("Designpoints: non-positive " ^ name)

let check_factors factors =
  if factors = [] then invalid_arg "Designpoints: empty factor list";
  List.iter (check_positive "factor") factors

let cube_law ~base_current ~base_duration ?(base_voltage = 1.0) ~factors () =
  check_positive "base current" base_current;
  check_positive "base duration" base_duration;
  check_positive "base voltage" base_voltage;
  check_factors factors;
  let pairs =
    List.map
      (fun s -> (base_current *. (s ** 3.0), base_duration /. s))
      factors
  in
  let voltages = List.map (fun s -> base_voltage *. s) factors in
  (pairs, voltages)

let linear_duration_law ~base_current ~fastest_duration ~slowest_duration
    ?(base_voltage = 1.0) ~factors () =
  check_positive "base current" base_current;
  check_positive "fastest duration" fastest_duration;
  check_positive "base voltage" base_voltage;
  if fastest_duration >= slowest_duration then
    invalid_arg "Designpoints.linear_duration_law: need fastest < slowest";
  check_factors factors;
  (* Sort factors descending so index 0 is the fastest point. *)
  let sorted = List.sort (fun a b -> compare b a) factors in
  let m = List.length sorted in
  let duration i =
    if m = 1 then fastest_duration
    else
      fastest_duration
      +. (slowest_duration -. fastest_duration)
         *. float_of_int i /. float_of_int (m - 1)
  in
  let top = List.hd sorted in
  let pairs =
    List.mapi
      (fun i s -> (base_current *. ((s /. top) ** 3.0), duration i))
      sorted
  in
  let voltages = List.map (fun s -> base_voltage *. s /. top) sorted in
  (pairs, voltages)
