exception Parse_error of { line : int; message : string }

type document = {
  graph : Graph.t;
  deadline : float option;
  period : float option;
}

let fail line message = raise (Parse_error { line; message })

let tokens line_text =
  let without_comment =
    match String.index_opt line_text '#' with
    | Some i -> String.sub line_text 0 i
    | None -> line_text
  in
  String.split_on_char ' ' without_comment
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

type block =
  | Task_graph
  | Design_point of int
  | Other

(* Parsed, per-block state. *)
type accum = {
  mutable tasks : (string * int * int) list;  (* name, type, line *)
  mutable arcs : (string * string * int) list;  (* from, to, line *)
  mutable deadline : float option;
  mutable period : float option;
  mutable columns : (int * (int * (float * float * float)) list) list;
      (* design-point index -> (type -> current, duration, voltage) *)
  mutable graph_seen : bool;
}

let float_of ~line s =
  try float_of_string s with Failure _ -> fail line ("bad number: " ^ s)

let int_of ~line s =
  try int_of_string s with Failure _ -> fail line ("bad integer: " ^ s)

let parse_lines text =
  let acc =
    { tasks = []; arcs = []; deadline = None; period = None; columns = [];
      graph_seen = false }
  in
  let block = ref Other in
  let in_first_graph = ref false in
  let handle line toks =
    match (!block, toks) with
    | _, [] -> ()
    | _, "@TASK_GRAPH" :: _ ->
        if acc.graph_seen then block := Other
        else begin
          block := Task_graph;
          in_first_graph := true;
          acc.graph_seen <- true
        end
    | _, "@DESIGN_POINT" :: idx :: _ ->
        let k = int_of ~line idx in
        block := Design_point k;
        if not (List.mem_assoc k acc.columns) then
          acc.columns <- (k, []) :: acc.columns
    | _, first :: _ when String.length first > 0 && first.[0] = '@' ->
        block := Other
    | Task_graph, "}" :: _ ->
        block := Other;
        in_first_graph := false
    | Design_point _, "}" :: _ -> block := Other
    | Task_graph, toks -> (
        match toks with
        | [ "PERIOD"; p ] -> acc.period <- Some (float_of ~line p)
        | [ "TASK"; name; "TYPE"; ty ] ->
            acc.tasks <- (name, int_of ~line ty, line) :: acc.tasks
        | "ARC" :: _ :: "FROM" :: a :: "TO" :: b :: _ ->
            acc.arcs <- (a, b, line) :: acc.arcs
        | "HARD_DEADLINE" :: _ :: "ON" :: _ :: "AT" :: at :: _ ->
            if acc.deadline = None then acc.deadline <- Some (float_of ~line at)
        | [ "{" ] -> ()
        | kw :: _ -> fail line ("unknown task-graph attribute: " ^ kw)
        | [] -> ())
    | Design_point k, toks -> (
        match toks with
        | [ "{" ] -> ()
        | [ ty; cur; dur ] | [ ty; cur; dur; _ ] ->
            let voltage =
              match toks with
              | [ _; _; _; v ] -> float_of ~line v
              | _ -> 1.0
            in
            let row =
              (int_of ~line ty, (float_of ~line cur, float_of ~line dur, voltage))
            in
            let rows = List.assoc k acc.columns in
            acc.columns <-
              (k, row :: rows) :: List.remove_assoc k acc.columns
        | _ -> fail line "design-point row needs: type current duration [voltage]")
    | Other, _ -> ()
  in
  List.iteri
    (fun idx line_text -> handle (idx + 1) (tokens line_text))
    (String.split_on_char '\n' text);
  acc

let of_string text =
  let acc = parse_lines text in
  let named = List.rev acc.tasks in
  if named = [] then fail 0 "no tasks (need a @TASK_GRAPH block)";
  let columns = List.sort compare acc.columns in
  if columns = [] then fail 0 "no @DESIGN_POINT blocks";
  (* columns must be 0..m-1 *)
  List.iteri
    (fun expected (k, _) ->
      if k <> expected then fail 0 "design-point blocks must be numbered 0..m-1")
    columns;
  let point_of ~line ty k =
    match List.assoc_opt ty (List.assoc k columns) with
    | Some (current, duration, voltage) -> { Task.current; duration; voltage }
    | None ->
        fail line
          (Printf.sprintf "task type %d missing from @DESIGN_POINT %d" ty k)
  in
  let task_list =
    List.mapi
      (fun id (name, ty, line) ->
        let points =
          List.map (fun (k, _) -> point_of ~line ty k) columns
        in
        try Task.make ~id ~name points
        with Invalid_argument msg -> fail line (name ^ ": " ^ msg))
      named
  in
  let index_of name line =
    let rec go i = function
      | [] -> fail line ("unknown task in arc: " ^ name)
      | (n, _, _) :: rest -> if n = name then i else go (i + 1) rest
    in
    go 0 named
  in
  let edges =
    List.rev_map
      (fun (a, b, line) -> (index_of a line, index_of b line))
      acc.arcs
  in
  let graph =
    try Graph.make ~label:"tgff" ~edges task_list
    with Invalid_argument msg -> fail 0 msg
  in
  { graph; deadline = acc.deadline; period = acc.period }

let to_string ?deadline ?period g =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "@TASK_GRAPH 0 {\n";
  (match period with
  | Some p -> Buffer.add_string buf (Printf.sprintf "  PERIOD %g\n" p)
  | None -> ());
  List.iter
    (fun (t : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  TASK %s  TYPE %d\n" t.Task.name t.Task.id))
    (Graph.tasks g);
  List.iteri
    (fun i (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  ARC a%d  FROM %s  TO %s  TYPE 0\n" i
           (Graph.task g a).Task.name (Graph.task g b).Task.name))
    (Graph.edges g);
  (match deadline with
  | Some d ->
      let sink =
        match Graph.sinks g with s :: _ -> s | [] -> Graph.num_tasks g - 1
      in
      Buffer.add_string buf
        (Printf.sprintf "  HARD_DEADLINE d0 ON %s AT %g\n"
           (Graph.task g sink).Task.name d)
  | None -> ());
  Buffer.add_string buf "}\n";
  let m = Graph.num_points g in
  for k = 0 to m - 1 do
    Buffer.add_string buf (Printf.sprintf "@DESIGN_POINT %d {\n" k);
    Buffer.add_string buf "# type  current  duration  voltage\n";
    List.iter
      (fun (t : Task.t) ->
        let p = Task.point t k in
        Buffer.add_string buf
          (Printf.sprintf "  %d  %.12g  %.12g  %.12g\n" t.Task.id
             p.Task.current p.Task.duration p.Task.voltage))
      (Graph.tasks g);
    Buffer.add_string buf "}\n"
  done;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let save ?deadline ?period path g =
  let oc = open_out path in
  output_string oc (to_string ?deadline ?period g);
  close_out oc
