type t = {
  label : string;
  tasks : Task.t array;
  preds : int list array;
  succs : int list array;
}

(* Kahn's algorithm; returns true iff all vertices are drained. *)
let acyclic ~n ~succs ~indegree =
  let indeg = Array.copy indegree in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let drained = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr drained;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succs.(v)
  done;
  !drained = n

let make ?(label = "") ~edges tasks =
  let n = List.length tasks in
  if n = 0 then invalid_arg "Graph.make: empty task list";
  let arr = Array.make n None in
  List.iter
    (fun (t : Task.t) ->
      if t.Task.id < 0 || t.Task.id >= n then
        invalid_arg "Graph.make: task id out of range";
      if arr.(t.Task.id) <> None then invalid_arg "Graph.make: duplicate task id";
      arr.(t.Task.id) <- Some t)
    tasks;
  let tasks_arr =
    Array.map (function Some t -> t | None -> assert false) arr
  in
  let m = Task.num_points tasks_arr.(0) in
  Array.iter
    (fun t ->
      if Task.num_points t <> m then
        invalid_arg "Graph.make: tasks disagree on design-point count")
    tasks_arr;
  let edge_set = Hashtbl.create (List.length edges) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Graph.make: edge endpoint out of range";
      if a = b then invalid_arg "Graph.make: self loop";
      Hashtbl.replace edge_set (a, b) ())
    edges;
  let preds = Array.make n [] and succs = Array.make n [] in
  Hashtbl.iter
    (fun (a, b) () ->
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b))
    edge_set;
  Array.iteri (fun i l -> preds.(i) <- List.sort compare l) preds;
  Array.iteri (fun i l -> succs.(i) <- List.sort compare l) succs;
  let indegree = Array.map List.length preds in
  if not (acyclic ~n ~succs ~indegree) then invalid_arg "Graph.make: cycle detected";
  { label; tasks = tasks_arr; preds; succs }

let label g = g.label

let num_tasks g = Array.length g.tasks

let num_points g = Task.num_points g.tasks.(0)

let task g i =
  if i < 0 || i >= num_tasks g then invalid_arg "Graph.task: id out of range";
  g.tasks.(i)

let tasks g = Array.to_list g.tasks

let preds g i =
  if i < 0 || i >= num_tasks g then invalid_arg "Graph.preds: id out of range";
  g.preds.(i)

let succs g i =
  if i < 0 || i >= num_tasks g then invalid_arg "Graph.succs: id out of range";
  g.succs.(i)

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun a bs -> List.iter (fun b -> acc := (a, b) :: !acc) bs)
    g.succs;
  List.sort compare !acc

let num_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.succs

let sources g =
  List.filteri (fun i _ -> g.preds.(i) = []) (List.init (num_tasks g) Fun.id)

let sinks g =
  List.filteri (fun i _ -> g.succs.(i) = []) (List.init (num_tasks g) Fun.id)

let map_tasks f g =
  let tasks' =
    Array.to_list
      (Array.map
         (fun t ->
           let t' = f t in
           if t'.Task.id <> t.Task.id then
             invalid_arg "Graph.map_tasks: id changed";
           t')
         g.tasks)
  in
  make ~label:g.label ~edges:(edges g) tasks'

let pp fmt g =
  Format.fprintf fmt "graph %S: %d tasks, %d points, %d edges@."
    g.label (num_tasks g) (num_points g) (num_edges g);
  Array.iter (fun t -> Format.fprintf fmt "  %a@." Task.pp t) g.tasks;
  List.iter (fun (a, b) -> Format.fprintf fmt "  %d -> %d@." a b) (edges g)
