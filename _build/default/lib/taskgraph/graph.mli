(** Directed acyclic task graphs.

    Vertices are {!Task.t} values indexed [0 .. n-1]; edges encode data
    or control dependences.  All tasks of one graph expose the same
    number of design points [m], as the paper's matrix formulation
    assumes.  Tasks execute {e sequentially} on the single processing
    element, so a schedule is a linearization of the DAG. *)

type t

val make : ?label:string -> edges:(int * int) list -> Task.t list -> t
(** [make ~edges tasks] builds and validates a graph.  [tasks] must
    have ids exactly [0 .. n-1] (any order); [edges] are
    [(predecessor, successor)] pairs.  Duplicate edges are collapsed.
    @raise Invalid_argument on bad ids, self loops, a cycle, an empty
    task list, or tasks with differing design-point counts. *)

val label : t -> string
(** Display label ("G2", "G3", "fork-join-20", ...; empty by default). *)

val num_tasks : t -> int
(** Number of vertices [n]. *)

val num_points : t -> int
(** Shared design-point count [m]. *)

val task : t -> int -> Task.t
(** [task g i] is vertex [i].  @raise Invalid_argument if out of
    range. *)

val tasks : t -> Task.t list
(** All tasks in id order. *)

val preds : t -> int -> int list
(** Direct predecessors (sorted ascending). *)

val succs : t -> int -> int list
(** Direct successors (sorted ascending). *)

val edges : t -> (int * int) list
(** All edges, lexicographically sorted. *)

val num_edges : t -> int

val sources : t -> int list
(** Vertices without predecessors. *)

val sinks : t -> int list
(** Vertices without successors. *)

val map_tasks : (Task.t -> Task.t) -> t -> t
(** [map_tasks f g] replaces each task ([f] must preserve the id and
    design-point count; validated).  Used to re-derive design points. *)

val pp : Format.formatter -> t -> unit
