(** Plain-text task-graph interchange format and DOT export.

    The format is line based; [#] starts a comment.  A file contains:

    {v
    graph G3
    task T1 917:7.3:1.0 563:11.2:0.85 288:15.0:0.68
    task T2 519:11.2:1.0 319:17.3:0.85 163:23.1:0.68
    edge T1 T2
    v}

    Each [task] line names a task followed by its design points as
    [current:duration:voltage] triples (voltage optional, default 1);
    all tasks need the same number of points.  Task ids are assigned in
    file order.  [edge a b] declares a dependence of [b] on [a]. *)

exception Parse_error of { line : int; message : string }
(** Raised with a 1-based line number on malformed input. *)

val of_string : string -> Graph.t
(** Parse a graph from the text format.  @raise Parse_error. *)

val to_string : Graph.t -> string
(** Render a graph in the text format; [of_string (to_string g)] is
    structurally equal to [g] up to float printing precision (exact for
    the shipped instances). *)

val load : string -> Graph.t
(** [load path] parses a file.  @raise Parse_error and [Sys_error]. *)

val save : string -> Graph.t -> unit
(** [save path g] writes {!to_string}. *)

val to_dot : Graph.t -> string
(** Graphviz rendering, one node per task labeled with its name and
    design-point span — handy for inspecting generated graphs. *)
