open Batsched_numeric

let is_topological g seq =
  let n = Graph.num_tasks g in
  if List.length seq <> n then false
  else begin
    let position = Array.make n (-1) in
    let ok = ref true in
    List.iteri
      (fun pos v ->
        if v < 0 || v >= n || position.(v) >= 0 then ok := false
        else position.(v) <- pos)
      seq;
    !ok
    && List.for_all
         (fun (a, b) -> position.(a) < position.(b))
         (Graph.edges g)
  end

let list_schedule ~weight g =
  let n = Graph.num_tasks g in
  let remaining_preds = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let scheduled = Array.make n false in
  let rec step acc count =
    if count = n then List.rev acc
    else begin
      let best = ref None in
      for v = 0 to n - 1 do
        if (not scheduled.(v)) && remaining_preds.(v) = 0 then begin
          let w = weight v in
          match !best with
          | Some (_, bw) when bw >= w -> ()
          | _ -> best := Some (v, w)
        end
      done;
      match !best with
      | None -> invalid_arg "Analysis.list_schedule: graph not acyclic?"
      | Some (v, _) ->
          scheduled.(v) <- true;
          List.iter
            (fun w -> remaining_preds.(w) <- remaining_preds.(w) - 1)
            (Graph.succs g v);
          step (v :: acc) (count + 1)
    end
  in
  step [] 0

(* Tie-break note: the scan goes v = 0 .. n-1 and only a strictly larger
   weight displaces the incumbent, so equal weights resolve to the
   smaller id — the deterministic rule documented in DESIGN.md. *)

let any_topological_order g = list_schedule ~weight:(fun _ -> 0.0) g

let all_topological_orders ?(limit = 1_000_000) g =
  let n = Graph.num_tasks g in
  let remaining_preds = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let scheduled = Array.make n false in
  let results = ref [] and count = ref 0 in
  let rec go acc depth =
    if !count >= limit then ()
    else if depth = n then begin
      incr count;
      results := List.rev acc :: !results
    end
    else
      for v = 0 to n - 1 do
        if (not scheduled.(v)) && remaining_preds.(v) = 0 && !count < limit
        then begin
          scheduled.(v) <- true;
          List.iter
            (fun w -> remaining_preds.(w) <- remaining_preds.(w) - 1)
            (Graph.succs g v);
          go (v :: acc) (depth + 1);
          List.iter
            (fun w -> remaining_preds.(w) <- remaining_preds.(w) + 1)
            (Graph.succs g v);
          scheduled.(v) <- false
        end
      done
  in
  go [] 0;
  List.rev !results

let count_topological_orders ?limit g =
  List.length (all_topological_orders ?limit g)

let descendants g v =
  let n = Graph.num_tasks g in
  if v < 0 || v >= n then invalid_arg "Analysis.descendants: id out of range";
  let seen = Array.make n false in
  let rec visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter visit (Graph.succs g u)
    end
  in
  visit v;
  List.filter (fun i -> seen.(i)) (List.init n Fun.id)

let column_time g j =
  let m = Graph.num_points g in
  if j < 0 || j >= m then invalid_arg "Analysis.column_time: column out of range";
  Kahan.sum_list
    (List.map (fun t -> (Task.point t j).Task.duration) (Graph.tasks g))

let serial_time_bounds g =
  let m = Graph.num_points g in
  (column_time g 0, column_time g (m - 1))

let current_range g =
  List.fold_left
    (fun (lo, hi) t -> (Float.min lo (Task.min_current t), Float.max hi (Task.max_current t)))
    (Float.infinity, Float.neg_infinity)
    (Graph.tasks g)

let energy_bounds g =
  let m = Graph.num_points g in
  let total j =
    Kahan.sum_list (List.map (fun t -> Task.energy t j) (Graph.tasks g))
  in
  (total (m - 1), total 0)

let energy_vector g =
  let keyed =
    List.map (fun t -> (Task.average_energy t, t.Task.id)) (Graph.tasks g)
  in
  List.map snd (List.sort compare keyed)
