let transitive_reduction g =
  let edges = Graph.edges g in
  let descendants = Array.init (Graph.num_tasks g) (Analysis.descendants g) in
  let reachable c b = List.mem b descendants.(c) in
  let keep (a, b) =
    not
      (List.exists
         (fun c -> c <> b && reachable c b)
         (Graph.succs g a))
  in
  Graph.make ~label:(Graph.label g) ~edges:(List.filter keep edges)
    (Graph.tasks g)

let reverse g =
  Graph.make
    ~label:(Graph.label g ^ "-reversed")
    ~edges:(List.map (fun (a, b) -> (b, a)) (Graph.edges g))
    (Graph.tasks g)

type merge_info = {
  graph : Graph.t;
  chain_of : int array;
  members : int list array;
}

(* [u -> v] is a chain link iff v is u's only successor and u is v's
   only predecessor. *)
let chain_links g =
  let n = Graph.num_tasks g in
  let next = Array.make n None in
  for u = 0 to n - 1 do
    match Graph.succs g u with
    | [ v ] -> if Graph.preds g v = [ u ] then next.(u) <- Some v
    | _ -> ()
  done;
  next

(* Merge a chain's members (in execution order) into one task, column
   by column.  The duration-weighted current preserves each column's
   charge exactly.  Raises Invalid_argument (via Task.make) if the
   merged points violate the power/performance trade-off — callers
   fall back to not merging that chain. *)
let merged_task g ~id members =
  let m = Graph.num_points g in
  let name =
    String.concat "+" (List.map (fun i -> (Graph.task g i).Task.name) members)
  in
  let points =
    List.init m (fun j ->
        let parts =
          List.map (fun i -> Task.point (Graph.task g i) j) members
        in
        let duration =
          Batsched_numeric.Kahan.sum_list
            (List.map (fun p -> p.Task.duration) parts)
        in
        let weighted f =
          Batsched_numeric.Kahan.sum_list
            (List.map (fun p -> f p *. p.Task.duration) parts)
          /. duration
        in
        { Task.current = weighted (fun p -> p.Task.current);
          duration;
          voltage = weighted (fun p -> p.Task.voltage) })
  in
  Task.make ~id ~name points

let merge_chains g =
  let n = Graph.num_tasks g in
  let next = chain_links g in
  let has_prev = Array.make n false in
  Array.iter (function Some v -> has_prev.(v) <- true | None -> ()) next;
  (* heads = chain starts; walk each chain to collect members *)
  let chains = ref [] in
  for u = 0 to n - 1 do
    if not has_prev.(u) then begin
      let rec walk v acc =
        match next.(v) with
        | Some w -> walk w (w :: acc)
        | None -> List.rev acc
      in
      chains := walk u [ u ] :: !chains
    end
  done;
  let chains = List.rev !chains (* ordered by head id *) in
  (* try to merge each chain; fall back to singletons on trade-off
     violations *)
  let groups =
    List.concat_map
      (fun members ->
        match members with
        | [ _ ] -> [ members ]
        | _ -> (
            match merged_task g ~id:0 members with
            | (_ : Task.t) -> [ members ]
            | exception Invalid_argument _ -> List.map (fun i -> [ i ]) members))
      chains
  in
  let members = Array.of_list groups in
  let chain_of = Array.make n (-1) in
  Array.iteri
    (fun gid ms -> List.iter (fun i -> chain_of.(i) <- gid) ms)
    members;
  let tasks =
    Array.to_list
      (Array.mapi
         (fun gid ms ->
           match ms with
           | [ i ] ->
               let t = Graph.task g i in
               Task.make ~id:gid ~name:t.Task.name
                 (Array.to_list t.Task.points)
           | _ -> merged_task g ~id:gid ms)
         members)
  in
  let edges =
    Graph.edges g
    |> List.filter_map (fun (a, b) ->
           let a' = chain_of.(a) and b' = chain_of.(b) in
           if a' = b' then None else Some (a', b'))
    |> List.sort_uniq compare
  in
  let graph = Graph.make ~label:(Graph.label g ^ "-merged") ~edges tasks in
  { graph; chain_of; members }

let expand_sequence info seq =
  let n' = Graph.num_tasks info.graph in
  if List.length seq <> n' then
    invalid_arg "Transform.expand_sequence: length mismatch";
  let seen = Array.make n' false in
  List.iter
    (fun gid ->
      if gid < 0 || gid >= n' || seen.(gid) then
        invalid_arg "Transform.expand_sequence: not a permutation";
      seen.(gid) <- true)
    seq;
  List.concat_map (fun gid -> info.members.(gid)) seq
