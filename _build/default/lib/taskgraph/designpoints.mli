(** Synthesis of design-point sets from scaling laws.

    The paper derives its data sets from voltage scaling factors: task
    currents scale with the {e cube} of the factor (dynamic power ~ V^2 f
    with f ~ V) and execution times scale inversely (Sec. 4.2 for G3,
    Sec. 5 for G2, where the law is exact against the published
    tables).  These builders regenerate such sets from a base design
    point, for the generators and for cross-checking the paper data. *)

val cube_law :
  base_current:float -> base_duration:float -> ?base_voltage:float ->
  factors:float list -> unit -> (float * float) list * float list
(** [cube_law ~base_current ~base_duration ~factors ()] returns
    [(current, duration) pairs, voltages] where factor [s] (relative to
    the base voltage) yields current [base_current * s^3], duration
    [base_duration / s] and voltage [base_voltage * s].  This is G2's
    exact law (factors 2.5, 1.66, 1.25, 1 relative to DP4).
    @raise Invalid_argument on non-positive inputs or empty factors. *)

val linear_duration_law :
  base_current:float -> fastest_duration:float -> slowest_duration:float ->
  ?base_voltage:float -> factors:float list -> unit ->
  (float * float) list * float list
(** Variant matching G3's published table: currents follow the cube law
    on [factors] (largest factor = fastest point) while durations are
    linearly interpolated between [fastest_duration] and
    [slowest_duration] across the points in factor order.  (The G3
    table's durations are not an exact inverse law; see DESIGN.md.)
    @raise Invalid_argument on non-positive inputs, empty factors, or
    [fastest_duration >= slowest_duration]. *)

val g3_factors : float list
(** The paper's G3 scaling factors: 1, 0.85, 0.68, 0.51, 0.33. *)

val g2_factors : float list
(** The paper's G2 scaling factors: 2.5, 1.66, 1.25, 1. *)
