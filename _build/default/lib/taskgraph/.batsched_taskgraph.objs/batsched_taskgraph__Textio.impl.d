lib/taskgraph/textio.ml: Array Buffer Graph List Printf String Task
