lib/taskgraph/analysis.mli: Graph
