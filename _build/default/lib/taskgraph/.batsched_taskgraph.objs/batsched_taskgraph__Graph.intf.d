lib/taskgraph/graph.mli: Format Task
