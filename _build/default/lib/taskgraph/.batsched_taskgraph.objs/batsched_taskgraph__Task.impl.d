lib/taskgraph/task.ml: Array Batsched_numeric Float Format List
