lib/taskgraph/transform.ml: Analysis Array Batsched_numeric Graph List String Task
