lib/taskgraph/transform.mli: Graph
