lib/taskgraph/designpoints.ml: List
