lib/taskgraph/generators.ml: Analysis Array Batsched_numeric Designpoints Float Fun Graph List Printf Rng Stdlib Task
