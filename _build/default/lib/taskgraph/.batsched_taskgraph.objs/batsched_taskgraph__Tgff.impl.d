lib/taskgraph/tgff.ml: Buffer Graph List Printf String Task
