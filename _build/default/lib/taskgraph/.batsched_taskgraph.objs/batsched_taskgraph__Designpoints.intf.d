lib/taskgraph/designpoints.mli:
