lib/taskgraph/generators.mli: Batsched_numeric Graph
