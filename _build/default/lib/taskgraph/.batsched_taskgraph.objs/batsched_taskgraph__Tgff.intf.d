lib/taskgraph/tgff.mli: Graph
