lib/taskgraph/analysis.ml: Array Batsched_numeric Float Fun Graph Kahan List Task
