lib/taskgraph/textio.mli: Graph
