lib/taskgraph/instances.mli: Graph
