lib/taskgraph/instances.ml: Graph List Task
