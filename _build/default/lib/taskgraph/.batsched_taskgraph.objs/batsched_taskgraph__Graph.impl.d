lib/taskgraph/graph.ml: Array Format Fun Hashtbl List Queue Task
