(** Structural analyses over task graphs: linearizations, rooted
    subgraphs, and the aggregate quantities the scheduling metrics
    need. *)

val is_topological : Graph.t -> int list -> bool
(** [is_topological g seq] checks that [seq] is a permutation of
    [0 .. n-1] in which every task appears after all its
    predecessors. *)

val list_schedule : weight:(int -> float) -> Graph.t -> int list
(** [list_schedule ~weight g] is the paper's list-scheduling skeleton:
    repeatedly pick, among the ready tasks (all predecessors already
    scheduled), the one with the largest [weight]; ties break on the
    smaller task id.  Returns a valid linearization of [g]. *)

val any_topological_order : Graph.t -> int list
(** A canonical linearization (list schedule with all-equal weights,
    i.e. smallest-id-first among ready tasks). *)

val all_topological_orders : ?limit:int -> Graph.t -> int list list
(** Every linearization of [g], for exhaustive baselines.  Stops after
    [limit] (default 1_000_000) orders to bound blowup; the result is
    truncated, not an error, when the limit is hit. *)

val count_topological_orders : ?limit:int -> Graph.t -> int
(** Number of linearizations, capped at [limit] (default
    1_000_000). *)

val descendants : Graph.t -> int -> int list
(** [descendants g v] is the vertex set of the subgraph rooted at [v]
    — [v] itself plus everything reachable from it (ascending order).
    This is the "G_v" of the paper's Eqs. 4 and 5. *)

val column_time : Graph.t -> int -> float
(** [column_time g j] is the paper's [C_T(j)]: total execution time if
    every task runs at design-point column [j] (0-based).
    @raise Invalid_argument if [j] is out of range. *)

val serial_time_bounds : Graph.t -> float * float
(** [(fastest, slowest)] total execution times —
    [column_time g 0, column_time g (m-1)].  A deadline is meetable iff
    it is at least [fastest]. *)

val current_range : Graph.t -> float * float
(** [(I_min, I_max)] over all design points of all tasks — the
    normalization constants of the paper's Current Ratio. *)

val energy_bounds : Graph.t -> float * float
(** [(E_min, E_max)]: total energy if every task uses its
    lowest-power (slowest) resp. highest-power (fastest) design point —
    the normalization constants of the paper's Energy Ratio. *)

val energy_vector : Graph.t -> int list
(** Task ids sorted by increasing {!Task.average_energy} (ties by id) —
    the paper's energy vector E. *)
