(** Structural task-graph transformations.

    Preprocessing passes a scheduling front end typically applies
    before the expensive search:

    - {!transitive_reduction} drops edges implied by longer paths —
      harmless to the precedence semantics, fewer constraints to check;
    - {!merge_chains} collapses maximal linear chains (each link the
      sole successor of its predecessor and sole predecessor of its
      successor) into one task per chain.  Since chain members always
      execute contiguously per column choice in an optimal sequential
      schedule of the merged graph, column [j] of a merged task runs
      every member at column [j]: durations add, the current is the
      duration-weighted mean (which preserves the column's charge
      exactly), and the voltage likewise.
    - {!reverse} flips every edge (and reverses per-task semantics are
      unchanged) — handy for symmetry tests. *)

val transitive_reduction : Graph.t -> Graph.t
(** Smallest edge subset with the same reachability relation (unique
    for DAGs). *)

val reverse : Graph.t -> Graph.t
(** The mirror DAG: edge (a, b) becomes (b, a). *)

type merge_info = {
  graph : Graph.t;            (** the merged graph *)
  chain_of : int array;       (** original task id -> merged task id *)
  members : int list array;   (** merged task id -> original ids, in
                                  execution order *)
}

val merge_chains : Graph.t -> merge_info
(** Collapse maximal chains.  Merged task names join member names with
    ["+"].  Charge per column is preserved exactly (see above); the
    merged graph's sequential schedules expand to schedules of the
    original graph with identical profiles per column choice. *)

val expand_sequence : merge_info -> int list -> int list
(** Translate a sequence over the merged graph back to the original
    tasks (members in chain order).
    @raise Invalid_argument if the input is not a permutation of the
    merged graph's tasks. *)
