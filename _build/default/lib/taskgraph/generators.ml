open Batsched_numeric

type spec = {
  num_points : int;
  current_lo : float;
  current_hi : float;
  duration_lo : float;
  duration_hi : float;
}

let default_spec =
  { num_points = 5;
    current_lo = 300.0;
    current_hi = 1000.0;
    duration_lo = 3.0;
    duration_hi = 12.0 }

let check_spec s =
  if s.num_points < 2 then invalid_arg "Generators: need >= 2 design points";
  if not (0.0 < s.current_lo && s.current_lo <= s.current_hi) then
    invalid_arg "Generators: bad current range";
  if not (0.0 < s.duration_lo && s.duration_lo <= s.duration_hi) then
    invalid_arg "Generators: bad duration range"

let spec_factors s =
  let m = s.num_points in
  List.init m (fun i ->
      1.0 -. ((1.0 -. 0.33) *. float_of_int i /. float_of_int (m - 1)))

let uniform rng lo hi = lo +. Rng.float rng (Float.max 1e-9 (hi -. lo))

let random_task ~rng ~spec ~id =
  check_spec spec;
  let base_current = uniform rng spec.current_lo spec.current_hi in
  let base_duration = uniform rng spec.duration_lo spec.duration_hi in
  let pairs, voltages =
    Designpoints.cube_law ~base_current ~base_duration
      ~factors:(spec_factors spec) ()
  in
  Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) ~voltages pairs

let build ~rng ~spec ~label ~n ~edges =
  let tasks = List.init n (fun id -> random_task ~rng ~spec ~id) in
  Graph.make ~label ~edges tasks

let chain ~rng ~spec ~n =
  if n < 1 then invalid_arg "Generators.chain: n < 1";
  let edges = List.init (Stdlib.max 0 (n - 1)) (fun i -> (i, i + 1)) in
  build ~rng ~spec ~label:(Printf.sprintf "chain-%d" n) ~n ~edges

let fork_join ~rng ~spec ~widths =
  if widths = [] then invalid_arg "Generators.fork_join: empty widths";
  List.iter
    (fun w -> if w < 1 then invalid_arg "Generators.fork_join: width < 1")
    widths;
  (* Vertices: J0, stage1, J1, stage2, J2, ... Jk *)
  let edges = ref [] in
  let next = ref 1 in
  let junction = ref 0 in
  List.iter
    (fun w ->
      let stage = List.init w (fun i -> !next + i) in
      next := !next + w;
      let j' = !next in
      incr next;
      List.iter
        (fun v ->
          edges := (!junction, v) :: (v, j') :: !edges)
        stage;
      junction := j')
    widths;
  let n = !next in
  build ~rng ~spec
    ~label:(Printf.sprintf "fork-join-%d" n)
    ~n ~edges:!edges

let layered ~rng ~spec ~layers ~width ~edge_prob =
  if layers < 1 || width < 1 then invalid_arg "Generators.layered: bad dims";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Generators.layered: edge_prob outside [0,1]";
  let n = layers * width in
  let vertex l i = (l * width) + i in
  let edges = ref [] in
  for l = 1 to layers - 1 do
    for i = 0 to width - 1 do
      let parents = ref [] in
      for p = 0 to width - 1 do
        if Rng.float rng 1.0 < edge_prob then
          parents := vertex (l - 1) p :: !parents
      done;
      if !parents = [] then parents := [ vertex (l - 1) (Rng.int rng width) ];
      List.iter (fun p -> edges := (p, vertex l i) :: !edges) !parents
    done
  done;
  build ~rng ~spec
    ~label:(Printf.sprintf "layered-%dx%d" layers width)
    ~n ~edges:!edges

let series_parallel ~rng ~spec ~size =
  if size < 1 then invalid_arg "Generators.series_parallel: size < 1";
  (* Grow an SP skeleton: a structure is either a single vertex or a
     series / parallel composition of two structures.  We expand until
     the vertex budget is used, then enumerate vertices and edges.
     Parallel composition shares the endpoints via fresh junctions to
     keep the graph simple (series-parallel in the two-terminal
     sense). *)
  let next_id = ref 0 in
  let fresh () =
    let v = !next_id in
    incr next_id;
    v
  in
  let edges = ref [] in
  (* build a sub-dag between [src] and [dst] with approximately [budget]
     internal vertices; returns unit, records edges. *)
  let rec grow src dst budget =
    if budget <= 0 then edges := (src, dst) :: !edges
    else if budget = 1 || Rng.bool rng then begin
      (* series: src -> v -> dst with the rest of the budget split *)
      let v = fresh () in
      let left = Rng.int rng (Stdlib.max 1 budget) in
      grow src v left;
      grow v dst (budget - 1 - left)
    end
    else begin
      (* parallel: two branches between the same terminals *)
      let left = Rng.int rng budget in
      grow src dst left;
      grow src dst (budget - left)
    end
  in
  let src = fresh () in
  let dst = fresh () in
  grow src dst (Stdlib.max 0 (size - 2));
  let n = !next_id in
  (* Deduplicate parallel edges (Graph.make collapses them anyway). *)
  build ~rng ~spec ~label:(Printf.sprintf "sp-%d" n) ~n ~edges:!edges

let random_dag ~rng ~spec ~n ~edge_prob =
  if n < 1 then invalid_arg "Generators.random_dag: n < 1";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Generators.random_dag: edge_prob outside [0,1]";
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1.0 < edge_prob then
        edges := (order.(i), order.(j)) :: !edges
    done
  done;
  build ~rng ~spec ~label:(Printf.sprintf "random-%d" n) ~n ~edges:!edges

let feasible_deadline g ~slack =
  if slack < 0.0 || slack > 1.0 then
    invalid_arg "Generators.feasible_deadline: slack outside [0,1]";
  let fastest, slowest = Analysis.serial_time_bounds g in
  fastest +. (slack *. (slowest -. fastest))
