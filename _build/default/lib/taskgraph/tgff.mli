(** A TGFF-dialect reader and writer.

    TGFF ("Task Graphs For Free") is the de-facto workload generator in
    the embedded-scheduling literature, including the battery-aware
    papers this repository reproduces.  This module speaks a documented
    {e subset/dialect} of its block format, extended with per-column
    design-point tables (stock TGFF attaches one execution time per PE
    table; we attach current/duration/voltage triples per design
    point):

    {v
    @TASK_GRAPH 0 {
      PERIOD 300
      TASK t0  TYPE 0
      TASK t1  TYPE 1
      ARC a0  FROM t0  TO t1  TYPE 0
      HARD_DEADLINE d0 ON t1 AT 230
    }
    @DESIGN_POINT 0 {
    # type  current  duration  voltage
      0     917      7.3       1.0
      1     519      11.2      1.0
    }
    @DESIGN_POINT 1 {
      0     563      11.2      0.85
      1     319      17.3      0.85
    }
    v}

    [@DESIGN_POINT k] is the k-th column (fastest first); every task
    TYPE must appear in every design-point block.  [#] comments and
    blank lines are ignored.  Only the first [@TASK_GRAPH] block is
    read. *)

exception Parse_error of { line : int; message : string }

type document = {
  graph : Graph.t;
  deadline : float option;  (** the first HARD_DEADLINE's AT value *)
  period : float option;    (** the PERIOD attribute if present *)
}

val of_string : string -> document
(** @raise Parse_error on malformed input. *)

val to_string : ?deadline:float -> ?period:float -> Graph.t -> string
(** Render a graph in the dialect; one TYPE per task.
    [of_string (to_string g)] reconstructs an isomorphic graph. *)

val load : string -> document
(** Parse a file.  @raise Parse_error and [Sys_error]. *)

val save : ?deadline:float -> ?period:float -> string -> Graph.t -> unit
