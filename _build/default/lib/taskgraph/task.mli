(** Tasks and their design points.

    A design point is one concrete implementation of a task: a
    voltage/frequency pair on a DVS processor or an alternative bitstream
    on an FPGA.  Following the paper's matrix conventions, a task's
    design points are stored {e fastest first}: execution times ascend
    and currents descend with the column index.  Column [0] is the
    highest-power/fastest point ("DP1" in the paper) and column [m-1]
    the lowest-power/slowest one ("DPm"). *)

type design_point = {
  current : float;   (** average platform current, mA, > 0 *)
  duration : float;  (** execution time, minutes, > 0 *)
  voltage : float;   (** supply voltage, volts, > 0 (1.0 if unmodeled) *)
}

type t = private {
  id : int;                     (** index within its graph, >= 0 *)
  name : string;                (** display name, e.g. "T7" *)
  points : design_point array;  (** sorted fastest first; length >= 1 *)
}

val make : id:int -> name:string -> design_point list -> t
(** [make ~id ~name points] validates and sorts the design points by
    ascending duration and checks that currents are non-increasing in
    that order (the power/performance trade-off the paper assumes).
    @raise Invalid_argument on empty list, non-positive fields, or a
    current ordering violating the trade-off. *)

val of_pairs : id:int -> name:string -> ?voltages:float list ->
  (float * float) list -> t
(** [of_pairs ~id ~name [(current, duration); ...]] is a convenience
    wrapper; [voltages] (same length, default all 1.0) supplies
    per-point supply voltages.
    @raise Invalid_argument as {!make}, or on a voltage length
    mismatch. *)

val num_points : t -> int
(** Number of design points [m] of this task. *)

val point : t -> int -> design_point
(** [point t j] is column [j] (0-based, fastest first).
    @raise Invalid_argument if out of range. *)

val fastest : t -> design_point
(** Column 0: minimum duration, maximum current. *)

val slowest : t -> design_point
(** Column [m-1]: maximum duration, minimum current. *)

val energy : t -> int -> float
(** [energy t j] = [I * V * D] of column [j] (mA*V*min). *)

val charge : t -> int -> float
(** [charge t j] = [I * D] of column [j] (mA*min). *)

val average_energy : t -> float
(** Mean of {!energy} over all columns — the weight used by the paper's
    [SequenceDecEnergy] and the ordering key of the energy vector E. *)

val min_current : t -> float
val max_current : t -> float

val pp : Format.formatter -> t -> unit
