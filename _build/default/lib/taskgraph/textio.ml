exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

let parse_point ~line s =
  match String.split_on_char ':' s with
  | [ i; d ] | [ i; d; _ ] as parts -> (
      let v =
        match parts with
        | [ _; _; v ] -> v
        | _ -> "1"
      in
      try (float_of_string i, float_of_string d, float_of_string v)
      with Failure _ -> fail line ("bad design point: " ^ s))
  | _ -> fail line ("bad design point: " ^ s)

let tokens line_text =
  let without_comment =
    match String.index_opt line_text '#' with
    | Some i -> String.sub line_text 0 i
    | None -> line_text
  in
  String.split_on_char ' ' without_comment
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let of_string text =
  let lines = String.split_on_char '\n' text in
  let label = ref "" in
  let tasks = ref [] (* (name, points) in reverse order *) in
  let edges = ref [] (* (name, name, line) *) in
  List.iteri
    (fun idx line_text ->
      let line = idx + 1 in
      match tokens line_text with
      | [] -> ()
      | "graph" :: rest -> label := String.concat " " rest
      | "task" :: name :: points ->
          if points = [] then fail line "task without design points";
          if List.exists (fun (n, _) -> n = name) !tasks then
            fail line ("duplicate task name: " ^ name);
          tasks := (name, List.map (parse_point ~line) points) :: !tasks
      | [ "edge"; a; b ] -> edges := (a, b, line) :: !edges
      | "edge" :: _ -> fail line "edge needs exactly two endpoints"
      | keyword :: _ -> fail line ("unknown keyword: " ^ keyword))
    lines;
  let named = List.rev !tasks in
  if named = [] then fail 0 "no tasks";
  let index_of name line =
    let rec go i = function
      | [] -> fail line ("unknown task in edge: " ^ name)
      | (n, _) :: rest -> if n = name then i else go (i + 1) rest
    in
    go 0 named
  in
  let task_list =
    List.mapi
      (fun id (name, pts) ->
        let points =
          List.map
            (fun (current, duration, voltage) ->
              { Task.current; duration; voltage })
            pts
        in
        try Task.make ~id ~name points
        with Invalid_argument msg -> fail 0 (name ^ ": " ^ msg))
      named
  in
  let edge_list =
    List.rev_map (fun (a, b, line) -> (index_of a line, index_of b line)) !edges
  in
  try Graph.make ~label:!label ~edges:edge_list task_list
  with Invalid_argument msg -> fail 0 msg

let float_str x =
  (* shortest representation that round-trips *)
  let s = Printf.sprintf "%.12g" x in
  s

let to_string g =
  let buf = Buffer.create 1024 in
  if Graph.label g <> "" then
    Buffer.add_string buf (Printf.sprintf "graph %s\n" (Graph.label g));
  List.iter
    (fun (t : Task.t) ->
      Buffer.add_string buf (Printf.sprintf "task %s" t.Task.name);
      Array.iter
        (fun (p : Task.design_point) ->
          Buffer.add_string buf
            (Printf.sprintf " %s:%s:%s" (float_str p.Task.current)
               (float_str p.Task.duration) (float_str p.Task.voltage)))
        t.Task.points;
      Buffer.add_char buf '\n')
    (Graph.tasks g);
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s\n" (Graph.task g a).Task.name
           (Graph.task g b).Task.name))
    (Graph.edges g);
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Graph.label g));
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box];\n";
  List.iter
    (fun (t : Task.t) ->
      let fast = Task.fastest t and slow = Task.slowest t in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%.0f-%.0f mA, %.1f-%.1f min\"];\n"
           t.Task.id t.Task.name slow.Task.current fast.Task.current
           fast.Task.duration slow.Task.duration))
    (Graph.tasks g);
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a b))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
