type design_point = { current : float; duration : float; voltage : float }

type t = { id : int; name : string; points : design_point array }

let check_point { current; duration; voltage } =
  if not (current > 0.0 && Float.is_finite current) then
    invalid_arg "Task: design point current must be positive";
  if not (duration > 0.0 && Float.is_finite duration) then
    invalid_arg "Task: design point duration must be positive";
  if not (voltage > 0.0 && Float.is_finite voltage) then
    invalid_arg "Task: design point voltage must be positive"

let make ~id ~name points =
  if id < 0 then invalid_arg "Task.make: negative id";
  if points = [] then invalid_arg "Task.make: no design points";
  List.iter check_point points;
  let arr = Array.of_list points in
  Array.sort (fun a b -> compare a.duration b.duration) arr;
  for j = 1 to Array.length arr - 1 do
    (* Tiny tolerance: published tables sometimes show equal currents at
       adjacent points after rounding. *)
    if arr.(j).current > arr.(j - 1).current +. 1e-9 then
      invalid_arg "Task.make: currents must be non-increasing as duration grows"
  done;
  { id; name; points = arr }

let of_pairs ~id ~name ?voltages pairs =
  let voltages =
    match voltages with
    | None -> List.map (fun _ -> 1.0) pairs
    | Some vs ->
        if List.length vs <> List.length pairs then
          invalid_arg "Task.of_pairs: voltage list length mismatch"
        else vs
  in
  let points =
    List.map2
      (fun (current, duration) voltage -> { current; duration; voltage })
      pairs voltages
  in
  make ~id ~name points

let num_points t = Array.length t.points

let point t j =
  if j < 0 || j >= Array.length t.points then
    invalid_arg "Task.point: column out of range";
  t.points.(j)

let fastest t = t.points.(0)

let slowest t = t.points.(Array.length t.points - 1)

let energy t j =
  let p = point t j in
  p.current *. p.voltage *. p.duration

let charge t j =
  let p = point t j in
  p.current *. p.duration

let average_energy t =
  let m = num_points t in
  Batsched_numeric.Kahan.sum_fn m (energy t) /. float_of_int m

let min_current t = (slowest t).current

let max_current t = (fastest t).current

let pp fmt t =
  Format.fprintf fmt "%s:" t.name;
  Array.iter
    (fun p -> Format.fprintf fmt " (%.1fmA,%.1fmin,%.2fV)" p.current p.duration p.voltage)
    t.points
