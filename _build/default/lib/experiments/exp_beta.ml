open Batsched_taskgraph
open Batsched_battery

let name = "beta"

let betas = [ 0.1; 0.2; 0.273; 0.4; 0.7; 1.5; 5.0 ]

let run () =
  let g = Instances.g3 in
  let deadline = Instances.g3_deadline in
  let gap_at beta =
    let model = Rakhmatov.model ~beta () in
    let cfg = Batsched.Config.make ~model ~deadline () in
    let ours = (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma in
    let baseline =
      (Batsched_baselines.Dp_energy.run ~model g ~deadline)
        .Batsched_baselines.Solution.sigma
    in
    (ours, baseline, 100.0 *. (baseline -. ours) /. ours)
  in
  let results = List.map (fun b -> (b, gap_at b)) betas in
  let rows =
    List.map
      (fun (b, (ours, baseline, gap)) ->
        [ Printf.sprintf "%.3f" b;
          Tables.f0 ours;
          Tables.f0 baseline;
          Tables.pct gap ])
      results
  in
  let gap_of (_, (_, _, gap)) = gap in
  let first_gap = gap_of (List.hd results) in
  let last_gap = gap_of (List.nth results (List.length results - 1)) in
  Printf.sprintf
    "Beta sweep on G3 (d = %.0f): ours vs the energy-DP baseline as the \
     battery tends to ideal\n%s\n\
     shape check: the battery-aware win shrinks from %.1f%% (beta = %.1f) \
     to %.1f%% (beta = %.1f): %b\n"
    deadline
    (Tables.render ~headers:[ "beta"; "ours"; "algo [1]"; "gap" ] ~rows)
    first_gap (List.hd betas) last_gap
    (List.nth betas (List.length betas - 1))
    (last_gap < first_gap)
