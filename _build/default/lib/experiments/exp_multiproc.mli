(** Extension experiment: several processing elements, one battery
    (the Luo & Jha setting the paper cites as related work).

    Runs G3 on 1..3 identical PEs across deadlines, comparing a
    latency-oriented schedule (all fastest), Chowdhury-style slack
    downscaling, and the battery-aware variant.  Parallelism cuts the
    makespan floor, freeing slack for slower design points — but
    concurrent currents add, so the battery does not simply improve
    with more PEs. *)

val name : string

val run : unit -> string
