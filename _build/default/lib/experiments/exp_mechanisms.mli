(** Extension experiment: what the paper's two distinctive mechanisms
    actually buy.

    The algorithm differs from earlier heuristics in two ways: the
    narrow-to-wide {e window sweep} over design-point columns, and the
    {e iterative resequencing} by subtree current (Eq. 4).  This
    knockout study disables each in turn on the six published
    (graph, deadline) points:

    - "full window only" replaces the sweep with a single full-matrix
      evaluation;
    - "one iteration" stops before any Eq. 4 resequencing
      ([max_iterations = 1]);
    - "neither" disables both — a single greedy pass, essentially the
      complexity class of the Chowdhury heuristic. *)

val name : string

val run : unit -> string
