open Batsched_battery
open Batsched_platform

let name = "platform"

let model = Rakhmatov.model ()

let with_overheads cpu =
  (* 5 ms regulator settle per switch at ~full platform draw *)
  Cpu.make ~name:(cpu.Cpu.name ^ "+ovh")
    ~i_base:cpu.Cpu.i_base ~i_dynamic:cpu.Cpu.i_dynamic
    ~transition_latency:(0.005 /. 60.0 *. 60.0) (* 0.005 min = 0.3 s *)
    ~transition_charge:(0.005 *. 260.0)
    (Array.to_list cpu.Cpu.points)

let run_case (label, app) =
  let cpu = Cpu.strongarm in
  let g = Application.compile ~label app ~cpu in
  let fastest, slowest = Batsched_taskgraph.Analysis.serial_time_bounds g in
  let deadline = fastest +. (0.6 *. (slowest -. fastest)) in
  let cfg = Batsched.Config.make ~deadline () in
  let result = Batsched.Iterate.run cfg g in
  let sched = result.Batsched.Iterate.schedule in
  let predicted = result.Batsched.Iterate.sigma in
  let free_run = Executor.execute app ~cpu ~schedule:sched in
  let executed_free = Model.sigma_end model free_run.Executor.profile in
  let ovh_run = Executor.execute app ~cpu:(with_overheads cpu) ~schedule:sched in
  let executed_ovh = Model.sigma_end model ovh_run.Executor.profile in
  let mismatch = Executor.validate_against_analytic app ~cpu ~schedule:sched in
  ( [ label;
      string_of_int (Batsched_taskgraph.Graph.num_tasks g);
      Tables.f1 deadline;
      Tables.f0 predicted;
      Tables.f0 executed_free;
      Tables.f0 executed_ovh;
      string_of_int ovh_run.Executor.transitions;
      Tables.f1 ovh_run.Executor.overhead_time;
      Tables.pct (100.0 *. (executed_ovh -. predicted) /. predicted) ],
    (predicted, executed_free, mismatch,
     ovh_run.Executor.finish <= deadline +. ovh_run.Executor.overhead_time +. 1e-6) )

let run () =
  let cases =
    [ ("video-pipeline", Application.video_pipeline);
      ("sensor-fusion", Application.sensor_fusion) ]
  in
  let rows, checks = List.split (List.map run_case cases) in
  let exact =
    List.for_all
      (fun (predicted, executed_free, mismatch, _) ->
        mismatch < 1e-9
        && Float.abs (executed_free -. predicted) /. predicted < 1e-9)
      checks
  in
  let feasible_with_overheads =
    List.for_all (fun (_, _, _, ok) -> ok) checks
  in
  Printf.sprintf
    "Prediction vs execution on a StrongARM-class platform (slack 0.6)\n%s\n\
     shape checks: with free transitions the executed profile matches \
     the analytic prediction exactly: %b; with 0.3-s/260-mA switch costs \
     the schedule still fits the deadline plus the accounted overhead: \
     %b\n\
     reading: DVS switch overheads shift sigma by well under a percent \
     on minute-scale tasks — the paper's overhead-free model is \
     justified at this granularity, and would stop being so for \
     millisecond tasks.\n"
    (Tables.render
       ~headers:
         [ "app"; "n"; "deadline"; "predicted"; "executed"; "exec+ovh";
           "switches"; "ovh (min)"; "drift" ]
       ~rows)
    exact feasible_with_overheads
