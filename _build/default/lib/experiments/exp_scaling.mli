(** Extension experiment: how the algorithms scale with task count.

    Wall-clock here is indicative ([Sys.time]-based); the rigorous
    timing benches live in [bench/main.ml] (Bechamel).  The interesting
    structural output is the iteration count and per-size sigma of the
    iterative algorithm vs the one-shot baselines. *)

val name : string

val run : ?seed:int -> unit -> string
(** Fork-join families from 11 to ~51 tasks. *)
