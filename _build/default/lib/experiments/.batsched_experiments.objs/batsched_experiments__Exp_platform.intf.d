lib/experiments/exp_platform.mli:
