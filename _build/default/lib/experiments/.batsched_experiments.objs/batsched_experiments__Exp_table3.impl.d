lib/experiments/exp_table3.ml: Batsched Batsched_sched Batsched_taskgraph Fun Graph Instances List Printf Tables
