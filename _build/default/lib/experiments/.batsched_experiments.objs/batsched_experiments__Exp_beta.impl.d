lib/experiments/exp_beta.ml: Batsched Batsched_baselines Batsched_battery Batsched_taskgraph Instances List Printf Rakhmatov Tables
