lib/experiments/exp_curves.mli:
