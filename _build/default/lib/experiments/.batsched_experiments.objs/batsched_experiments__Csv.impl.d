lib/experiments/csv.ml: Buffer List String
