lib/experiments/tables.mli:
