lib/experiments/exp_endurance.ml: Batsched Batsched_baselines Batsched_battery Batsched_sched Batsched_taskgraph Cell Instances List Periodic Printf Profile Schedule Tables
