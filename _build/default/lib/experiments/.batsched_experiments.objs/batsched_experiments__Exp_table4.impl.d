lib/experiments/exp_table4.ml: Batsched Batsched_baselines Batsched_battery Batsched_taskgraph Instances List Printf Tables
