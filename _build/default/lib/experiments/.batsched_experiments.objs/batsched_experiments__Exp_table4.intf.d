lib/experiments/exp_table4.mli:
