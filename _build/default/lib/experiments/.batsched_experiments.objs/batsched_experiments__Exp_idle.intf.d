lib/experiments/exp_idle.mli:
