lib/experiments/exp_platform.ml: Application Array Batsched Batsched_battery Batsched_platform Batsched_taskgraph Cpu Executor Float List Model Printf Rakhmatov Tables
