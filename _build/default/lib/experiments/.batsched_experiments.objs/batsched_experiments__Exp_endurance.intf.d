lib/experiments/exp_endurance.mli:
