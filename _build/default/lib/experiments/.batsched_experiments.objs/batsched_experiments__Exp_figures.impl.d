lib/experiments/exp_figures.ml: Array Assignment Batsched_sched Batsched_taskgraph Buffer Designpoints Float Fun Graph Instances List Metrics Printf String Tables Task Textio
