lib/experiments/exp_ablation.ml: Batsched Batsched_numeric Batsched_taskgraph Graph Instances List Printf Tables
