lib/experiments/exp_mechanisms.ml: Batsched Batsched_numeric Batsched_taskgraph Graph Instances List Printf Tables
