lib/experiments/exp_beta.mli:
