lib/experiments/csv.mli:
