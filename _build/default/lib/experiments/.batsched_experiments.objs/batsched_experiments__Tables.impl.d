lib/experiments/tables.ml: Array Buffer List Printf Stdlib String
