lib/experiments/exp_curves.ml: Batsched_battery Cell Curves List Printf Tables
