lib/experiments/exp_models.ml: Batsched Batsched_baselines Batsched_battery Batsched_sched Batsched_taskgraph Graph Ideal Instances Kibam List Model Peukert Printf Rakhmatov Schedule String Tables
