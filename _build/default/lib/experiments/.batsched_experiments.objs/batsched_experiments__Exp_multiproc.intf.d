lib/experiments/exp_multiproc.mli:
