lib/experiments/exp_models.mli:
