lib/experiments/exp_mechanisms.mli:
