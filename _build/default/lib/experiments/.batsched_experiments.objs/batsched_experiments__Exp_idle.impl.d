lib/experiments/exp_idle.ml: Batsched Batsched_taskgraph Graph Instances List Printf Tables
