lib/experiments/exp_figures.mli:
