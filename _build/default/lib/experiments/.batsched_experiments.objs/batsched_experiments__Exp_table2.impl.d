lib/experiments/exp_table2.ml: Assignment Batsched Batsched_sched Batsched_taskgraph Graph Instances List Printf String Tables Task
