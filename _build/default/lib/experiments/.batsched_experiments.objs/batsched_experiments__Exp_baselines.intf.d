lib/experiments/exp_baselines.mli:
