lib/experiments/registry.mli:
