(** Reproduction of Table 2: the task sequences and design-point
    assignments generated in each iteration of the algorithm on G3
    (deadline 230, beta 0.273). *)

val name : string

val run : unit -> string
(** Render the per-iteration sequences (S<i>), the winning window's DP
    row in sequence order, and the weighted sequences (S<i>w). *)
