(** Extension experiment: periodic-mission endurance.

    Repeats the G2 robotic-arm mission every period on a degraded Itsy
    cell and counts complete cycles before battery death, for the
    iterative scheduler and both published baselines.  Also sweeps the
    period to expose the recovery dividend: longer rest between
    missions buys extra cycles beyond the plain charge budget. *)

val name : string

val run : unit -> string
