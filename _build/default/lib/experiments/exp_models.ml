open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

let name = "models"

let models =
  [ Rakhmatov.model ();
    Kibam.model ();
    Peukert.model ();
    Ideal.model ]

let cases =
  [ (Instances.g2, 55.0); (Instances.g2, 75.0); (Instances.g2, 95.0);
    (Instances.g3, 100.0); (Instances.g3, 150.0); (Instances.g3, 230.0) ]

let schedule_under model g deadline =
  let cfg = Batsched.Config.make ~model ~deadline () in
  (Batsched.Iterate.run cfg g).Batsched.Iterate.schedule

let run () =
  (* (a) cross-evaluation: the RV-optimized schedule vs the energy-DP
     baseline, judged by every model *)
  let rv = List.hd models in
  let cross_rows =
    List.map
      (fun (g, deadline) ->
        let ours = schedule_under rv g deadline in
        let baseline =
          (Batsched_baselines.Dp_energy.run ~model:rv g ~deadline)
            .Batsched_baselines.Solution.schedule
        in
        let cells =
          List.concat_map
            (fun (m : Model.t) ->
              let so = Schedule.battery_cost ~model:m g ours in
              let sb = Schedule.battery_cost ~model:m g baseline in
              [ Tables.f0 so; Tables.pct (100.0 *. (sb -. so) /. so) ])
            models
        in
        (Graph.label g :: Tables.f0 deadline :: cells))
      cases
  in
  let cross_headers =
    "graph" :: "d"
    :: List.concat_map
         (fun (m : Model.t) -> [ m.Model.name; "[1] vs" ])
         models
  in
  (* count, per model, at how many of the six points the RV-optimized
     schedule still beats the baseline *)
  let win_counts =
    List.map
      (fun (m : Model.t) ->
        let wins =
          List.length
            (List.filter
               (fun (g, deadline) ->
                 let ours = schedule_under rv g deadline in
                 let baseline =
                   (Batsched_baselines.Dp_energy.run ~model:rv g ~deadline)
                     .Batsched_baselines.Solution.schedule
                 in
                 Schedule.battery_cost ~model:m g ours
                 <= Schedule.battery_cost ~model:m g baseline +. 1e-6)
               cases)
        in
        Printf.sprintf "%s %d/%d" m.Model.name wins (List.length cases))
      models
  in
  (* (b) model-mismatch cost on G3/230: optimize under each model,
     evaluate under RV *)
  let g, deadline = (Instances.g3, 230.0) in
  let rv_of sched = Schedule.battery_cost ~model:rv g sched in
  let mismatch_rows =
    List.map
      (fun (m : Model.t) ->
        let sched = schedule_under m g deadline in
        let own = Schedule.battery_cost ~model:m g sched in
        [ m.Model.name; Tables.f0 own; Tables.f0 (rv_of sched) ])
      models
  in
  Printf.sprintf
    "Cross-model evaluation of the RV-optimized schedule \
     (sigma under each model; \"[1] vs\" = baseline's excess)\n%s\n\
     win counts by model (how often the RV-optimized schedule still \
     beats the energy-DP baseline): %s\n\
     reading: the win transfers partially to KiBaM (same physics, \
     different math) but not to Peukert, whose superlinear current \
     penalty rewards exactly the energy-minimal selection the baseline \
     makes — optimizing against the wrong battery model costs real \
     capacity.\n\n\
     Model-mismatch cost on G3 (d = 230): optimize under M, evaluate \
     under RV\n%s"
    (Tables.render ~headers:cross_headers ~rows:cross_rows)
    (String.concat ", " win_counts)
    (Tables.render
       ~headers:[ "optimized under"; "own sigma"; "sigma under RV" ]
       ~rows:mismatch_rows)
