(** Reproduction of Table 3: battery capacity sigma (mA*min) and
    schedule length Delta (min) per window per iteration on G3, plus the
    running minimum — including the shape checks the paper's narrative
    makes (monotone improvement, termination on non-improvement, all
    schedules meet the deadline). *)

val name : string

val run : unit -> string
