(** Extension experiment: recovery-aware idle insertion.

    Takes the iterative algorithm's schedule at each published
    (graph, deadline) point and distributes the leftover slack as
    inter-task rest via {!Batsched.Idle.optimize}, reporting the extra
    battery capacity reclaimed purely from gap placement. *)

val name : string

val run : unit -> string
