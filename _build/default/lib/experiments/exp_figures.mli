(** Reproductions of the paper's data table and illustrative figures:

    - [table1]: echo of the G3 input data plus a consistency check of
      the cube scaling law the paper says generated it;
    - [fig3]: the window-masking illustration (5 tasks x 4 design
      points, three windows);
    - [fig4]: the worked DPF example — the state of Figure 4-c must
      yield DPF = 1/3;
    - [fig5]: the G2 case-study graph (data echo plus the reconstructed
      edge set and a DOT rendering). *)

val name_table1 : string
val name_fig3 : string
val name_fig4 : string
val name_fig5 : string

val run_table1 : unit -> string
val run_fig3 : unit -> string
val run_fig4 : unit -> string
val run_fig5 : unit -> string
