open Batsched_taskgraph
open Batsched_sched

let name = "table2"

let seq_names g seq =
  String.concat "," (List.map (fun i -> (Graph.task g i).Task.name) seq)

let dp_row (a : Assignment.t) seq =
  String.concat ","
    (List.map (fun i -> Printf.sprintf "P%d" (Assignment.column a i + 1)) seq)

let run () =
  let g = Instances.g3 in
  let cfg = Batsched.Config.make ~deadline:Instances.g3_deadline () in
  let result = Batsched.Iterate.run cfg g in
  let rows =
    List.concat_map
      (fun (it : Batsched.Iterate.iteration) ->
        let best = it.windows.Batsched.Window.best in
        [ [ string_of_int it.index;
            Printf.sprintf "S%d" it.index;
            seq_names g it.sequence ];
          [ ""; "DP"; dp_row best.Batsched.Window.assignment it.sequence ];
          [ "";
            Printf.sprintf "S%dw" it.index;
            seq_names g it.weighted_sequence ] ])
      result.iterations
  in
  Printf.sprintf
    "Table 2 reproduction: task sequences of G3 per iteration (d = %.0f)\n%s"
    Instances.g3_deadline
    (Tables.render ~headers:[ "Iter"; "Seq No"; "Task sequence / design points" ] ~rows)
