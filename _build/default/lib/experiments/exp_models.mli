(** Extension experiment: robustness to the battery model.

    The paper optimizes and evaluates with the Rakhmatov–Vrudhula model
    only.  Here the schedules produced against RV are re-evaluated under
    KiBaM, Peukert and the ideal battery, and the algorithm is also
    re-run optimizing directly against each model, answering two
    questions: (a) does the RV-optimized schedule stay better than the
    energy-DP baseline under other models?  (b) how much is lost by
    optimizing against the "wrong" model? *)

val name : string

val run : unit -> string
