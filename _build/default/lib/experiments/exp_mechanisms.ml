open Batsched_taskgraph

let name = "mechanisms"

let cases =
  [ (Instances.g2, 55.0); (Instances.g2, 75.0); (Instances.g2, 95.0);
    (Instances.g3, 100.0); (Instances.g3, 150.0); (Instances.g3, 230.0) ]

let variants =
  [ ("paper", false, 100);
    ("full-window-only", true, 100);
    ("one-iteration", false, 1);
    ("neither", true, 1) ]

let sigma_of g deadline (full_window_only, max_iterations) =
  let cfg =
    Batsched.Config.make ~full_window_only ~max_iterations ~deadline ()
  in
  (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma

let run () =
  let rows =
    List.map
      (fun (g, deadline) ->
        let base = sigma_of g deadline (false, 100) in
        Graph.label g :: Tables.f0 deadline :: Tables.f0 base
        :: List.concat_map
             (fun (label, fwo, iters) ->
               if label = "paper" then []
               else begin
                 let s = sigma_of g deadline (fwo, iters) in
                 [ Tables.f0 s; Tables.pct (100.0 *. (s -. base) /. base) ]
               end)
             variants)
      cases
  in
  let mean_delta (fwo, iters) =
    Batsched_numeric.Stats.mean
      (List.map
         (fun (g, deadline) ->
           let base = sigma_of g deadline (false, 100) in
           100.0 *. (sigma_of g deadline (fwo, iters) -. base) /. base)
         cases)
  in
  Printf.sprintf
    "Mechanism knockout on the published points (sigma, mA*min)\n%s\n\
     mean degradation: windows removed %+.1f%%; resequencing removed \
     %+.1f%%; both removed %+.1f%%\n\
     reading: each mechanism contributes on its own and they are \
     complementary — the windows explore design-point mixes a single \
     full-matrix pass misses, while resequencing feeds better orders \
     back into the selection.\n"
    (Tables.render
       ~headers:
         [ "graph"; "d"; "paper"; "no windows"; "vs"; "no reseq"; "vs";
           "neither"; "vs" ]
       ~rows)
    (mean_delta (true, 100))
    (mean_delta (false, 1))
    (mean_delta (true, 1))
