type experiment = {
  name : string;
  title : string;
  run : unit -> string;
}

let all =
  [ { name = Exp_figures.name_table1;
      title = "Table 1: G3 input data + generation-law check";
      run = Exp_figures.run_table1 };
    { name = Exp_table2.name;
      title = "Table 2: per-iteration sequences and design points (G3)";
      run = Exp_table2.run };
    { name = Exp_table3.name;
      title = "Table 3: per-window sigma/Delta per iteration (G3)";
      run = Exp_table3.run };
    { name = Exp_table4.name;
      title = "Table 4: ours vs the energy-DP baseline on G2 and G3";
      run = Exp_table4.run };
    { name = Exp_figures.name_fig3;
      title = "Figure 3: window masking illustration";
      run = Exp_figures.run_fig3 };
    { name = Exp_figures.name_fig4;
      title = "Figure 4: worked DPF example (DPF = 1/3)";
      run = Exp_figures.run_fig4 };
    { name = Exp_figures.name_fig5;
      title = "Figure 5: G2 robotic-arm controller data and graph";
      run = Exp_figures.run_fig5 };
    { name = Exp_curves.name;
      title = "Battery model behaviour: rate capacity, recovery, ordering";
      run = Exp_curves.run };
    { name = Exp_validation.name;
      title = "Eq. 1 vs the diffusion PDE (first-principles check)";
      run = Exp_validation.run };
    { name = Exp_ablation.name;
      title = "Ablation of the B = SR+CR+ENR+CIF+DPF objective";
      run = Exp_ablation.run };
    { name = Exp_mechanisms.name;
      title = "Knockout of the window sweep and the resequencing loop";
      run = Exp_mechanisms.run };
    { name = Exp_models.name;
      title = "Cross-model robustness (RV / KiBaM / Peukert / ideal)";
      run = Exp_models.run };
    { name = Exp_idle.name;
      title = "Recovery-aware idle insertion";
      run = Exp_idle.run };
    { name = Exp_beta.name;
      title = "Beta sensitivity: where battery-awareness stops paying";
      run = Exp_beta.run };
    { name = Exp_endurance.name;
      title = "Periodic-mission endurance on a degraded cell";
      run = Exp_endurance.run };
    { name = Exp_platform.name;
      title = "Prediction vs execution on a StrongARM-class platform";
      run = Exp_platform.run };
    { name = Exp_multiproc.name;
      title = "Several PEs, one battery (Luo & Jha setting)";
      run = Exp_multiproc.run };
    { name = Exp_baselines.name;
      title = "Four-way comparison + optimality gaps";
      run = (fun () -> Exp_baselines.run ()) };
    { name = Exp_scaling.name;
      title = "Scaling with task count";
      run = (fun () -> Exp_scaling.run ()) } ]

let find n = List.find_opt (fun e -> e.name = n) all

let names = List.map (fun e -> e.name) all
