let f1 x = Printf.sprintf "%.1f" x

let f0 x = Printf.sprintf "%.0f" x

let pct x = Printf.sprintf "%+.1f%%" x

let render ~headers ~rows =
  if headers = [] then invalid_arg "Tables.render: empty headers";
  let cols = List.length headers in
  let pad row =
    let len = List.length row in
    if len > cols then invalid_arg "Tables.render: row longer than header"
    else row @ List.init (cols - len) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    rows;
  let line c =
    let parts =
      Array.to_list (Array.map (fun w -> String.make (w + 2) c) widths)
    in
    "+" ^ String.concat "+" parts ^ "+"
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> Printf.sprintf " %-*s " widths.(i) cell)
        row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf
