open Batsched_battery

let name = "curves"

let run () =
  let cell = Cell.itsy in
  let rate =
    Curves.rate_capacity ~cell
      ~currents:[ 50.0; 100.0; 200.0; 400.0; 800.0; 1600.0 ]
  in
  let rate_table =
    Tables.render
      ~headers:[ "I (mA)"; "lifetime (min)"; "delivered (mA*min)"; "efficiency" ]
      ~rows:
        (List.map
           (fun (p : Curves.rate_capacity_point) ->
             [ Tables.f0 p.current;
               Tables.f1 p.lifetime;
               Tables.f0 p.delivered;
               Printf.sprintf "%.3f" p.efficiency ])
           rate)
  in
  let rec_points =
    Curves.recovery ~cell ~current:800.0 ~burst:20.0
      ~idles:[ 0.0; 1.0; 5.0; 10.0; 30.0; 60.0 ]
  in
  let recovery_table =
    Tables.render
      ~headers:[ "idle (min)"; "sigma at end (mA*min)"; "recovered (mA*min)" ]
      ~rows:
        (List.map
           (fun (p : Curves.recovery_point) ->
             [ Tables.f1 p.idle; Tables.f1 p.sigma_end; Tables.f1 p.recovered ])
           rec_points)
  in
  let tasks =
    [ (900.0, 5.0); (600.0, 8.0); (300.0, 10.0); (120.0, 15.0); (50.0, 20.0) ]
  in
  let dec, inc = Curves.ordering_gap ~cell tasks in
  let efficiencies =
    List.map (fun (p : Curves.rate_capacity_point) -> p.efficiency) rate
  in
  let eff_decreasing =
    let rec check = function
      | a :: (b :: _ as rest) -> a >= b && check rest
      | _ -> true
    in
    check efficiencies
  in
  let recovered_increasing =
    let rec check = function
      | (a : Curves.recovery_point) :: (b :: _ as rest) ->
          a.recovered <= b.recovered +. 1e-9 && check rest
      | _ -> true
    in
    check rec_points
  in
  Printf.sprintf
    "Battery substrate behaviour (cell %s: alpha = %.0f mA*min, beta = %.3f)\n\n\
     Rate-capacity effect (constant loads):\n%s\n\
     shape check: delivered efficiency falls as the load rises: %b\n\n\
     Recovery effect (two 20-min 800-mA bursts, idle in between):\n%s\n\
     shape check: recovered charge grows with the idle gap: %b\n\n\
     Ordering theorem (same five tasks, two orders):\n\
     sigma decreasing-current order = %.1f; increasing order = %.1f -> \
     decreasing is better by %.1f mA*min (%b)\n"
    cell.Cell.label cell.Cell.alpha cell.Cell.beta
    rate_table eff_decreasing recovery_table recovered_increasing dec inc
    (inc -. dec) (dec <= inc)
