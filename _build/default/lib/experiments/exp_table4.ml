open Batsched_taskgraph

let name = "table4"

type row = {
  graph : string;
  deadline : float;
  ours : float;
  baseline : float;
  diff_pct : float;
  paper_ours : float;
  paper_baseline : float;
}

let published =
  (* (graph, deadline, ours, baseline [1]) as printed in the paper *)
  [ ("G2", 55.0, 30913.0, 35739.0);
    ("G2", 75.0, 13751.0, 13885.0);
    ("G2", 95.0, 7961.0, 8517.0);
    ("G3", 100.0, 57429.0, 68120.0);
    ("G3", 150.0, 41801.0, 48650.0);
    ("G3", 230.0, 13737.0, 22686.0) ]

let compute () =
  let model = Batsched_battery.Rakhmatov.model () in
  List.map
    (fun (label, deadline, paper_ours, paper_baseline) ->
      let g = if label = "G2" then Instances.g2 else Instances.g3 in
      let cfg = Batsched.Config.make ~deadline () in
      let ours = (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma in
      let baseline =
        (Batsched_baselines.Dp_energy.run ~model g ~deadline)
          .Batsched_baselines.Solution.sigma
      in
      { graph = label;
        deadline;
        ours;
        baseline;
        diff_pct = 100.0 *. (baseline -. ours) /. ours;
        paper_ours;
        paper_baseline })
    published

let run () =
  let rows = compute () in
  let table =
    Tables.render
      ~headers:
        [ "Graph"; "Deadline"; "Ours"; "Algo [1]"; "% diff";
          "Paper ours"; "Paper [1]"; "Paper %" ]
      ~rows:
        (List.map
           (fun r ->
             [ r.graph;
               Tables.f0 r.deadline;
               Tables.f0 r.ours;
               Tables.f0 r.baseline;
               Tables.pct r.diff_pct;
               Tables.f0 r.paper_ours;
               Tables.f0 r.paper_baseline;
               Tables.pct
                 (100.0 *. (r.paper_baseline -. r.paper_ours) /. r.paper_ours) ])
           rows)
  in
  let wins = List.for_all (fun r -> r.ours <= r.baseline +. 1e-6) rows in
  let monotone_in_deadline =
    (* within each graph, sigma decreases as the deadline loosens *)
    let by_graph label =
      List.filter (fun r -> r.graph = label) rows
      |> List.map (fun r -> r.ours)
    in
    let decreasing xs =
      let rec check = function
        | a :: (b :: _ as rest) -> a >= b && check rest
        | _ -> true
      in
      check xs
    in
    decreasing (by_graph "G2") && decreasing (by_graph "G3")
  in
  Printf.sprintf
    "Table 4 reproduction: ours vs the energy-DP baseline [1] (mA*min)\n%s\n\
     shape checks: ours <= baseline at all six points: %b; \
     sigma decreases with looser deadlines: %b\n"
    table wins monotone_in_deadline
