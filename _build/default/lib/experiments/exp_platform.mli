(** Extension experiment: prediction vs (simulated) execution.

    The paper trusts per-design-point estimates.  Here two realistic
    applications are compiled onto a StrongARM-class CPU model,
    scheduled battery-aware, then {e executed} on the discrete-event
    platform simulator — first with free operating-point transitions
    (execution must match the analytic prediction exactly) and then
    with realistic DVS switch costs, quantifying how much the paper's
    overhead-free model mispredicts. *)

val name : string

val run : unit -> string
