(** Supporting experiment: demonstrate that the battery substrate
    exhibits the two nonlinear effects the paper's heuristic exploits
    (Sec. 3) — the rate-capacity effect, the recovery effect, and the
    decreasing-current ordering theorem. *)

val name : string

val run : unit -> string
