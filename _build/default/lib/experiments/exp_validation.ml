open Batsched_taskgraph
open Batsched_battery

let name = "validation"

let loads =
  [ ("const 800 mA, 20 min, at end", Profile.constant ~current:800.0 ~duration:20.0, 20.0);
    ("same, 40 min after the load", Profile.constant ~current:800.0 ~duration:20.0, 60.0);
    ("const 100 mA, 100 min", Profile.constant ~current:100.0 ~duration:100.0, 100.0);
    ("two bursts, 30-min gap",
     Profile.of_intervals [ (0.0, 20.0, 800.0); (50.0, 20.0, 800.0) ], 70.0);
    ("staircase 900/600/200",
     Profile.sequential [ (900.0, 5.0); (600.0, 10.0); (200.0, 20.0) ], 35.0) ]

let convergence_rows () =
  let p = Profile.constant ~current:800.0 ~duration:20.0 in
  let pde = Diffusion.sigma p ~at:20.0 in
  List.map
    (fun terms ->
      let a = Rakhmatov.sigma ~terms p ~at:20.0 in
      [ string_of_int terms;
        Tables.f1 a;
        Tables.pct (100.0 *. (a -. pde) /. pde) ])
    [ 10; 50; 200; 1000; 5000 ]
  @ [ [ "PDE"; Tables.f1 pde; "-" ] ]

let agreement_rows () =
  List.map
    (fun (label, p, at) ->
      let a10 = Rakhmatov.sigma p ~at in
      let a5000 = Rakhmatov.sigma ~terms:5000 p ~at in
      let pde = Diffusion.sigma p ~at in
      [ label;
        Tables.f1 a10;
        Tables.f1 a5000;
        Tables.f1 pde;
        Tables.pct (100.0 *. (a5000 -. pde) /. pde) ])
    loads

(* does the truncation ever flip a schedule comparison? evaluate every
   published point's "ours vs baseline [1]" verdict under 10 terms and
   under the PDE *)
let verdict_agreement () =
  let cases =
    [ (Instances.g2, 75.0); (Instances.g2, 95.0); (Instances.g3, 230.0) ]
  in
  List.for_all
    (fun (g, deadline) ->
      let model10 = Rakhmatov.model () in
      let ours =
        (Batsched.Iterate.run (Batsched.Config.make ~deadline ()) g)
          .Batsched.Iterate.schedule
      in
      let baseline =
        (Batsched_baselines.Dp_energy.run ~model:model10 g ~deadline)
          .Batsched_baselines.Solution.schedule
      in
      let verdict m =
        Batsched_sched.Schedule.battery_cost ~model:m g ours
        < Batsched_sched.Schedule.battery_cost ~model:m g baseline
      in
      let pde =
        Diffusion.model
          ~params:(Diffusion.make_params ~nodes:48 ~dt:0.05 ~alpha:40375.0
                     ~beta:Rakhmatov.default_beta ())
          ()
      in
      verdict model10 = verdict pde)
    cases

let run () =
  Printf.sprintf
    "Validation of Eq. 1 against the diffusion PDE it approximates\n\n\
     Series convergence (const 800 mA for 20 min, observed at the end):\n%s\n\
     Agreement across load shapes (10 terms = the paper's setting):\n%s\n\
     reading: with enough terms the analytical model matches the PDE to \
     <0.01%%; the paper's 10-term truncation undercounts sigma during \
     active discharge by the series tail (~2/(beta^2 m) per unit \
     current) and is exact again after rest.  The bias is common to all \
     candidate schedules evaluated at similar completion times, so \
     schedule comparisons are unaffected: verdict agreement on the \
     published points: %b\n"
    (Tables.render ~headers:[ "terms"; "sigma"; "vs PDE" ]
       ~rows:(convergence_rows ()))
    (Tables.render
       ~headers:[ "load"; "10 terms"; "5000 terms"; "PDE"; "5000 vs PDE" ]
       ~rows:(agreement_rows ()))
    (verdict_agreement ())
