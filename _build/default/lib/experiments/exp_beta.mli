(** Extension experiment: sensitivity to the battery's diffusion
    parameter beta.

    Small beta exaggerates the rate-capacity and recovery effects; as
    beta grows the Rakhmatov–Vrudhula battery tends to the ideal one and
    battery-aware ordering stops mattering.  This sweep re-runs the
    paper's comparison (ours vs the energy-DP baseline) across beta and
    shows the win shrinking toward zero — the regime boundary the paper
    never maps. *)

val name : string

val run : unit -> string
