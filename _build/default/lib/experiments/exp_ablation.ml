open Batsched_taskgraph

let name = "ablation"

type row = {
  knockout : string;
  graph : string;
  deadline : float;
  sigma : float;
  delta_pct : float;
}

let weights_without label =
  let w = Batsched.Config.paper_weights in
  match label with
  | "none" -> w
  | "SR" -> { w with Batsched.Config.sr = 0.0 }
  | "CR" -> { w with Batsched.Config.cr = 0.0 }
  | "ENR" -> { w with Batsched.Config.enr = 0.0 }
  | "CIF" -> { w with Batsched.Config.cif = 0.0 }
  | "DPF" -> { w with Batsched.Config.dpf = 0.0 }
  | _ -> invalid_arg "Exp_ablation.weights_without"

let knockouts = [ "none"; "SR"; "CR"; "ENR"; "CIF"; "DPF" ]

let cases =
  [ (Instances.g2, 55.0); (Instances.g2, 75.0); (Instances.g2, 95.0);
    (Instances.g3, 100.0); (Instances.g3, 150.0); (Instances.g3, 230.0) ]

let compute () =
  List.concat_map
    (fun (g, deadline) ->
      let sigma_with label =
        let cfg =
          Batsched.Config.make ~weights:(weights_without label) ~deadline ()
        in
        (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma
      in
      let full = sigma_with "none" in
      List.map
        (fun label ->
          let sigma = if label = "none" then full else sigma_with label in
          { knockout = label;
            graph = Graph.label g;
            deadline;
            sigma;
            delta_pct = 100.0 *. (sigma -. full) /. full })
        knockouts)
    cases

let run () =
  let rows = compute () in
  let table =
    Tables.render
      ~headers:[ "Graph"; "Deadline"; "Knockout"; "sigma (mA*min)"; "vs full" ]
      ~rows:
        (List.map
           (fun r ->
             [ r.graph;
               Tables.f0 r.deadline;
               r.knockout;
               Tables.f0 r.sigma;
               (if r.knockout = "none" then "-" else Tables.pct r.delta_pct) ])
           rows)
  in
  (* Mean degradation per knockout across the six cases. *)
  let summary =
    List.filter (fun k -> k <> "none") knockouts
    |> List.map (fun k ->
           let ds =
             List.filter (fun r -> r.knockout = k) rows
             |> List.map (fun r -> r.delta_pct)
           in
           [ k; Tables.pct (Batsched_numeric.Stats.mean ds) ])
  in
  Printf.sprintf
    "Ablation of the suitability objective B = SR + CR + ENR + CIF + DPF\n%s\n\
     Mean sigma change when a term is removed (positive = the term helps):\n%s"
    table
    (Tables.render ~headers:[ "Knockout"; "mean delta" ] ~rows:summary)
