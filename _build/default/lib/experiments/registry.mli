(** Registry of all reproducible experiments, keyed by the experiment
    ids used in DESIGN.md and EXPERIMENTS.md. *)

type experiment = {
  name : string;     (** id, e.g. "table3" *)
  title : string;    (** one-line description *)
  run : unit -> string;  (** produce the full report *)
}

val all : experiment list
(** Every experiment, in the DESIGN.md index order. *)

val find : string -> experiment option
(** Look an experiment up by id. *)

val names : string list
