(** Extension experiment: ablation of the suitability objective.

    The paper asserts that all five terms of B = SR + CR + ENR + CIF +
    DPF matter but never isolates them.  This experiment knocks each
    term out in turn (weight 0) and re-runs the full algorithm on the
    published instances, reporting the sigma degradation (negative
    values mean the knockout accidentally helped — informative too). *)

val name : string

type row = {
  knockout : string;  (** "none", "SR", "CR", "ENR", "CIF", "DPF" *)
  graph : string;
  deadline : float;
  sigma : float;
  delta_pct : float;  (** vs the full objective, positive = worse *)
}

val compute : unit -> row list

val run : unit -> string
