open Batsched_taskgraph

let name = "table3"

let run () =
  let g = Instances.g3 in
  let deadline = Instances.g3_deadline in
  let cfg = Batsched.Config.make ~deadline () in
  let result = Batsched.Iterate.run cfg g in
  let m = Graph.num_points g in
  (* Columns follow the paper: "Win 1:5" is the full window
     (window_start 0) through "Win (m-1):m" (window_start m-2). *)
  let win_headers =
    List.concat_map
      (fun ws -> [ Printf.sprintf "W%d:%d sig" (ws + 1) m;
                   Printf.sprintf "W%d:%d dlt" (ws + 1) m ])
      (List.init (m - 1) Fun.id)
  in
  let headers = ("Seq" :: win_headers) @ [ "Min sigma"; "Delta" ] in
  let find_window (it : Batsched.Iterate.iteration) ws =
    List.find_opt
      (fun (w : Batsched.Window.window_result) -> w.window_start = ws)
      it.windows.Batsched.Window.per_window
  in
  let min_delta (it : Batsched.Iterate.iteration) =
    (* Delta of the iteration's reported minimum: the schedule available
       at the end of this iteration. *)
    Batsched_sched.Schedule.finish_time g
      (Batsched.Iterate.schedule_of_iteration g it)
  in
  let rows =
    List.concat_map
      (fun (it : Batsched.Iterate.iteration) ->
        let cells =
          List.concat_map
            (fun ws ->
              match find_window it ws with
              | Some w ->
                  [ Tables.f0 w.Batsched.Window.sigma;
                    Tables.f1 w.Batsched.Window.finish ]
              | None -> [ "-"; "-" ])
            (List.init (m - 1) Fun.id)
        in
        [ (Printf.sprintf "S%d" it.index :: cells)
          @ [ Tables.f0 it.min_sigma; Tables.f1 (min_delta it) ];
          [ Printf.sprintf "S%dw" it.index ]
          @ List.init (2 * (m - 1)) (fun _ -> "-")
          @ [ Tables.f0 it.min_sigma; Tables.f1 (min_delta it) ] ])
      result.iterations
  in
  let sigmas =
    List.map (fun (it : Batsched.Iterate.iteration) -> it.min_sigma)
      result.iterations
  in
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) -> a >= b -. 1e-9 && check rest
      | _ -> true
    in
    check sigmas
  in
  let all_meet =
    List.for_all
      (fun (it : Batsched.Iterate.iteration) ->
        min_delta it <= deadline +. 1e-9)
      result.iterations
  in
  Printf.sprintf
    "Table 3 reproduction: per-window sigma/Delta per iteration, G3 (d = %.0f)\n\
     %s\n\
     shape checks: min-sigma monotone non-increasing: %b; \
     every iteration meets the deadline: %b\n\
     final sigma = %.0f mA*min (paper: 13737), Delta = %.1f min (paper: 229.8)\n"
    deadline
    (Tables.render ~headers ~rows)
    monotone all_meet result.sigma result.finish
