(** Substrate-validation experiment: the analytical battery model
    (the paper's Eq. 1) against a first-principles finite-difference
    simulation of the diffusion PDE it was derived from.

    Demonstrates (a) that the Eq. 1 implementation converges to the PDE
    as the series is extended, (b) how much apparent charge the paper's
    10-term truncation drops during active discharge, and (c) that the
    truncation bias largely cancels when {e comparing} schedules, which
    is why the scheduler's decisions are unaffected. *)

val name : string

val run : unit -> string
