open Batsched_taskgraph
open Batsched_multiproc

let name = "multiproc"

let model = Batsched_battery.Rakhmatov.model ()

let run () =
  let g = Instances.g3 in
  let pes = [ 1; 2; 3 ] in
  let deadlines = [ 100.0; 150.0; 230.0 ] in
  let rows = ref [] in
  let ok_order = ref true in
  List.iter
    (fun num_pes ->
      let pes = Mschedule.Pe.uniform num_pes in
      let floor_ms = Mschedule.makespan g (Mheuristics.makespan_fastest g ~pes) in
      List.iter
        (fun deadline ->
          match Mheuristics.slack_downscale g ~pes ~deadline with
          | exception Mheuristics.Infeasible ->
              rows :=
                [ string_of_int num_pes; Tables.f0 deadline; Tables.f1 floor_ms;
                  "-"; "-"; "-"; "-" ]
                :: !rows
          | down ->
              let fast = Mheuristics.makespan_fastest g ~pes in
              let aware = Mheuristics.battery_aware ~model g ~pes ~deadline in
              let s sched = Mschedule.battery_cost ~model g sched in
              if not (s aware <= s down +. 1e-6) then ok_order := false;
              rows :=
                [ string_of_int num_pes;
                  Tables.f0 deadline;
                  Tables.f1 floor_ms;
                  Tables.f0 (s fast);
                  Tables.f0 (s down);
                  Tables.f0 (s aware);
                  Tables.f0 (Mschedule.peak_total_current g aware) ]
                :: !rows)
        deadlines)
    pes;
  (* heterogeneous bonus rows: one big core plus little cores *)
  List.iter
    (fun little ->
      let pes = Mschedule.Pe.big_little ~big:1 ~little in
      let label = Printf.sprintf "1b+%dL" little in
      List.iter
        (fun deadline ->
          match Mheuristics.battery_aware ~model g ~pes ~deadline with
          | exception Mheuristics.Infeasible ->
              rows := [ label; Tables.f0 deadline; "-"; "-"; "-"; "-"; "-" ] :: !rows
          | aware ->
              let floor_ms =
                Mschedule.makespan g (Mheuristics.makespan_fastest g ~pes)
              in
              let down = Mheuristics.slack_downscale g ~pes ~deadline in
              let fast = Mheuristics.makespan_fastest g ~pes in
              let s sched = Mschedule.battery_cost ~model g sched in
              rows :=
                [ label; Tables.f0 deadline; Tables.f1 floor_ms;
                  Tables.f0 (s fast); Tables.f0 (s down); Tables.f0 (s aware);
                  Tables.f0 (Mschedule.peak_total_current g aware) ]
                :: !rows)
        deadlines)
    [ 1; 2 ];
  let single_pe_vs_core =
    (* the 1-PE battery-aware variant should be in the ballpark of the
       paper's single-processor algorithm *)
    let aware =
      Mheuristics.battery_aware ~model g ~pes:(Mschedule.Pe.uniform 1)
        ~deadline:230.0
    in
    let core =
      (Batsched.Iterate.run (Batsched.Config.make ~deadline:230.0 ()) g)
        .Batsched.Iterate.sigma
    in
    (Mschedule.battery_cost ~model g aware, core)
  in
  Printf.sprintf
    "G3 on 1..3 identical PEs sharing one battery (sigma in mA*min)\n%s\n\
     shape checks: battery-aware <= slack-downscale at every feasible \
     point: %b\n\
     cross-check: 1-PE battery-aware gives %.0f vs the paper \
     algorithm's %.0f (the dedicated single-PE search is stronger, as \
     expected)\n\
     reading: at d = 100 a single PE must run hot (sigma ~57k) while \
     two PEs already fit slower design points; the third PE pays \
     rate-capacity for its concurrency, so the returns diminish — the \
     battery is not a free parallelism multiplier.\n"
    (Tables.render
       ~headers:
         [ "PEs"; "d"; "fastest ms"; "all-fastest"; "downscale";
           "batt-aware"; "peak mA" ]
       ~rows:(List.rev !rows))
    !ok_order
    (fst single_pe_vs_core) (snd single_pe_vs_core)
