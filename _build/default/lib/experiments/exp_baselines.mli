(** Extension experiment: four-way algorithm comparison on synthetic
    families, plus an optimality-gap measurement against exhaustive
    enumeration on small instances. *)

val name : string

val run : ?seed:int -> unit -> string
(** [run ()] (seed defaults to 1) compares the iterative algorithm,
    the energy-DP baseline, the Chowdhury heuristic, simulated
    annealing and random search on fork-join / layered / series-parallel
    families at three slack levels, then reports the mean optimality
    gap of each on tiny graphs where the exact optimum is
    enumerable. *)
