(** Minimal ASCII table rendering for experiment reports. *)

val render : headers:string list -> rows:string list list -> string
(** [render ~headers ~rows] draws a boxed table with padded columns.
    Rows shorter than the header are padded with empty cells; longer
    rows raise.
    @raise Invalid_argument on empty headers or an over-long row. *)

val f1 : float -> string
(** Fixed 1-decimal rendering ("228.3"). *)

val f0 : float -> string
(** Rounded integer rendering ("16353"). *)

val pct : float -> string
(** Signed percentage with one decimal ("+15.6%"). *)
