(** Reproduction of Table 4: battery capacity used by our algorithm vs
    the energy-DP baseline (the paper's ref. [1]) on G2 and G3 across
    three deadlines each, with the published numbers alongside. *)

val name : string

type row = {
  graph : string;
  deadline : float;
  ours : float;
  baseline : float;
  diff_pct : float;        (** (baseline - ours)/ours * 100 *)
  paper_ours : float;
  paper_baseline : float;
}

val compute : unit -> row list
(** The six comparison points, in paper order. *)

val run : unit -> string
