open Batsched_taskgraph
open Batsched_sched

let name_table1 = "table1"
let name_fig3 = "fig3"
let name_fig4 = "fig4"
let name_fig5 = "fig5"

let data_rows g =
  List.map
    (fun (t : Task.t) ->
      let cells =
        Array.to_list t.Task.points
        |> List.concat_map (fun (p : Task.design_point) ->
               [ Tables.f0 p.Task.current; Tables.f1 p.Task.duration ])
      in
      let parents =
        Graph.preds g t.Task.id
        |> List.map (fun i -> (Graph.task g i).Task.name)
        |> String.concat ","
      in
      (t.Task.name :: cells) @ [ (if parents = "" then "-" else parents) ])
    (Graph.tasks g)

let data_headers g =
  let m = Graph.num_points g in
  ("Task"
   :: List.concat_map
        (fun j -> [ Printf.sprintf "I%d mA" (j + 1); Printf.sprintf "D%d min" (j + 1) ])
        (List.init m Fun.id))
  @ [ "Parents" ]

(* The paper: G3 currents are proportional to the cube of the voltage
   scaling factor.  Verify column by column against column 0. *)
let cube_consistency g factors =
  let worst = ref 0.0 in
  List.iter
    (fun (t : Task.t) ->
      List.iteri
        (fun j f ->
          let expected = (Task.fastest t).Task.current *. (f ** 3.0) in
          let actual = (Task.point t j).Task.current in
          let rel = Float.abs (actual -. expected) /. expected in
          if rel > !worst then worst := rel)
        factors)
    (Graph.tasks g);
  !worst

let run_table1 () =
  let g = Instances.g3 in
  let worst = cube_consistency g Designpoints.g3_factors in
  Printf.sprintf
    "Table 1 reproduction: G3 input data (15 tasks, 5 design points)\n%s\n\
     cube-law consistency: currents match I1 * s^3 within %.1f%% \
     (paper's stated generation rule; residual is table rounding)\n"
    (Tables.render ~headers:(data_headers g) ~rows:(data_rows g))
    (100.0 *. worst)

let run_fig3 () =
  let m = 4 and tasks = 5 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 3 reproduction: window masking over 5 tasks x 4 design points\n";
  List.iter
    (fun ws ->
      Buffer.add_string buf (Printf.sprintf "\nWindow %d:%d\n" (ws + 1) m);
      for _row = 1 to tasks do
        for j = 0 to m - 1 do
          if j >= ws then Buffer.add_string buf (Printf.sprintf " DP%d " (j + 1))
          else Buffer.add_string buf " ... "
        done;
        Buffer.add_char buf '\n'
      done)
    [ 0; 1; 2 ];
  Buffer.contents buf

let run_fig4 () =
  (* Reconstruct Figure 4-c: five tasks, four design points; T5 fixed at
     DP4 and T4 at DP1 (both outside the free set), T3 tagged; the free
     tasks are T1 at DP2 and T2 at DP4.  Eqs. 2-3 then give
     f = 1/3, F4 = 1/2, F2 = 1/2, DPF = 1/3. *)
  let pairs =
    [ (800.0, 2.0); (400.0, 4.0); (200.0, 6.0); (100.0, 8.0) ]
  in
  let tasks =
    List.init 5 (fun id ->
        Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) pairs)
  in
  let g = Graph.make ~label:"fig4" ~edges:[] tasks in
  (* columns are 0-based: DP2 = 1, DP4 = 3, DP1 = 0 *)
  let a = Assignment.of_list g [ 1; 3; 1; 0; 3 ] in
  let dpf = Metrics.dpf_static g a ~free:[ 0; 1 ] ~window_start:0 in
  Printf.sprintf
    "Figure 4 reproduction: worked DPF example\n\
     state: T5 fixed at DP4, T4 fixed at DP1, T3 tagged at DP2;\n\
     free tasks: T1 at DP2, T2 at DP4 (window 1:4)\n\
     DPF = %.6f (paper: 1/3 = 0.333333) -> %s\n"
    dpf
    (if Float.abs (dpf -. (1.0 /. 3.0)) < 1e-9 then "MATCH" else "MISMATCH")

let run_fig5 () =
  let g = Instances.g2 in
  let edges =
    Graph.edges g
    |> List.map (fun (a, b) ->
           Printf.sprintf "%s->%s" (Graph.task g a).Task.name
             (Graph.task g b).Task.name)
    |> String.concat " "
  in
  Printf.sprintf
    "Figure 5 reproduction: G2 robotic-arm controller (9 tasks, 4 design points)\n\
     %s\nedges (reconstructed, see DESIGN.md): %s\n\nDOT:\n%s"
    (Tables.render ~headers:(data_headers g) ~rows:(data_rows g))
    edges (Textio.to_dot g)
