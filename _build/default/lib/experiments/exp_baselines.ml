open Batsched_numeric
open Batsched_taskgraph
open Batsched_baselines

let name = "baselines"

let model = Batsched_battery.Rakhmatov.model ()

let small_spec = { Generators.default_spec with Generators.num_points = 4 }

let family rng = function
  | "fork-join" -> Generators.fork_join ~rng ~spec:small_spec ~widths:[ 4; 3; 4 ]
  | "layered" -> Generators.layered ~rng ~spec:small_spec ~layers:4 ~width:3 ~edge_prob:0.5
  | "series-parallel" -> Generators.series_parallel ~rng ~spec:small_spec ~size:12
  | f -> invalid_arg ("Exp_baselines.family: " ^ f)

let algorithms =
  [ "iterative"; "iter-ms6"; "dp-energy"; "chowdhury"; "annealing"; "random" ]

let sigma_of ~rng g ~deadline = function
  | "iterative" ->
      let cfg = Batsched.Config.make ~deadline () in
      (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma
  | "iter-ms6" ->
      let cfg = Batsched.Config.make ~deadline () in
      (Batsched.Iterate.run_multistart ~rng ~starts:6 cfg g)
        .Batsched.Iterate.sigma
  | "dp-energy" -> (Dp_energy.run ~model g ~deadline).Solution.sigma
  | "chowdhury" -> (Chowdhury.run ~model g ~deadline).Solution.sigma
  | "annealing" -> (Annealing.run ~rng ~model g ~deadline).Solution.sigma
  | "random" ->
      (Random_search.run ~samples:300 ~rng ~model g ~deadline).Solution.sigma
  | "branch-bound" ->
      (Branch_bound.run ~model g ~deadline).Branch_bound.solution.Solution.sigma
  | a -> invalid_arg ("Exp_baselines.sigma_of: " ^ a)

let comparison ~seed =
  let families = [ "fork-join"; "layered"; "series-parallel" ] in
  let slacks = [ 0.3; 0.6; 0.9 ] in
  let instances_per_family = 3 in
  let rows = ref [] in
  List.iter
    (fun fam ->
      List.iter
        (fun slack ->
          (* Mean sigma per algorithm, normalized by the per-instance
             best so scales are comparable across random instances. *)
          let per_algo = Hashtbl.create 8 in
          for inst = 0 to instances_per_family - 1 do
            let rng = Rng.create (seed + (1000 * inst) + Hashtbl.hash (fam, slack)) in
            let g = family rng fam in
            let deadline = Generators.feasible_deadline g ~slack in
            let sigmas =
              List.map (fun a -> (a, sigma_of ~rng g ~deadline a)) algorithms
            in
            let best = List.fold_left (fun acc (_, s) -> Float.min acc s) Float.infinity sigmas in
            List.iter
              (fun (a, s) ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt per_algo a) in
                Hashtbl.replace per_algo a ((s /. best) :: prev))
              sigmas
          done;
          let cells =
            List.map
              (fun a ->
                Printf.sprintf "%.3f"
                  (Stats.mean (Hashtbl.find per_algo a)))
              algorithms
          in
          rows := (fam :: Printf.sprintf "%.1f" slack :: cells) :: !rows)
        slacks)
    families;
  Tables.render
    ~headers:(("family" :: "slack" :: algorithms))
    ~rows:(List.rev !rows)

let optimality_gaps ~seed =
  let spec = { Generators.default_spec with Generators.num_points = 3 } in
  let cases = 4 in
  let gaps = Hashtbl.create 8 in
  for inst = 0 to cases - 1 do
    let rng = Rng.create (seed + (77 * inst)) in
    let g = Generators.fork_join ~rng ~spec ~widths:[ 2; 2 ] (* 7 tasks *) in
    let deadline = Generators.feasible_deadline g ~slack:0.5 in
    let opt = (Exhaustive.run ~model g ~deadline).Solution.sigma in
    List.iter
      (fun a ->
        let s = sigma_of ~rng g ~deadline a in
        let gap = 100.0 *. (s -. opt) /. opt in
        let prev = Option.value ~default:[] (Hashtbl.find_opt gaps a) in
        Hashtbl.replace gaps a (gap :: prev))
      ("branch-bound" :: algorithms)
  done;
  Tables.render ~headers:[ "algorithm"; "mean gap vs optimum"; "max gap" ]
    ~rows:
      (List.map
         (fun a ->
           let g = Hashtbl.find gaps a in
           let _, hi = Stats.min_max g in
           [ a; Tables.pct (Stats.mean g); Tables.pct hi ])
         ("branch-bound" :: algorithms))

let run ?(seed = 1) () =
  Printf.sprintf
    "Algorithm comparison on synthetic families \
     (mean sigma normalized to per-instance best; 3 instances each)\n%s\n\
     Optimality gap on 7-task fork-join instances \
     (exact optimum by exhaustive enumeration):\n%s"
    (comparison ~seed) (optimality_gaps ~seed)
