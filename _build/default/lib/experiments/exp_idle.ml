open Batsched_taskgraph

let name = "idle"

let cases =
  [ (Instances.g2, 55.0); (Instances.g2, 75.0); (Instances.g2, 95.0);
    (Instances.g3, 100.0); (Instances.g3, 150.0); (Instances.g3, 230.0) ]

(* Part two: sprint-and-rest vs crawl.  Run the assignment search
   against an artificially tightened deadline (fraction f of d), then
   let the idle pass spend the freed slack on recovery gaps: can a fast
   schedule plus rest ever undercut the slow packed schedule's sigma
   peak?  Under the cube law it should not (charge scales with s^2), and
   measuring the residual gap quantifies how much recovery gives back. *)
let sprint_rows () =
  let g = Instances.g3 in
  let d = Instances.g3_deadline in
  List.map
    (fun fraction ->
      let inner = d *. fraction in
      let cfg_inner = Batsched.Config.make ~deadline:inner () in
      let cfg_full = Batsched.Config.make ~deadline:d () in
      let sched =
        (Batsched.Iterate.run cfg_inner g).Batsched.Iterate.schedule
      in
      let idle = Batsched.Idle.optimize cfg_full g sched in
      [ Printf.sprintf "%.2f" fraction;
        Tables.f1 (d -. inner);
        Tables.f0 idle.Batsched.Idle.peak_packed;
        Tables.f0 idle.Batsched.Idle.peak_gapped;
        Tables.f1 idle.Batsched.Idle.improvement;
        string_of_int (List.length idle.Batsched.Idle.placements) ])
    [ 0.7; 0.8; 0.9; 1.0 ]

let run () =
  let results =
    List.map
      (fun (g, deadline) ->
        let cfg = Batsched.Config.make ~deadline () in
        let result = Batsched.Iterate.run cfg g in
        let idle =
          Batsched.Idle.optimize cfg g result.Batsched.Iterate.schedule
        in
        (g, deadline, result, idle))
      cases
  in
  let rows =
    List.map
      (fun (g, deadline, result, (idle : Batsched.Idle.result)) ->
        let lo, hi = Batsched.Idle.survivable_alphas idle in
        [ Graph.label g;
          Tables.f0 deadline;
          Tables.f1 (deadline -. result.Batsched.Iterate.finish);
          Tables.f0 idle.Batsched.Idle.peak_packed;
          Tables.f0 idle.Batsched.Idle.peak_gapped;
          Tables.f1 idle.Batsched.Idle.improvement;
          string_of_int (List.length idle.Batsched.Idle.placements);
          (if hi -. lo > 1.0 then
             Printf.sprintf "%.0f..%.0f" lo hi
           else "-") ])
      results
  in
  let all_nonneg =
    List.for_all
      (fun (_, _, _, (idle : Batsched.Idle.result)) ->
        idle.Batsched.Idle.improvement >= -1e-9)
      results
  in
  Printf.sprintf
    "Peak-shaving idle insertion on top of the paper's algorithm\n\
     (peak sigma over the mission; a battery with alpha inside the \
     \"saved alphas\" window dies packed but survives gapped)\n%s\n\
     shape check: gap placement never raises the peak: %b\n\
     note: the paper's schedules consume almost all slack with slower \
     design points, so little rest is available at the published \
     deadlines; the window opens when schedules keep structural slack \
     (part two).\n\n\
     Sprint-and-rest vs crawl (G3, full deadline %.0f): schedule \
     against fraction f of the deadline, then spend the freed slack on \
     recovery gaps\n%s\n\
     reading: crawl (f = 1.00) still wins — under the cube law resting \
     never repays the quadratic charge cost of sprinting — but recovery \
     gaps claw back a measurable share of the sprint penalty.\n"
    (Tables.render
       ~headers:
         [ "graph"; "d"; "slack"; "peak packed"; "peak gapped"; "shaved";
           "gaps"; "saved alphas" ]
       ~rows)
    all_nonneg Instances.g3_deadline
    (Tables.render
       ~headers:
         [ "f"; "forced slack"; "peak packed"; "peak gapped"; "shaved";
           "gaps" ]
       ~rows:(sprint_rows ()))
