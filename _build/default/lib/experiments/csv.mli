(** Tiny CSV writer (RFC-4180 quoting) for machine-readable experiment
    output. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote or newline. *)

val of_rows : string list list -> string
(** Render rows (first row is conventionally the header). *)

val save : string -> string list list -> unit
(** [save path rows] writes {!of_rows} to [path]. *)
