open Batsched_numeric
open Batsched_taskgraph
open Batsched_baselines

let name = "scaling"

let model = Batsched_battery.Rakhmatov.model ()

let timed f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let run ?(seed = 7) () =
  let sizes = [ [ 3; 3; 2 ]; [ 5; 4; 5 ]; [ 6; 6; 6; 5 ]; [ 8; 8; 8; 8; 8 ] ] in
  let rows =
    List.map
      (fun widths ->
        let rng = Rng.create (seed + Hashtbl.hash widths) in
        let g = Generators.fork_join ~rng ~spec:Generators.default_spec ~widths in
        let n = Graph.num_tasks g in
        let deadline = Generators.feasible_deadline g ~slack:0.6 in
        let cfg = Batsched.Config.make ~deadline () in
        let ours, t_ours = timed (fun () -> Batsched.Iterate.run cfg g) in
        let dp, t_dp = timed (fun () -> Dp_energy.run ~model g ~deadline) in
        let ch, t_ch = timed (fun () -> Chowdhury.run ~model g ~deadline) in
        (* the cube-law continuous relaxation lower-bounds every
           design-point selection's charge, hence (sigma >= charge) also
           every achievable sigma: a certificate of how much headroom
           could remain *)
        let bound = Batsched_sched.Continuous.lower_bound_charge g ~deadline in
        [ string_of_int n;
          Tables.f0 deadline;
          string_of_int (List.length ours.Batsched.Iterate.iterations);
          Tables.f0 ours.Batsched.Iterate.sigma;
          Tables.f0 bound;
          Printf.sprintf "%.3f" t_ours;
          Tables.pct
            (100.0 *. (dp.Solution.sigma -. ours.Batsched.Iterate.sigma)
             /. ours.Batsched.Iterate.sigma);
          Printf.sprintf "%.3f" t_dp;
          Tables.pct
            (100.0 *. (ch.Solution.sigma -. ours.Batsched.Iterate.sigma)
             /. ours.Batsched.Iterate.sigma);
          Printf.sprintf "%.3f" t_ch ])
      sizes
  in
  "Scaling on fork-join families (slack 0.6)\n"
  ^ Tables.render
      ~headers:
        [ "n"; "deadline"; "iters"; "sigma ours"; "charge LB"; "t ours (s)";
          "dp vs ours"; "t dp (s)"; "chow vs ours"; "t chow (s)" ]
      ~rows
