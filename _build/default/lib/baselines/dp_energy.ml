open Batsched_numeric
open Batsched_taskgraph
open Batsched_sched

exception Infeasible

let select_design_points g ~deadline =
  let n = Graph.num_tasks g and m = Graph.num_points g in
  (* Ceiling-round durations and floor the budget: exact on the
     published 0.1-min data, conservatively feasible on arbitrary
     floats. *)
  let budget = Ticks.of_minutes_floor deadline in
  let ticks i j =
    Ticks.of_minutes_ceil (Task.point (Graph.task g i) j).Task.duration
  in
  let energy i j = Task.energy (Graph.task g i) j in
  (* dp.(t) = least total energy of tasks processed so far using exactly
     t ticks; parent.(i).(t) = column chosen for task i at that cell. *)
  let dp = Array.make (budget + 1) Float.infinity in
  dp.(0) <- 0.0;
  let parent = Array.make_matrix n (budget + 1) (-1) in
  for i = 0 to n - 1 do
    let next = Array.make (budget + 1) Float.infinity in
    for t = 0 to budget do
      if dp.(t) < Float.infinity then
        (* scan columns fastest-to-slowest so that equal energies keep
           the slower (lower-power) choice via >= *)
        for j = 0 to m - 1 do
          let t' = t + ticks i j in
          if t' <= budget then begin
            let e = dp.(t) +. energy i j in
            if next.(t') >= e then begin
              (* tie-break note: for equal energy at the same cell the
                 later (slower) column wins *)
              if next.(t') > e || parent.(i).(t') < j then begin
                next.(t') <- e;
                parent.(i).(t') <- j
              end
            end
          end
        done
    done;
    Array.blit next 0 dp 0 (budget + 1)
  done;
  (* Best final cell: least energy, ties to the larger time (more slack
     consumed means slower points were used). *)
  let best_t = ref (-1) in
  for t = 0 to budget do
    if dp.(t) < Float.infinity
       && (!best_t < 0 || dp.(t) < dp.(!best_t) -. 1e-12
           || (dp.(t) <= dp.(!best_t) +. 1e-12 && t > !best_t))
    then best_t := t
  done;
  if !best_t < 0 then raise Infeasible;
  (* Walk parents backwards to recover the per-task columns. *)
  let columns = Array.make n 0 in
  let t = ref !best_t in
  for i = n - 1 downto 0 do
    let j = parent.(i).(!t) in
    (* parent is only written on reachable cells *)
    assert (j >= 0);
    columns.(i) <- j;
    t := !t - ticks i j
  done;
  assert (!t = 0);
  Assignment.of_list g (Array.to_list columns)

let run ~model g ~deadline =
  let assignment = select_design_points g ~deadline in
  let sequence = Priorities.greedy_mean_current g assignment in
  Solution.of_schedule ~model g (Schedule.make g ~sequence ~assignment)
