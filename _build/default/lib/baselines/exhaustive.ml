open Batsched_taskgraph
open Batsched_sched

exception Infeasible
exception Too_large

let run ?(max_assignments = 200_000) ?(max_orders = 5_000) ~model g ~deadline =
  let n = Graph.num_tasks g and m = Graph.num_points g in
  let total_assignments =
    let rec power acc k = if k = 0 then acc else power (acc * m) (k - 1) in
    try power 1 n with _ -> max_int
  in
  if total_assignments > max_assignments then raise Too_large;
  let orders = Analysis.all_topological_orders ~limit:(max_orders + 1) g in
  if List.length orders > max_orders then raise Too_large;
  let duration i j = (Task.point (Graph.task g i) j).Task.duration in
  let best = ref None in
  let columns = Array.make n 0 in
  let consider () =
    let assignment = Assignment.of_list g (Array.to_list columns) in
    List.iter
      (fun sequence ->
        let sched = Schedule.make g ~sequence ~assignment in
        let sol = Solution.of_schedule ~model g sched in
        match !best with
        | Some b when b.Solution.sigma <= sol.Solution.sigma -> ()
        | _ -> best := Some sol)
      orders
  in
  (* Depth-first over assignments with running-time pruning. *)
  let rec assign i time =
    if time > deadline +. 1e-9 then ()
    else if i = n then consider ()
    else
      for j = 0 to m - 1 do
        columns.(i) <- j;
        assign (i + 1) (time +. duration i j)
      done
  in
  assign 0 0.0;
  match !best with Some s -> s | None -> raise Infeasible
