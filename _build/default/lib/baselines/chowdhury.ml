open Batsched_taskgraph
open Batsched_sched

exception Infeasible

let run ?sequence ~model g ~deadline =
  let sequence =
    match sequence with
    | Some s -> s
    | None -> Priorities.sequence_dec_energy g
  in
  let m = Graph.num_points g in
  let duration i j = (Task.point (Graph.task g i) j).Task.duration in
  let assignment = ref (Assignment.all_fastest g) in
  let total = ref (Assignment.total_time g !assignment) in
  if !total > deadline +. 1e-9 then raise Infeasible;
  (* Last task first: give each task the slowest column the remaining
     slack allows. *)
  List.iter
    (fun i ->
      let j = Assignment.column !assignment i in
      let rec relax j =
        if j + 1 < m then begin
          let grow = duration i (j + 1) -. duration i j in
          if !total +. grow <= deadline +. 1e-9 then begin
            total := !total +. grow;
            assignment := Assignment.set !assignment i (j + 1);
            relax (j + 1)
          end
        end
      in
      relax j)
    (List.rev sequence);
  Solution.of_schedule ~model g
    (Schedule.make g ~sequence ~assignment:!assignment)
