(** Common result shape for all baseline schedulers. *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

type t = {
  schedule : Schedule.t;
  sigma : float;    (** battery cost under the evaluation model *)
  finish : float;   (** serial completion time, minutes *)
}

val of_schedule : model:Model.t -> Graph.t -> Schedule.t -> t
(** Evaluate a schedule into a solution record. *)
