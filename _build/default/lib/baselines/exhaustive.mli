(** Exhaustive enumeration — exact optimum for small instances.

    Enumerates every deadline-feasible design-point assignment and, for
    each, every linearization, evaluating sigma exactly.  Cost is
    [O(m^n * #orders)]; guarded by explicit budgets so tests cannot
    accidentally explode. *)

open Batsched_taskgraph
open Batsched_battery

exception Infeasible
(** No assignment meets the deadline. *)

exception Too_large
(** The instance exceeds the enumeration budgets. *)

val run :
  ?max_assignments:int -> ?max_orders:int -> model:Model.t -> Graph.t ->
  deadline:float -> Solution.t
(** [run ~model g ~deadline] returns the minimum-sigma feasible
    schedule.  Budgets default to 200_000 assignments and 5_000 orders.
    @raise Too_large before doing any work if [m^n] or the number of
    linearizations exceeds its budget; @raise Infeasible if no
    assignment fits the deadline. *)
