(** The comparison algorithm of the paper's Sec. 5 — reference [1]
    (Rakhmatov & Vrudhula, TECS 2003), as the paper describes it:

    1. choose design points by a dynamic program minimizing {e total
       energy} subject to the deadline (a multiple-choice knapsack over
       0.1-minute ticks — exact for the published data, which lives on
       that grid, and conservatively rounded for arbitrary durations so
       the deadline guarantee always holds);
    2. sequence greedily with weight
       [w(v) = max(I_v, mean I over the subgraph rooted at v)] (Eq. 5),
       largest weight first among ready tasks.

    The battery model plays no part in the optimization — that is the
    point of the comparison. *)

open Batsched_taskgraph
open Batsched_battery

exception Infeasible
(** Raised when even the all-fastest assignment misses the deadline. *)

val select_design_points : Graph.t -> deadline:float -> Batsched_sched.Assignment.t
(** The energy-minimal deadline-feasible assignment (ties resolve to
    lower-power columns).  @raise Infeasible. *)

val run : model:Model.t -> Graph.t -> deadline:float -> Solution.t
(** Full baseline: DP selection + Eq. 5 greedy sequencing, evaluated
    under [model].  @raise Infeasible. *)
