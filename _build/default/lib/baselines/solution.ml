open Batsched_sched

type t = {
  schedule : Schedule.t;
  sigma : float;
  finish : float;
}

let of_schedule ~model g schedule =
  { schedule;
    sigma = Schedule.battery_cost ~model g schedule;
    finish = Schedule.finish_time g schedule }
