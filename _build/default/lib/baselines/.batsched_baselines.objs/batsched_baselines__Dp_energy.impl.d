lib/baselines/dp_energy.ml: Array Assignment Batsched_numeric Batsched_sched Batsched_taskgraph Float Graph Priorities Schedule Solution Task Ticks
