lib/baselines/exhaustive.ml: Analysis Array Assignment Batsched_sched Batsched_taskgraph Graph List Schedule Solution Task
