lib/baselines/solution.ml: Batsched_sched Schedule
