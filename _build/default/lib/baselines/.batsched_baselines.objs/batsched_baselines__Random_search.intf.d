lib/baselines/random_search.mli: Batsched_battery Batsched_numeric Batsched_taskgraph Graph Model Solution
