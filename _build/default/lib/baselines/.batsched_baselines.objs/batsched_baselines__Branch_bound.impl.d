lib/baselines/branch_bound.ml: Array Assignment Batsched_numeric Batsched_sched Batsched_taskgraph Chowdhury Float Graph List Schedule Solution Task
