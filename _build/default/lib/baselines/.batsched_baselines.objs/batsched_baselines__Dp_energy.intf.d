lib/baselines/dp_energy.mli: Batsched_battery Batsched_sched Batsched_taskgraph Graph Model Solution
