lib/baselines/exhaustive.mli: Batsched_battery Batsched_taskgraph Graph Model Solution
