lib/baselines/chowdhury.mli: Batsched_battery Batsched_taskgraph Graph Model Solution
