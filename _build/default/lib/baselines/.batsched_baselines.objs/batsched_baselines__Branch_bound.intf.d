lib/baselines/branch_bound.mli: Batsched_battery Batsched_taskgraph Graph Model Solution
