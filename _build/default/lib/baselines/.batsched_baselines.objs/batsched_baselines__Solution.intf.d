lib/baselines/solution.mli: Batsched_battery Batsched_sched Batsched_taskgraph Graph Model Schedule
