lib/baselines/annealing.ml: Array Assignment Batsched_numeric Batsched_sched Batsched_taskgraph Chowdhury Float Graph List Rng Schedule Solution
