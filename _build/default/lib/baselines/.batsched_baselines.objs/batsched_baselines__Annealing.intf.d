lib/baselines/annealing.mli: Batsched_battery Batsched_numeric Batsched_taskgraph Graph Model Solution
