lib/baselines/random_search.ml: Array Assignment Batsched_numeric Batsched_sched Batsched_taskgraph Fun Graph Kahan List Rng Schedule Solution Task
