lib/baselines/chowdhury.ml: Assignment Batsched_sched Batsched_taskgraph Graph List Priorities Schedule Solution Task
