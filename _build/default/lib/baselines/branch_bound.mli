(** Branch-and-bound exact scheduler.

    Depth-first search over (next ready task, design-point column)
    decisions, pruned by two sound rules:

    - {e feasibility}: placed time plus the fastest completion of the
      remaining tasks must fit the deadline;
    - {e charge bound}: the final sigma of any completion is at least
      the coulombs drawn so far plus each remaining task's cheapest
      possible charge (RV sigma at completion is bounded below by the
      plain coulomb count).

    The incumbent is seeded with the Chowdhury heuristic so pruning
    bites immediately.  Exact like {!Exhaustive} but typically orders of
    magnitude fewer nodes; still exponential — use the node budget.

    Soundness caveat: the charge bound assumes the model satisfies
    [sigma_end >= coulomb count], which holds for the ideal,
    Rakhmatov–Vrudhula and KiBaM models but {e not} for Peukert below
    its reference current; use {!Exhaustive} for such models. *)

open Batsched_taskgraph
open Batsched_battery

exception Infeasible
(** No schedule meets the deadline. *)

type outcome = {
  solution : Solution.t;
  optimal : bool;   (** false when the node budget stopped the search *)
  nodes : int;      (** decision nodes expanded *)
}

val run :
  ?node_budget:int -> model:Model.t -> Graph.t -> deadline:float -> outcome
(** [run ~model g ~deadline] with [node_budget] defaulting to
    2_000_000.  When the budget is hit the best solution found so far is
    returned with [optimal = false].
    @raise Infeasible when even all-fastest misses the deadline. *)
