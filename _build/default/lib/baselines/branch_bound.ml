open Batsched_taskgraph
open Batsched_sched

exception Infeasible

type outcome = {
  solution : Solution.t;
  optimal : bool;
  nodes : int;
}

let run ?(node_budget = 2_000_000) ~model g ~deadline =
  let n = Graph.num_tasks g and m = Graph.num_points g in
  let duration i j = (Task.point (Graph.task g i) j).Task.duration in
  let charge i j = Task.charge (Graph.task g i) j in
  let fastest i = duration i 0 in
  let min_charge =
    Array.init n (fun i ->
        let best = ref Float.infinity in
        for j = 0 to m - 1 do
          best := Float.min !best (charge i j)
        done;
        !best)
  in
  (* seed the incumbent with the Chowdhury heuristic *)
  let incumbent =
    match Chowdhury.run ~model g ~deadline with
    | sol -> ref (Some sol)
    | exception Chowdhury.Infeasible -> raise Infeasible
  in
  let best_sigma () =
    match !incumbent with
    | Some s -> s.Solution.sigma
    | None -> Float.infinity
  in
  let remaining_preds = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let placed = Array.make n false in
  let seq = Array.make n (-1) in
  let cols = Array.make n 0 in
  let nodes = ref 0 in
  let truncated = ref false in
  (* remaining fastest time and minimal charge, updated incrementally *)
  let rest_fast = ref (Batsched_numeric.Kahan.sum_fn n fastest) in
  let rest_min_charge =
    ref (Batsched_numeric.Kahan.sum_fn n (fun i -> min_charge.(i)))
  in
  let rec dfs depth time coulombs =
    if !nodes >= node_budget then truncated := true
    else if depth = n then begin
      let sequence = Array.to_list seq in
      let assignment =
        let arr = Array.make n 0 in
        Array.iteri (fun pos t -> arr.(t) <- cols.(pos)) seq;
        Assignment.of_list g (Array.to_list arr)
      in
      let sched = Schedule.make g ~sequence ~assignment in
      let sol = Solution.of_schedule ~model g sched in
      match !incumbent with
      | Some b when b.Solution.sigma <= sol.Solution.sigma -> ()
      | _ -> incumbent := Some sol
    end
    else
      for t = 0 to n - 1 do
        if (not placed.(t)) && remaining_preds.(t) = 0 && not !truncated then begin
          placed.(t) <- true;
          List.iter
            (fun w -> remaining_preds.(w) <- remaining_preds.(w) - 1)
            (Graph.succs g t);
          seq.(depth) <- t;
          rest_fast := !rest_fast -. fastest t;
          rest_min_charge := !rest_min_charge -. min_charge.(t);
          for j = 0 to m - 1 do
            if not !truncated then begin
              incr nodes;
              let time' = time +. duration t j in
              let coulombs' = coulombs +. charge t j in
              let feasible = time' +. !rest_fast <= deadline +. 1e-9 in
              let bound = coulombs' +. !rest_min_charge in
              if feasible && bound < best_sigma () -. 1e-9 then begin
                cols.(depth) <- j;
                dfs (depth + 1) time' coulombs'
              end
            end
          done;
          rest_fast := !rest_fast +. fastest t;
          rest_min_charge := !rest_min_charge +. min_charge.(t);
          List.iter
            (fun w -> remaining_preds.(w) <- remaining_preds.(w) + 1)
            (Graph.succs g t);
          placed.(t) <- false
        end
      done
  in
  dfs 0 0.0 0.0;
  match !incumbent with
  | Some solution -> { solution; optimal = not !truncated; nodes = !nodes }
  | None -> raise Infeasible
