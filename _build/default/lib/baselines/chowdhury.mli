(** The Chowdhury–Chakrabarti heuristic (the paper's reference [7]).

    "A simplified heuristic which reduced the voltage level of the tasks
    as much as possible starting from the last task in the schedule":
    begin with every task at its fastest design point, then walk the
    sequence from the last task to the first, moving each task to the
    slowest column that still meets the deadline, exploiting the
    slack-is-better-spent-late property.  The sequence itself comes from
    the same list scheduler as the paper's initial sequence
    ([SequenceDecEnergy]) so the comparison isolates the assignment
    policy. *)

open Batsched_taskgraph
open Batsched_battery

exception Infeasible
(** Raised when even the all-fastest assignment misses the deadline. *)

val run :
  ?sequence:int list -> model:Model.t -> Graph.t -> deadline:float ->
  Solution.t
(** [run ~model g ~deadline] runs the heuristic; [sequence] (default
    [Priorities.sequence_dec_energy g]) must be a linearization.
    @raise Infeasible, or [Invalid_argument] on a bad [sequence]. *)
