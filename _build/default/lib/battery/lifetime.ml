open Batsched_numeric

type outcome =
  | Dies_at of float
  | Survives of { sigma_at_end : float; headroom : float }

let check_alpha alpha =
  if not (alpha > 0.0) then invalid_arg "Lifetime: alpha must be positive"

(* First crossing of alpha: forward scan in [steps] increments to find
   the bracketing step (sigma may dip after heavy intervals, so a
   global monotone inversion could report a later crossing), then
   bisection inside it. *)
let first_crossing ~model ~alpha p ~horizon =
  let f t = model.Model.sigma p ~at:t in
  let steps = 2048 in
  let dt = horizon /. float_of_int steps in
  let rec scan k prev_t =
    if k > steps then None
    else begin
      let t = if k = steps then horizon else dt *. float_of_int k in
      if f t >= alpha then Some (prev_t, t) else scan (k + 1) t
    end
  in
  match scan 1 0.0 with
  | None -> None
  | Some (lo, hi) ->
      Some (Rootfind.bisect ~tol:1e-6 ~f:(fun t -> f t -. alpha) ~lo ~hi ())

let of_profile ~model ~alpha p =
  check_alpha alpha;
  let horizon = Profile.length p in
  if horizon <= 0.0 then Survives { sigma_at_end = 0.0; headroom = alpha }
  else
    match first_crossing ~model ~alpha p ~horizon with
    | Some t -> Dies_at t
    | None ->
        let sigma_at_end = model.Model.sigma p ~at:horizon in
        Survives { sigma_at_end; headroom = alpha -. sigma_at_end }

let of_constant_current ~model ~alpha ~current =
  check_alpha alpha;
  if not (current > 0.0) then
    invalid_arg "Lifetime.of_constant_current: current must be positive";
  (* The load lasts "forever": give the profile a generous horizon and
     extend it if the battery outlives it. *)
  let rec search horizon =
    let p = Profile.constant ~current ~duration:horizon in
    match of_profile ~model ~alpha p with
    | Dies_at t -> t
    | Survives _ -> search (2.0 *. horizon)
  in
  search (Float.max 1.0 (2.0 *. alpha /. current))

let survives ~model ~alpha p =
  match of_profile ~model ~alpha p with
  | Survives _ -> true
  | Dies_at _ -> false
