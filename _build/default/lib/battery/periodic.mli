(** Periodic-mission lifetime analysis.

    A portable device rarely runs its task graph once: it repeats it
    every period (sense/compute/transmit loops, control cycles).  Given
    one cycle's discharge profile and the period, this module answers
    the operational questions: how many cycles does a full battery
    sustain, and what is the slowest period that still reaches a target
    cycle count?  Inter-cycle idle time lets the battery recover, so
    the answers depend on the model's nonlinearity, not just on
    charge-per-cycle. *)

open Batsched_numeric

exception Unsustainable
(** The battery dies within the very first cycle. *)

val cycles_to_death :
  ?max_cycles:int -> model:Model.t -> alpha:float -> period:float ->
  Profile.t -> int
(** [cycles_to_death ~model ~alpha ~period cycle] repeats [cycle] every
    [period] minutes (the cycle must fit: [length cycle <= period]) and
    returns the number of {e complete} cycles before sigma first reaches
    [alpha].  Returns [max_cycles] (default 500) if the battery
    outlives the horizon — callers treating the result as exact should
    check against it.  Cost grows quadratically in the cycle count (the
    full history stays in the profile), so keep horizons realistic.
    @raise Unsustainable if the first cycle already kills the battery.
    @raise Invalid_argument on a non-positive period, a cycle longer
    than the period, or non-positive [alpha]. *)

val max_sustainable_cycles :
  ?max_cycles:int -> model:Model.t -> alpha:float -> Profile.t ->
  period:float -> target:int -> bool
(** [max_sustainable_cycles ~model ~alpha cycle ~period ~target] is true
    iff the battery completes at least [target] cycles (false instead of
    raising when the first cycle is fatal). *)

val min_period_for_cycles :
  ?max_cycles:int -> ?tolerance:float -> model:Model.t -> alpha:float ->
  Profile.t -> target:int -> float option
(** [min_period_for_cycles ~model ~alpha cycle ~target] finds (by
    bisection, [tolerance] minutes, default 0.01) the smallest period
    that still sustains [target] complete cycles, or [None] if even
    arbitrarily long rest cannot (the asymptotic budget
    [target * charge-per-cycle] exceeds alpha).  Longer periods mean
    more recovery, so sustainability is monotone in the period. *)

val interp_cycles :
  model:Model.t -> alpha:float -> Profile.t -> periods:float list ->
  Interp.t
(** Tabulate cycles-to-death against the period — the data behind a
    period/endurance trade-off curve.
    @raise Invalid_argument on fewer than two periods. *)
