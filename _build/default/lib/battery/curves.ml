open Batsched_numeric

let sigma_curve ~model p ~n =
  let horizon = Profile.length p in
  if horizon <= 0.0 then invalid_arg "Curves.sigma_curve: empty profile";
  Interp.tabulate ~f:(fun t -> model.Model.sigma p ~at:t) ~lo:0.0 ~hi:horizon ~n

type rate_capacity_point = {
  current : float;
  lifetime : float;
  delivered : float;
  efficiency : float;
}

let rate_capacity ~cell ~currents =
  let model = Cell.model cell in
  let point current =
    if not (current > 0.0) then
      invalid_arg "Curves.rate_capacity: non-positive current";
    let lifetime =
      Lifetime.of_constant_current ~model ~alpha:cell.Cell.alpha ~current
    in
    let delivered = current *. lifetime in
    { current; lifetime; delivered; efficiency = delivered /. cell.Cell.alpha }
  in
  List.map point currents

type recovery_point = { idle : float; sigma_end : float; recovered : float }

let recovery ~cell ~current ~burst ~idles =
  if not (current > 0.0) then invalid_arg "Curves.recovery: non-positive current";
  if not (burst > 0.0) then invalid_arg "Curves.recovery: non-positive burst";
  let model = Cell.model cell in
  let profile idle =
    Profile.of_intervals
      [ (0.0, burst, current); (burst +. idle, burst, current) ]
  in
  let sigma_of idle =
    (* Observe at the end of the second burst so both runs are compared
       at their own completion instants. *)
    Model.sigma_end model (profile idle)
  in
  let base = sigma_of 0.0 in
  let point idle =
    if idle < 0.0 then invalid_arg "Curves.recovery: negative idle";
    let sigma_end = sigma_of idle in
    { idle; sigma_end; recovered = base -. sigma_end }
  in
  List.map point idles

let ordering_gap ~cell tasks =
  let model = Cell.model cell in
  let run order =
    Model.sigma_end model (Profile.sequential order)
  in
  let dec = List.sort (fun (a, _) (b, _) -> compare b a) tasks in
  let inc = List.sort (fun (a, _) (b, _) -> compare a b) tasks in
  (run dec, run inc)
