(** Battery model interface.

    A model maps a discharge profile and an observation instant to the
    *apparent charge lost* sigma (mA*min).  A battery with capacity
    parameter alpha dies at the first instant where sigma reaches alpha.
    Three implementations ship with the library: {!Ideal}, {!Peukert}
    and {!Rakhmatov} (the paper's cost function). *)

type t = {
  name : string;
  (** Short identifier used in reports. *)
  sigma : Profile.t -> at:float -> float;
  (** [sigma profile ~at] is the apparent charge lost by time [at]
      (minutes).  Load beyond [at] is ignored.  Note that sigma need
      {e not} be monotone in [at]: for the Rakhmatov–Vrudhula model the
      unavailable-charge component recovers during rest (or light load
      after heavy load), so sigma can dip — which is why lifetime
      estimation looks for the {e first} crossing of alpha. *)
}

val sigma_end : t -> Profile.t -> float
(** [sigma_end m p] evaluates sigma at the end of the profile — the
    paper's "battery capacity used" figure of merit for a schedule. *)
