(** Battery lifetime estimation.

    Lifetime is the smallest [T] with [sigma(T) >= alpha] (the paper's
    Sec. 3 stopping rule).  Because the Rakhmatov–Vrudhula sigma can
    {e dip} when a heavy load ends (recovery), the first crossing is
    located by a fine forward scan followed by bisection inside the
    bracketing step, not by global inversion. *)

type outcome =
  | Dies_at of float
      (** The battery is exhausted at this time (minutes), at or before
          the end of the profile. *)
  | Survives of { sigma_at_end : float; headroom : float }
      (** The profile completes; [headroom = alpha - sigma_at_end >= 0]
          is the unspent capacity at completion. *)

val of_profile : model:Model.t -> alpha:float -> Profile.t -> outcome
(** [of_profile ~model ~alpha p] decides whether the battery survives
    the whole profile and, if not, when it dies.
    @raise Invalid_argument on non-positive [alpha]. *)

val of_constant_current :
  model:Model.t -> alpha:float -> current:float -> float
(** [of_constant_current ~model ~alpha ~current] is the lifetime under a
    constant load that lasts until exhaustion.
    @raise Invalid_argument on non-positive [alpha] or [current]. *)

val survives : model:Model.t -> alpha:float -> Profile.t -> bool
(** [survives ~model ~alpha p] is true iff the profile completes. *)
