(** Ideal (linear) battery: sigma is the plain coulomb count.

    The limiting behaviour of {!Rakhmatov} as [beta -> infinity]; useful
    as a baseline cost function and in tests. *)

val sigma : Profile.t -> at:float -> float
(** [sigma p ~at = Profile.total_charge (Profile.truncate p ~at)]. *)

val model : Model.t
(** Packaged as a {!Model.t} named ["ideal"]. *)
