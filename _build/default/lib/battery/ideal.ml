let sigma p ~at =
  if at < 0.0 then invalid_arg "Ideal.sigma: negative time";
  Profile.total_charge (Profile.truncate p ~at)

let model = { Model.name = "ideal"; sigma }
