open Batsched_numeric

exception Unsustainable

let default_max_cycles = 500

let check_inputs ~alpha ~period cycle =
  if not (alpha > 0.0) then invalid_arg "Periodic: alpha must be positive";
  if not (period > 0.0) then invalid_arg "Periodic: period must be positive";
  if Profile.length cycle > period +. 1e-9 then
    invalid_arg "Periodic: cycle longer than the period"

(* The peak of sigma inside a cycle occurs at one of its active-interval
   end points (sigma relaxes during idle), so death within cycle k is
   detected by probing those ends against the profile built so far. *)
let cycles_to_death ?(max_cycles = default_max_cycles) ~model ~alpha ~period
    cycle =
  check_inputs ~alpha ~period cycle;
  let base =
    List.map
      (fun (iv : Profile.interval) ->
        (iv.Profile.start, iv.Profile.duration, iv.Profile.current))
      (Profile.intervals cycle)
  in
  let rec go k acc =
    if k >= max_cycles then max_cycles
    else begin
      let offset = float_of_int k *. period in
      let shifted =
        List.map (fun (s, d, c) -> (s +. offset, d, c)) base
      in
      let profile = Profile.of_intervals (List.rev_append acc shifted) in
      let dead =
        List.exists
          (fun (s, d, _) -> model.Model.sigma profile ~at:(s +. d) >= alpha)
          shifted
      in
      if dead then if k = 0 then raise Unsustainable else k
      else go (k + 1) (List.rev_append shifted acc)
    end
  in
  go 0 []

let max_sustainable_cycles ?max_cycles ~model ~alpha cycle ~period ~target =
  match cycles_to_death ?max_cycles ~model ~alpha ~period cycle with
  | n -> n >= target
  | exception Unsustainable -> false

let min_period_for_cycles ?max_cycles ?(tolerance = 0.01) ~model ~alpha cycle
    ~target =
  if target < 1 then invalid_arg "Periodic.min_period_for_cycles: target < 1";
  let len = Float.max 1e-6 (Profile.length cycle) in
  let sustains period =
    max_sustainable_cycles ?max_cycles ~model ~alpha cycle ~period ~target
  in
  (* generous recovery horizon: beyond this, more rest changes nothing
     material for the shipped models *)
  let hi = len +. 2000.0 in
  if not (sustains hi) then None
  else if sustains len then Some len
  else begin
    let rec bisect lo hi =
      (* invariant: not (sustains lo) && sustains hi *)
      if hi -. lo <= tolerance then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if sustains mid then bisect lo mid else bisect mid hi
      end
    in
    Some (bisect len hi)
  end

let interp_cycles ~model ~alpha cycle ~periods =
  if List.length periods < 2 then
    invalid_arg "Periodic.interp_cycles: need at least two periods";
  Interp.of_points
    (List.map
       (fun period ->
         let n =
           match cycles_to_death ~model ~alpha ~period cycle with
           | n -> n
           | exception Unsustainable -> 0
         in
         (period, float_of_int n))
       periods)
