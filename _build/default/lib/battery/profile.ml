type interval = { start : float; duration : float; current : float }

type t = interval list (* sorted by start, non-overlapping *)

let empty = []

let check_interval (start, duration, current) =
  if not (Float.is_finite start && Float.is_finite duration && Float.is_finite current)
  then invalid_arg "Profile: non-finite interval field";
  if start < 0.0 then invalid_arg "Profile: negative start time";
  if duration < 0.0 then invalid_arg "Profile: negative duration";
  if current < 0.0 then invalid_arg "Profile: negative current"

let of_intervals triples =
  List.iter check_interval triples;
  let kept = List.filter (fun (_, d, _) -> d > 0.0) triples in
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) kept in
  let rec check_overlap = function
    | (s1, d1, _) :: ((s2, _, _) :: _ as rest) ->
        (* allow touching intervals; tiny tolerance for float noise *)
        if s1 +. d1 > s2 +. 1e-9 then invalid_arg "Profile: overlapping intervals"
        else check_overlap rest
    | [ _ ] | [] -> ()
  in
  check_overlap sorted;
  List.map (fun (start, duration, current) -> { start; duration; current }) sorted

let sequential pairs =
  let _, triples =
    List.fold_left
      (fun (t, acc) (current, duration) ->
        if duration < 0.0 then invalid_arg "Profile.sequential: negative duration";
        if current < 0.0 then invalid_arg "Profile.sequential: negative current";
        (t +. duration, (t, duration, current) :: acc))
      (0.0, []) pairs
  in
  of_intervals (List.rev triples)

let constant ~current ~duration = of_intervals [ (0.0, duration, current) ]

let with_idle t ~after ~idle =
  if idle < 0.0 then invalid_arg "Profile.with_idle: negative idle";
  List.map
    (fun iv -> if iv.start >= after then { iv with start = iv.start +. idle } else iv)
    t

let intervals t = t

let length = function
  | [] -> 0.0
  | t ->
      List.fold_left (fun acc iv -> Float.max acc (iv.start +. iv.duration)) 0.0 t

let total_charge t =
  Batsched_numeric.Kahan.sum_list (List.map (fun iv -> iv.current *. iv.duration) t)

let truncate t ~at =
  List.filter_map
    (fun iv ->
      if iv.start >= at then None
      else if iv.start +. iv.duration <= at then Some iv
      else Some { iv with duration = at -. iv.start })
    t

let superpose ps =
  let all = List.concat ps in
  if all = [] then empty
  else begin
    (* breakpoints = every interval edge; between consecutive
       breakpoints the total current is constant *)
    let edges =
      List.concat_map (fun iv -> [ iv.start; iv.start +. iv.duration ]) all
      |> List.sort_uniq compare
    in
    let total_at t =
      List.fold_left
        (fun acc iv ->
          if t >= iv.start -. 1e-12 && t < iv.start +. iv.duration -. 1e-12
          then acc +. iv.current
          else acc)
        0.0 all
    in
    let rec segments = function
      | a :: (b :: _ as rest) ->
          let mid = 0.5 *. (a +. b) in
          let current = total_at mid in
          if current > 0.0 then (a, b -. a, current) :: segments rest
          else segments rest
      | [ _ ] | [] -> []
    in
    of_intervals (segments edges)
  end

let peak_current t = List.fold_left (fun acc iv -> Float.max acc iv.current) 0.0 t

let pp fmt t =
  match t with
  | [] -> Format.fprintf fmt "(empty profile)"
  | _ ->
      List.iter
        (fun iv ->
          Format.fprintf fmt "[%8.2f .. %8.2f] %8.1f mA@."
            iv.start (iv.start +. iv.duration) iv.current)
        t
