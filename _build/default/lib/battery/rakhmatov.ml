open Batsched_numeric

let default_beta = 0.273

let sigma ?(terms = Series.default_terms) ?(beta = default_beta) p ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let clipped = Profile.truncate p ~at in
  let contribution (iv : Profile.interval) =
    let a = at -. iv.start -. iv.duration in
    let b = at -. iv.start in
    (* truncate guarantees a >= 0 up to float noise *)
    let a = Float.max 0.0 a in
    iv.current *. (iv.duration +. Series.kernel ~terms ~beta a b)
  in
  Kahan.sum_list (List.map contribution (Profile.intervals clipped))

let model ?terms ?beta () =
  { Model.name = "rakhmatov"; sigma = (fun p ~at -> sigma ?terms ?beta p ~at) }

let unavailable_charge ?terms ?beta p ~at =
  sigma ?terms ?beta p ~at -. Profile.total_charge (Profile.truncate p ~at)
