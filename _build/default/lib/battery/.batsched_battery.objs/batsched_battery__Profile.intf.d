lib/battery/profile.mli: Format
