lib/battery/diffusion.ml: Array Batsched_numeric Float List Model Profile Rakhmatov Stdlib Tridiag
