lib/battery/periodic.ml: Batsched_numeric Float Interp List Model Profile
