lib/battery/lifetime.mli: Model Profile
