lib/battery/cell.ml: Rakhmatov
