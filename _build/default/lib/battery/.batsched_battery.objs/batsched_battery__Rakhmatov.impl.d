lib/battery/rakhmatov.ml: Batsched_numeric Float Kahan List Model Profile Series
