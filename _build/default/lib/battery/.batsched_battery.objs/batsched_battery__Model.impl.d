lib/battery/model.ml: Profile
