lib/battery/kibam.ml: List Model Profile
