lib/battery/diffusion.mli: Model Profile
