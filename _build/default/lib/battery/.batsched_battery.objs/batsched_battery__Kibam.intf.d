lib/battery/kibam.mli: Model Profile
