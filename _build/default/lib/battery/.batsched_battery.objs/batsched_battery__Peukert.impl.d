lib/battery/peukert.ml: Batsched_numeric Kahan List Model Profile
