lib/battery/curves.ml: Batsched_numeric Cell Interp Lifetime List Model Profile
