lib/battery/ideal.mli: Model Profile
