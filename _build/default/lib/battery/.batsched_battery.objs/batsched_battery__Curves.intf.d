lib/battery/curves.mli: Batsched_numeric Cell Model Profile
