lib/battery/periodic.mli: Batsched_numeric Interp Model Profile
