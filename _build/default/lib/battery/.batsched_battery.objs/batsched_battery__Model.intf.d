lib/battery/model.mli: Profile
