lib/battery/profile.ml: Batsched_numeric Float Format List
