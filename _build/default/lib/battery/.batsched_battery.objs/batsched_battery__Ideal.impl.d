lib/battery/ideal.ml: Model Profile
