lib/battery/peukert.mli: Model Profile
