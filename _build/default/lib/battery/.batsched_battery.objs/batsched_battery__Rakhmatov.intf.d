lib/battery/rakhmatov.mli: Model Profile
