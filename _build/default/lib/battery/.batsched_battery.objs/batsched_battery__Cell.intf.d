lib/battery/cell.mli: Model
