lib/battery/lifetime.ml: Batsched_numeric Float Model Profile Rootfind
