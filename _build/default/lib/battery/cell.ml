type t = { label : string; alpha : float; beta : float }

let make ~label ~alpha ~beta =
  if not (alpha > 0.0) then invalid_arg "Cell.make: alpha must be positive";
  if not (beta > 0.0) then invalid_arg "Cell.make: beta must be positive";
  { label; alpha; beta }

let itsy = make ~label:"itsy" ~alpha:40375.0 ~beta:0.273

let ideal_like = make ~label:"ideal-like" ~alpha:itsy.alpha ~beta:50.0

let sluggish = make ~label:"sluggish" ~alpha:itsy.alpha ~beta:0.1

let rated_capacity_mah t = t.alpha /. 60.0

let model t = Rakhmatov.model ~beta:t.beta ()
