(** Peukert's-law battery model.

    The empirical rate-capacity model used by earlier battery-aware
    schedulers (Luo & Jha, DAC 2001): drawing current [I] for time
    [Delta] consumes apparent charge [k * I^p * Delta] where [p > 1]
    penalizes high discharge rates.  [k] normalizes so that a chosen
    reference current behaves ideally: [k = I_ref^(1-p)].  Peukert's law
    captures rate capacity but — unlike Rakhmatov–Vrudhula — no
    recovery; included as a comparison model and for ablations. *)

val sigma :
  ?exponent:float -> ?reference_current:float -> Profile.t -> at:float -> float
(** [sigma p ~at] with Peukert exponent [exponent] (default 1.2) and
    [reference_current] (default 100 mA) at which the model agrees with
    the ideal one.
    @raise Invalid_argument if [exponent < 1] or
    [reference_current <= 0]. *)

val model : ?exponent:float -> ?reference_current:float -> unit -> Model.t
(** Packaged as a {!Model.t} named ["peukert"]. *)
