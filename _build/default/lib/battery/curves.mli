(** Discharge-curve tabulation and the classic nonlinear-battery
    demonstrations (rate-capacity and recovery effects).

    These drive the "curves" supporting experiment: they show that the
    substrate battery model really exhibits the two effects the paper's
    heuristic exploits. *)

val sigma_curve :
  model:Model.t -> Profile.t -> n:int -> Batsched_numeric.Interp.t
(** [sigma_curve ~model p ~n] tabulates [T -> sigma(T)] at [n] points
    across [[0, length p]].
    @raise Invalid_argument if [n < 2] or the profile is empty. *)

type rate_capacity_point = {
  current : float;        (** constant load, mA *)
  lifetime : float;       (** minutes until exhaustion *)
  delivered : float;      (** current * lifetime, mA*min *)
  efficiency : float;     (** delivered / alpha, in (0, 1] *)
}

val rate_capacity :
  cell:Cell.t -> currents:float list -> rate_capacity_point list
(** For each constant load, the lifetime and the fraction of the rated
    capacity actually delivered — higher loads deliver less (the
    rate-capacity effect).
    @raise Invalid_argument on non-positive currents. *)

type recovery_point = {
  idle : float;           (** inserted rest, minutes *)
  sigma_end : float;      (** apparent charge lost at completion *)
  recovered : float;      (** sigma(no rest) - sigma_end, >= 0 *)
}

val recovery :
  cell:Cell.t -> current:float -> burst:float -> idles:float list ->
  recovery_point list
(** Two [burst]-minute pulses of [current], separated by each idle gap
    in turn; reports the capacity recovered relative to back-to-back
    execution.  Demonstrates the recovery effect.
    @raise Invalid_argument on non-positive [current] or [burst], or
    negative idles. *)

val ordering_gap :
  cell:Cell.t -> (float * float) list -> float * float
(** [ordering_gap ~cell tasks] runs the task multiset
    [(current, duration) list] once in non-increasing and once in
    non-decreasing current order and returns
    [(sigma_decreasing, sigma_increasing)].  Per the theorem cited in
    the paper's Sec. 3, decreasing order is never worse. *)
