open Batsched_numeric

let sigma ?(exponent = 1.2) ?(reference_current = 100.0) p ~at =
  if exponent < 1.0 then invalid_arg "Peukert.sigma: exponent must be >= 1";
  if reference_current <= 0.0 then
    invalid_arg "Peukert.sigma: reference current must be positive";
  if at < 0.0 then invalid_arg "Peukert.sigma: negative time";
  let k = reference_current ** (1.0 -. exponent) in
  let clipped = Profile.truncate p ~at in
  let contribution (iv : Profile.interval) =
    if iv.current = 0.0 then 0.0
    else k *. (iv.current ** exponent) *. iv.duration
  in
  Kahan.sum_list (List.map contribution (Profile.intervals clipped))

let model ?exponent ?reference_current () =
  { Model.name = "peukert";
    sigma = (fun p ~at -> sigma ?exponent ?reference_current p ~at) }
