type t = {
  name : string;
  sigma : Profile.t -> at:float -> float;
}

let sigma_end m p = m.sigma p ~at:(Profile.length p)
