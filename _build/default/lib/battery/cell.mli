(** Battery cell parameter presets.

    [alpha] is the capacity parameter (mA*min): the battery is exhausted
    when sigma reaches alpha.  [beta] (min^(-1/2)) controls the diffusion
    rate in the Rakhmatov–Vrudhula model.  The "itsy" preset is the
    lithium-ion pack of the Compaq Itsy pocket computer characterized in
    the Rakhmatov–Vrudhula papers, the platform behind the paper's
    experiments. *)

type t = {
  label : string;
  alpha : float;  (** capacity parameter, mA*min, > 0 *)
  beta : float;   (** diffusion parameter, min^(-1/2), > 0 *)
}

val make : label:string -> alpha:float -> beta:float -> t
(** @raise Invalid_argument on non-positive [alpha] or [beta]. *)

val itsy : t
(** alpha = 40375 mA*min, beta = 0.273 — the published Itsy fit. *)

val ideal_like : t
(** A nearly ideal cell (very large beta), same alpha as {!itsy}; useful
    to isolate nonlinear-model effects in ablations. *)

val sluggish : t
(** An exaggerated-diffusion cell (beta = 0.1), same alpha as {!itsy};
    stresses recovery-aware ordering in ablations. *)

val rated_capacity_mah : t -> float
(** [alpha] expressed in mAh (divide by 60). *)

val model : t -> Model.t
(** The Rakhmatov–Vrudhula model parameterized by this cell. *)
