open Batsched_taskgraph
open Batsched_sched

type dpf_result = {
  enr : float;
  cif : float;
  dpf : float;
  hypothetical : Assignment.t;
}

let duration g i j = (Task.point (Graph.task g i) j).Task.duration

let eps = 1e-9

let calculate_dpf (cfg : Config.t) g ~sequence ~assignment ~tagged_pos
    ~window_start =
  let d = cfg.Config.deadline in
  (* Tasks at positions < tagged_pos are free in S; everything else is
     fixed (the suffix) or tagged.  Etemp starts with exactly the free
     tasks unfixed. *)
  let fixed_e = Array.make (Graph.num_tasks g) true in
  for pos = 0 to tagged_pos - 1 do
    fixed_e.(sequence.(pos)) <- false
  done;
  let stemp = ref assignment in
  let te = ref (Assignment.total_time g assignment) in
  let energy_order = Analysis.energy_vector g in
  let finish infeasible =
    let free =
      List.init tagged_pos (fun pos -> sequence.(pos))
    in
    let seq_list = Array.to_list sequence in
    let enr = Metrics.energy_ratio g !stemp in
    let cif = Metrics.current_increase_fraction g !stemp seq_list in
    let dpf =
      if infeasible then Float.infinity
      else if tagged_pos = 0 then Metrics.slack_ratio ~deadline:d ~time:!te
      else Metrics.dpf_static g !stemp ~free ~window_start
    in
    { enr; cif; dpf; hypothetical = !stemp }
  in
  let rec upgrade () =
    if !te <= d +. eps then finish false
    else begin
      (* First upgradable free task in increasing-average-energy order. *)
      let candidate =
        List.find_opt
          (fun q ->
            if fixed_e.(q) then false
            else if Assignment.column !stemp q <= window_start then begin
              (* already at the fastest allowed column: cannot upgrade *)
              fixed_e.(q) <- true;
              false
            end
            else true)
          energy_order
      in
      match candidate with
      | None -> finish true
      | Some q ->
          let col = Assignment.column !stemp q in
          let col' = col - 1 in
          te := !te -. duration g q col +. duration g q col';
          stemp := Assignment.set !stemp q col';
          if col' = window_start then fixed_e.(q) <- true;
          upgrade ()
    end
  in
  upgrade ()

let suitability_of (cfg : Config.t) ~sr ~cr ~(factors : dpf_result) =
  if factors.dpf = Float.infinity then Float.infinity
  else begin
    let w = cfg.Config.weights in
    (w.Config.sr *. sr) +. (w.Config.cr *. cr)
    +. (w.Config.enr *. factors.enr)
    +. (w.Config.cif *. factors.cif)
    +. (w.Config.dpf *. factors.dpf)
  end

let choose_design_points (cfg : Config.t) g ~sequence ~window_start =
  let m = Graph.num_points g in
  if window_start < 0 || window_start >= m then
    invalid_arg "Choose.choose_design_points: window out of range";
  if not (Analysis.is_topological g sequence) then
    invalid_arg "Choose.choose_design_points: invalid sequence";
  let seq = Array.of_list sequence in
  let n = Array.length seq in
  let d = cfg.Config.deadline in
  let lowest = m - 1 in
  (* Committed columns of the fixed suffix; free tasks read as lowest
     power, which is also their hypothetical parking column. *)
  let committed = ref (Assignment.all_lowest_power g) in
  (* The paper fixes the last task at the lowest-power column outright
     ("S(n,m) = 1"), which can bust a tight deadline before selection
     even starts.  We take the slowest column that leaves the rest of
     the sequence feasible at the window's fastest column — identical
     to the paper whenever its own examples apply (see DESIGN.md). *)
  let last = seq.(n - 1) in
  let rest_fastest =
    let open Batsched_numeric in
    Kahan.sum_fn (n - 1) (fun pos -> duration g seq.(pos) window_start)
  in
  let last_col =
    let rec pick j =
      if j <= window_start then window_start
      else if duration g last j +. rest_fastest <= d +. 1e-9 then j
      else pick (j - 1)
    in
    pick lowest
  in
  if duration g last last_col +. rest_fastest > d +. 1e-9 then
    raise Config.Deadline_unmeetable;
  committed := Assignment.set !committed last last_col;
  let tsum = ref (duration g last last_col) in
  for pos = n - 2 downto 0 do
    let t = seq.(pos) in
    let best = ref None in
    for j = lowest downto window_start do
      let tagged = Assignment.set !committed t j in
      let ttemp = !tsum +. duration g t j in
      let sr = Metrics.slack_ratio ~deadline:d ~time:ttemp in
      let cr =
        Metrics.current_ratio g (Task.point (Graph.task g t) j).Task.current
      in
      let factors =
        calculate_dpf cfg g ~sequence:seq ~assignment:tagged ~tagged_pos:pos
          ~window_start
      in
      let b = suitability_of cfg ~sr ~cr ~factors in
      match !best with
      | Some (_, best_b) when best_b <= b -> ()
      | _ -> if b < Float.infinity then best := Some (j, b)
    done;
    match !best with
    | None -> raise Config.Deadline_unmeetable
    | Some (k, _) ->
        committed := Assignment.set !committed t k;
        tsum := !tsum +. duration g t k
  done;
  !committed
