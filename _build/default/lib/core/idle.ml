open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

type placement = {
  after_position : int;
  amount : float;
}

type result = {
  placements : placement list;
  profile : Profile.t;
  peak_gapped : float;
  peak_packed : float;
  improvement : float;
}

let peak_sigma (model : Model.t) profile =
  List.fold_left
    (fun acc (iv : Profile.interval) ->
      Float.max acc
        (model.Model.sigma profile ~at:(iv.Profile.start +. iv.Profile.duration)))
    0.0
    (Profile.intervals profile)

(* Rebuild the sequential profile with per-gap idle time.  gaps.(i) is
   the rest inserted after sequence position i. *)
let gapped_profile g (sched : Schedule.t) gaps =
  let _, triples =
    List.fold_left
      (fun (clock, acc) (pos, task) ->
        let p = Assignment.chosen_point g sched.Schedule.assignment task in
        let acc = (clock, p.Task.duration, p.Task.current) :: acc in
        let rest = if pos < Array.length gaps then gaps.(pos) else 0.0 in
        (clock +. p.Task.duration +. rest, acc))
      (0.0, [])
      (List.mapi (fun pos t -> (pos, t)) sched.Schedule.sequence)
  in
  Profile.of_intervals (List.rev triples)

let optimize ?(chunks = 16) (cfg : Config.t) g sched =
  if chunks < 1 then invalid_arg "Idle.optimize: chunks < 1";
  let d = cfg.Config.deadline in
  let finish = Schedule.finish_time g sched in
  if finish > d +. 1e-9 then
    invalid_arg "Idle.optimize: schedule misses the deadline";
  let n = List.length sched.Schedule.sequence in
  let gaps = Array.make (Stdlib.max 0 (n - 1)) 0.0 in
  let peak_of gaps = peak_sigma cfg.Config.model (gapped_profile g sched gaps) in
  let peak_packed = peak_of gaps in
  let slack = d -. finish in
  let granule = slack /. float_of_int chunks in
  let current_peak = ref peak_packed in
  if granule > 1e-9 && n > 1 then begin
    let continue = ref true in
    let remaining = ref chunks in
    while !continue && !remaining > 0 do
      (* try one granule in every gap; keep the best strict improvement *)
      let best = ref None in
      for i = 0 to n - 2 do
        gaps.(i) <- gaps.(i) +. granule;
        let s = peak_of gaps in
        gaps.(i) <- gaps.(i) -. granule;
        (match !best with
        | Some (_, bs) when bs <= s -> ()
        | _ -> if s < !current_peak -. 1e-9 then best := Some (i, s))
      done;
      match !best with
      | None -> continue := false
      | Some (i, s) ->
          gaps.(i) <- gaps.(i) +. granule;
          current_peak := s;
          decr remaining
    done
  end;
  let placements =
    Array.to_list gaps
    |> List.mapi (fun after_position amount -> { after_position; amount })
    |> List.filter (fun p -> p.amount > 1e-12)
  in
  let profile = gapped_profile g sched gaps in
  { placements;
    profile;
    peak_gapped = !current_peak;
    peak_packed;
    improvement = peak_packed -. !current_peak }

let survivable_alphas r = (r.peak_gapped, r.peak_packed)
