lib/core/iterate.ml: Array Assignment Batsched_numeric Batsched_sched Batsched_taskgraph Config Float Fun Graph List Logs Priorities Schedule Window
