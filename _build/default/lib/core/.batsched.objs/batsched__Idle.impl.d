lib/core/idle.ml: Array Assignment Batsched_battery Batsched_sched Batsched_taskgraph Config Float List Model Profile Schedule Stdlib Task
