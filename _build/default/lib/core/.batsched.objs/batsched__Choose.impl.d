lib/core/choose.ml: Analysis Array Assignment Batsched_numeric Batsched_sched Batsched_taskgraph Config Float Graph Kahan List Metrics Task
