lib/core/idle.mli: Batsched_battery Batsched_sched Batsched_taskgraph Config Graph Model Profile Schedule
