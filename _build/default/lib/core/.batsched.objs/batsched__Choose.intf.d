lib/core/choose.mli: Assignment Batsched_sched Batsched_taskgraph Config Graph
