lib/core/polish.mli: Batsched_sched Batsched_taskgraph Config Graph Iterate Schedule
