lib/core/window.ml: Analysis Assignment Batsched_sched Batsched_taskgraph Choose Config Graph List Schedule Stdlib
