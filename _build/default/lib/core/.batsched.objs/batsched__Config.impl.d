lib/core/config.ml: Batsched_battery Model Rakhmatov
