lib/core/iterate.mli: Batsched_numeric Batsched_sched Batsched_taskgraph Config Graph Logs Schedule Window
