lib/core/config.mli: Batsched_battery Model
