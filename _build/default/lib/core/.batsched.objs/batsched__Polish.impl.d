lib/core/polish.ml: Analysis Array Batsched_sched Batsched_taskgraph Config Graph Iterate Schedule Window
