lib/core/window.mli: Assignment Batsched_sched Batsched_taskgraph Config Graph
