(** Peak-shaving idle insertion — an extension beyond the paper.

    For sigma evaluated at a {e fixed} instant, packing tasks as early
    as possible is provably optimal (each interval's recovery window
    only shrinks as it moves later), so rest can never reduce the
    paper's cost function.  What rest {e can} do is save a mission:
    because the Rakhmatov–Vrudhula sigma is non-monotone in time —
    it relaxes during rest — the battery may cross its capacity
    [alpha] mid-schedule under packed execution yet survive the same
    work with recovery gaps inserted after heavy bursts.

    This pass minimizes the {e peak} of sigma over the schedule,
    subject to still finishing by the deadline.  Local maxima of sigma
    occur at active-interval end points (sigma strictly relaxes during
    idle), so the peak is evaluated there. *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

type placement = {
  after_position : int;  (** gap inserted after this sequence position *)
  amount : float;        (** idle minutes, > 0 *)
}

type result = {
  placements : placement list;   (** in sequence order *)
  profile : Profile.t;           (** the gapped discharge profile *)
  peak_gapped : float;           (** max over time of sigma, with gaps *)
  peak_packed : float;           (** max over time of sigma, no gaps *)
  improvement : float;           (** [peak_packed - peak_gapped], >= 0 *)
}

val peak_sigma : Model.t -> Profile.t -> float
(** Largest sigma over the profile's duration (evaluated at every
    interval end, where local maxima live; 0 for the empty profile). *)

val optimize :
  ?chunks:int -> Config.t -> Graph.t -> Schedule.t -> result
(** [optimize cfg g sched] distributes [deadline - finish_time] as idle
    gaps, in [chunks] granules (default 16), greedily placing each
    granule where it lowers the sigma peak most; granules that no
    longer help are left unplaced.  The gapped schedule never exceeds
    the deadline and never reorders tasks.
    @raise Invalid_argument if the schedule misses the deadline or
    [chunks < 1]. *)

val survivable_alphas : result -> float * float
(** [(lo, hi)] = [(peak_gapped, peak_packed)]: any battery capacity
    alpha strictly inside this window dies under packed execution but
    completes the mission with the returned gaps. *)
