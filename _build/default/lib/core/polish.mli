(** Local-search polish — squeezing the last few percent out of the
    iterative algorithm's schedule.

    The paper's loop only explores sequences reachable through the
    Eq. 4 weighted rescheduling; adjacent-transposition local search
    explores a different neighbourhood.  The pass alternates two moves
    until a fixed point (or the round budget):

    - swap two adjacent tasks when precedence allows and the battery
      cost drops (durations are untouched, so feasibility is free);
    - re-run the window sweep on the improved sequence and adopt the
      re-fitted design points when they help.

    The result is never worse than the input schedule. *)

open Batsched_taskgraph
open Batsched_sched

val two_swap :
  ?max_rounds:int -> Config.t -> Graph.t -> Schedule.t -> Schedule.t
(** [two_swap cfg g sched] with at most [max_rounds] (default 10)
    improvement rounds.
    @raise Invalid_argument if [max_rounds < 1]. *)

val polish : ?max_rounds:int -> Config.t -> Graph.t -> Iterate.result ->
  Iterate.result
(** Convenience: polish an {!Iterate} result, updating its schedule,
    sigma and finish when the local search improves them. *)
