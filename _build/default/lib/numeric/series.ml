let default_terms = 10

let check_beta beta =
  if not (beta > 0.0) then invalid_arg "Series: beta must be positive"

let check_terms terms =
  if terms <= 0 then invalid_arg "Series: terms must be positive"

let exp_sum ?(terms = default_terms) ~beta t =
  check_beta beta;
  check_terms terms;
  if t < 0.0 then invalid_arg "Series.exp_sum: negative time";
  let b2 = beta *. beta in
  let term i =
    let m = float_of_int (i + 1) in
    let m2 = m *. m in
    exp (-.b2 *. m2 *. t) /. (b2 *. m2)
  in
  2.0 *. Kahan.sum_fn terms term

let kernel ?(terms = default_terms) ~beta a b =
  check_beta beta;
  check_terms terms;
  if a < 0.0 || b < a then invalid_arg "Series.kernel: need 0 <= a <= b";
  let b2 = beta *. beta in
  let term i =
    let m = float_of_int (i + 1) in
    let m2 = m *. m in
    (exp (-.b2 *. m2 *. a) -. exp (-.b2 *. m2 *. b)) /. (b2 *. m2)
  in
  2.0 *. Kahan.sum_fn terms term

let kernel_limit ~beta =
  check_beta beta;
  Float.pi *. Float.pi /. (3.0 *. beta *. beta)
