type t = { total : float; compensation : float }

let zero = { total = 0.0; compensation = 0.0 }

let create x = { total = x; compensation = 0.0 }

(* Neumaier's variant: unlike plain Kahan it also compensates when the
   incoming term is larger in magnitude than the running total. *)
let add { total; compensation } x =
  let t = total +. x in
  let c =
    if Float.abs total >= Float.abs x then compensation +. ((total -. t) +. x)
    else compensation +. ((x -. t) +. total)
  in
  { total = t; compensation = c }

let sum { total; compensation } = total +. compensation

let sum_list xs = sum (List.fold_left add zero xs)

let sum_array xs = sum (Array.fold_left add zero xs)

let sum_fn n f =
  if n < 0 then invalid_arg "Kahan.sum_fn: negative count";
  let rec loop i acc = if i >= n then acc else loop (i + 1) (add acc (f i)) in
  sum (loop 0 zero)
