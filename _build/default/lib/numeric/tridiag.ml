let solve ~lower ~diag ~upper ~rhs =
  let n = Array.length diag in
  if n = 0 then invalid_arg "Tridiag.solve: empty system";
  if Array.length lower <> n - 1 || Array.length upper <> n - 1
     || Array.length rhs <> n
  then invalid_arg "Tridiag.solve: inconsistent lengths";
  (* forward sweep with scratch copies *)
  let c' = Array.make (Stdlib.max 1 (n - 1)) 0.0 in
  let d' = Array.make n 0.0 in
  if diag.(0) = 0.0 then invalid_arg "Tridiag.solve: zero pivot";
  if n > 1 then c'.(0) <- upper.(0) /. diag.(0);
  d'.(0) <- rhs.(0) /. diag.(0);
  for i = 1 to n - 1 do
    let m = diag.(i) -. (lower.(i - 1) *. c'.(i - 1)) in
    if m = 0.0 then invalid_arg "Tridiag.solve: zero pivot";
    if i < n - 1 then c'.(i) <- upper.(i) /. m;
    d'.(i) <- (rhs.(i) -. (lower.(i - 1) *. d'.(i - 1))) /. m
  done;
  (* back substitution *)
  let x = Array.make n 0.0 in
  x.(n - 1) <- d'.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
  done;
  x
