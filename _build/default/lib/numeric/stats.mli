(** Descriptive statistics over float samples.

    Used by the experiment harness to summarize sweeps (mean gap,
    percentile runtimes, ...). *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons.
    @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val min_max : float list -> float * float
(** Smallest and largest sample. @raise Invalid_argument on empty. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation between order statistics.
    @raise Invalid_argument on empty list or [p] outside [0, 100]. *)

val median : float list -> float
(** [median xs = percentile 50. xs]. *)

val geometric_mean : float list -> float
(** Geometric mean; requires strictly positive samples.
    @raise Invalid_argument on empty list or non-positive samples. *)
