exception No_bracket

let sign x = if x > 0.0 then 1 else if x < 0.0 then -1 else 0

let check_bracket ~name ~lo ~hi flo fhi =
  if lo > hi then invalid_arg (name ^ ": lo > hi");
  if sign flo * sign fhi > 0 then invalid_arg (name ^ ": bracket does not change sign")

let bisect ?(tol = 1e-9) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  check_bracket ~name:"Rootfind.bisect" ~lo ~hi flo fhi;
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else
    let rec loop lo hi flo i =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo <= tol || i >= max_iter then mid
      else
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if sign fmid = sign flo then loop mid hi fmid (i + 1)
        else loop lo mid flo (i + 1)
    in
    loop lo hi flo 0

(* Brent's method, after Numerical Recipes' zbrent structure. *)
let brent ?(tol = 1e-9) ?(max_iter = 200) ~f ~lo ~hi () =
  let fa = f lo and fb = f hi in
  check_bracket ~name:"Rootfind.brent" ~lo ~hi fa fb;
  if fa = 0.0 then lo
  else if fb = 0.0 then hi
  else begin
    let a = ref lo and b = ref hi and c = ref hi in
    let fa = ref fa and fb = ref fb in
    let fc = ref !fb in
    let d = ref (hi -. lo) and e = ref (hi -. lo) in
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < max_iter do
      incr iter;
      if sign !fb * sign !fc > 0 then begin
        c := !a; fc := !fa; d := !b -. !a; e := !d
      end;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b; b := !c; c := !a;
        fa := !fb; fb := !fc; fc := !fa
      end;
      let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || !fb = 0.0 then result := Some !b
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              let p = 2.0 *. xm *. s in
              (p, 1.0 -. s)
            else begin
              let q = !fa /. !fc and r = !fb /. !fc in
              let p = s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0))) in
              (p, (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0))
            end
          in
          let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
          let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2.0 *. p < Float.min min1 min2 then begin
            e := !d; d := p /. q
          end else begin
            d := xm; e := !d
          end
        end else begin
          d := xm; e := !d
        end;
        a := !b; fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
        fb := f !b
      end
    done;
    match !result with Some r -> r | None -> !b
  end

let invert_monotone ?(tol = 1e-9) ?(max_iter = 200) ~f ~target ~lo () =
  let g x = f x -. target in
  if g lo >= 0.0 then lo
  else begin
    let rec grow step hi attempts =
      if attempts > 60 then raise No_bracket
      else if g hi >= 0.0 then hi
      else grow (2.0 *. step) (hi +. (2.0 *. step)) (attempts + 1)
    in
    let hi = grow 1.0 (lo +. 1.0) 0 in
    brent ~tol ~max_iter ~f:g ~lo ~hi ()
  end
