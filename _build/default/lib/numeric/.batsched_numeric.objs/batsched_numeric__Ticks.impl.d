lib/numeric/ticks.ml: Float Stdlib
