lib/numeric/interp.ml: Array List
