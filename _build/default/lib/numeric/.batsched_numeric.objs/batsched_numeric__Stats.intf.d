lib/numeric/stats.mli:
