lib/numeric/rootfind.mli:
