lib/numeric/kahan.mli:
