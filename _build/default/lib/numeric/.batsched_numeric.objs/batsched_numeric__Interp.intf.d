lib/numeric/interp.mli:
