lib/numeric/tridiag.ml: Array Stdlib
