lib/numeric/tridiag.mli:
