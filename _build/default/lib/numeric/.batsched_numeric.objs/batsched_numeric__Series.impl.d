lib/numeric/series.ml: Float Kahan
