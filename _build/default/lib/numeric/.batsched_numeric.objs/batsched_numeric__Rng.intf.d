lib/numeric/rng.mli:
