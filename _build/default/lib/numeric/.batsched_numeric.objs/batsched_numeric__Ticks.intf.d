lib/numeric/ticks.mli:
