lib/numeric/stats.ml: Array Float Kahan List Stdlib
