lib/numeric/series.mli:
