type t = { xs : float array; ys : float array }

let of_points pts =
  let pts = List.sort (fun (a, _) (b, _) -> compare a b) pts in
  let n = List.length pts in
  if n < 2 then invalid_arg "Interp.of_points: need at least 2 points";
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  List.iteri (fun i (x, y) -> xs.(i) <- x; ys.(i) <- y) pts;
  for i = 1 to n - 1 do
    if xs.(i) = xs.(i - 1) then
      invalid_arg "Interp.of_points: duplicate abscissa"
  done;
  { xs; ys }

let of_arrays xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.of_arrays: length mismatch";
  of_points (List.init (Array.length xs) (fun i -> (xs.(i), ys.(i))))

(* Binary search for the segment index i such that xs.(i) <= x < xs.(i+1);
   clamped so boundary segments extend to infinity. *)
let segment { xs; _ } x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let i = segment t x in
  let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
  let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
  y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))

let domain { xs; _ } = (xs.(0), xs.(Array.length xs - 1))

let points { xs; ys } = List.init (Array.length xs) (fun i -> (xs.(i), ys.(i)))

let tabulate ~f ~lo ~hi ~n =
  if n < 2 then invalid_arg "Interp.tabulate: need n >= 2";
  if lo >= hi then invalid_arg "Interp.tabulate: need lo < hi";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  of_points
    (List.init n (fun i ->
         let x = if i = n - 1 then hi else lo +. (float_of_int i *. step) in
         (x, f x)))
