(** Evaluation of the exponential-sum kernel of the Rakhmatov–Vrudhula
    battery model.

    The model (Eq. 1 of the paper) needs, for each discharge interval,

    {[ F(beta, a, b) = 2 * sum_{m=1..terms} (exp(-beta^2 m^2 a)
                                           - exp(-beta^2 m^2 b))
                                           / (beta^2 m^2) ]}

    with [0 <= a <= b].  [F] is the "unavailable charge" contribution: it
    measures how much of the charge drawn during an interval is
    recovered by diffusion between the end of the interval ([a] time
    units before the observation instant) and its start ([b] before it).

    The paper truncates the series at 10 terms; callers can request more.
    Terms decay like [exp(-beta^2 m^2 a)], so convergence is extremely
    fast unless [a = 0]. *)

val default_terms : int
(** Number of series terms used by the paper (10). *)

val exp_sum : ?terms:int -> beta:float -> float -> float
(** [exp_sum ~beta t] is [2 * sum_{m=1..terms} exp(-beta^2 m^2 t)
    / (beta^2 m^2)], the one-sided tail used to build {!kernel}.
    [t] must be [>= 0].
    @raise Invalid_argument on negative [t], non-positive [beta] or
    non-positive [terms]. *)

val kernel : ?terms:int -> beta:float -> float -> float -> float
(** [kernel ~beta a b] is [F(beta, a, b)] above, computed with
    compensated summation.  Requires [0 <= a <= b].
    @raise Invalid_argument if the ordering constraint is violated. *)

val kernel_limit : beta:float -> float
(** [kernel_limit ~beta] is [lim_{b -> infinity} F(beta, 0, b)
    = 2 * sum 1/(beta^2 m^2) = pi^2 / (3 beta^2)], the total
    unavailable-charge ceiling for an instantaneous unit of load.
    Useful as a sanity bound in tests. *)
