(** Deterministic, splittable pseudo-random number generator
    (SplitMix64).

    Every stochastic component in the repository (graph generators,
    simulated annealing, random search) takes an explicit generator so
    that experiments are reproducible from a single seed and independent
    streams can be split off without interference. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split g] derives an independent generator; [g] advances once. *)

val copy : t -> t
(** [copy g] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [[0, n-1]].  @raise Invalid_argument if
    [n <= 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [[0, x)]. Requires [x > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
