let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  Kahan.sum_list xs /. float_of_int (List.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  match xs with
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let sq = List.map (fun x -> (x -. m) *. (x -. m)) xs in
      Kahan.sum_list sq /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

let percentile p xs =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let median xs = percentile 50.0 xs

let geometric_mean xs =
  require_nonempty "Stats.geometric_mean" xs;
  let logs =
    List.map
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample"
        else log x)
      xs
  in
  exp (mean logs)
