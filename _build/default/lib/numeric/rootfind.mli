(** Scalar root finding and monotone inversion.

    Battery lifetime estimation inverts the (monotone) charge function
    [sigma(T)]: the lifetime is the smallest [T] with [sigma(T) >= alpha].
    These helpers provide robust bracketing searches that never rely on
    derivatives. *)

exception No_bracket
(** Raised when a bracketing step cannot find a sign change. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** [bisect ~f ~lo ~hi ()] finds a root of [f] in [[lo, hi]] by bisection.
    Requires [f lo] and [f hi] to have opposite (or zero) signs.
    [tol] (default [1e-9]) is the absolute interval width at which the
    search stops; [max_iter] defaults to 200.
    @raise Invalid_argument if [lo > hi] or the bracket does not change
    sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** [brent ~f ~lo ~hi ()] finds a root using Brent's method (inverse
    quadratic interpolation with bisection fallback).  Same contract as
    {!bisect}, usually far fewer function evaluations. *)

val invert_monotone :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> target:float ->
  lo:float -> unit -> float
(** [invert_monotone ~f ~target ~lo ()] returns the smallest [x >= lo]
    with [f x >= target], assuming [f] is non-decreasing.  The upper
    bracket is found by doubling from [lo] (starting step 1.0).
    @raise No_bracket if no [x <= lo + 2^60] reaches [target]. *)
