(** Fixed-point time ticks.

    The published task data uses 0.1-minute resolution.  The dynamic
    program of baseline [1] needs exact integer arithmetic over times;
    this module converts between float minutes and integer deciminute
    ticks, with checks that the conversion is faithful. *)

type t = int
(** A duration in deciminutes (0.1 min).  Always non-negative here. *)

val per_minute : int
(** Ticks per minute (10). *)

val of_minutes : float -> t
(** [of_minutes x] rounds [x] minutes to the nearest tick.
    @raise Invalid_argument on negative or non-finite input. *)

val of_minutes_exn : float -> t
(** Like {!of_minutes} but raises [Invalid_argument] if [x] is not
    representable exactly at 0.1-minute resolution (beyond rounding
    noise of 1e-6 min).  Used when loading published data, where any
    inexactness indicates a transcription bug. *)

val of_minutes_ceil : float -> t
(** [of_minutes_ceil x] rounds {e up} to the next tick (minus float
    noise of 1e-9) — used where a conservative over-estimate keeps a
    deadline guarantee sound.
    @raise Invalid_argument on negative or non-finite input. *)

val of_minutes_floor : float -> t
(** [of_minutes_floor x] rounds {e down} (plus 1e-9 noise tolerance) —
    the dual, for budgets.
    @raise Invalid_argument on negative or non-finite input. *)

val to_minutes : t -> float
(** Inverse conversion. *)

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] truncates at zero. *)

val compare : t -> t -> int
