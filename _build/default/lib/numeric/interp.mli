(** Piecewise-linear interpolation over tabulated curves.

    Used to tabulate and query discharge curves (capacity-vs-time,
    sigma-vs-T) produced by the battery models. *)

type t
(** A tabulated curve: strictly increasing abscissae with ordinates. *)

val of_points : (float * float) list -> t
(** [of_points pts] builds a curve from [(x, y)] samples.  Points are
    sorted by [x].
    @raise Invalid_argument on fewer than 2 points or duplicate [x]. *)

val of_arrays : float array -> float array -> t
(** [of_arrays xs ys] builds a curve from parallel arrays.
    @raise Invalid_argument on length mismatch (or the conditions of
    {!of_points}). *)

val eval : t -> float -> float
(** [eval c x] linearly interpolates [c] at [x]; outside the tabulated
    range the boundary segments are extrapolated. *)

val domain : t -> float * float
(** [domain c] is [(x_min, x_max)] of the tabulated support. *)

val points : t -> (float * float) list
(** [points c] returns the samples in increasing-[x] order. *)

val tabulate : f:(float -> float) -> lo:float -> hi:float -> n:int -> t
(** [tabulate ~f ~lo ~hi ~n] samples [f] at [n] equally spaced points
    spanning [[lo, hi]] (inclusive) and builds a curve.
    @raise Invalid_argument if [n < 2] or [lo >= hi]. *)
