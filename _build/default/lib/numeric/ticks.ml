type t = int

let per_minute = 10

let of_minutes x =
  if not (Float.is_finite x) || x < 0.0 then
    invalid_arg "Ticks.of_minutes: negative or non-finite";
  int_of_float (Float.round (x *. float_of_int per_minute))

let of_minutes_exn x =
  let t = of_minutes x in
  let back = float_of_int t /. float_of_int per_minute in
  if Float.abs (back -. x) > 1e-6 then
    invalid_arg "Ticks.of_minutes_exn: not representable at 0.1-min resolution";
  t

let check name x =
  if not (Float.is_finite x) || x < 0.0 then
    invalid_arg ("Ticks." ^ name ^ ": negative or non-finite")

let of_minutes_ceil x =
  check "of_minutes_ceil" x;
  int_of_float (Float.ceil ((x *. float_of_int per_minute) -. 1e-9))

let of_minutes_floor x =
  check "of_minutes_floor" x;
  int_of_float (Float.floor ((x *. float_of_int per_minute) +. 1e-9))

let to_minutes t = float_of_int t /. float_of_int per_minute

let add = ( + )

let sub a b = Stdlib.max 0 (a - b)

let compare = Stdlib.compare
