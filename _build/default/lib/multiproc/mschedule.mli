(** Multiprocessor schedules over a shared battery.

    The paper schedules on one processing element; its main related
    work (Luo & Jha, DAC 2001) targets several PEs drawing from a
    single battery — concurrent task currents {e add}, so parallel
    slow-and-low execution trades rate-capacity losses against serial
    fast execution.  This module provides the schedule representation
    for [p] PEs: every task gets a PE, a design-point column, and a
    start time; tasks on one PE serialize; dependences hold across PEs
    (communication is free, as in the cited work).  The battery sees
    the {e superposition} of all PEs' discharge profiles.

    PEs may be heterogeneous (big.LITTLE-style): each has a [speed]
    factor dividing task durations and a [current_scale] multiplying
    task currents.  The identical-PE case is [Pe.uniform]. *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

module Pe : sig
  type t = {
    speed : float;          (** > 0; durations divide by this *)
    current_scale : float;  (** > 0; currents multiply by this *)
  }

  val default : t
  (** speed 1, current_scale 1. *)

  val uniform : int -> t array
  (** [uniform p] is [p] identical default PEs.
      @raise Invalid_argument if [p < 1]. *)

  val big_little : big:int -> little:int -> t array
  (** [big] fast cores (speed 1, scale 1) plus [little] efficiency
      cores (speed 0.6, current scale 0.35 — the classic asymmetric
      trade).  @raise Invalid_argument on a non-positive total. *)
end

type placement = {
  pe : int;            (** processing element index *)
  column : int;        (** design-point column (0 = fastest) *)
  start : float;       (** start time, minutes *)
}

type t = private {
  pes : Pe.t array;
  placements : placement array;  (** indexed by task id *)
}

val task_duration : Graph.t -> Pe.t array -> int -> placement -> float
(** Effective duration of a task under its placement (design-point
    duration divided by the PE's speed). *)

val task_current : Graph.t -> Pe.t array -> int -> placement -> float
(** Effective current (design-point current times the PE's scale). *)

val make : Graph.t -> pes:Pe.t array -> placement list -> t
(** [make g ~pes placements] (one per task, in id order) validates:
    PE and column ranges, non-overlap of tasks sharing a PE, and every
    dependence edge finishing before its successor starts (1e-9
    tolerance).
    @raise Invalid_argument on any violation. *)

val list_schedule :
  Graph.t -> pes:Pe.t array -> assignment:Assignment.t ->
  priority:(int -> float) -> t
(** Insertion-free list scheduling: repeatedly take the
    highest-priority ready task and start it as early as possible on
    the PE that lets it {e finish} first (accounting for PE speeds),
    given the columns fixed by [assignment]. *)

val placement : t -> int -> placement
val makespan : Graph.t -> t -> float

val to_profile : Graph.t -> t -> Profile.t
(** The battery-facing superposed discharge profile. *)

val battery_cost : model:Model.t -> Graph.t -> t -> float
(** sigma at the makespan. *)

val peak_total_current : Graph.t -> t -> float
(** Largest instantaneous total platform current — parallel execution
    raises it even when per-task currents are small. *)

val pp : Graph.t -> Format.formatter -> t -> unit
