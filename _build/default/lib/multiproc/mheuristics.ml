open Batsched_numeric
open Batsched_taskgraph
open Batsched_sched

exception Infeasible

(* downward rank at fastest speed: critical-path length from v to a
   sink, the classic list-scheduling priority *)
let downward_rank g =
  let n = Graph.num_tasks g in
  let rank = Array.make n Float.nan in
  let rec compute v =
    if Float.is_nan rank.(v) then begin
      let own = (Task.fastest (Graph.task g v)).Task.duration in
      let tail =
        List.fold_left
          (fun acc u -> compute u; Float.max acc rank.(u))
          0.0 (Graph.succs g v)
      in
      rank.(v) <- own +. tail
    end
  in
  for v = 0 to n - 1 do
    compute v
  done;
  fun v -> rank.(v)

let subtree_current g assignment v =
  Kahan.sum_list
    (List.map
       (fun u -> (Assignment.chosen_point g assignment u).Task.current)
       (Analysis.descendants g v))

let build g ~pes ~assignment ~priority =
  Mschedule.list_schedule g ~pes ~assignment ~priority

let makespan_fastest g ~pes =
  let assignment = Assignment.all_fastest g in
  build g ~pes ~assignment ~priority:(downward_rank g)

(* Walk tasks latest-finish-first, committing for each the column chosen
   by [pick] from the feasible candidates (current column included).
   [pick] sees (column, schedule) pairs whose makespan fits. *)
let downscale_walk g ~pes ~deadline ~priority ~pick =
  let m = Graph.num_points g in
  let fastest = makespan_fastest g ~pes in
  if Mschedule.makespan g fastest > deadline +. 1e-9 then raise Infeasible;
  let assignment = ref (Assignment.all_fastest g) in
  let schedule = ref (build g ~pes ~assignment:!assignment ~priority) in
  let order =
    (* latest finish first under the all-fastest schedule *)
    let finish i =
      let p = Mschedule.placement fastest i in
      p.Mschedule.start +. Mschedule.task_duration g pes i p
    in
    List.sort
      (fun a b -> compare (finish b) (finish a))
      (List.init (Graph.num_tasks g) Fun.id)
  in
  List.iter
    (fun i ->
      let candidates =
        List.filter_map
          (fun j ->
            let trial = Assignment.set !assignment i j in
            let sched = build g ~pes ~assignment:trial ~priority in
            if Mschedule.makespan g sched <= deadline +. 1e-9 then
              Some (j, trial, sched)
            else None)
          (List.init m Fun.id)
      in
      match pick candidates with
      | Some (_, trial, sched) ->
          assignment := trial;
          schedule := sched
      | None -> ())
    order;
  (!assignment, !schedule)

let slack_downscale g ~pes ~deadline =
  let priority = downward_rank g in
  let pick candidates =
    (* slowest feasible column *)
    List.fold_left
      (fun acc ((j, _, _) as c) ->
        match acc with
        | Some (bj, _, _) when bj >= j -> acc
        | _ -> Some c)
      None candidates
  in
  snd (downscale_walk g ~pes ~deadline ~priority ~pick)

let battery_aware ~model g ~pes ~deadline =
  let priority = downward_rank g in
  let pick candidates =
    (* least sigma among feasible columns; ties to the slower column
       (candidates arrive fastest first, so strict improvement keeps
       the later = slower one via >=) *)
    List.fold_left
      (fun acc ((_, _, sched) as c) ->
        let s = Mschedule.battery_cost ~model g sched in
        match acc with
        | Some (_, bs) when bs < s -> acc
        | _ -> Some (c, s))
      None candidates
    |> Option.map fst
  in
  let assignment, sched = downscale_walk g ~pes ~deadline ~priority ~pick in
  (* re-sequence by subtree current with the chosen columns; keep the
     better of the two schedules *)
  let resequenced =
    build g ~pes ~assignment
      ~priority:(fun v -> subtree_current g assignment v)
  in
  if
    Mschedule.makespan g resequenced <= deadline +. 1e-9
    && Mschedule.battery_cost ~model g resequenced
       < Mschedule.battery_cost ~model g sched
  then resequenced
  else sched
