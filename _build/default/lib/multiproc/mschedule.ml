open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

module Pe = struct
  type t = {
    speed : float;
    current_scale : float;
  }

  let default = { speed = 1.0; current_scale = 1.0 }

  let validate p =
    if not (p.speed > 0.0) then invalid_arg "Pe: speed <= 0";
    if not (p.current_scale > 0.0) then invalid_arg "Pe: current_scale <= 0"

  let uniform n =
    if n < 1 then invalid_arg "Pe.uniform: n < 1";
    Array.make n default

  let big_little ~big ~little =
    if big + little < 1 then invalid_arg "Pe.big_little: no cores";
    if big < 0 || little < 0 then invalid_arg "Pe.big_little: negative count";
    Array.append
      (Array.make big default)
      (Array.make little { speed = 0.6; current_scale = 0.35 })
end

type placement = {
  pe : int;
  column : int;
  start : float;
}

type t = {
  pes : Pe.t array;
  placements : placement array;
}

let task_duration g pes i (p : placement) =
  (Task.point (Graph.task g i) p.column).Task.duration /. pes.(p.pe).Pe.speed

let task_current g pes i (p : placement) =
  (Task.point (Graph.task g i) p.column).Task.current
  *. pes.(p.pe).Pe.current_scale

let finish g pes placements i =
  placements.(i).start +. task_duration g pes i placements.(i)

let make g ~pes placements =
  let n = Graph.num_tasks g in
  let num_pes = Array.length pes in
  if num_pes < 1 then invalid_arg "Mschedule.make: no PEs";
  Array.iter Pe.validate pes;
  if List.length placements <> n then
    invalid_arg "Mschedule.make: placement count mismatch";
  let arr = Array.of_list placements in
  let m = Graph.num_points g in
  Array.iter
    (fun p ->
      if p.pe < 0 || p.pe >= num_pes then
        invalid_arg "Mschedule.make: PE out of range";
      if p.column < 0 || p.column >= m then
        invalid_arg "Mschedule.make: column out of range";
      if p.start < -1e-12 then invalid_arg "Mschedule.make: negative start")
    arr;
  (* per-PE non-overlap *)
  for pe = 0 to num_pes - 1 do
    let mine =
      List.filter (fun i -> arr.(i).pe = pe) (List.init n Fun.id)
      |> List.sort (fun a b -> compare arr.(a).start arr.(b).start)
    in
    let rec check = function
      | a :: (b :: _ as rest) ->
          if finish g pes arr a > arr.(b).start +. 1e-9 then
            invalid_arg "Mschedule.make: overlapping tasks on one PE";
          check rest
      | [ _ ] | [] -> ()
    in
    check mine
  done;
  (* dependences *)
  List.iter
    (fun (a, b) ->
      if finish g pes arr a > arr.(b).start +. 1e-9 then
        invalid_arg "Mschedule.make: dependence violated")
    (Graph.edges g);
  { pes; placements = arr }

let list_schedule g ~pes ~assignment ~priority =
  let n = Graph.num_tasks g in
  let num_pes = Array.length pes in
  if num_pes < 1 then invalid_arg "Mschedule.list_schedule: no PEs";
  Array.iter Pe.validate pes;
  let remaining = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let done_time = Array.make n 0.0 in
  let scheduled = Array.make n false in
  let pe_free = Array.make num_pes 0.0 in
  let placements = Array.make n { pe = 0; column = 0; start = 0.0 } in
  for _ = 1 to n do
    (* highest-priority ready task; ties to the smaller id *)
    let best = ref None in
    for v = 0 to n - 1 do
      if (not scheduled.(v)) && remaining.(v) = 0 then begin
        let w = priority v in
        match !best with
        | Some (_, bw) when bw >= w -> ()
        | _ -> best := Some (v, w)
      end
    done;
    match !best with
    | None -> invalid_arg "Mschedule.list_schedule: cyclic graph?"
    | Some (v, _) ->
        let j = Assignment.column assignment v in
        let base = (Task.point (Graph.task g v) j).Task.duration in
        let ready =
          List.fold_left
            (fun acc u -> Float.max acc done_time.(u))
            0.0 (Graph.preds g v)
        in
        (* earliest-finishing PE; ties to the lower index *)
        let finish_on pe =
          Float.max ready pe_free.(pe) +. (base /. pes.(pe).Pe.speed)
        in
        let best_pe = ref 0 in
        for pe = 1 to num_pes - 1 do
          if finish_on pe < finish_on !best_pe then best_pe := pe
        done;
        let start = Float.max ready pe_free.(!best_pe) in
        placements.(v) <- { pe = !best_pe; column = j; start };
        let f = finish_on !best_pe in
        pe_free.(!best_pe) <- f;
        done_time.(v) <- f;
        scheduled.(v) <- true;
        List.iter
          (fun w -> remaining.(w) <- remaining.(w) - 1)
          (Graph.succs g v)
  done;
  { pes; placements }

let placement t i =
  if i < 0 || i >= Array.length t.placements then
    invalid_arg "Mschedule.placement: task out of range";
  t.placements.(i)

let makespan g t =
  let best = ref 0.0 in
  Array.iteri
    (fun i _ -> best := Float.max !best (finish g t.pes t.placements i))
    t.placements;
  !best

let to_profile g t =
  let per_task i =
    let p = t.placements.(i) in
    Profile.of_intervals
      [ (p.start, task_duration g t.pes i p, task_current g t.pes i p) ]
  in
  Profile.superpose (List.init (Array.length t.placements) per_task)

let battery_cost ~model g t = Model.sigma_end model (to_profile g t)

let peak_total_current g t = Profile.peak_current (to_profile g t)

let pp g fmt t =
  Array.iteri
    (fun i p ->
      Format.fprintf fmt "%s: pe%d P%d [%.1f..%.1f]@."
        (Graph.task g i).Task.name p.pe (p.column + 1) p.start
        (finish g t.pes t.placements i))
    t.placements
