(** Multiprocessor battery-aware heuristics.

    Three policies of increasing battery awareness, all built on
    {!Mschedule.list_schedule} over a given PE set (identical or
    heterogeneous):

    - [makespan_fastest]: every task at its fastest point, priority =
      downward rank (critical-path length at fastest speed) — the
      classic latency-oriented baseline.
    - [slack_downscale]: start from [makespan_fastest] and, walking
      tasks by {e latest finish first}, move each to the slowest column
      that keeps the makespan within the deadline — the
      Chowdhury-style policy lifted to several PEs.
    - [battery_aware]: like [slack_downscale], but each walk step keeps
      the feasible column with the least sigma under the supplied
      battery model, and the final schedule is re-sequenced by subtree
      current (the paper's Eq. 4 weight) when that helps. *)

open Batsched_taskgraph
open Batsched_battery

exception Infeasible
(** Even all-fastest on the given PEs misses the deadline. *)

val makespan_fastest : Graph.t -> pes:Mschedule.Pe.t array -> Mschedule.t

val slack_downscale :
  Graph.t -> pes:Mschedule.Pe.t array -> deadline:float -> Mschedule.t
(** @raise Infeasible. *)

val battery_aware :
  model:Model.t -> Graph.t -> pes:Mschedule.Pe.t array -> deadline:float ->
  Mschedule.t
(** @raise Infeasible. *)
