lib/multiproc/mschedule.mli: Assignment Batsched_battery Batsched_sched Batsched_taskgraph Format Graph Model Profile
