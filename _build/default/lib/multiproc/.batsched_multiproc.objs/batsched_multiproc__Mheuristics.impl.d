lib/multiproc/mheuristics.ml: Analysis Array Assignment Batsched_numeric Batsched_sched Batsched_taskgraph Float Fun Graph Kahan List Mschedule Option Task
