lib/multiproc/mschedule.ml: Array Assignment Batsched_battery Batsched_sched Batsched_taskgraph Float Format Fun Graph List Model Profile Task
