lib/multiproc/mheuristics.mli: Batsched_battery Batsched_taskgraph Graph Model Mschedule
