open Batsched_numeric
open Batsched_taskgraph

let sequence_dec_energy g =
  let weight v = Task.average_energy (Graph.task g v) in
  Analysis.list_schedule ~weight g

let chosen_current g a v = (Assignment.chosen_point g a v).Task.current

let weighted_sequence g a =
  let weight v =
    Kahan.sum_list (List.map (chosen_current g a) (Analysis.descendants g v))
  in
  Analysis.list_schedule ~weight g

let greedy_mean_current g a =
  let weight v =
    let subtree = Analysis.descendants g v in
    let mean =
      Kahan.sum_list (List.map (chosen_current g a) subtree)
      /. float_of_int (List.length subtree)
    in
    Float.max (chosen_current g a v) mean
  in
  Analysis.list_schedule ~weight g
