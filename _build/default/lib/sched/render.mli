(** Plain-text rendering of schedules and discharge profiles: a Gantt
    strip per task and a current staircase chart.  Pure string output —
    usable from the CLI, examples and tests alike. *)

open Batsched_taskgraph
open Batsched_battery

val gantt : ?width:int -> Graph.t -> Schedule.t -> string
(** [gantt g sched] draws one row per task in sequence order, a bar
    spanning its execution window scaled to [width] columns (default
    72), annotated with the chosen design point and current.
    @raise Invalid_argument if [width < 10]. *)

val profile_chart : ?width:int -> ?height:int -> Profile.t -> string
(** [profile_chart p] draws the current-vs-time staircase of a profile
    as a [height]-row (default 10) ASCII chart with a time axis.  Idle
    gaps show as blank columns.  Empty profiles render a note instead.
    @raise Invalid_argument if [width < 10] or [height < 2]. *)
