open Batsched_numeric
open Batsched_taskgraph

exception Infeasible

type solution = {
  scalings : float array;
  durations : float array;
  charge : float;
  lambda : float;
}

let relax g ~deadline =
  let n = Graph.num_tasks g in
  let fast i = Task.fastest (Graph.task g i) in
  let base_current i = (fast i).Task.current in
  let base_duration i = (fast i).Task.duration in
  let fastest_total = Kahan.sum_fn n base_duration in
  if fastest_total > deadline +. 1e-9 then raise Infeasible;
  (* u_i(lambda) = min 1 ((lambda / (2 I_i))^(1/3)); the serial time
     T(lambda) = sum D_i / u_i is strictly decreasing in lambda until
     every u saturates at 1, where T = fastest_total. *)
  let u_of lambda i =
    Float.min 1.0 ((lambda /. (2.0 *. base_current i)) ** (1.0 /. 3.0))
  in
  let time_of lambda =
    Kahan.sum_fn n (fun i -> base_duration i /. u_of lambda i)
  in
  let lambda =
    if time_of 1e-12 <= deadline then 1e-12
    else begin
      (* bracket: at lambda_hi all u_i = 1 *)
      let lambda_hi =
        2.0 *. Kahan.sum_fn n base_current (* >= 2 * max I *)
      in
      Rootfind.brent ~tol:1e-12
        ~f:(fun lambda -> time_of lambda -. deadline)
        ~lo:1e-12 ~hi:lambda_hi ()
    end
  in
  let scalings = Array.init n (u_of lambda) in
  let durations = Array.init n (fun i -> base_duration i /. scalings.(i)) in
  let charge =
    Kahan.sum_fn n (fun i ->
        base_current i *. base_duration i *. scalings.(i) *. scalings.(i))
  in
  { scalings; durations; charge; lambda }

let lower_bound_charge g ~deadline = (relax g ~deadline).charge
