(** The paper's normalized quality factors (Sec. 4).

    Columns are 0-based throughout: 0 = fastest/highest power,
    [m-1] = slowest/lowest power (paper's DP1..DPm shifted by one).
    A window [ws] allows columns [ws .. m-1] (paper's window
    "[ws+1]:m"). *)

open Batsched_taskgraph

val slack_ratio : deadline:float -> time:float -> float
(** SR = (d - t)/d.  Smaller is better (less unexploited slack); may be
    negative when over deadline.
    @raise Invalid_argument on non-positive deadline. *)

val current_ratio : Graph.t -> float -> float
(** [current_ratio g i] = (i - Imin)/(Imax - Imin) over all design
    points of all tasks of [g]; in [0, 1] for any current of the graph.
    Degenerate graphs (Imax = Imin) yield 0. *)

val energy_ratio : Graph.t -> Assignment.t -> float
(** ENR = (E_n - E_min)/(E_max - E_min) with E_n the assignment's total
    energy; in [0, 1].  Degenerate graphs yield 0. *)

val current_increase_fraction : Graph.t -> Assignment.t -> int list -> float
(** CIF: the fraction of adjacent sequence positions whose chosen
    current increases, in [0, 1].  Single-task sequences yield 0.
    @raise Invalid_argument on an empty sequence. *)

val dpf_static :
  Graph.t -> Assignment.t -> free:int list -> window_start:int -> float
(** The design-point fraction of Eqs. 2–3 generalized to a window:
    [sum_{k=ws..m-1} (m-1-k)/(m-1-ws) * F_k] where [F_k] is the
    fraction of [free] tasks assigned to column [k].  Full-window
    ([ws = 0]) reduces to the paper's Eq. 2.  Empty [free] list or a
    single-column window yields 0.  Every free task's column must lie
    inside the window (the algorithm parks free tasks at column [m-1]
    and never upgrades past [ws]); the result is then in [[0, 1]].
    @raise Invalid_argument on out-of-range [window_start] or a free
    task assigned outside the window. *)

val suitability :
  sr:float -> cr:float -> enr:float -> cif:float -> dpf:float -> float
(** B = SR + CR + ENR + CIF + DPF — the selection objective; lower is
    better. *)
