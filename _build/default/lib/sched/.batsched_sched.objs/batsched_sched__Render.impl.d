lib/sched/render.ml: Array Assignment Batsched_battery Batsched_taskgraph Buffer Float Graph List Printf Profile Schedule Stdlib String Task
