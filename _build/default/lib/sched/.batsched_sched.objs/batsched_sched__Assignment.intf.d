lib/sched/assignment.mli: Batsched_taskgraph Format Graph Task
