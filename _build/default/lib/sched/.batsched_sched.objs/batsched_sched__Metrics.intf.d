lib/sched/metrics.mli: Assignment Batsched_taskgraph Graph
