lib/sched/metrics.ml: Analysis Assignment Batsched_numeric Batsched_taskgraph Graph List Task
