lib/sched/schedule.ml: Analysis Assignment Batsched_battery Batsched_taskgraph Format Graph List Model Printf Profile String Task
