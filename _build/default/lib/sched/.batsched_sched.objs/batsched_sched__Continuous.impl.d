lib/sched/continuous.ml: Array Batsched_numeric Batsched_taskgraph Float Graph Kahan Rootfind Task
