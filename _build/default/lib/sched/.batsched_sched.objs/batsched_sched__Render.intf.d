lib/sched/render.mli: Batsched_battery Batsched_taskgraph Graph Profile Schedule
