lib/sched/priorities.mli: Assignment Batsched_taskgraph Graph
