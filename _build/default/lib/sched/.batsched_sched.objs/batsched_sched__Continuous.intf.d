lib/sched/continuous.mli: Batsched_taskgraph Graph
