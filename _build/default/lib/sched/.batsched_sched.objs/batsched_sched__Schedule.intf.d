lib/sched/schedule.mli: Assignment Batsched_battery Batsched_taskgraph Format Graph Model Profile
