lib/sched/assignment.ml: Array Batsched_numeric Batsched_taskgraph Format Graph Kahan List Printf String Task
