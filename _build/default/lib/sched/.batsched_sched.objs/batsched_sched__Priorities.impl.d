lib/sched/priorities.ml: Analysis Assignment Batsched_numeric Batsched_taskgraph Float Graph Kahan List Task
