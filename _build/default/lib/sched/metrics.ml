open Batsched_taskgraph

let slack_ratio ~deadline ~time =
  if not (deadline > 0.0) then invalid_arg "Metrics.slack_ratio: deadline <= 0";
  (deadline -. time) /. deadline

let current_ratio g i =
  let imin, imax = Analysis.current_range g in
  if imax -. imin <= 0.0 then 0.0 else (i -. imin) /. (imax -. imin)

let energy_ratio g a =
  let emin, emax = Analysis.energy_bounds g in
  if emax -. emin <= 0.0 then 0.0
  else (Assignment.total_energy g a -. emin) /. (emax -. emin)

let current_increase_fraction g a sequence =
  match sequence with
  | [] -> invalid_arg "Metrics.current_increase_fraction: empty sequence"
  | [ _ ] -> 0.0
  | first :: rest ->
      let current v = (Assignment.chosen_point g a v).Task.current in
      let increases, _ =
        List.fold_left
          (fun (count, prev) v ->
            ((if current v > prev then count + 1 else count), current v))
          (0, current first) rest
      in
      float_of_int increases /. float_of_int (List.length sequence - 1)

let dpf_static g a ~free ~window_start =
  let m = Graph.num_points g in
  if window_start < 0 || window_start >= m then
    invalid_arg "Metrics.dpf_static: window_start out of range";
  let x = List.length free in
  if x = 0 || window_start = m - 1 then 0.0
  else begin
    let span = float_of_int (m - 1 - window_start) in
    let weight k =
      if k < window_start then
        invalid_arg "Metrics.dpf_static: free task assigned outside the window"
      else float_of_int (m - 1 - k) /. span
    in
    let contribution v = weight (Assignment.column a v) in
    Batsched_numeric.Kahan.sum_list (List.map contribution free)
    /. float_of_int x
  end

let suitability ~sr ~cr ~enr ~cif ~dpf = sr +. cr +. enr +. cif +. dpf
