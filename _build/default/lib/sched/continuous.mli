(** Continuous voltage-scaling relaxation — an analytic charge lower
    bound.

    Relax the discrete design points to a continuum following the
    cube law the paper generates its data with: at scaling
    [u in (0, 1]] relative to a task's fastest point,
    [duration = D/u] and [current = I * u^3], hence
    [charge = I * D * u^2].  Minimizing total charge subject to the
    serial deadline is then a smooth convex program whose KKT conditions
    give [u_i = min 1 ((lambda / (2 I_i))^(1/3))] with a single
    multiplier [lambda] fixed by the deadline — solvable by bisection.

    The resulting charge lower-bounds every cube-law design-point
    selection (the discrete grid is a subset of the continuum), and —
    because any battery model with [sigma_end >= coulomb count] can only
    add to it — also lower-bounds the achievable RV/KiBaM sigma of
    cube-law instances.  For instances whose points do not follow the
    cube law exactly the bound is heuristic; the solver only promises
    the KKT solution of the fitted relaxation. *)

open Batsched_taskgraph

exception Infeasible
(** The deadline is below the all-fastest serial time. *)

type solution = {
  scalings : float array;   (** per-task [u_i] in (0, 1] *)
  durations : float array;  (** [D_i / u_i], summing to the deadline
                                (or less when every task is capped) *)
  charge : float;           (** the relaxed total charge, mA*min *)
  lambda : float;           (** the KKT multiplier *)
}

val relax : Graph.t -> deadline:float -> solution
(** Solve the relaxation.  @raise Infeasible. *)

val lower_bound_charge : Graph.t -> deadline:float -> float
(** Just the charge of {!relax}. *)
