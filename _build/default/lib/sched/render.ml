open Batsched_taskgraph
open Batsched_battery

let check_width width =
  if width < 10 then invalid_arg "Render: width < 10"

let gantt ?(width = 72) g (sched : Schedule.t) =
  check_width width;
  let total = Schedule.finish_time g sched in
  let name_width =
    List.fold_left
      (fun acc i -> Stdlib.max acc (String.length (Graph.task g i).Task.name))
      4 sched.Schedule.sequence
  in
  let column t = int_of_float (t /. total *. float_of_int (width - 1)) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s |%s| DP  mA\n" name_width "task"
       (String.make width ' '));
  let clock = ref 0.0 in
  List.iter
    (fun i ->
      let p = Assignment.chosen_point g sched.Schedule.assignment i in
      let a = column !clock and b = column (!clock +. p.Task.duration) in
      let b = Stdlib.max a b in
      let bar =
        String.make a ' ' ^ String.make (b - a + 1) '#'
        ^ String.make (Stdlib.max 0 (width - b - 1)) ' '
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s| P%d  %.0f\n" name_width
           (Graph.task g i).Task.name bar
           (Assignment.column sched.Schedule.assignment i + 1)
           p.Task.current);
      clock := !clock +. p.Task.duration)
    sched.Schedule.sequence;
  Buffer.add_string buf
    (Printf.sprintf "%-*s 0%s%.1f min\n" name_width ""
       (String.make (Stdlib.max 1 (width - 6)) ' ')
       total);
  Buffer.contents buf

let profile_chart ?(width = 72) ?(height = 10) p =
  check_width width;
  if height < 2 then invalid_arg "Render: height < 2";
  match Profile.intervals p with
  | [] -> "(empty profile)\n"
  | intervals ->
      let total = Profile.length p in
      let peak = Profile.peak_current p in
      let current_at t =
        match
          List.find_opt
            (fun (iv : Profile.interval) ->
              t >= iv.Profile.start && t < iv.Profile.start +. iv.Profile.duration)
            intervals
        with
        | Some iv -> iv.Profile.current
        | None -> 0.0
      in
      let levels =
        Array.init width (fun col ->
            (* sample mid-column to dodge boundary ambiguity *)
            let t = (float_of_int col +. 0.5) /. float_of_int width *. total in
            let c = current_at t in
            if c <= 0.0 then 0
            else
              Stdlib.max 1
                (int_of_float
                   (Float.round (c /. peak *. float_of_int height))))
      in
      let buf = Buffer.create (width * height * 2) in
      for row = height downto 1 do
        let label =
          if row = height then Printf.sprintf "%7.0f |" peak
          else if row = 1 then Printf.sprintf "%7s |" ""
          else Printf.sprintf "%7s |" ""
        in
        Buffer.add_string buf label;
        for col = 0 to width - 1 do
          Buffer.add_char buf (if levels.(col) >= row then '#' else ' ')
        done;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (Printf.sprintf "%7s +%s\n" "mA" (String.make width '-'));
      Buffer.add_string buf
        (Printf.sprintf "%7s 0%s%.1f min\n" ""
           (String.make (Stdlib.max 1 (width - 8)) ' ')
           total);
      Buffer.contents buf
