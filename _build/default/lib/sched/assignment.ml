open Batsched_numeric
open Batsched_taskgraph

type t = { num_points : int; columns : int array }

let check_column t i =
  if i < 0 || i >= Array.length t.columns then
    invalid_arg "Assignment: task id out of range"

let uniform g j =
  { num_points = Graph.num_points g;
    columns = Array.make (Graph.num_tasks g) j }

let all_fastest g = uniform g 0

let all_lowest_power g = uniform g (Graph.num_points g - 1)

let of_list g cols =
  let n = Graph.num_tasks g and m = Graph.num_points g in
  if List.length cols <> n then
    invalid_arg "Assignment.of_list: length mismatch";
  List.iter
    (fun j ->
      if j < 0 || j >= m then invalid_arg "Assignment.of_list: column out of range")
    cols;
  { num_points = m; columns = Array.of_list cols }

let column t i =
  check_column t i;
  t.columns.(i)

let set t i j =
  check_column t i;
  if j < 0 || j >= t.num_points then
    invalid_arg "Assignment.set: column out of range";
  let columns = Array.copy t.columns in
  columns.(i) <- j;
  { t with columns }

let to_list t = Array.to_list t.columns

let chosen_point g t i = Task.point (Graph.task g i) (column t i)

let sum_over g t f =
  Kahan.sum_fn (Array.length t.columns) (fun i ->
      f (Graph.task g i) t.columns.(i))

let total_time g t = sum_over g t (fun task j -> (Task.point task j).Task.duration)

let total_energy g t = sum_over g t Task.energy

let total_charge g t = sum_over g t Task.charge

let equal a b = a.num_points = b.num_points && a.columns = b.columns

let pp_paper _g fmt t =
  let parts =
    Array.to_list (Array.map (fun j -> Printf.sprintf "P%d" (j + 1)) t.columns)
  in
  Format.pp_print_string fmt (String.concat "," parts)
