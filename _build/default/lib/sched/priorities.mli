(** The three sequencing rules used in the paper.

    All are instances of the list-scheduling skeleton
    {!Batsched_taskgraph.Analysis.list_schedule}: among ready tasks the
    largest weight goes first. *)

open Batsched_taskgraph

val sequence_dec_energy : Graph.t -> int list
(** The paper's [SequenceDecEnergy]: weight = average energy over the
    task's design points; produces the initial sequence L. *)

val weighted_sequence : Graph.t -> Assignment.t -> int list
(** The paper's [FindWeightedSequence] (Eq. 4): weight of [v] is the
    sum of the {e chosen} design-point currents over the subgraph
    rooted at [v] (including [v]). *)

val greedy_mean_current : Graph.t -> Assignment.t -> int list
(** The sequencing rule of baseline [1] (Eq. 5): weight of [v] is
    [max(I_v, mean I over the subgraph rooted at v)] with chosen
    currents. *)
