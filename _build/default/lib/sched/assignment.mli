(** Design-point assignments.

    An assignment maps every task of a graph to one design-point column
    (0-based, column 0 = fastest / highest power, column [m-1] = slowest
    / lowest power).  This is the dense-vector reading of the paper's
    selection matrix [S]: [S(i,j) = 1] iff [column i = j].  Values are
    immutable; [set] returns an updated copy. *)

open Batsched_taskgraph

type t

val all_fastest : Graph.t -> t
(** Every task at column 0 — the paper's [E_max] configuration. *)

val all_lowest_power : Graph.t -> t
(** Every task at column [m-1] — the initial state of the paper's [S]
    and the [E_min] configuration. *)

val of_list : Graph.t -> int list -> t
(** [of_list g cols] with one 0-based column per task in id order.
    @raise Invalid_argument on length mismatch or out-of-range
    column. *)

val column : t -> int -> int
(** [column a i] is the chosen column of task [i].
    @raise Invalid_argument if out of range. *)

val set : t -> int -> int -> t
(** [set a i j] rebinds task [i] to column [j] (functional update).
    @raise Invalid_argument on out-of-range task or column. *)

val to_list : t -> int list
(** Columns in task-id order. *)

val chosen_point : Graph.t -> t -> int -> Task.design_point
(** The design point selected for task [i]. *)

val total_time : Graph.t -> t -> float
(** Serial execution time: sum of chosen durations over all tasks. *)

val total_energy : Graph.t -> t -> float
(** Sum of [I * V * D] over chosen points — the paper's [E_n]. *)

val total_charge : Graph.t -> t -> float
(** Sum of [I * D] over chosen points (mA*min). *)

val equal : t -> t -> bool

val pp_paper : Graph.t -> Format.formatter -> t -> unit
(** Paper notation: ["P5,P1,P2,..."] — 1-based column of each task in
    id order, as in Table 2's DP rows. *)
