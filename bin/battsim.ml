(* battsim: explore the battery models.

   Subcommands:
     lifetime  --current I [--alpha A] [--beta B] [--model rakhmatov|peukert|ideal]
     sigma     --load I:D [--load I:D ...] [--beta B] [--idle GAP]
     curve     --current I [--beta B] [--points N]  (sigma vs T table) *)

open Cmdliner
open Batsched_battery

(* Shared observability flags: every subcommand accepts --stats and
   --trace FILE.  The whole command body runs under one span named
   after the subcommand, so the trace is non-trivial even though the
   battery layer itself only bumps counters. *)
let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print a work-counter table and timing report.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file of the run \
                 (chrome://tracing / Perfetto).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write an OpenMetrics (Prometheus text format) exposition \
                 of all counters, histograms and GC gauges.")

let ledger_arg =
  Arg.(value & opt (some string) None
       & info [ "ledger" ] ~docv:"DIR"
           ~doc:"Record a run manifest (tool, knobs, counters, wall time) \
                 in this ledger directory (also via BATSCHED_LEDGER).")

let with_obs ?(seed = 0) ?(pool_size = 1) ~label ~knobs stats trace_out
    metrics_out ledger_out f =
  Batsched_obs.Log.init_from_env ();
  let stats = stats || Batsched_obs.Log.env_stats () in
  let metrics_out =
    match metrics_out with
    | Some _ -> metrics_out
    | None -> Batsched_obs.Log.env_opt "BATSCHED_METRICS"
  in
  let ledger_out =
    match ledger_out with
    | Some _ -> ledger_out
    | None -> Batsched_obs.Log.env_opt "BATSCHED_LEDGER"
  in
  let obs =
    if stats || trace_out <> None then Batsched_obs.Sink.create ()
    else Batsched_obs.Sink.noop
  in
  if stats || metrics_out <> None then Batsched_obs.Histogram.enable ();
  let wall0 = Unix.gettimeofday () in
  let result = Batsched_obs.Sink.with_span obs label f in
  (match result with
  | `Ok () ->
      if stats then begin
        print_newline ();
        print_string (Batsched_obs.Report.to_string obs)
      end;
      (match trace_out with
      | Some out ->
          Batsched_obs.Trace.write obs out;
          Printf.printf "wrote trace to %s\n" out
      | None -> ());
      (match metrics_out with
      | Some out ->
          Batsched_obs.Openmetrics.write_file out;
          Printf.printf "wrote OpenMetrics exposition to %s\n" out
      | None -> ());
      (match ledger_out with
      | Some dir -> (
          let spec =
            { Batsched_obs.Ledger.tool = "battsim";
              label;
              instance = "";
              instance_hash = "";
              model =
                Option.value ~default:"" (List.assoc_opt "model" knobs);
              seed;
              pool_size;
              knobs;
              wall_s = Unix.gettimeofday () -. wall0;
              sigma = None;
              finish = None;
              events_path = None;
              curve = [] }
          in
          match Batsched_obs.Ledger.record ~dir spec with
          | Ok id -> Printf.printf "ledger: recorded %s in %s\n" id dir
          | Error msg ->
              Printf.eprintf "battsim: [warn] ledger write failed: %s\n" msg)
      | None -> ())
  | _ -> ());
  result

let model_of name beta =
  match name with
  | "rakhmatov" -> Ok (Rakhmatov.model ~beta ())
  | "peukert" -> Ok (Peukert.model ())
  | "kibam" -> Ok (Kibam.model ())
  | "pde" ->
      Ok
        (Diffusion.model
           ~params:
             (Diffusion.make_params ~alpha:Cell.itsy.Cell.alpha ~beta ())
           ())
  | "ideal" -> Ok Ideal.model
  | m -> Error ("unknown model: " ^ m)

let beta_arg =
  Arg.(value & opt float Rakhmatov.default_beta
       & info [ "beta" ] ~docv:"B" ~doc:"RV diffusion parameter.")

let alpha_arg =
  Arg.(value & opt float Cell.itsy.Cell.alpha
       & info [ "alpha" ] ~docv:"A" ~doc:"Capacity parameter, mA*min.")

let model_arg =
  Arg.(value & opt string "rakhmatov"
       & info [ "model" ] ~docv:"M"
           ~doc:"rakhmatov, kibam, peukert, pde or ideal.")

(* lifetime *)
let lifetime current alpha beta model_name stats trace_out metrics_out ledger =
  with_obs ~label:"lifetime"
    ~knobs:
      [ ("model", model_name); ("current", Printf.sprintf "%g" current);
        ("alpha", Printf.sprintf "%g" alpha);
        ("beta", Printf.sprintf "%g" beta) ]
    stats trace_out metrics_out ledger
  @@ fun () ->
  match model_of model_name beta with
  | Error msg -> `Error (false, msg)
  | Ok model ->
      if current <= 0.0 then `Error (false, "current must be positive")
      else begin
        let t = Lifetime.of_constant_current ~model ~alpha ~current in
        Printf.printf
          "model %s, alpha %.0f mA*min, constant %.1f mA -> lifetime %.2f min \
           (%.2f h), delivered %.0f mA*min (%.1f%% of alpha)\n"
          model_name alpha current t (t /. 60.0) (current *. t)
          (100.0 *. current *. t /. alpha);
        `Ok ()
      end

let current_arg =
  Arg.(required & opt (some float) None
       & info [ "current" ] ~docv:"MA" ~doc:"Constant load, mA.")

let lifetime_cmd =
  Cmd.v (Cmd.info "lifetime" ~doc:"lifetime under a constant load")
    Term.(
      ret
        (const lifetime $ current_arg $ alpha_arg $ beta_arg $ model_arg
         $ stats_arg $ trace_out_arg $ metrics_out_arg $ ledger_arg))

(* sigma *)
let parse_load s =
  match String.split_on_char ':' s with
  | [ i; d ] -> (
      try Ok (float_of_string i, float_of_string d)
      with Failure _ -> Error ("bad load: " ^ s))
  | _ -> Error ("bad load (want I:D): " ^ s)

let sigma loads beta idle model_name stats trace_out metrics_out ledger =
  with_obs ~label:"sigma"
    ~knobs:
      [ ("model", model_name); ("beta", Printf.sprintf "%g" beta);
        ("idle", Printf.sprintf "%g" idle);
        ("loads", string_of_int (List.length loads)) ]
    stats trace_out metrics_out ledger
  @@ fun () ->
  match model_of model_name beta with
  | Error msg -> `Error (false, msg)
  | Ok model -> (
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
            match parse_load s with
            | Ok l -> parse (l :: acc) rest
            | Error e -> Error e)
      in
      match parse [] loads with
      | Error msg -> `Error (false, msg)
      | Ok [] -> `Error (false, "need at least one --load I:D")
      | Ok pairs ->
          let base = Profile.sequential pairs in
          let profile =
            if idle > 0.0 then
              (* open a recovery gap before the last interval *)
              match List.rev (Profile.intervals base) with
              | last :: _ ->
                  Profile.with_idle base ~after:last.Profile.start ~idle
              | [] -> base
            else base
          in
          Format.printf "%a" Profile.pp profile;
          Printf.printf "total charge: %.1f mA*min\nsigma at end: %.1f mA*min\n"
            (Profile.total_charge profile)
            (Model.sigma_end model profile);
          `Ok ())

let loads_arg =
  Arg.(value & opt_all string []
       & info [ "load" ] ~docv:"I:D" ~doc:"A load interval: current:duration.")

let idle_arg =
  Arg.(value & opt float 0.0
       & info [ "idle" ] ~docv:"MIN"
           ~doc:"Insert an idle gap before the last interval.")

let sigma_cmd =
  Cmd.v (Cmd.info "sigma" ~doc:"apparent charge lost by a load profile")
    Term.(
      ret
        (const sigma $ loads_arg $ beta_arg $ idle_arg $ model_arg
         $ stats_arg $ trace_out_arg $ metrics_out_arg $ ledger_arg))

(* curve *)
let curve current beta points model_name stats trace_out metrics_out ledger =
  with_obs ~label:"curve"
    ~knobs:
      [ ("model", model_name); ("current", Printf.sprintf "%g" current);
        ("beta", Printf.sprintf "%g" beta);
        ("points", string_of_int points) ]
    stats trace_out metrics_out ledger
  @@ fun () ->
  match model_of model_name beta with
  | Error msg -> `Error (false, msg)
  | Ok model ->
      if current <= 0.0 then `Error (false, "current must be positive")
      else if points < 2 then `Error (false, "need at least 2 points")
      else begin
        let alpha = Cell.itsy.Cell.alpha in
        let horizon = Lifetime.of_constant_current ~model ~alpha ~current in
        let p = Profile.constant ~current ~duration:horizon in
        let curve = Curves.sigma_curve ~model p ~n:points in
        Printf.printf "# T(min)  sigma(mA*min)\n";
        List.iter
          (fun (t, s) -> Printf.printf "%10.2f  %12.1f\n" t s)
          (Batsched_numeric.Interp.points curve);
        `Ok ()
      end

let points_arg =
  Arg.(value & opt int 25 & info [ "points" ] ~docv:"N" ~doc:"Sample count.")

let curve_cmd =
  Cmd.v (Cmd.info "curve" ~doc:"tabulate sigma(T) up to exhaustion")
    Term.(
      ret
        (const curve $ current_arg $ beta_arg $ points_arg $ model_arg
         $ stats_arg $ trace_out_arg $ metrics_out_arg $ ledger_arg))

(* cycles: periodic-mission endurance *)
let cycles current burst period alpha beta model_name stats trace_out
    metrics_out ledger =
  with_obs ~label:"cycles"
    ~knobs:
      [ ("model", model_name); ("current", Printf.sprintf "%g" current);
        ("burst", Printf.sprintf "%g" burst);
        ("period", Printf.sprintf "%g" period);
        ("alpha", Printf.sprintf "%g" alpha);
        ("beta", Printf.sprintf "%g" beta) ]
    stats trace_out metrics_out ledger
  @@ fun () ->
  match model_of model_name beta with
  | Error msg -> `Error (false, msg)
  | Ok model ->
      if current <= 0.0 || burst <= 0.0 then
        `Error (false, "current and burst must be positive")
      else if period < burst then
        `Error (false, "period must cover the burst")
      else begin
        let cycle = Profile.constant ~current ~duration:burst in
        (match
           Periodic.cycles_to_death ~model ~alpha ~period cycle
         with
        | Periodic.Dies n ->
            Printf.printf
              "%.0f mA for %.1f min every %.1f min: %d complete cycles \
               (ideal ceiling %.1f)\n"
              current burst period n
              (alpha /. (current *. burst))
        | Periodic.Censored n ->
            Printf.printf
              "%.0f mA for %.1f min every %.1f min: still alive after %d \
               cycles (ideal ceiling %.1f)\n"
              current burst period n
              (alpha /. (current *. burst))
        | exception Periodic.Unsustainable sigma ->
            Printf.printf
              "the first cycle already exhausts the battery (sigma %.0f over \
               alpha %.0f)\n"
              sigma alpha);
        `Ok ()
      end

let burst_arg =
  Arg.(value & opt float 20.0 & info [ "burst" ] ~docv:"MIN" ~doc:"Burst length.")

let period_arg =
  Arg.(value & opt float 60.0 & info [ "period" ] ~docv:"MIN" ~doc:"Cycle period.")

let cycles_cmd =
  Cmd.v (Cmd.info "cycles" ~doc:"periodic-mission endurance")
    Term.(
      ret
        (const cycles $ current_arg $ burst_arg $ period_arg $ alpha_arg
         $ beta_arg $ model_arg $ stats_arg $ trace_out_arg
         $ metrics_out_arg $ ledger_arg))

(* fleet: Monte Carlo endurance over a population of devices *)
let fleet spec_path devices pool_size seed json_out events_out stats trace_out
    metrics_out ledger =
  with_obs ~label:"fleet" ~seed ~pool_size
    ~knobs:
      [ ("spec", Option.value ~default:"(built-in)" spec_path);
        ("devices", string_of_int devices);
        ("pool", string_of_int pool_size); ("seed", string_of_int seed) ]
    stats trace_out metrics_out ledger
  @@ fun () ->
  let spec =
    match spec_path with
    | None -> Ok Batsched_fleet.Spec.default
    | Some path -> Batsched_fleet.Spec.of_file path
  in
  match spec with
  | Error msg -> `Error (false, msg)
  | Ok spec ->
      if devices < 0 then `Error (false, "devices must be non-negative")
      else if pool_size < 1 then `Error (false, "pool must be at least 1")
      else begin
        let events =
          match events_out with
          | Some path -> Batsched_obs.Events.create path
          | None -> Batsched_obs.Events.noop
        in
        let result =
          Batsched_numeric.Pool.with_pool pool_size (fun pool ->
              Batsched_fleet.Engine.run ~pool ~events ~spec ~devices ~seed ())
        in
        let module S = Batsched_fleet.Survival in
        Printf.printf "fleet: %d devices, horizon %d cycles (seed %d, pool %d)\n"
          (S.n result) spec.Batsched_fleet.Spec.horizon seed pool_size;
        if S.n result > 0 then begin
          Printf.printf "  deaths %d, censored %d, mean lifetime %.1f cycles\n"
            (S.n result - S.censored result)
            (S.censored result) (S.mean_cycles result);
          Printf.printf "  quantiles: p1=%d p5=%d p50=%d p90=%d p99=%d\n"
            (S.quantile result 1.0) (S.quantile result 5.0)
            (S.quantile result 50.0) (S.quantile result 90.0)
            (S.quantile result 99.0);
          Array.iter
            (fun (label, n, censored, mean) ->
              Printf.printf "  model %-12s %6d devices, %6d censored" label n
                censored;
              if n > 0 then Printf.printf ", mean %.1f" mean;
              print_newline ())
            (S.per_model result)
        end;
        Printf.printf "  checksum %s\n" (S.checksum result);
        (match json_out with
        | None -> ()
        | Some out ->
            let buf = Buffer.create 4096 in
            S.to_json result buf;
            Buffer.add_char buf '\n';
            if out = "-" then print_string (Buffer.contents buf)
            else begin
              let oc = open_out out in
              Buffer.output_buffer oc buf;
              close_out oc;
              Printf.printf "wrote fleet report to %s\n" out
            end);
        (match events_out with
        | Some path ->
            Batsched_obs.Events.close events;
            Printf.printf "wrote events to %s\n" path
        | None -> ());
        `Ok ()
      end

let spec_arg =
  Arg.(value & opt (some string) None
       & info [ "spec" ] ~docv:"FILE"
           ~doc:"Fleet population spec (JSON).  Omit for the built-in \
                 default population (all four analytic models over the g2 \
                 mission).")

let devices_arg =
  Arg.(value & opt int 1000
       & info [ "devices" ] ~docv:"N" ~doc:"Number of devices to simulate.")

let pool_arg =
  Arg.(value & opt int 1
       & info [ "pool" ] ~docv:"K"
           ~doc:"Worker pool size.  Results are bit-identical for any K.")

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"S"
           ~doc:"Base RNG seed; device $(i,i) draws from an independent \
                 substream of (seed, i), so a given device's parameters do \
                 not depend on N or K.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the full survival report (quantiles, staircase, \
                 per-model tallies, checksum) as JSON; \"-\" for stdout.")

let events_arg =
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"FILE"
           ~doc:"Write a JSONL progress stream (fleet-block / fleet-done \
                 records).")

let fleet_cmd =
  Cmd.v (Cmd.info "fleet" ~doc:"Monte Carlo fleet endurance")
    Term.(
      ret
        (const fleet $ spec_arg $ devices_arg $ pool_arg $ seed_arg
         $ json_arg $ events_arg $ stats_arg $ trace_out_arg
         $ metrics_out_arg $ ledger_arg))

let main =
  Cmd.group
    (Cmd.info "battsim" ~doc:"battery model explorer")
    [ lifetime_cmd; sigma_cmd; curve_cmd; cycles_cmd; fleet_cmd ]

let () = exit (Cmd.eval main)
