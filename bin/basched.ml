(* basched: battery-aware scheduling of a task-graph file.

   Usage: basched FILE --deadline D [--algo iterative|dp-energy|chowdhury|
          annealing|random] [--beta B] [--seed N] [--iterations]
          [--stats] [--trace OUT.json] [--events OUT.jsonl]
          [--metrics OUT.prom] [--dot OUT]
          basched report EVENTS.jsonl

   Environment: BATSCHED_LOG=debug|info|warn|error sets the log level,
   BATSCHED_STATS=1 implies --stats — both for cram tests and CI. *)

open Cmdliner
open Batsched_taskgraph
open Batsched_sched
open Batsched_baselines

let report ?(chart = false) g (sol : Solution.t) =
  Format.printf "schedule: %a@." (Schedule.pp g) sol.Solution.schedule;
  Printf.printf "finish:   %.2f min\n" sol.Solution.finish;
  Printf.printf "sigma:    %.1f mA*min\n" sol.Solution.sigma;
  if chart then begin
    print_newline ();
    print_string (Render.gantt g sol.Solution.schedule);
    print_newline ();
    print_string (Render.profile_chart (Schedule.to_profile g sol.Solution.schedule))
  end

let trace_iterations g (result : Batsched.Iterate.result) =
  List.iter
    (fun (it : Batsched.Iterate.iteration) ->
      Printf.printf "iteration %d: min sigma %.1f\n" it.index it.min_sigma;
      List.iter
        (fun (w : Batsched.Window.window_result) ->
          Printf.printf "  window %d:%d  sigma %.1f  Delta %.2f\n"
            (w.window_start + 1) (Graph.num_points g) w.sigma w.finish)
        it.windows.Batsched.Window.per_window)
    result.iterations

(* Auto-detect the on-disk format: TGFF-dialect files start their first
   significant line with '@'; otherwise the native textio format. *)
let load_graph path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let is_tgff =
    String.split_on_char '\n' text
    |> List.exists (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#' && l.[0] = '@')
  in
  if is_tgff then
    let doc = Tgff.of_string text in
    (doc.Tgff.graph, doc.Tgff.deadline)
  else (Textio.of_string text, None)

let run_file path deadline algo beta seed iterations chart polish verbose
    stats trace_out events_out metrics_out dot_out =
  Batsched_obs.Log.init_from_env ();
  if verbose then Batsched_obs.Log.set_level Batsched_obs.Log.Debug;
  let stats = stats || Batsched_obs.Log.env_stats () in
  (* Work counters are always on; an active sink additionally records
     phase span timers for --stats and --trace. *)
  let obs =
    if stats || trace_out <> None then Batsched_obs.Sink.create ()
    else Batsched_obs.Sink.noop
  in
  (* Histograms feed the --stats quantile block and the OpenMetrics
     exposition; off otherwise (one branch per observation site). *)
  if stats || metrics_out <> None then Batsched_obs.Histogram.enable ();
  match
    (try Ok (load_graph path) with
    | Textio.Parse_error { line; message }
    | Tgff.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message)
    | Sys_error msg -> Error msg)
  with
  | Error msg -> Error msg
  | Ok (g, embedded_deadline) -> (
      (match dot_out with
      | Some out ->
          let oc = open_out out in
          output_string oc (Textio.to_dot g);
          close_out oc
      | None -> ());
      let model = Batsched_battery.Rakhmatov.model ~beta () in
      let rng = Batsched_numeric.Rng.create seed in
      Printf.printf "graph %s: %d tasks, %d design points, %d edges\n%!"
        (Graph.label g) (Graph.num_tasks g) (Graph.num_points g)
        (Graph.num_edges g);
      match
        match (deadline, embedded_deadline) with
        | Some d, _ -> Ok d
        | None, Some d ->
            Printf.printf "deadline %.2f min (from the file)\n" d;
            Ok d
        | None, None ->
            Error "no deadline: pass --deadline (the file embeds none)"
      with
      | Error msg -> Error msg
      | Ok deadline -> (
      let events =
        match events_out with
        | Some out -> Batsched_obs.Events.create out
        | None -> Batsched_obs.Events.noop
      in
      (* closed on every path so the buffered records reach disk *)
      Fun.protect ~finally:(fun () -> Batsched_obs.Events.close events)
      @@ fun () ->
      try
        (match algo with
        | "iterative" | "iterative-ms" ->
            let cfg = Batsched.Config.make ~model ~obs ~events ~deadline () in
            let result =
              if algo = "iterative-ms" then
                Batsched.Iterate.run_multistart ~rng ~starts:8 cfg g
              else Batsched.Iterate.run cfg g
            in
            if iterations then trace_iterations g result;
            let result =
              if polish then Batsched.Polish.polish cfg g result else result
            in
            report ~chart g
              (Solution.of_schedule ~model g result.Batsched.Iterate.schedule)
        | "branch-bound" ->
            let outcome = Branch_bound.run ~model g ~deadline in
            if not outcome.Branch_bound.optimal then
              Printf.printf "(node budget hit: result may be suboptimal)\n";
            report ~chart g outcome.Branch_bound.solution
        | "dp-energy" -> report ~chart g (Dp_energy.run ~model g ~deadline)
        | "chowdhury" -> report ~chart g (Chowdhury.run ~model g ~deadline)
        | "annealing" ->
            report ~chart g (Annealing.run ~events ~rng ~model g ~deadline)
        | "random" -> report ~chart g (Random_search.run ~rng ~model g ~deadline)
        | a -> failwith ("unknown algorithm: " ^ a));
        if stats then begin
          print_newline ();
          print_string (Batsched_obs.Report.to_string obs)
        end;
        (match trace_out with
        | Some out ->
            Batsched_obs.Trace.write obs out;
            Printf.printf
              "wrote trace to %s (load it in chrome://tracing or \
               ui.perfetto.dev)\n"
              out
        | None -> ());
        (match events_out with
        | Some out ->
            Printf.printf
              "wrote convergence events to %s (render with basched report)\n"
              out
        | None -> ());
        (match metrics_out with
        | Some out ->
            Batsched_obs.Openmetrics.write_file out;
            Printf.printf "wrote OpenMetrics exposition to %s\n" out
        | None -> ());
        Ok ()
      with
      | Batsched.Config.Deadline_unmeetable | Dp_energy.Infeasible
      | Chowdhury.Infeasible | Annealing.No_feasible_state
      | Branch_bound.Infeasible | Random_search.No_feasible_sample ->
          Error
            (Printf.sprintf
               "deadline %.2f min cannot be met (all-fastest serial time %.2f)"
               deadline (fst (Analysis.serial_time_bounds g)))
      | Failure msg -> Error msg))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Task-graph file (see lib/taskgraph/textio.mli for the format).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "d"; "deadline" ] ~docv:"MIN"
           ~doc:"Deadline in minutes (defaults to a TGFF HARD_DEADLINE).")

let algo_arg =
  Arg.(value & opt string "iterative"
       & info [ "a"; "algo" ] ~docv:"ALGO"
           ~doc:"One of iterative, iterative-ms, dp-energy, chowdhury, \
                 annealing, branch-bound, random.")

let beta_arg =
  Arg.(value & opt float Batsched_battery.Rakhmatov.default_beta
       & info [ "beta" ] ~docv:"B" ~doc:"Battery diffusion parameter.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let iterations_arg =
  Arg.(value & flag
       & info [ "iterations" ] ~doc:"Print per-iteration details.")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print a work-counter table and per-phase timing report.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file of the run \
                 (chrome://tracing / Perfetto).")

let events_arg =
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"FILE"
           ~doc:"Write a JSONL convergence-event stream (one record per \
                 anneal level / iteration / trial; see EXPERIMENTS.md for \
                 the schema).  Render with basched report.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write an OpenMetrics (Prometheus text format) exposition \
                 of all counters, histograms and GC gauges after the run.")

let chart_arg =
  Arg.(value & flag
       & info [ "chart" ] ~doc:"Draw an ASCII Gantt strip and current chart.")

let polish_arg =
  Arg.(value & flag
       & info [ "polish" ]
           ~doc:"Apply adjacent-swap local search after the iterative run.")

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log per-iteration progress (debug).")

let dot_arg =
  Arg.(value & opt (some string) None
       & info [ "dot" ] ~docv:"OUT" ~doc:"Also write a Graphviz rendering.")

(* --- basched report: render an events stream as a summary table --- *)

module J = Batsched_obs.Json

let num_or_nan name r = Option.value ~default:Float.nan (J.num_field name r)

let int_or_zero name r =
  match J.num_field name r with Some f -> int_of_float f | None -> 0

let record_kind r = Option.value ~default:"?" (J.str_field "kind" r)

let t_ms r = num_or_nan "t_ns" r /. 1e6

let print_section records kind header line =
  match List.filter (fun r -> record_kind r = kind) records with
  | [] -> ()
  | rows ->
      print_newline ();
      print_string header;
      List.iter line rows

let report_events path =
  match
    (try Ok (J.of_jsonl_file path) with
    | J.Bad_json msg -> Error (path ^ ": " ^ msg)
    | Sys_error msg -> Error msg)
  with
  | Error msg -> Error msg
  | Ok records ->
      Printf.printf "%d event records from %s\n" (List.length records) path;
      let kinds =
        List.fold_left
          (fun acc r ->
            let k = record_kind r in
            if List.mem_assoc k acc then
              List.map
                (fun (k', n) -> if k' = k then (k', n + 1) else (k', n))
                acc
            else acc @ [ (k, 1) ])
          [] records
      in
      List.iter (fun (k, n) -> Printf.printf "  %-16s %6d\n" k n) kinds;
      print_section records "anneal_level"
        (Printf.sprintf "%8s %6s %12s %8s %8s %14s %14s\n" "t_ms" "level"
           "temp" "evals" "accept" "cur_energy" "best_sigma")
        (fun r ->
          Printf.printf "%8.2f %6d %12.2f %8d %8.3f %14.2f %14.2f\n" (t_ms r)
            (int_or_zero "level" r) (num_or_nan "temp" r)
            (int_or_zero "evals" r)
            (num_or_nan "accept_rate" r)
            (num_or_nan "cur_energy" r)
            (num_or_nan "best_sigma" r));
      print_section records "iteration"
        (Printf.sprintf "%8s %6s %14s %14s %14s\n" "t_ms" "iter" "window_best"
           "weighted" "min_sigma")
        (fun r ->
          Printf.printf "%8.2f %6d %14.2f %14.2f %14.2f\n" (t_ms r)
            (int_or_zero "index" r)
            (num_or_nan "window_best" r)
            (num_or_nan "weighted_sigma" r)
            (num_or_nan "min_sigma" r));
      print_section records "trial"
        (Printf.sprintf "%8s %6s %14s %10s %6s\n" "t_ms" "trial" "sigma"
           "finish" "iters")
        (fun r ->
          Printf.printf "%8.2f %6d %14.2f %10.2f %6d\n" (t_ms r)
            (int_or_zero "trial" r) (num_or_nan "sigma" r)
            (num_or_nan "finish" r)
            (int_or_zero "iterations" r));
      print_section records "polish_round"
        (Printf.sprintf "%8s %6s %14s %9s\n" "t_ms" "round" "cost" "improved")
        (fun r ->
          Printf.printf "%8.2f %6d %14.2f %9b\n" (t_ms r)
            (int_or_zero "round" r) (num_or_nan "cost" r)
            (match J.bool_field "improved" r with Some b -> b | None -> false));
      (* the anytime headline: the best sigma at the end of the stream *)
      let final_best =
        List.fold_left
          (fun acc r ->
            match
              (J.num_field "best_sigma" r, J.num_field "min_sigma" r)
            with
            | Some s, _ | None, Some s -> Some s
            | None, None -> acc)
          None records
      in
      (match final_best with
      | Some s -> Printf.printf "\nfinal best sigma: %.2f\n" s
      | None -> ());
      Ok ()

let run_term =
  Term.(
    const
      (fun file deadline algo beta seed iterations chart polish verbose stats
           trace events metrics dot ->
        match
          run_file file deadline algo beta seed iterations chart polish
            verbose stats trace events metrics dot
        with
        | Ok () -> `Ok ()
        | Error msg -> `Error (false, msg))
    $ file_arg $ deadline_arg $ algo_arg $ beta_arg $ seed_arg
    $ iterations_arg $ chart_arg $ polish_arg $ verbose_arg $ stats_arg
    $ trace_arg $ events_arg $ metrics_arg $ dot_arg)

let report_cmd =
  let events_file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"EVENTS"
             ~doc:"JSONL convergence-event stream written by --events.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize a convergence event stream as per-phase tables")
    Term.(
      ret
        (const (fun path ->
             match report_events path with
             | Ok () -> `Ok ()
             | Error msg -> `Error (false, msg))
        $ events_file_arg))

let run_cmd =
  let doc =
    "battery-aware task sequencing and design-point assignment (or: \
     basched report EVENTS.jsonl to summarize a convergence stream)"
  in
  Cmd.v (Cmd.info "basched" ~doc) (Term.ret run_term)

(* Cmdliner groups reserve the first positional for the command name,
   which would break the historical `basched FILE --deadline D` CLI —
   so the one subcommand is dispatched by hand. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "report" then begin
    let argv =
      Array.append
        [| Sys.argv.(0) ^ " report" |]
        (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
    in
    exit (Cmd.eval ~argv report_cmd)
  end
  else exit (Cmd.eval run_cmd)
