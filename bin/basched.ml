(* basched: battery-aware scheduling of a task-graph file.

   Usage: basched FILE --deadline D [--algo iterative|dp-energy|chowdhury|
          annealing|random] [--beta B] [--seed N] [--pool N] [--iterations]
          [--stats] [--trace OUT.json] [--events OUT.jsonl]
          [--metrics OUT.prom] [--ledger DIR] [--dot OUT]
          basched serve [FIXTURE] [--pool N] [--queue N] [--soak N]
          basched report EVENTS.jsonl
          basched runs [list|show ID|diff A B] [--ledger DIR]
          basched profile A B [--ledger DIR] [--axis time|evals]
          basched watch [FILE | --last] [--replay] [--interval MS]

   Environment: BATSCHED_LOG=debug|info|warn|error sets the log level,
   BATSCHED_STATS=1 implies --stats, and BATSCHED_EVENTS / BATSCHED_METRICS /
   BATSCHED_LEDGER are the flag equivalents of --events / --metrics /
   --ledger — all for cram tests and CI, where threading flags through
   harnesses is awkward. *)

open Cmdliner
open Batsched_taskgraph
open Batsched_sched
open Batsched_baselines
module Obs = Batsched_obs

let report ?(chart = false) g (sol : Solution.t) =
  Format.printf "schedule: %a@." (Schedule.pp g) sol.Solution.schedule;
  Printf.printf "finish:   %.2f min\n" sol.Solution.finish;
  Printf.printf "sigma:    %.1f mA*min\n" sol.Solution.sigma;
  if chart then begin
    print_newline ();
    print_string (Render.gantt g sol.Solution.schedule);
    print_newline ();
    print_string (Render.profile_chart (Schedule.to_profile g sol.Solution.schedule))
  end

let trace_iterations g (result : Batsched.Iterate.result) =
  List.iter
    (fun (it : Batsched.Iterate.iteration) ->
      Printf.printf "iteration %d: min sigma %.1f\n" it.index it.min_sigma;
      List.iter
        (fun (w : Batsched.Window.window_result) ->
          Printf.printf "  window %d:%d  sigma %.1f  Delta %.2f\n"
            (w.window_start + 1) (Graph.num_points g) w.sigma w.finish)
        it.windows.Batsched.Window.per_window)
    result.iterations

(* Auto-detect the on-disk format: TGFF-dialect files start their first
   significant line with '@'; otherwise the native textio format. *)
let load_graph path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let is_tgff =
    String.split_on_char '\n' text
    |> List.exists (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#' && l.[0] = '@')
  in
  if is_tgff then
    let doc = Tgff.of_string text in
    (doc.Tgff.graph, doc.Tgff.deadline)
  else (Textio.of_string text, None)

(* Terminal telemetry: histogram digests (so the dashboard can show a
   latency block without parsing the exposition) and the run_done
   marker that tells [basched watch] the stream is complete.  Digests
   go first — a live watcher stops at run_done. *)
let emit_terminal_records events (sol : Solution.t) =
  if Obs.Events.is_active events then begin
    if Obs.Histogram.enabled () then
      List.iter
        (fun (name, h) ->
          if Obs.Histogram.count h > 0 then
            Obs.Events.emit events "hist"
              [ ("name", Obs.Events.S name);
                ("count", Obs.Events.I (Obs.Histogram.count h));
                ("p50", Obs.Events.F (Obs.Histogram.quantile h 50.0));
                ("p99", Obs.Events.F (Obs.Histogram.quantile h 99.0));
                ("max", Obs.Events.F (Obs.Histogram.max_value h)) ])
        (Obs.Histogram.snapshot ());
    Obs.Events.emit events "run_done"
      [ ("sigma", Obs.Events.F sol.Solution.sigma);
        ("finish", Obs.Events.F sol.Solution.finish) ]
  end

let record_ledger ~dir ~path ~algo ~beta ~seed ~pool_n ~deadline ~polish
    ~events_out ~wall_s ~events (sol : Solution.t) =
  let curve = Obs.Profile.curve_of_events (Obs.Events.snapshot events) in
  let spec =
    { Obs.Ledger.tool = "basched";
      label = algo;
      instance = path;
      instance_hash =
        (try Digest.to_hex (Digest.file path) with Sys_error _ -> "");
      model = "rakhmatov";
      seed;
      pool_size = pool_n;
      knobs =
        [ ("algo", algo);
          ("beta", Printf.sprintf "%g" beta);
          ("deadline", Printf.sprintf "%g" deadline);
          ("polish", string_of_bool polish) ];
      wall_s;
      sigma = Some sol.Solution.sigma;
      finish = Some sol.Solution.finish;
      events_path = events_out;
      curve }
  in
  match Obs.Ledger.record ~dir spec with
  | Ok id -> Printf.printf "ledger: recorded %s in %s\n" id dir
  | Error msg -> Printf.eprintf "basched: [warn] ledger write failed: %s\n" msg

let run_file path deadline algo beta seed pool_n iterations chart polish
    verbose stats trace_out events_out metrics_out ledger_opt dot_out =
  Obs.Log.init_from_env ();
  if verbose then Obs.Log.set_level Obs.Log.Debug;
  let stats = stats || Obs.Log.env_stats () in
  let events_out =
    match events_out with
    | Some _ -> events_out
    | None -> Obs.Log.env_opt "BATSCHED_EVENTS"
  in
  let metrics_out =
    match metrics_out with
    | Some _ -> metrics_out
    | None -> Obs.Log.env_opt "BATSCHED_METRICS"
  in
  let ledger_dir =
    match ledger_opt with
    | Some _ -> ledger_opt
    | None -> Obs.Log.env_opt "BATSCHED_LEDGER"
  in
  (* Work counters are always on; an active sink additionally records
     phase span timers for --stats and --trace. *)
  let obs =
    if stats || trace_out <> None then Obs.Sink.create ()
    else Obs.Sink.noop
  in
  (* Histograms feed the --stats quantile block and the OpenMetrics
     exposition; off otherwise (one branch per observation site). *)
  if stats || metrics_out <> None then Obs.Histogram.enable ();
  match
    (try Ok (load_graph path) with
    | Textio.Parse_error { line; message }
    | Tgff.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message)
    | Sys_error msg -> Error msg)
  with
  | Error msg -> Error msg
  | Ok (g, embedded_deadline) -> (
      (match dot_out with
      | Some out ->
          let oc = open_out out in
          output_string oc (Textio.to_dot g);
          close_out oc
      | None -> ());
      let model = Batsched_battery.Rakhmatov.model ~beta () in
      let rng = Batsched_numeric.Rng.create seed in
      Printf.printf "graph %s: %d tasks, %d design points, %d edges\n%!"
        (Graph.label g) (Graph.num_tasks g) (Graph.num_points g)
        (Graph.num_edges g);
      match
        match (deadline, embedded_deadline) with
        | Some d, _ -> Ok d
        | None, Some d ->
            Printf.printf "deadline %.2f min (from the file)\n" d;
            Ok d
        | None, None ->
            Error "no deadline: pass --deadline (the file embeds none)"
      with
      | Error msg -> Error msg
      | Ok deadline -> (
      (* with a ledger but no --events, a memory stream still captures
         the convergence curve for the manifest *)
      let events =
        match events_out with
        | Some out -> Obs.Events.create out
        | None ->
            if ledger_dir <> None then Obs.Events.create_memory ()
            else Obs.Events.noop
      in
      let wall0 = Unix.gettimeofday () in
      (* closed on every path so the records reach disk *)
      Fun.protect ~finally:(fun () -> Obs.Events.close events)
      @@ fun () ->
      try
        let pool =
          if pool_n > 1 then Batsched_numeric.Pool.create pool_n
          else Batsched_numeric.Pool.sequential
        in
        let sol =
          match algo with
          | "iterative" | "iterative-ms" ->
              let cfg =
                Batsched.Config.make ~model ~obs ~events ~pool ~deadline ()
              in
              let result =
                if algo = "iterative-ms" then
                  Batsched.Iterate.run_multistart ~rng ~starts:8 cfg g
                else Batsched.Iterate.run cfg g
              in
              if iterations then trace_iterations g result;
              let result =
                if polish then Batsched.Polish.polish cfg g result else result
              in
              Solution.of_schedule ~model g result.Batsched.Iterate.schedule
          | "branch-bound" ->
              let outcome = Branch_bound.run ~model g ~deadline in
              if not outcome.Branch_bound.optimal then
                Printf.printf "(node budget hit: result may be suboptimal)\n";
              outcome.Branch_bound.solution
          | "dp-energy" -> Dp_energy.run ~model g ~deadline
          | "chowdhury" -> Chowdhury.run ~model g ~deadline
          | "annealing" -> Annealing.run ~events ~rng ~model g ~deadline
          | "random" -> Random_search.run ~events ~rng ~model g ~deadline
          | a -> failwith ("unknown algorithm: " ^ a)
        in
        emit_terminal_records events sol;
        report ~chart g sol;
        if stats then begin
          print_newline ();
          print_string (Obs.Report.to_string obs)
        end;
        (match trace_out with
        | Some out ->
            Obs.Trace.write obs out;
            Printf.printf
              "wrote trace to %s (load it in chrome://tracing or \
               ui.perfetto.dev)\n"
              out
        | None -> ());
        (match events_out with
        | Some out ->
            Printf.printf
              "wrote convergence events to %s (render with basched report)\n"
              out
        | None -> ());
        (match metrics_out with
        | Some out ->
            Obs.Openmetrics.write_file out;
            Printf.printf "wrote OpenMetrics exposition to %s\n" out
        | None -> ());
        (match ledger_dir with
        | Some dir ->
            record_ledger ~dir ~path ~algo ~beta ~seed ~pool_n ~deadline
              ~polish ~events_out
              ~wall_s:(Unix.gettimeofday () -. wall0)
              ~events sol
        | None -> ());
        Ok ()
      with
      | Batsched.Config.Deadline_unmeetable | Dp_energy.Infeasible
      | Chowdhury.Infeasible | Annealing.No_feasible_state
      | Branch_bound.Infeasible | Random_search.No_feasible_sample ->
          Error
            (Printf.sprintf
               "deadline %.2f min cannot be met (all-fastest serial time %.2f)"
               deadline (fst (Analysis.serial_time_bounds g)))
      | Failure msg -> Error msg))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Task-graph file (see lib/taskgraph/textio.mli for the format).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "d"; "deadline" ] ~docv:"MIN"
           ~doc:"Deadline in minutes (defaults to a TGFF HARD_DEADLINE).")

let algo_arg =
  Arg.(value & opt string "iterative"
       & info [ "a"; "algo" ] ~docv:"ALGO"
           ~doc:"One of iterative, iterative-ms, dp-energy, chowdhury, \
                 annealing, branch-bound, random.")

let beta_arg =
  Arg.(value & opt float Batsched_battery.Rakhmatov.default_beta
       & info [ "beta" ] ~docv:"B" ~doc:"Battery diffusion parameter.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let pool_arg =
  Arg.(value & opt int 1
       & info [ "pool" ] ~docv:"N"
           ~doc:"Worker domains for the multistart fan-out (results are \
                 bit-identical across pool sizes).")

let iterations_arg =
  Arg.(value & flag
       & info [ "iterations" ] ~doc:"Print per-iteration details.")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print a work-counter table and per-phase timing report.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file of the run \
                 (chrome://tracing / Perfetto).")

let events_arg =
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"FILE"
           ~doc:"Write a JSONL convergence-event stream (one record per \
                 anneal level / iteration / trial; see EXPERIMENTS.md for \
                 the schema).  Render with basched report, or tail live \
                 with basched watch.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write an OpenMetrics (Prometheus text format) exposition \
                 of all counters, histograms and GC gauges after the run.")

let ledger_arg =
  Arg.(value & opt (some string) None
       & info [ "ledger" ] ~docv:"DIR"
           ~doc:"Record a run manifest (provenance, outcome, counters, \
                 convergence curve) in this ledger directory.  Inspect \
                 with basched runs / basched profile.")

let chart_arg =
  Arg.(value & flag
       & info [ "chart" ] ~doc:"Draw an ASCII Gantt strip and current chart.")

let polish_arg =
  Arg.(value & flag
       & info [ "polish" ]
           ~doc:"Apply adjacent-swap local search after the iterative run.")

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log per-iteration progress (debug).")

let dot_arg =
  Arg.(value & opt (some string) None
       & info [ "dot" ] ~docv:"OUT" ~doc:"Also write a Graphviz rendering.")

(* ledger-reading subcommands share this flag; default to the env/home
   ledger so `basched runs` works right after an instrumented run *)
let ledger_dir_arg =
  Arg.(value & opt string (Obs.Ledger.default_dir ())
       & info [ "ledger" ] ~docv:"DIR"
           ~doc:"Ledger directory (default: \\$BATSCHED_LEDGER, else \
                 ~/.basched/runs).")

(* --- basched report: render an events stream as a summary table --- *)

module J = Obs.Json

let num_or_nan name r = Option.value ~default:Float.nan (J.num_field name r)

let int_or_zero name r =
  match J.num_field name r with Some f -> int_of_float f | None -> 0

let record_kind r = Option.value ~default:"?" (J.str_field "kind" r)

let t_ms r = num_or_nan "t_ns" r /. 1e6

let print_section records kind header line =
  match List.filter (fun r -> record_kind r = kind) records with
  | [] -> ()
  | rows ->
      print_newline ();
      print_string header;
      List.iter line rows

let report_events path =
  match
    (try Ok (Obs.Tail.read_file path) with Sys_error msg -> Error msg)
  with
  | Error msg -> Error msg
  | Ok (records, skipped) ->
      (* a run killed mid-write leaves one torn trailing line; that is
         data loss worth a warning, not a parse failure *)
      if skipped > 0 then
        Printf.eprintf
          "basched: [warn] %s: skipped %d unparseable line(s) (torn tail?)\n"
          path skipped;
      Printf.printf "%d event records from %s\n" (List.length records) path;
      let kinds =
        List.fold_left
          (fun acc r ->
            let k = record_kind r in
            if List.mem_assoc k acc then
              List.map
                (fun (k', n) -> if k' = k then (k', n + 1) else (k', n))
                acc
            else acc @ [ (k, 1) ])
          [] records
      in
      List.iter (fun (k, n) -> Printf.printf "  %-16s %6d\n" k n) kinds;
      print_section records "anneal_level"
        (Printf.sprintf "%8s %6s %12s %8s %8s %14s %14s\n" "t_ms" "level"
           "temp" "evals" "accept" "cur_energy" "best_sigma")
        (fun r ->
          Printf.printf "%8.2f %6d %12.2f %8d %8.3f %14.2f %14.2f\n" (t_ms r)
            (int_or_zero "level" r) (num_or_nan "temp" r)
            (int_or_zero "evals" r)
            (num_or_nan "accept_rate" r)
            (num_or_nan "cur_energy" r)
            (num_or_nan "best_sigma" r));
      print_section records "iteration"
        (Printf.sprintf "%8s %6s %14s %14s %14s\n" "t_ms" "iter" "window_best"
           "weighted" "min_sigma")
        (fun r ->
          Printf.printf "%8.2f %6d %14.2f %14.2f %14.2f\n" (t_ms r)
            (int_or_zero "index" r)
            (num_or_nan "window_best" r)
            (num_or_nan "weighted_sigma" r)
            (num_or_nan "min_sigma" r));
      print_section records "trial"
        (Printf.sprintf "%8s %6s %14s %10s %6s\n" "t_ms" "trial" "sigma"
           "finish" "iters")
        (fun r ->
          Printf.printf "%8.2f %6d %14.2f %10.2f %6d\n" (t_ms r)
            (int_or_zero "trial" r) (num_or_nan "sigma" r)
            (num_or_nan "finish" r)
            (int_or_zero "iterations" r));
      print_section records "sample"
        (Printf.sprintf "%8s %8s %14s\n" "t_ms" "sample" "best_sigma")
        (fun r ->
          Printf.printf "%8.2f %8d %14.2f\n" (t_ms r)
            (int_or_zero "sample" r)
            (num_or_nan "best_sigma" r));
      print_section records "polish_round"
        (Printf.sprintf "%8s %6s %14s %9s\n" "t_ms" "round" "cost" "improved")
        (fun r ->
          Printf.printf "%8.2f %6d %14.2f %9b\n" (t_ms r)
            (int_or_zero "round" r) (num_or_nan "cost" r)
            (match J.bool_field "improved" r with Some b -> b | None -> false));
      (* the anytime headline: the best sigma at the end of the stream *)
      let final_best =
        List.fold_left
          (fun acc r ->
            match
              (J.num_field "best_sigma" r, J.num_field "min_sigma" r)
            with
            | Some s, _ | None, Some s -> Some s
            | None, None -> acc)
          None records
      in
      (match final_best with
      | Some s -> Printf.printf "\nfinal best sigma: %.2f\n" s
      | None -> ());
      Ok ()

(* --- basched runs: list / show / diff ledger manifests --- *)

let opt_num_str = function
  | Some f -> Printf.sprintf "%.2f" f
  | None -> "-"

let runs_list dir =
  let entries, skipped = Obs.Ledger.load dir in
  if skipped > 0 then
    Printf.eprintf "basched: [warn] %s: skipped %d unreadable manifest(s)\n"
      dir skipped;
  if entries = [] then Printf.printf "no runs in %s\n" dir
  else begin
    Printf.printf "%-32s %-8s %-14s %12s %9s %8s\n" "id" "tool" "label"
      "sigma" "wall_s" "git";
    List.iter
      (fun (e : Obs.Ledger.entry) ->
        Printf.printf "%-32s %-8s %-14s %12s %9.3f %8s\n" e.Obs.Ledger.id
          e.Obs.Ledger.e_tool e.Obs.Ledger.e_label
          (opt_num_str e.Obs.Ledger.e_sigma)
          e.Obs.Ledger.e_wall_s e.Obs.Ledger.git_rev)
      entries
  end;
  Ok ()

let runs_show dir id =
  match Obs.Ledger.find dir id with
  | Error msg -> Error msg
  | Ok e ->
      let open Obs.Ledger in
      Printf.printf "id:            %s\n" e.id;
      Printf.printf "tool:          %s %s\n" e.e_tool e.e_label;
      Printf.printf "instance:      %s%s\n" e.e_instance
        (if e.e_instance_hash = "" then ""
         else Printf.sprintf " (%s)" e.e_instance_hash);
      Printf.printf "model:         %s\n" e.e_model;
      Printf.printf "seed:          %d   pool: %d   git: %s\n" e.e_seed
        e.e_pool_size e.git_rev;
      Printf.printf "wall:          %.3f s\n" e.e_wall_s;
      Printf.printf "sigma:         %s   finish: %s\n"
        (opt_num_str e.e_sigma) (opt_num_str e.e_finish);
      (match e.e_events_path with
      | Some p -> Printf.printf "events:        %s\n" p
      | None -> ());
      if e.e_knobs <> [] then begin
        Printf.printf "knobs:\n";
        List.iter (fun (k, v) -> Printf.printf "  %-24s %s\n" k v) e.e_knobs
      end;
      (match e.e_curve with
      | [] -> ()
      | curve ->
          let t, ev, q = List.nth curve (List.length curve - 1) in
          Printf.printf "curve:         %d improvement(s), last %.2f at \
                         %.3fs / %.0f evals\n"
            (List.length curve) q t ev);
      let nonzero =
        List.filter (fun (_, v) -> v <> 0.0) e.counters
      in
      if nonzero <> [] then begin
        Printf.printf "counters:\n";
        List.iter
          (fun (k, v) -> Printf.printf "  %-24s %12.0f\n" k v)
          nonzero
      end;
      Ok ()

let runs_diff dir a b =
  match (Obs.Ledger.find dir a, Obs.Ledger.find dir b) with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok ea, Ok eb ->
      let open Obs.Ledger in
      Printf.printf "diff %s  vs  %s\n" ea.id eb.id;
      let field name fa fb = if fa <> fb then
          Printf.printf "  %-14s %s -> %s\n" name fa fb
      in
      field "tool" ea.e_tool eb.e_tool;
      field "label" ea.e_label eb.e_label;
      field "instance" ea.e_instance eb.e_instance;
      field "model" ea.e_model eb.e_model;
      field "git" ea.git_rev eb.git_rev;
      field "seed" (string_of_int ea.e_seed) (string_of_int eb.e_seed);
      field "pool" (string_of_int ea.e_pool_size)
        (string_of_int eb.e_pool_size);
      field "sigma" (opt_num_str ea.e_sigma) (opt_num_str eb.e_sigma);
      field "wall_s" (Printf.sprintf "%.3f" ea.e_wall_s)
        (Printf.sprintf "%.3f" eb.e_wall_s);
      let keys l = List.map fst l in
      List.iter
        (fun k ->
          let va = List.assoc_opt k ea.e_knobs
          and vb = List.assoc_opt k eb.e_knobs in
          if va <> vb then
            Printf.printf "  knob %-14s %s -> %s\n" k
              (Option.value ~default:"-" va) (Option.value ~default:"-" vb))
        (List.sort_uniq compare (keys ea.e_knobs @ keys eb.e_knobs));
      List.iter
        (fun k ->
          let va = Option.value ~default:0.0 (List.assoc_opt k ea.counters)
          and vb = Option.value ~default:0.0 (List.assoc_opt k eb.counters) in
          if va <> vb then
            Printf.printf "  counter %-19s %12.0f -> %12.0f\n" k va vb)
        (List.sort_uniq compare (keys ea.counters @ keys eb.counters));
      Ok ()

let runs_main dir action id_a id_b =
  match (action, id_a, id_b) with
  | "list", None, None -> runs_list dir
  | "show", Some id, None -> runs_show dir id
  | "diff", Some a, Some b -> runs_diff dir a b
  | "show", None, _ -> Error "runs show: missing run id"
  | "diff", _, _ -> Error "runs diff: need two run ids"
  | a, _, _ -> Error (Printf.sprintf "runs: unknown action %S" a)

(* --- basched profile: anytime comparison of two run cohorts --- *)

(* A cohort name is a label (all runs whose label matches) or, failing
   that, a run-id prefix resolving to a single run. *)
let cohort dir name =
  let entries, _ = Obs.Ledger.load dir in
  match
    List.filter (fun e -> e.Obs.Ledger.e_label = name) entries
  with
  | _ :: _ as es -> Ok es
  | [] -> (
      match Obs.Ledger.find dir name with
      | Ok e -> Ok [ e ]
      | Error msg -> Error msg)

let profile_main dir a b axis =
  match (cohort dir a, cohort dir b) with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok ea, Ok eb ->
      print_string
        (Obs.Profile.compare_to_string ~axis ~name_a:a ~name_b:b ea eb);
      Ok ()

(* --- basched watch: tail an events file into a live dashboard --- *)

let watch_path dir last = function
  | Some file -> Ok file
  | None ->
      if not last then Error "watch: pass an events FILE or --last"
      else
        let entries, _ = Obs.Ledger.load dir in
        let with_events =
          List.filter (fun e -> e.Obs.Ledger.e_events_path <> None) entries
        in
        (match List.rev with_events with
        | e :: _ -> Ok (Option.get e.Obs.Ledger.e_events_path)
        | [] -> Error ("watch --last: no run with an events file in " ^ dir))

(* Replay: one gulp through the same fold the live path uses, then the
   same summary — the equality the watch tests pin down. *)
let watch_replay path =
  match
    (try Ok (Obs.Tail.read_file path) with Sys_error msg -> Error msg)
  with
  | Error msg -> Error msg
  | Ok (records, skipped) ->
      let st =
        Obs.Dash.note_skipped (Obs.Dash.feed_all Obs.Dash.empty records)
          skipped
      in
      if Unix.isatty Unix.stdout then print_string (Obs.Dash.render st);
      print_string (Obs.Dash.summary st);
      Ok ()

(* Live: poll the file for appended bytes, feed them through the torn-
   tolerant tailer, repaint on change.  Ends at the run_done record, or
   after ~60s without growth (a writer that died without a terminal
   record).  Frames only go to a tty; the summary always prints, so
   watching from a pipe (or cram) yields exactly the replay output. *)
let watch_live path interval_ms =
  match
    (try Ok (Unix.openfile path [ Unix.O_RDONLY ] 0)
     with Unix.Unix_error (e, _, _) ->
       Error (path ^ ": " ^ Unix.error_message e))
  with
  | Error msg -> Error msg
  | Ok fd ->
      let tty = Unix.isatty Unix.stdout in
      let interval = Float.max 0.01 (float_of_int interval_ms /. 1000.0) in
      let max_idle = int_of_float (Float.max 1.0 (60.0 /. interval)) in
      let tailer = Obs.Tail.create () in
      let buf = Bytes.create 65536 in
      let st = ref Obs.Dash.empty in
      let noted = ref 0 in
      let idle = ref 0 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () ->
      let feed n =
        let js = Obs.Tail.feed tailer (Bytes.sub_string buf 0 n) in
        st := Obs.Dash.feed_all !st js;
        let bad = Obs.Tail.bad tailer in
        if bad > !noted then begin
          st := Obs.Dash.note_skipped !st (bad - !noted);
          noted := bad
        end;
        js <> []
      in
      let rec loop () =
        let n = try Unix.read fd buf 0 (Bytes.length buf) with _ -> 0 in
        if n > 0 then begin
          idle := 0;
          let changed = feed n in
          if changed && tty then print_string (Obs.Dash.render !st);
          if Obs.Dash.finished !st then ()
          else loop ()
        end
        else if Obs.Dash.finished !st || !idle > max_idle then ()
        else begin
          incr idle;
          Unix.sleepf interval;
          loop ()
        end
      in
      loop ();
      (* a file that ends without a newline still contributes its last
         line if it parses *)
      st := Obs.Dash.feed_all !st (Obs.Tail.finish tailer);
      let bad = Obs.Tail.bad tailer in
      if bad > !noted then st := Obs.Dash.note_skipped !st (bad - !noted);
      if tty then print_string (Obs.Dash.render !st);
      print_string (Obs.Dash.summary !st);
      Ok ()

let watch_main dir file last replay interval_ms =
  match watch_path dir last file with
  | Error msg -> Error msg
  | Ok path ->
      if replay then watch_replay path else watch_live path interval_ms

(* --- basched serve: batch scheduling daemon --- *)

module Serve = Batsched_serve

(* Per-slot executor counters: slot 0 is the caller-side domains, 1..
   the persistent workers.  Busy fraction is against daemon wall time,
   so on an idle daemon every slot reads near zero. *)
let print_occupancy oc pool ~wall_s =
  let st = Batsched_numeric.Pool.worker_stats pool in
  if Array.length st > 0 then begin
    Printf.fprintf oc "\nworker occupancy (wall %.2f s):\n" wall_s;
    Printf.fprintf oc "  slot   items  chunks  steals   jobs   busy_s  busy%%\n";
    Array.iteri
      (fun i (s : Batsched_numeric.Pool.worker_stat) ->
        let pct = if wall_s > 0.0 then 100.0 *. s.busy_s /. wall_s else 0.0 in
        Printf.fprintf oc "  %4d  %6d  %6d  %6d  %5d  %8.3f  %5.1f\n" i
          s.items s.chunks s.steals s.jobs s.busy_s pct)
      st
  end

let print_serve_quantiles oc d =
  let q, l = Serve.Daemon.histograms d in
  let line name h =
    if Obs.Histogram.count h > 0 then
      Printf.fprintf oc "  %-12s p50 %8.2f ms   p99 %8.2f ms   (n=%d)\n" name
        (Obs.Histogram.quantile h 50.0)
        (Obs.Histogram.quantile h 99.0)
        (Obs.Histogram.count h)
  in
  Printf.fprintf oc "\nrequest latency:\n";
  line "queue delay" q;
  line "end-to-end" l

let print_soak_summary pool (r : Serve.Soak.result) =
  let c = r.counts in
  Printf.printf "soak: %d requests in %.2f s  (%.0f req/s, pool %d)\n" r.n
    r.wall_s r.req_per_s
    (Batsched_numeric.Pool.size pool);
  Printf.printf "  completed %d  cancelled %d  errors %d  rejected %d\n"
    c.Serve.Daemon.completed c.Serve.Daemon.cancelled c.Serve.Daemon.errors
    c.Serve.Daemon.rejected;
  Printf.printf "  queue delay  p50 %.2f ms   p99 %.2f ms\n" r.queue_p50_ms
    r.queue_p99_ms;
  Printf.printf "  latency      p50 %.2f ms   p99 %.2f ms\n" r.latency_p50_ms
    r.latency_p99_ms

let serve_main fixture pool_n capacity terminal_only stats metrics_out gen
    soak json_out seed =
  if gen > 0 then begin
    (* fixture generator: print and exit, no pool, no daemon *)
    List.iter print_endline (Serve.Soak.fixture_lines ~n:gen ~seed);
    Ok ()
  end
  else if capacity < 1 then Error "--queue needs a positive capacity"
  else begin
    if stats || metrics_out <> None then Obs.Histogram.enable ();
    let pool = Batsched_numeric.Pool.create (Stdlib.max 1 pool_n) in
    Fun.protect ~finally:(fun () -> Batsched_numeric.Pool.shutdown pool)
    @@ fun () ->
    let wall0 = Unix.gettimeofday () in
    (* stdout carries the response stream, so tables and notices go to
       stderr — `basched serve f > out.jsonl` stays pure JSONL *)
    let finish_stats () =
      if stats then
        print_occupancy stderr pool ~wall_s:(Unix.gettimeofday () -. wall0);
      match metrics_out with
      | Some out ->
          Obs.Openmetrics.write_file out;
          Printf.eprintf "wrote OpenMetrics exposition to %s\n" out
      | None -> ()
    in
    match soak with
    | Some n ->
        if n < 1 then Error "--soak needs a positive request count"
        else begin
          let r = Serve.Soak.run ~seed ~pool ~n () in
          print_soak_summary pool r;
          (match json_out with
          | Some out ->
              let oc = open_out out in
              output_string oc (Serve.Soak.result_to_json r);
              output_char oc '\n';
              close_out oc;
              Printf.printf "wrote soak summary to %s\n" out
          | None -> ());
          finish_stats ();
          Ok ()
        end
    | None -> (
        match
          (match fixture with
          | None -> Ok stdin
          | Some path -> (
              try Ok (open_in path) with Sys_error msg -> Error msg))
        with
        | Error msg -> Error msg
        | Ok ic ->
            let events = Obs.Events.create_channel stdout in
            let d =
              Serve.Daemon.create ~capacity ~stream_search:(not terminal_only)
                ~pool ~events ()
            in
            let c = Serve.Daemon.run_channel d ic in
            if fixture <> None then close_in ic;
            Obs.Events.close events;
            if stats then print_serve_quantiles stderr d;
            finish_stats ();
            (* parse errors and failed requests were answered on the
               stream; the exit code reflects whether the daemon itself
               ran to completion *)
            ignore c.Serve.Daemon.errors;
            Ok ())
  end

(* --- command wiring --- *)

let run_term =
  Term.(
    const
      (fun file deadline algo beta seed pool iterations chart polish verbose
           stats trace events metrics ledger dot ->
        match
          run_file file deadline algo beta seed pool iterations chart polish
            verbose stats trace events metrics ledger dot
        with
        | Ok () -> `Ok ()
        | Error msg -> `Error (false, msg))
    $ file_arg $ deadline_arg $ algo_arg $ beta_arg $ seed_arg $ pool_arg
    $ iterations_arg $ chart_arg $ polish_arg $ verbose_arg $ stats_arg
    $ trace_arg $ events_arg $ metrics_arg $ ledger_arg $ dot_arg)

let ret_of = function Ok () -> `Ok () | Error msg -> `Error (false, msg)

let report_cmd =
  let events_file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"EVENTS"
             ~doc:"JSONL convergence-event stream written by --events.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize a convergence event stream as per-phase tables")
    Term.(
      ret (const (fun path -> ret_of (report_events path)) $ events_file_arg))

let runs_cmd =
  let action_arg =
    Arg.(value & pos 0 string "list"
         & info [] ~docv:"ACTION" ~doc:"list, show ID, or diff A B.")
  in
  let id_a_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"ID")
  in
  let id_b_arg =
    Arg.(value & pos 2 (some string) None & info [] ~docv:"ID2")
  in
  Cmd.v
    (Cmd.info "runs" ~doc:"List, inspect and diff ledger run manifests")
    Term.(
      ret
        (const (fun dir action a b -> ret_of (runs_main dir action a b))
        $ ledger_dir_arg $ action_arg $ id_a_arg $ id_b_arg))

let profile_cmd =
  let a_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"A" ~doc:"First cohort: a run label or id prefix.")
  in
  let b_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"B" ~doc:"Second cohort: a run label or id prefix.")
  in
  let axis_arg =
    Arg.(value & opt (enum [ ("time", `Time); ("evals", `Evals) ]) `Evals
         & info [ "axis" ] ~docv:"AXIS"
             ~doc:"Budget axis: evals (pool-size-invariant, default) or \
                   time (wall seconds).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Anytime convergence comparison of two ledger cohorts \
             (quantile bands, ERT table, bootstrap dominance verdict)")
    Term.(
      ret
        (const (fun dir a b axis -> ret_of (profile_main dir a b axis))
        $ ledger_dir_arg $ a_arg $ b_arg $ axis_arg))

let watch_cmd =
  let file_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"EVENTS" ~doc:"Events file to tail.")
  in
  let last_arg =
    Arg.(value & flag
         & info [ "last" ]
             ~doc:"Tail the events file of the most recent ledger run.")
  in
  let replay_arg =
    Arg.(value & flag
         & info [ "replay" ]
             ~doc:"Read the whole file once instead of tailing.")
  in
  let interval_arg =
    Arg.(value & opt int 200
         & info [ "interval" ] ~docv:"MS" ~doc:"Polling interval.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Live terminal dashboard over a convergence event stream")
    Term.(
      ret
        (const (fun dir file last replay interval ->
             ret_of (watch_main dir file last replay interval))
        $ ledger_dir_arg $ file_arg $ last_arg $ replay_arg $ interval_arg))

let serve_cmd =
  let fixture_arg =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FIXTURE"
             ~doc:"Request file, one JSON object per line (see \
                   EXPERIMENTS.md for the wire format); reads stdin when \
                   omitted.")
  in
  let serve_pool_arg =
    Arg.(value & opt int 4
         & info [ "pool" ] ~docv:"N"
             ~doc:"Worker domains the daemon batches requests onto.  With \
                   fewer than two workers, requests run inline on the \
                   reader thread and in-flight cancellation loses its \
                   promptness.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission capacity: at most N requests queued or \
                   running; overflow is answered with an overloaded \
                   record instead of queueing without bound.")
  in
  let terminal_only_arg =
    Arg.(value & flag
         & info [ "terminal-only" ]
             ~doc:"Answer with terminal records only (result, cancelled, \
                   error); suppress each request's streamed search \
                   convergence records.")
  in
  let soak_arg =
    Arg.(value & opt (some int) None
         & info [ "soak" ] ~docv:"N"
             ~doc:"Instead of serving, run N generated mixed requests \
                   through an in-process daemon and print throughput and \
                   latency quantiles.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"With --soak: also write the summary as one JSON \
                   object (the CI artifact).")
  in
  let gen_arg =
    Arg.(value & opt int 0
         & info [ "gen" ] ~docv:"N"
             ~doc:"Print an N-request smoke fixture (mixed load plus an \
                   in-flight cancellation) to stdout and exit.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Batch scheduling daemon: read newline-framed JSON requests, \
             run each search on a shared work-stealing pool, stream \
             responses as JSONL")
    Term.(
      ret
        (const (fun fixture pool capacity terminal_only stats metrics gen
                    soak json seed ->
             ret_of
               (serve_main fixture pool capacity terminal_only stats metrics
                  gen soak json seed))
        $ fixture_arg $ serve_pool_arg $ queue_arg $ terminal_only_arg
        $ stats_arg $ metrics_arg $ gen_arg $ soak_arg $ json_arg $ seed_arg))

let run_cmd =
  let doc =
    "battery-aware task sequencing and design-point assignment (also: \
     basched serve for a batch daemon, basched report | runs | profile | \
     watch for telemetry)"
  in
  Cmd.v (Cmd.info "basched" ~doc) (Term.ret run_term)

(* Cmdliner groups reserve the first positional for the command name,
   which would break the historical `basched FILE --deadline D` CLI —
   so the subcommands are dispatched by hand. *)
let subcommands =
  [ ("serve", serve_cmd); ("report", report_cmd); ("runs", runs_cmd);
    ("profile", profile_cmd); ("watch", watch_cmd) ]

let () =
  match
    if Array.length Sys.argv > 1 then
      List.assoc_opt Sys.argv.(1) subcommands
    else None
  with
  | Some cmd ->
      let argv =
        Array.append
          [| Sys.argv.(0) ^ " " ^ Sys.argv.(1) |]
          (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
      in
      exit (Cmd.eval ~argv cmd)
  | None -> exit (Cmd.eval run_cmd)
