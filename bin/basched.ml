(* basched: battery-aware scheduling of a task-graph file.

   Usage: basched FILE --deadline D [--algo iterative|dp-energy|chowdhury|
          annealing|random] [--beta B] [--seed N] [--iterations]
          [--stats] [--trace OUT.json] [--dot OUT] *)

open Cmdliner
open Batsched_taskgraph
open Batsched_sched
open Batsched_baselines

let report ?(chart = false) g (sol : Solution.t) =
  Format.printf "schedule: %a@." (Schedule.pp g) sol.Solution.schedule;
  Printf.printf "finish:   %.2f min\n" sol.Solution.finish;
  Printf.printf "sigma:    %.1f mA*min\n" sol.Solution.sigma;
  if chart then begin
    print_newline ();
    print_string (Render.gantt g sol.Solution.schedule);
    print_newline ();
    print_string (Render.profile_chart (Schedule.to_profile g sol.Solution.schedule))
  end

let trace_iterations g (result : Batsched.Iterate.result) =
  List.iter
    (fun (it : Batsched.Iterate.iteration) ->
      Printf.printf "iteration %d: min sigma %.1f\n" it.index it.min_sigma;
      List.iter
        (fun (w : Batsched.Window.window_result) ->
          Printf.printf "  window %d:%d  sigma %.1f  Delta %.2f\n"
            (w.window_start + 1) (Graph.num_points g) w.sigma w.finish)
        it.windows.Batsched.Window.per_window)
    result.iterations

(* Auto-detect the on-disk format: TGFF-dialect files start their first
   significant line with '@'; otherwise the native textio format. *)
let load_graph path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let is_tgff =
    String.split_on_char '\n' text
    |> List.exists (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#' && l.[0] = '@')
  in
  if is_tgff then
    let doc = Tgff.of_string text in
    (doc.Tgff.graph, doc.Tgff.deadline)
  else (Textio.of_string text, None)

let run_file path deadline algo beta seed iterations chart polish verbose
    stats trace_out dot_out =
  if verbose then Batsched_obs.Log.set_level Batsched_obs.Log.Debug;
  (* Work counters are always on; an active sink additionally records
     phase span timers for --stats and --trace. *)
  let obs =
    if stats || trace_out <> None then Batsched_obs.Sink.create ()
    else Batsched_obs.Sink.noop
  in
  match
    (try Ok (load_graph path) with
    | Textio.Parse_error { line; message }
    | Tgff.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message)
    | Sys_error msg -> Error msg)
  with
  | Error msg -> Error msg
  | Ok (g, embedded_deadline) -> (
      (match dot_out with
      | Some out ->
          let oc = open_out out in
          output_string oc (Textio.to_dot g);
          close_out oc
      | None -> ());
      let model = Batsched_battery.Rakhmatov.model ~beta () in
      let rng = Batsched_numeric.Rng.create seed in
      Printf.printf "graph %s: %d tasks, %d design points, %d edges\n%!"
        (Graph.label g) (Graph.num_tasks g) (Graph.num_points g)
        (Graph.num_edges g);
      match
        match (deadline, embedded_deadline) with
        | Some d, _ -> Ok d
        | None, Some d ->
            Printf.printf "deadline %.2f min (from the file)\n" d;
            Ok d
        | None, None ->
            Error "no deadline: pass --deadline (the file embeds none)"
      with
      | Error msg -> Error msg
      | Ok deadline -> (
      try
        (match algo with
        | "iterative" | "iterative-ms" ->
            let cfg = Batsched.Config.make ~model ~obs ~deadline () in
            let result =
              if algo = "iterative-ms" then
                Batsched.Iterate.run_multistart ~rng ~starts:8 cfg g
              else Batsched.Iterate.run cfg g
            in
            if iterations then trace_iterations g result;
            let result =
              if polish then Batsched.Polish.polish cfg g result else result
            in
            report ~chart g
              (Solution.of_schedule ~model g result.Batsched.Iterate.schedule)
        | "branch-bound" ->
            let outcome = Branch_bound.run ~model g ~deadline in
            if not outcome.Branch_bound.optimal then
              Printf.printf "(node budget hit: result may be suboptimal)\n";
            report ~chart g outcome.Branch_bound.solution
        | "dp-energy" -> report ~chart g (Dp_energy.run ~model g ~deadline)
        | "chowdhury" -> report ~chart g (Chowdhury.run ~model g ~deadline)
        | "annealing" -> report ~chart g (Annealing.run ~rng ~model g ~deadline)
        | "random" -> report ~chart g (Random_search.run ~rng ~model g ~deadline)
        | a -> failwith ("unknown algorithm: " ^ a));
        if stats then begin
          print_newline ();
          print_string (Batsched_obs.Report.to_string obs)
        end;
        (match trace_out with
        | Some out ->
            Batsched_obs.Trace.write obs out;
            Printf.printf
              "wrote trace to %s (load it in chrome://tracing or \
               ui.perfetto.dev)\n"
              out
        | None -> ());
        Ok ()
      with
      | Batsched.Config.Deadline_unmeetable | Dp_energy.Infeasible
      | Chowdhury.Infeasible | Annealing.No_feasible_state
      | Branch_bound.Infeasible | Random_search.No_feasible_sample ->
          Error
            (Printf.sprintf
               "deadline %.2f min cannot be met (all-fastest serial time %.2f)"
               deadline (fst (Analysis.serial_time_bounds g)))
      | Failure msg -> Error msg))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Task-graph file (see lib/taskgraph/textio.mli for the format).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "d"; "deadline" ] ~docv:"MIN"
           ~doc:"Deadline in minutes (defaults to a TGFF HARD_DEADLINE).")

let algo_arg =
  Arg.(value & opt string "iterative"
       & info [ "a"; "algo" ] ~docv:"ALGO"
           ~doc:"One of iterative, iterative-ms, dp-energy, chowdhury, \
                 annealing, branch-bound, random.")

let beta_arg =
  Arg.(value & opt float Batsched_battery.Rakhmatov.default_beta
       & info [ "beta" ] ~docv:"B" ~doc:"Battery diffusion parameter.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let iterations_arg =
  Arg.(value & flag
       & info [ "iterations" ] ~doc:"Print per-iteration details.")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print a work-counter table and per-phase timing report.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file of the run \
                 (chrome://tracing / Perfetto).")

let chart_arg =
  Arg.(value & flag
       & info [ "chart" ] ~doc:"Draw an ASCII Gantt strip and current chart.")

let polish_arg =
  Arg.(value & flag
       & info [ "polish" ]
           ~doc:"Apply adjacent-swap local search after the iterative run.")

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log per-iteration progress (debug).")

let dot_arg =
  Arg.(value & opt (some string) None
       & info [ "dot" ] ~docv:"OUT" ~doc:"Also write a Graphviz rendering.")

let cmd =
  let doc = "battery-aware task sequencing and design-point assignment" in
  let term =
    Term.(
      const
        (fun file deadline algo beta seed iterations chart polish verbose
             stats trace dot ->
          match
            run_file file deadline algo beta seed iterations chart polish
              verbose stats trace dot
          with
          | Ok () -> `Ok ()
          | Error msg -> `Error (false, msg))
      $ file_arg $ deadline_arg $ algo_arg $ beta_arg $ seed_arg
      $ iterations_arg $ chart_arg $ polish_arg $ verbose_arg $ stats_arg
      $ trace_arg $ dot_arg)
  in
  Cmd.v (Cmd.info "basched" ~doc) (Term.ret term)

let () = exit (Cmd.eval cmd)
