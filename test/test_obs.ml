(* Tests for the observability layer: the central guarantee is that
   instrumentation never changes the computation — an active sink and
   the work counters must leave schedules and sigma bit-identical to an
   uninstrumented run, at pool size 1 and N.  Plus: the Chrome trace
   export is well-formed JSON with properly nested spans, counters are
   deterministic, and the Log facade filters by level. *)

open Batsched_taskgraph
open Batsched_sched
module Sink = Batsched_obs.Sink
module Trace = Batsched_obs.Trace
module Report = Batsched_obs.Report
module Log = Batsched_obs.Log
module Histogram = Batsched_obs.Histogram
module Events = Batsched_obs.Events
module Probe = Batsched_numeric.Probe

let parallel_pool = Batsched_numeric.Pool.create 4

let run_multistart ?(pool = Batsched_numeric.Pool.sequential)
    ?(obs = Sink.noop) ?(events = Events.noop) g ~deadline =
  let cfg = Batsched.Config.make ~pool ~obs ~events ~deadline () in
  Batsched.Iterate.run_multistart
    ~rng:(Batsched_numeric.Rng.create 11) ~starts:6 cfg g

(* Run [f] with the full telemetry stack up: histogram registry on and
   a live JSONL event stream to a temp file.  Hands [f] the events
   value and afterwards the parsed records; everything is torn back
   down whatever [f] does. *)
let with_full_telemetry f =
  let path = Filename.temp_file "batsched_events" ".jsonl" in
  Histogram.reset ();
  Histogram.enable ();
  Fun.protect
    ~finally:(fun () ->
      Histogram.disable ();
      Sys.remove path)
    (fun () ->
      let events = Events.create path in
      let result =
        Fun.protect ~finally:(fun () -> Events.close events)
          (fun () -> f events)
      in
      (result, Batsched_obs.Json.of_jsonl_file path))

let same_result name (a : Batsched.Iterate.result)
    (b : Batsched.Iterate.result) =
  Alcotest.(check (list int))
    (name ^ " sequence") a.Batsched.Iterate.schedule.Schedule.sequence
    b.Batsched.Iterate.schedule.Schedule.sequence;
  Alcotest.(check (list int))
    (name ^ " assignment")
    (Assignment.to_list a.Batsched.Iterate.schedule.Schedule.assignment)
    (Assignment.to_list b.Batsched.Iterate.schedule.Schedule.assignment);
  Alcotest.(check bool) (name ^ " sigma bit-identical") true
    (Float.equal a.Batsched.Iterate.sigma b.Batsched.Iterate.sigma)

let published_cases =
  (Instances.g3, Instances.g3_deadline)
  :: List.map (fun d -> (Instances.g2, d)) Instances.g2_deadlines

(* --- instrumentation does not perturb results --- *)

let test_active_sink_identical_sequential () =
  List.iter
    (fun (g, deadline) ->
      let plain = run_multistart g ~deadline in
      let traced = run_multistart ~obs:(Sink.create ()) g ~deadline in
      same_result (Graph.label g ^ " seq") plain traced)
    published_cases

let test_active_sink_identical_parallel () =
  List.iter
    (fun (g, deadline) ->
      let plain = run_multistart ~pool:parallel_pool g ~deadline in
      let traced =
        run_multistart ~pool:parallel_pool ~obs:(Sink.create ()) g ~deadline
      in
      same_result (Graph.label g ^ " par") plain traced)
    published_cases

(* the whole stack at once — sink spans, histogram registry, event
   stream — against a bare sequential run *)
let test_full_telemetry_identical () =
  List.iter
    (fun (g, deadline) ->
      let plain = run_multistart g ~deadline in
      let traced, _records =
        with_full_telemetry (fun events ->
            run_multistart ~pool:parallel_pool ~obs:(Sink.create ()) ~events g
              ~deadline)
      in
      same_result (Graph.label g ^ " full telemetry") plain traced)
    published_cases

let gen_case =
  QCheck.(map
            (fun (seed, slack10) ->
              let rng = Batsched_numeric.Rng.create seed in
              let spec =
                { Generators.default_spec with Generators.num_points = 4 }
              in
              let g = Generators.fork_join ~rng ~spec ~widths:[ 2; 3 ] in
              let slack = 0.05 +. (0.9 *. float_of_int slack10 /. 10.0) in
              (g, Generators.feasible_deadline g ~slack))
            (pair (int_bound 10_000) (int_bound 10)))

let prop_instrumented_matches_uninstrumented =
  QCheck.Test.make ~count:25
    ~name:
      "sink + events + histograms on a parallel pool bit-identical to noop \
       sequential"
    gen_case (fun (g, deadline) ->
      let plain = run_multistart g ~deadline in
      let traced, _ =
        with_full_telemetry (fun events ->
            run_multistart ~pool:parallel_pool ~obs:(Sink.create ()) ~events g
              ~deadline)
      in
      plain.Batsched.Iterate.schedule.Schedule.sequence
      = traced.Batsched.Iterate.schedule.Schedule.sequence
      && Assignment.equal
           plain.Batsched.Iterate.schedule.Schedule.assignment
           traced.Batsched.Iterate.schedule.Schedule.assignment
      && Float.equal plain.Batsched.Iterate.sigma
           traced.Batsched.Iterate.sigma)

(* --- counter determinism ---

   The memo caches persist across runs and are per-domain, so hit/miss
   splits depend on cache warmth and worker placement; the F-memo sits
   entirely behind the contribution cache, so even its lookup total
   varies.  The deterministic quantities are the pure work counters and
   the top-level contribution lookup total (hits + misses). *)

let invariant_snapshot () =
  let c = Probe.totals () in
  [ ("sigma_evals", c.Probe.sigma_evals);
    ("dpf_steps", c.Probe.dpf_steps);
    ("window_evals", c.Probe.window_evals);
    ("choose_calls", c.Probe.choose_calls);
    ("iterations", c.Probe.iterations);
    ("pool_tasks", c.Probe.pool_tasks);
    ("contrib_lookups", c.Probe.contrib_hits + c.Probe.contrib_misses) ]

let test_counters_repeatable () =
  let snap () =
    Probe.reset ();
    ignore (run_multistart Instances.g2 ~deadline:75.0);
    invariant_snapshot ()
  in
  Alcotest.(check (list (pair string int))) "identical totals twice"
    (snap ()) (snap ())

let test_counters_pool_size_invariant () =
  let snap pool =
    Probe.reset ();
    ignore (run_multistart ~pool Instances.g3 ~deadline:Instances.g3_deadline);
    invariant_snapshot ()
  in
  Alcotest.(check (list (pair string int))) "pool 1 = pool 4"
    (snap Batsched_numeric.Pool.sequential) (snap parallel_pool)

let test_counters_count_real_work () =
  Probe.reset ();
  ignore (run_multistart Instances.g2 ~deadline:75.0);
  let c = Probe.totals () in
  Alcotest.(check bool) "sigma evals happened" true (c.Probe.sigma_evals > 0);
  Alcotest.(check bool) "iterations happened" true (c.Probe.iterations > 0);
  Alcotest.(check bool) "windows evaluated" true (c.Probe.window_evals > 0);
  Alcotest.(check bool) "multistart mapped tasks" true (c.Probe.pool_tasks >= 6)

(* --- trace export validity ---

   Checked with the library's own minimal JSON reader (lib/obs/json.ml,
   promoted from the recursive-descent parser that used to live inline
   here). *)

open Batsched_obs.Json

let parse_json = parse

let traced_run () =
  let obs = Sink.create () in
  ignore
    (run_multistart ~pool:parallel_pool ~obs Instances.g3
       ~deadline:Instances.g3_deadline);
  obs

let trace_events obs =
  match field "traceEvents" (parse_json (Trace.to_string obs)) with
  | Some (Arr events) -> events
  | _ -> Alcotest.fail "traceEvents missing or not an array"

let test_trace_wellformed () =
  let events = traced_run () |> trace_events in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  List.iter
    (fun e ->
      let str name =
        match field name e with
        | Some (Str s) -> s
        | _ -> Alcotest.fail (name ^ " missing or not a string")
      in
      let num name =
        match field name e with
        | Some (Num f) -> f
        | _ -> Alcotest.fail (name ^ " missing or not a number")
      in
      ignore (num "pid");
      ignore (num "tid");
      ignore (str "name");
      match str "ph" with
      | "X" ->
          Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.0);
          Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.0)
      | "M" -> ()
      | ph -> Alcotest.fail ("unexpected phase " ^ ph))
    events

let test_trace_noop_valid () =
  let events = trace_events Sink.noop in
  List.iter
    (fun e ->
      match field "ph" e with
      | Some (Str "M") -> ()
      | _ -> Alcotest.fail "noop trace should hold metadata only")
    events

let test_trace_has_expected_phases () =
  let events = traced_run () |> trace_events in
  let names =
    List.filter_map
      (fun e ->
        match (field "ph" e, field "name" e) with
        | Some (Str "X"), Some (Str n) -> Some n
        | _ -> None)
      events
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " span present") true
        (List.mem expected names))
    [ "start"; "iteration"; "window"; "choose" ]

let test_spans_nest () =
  (* on each track, two spans either do not overlap or one contains the
     other: phase timers follow the call structure *)
  let spans = Sink.spans (traced_run ()) in
  let open Int64 in
  let contains (a : Sink.span) (b : Sink.span) =
    a.Sink.start_ns <= b.Sink.start_ns
    && add b.Sink.start_ns b.Sink.dur_ns <= add a.Sink.start_ns a.Sink.dur_ns
  in
  let disjoint (a : Sink.span) (b : Sink.span) =
    add a.Sink.start_ns a.Sink.dur_ns <= b.Sink.start_ns
    || add b.Sink.start_ns b.Sink.dur_ns <= a.Sink.start_ns
  in
  List.iter
    (fun (a : Sink.span) ->
      List.iter
        (fun (b : Sink.span) ->
          if a != b && a.Sink.track = b.Sink.track then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s nest or disjoint" a.Sink.name b.Sink.name)
              true
              (contains a b || contains b a || disjoint a b))
        spans)
    spans

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_report_lists_counters () =
  Probe.reset ();
  let obs = Sink.create () in
  ignore (run_multistart ~obs Instances.g2 ~deadline:75.0);
  let report = Report.to_string obs in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " in report") true
        (contains_substring report name))
    Probe.fields

(* --- the Log facade --- *)

let with_captured_log level f =
  let lines = ref [] in
  Log.set_output (fun line -> lines := line :: !lines);
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_level Log.Quiet;
      Log.set_output (fun line ->
        output_string stderr (line ^ "\n");
        flush stderr))
    (fun () -> f ());
  List.rev !lines

let test_log_quiet_by_default () =
  Alcotest.(check bool) "quiet" true (Log.level () = Log.Quiet);
  let lines =
    with_captured_log Log.Quiet (fun () ->
        Log.err (fun () -> "e");
        Log.debug (fun () -> "d"))
  in
  Alcotest.(check (list string)) "nothing emitted" [] lines

let test_log_level_filters () =
  let lines =
    with_captured_log Log.Warn (fun () ->
        Log.err (fun () -> "an error");
        Log.warn (fun () -> "a warning");
        Log.info (fun () -> "some info");
        Log.debug (fun () -> "noise"))
  in
  Alcotest.(check (list string)) "err+warn only"
    [ "basched: [error] an error"; "basched: [warn] a warning" ]
    lines

let test_log_disabled_thunk_not_forced () =
  let forced = ref false in
  let _ =
    with_captured_log Log.Error (fun () ->
        Log.debug (fun () -> forced := true; "expensive"))
  in
  Alcotest.(check bool) "thunk skipped" false !forced

let test_log_of_string () =
  Alcotest.(check bool) "debug" true (Log.of_string "debug" = Some Log.Debug);
  Alcotest.(check bool) "quiet" true (Log.of_string "quiet" = Some Log.Quiet);
  Alcotest.(check bool) "junk" true (Log.of_string "chatty" = None)

(* --- histograms --- *)

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.record h) values;
  h

(* bucketed quantiles against the exact order statistics: the documented
   accuracy is half a bucket (~3% relative), plus a little slack for the
   rank-definition difference against [Stats.percentile]'s
   interpolation *)
let test_histogram_quantile_matches_stats () =
  let rng = Batsched_numeric.Rng.create 99 in
  let samples =
    List.init 1000 (fun _ ->
        Float.exp (Batsched_numeric.Rng.float rng 10.0))
  in
  let h = hist_of samples in
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  List.iter
    (fun p ->
      let want = Batsched_numeric.Stats.percentile p samples in
      let got = Histogram.quantile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f: %g within 7%% of %g" p got want)
        true
        (Float.abs (got -. want) <= 0.07 *. want))
    [ 10.0; 50.0; 90.0; 99.0 ];
  let mn, mx = (Histogram.min_value h, Histogram.max_value h) in
  Alcotest.(check bool) "p0 = exact min" true
    (Float.equal (Histogram.quantile h 0.0) mn);
  Alcotest.(check bool) "p100 = exact max" true
    (Float.equal (Histogram.quantile h 100.0) mx)

(* bucket contents and counts are integers, so merge determinism is
   exact; the running [sum] is a float accumulation whose association
   depends on the shard split, so it only agrees to rounding *)
let buckets_equal a b =
  Histogram.count a = Histogram.count b
  && Histogram.nonzero_buckets a = Histogram.nonzero_buckets b
  && Float.abs (Histogram.sum a -. Histogram.sum b)
     <= 1e-9 *. (1.0 +. Float.abs (Histogram.sum a))

(* sharding observations across histograms and merging in any order
   reproduces the directly-built histogram bucket for bucket *)
let prop_histogram_merge_deterministic =
  QCheck.Test.make ~count:100
    ~name:"sharded merge = direct build, any merge order"
    QCheck.(pair (int_bound 3) (small_list (pair (int_bound 4) pos_float)))
    (fun (shards, tagged) ->
      let k = shards + 1 in
      let direct = hist_of (List.map snd tagged) in
      let parts = Array.init k (fun _ -> Histogram.create ()) in
      List.iter
        (fun (tag, v) -> Histogram.record parts.(tag mod k) v)
        tagged;
      let forward = Histogram.create () in
      Array.iter (fun p -> Histogram.merge ~into:forward p) parts;
      let backward = Histogram.create () in
      for i = k - 1 downto 0 do
        Histogram.merge ~into:backward parts.(i)
      done;
      buckets_equal direct forward && buckets_equal forward backward)

(* the named registry: per-domain shards flushed at pool joins must
   yield a merged table independent of the pool size *)
let test_histogram_registry_pool_invariant () =
  let run pool =
    Histogram.reset ();
    Histogram.enable ();
    Fun.protect ~finally:Histogram.disable (fun () ->
        ignore
          (Batsched_numeric.Pool.map_list pool
             (fun i ->
               for j = 1 to 50 do
                 Histogram.observe "test/registry"
                   (float_of_int (((i * 53) + j) mod 97));
                 Histogram.observe "test/other" (float_of_int (i + j))
               done;
               i)
             (List.init 16 Fun.id));
        Histogram.snapshot ())
  in
  (* the executor's own telemetry ("pool/occupancy") only exists when a
     region fans out, so the invariant is over the workload's metrics *)
  let own (name, _) = not (String.length name >= 5 && String.sub name 0 5 = "pool/") in
  let a = List.filter own (run Batsched_numeric.Pool.sequential) in
  let b = List.filter own (run parallel_pool) in
  Alcotest.(check (list string))
    "same metric names" (List.map fst a) (List.map fst b);
  List.iter2
    (fun (name, ha) (_, hb) ->
      Alcotest.(check bool) (name ^ " buckets identical") true
        (buckets_equal ha hb))
    a b

let test_histogram_disabled_noop () =
  Histogram.reset ();
  Histogram.observe "test/ghost" 1.0;
  Alcotest.(check (list string)) "nothing recorded while disabled" []
    (List.map fst (Histogram.snapshot ()))

(* --- events stream --- *)

let test_events_jsonl_wellformed () =
  let _, records =
    with_full_telemetry (fun events ->
        run_multistart ~events Instances.g2 ~deadline:75.0)
  in
  Alcotest.(check bool) "has records" true (records <> []);
  let last_t = ref (-1.0) in
  List.iter
    (fun r ->
      (match (str_field "kind" r, num_field "t_ns" r) with
      | Some _, Some t -> Alcotest.(check bool) "t_ns >= 0" true (t >= 0.0)
      | _ -> Alcotest.fail "record missing kind or t_ns");
      (* single-writer sequential run: timestamps are monotone *)
      let t = Option.get (num_field "t_ns" r) in
      Alcotest.(check bool) "t_ns monotone" true (t >= !last_t);
      last_t := t)
    records;
  let kinds = List.filter_map (str_field "kind") records in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem k kinds))
    [ "choose"; "iteration"; "trial"; "multistart_done" ]

let test_events_annealing_stream () =
  let _, records =
    with_full_telemetry (fun events ->
        let rng = Batsched_numeric.Rng.create 11 in
        let model = Batsched_battery.Rakhmatov.model () in
        ignore
          (Batsched_baselines.Annealing.run ~events ~rng ~model Instances.g2
             ~deadline:75.0))
  in
  let kinds = List.filter_map (str_field "kind") records in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem k kinds))
    [ "anneal_start"; "anneal_level"; "anneal_done" ];
  (* acceptance rates are rates *)
  List.iter
    (fun r ->
      if str_field "kind" r = Some "anneal_level" then
        match num_field "accept_rate" r with
        | Some a ->
            Alcotest.(check bool) "accept_rate in [0,1]" true
              (a >= 0.0 && a <= 1.0)
        | None -> Alcotest.fail "anneal_level missing accept_rate")
    records

let test_events_noop_inactive () =
  Alcotest.(check bool) "noop inactive" false (Events.is_active Events.noop)

(* --- OpenMetrics exposition lint --- *)

let metric_line_ok line =
  (* NAME{label="value",...} VALUE  — value is the last space-separated
     token and must parse as a float; the name part must use the
     Prometheus alphabet *)
  match String.rindex_opt line ' ' with
  | None -> false
  | Some i ->
      let value = String.sub line (i + 1) (String.length line - i - 1) in
      let name_part = String.sub line 0 i in
      let name =
        match String.index_opt name_part '{' with
        | Some j ->
            if j > 0 && name_part.[String.length name_part - 1] = '}' then
              String.sub name_part 0 j
            else ""
        | None -> name_part
      in
      let name_ok =
        name <> ""
        && String.for_all
             (function
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
               | _ -> false)
             name
      in
      name_ok && float_of_string_opt value <> None

let test_openmetrics_lint () =
  Probe.reset ();
  Histogram.reset ();
  Histogram.enable ();
  let text =
    Fun.protect ~finally:Histogram.disable (fun () ->
        ignore (run_multistart ~obs:(Sink.create ()) Instances.g2 ~deadline:75.0);
        Batsched_obs.Openmetrics.to_string ())
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "nonempty" true (lines <> []);
  Alcotest.(check string) "terminated by # EOF" "# EOF"
    (List.nth lines (List.length lines - 1));
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        Alcotest.(check bool) ("well-formed sample: " ^ line) true
          (metric_line_ok line))
    lines;
  Alcotest.(check bool) "counters exported" true
    (List.exists
       (fun l ->
         String.length l >= 22
         && String.sub l 0 22 = "batsched_counter_total")
       lines);
  (* histogram families: cumulative buckets ending at le="+Inf" = count *)
  let bucket_suffix = "_bucket{le=\"" in
  let contains_at l sub i =
    i + String.length sub <= String.length l
    && String.sub l i (String.length sub) = sub
  in
  let bucket_lines =
    List.filter
      (fun l ->
        let rec scan i =
          i + String.length bucket_suffix <= String.length l
          && (contains_at l bucket_suffix i || scan (i + 1))
        in
        String.length l > 0 && l.[0] <> '#' && scan 0)
      lines
  in
  Alcotest.(check bool) "histogram buckets exported" true (bucket_lines <> []);
  (* per family, counts never decrease and the family ends at +Inf *)
  let family_of l =
    match String.index_opt l '{' with
    | Some j -> String.sub l 0 j
    | None -> l
  in
  let value_of l =
    match String.rindex_opt l ' ' with
    | Some i ->
        float_of_string (String.sub l (i + 1) (String.length l - i - 1))
    | None -> Float.nan
  in
  let rec group = function
    | [] -> []
    | l :: _ as ls ->
        let fam = family_of l in
        let mine, rest = List.partition (fun l' -> family_of l' = fam) ls in
        (fam, mine) :: group rest
  in
  List.iter
    (fun (fam, ls) ->
      let counts = List.map value_of ls in
      let sorted = List.sort compare counts in
      Alcotest.(check bool) (fam ^ " cumulative") true (counts = sorted);
      let last_bucket = List.nth ls (List.length ls - 1) in
      let has_inf =
        let inf = "{le=\"+Inf\"}" in
        let rec scan i =
          i + String.length inf <= String.length last_bucket
          && (contains_at last_bucket inf i || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) (fam ^ " ends at +Inf") true has_inf)
    (group bucket_lines)

(* --- bench --compare classification --- *)

module BC = Batsched_obs.Bench_compare

let bc_row ?(r2 = 0.99) ?(low = false) ?first ?(counters = []) name ns =
  { BC.name;
    ns_per_run = ns;
    r_square = r2;
    low_confidence = low;
    ns_per_run_first = first;
    counters }

let check_verdict msg want (c : BC.comparison) =
  Alcotest.(check string) msg (BC.verdict_string want)
    (BC.verdict_string c.BC.verdict)

(* r2 = 0.99 on both sides gives threshold 0.10 + 0.5*(0.1+0.1) = 0.20 *)
let test_compare_classify () =
  check_verdict "halved = improved" BC.Improved
    (BC.classify_pair ~scenario:"x" (bc_row "x" 1000.0) (bc_row "x" 500.0));
  check_verdict "identical = flat" BC.Flat
    (BC.classify_pair ~scenario:"x" (bc_row "x" 1000.0) (bc_row "x" 1000.0));
  check_verdict "+10% inside threshold = flat" BC.Flat
    (BC.classify_pair ~scenario:"x" (bc_row "x" 1000.0) (bc_row "x" 1100.0));
  check_verdict "doubled = regressed" BC.Regressed
    (BC.classify_pair ~scenario:"x" (bc_row "x" 1000.0) (bc_row "x" 2000.0));
  check_verdict "poor fit never gates" BC.Low_confidence
    (BC.classify_pair ~scenario:"x"
       (bc_row ~r2:0.2 "x" 1000.0)
       (bc_row "x" 2000.0));
  check_verdict "low-confidence tag never gates" BC.Low_confidence
    (BC.classify_pair ~scenario:"x" (bc_row "x" 1000.0)
       (bc_row ~low:true "x" 2000.0));
  (* +25% would regress at threshold 0.20, but the rerun guard saw the
     first estimate 20% above the final one: dispersion widens the
     threshold to 0.40 *)
  check_verdict "rerun dispersion widens the threshold" BC.Flat
    (BC.classify_pair ~scenario:"x" (bc_row "x" 1000.0)
       (bc_row ~first:1500.0 "x" 1250.0))

let test_compare_rows_join () =
  let old_rows = [ bc_row "a" 1000.0; bc_row "gone" 5.0 ] in
  let new_rows =
    [ bc_row "batsched/a" 500.0;
      bc_row "fresh-delta/x" 100.0;
      bc_row "fresh-reference/x" 1000.0 ]
  in
  let r = BC.compare_rows old_rows new_rows in
  Alcotest.(check (list string)) "joined on bare name" [ "a" ]
    (List.map (fun c -> c.BC.scenario) r.BC.joined);
  check_verdict "joined improved" BC.Improved (List.hd r.BC.joined);
  Alcotest.(check (list string)) "removed" [ "gone" ] r.BC.removed;
  Alcotest.(check bool) "reference twin paired" true
    (List.exists
       (fun c -> c.BC.new_ns = 100.0 && c.BC.old_ns = 1000.0)
       r.BC.pairs);
  Alcotest.(check bool) "no confident regression" false
    (BC.has_confident_regression r)

let test_compare_regression_gate () =
  let gate old_r2 =
    BC.has_confident_regression
      (BC.compare_rows
         [ bc_row ~r2:old_r2 "a" 1000.0 ]
         [ bc_row "a" 3000.0 ])
  in
  Alcotest.(check bool) "confident regression trips the gate" true
    (gate 0.99);
  Alcotest.(check bool) "noisy old row only warns" false (gate 0.2)

let test_compare_normalize () =
  let old_rows = [ bc_row "a" 1000.0; bc_row "b" 2000.0; bc_row "c" 10.0 ] in
  let new_rows = [ bc_row "a" 2000.0; bc_row "b" 4000.0; bc_row "c" 20.0 ] in
  let raw = BC.compare_rows old_rows new_rows in
  List.iter (check_verdict "raw: doubled = regressed" BC.Regressed)
    raw.BC.joined;
  let normed = BC.compare_rows ~normalize:true old_rows new_rows in
  (match normed.BC.norm_factor with
  | Some f -> Alcotest.(check bool) "median ratio divided out" true
                (Float.abs (f -. 2.0) < 1e-9)
  | None -> Alcotest.fail "norm_factor missing");
  List.iter
    (check_verdict "normalized: uniform slowdown = flat" BC.Flat)
    normed.BC.joined

(* the committed snapshots must reproduce the PR 1-6 speedups — the
   same invariant the CI gate relies on *)
let test_compare_committed_snapshots () =
  let old_path = "../BENCH_2026-08-06_seed.json" in
  let new_path = "../BENCH_2026-08-08_models.json" in
  if not (Sys.file_exists old_path && Sys.file_exists new_path) then ()
  else begin
    let r = BC.compare_files old_path new_path in
    let verdict_of scenario =
      match
        List.find_opt
          (fun c -> c.BC.scenario = scenario)
          (r.BC.joined @ r.BC.pairs)
      with
      | Some c -> BC.verdict_string c.BC.verdict
      | None -> "missing"
    in
    Alcotest.(check string) "iterate-n26 improved" "improved"
      (verdict_of "scaling/iterate-n26");
    Alcotest.(check bool) "choose-n64 pair improved" true
      (List.exists
         (fun c ->
           c.BC.verdict = BC.Improved
           && c.BC.new_ns < c.BC.old_ns
           &&
           let s = c.BC.scenario in
           String.length s >= 11 && String.sub s 0 11 = "choose-n64/")
         r.BC.pairs);
    Alcotest.(check bool) "no confident regression" false
      (BC.has_confident_regression r)
  end

(* --- torn-tail tolerant tailer --- *)

module Tail = Batsched_obs.Tail
module Ledger = Batsched_obs.Ledger
module Profile = Batsched_obs.Profile
module Dash = Batsched_obs.Dash

(* one multistart event stream rendered to bytes: the shared input for
   the tailer and dashboard tests *)
let events_bytes =
  lazy
    (let path = Filename.temp_file "batsched_tailsrc" ".jsonl" in
     Fun.protect
       ~finally:(fun () -> Sys.remove path)
       (fun () ->
         let events = Events.create path in
         Fun.protect
           ~finally:(fun () -> Events.close events)
           (fun () ->
             ignore (run_multistart ~events Instances.g2 ~deadline:75.0));
         In_channel.with_open_bin path In_channel.input_all))

(* cut [s] into chunks of the given sizes (cycling) and feed them all *)
let chunked_feed tail sizes s =
  let sizes = match sizes with [] -> [ 1 ] | _ -> sizes in
  let n = String.length s in
  let records = ref [] in
  let rec go pos = function
    | [] -> go pos sizes
    | size :: rest ->
        if pos < n then begin
          let len = min size (n - pos) in
          records :=
            List.rev_append (Tail.feed tail (String.sub s pos len)) !records;
          go (pos + len) rest
        end
  in
  if n > 0 then go 0 sizes;
  records := List.rev_append (Tail.finish tail) !records;
  List.rev !records

let prop_tail_chunking_invariant =
  QCheck.Test.make ~count:50
    ~name:"tailer: chunked feed equals one-gulp feed"
    QCheck.(small_list (int_range 1 97))
    (fun sizes ->
      let s = Lazy.force events_bytes in
      let whole = Tail.create () in
      let fed = Tail.feed whole s in
      let w = fed @ Tail.finish whole in
      let chunked = Tail.create () in
      let c = chunked_feed chunked sizes s in
      w = c && Tail.bad whole = Tail.bad chunked)

(* every truncation point: the tailer recovers all complete lines,
   counts the torn tail (unless the cut landed exactly after a record's
   closing brace, which parses), and never raises *)
let test_tail_truncation_sweep () =
  let s = Lazy.force events_bytes in
  let n = String.length s in
  Alcotest.(check bool) "source nonempty" true (n > 0);
  (let t = Tail.create () in
   ignore (Tail.feed t s);
   ignore (Tail.finish t);
   Alcotest.(check int) "source parses clean" 0 (Tail.bad t));
  let cuts =
    List.filter (fun i -> i mod 101 = 0 || n - i <= 220) (List.init n Fun.id)
  in
  List.iter
    (fun cut ->
      let prefix = String.sub s 0 cut in
      let complete = ref 0 and last_nl = ref (-1) in
      String.iteri
        (fun i ch ->
          if ch = '\n' then begin
            incr complete;
            last_nl := i
          end)
        prefix;
      let partial =
        String.sub prefix (!last_nl + 1) (cut - !last_nl - 1)
      in
      let partial_parses =
        partial <> ""
        && match parse_json partial with _ -> true | exception _ -> false
      in
      let t = Tail.create () in
      let fed = Tail.feed t prefix in
      let records = fed @ Tail.finish t in
      Alcotest.(check int)
        (Printf.sprintf "cut at %d: records" cut)
        (!complete + if partial_parses then 1 else 0)
        (List.length records);
      Alcotest.(check int)
        (Printf.sprintf "cut at %d: torn count" cut)
        (if partial <> "" && not partial_parses then 1 else 0)
        (Tail.bad t))
    cuts

(* --- run ledger --- *)

let with_temp_ledger f =
  let dir = Filename.temp_file "batsched_ledger" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      (match Sys.readdir dir with
      | names ->
          Array.iter
            (fun name ->
              try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
            names
      | exception Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let ledger_spec ?(label = "annealing") () =
  { Ledger.tool = "test";
    label;
    instance = "g2";
    instance_hash = "abc";
    model = "rakhmatov";
    seed = 7;
    pool_size = 2;
    knobs = [ ("deadline", "75"); ("quote", "a\"b") ];
    wall_s = 0.25;
    sigma = Some 123.5;
    finish = Some 70.0;
    events_path = None;
    curve = [ (0.1, 10.0, 200.0); (0.2, 25.0, 123.5) ] }

let test_ledger_roundtrip () =
  with_temp_ledger @@ fun dir ->
  match Ledger.record ~dir (ledger_spec ()) with
  | Error e -> Alcotest.fail e
  | Ok id -> (
      let entries, skipped = Ledger.load dir in
      Alcotest.(check int) "no skips" 0 skipped;
      match entries with
      | [ e ] ->
          Alcotest.(check string) "id" id e.Ledger.id;
          Alcotest.(check int) "schema" Ledger.schema_version e.Ledger.schema;
          Alcotest.(check string) "label" "annealing" e.Ledger.e_label;
          Alcotest.(check string) "model" "rakhmatov" e.Ledger.e_model;
          Alcotest.(check int) "seed" 7 e.Ledger.e_seed;
          Alcotest.(check int) "pool size" 2 e.Ledger.e_pool_size;
          Alcotest.(check (option (float 1e-9))) "sigma" (Some 123.5)
            e.Ledger.e_sigma;
          Alcotest.(check (option (float 1e-9))) "finish" (Some 70.0)
            e.Ledger.e_finish;
          Alcotest.(check string) "escaped knob survives" "a\"b"
            (Option.value ~default:""
               (List.assoc_opt "quote" e.Ledger.e_knobs));
          Alcotest.(check int) "curve points" 2 (List.length e.Ledger.e_curve);
          Alcotest.(check bool) "counter snapshot present" true
            (e.Ledger.counters <> [])
      | l ->
          Alcotest.fail
            (Printf.sprintf "expected 1 entry, got %d" (List.length l)))

let test_ledger_find_and_gc () =
  with_temp_ledger @@ fun dir ->
  let ids =
    List.map
      (fun label ->
        match Ledger.record ~dir (ledger_spec ~label ()) with
        | Ok id -> id
        | Error e -> Alcotest.fail e)
      [ "a"; "b"; "c"; "d"; "e" ]
  in
  (match Ledger.find dir (List.nth ids 2) with
  | Ok e -> Alcotest.(check string) "exact id" "c" e.Ledger.e_label
  | Error e -> Alcotest.fail e);
  (match Ledger.find dir "run-" with
  | Ok _ -> Alcotest.fail "ambiguous prefix resolved"
  | Error msg ->
      Alcotest.(check bool) "ambiguity reported" true
        (contains_substring msg "ambiguous"));
  (match Ledger.find dir "no-such-run" with
  | Ok _ -> Alcotest.fail "missing id resolved"
  | Error msg ->
      Alcotest.(check bool) "no-match reported" true
        (contains_substring msg "no run"));
  Alcotest.(check int) "gc removes the oldest" 3 (Ledger.gc ~keep:2 dir);
  let entries, _ = Ledger.load dir in
  Alcotest.(check (list string)) "newest two survive, in order"
    [ "d"; "e" ]
    (List.map (fun e -> e.Ledger.e_label) entries)

(* --- anytime profiles --- *)

let profile_entry ?(id = "run-a") ?(pool = 1) ?(wall = 1.0) curve =
  { Ledger.id;
    schema = Ledger.schema_version;
    created = 0.0;
    e_tool = "test";
    e_label = "x";
    e_instance = "";
    e_instance_hash = "";
    e_model = "";
    e_seed = 0;
    e_pool_size = pool;
    git_rev = "none";
    e_wall_s = wall;
    e_sigma = None;
    e_finish = None;
    e_events_path = None;
    e_knobs = [];
    counters = [];
    e_curve = curve }

let test_profile_staircase () =
  let e =
    profile_entry [ (0.1, 10.0, 200.0); (0.4, 40.0, 150.0); (0.9, 90.0, 120.0) ]
  in
  match Profile.run_of_entry ~axis:`Evals e with
  | None -> Alcotest.fail "entry with a curve yielded no run"
  | Some run ->
      Alcotest.(check (option (float 1e-9))) "before first point" None
        (Profile.best_at run 5.0);
      Alcotest.(check (option (float 1e-9))) "at first point" (Some 200.0)
        (Profile.best_at run 10.0);
      Alcotest.(check (option (float 1e-9))) "mid staircase" (Some 150.0)
        (Profile.best_at run 50.0);
      Alcotest.(check (option (float 1e-9))) "past the end" (Some 120.0)
        (Profile.best_at run 1000.0);
      Alcotest.(check (option (float 1e-9))) "hit 150" (Some 40.0)
        (Profile.hit_x run ~target:150.0);
      Alcotest.(check (option (float 1e-9))) "never hits 100" None
        (Profile.hit_x run ~target:100.0);
      Alcotest.(check (option (float 1e-9))) "single-run ERT" (Some 40.0)
        (Profile.ert [ run ] ~target:150.0);
      (* a run that never reaches the target charges its full budget *)
      let miss =
        Option.get
          (Profile.run_of_entry ~axis:`Evals
             (profile_entry [ (0.2, 20.0, 180.0) ]))
      in
      Alcotest.(check (option (float 1e-9)))
        "ERT charges failed runs' budgets" (Some 60.0)
        (Profile.ert [ run; miss ] ~target:150.0)

(* the evals axis is pool-size-invariant: the same search on a wider
   pool finishes earlier in wall time but visits the same points *)
let test_profile_evals_axis_pool_invariant () =
  let curve_seq = [ (0.4, 10.0, 200.0); (1.6, 40.0, 150.0) ] in
  let curve_par = List.map (fun (t, e, q) -> (t /. 4.0, e, q)) curve_seq in
  let a = profile_entry ~id:"run-seq" ~pool:1 ~wall:2.0 curve_seq in
  let b = profile_entry ~id:"run-par" ~pool:4 ~wall:0.5 curve_par in
  let ra = Option.get (Profile.run_of_entry ~axis:`Evals a) in
  let rb = Option.get (Profile.run_of_entry ~axis:`Evals b) in
  Alcotest.(check bool) "evals-axis runs identical" true
    (ra.Profile.pts = rb.Profile.pts
    && Float.equal ra.Profile.horizon rb.Profile.horizon);
  let ta = Option.get (Profile.run_of_entry ~axis:`Time a) in
  let tb = Option.get (Profile.run_of_entry ~axis:`Time b) in
  Alcotest.(check bool) "time-axis runs differ" false
    (ta.Profile.pts = tb.Profile.pts);
  (* and the rendered evals-axis report cannot tell the cohorts apart *)
  Alcotest.(check bool) "report deterministic" true
    (Profile.compare_to_string ~axis:`Evals ~name_a:"s" ~name_b:"p" [ a ]
       [ b ]
    = Profile.compare_to_string ~axis:`Evals ~name_a:"s" ~name_b:"p" [ a ]
        [ b ])

let test_profile_dominance () =
  let good i =
    profile_entry
      ~id:(Printf.sprintf "run-good%d" i)
      [ (0.1, 10.0, 150.0 +. float_of_int i); (0.5, 50.0, 100.0) ]
  in
  let bad i =
    profile_entry
      ~id:(Printf.sprintf "run-bad%d" i)
      [ (0.1, 10.0, 250.0 +. float_of_int i); (0.5, 50.0, 200.0) ]
  in
  let runs l =
    List.filter_map (Profile.run_of_entry ~axis:`Evals) l
  in
  let a = runs [ good 0; good 1; good 2 ] in
  let b = runs [ bad 0; bad 1; bad 2 ] in
  let v = Profile.dominance a b in
  Alcotest.(check bool) "uniformly better cohort wins every resample" true
    (v.Profile.a_wins = 1.0);
  Alcotest.(check bool) "scores ordered" true
    (v.Profile.score_a < v.Profile.score_b);
  let v' = Profile.dominance a b in
  Alcotest.(check bool) "fixed-seed bootstrap is deterministic" true
    (v.Profile.a_wins = v'.Profile.a_wins
    && Float.equal v.Profile.score_a v'.Profile.score_a)

(* curve extraction agrees between the in-memory stream (what the
   ledger stores) and the JSONL file (what basched report reads) *)
let test_profile_curve_extraction () =
  let snap, records =
    with_full_telemetry (fun events ->
        let rng = Batsched_numeric.Rng.create 11 in
        let model = Batsched_battery.Rakhmatov.model () in
        ignore
          (Batsched_baselines.Annealing.run ~events ~rng ~model Instances.g2
             ~deadline:75.0);
        Events.snapshot events)
  in
  let from_mem = Profile.curve_of_events snap in
  let from_file = Profile.curve_of_json records in
  Alcotest.(check bool) "curve nonempty" true (from_mem <> []);
  Alcotest.(check bool) "downsampled" true (List.length from_mem <= 96);
  Alcotest.(check int) "same length" (List.length from_mem)
    (List.length from_file);
  List.iter2
    (fun (t, e, q) (t', e', q') ->
      Alcotest.(check bool)
        (Printf.sprintf "same point: (%.17g,%.17g,%.17g) vs (%.17g,%.17g,%.17g)"
           t e q t' e' q')
        true
        (Float.abs (t -. t') <= 1e-9 && Float.equal e e' && Float.equal q q'))
    from_mem from_file;
  let rec monotone = function
    | (_, e1, q1) :: ((_, e2, q2) :: _ as rest) ->
        e1 <= e2 && q1 > q2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "evals ascend, sigma strictly improves" true
    (monotone from_mem)

(* --- dashboard: live tail equals replay --- *)

let dash_of_records records skipped =
  Dash.note_skipped (Dash.feed_all Dash.empty records) skipped

let prop_dash_live_equals_replay =
  QCheck.Test.make ~count:50
    ~name:"dash: chunked live tail and one-gulp replay summaries agree"
    QCheck.(small_list (int_range 1 97))
    (fun sizes ->
      let s = Lazy.force events_bytes in
      let whole = Tail.create () in
      let fed = Tail.feed whole s in
      let whole_records = fed @ Tail.finish whole in
      let replay = dash_of_records whole_records (Tail.bad whole) in
      let t = Tail.create () in
      let live_records = chunked_feed t sizes s in
      let live = dash_of_records live_records (Tail.bad t) in
      Dash.summary live = Dash.summary replay)

let test_dash_summary_content () =
  let s = Lazy.force events_bytes in
  let t = Tail.create () in
  let fed = Tail.feed t s in
  let records = fed @ Tail.finish t in
  let st = dash_of_records records (Tail.bad t) in
  let summary = Dash.summary st in
  Alcotest.(check bool) "names the searcher" true
    (contains_substring summary "multistart");
  Alcotest.(check bool) "counts the trials" true
    (contains_substring summary "trials 6 of 6");
  Alcotest.(check bool) "reports best sigma" true
    (contains_substring summary "best sigma");
  (* a torn tail surfaces in the summary *)
  let torn = String.sub s 0 (String.length s - 3) in
  let t2 = Tail.create () in
  let fed2 = Tail.feed t2 torn in
  let records2 = fed2 @ Tail.finish t2 in
  let st2 = dash_of_records records2 (Tail.bad t2) in
  Alcotest.(check bool) "torn tail reported" true
    (contains_substring (Dash.summary st2) "skipped 1 unparseable")

(* the ledger's in-memory event capture must be as invisible as the
   file stream: bit-identical schedules at pool 1 and 4 *)
let test_memory_events_identical () =
  List.iter
    (fun (g, deadline) ->
      let plain = run_multistart g ~deadline in
      List.iter
        (fun (plabel, pool) ->
          let events = Events.create_memory () in
          let traced = run_multistart ~pool ~events g ~deadline in
          same_result (Graph.label g ^ " memory events " ^ plabel) plain
            traced)
        [ ("pool1", Batsched_numeric.Pool.sequential);
          ("pool4", parallel_pool) ])
    published_cases

(* --- bench --compare work-profile diff --- *)

let test_compare_work_profile () =
  let old_rows =
    [ bc_row
        ~counters:
          [ ("sigma_evals", 100.0); ("choose_calls", 7.0);
            ("minor_words", 5000.0) ]
        "a" 1000.0 ]
  in
  let new_rows =
    [ bc_row
        ~counters:
          [ ("sigma_evals", 200.0); ("choose_calls", 7.0);
            ("minor_words", 5002.0) ]
        "a" 1000.0 ]
  in
  let r = BC.compare_rows old_rows new_rows in
  Alcotest.(check (list string))
    "doubled counter reported; unchanged and word-wobble skipped"
    [ "sigma_evals" ]
    (List.map (fun d -> d.BC.cd_counter) r.BC.work);
  Alcotest.(check bool) "informational only: gate unaffected" false
    (BC.has_confident_regression r);
  Alcotest.(check bool) "rendered as its own section" true
    (contains_substring (BC.to_string r) "work-profile changes");
  let bare = BC.compare_rows [ bc_row "a" 1000.0 ] [ bc_row "a" 1000.0 ] in
  Alcotest.(check int) "no counters, no section" 0 (List.length bare.BC.work);
  match
    BC.row_of_json
      (parse_json
         "{\"name\": \"batsched/x\", \"ns_per_run\": 5.0, \
          \"counters\": {\"sigma_evals\": 42}}")
  with
  | Some row ->
      Alcotest.(check (list (pair string (float 1e-9))))
        "counters parsed from the row object"
        [ ("sigma_evals", 42.0) ]
        row.BC.counters
  | None -> Alcotest.fail "row with counters failed to parse"

(* --- OpenMetrics escaping --- *)

let test_openmetrics_escaping () =
  Alcotest.(check string)
    "exactly backslash, quote and newline escape; tab passes through"
    "a\\\\b\\\"c\\nd\te"
    (Batsched_obs.Openmetrics.escape_label "a\\b\"c\nd\te");
  Alcotest.(check string) "plain values untouched" "anneal/level"
    (Batsched_obs.Openmetrics.escape_label "anneal/level");
  Alcotest.(check string) "metric names sanitized" "span_choose_1"
    (Batsched_obs.Openmetrics.sanitize "span/choose.1")

let test_openmetrics_sci_notation_buckets () =
  Probe.reset ();
  Histogram.reset ();
  Histogram.enable ();
  let text =
    Fun.protect ~finally:Histogram.disable (fun () ->
        List.iter (Histogram.observe "test/sci") [ 1e-7; 0.5; 3.0e12; 1e30 ];
        Batsched_obs.Openmetrics.to_string ())
  in
  let lines = String.split_on_char '\n' text in
  let le_of line =
    let marker = "le=\"" in
    let ml = String.length marker in
    let rec scan i =
      if i + ml > String.length line then None
      else if String.sub line i ml = marker then
        let j = String.index_from line (i + ml) '"' in
        Some (String.sub line (i + ml) (j - i - ml))
      else scan (i + 1)
    in
    scan 0
  in
  let les = List.filter_map le_of lines in
  Alcotest.(check bool) "extreme bounds render in scientific notation" true
    (List.exists
       (fun v -> String.contains v 'e' || String.contains v 'E')
       les);
  List.iter
    (fun v ->
      Alcotest.(check bool) ("le bound parses: " ^ v) true
        (v = "+Inf" || float_of_string_opt v <> None))
    les;
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        Alcotest.(check bool) ("well-formed sample: " ^ line) true
          (metric_line_ok line))
    lines

(* --- report robustness --- *)

let test_report_superseded_sink () =
  let a = Sink.create () in
  Sink.with_span a "alpha" (fun () -> ());
  (* supersede [a] before it flushed; its report must neither raise nor
     steal the successor's spans *)
  let b = Sink.create () in
  Sink.with_span b "beta" (fun () -> ());
  let ra = Report.to_string a in
  Alcotest.(check bool) "superseded report omits successor spans" false
    (contains_substring ra "beta");
  let rb = Report.to_string b in
  Alcotest.(check bool) "live sink keeps its spans" true
    (contains_substring rb "beta")

let test_report_renders_histograms () =
  Histogram.reset ();
  Histogram.enable ();
  let report =
    Fun.protect ~finally:Histogram.disable (fun () ->
        Histogram.observe "test/latency" 123.0;
        Report.to_string Sink.noop)
  in
  Alcotest.(check bool) "histogram table present" true
    (contains_substring report "test/latency")

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_instrumented_matches_uninstrumented;
      prop_histogram_merge_deterministic;
      prop_tail_chunking_invariant;
      prop_dash_live_equals_replay ]

let () =
  Alcotest.run "obs"
    [ ( "no perturbation",
        [ Alcotest.test_case "published instances, pool 1" `Quick
            test_active_sink_identical_sequential;
          Alcotest.test_case "published instances, pool 4" `Quick
            test_active_sink_identical_parallel;
          Alcotest.test_case "full telemetry stack" `Quick
            test_full_telemetry_identical ] );
      ( "counters",
        [ Alcotest.test_case "repeatable" `Quick test_counters_repeatable;
          Alcotest.test_case "pool-size invariant" `Quick
            test_counters_pool_size_invariant;
          Alcotest.test_case "count real work" `Quick
            test_counters_count_real_work ] );
      ( "trace",
        [ Alcotest.test_case "well-formed JSON" `Quick test_trace_wellformed;
          Alcotest.test_case "noop trace valid" `Quick test_trace_noop_valid;
          Alcotest.test_case "expected phases" `Quick
            test_trace_has_expected_phases;
          Alcotest.test_case "spans nest" `Quick test_spans_nest;
          Alcotest.test_case "report lists every counter" `Quick
            test_report_lists_counters ] );
      ( "log",
        [ Alcotest.test_case "quiet by default" `Quick
            test_log_quiet_by_default;
          Alcotest.test_case "level filters" `Quick test_log_level_filters;
          Alcotest.test_case "disabled thunk not forced" `Quick
            test_log_disabled_thunk_not_forced;
          Alcotest.test_case "of_string" `Quick test_log_of_string ] );
      ( "histograms",
        [ Alcotest.test_case "quantile vs Stats.percentile" `Quick
            test_histogram_quantile_matches_stats;
          Alcotest.test_case "registry pool-size invariant" `Quick
            test_histogram_registry_pool_invariant;
          Alcotest.test_case "disabled registry records nothing" `Quick
            test_histogram_disabled_noop ] );
      ( "events",
        [ Alcotest.test_case "JSONL well-formed" `Quick
            test_events_jsonl_wellformed;
          Alcotest.test_case "annealing stream" `Quick
            test_events_annealing_stream;
          Alcotest.test_case "noop inactive" `Quick test_events_noop_inactive
        ] );
      ( "openmetrics",
        [ Alcotest.test_case "exposition lint" `Quick test_openmetrics_lint;
          Alcotest.test_case "label escaping" `Quick
            test_openmetrics_escaping;
          Alcotest.test_case "scientific-notation bucket bounds" `Quick
            test_openmetrics_sci_notation_buckets ] );
      ( "tail",
        [ Alcotest.test_case "truncation sweep" `Quick
            test_tail_truncation_sweep ] );
      ( "ledger",
        [ Alcotest.test_case "roundtrip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "find and gc" `Quick test_ledger_find_and_gc ] );
      ( "profile",
        [ Alcotest.test_case "staircase lookups and ERT" `Quick
            test_profile_staircase;
          Alcotest.test_case "evals axis pool-size invariant" `Quick
            test_profile_evals_axis_pool_invariant;
          Alcotest.test_case "bootstrap dominance" `Quick
            test_profile_dominance;
          Alcotest.test_case "curve extraction memory = file" `Quick
            test_profile_curve_extraction ] );
      ( "dash",
        [ Alcotest.test_case "summary content" `Quick
            test_dash_summary_content;
          Alcotest.test_case "memory events bit-identical" `Quick
            test_memory_events_identical ] );
      ( "bench-compare",
        [ Alcotest.test_case "work-profile diff informational" `Quick
            test_compare_work_profile;
          Alcotest.test_case "classification" `Quick test_compare_classify;
          Alcotest.test_case "join, twins, gate" `Quick
            test_compare_rows_join;
          Alcotest.test_case "regression gate" `Quick
            test_compare_regression_gate;
          Alcotest.test_case "normalization" `Quick test_compare_normalize;
          Alcotest.test_case "committed snapshots" `Quick
            test_compare_committed_snapshots ] );
      ( "report",
        [ Alcotest.test_case "superseded sink safe" `Quick
            test_report_superseded_sink;
          Alcotest.test_case "renders histograms" `Quick
            test_report_renders_histograms ] );
      ("properties", qcheck_tests) ]
