(* Tests for the observability layer: the central guarantee is that
   instrumentation never changes the computation — an active sink and
   the work counters must leave schedules and sigma bit-identical to an
   uninstrumented run, at pool size 1 and N.  Plus: the Chrome trace
   export is well-formed JSON with properly nested spans, counters are
   deterministic, and the Log facade filters by level. *)

open Batsched_taskgraph
open Batsched_sched
module Sink = Batsched_obs.Sink
module Trace = Batsched_obs.Trace
module Report = Batsched_obs.Report
module Log = Batsched_obs.Log
module Probe = Batsched_numeric.Probe

let parallel_pool = Batsched_numeric.Pool.create 4

let run_multistart ?(pool = Batsched_numeric.Pool.sequential)
    ?(obs = Sink.noop) g ~deadline =
  let cfg = Batsched.Config.make ~pool ~obs ~deadline () in
  Batsched.Iterate.run_multistart
    ~rng:(Batsched_numeric.Rng.create 11) ~starts:6 cfg g

let same_result name (a : Batsched.Iterate.result)
    (b : Batsched.Iterate.result) =
  Alcotest.(check (list int))
    (name ^ " sequence") a.Batsched.Iterate.schedule.Schedule.sequence
    b.Batsched.Iterate.schedule.Schedule.sequence;
  Alcotest.(check (list int))
    (name ^ " assignment")
    (Assignment.to_list a.Batsched.Iterate.schedule.Schedule.assignment)
    (Assignment.to_list b.Batsched.Iterate.schedule.Schedule.assignment);
  Alcotest.(check bool) (name ^ " sigma bit-identical") true
    (Float.equal a.Batsched.Iterate.sigma b.Batsched.Iterate.sigma)

let published_cases =
  (Instances.g3, Instances.g3_deadline)
  :: List.map (fun d -> (Instances.g2, d)) Instances.g2_deadlines

(* --- instrumentation does not perturb results --- *)

let test_active_sink_identical_sequential () =
  List.iter
    (fun (g, deadline) ->
      let plain = run_multistart g ~deadline in
      let traced = run_multistart ~obs:(Sink.create ()) g ~deadline in
      same_result (Graph.label g ^ " seq") plain traced)
    published_cases

let test_active_sink_identical_parallel () =
  List.iter
    (fun (g, deadline) ->
      let plain = run_multistart ~pool:parallel_pool g ~deadline in
      let traced =
        run_multistart ~pool:parallel_pool ~obs:(Sink.create ()) g ~deadline
      in
      same_result (Graph.label g ^ " par") plain traced)
    published_cases

let gen_case =
  QCheck.(map
            (fun (seed, slack10) ->
              let rng = Batsched_numeric.Rng.create seed in
              let spec =
                { Generators.default_spec with Generators.num_points = 4 }
              in
              let g = Generators.fork_join ~rng ~spec ~widths:[ 2; 3 ] in
              let slack = 0.05 +. (0.9 *. float_of_int slack10 /. 10.0) in
              (g, Generators.feasible_deadline g ~slack))
            (pair (int_bound 10_000) (int_bound 10)))

let prop_instrumented_matches_uninstrumented =
  QCheck.Test.make ~count:25
    ~name:"active sink + parallel pool bit-identical to noop sequential"
    gen_case (fun (g, deadline) ->
      let plain = run_multistart g ~deadline in
      let traced =
        run_multistart ~pool:parallel_pool ~obs:(Sink.create ()) g ~deadline
      in
      plain.Batsched.Iterate.schedule.Schedule.sequence
      = traced.Batsched.Iterate.schedule.Schedule.sequence
      && Assignment.equal
           plain.Batsched.Iterate.schedule.Schedule.assignment
           traced.Batsched.Iterate.schedule.Schedule.assignment
      && Float.equal plain.Batsched.Iterate.sigma
           traced.Batsched.Iterate.sigma)

(* --- counter determinism ---

   The memo caches persist across runs and are per-domain, so hit/miss
   splits depend on cache warmth and worker placement; the F-memo sits
   entirely behind the contribution cache, so even its lookup total
   varies.  The deterministic quantities are the pure work counters and
   the top-level contribution lookup total (hits + misses). *)

let invariant_snapshot () =
  let c = Probe.totals () in
  [ ("sigma_evals", c.Probe.sigma_evals);
    ("dpf_steps", c.Probe.dpf_steps);
    ("window_evals", c.Probe.window_evals);
    ("choose_calls", c.Probe.choose_calls);
    ("iterations", c.Probe.iterations);
    ("pool_tasks", c.Probe.pool_tasks);
    ("contrib_lookups", c.Probe.contrib_hits + c.Probe.contrib_misses) ]

let test_counters_repeatable () =
  let snap () =
    Probe.reset ();
    ignore (run_multistart Instances.g2 ~deadline:75.0);
    invariant_snapshot ()
  in
  Alcotest.(check (list (pair string int))) "identical totals twice"
    (snap ()) (snap ())

let test_counters_pool_size_invariant () =
  let snap pool =
    Probe.reset ();
    ignore (run_multistart ~pool Instances.g3 ~deadline:Instances.g3_deadline);
    invariant_snapshot ()
  in
  Alcotest.(check (list (pair string int))) "pool 1 = pool 4"
    (snap Batsched_numeric.Pool.sequential) (snap parallel_pool)

let test_counters_count_real_work () =
  Probe.reset ();
  ignore (run_multistart Instances.g2 ~deadline:75.0);
  let c = Probe.totals () in
  Alcotest.(check bool) "sigma evals happened" true (c.Probe.sigma_evals > 0);
  Alcotest.(check bool) "iterations happened" true (c.Probe.iterations > 0);
  Alcotest.(check bool) "windows evaluated" true (c.Probe.window_evals > 0);
  Alcotest.(check bool) "multistart mapped tasks" true (c.Probe.pool_tasks >= 6)

(* --- trace export: a minimal JSON reader ---

   No JSON library in the image, so validity is checked with a small
   recursive-descent parser covering exactly the grammar the exporter
   can emit (objects, arrays, strings with escapes, numbers). *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad_json of string

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "short \\u escape";
              let hex = String.sub text !pos 4 in
              ignore (int_of_string ("0x" ^ hex));
              pos := !pos + 4;
              Buffer.add_char buf '?';
              go ()
          | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
              advance ();
              Buffer.add_char buf c;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let field name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let traced_run () =
  let obs = Sink.create () in
  ignore
    (run_multistart ~pool:parallel_pool ~obs Instances.g3
       ~deadline:Instances.g3_deadline);
  obs

let trace_events obs =
  match field "traceEvents" (parse_json (Trace.to_string obs)) with
  | Some (Arr events) -> events
  | _ -> Alcotest.fail "traceEvents missing or not an array"

let test_trace_wellformed () =
  let events = traced_run () |> trace_events in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  List.iter
    (fun e ->
      let str name =
        match field name e with
        | Some (Str s) -> s
        | _ -> Alcotest.fail (name ^ " missing or not a string")
      in
      let num name =
        match field name e with
        | Some (Num f) -> f
        | _ -> Alcotest.fail (name ^ " missing or not a number")
      in
      ignore (num "pid");
      ignore (num "tid");
      ignore (str "name");
      match str "ph" with
      | "X" ->
          Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.0);
          Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.0)
      | "M" -> ()
      | ph -> Alcotest.fail ("unexpected phase " ^ ph))
    events

let test_trace_noop_valid () =
  let events = trace_events Sink.noop in
  List.iter
    (fun e ->
      match field "ph" e with
      | Some (Str "M") -> ()
      | _ -> Alcotest.fail "noop trace should hold metadata only")
    events

let test_trace_has_expected_phases () =
  let events = traced_run () |> trace_events in
  let names =
    List.filter_map
      (fun e ->
        match (field "ph" e, field "name" e) with
        | Some (Str "X"), Some (Str n) -> Some n
        | _ -> None)
      events
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " span present") true
        (List.mem expected names))
    [ "start"; "iteration"; "window"; "choose" ]

let test_spans_nest () =
  (* on each track, two spans either do not overlap or one contains the
     other: phase timers follow the call structure *)
  let spans = Sink.spans (traced_run ()) in
  let open Int64 in
  let contains (a : Sink.span) (b : Sink.span) =
    a.Sink.start_ns <= b.Sink.start_ns
    && add b.Sink.start_ns b.Sink.dur_ns <= add a.Sink.start_ns a.Sink.dur_ns
  in
  let disjoint (a : Sink.span) (b : Sink.span) =
    add a.Sink.start_ns a.Sink.dur_ns <= b.Sink.start_ns
    || add b.Sink.start_ns b.Sink.dur_ns <= a.Sink.start_ns
  in
  List.iter
    (fun (a : Sink.span) ->
      List.iter
        (fun (b : Sink.span) ->
          if a != b && a.Sink.track = b.Sink.track then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s nest or disjoint" a.Sink.name b.Sink.name)
              true
              (contains a b || contains b a || disjoint a b))
        spans)
    spans

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_report_lists_counters () =
  Probe.reset ();
  let obs = Sink.create () in
  ignore (run_multistart ~obs Instances.g2 ~deadline:75.0);
  let report = Report.to_string obs in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " in report") true
        (contains_substring report name))
    Probe.fields

(* --- the Log facade --- *)

let with_captured_log level f =
  let lines = ref [] in
  Log.set_output (fun line -> lines := line :: !lines);
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_level Log.Quiet;
      Log.set_output (fun line ->
        output_string stderr (line ^ "\n");
        flush stderr))
    (fun () -> f ());
  List.rev !lines

let test_log_quiet_by_default () =
  Alcotest.(check bool) "quiet" true (Log.level () = Log.Quiet);
  let lines =
    with_captured_log Log.Quiet (fun () ->
        Log.err (fun () -> "e");
        Log.debug (fun () -> "d"))
  in
  Alcotest.(check (list string)) "nothing emitted" [] lines

let test_log_level_filters () =
  let lines =
    with_captured_log Log.Warn (fun () ->
        Log.err (fun () -> "an error");
        Log.warn (fun () -> "a warning");
        Log.info (fun () -> "some info");
        Log.debug (fun () -> "noise"))
  in
  Alcotest.(check (list string)) "err+warn only"
    [ "basched: [error] an error"; "basched: [warn] a warning" ]
    lines

let test_log_disabled_thunk_not_forced () =
  let forced = ref false in
  let _ =
    with_captured_log Log.Error (fun () ->
        Log.debug (fun () -> forced := true; "expensive"))
  in
  Alcotest.(check bool) "thunk skipped" false !forced

let test_log_of_string () =
  Alcotest.(check bool) "debug" true (Log.of_string "debug" = Some Log.Debug);
  Alcotest.(check bool) "quiet" true (Log.of_string "quiet" = Some Log.Quiet);
  Alcotest.(check bool) "junk" true (Log.of_string "chatty" = None)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_instrumented_matches_uninstrumented ]

let () =
  Alcotest.run "obs"
    [ ( "no perturbation",
        [ Alcotest.test_case "published instances, pool 1" `Quick
            test_active_sink_identical_sequential;
          Alcotest.test_case "published instances, pool 4" `Quick
            test_active_sink_identical_parallel ] );
      ( "counters",
        [ Alcotest.test_case "repeatable" `Quick test_counters_repeatable;
          Alcotest.test_case "pool-size invariant" `Quick
            test_counters_pool_size_invariant;
          Alcotest.test_case "count real work" `Quick
            test_counters_count_real_work ] );
      ( "trace",
        [ Alcotest.test_case "well-formed JSON" `Quick test_trace_wellformed;
          Alcotest.test_case "noop trace valid" `Quick test_trace_noop_valid;
          Alcotest.test_case "expected phases" `Quick
            test_trace_has_expected_phases;
          Alcotest.test_case "spans nest" `Quick test_spans_nest;
          Alcotest.test_case "report lists every counter" `Quick
            test_report_lists_counters ] );
      ( "log",
        [ Alcotest.test_case "quiet by default" `Quick
            test_log_quiet_by_default;
          Alcotest.test_case "level filters" `Quick test_log_level_filters;
          Alcotest.test_case "disabled thunk not forced" `Quick
            test_log_disabled_thunk_not_forced;
          Alcotest.test_case "of_string" `Quick test_log_of_string ] );
      ("properties", qcheck_tests) ]
