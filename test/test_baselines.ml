(* Tests for the baseline schedulers: the energy-DP baseline [1], the
   Chowdhury heuristic [7], simulated annealing, random search and the
   exhaustive reference, plus cross-algorithm properties. *)

open Batsched_taskgraph
open Batsched_sched
open Batsched_baselines

let check_float = Alcotest.(check (float 1e-9))

let model = Batsched_battery.Rakhmatov.model ()

let diamond () =
  let t id pairs = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) pairs in
  Graph.make ~label:"diamond" ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
    [ t 0 [ (400.0, 1.0); (200.0, 2.0); (50.0, 4.0) ];
      t 1 [ (600.0, 2.0); (300.0, 4.0); (80.0, 8.0) ];
      t 2 [ (500.0, 1.0); (250.0, 2.0); (60.0, 4.0) ];
      t 3 [ (450.0, 3.0); (220.0, 6.0); (70.0, 12.0) ] ]

let feasible g (sol : Solution.t) ~deadline =
  Analysis.is_topological g sol.Solution.schedule.Schedule.sequence
  && sol.Solution.finish <= deadline +. 1e-9

(* --- Dp_energy --- *)

let test_dp_loose_deadline_minimal_energy () =
  let g = diamond () in
  let a = Dp_energy.select_design_points g ~deadline:1000.0 in
  (* unconstrained: the all-lowest-power assignment is energy minimal *)
  for i = 0 to 3 do
    Alcotest.(check int) "lowest" 2 (Assignment.column a i)
  done

let test_dp_tight_deadline_all_fastest () =
  let g = diamond () in
  let a = Dp_energy.select_design_points g ~deadline:7.0 in
  for i = 0 to 3 do
    Alcotest.(check int) "fastest" 0 (Assignment.column a i)
  done

let test_dp_meets_deadline_at_all_slacks () =
  let g = diamond () in
  List.iter
    (fun d ->
      let a = Dp_energy.select_design_points g ~deadline:d in
      Alcotest.(check bool)
        (Printf.sprintf "feasible at %.1f" d)
        true
        (Assignment.total_time g a <= d +. 1e-9))
    [ 7.0; 9.0; 12.0; 15.0; 20.0; 28.0 ]

let test_dp_energy_optimality_against_bruteforce () =
  (* the DP must match brute-force minimal energy subject to deadline *)
  let g = diamond () in
  let m = Graph.num_points g in
  let best_energy d =
    let best = ref Float.infinity in
    for c0 = 0 to m - 1 do
      for c1 = 0 to m - 1 do
        for c2 = 0 to m - 1 do
          for c3 = 0 to m - 1 do
            let a = Assignment.of_list g [ c0; c1; c2; c3 ] in
            if Assignment.total_time g a <= d +. 1e-9 then
              best := Float.min !best (Assignment.total_energy g a)
          done
        done
      done
    done;
    !best
  in
  List.iter
    (fun d ->
      let a = Dp_energy.select_design_points g ~deadline:d in
      check_float
        (Printf.sprintf "optimal at %.1f" d)
        (best_energy d)
        (Assignment.total_energy g a))
    [ 7.0; 10.0; 14.0; 21.0; 28.0 ]

let test_dp_infeasible_raises () =
  let g = diamond () in
  Alcotest.check_raises "infeasible" Dp_energy.Infeasible (fun () ->
      ignore (Dp_energy.select_design_points g ~deadline:5.0))

let test_dp_run_full_baseline () =
  let g = Instances.g2 in
  let sol = Dp_energy.run ~model g ~deadline:75.0 in
  Alcotest.(check bool) "feasible" true (feasible g sol ~deadline:75.0);
  Alcotest.(check bool) "sigma positive" true (sol.Solution.sigma > 0.0)

(* --- Chowdhury --- *)

let test_chowdhury_loose_deadline_all_lowest () =
  let g = diamond () in
  let sol = Chowdhury.run ~model g ~deadline:1000.0 in
  List.iter
    (fun i ->
      Alcotest.(check int) "lowest" 2
        (Assignment.column sol.Solution.schedule.Schedule.assignment i))
    [ 0; 1; 2; 3 ]

let test_chowdhury_tight_deadline_all_fastest () =
  let g = diamond () in
  let sol = Chowdhury.run ~model g ~deadline:7.0 in
  List.iter
    (fun i ->
      Alcotest.(check int) "fastest" 0
        (Assignment.column sol.Solution.schedule.Schedule.assignment i))
    [ 0; 1; 2; 3 ]

let test_chowdhury_downscales_late_tasks_first () =
  (* one notch of slack: the LAST task in the sequence gets it *)
  let g = diamond () in
  let seq = Priorities.sequence_dec_energy g in
  let last = List.nth seq 3 in
  (* slack: exactly enough to move the last task one column *)
  let fast_total = 7.0 in
  let slack =
    (Task.point (Graph.task g last) 1).Task.duration
    -. (Task.point (Graph.task g last) 0).Task.duration
  in
  let sol = Chowdhury.run ~model g ~deadline:(fast_total +. slack) in
  Alcotest.(check int) "last task downscaled" 1
    (Assignment.column sol.Solution.schedule.Schedule.assignment last);
  List.iter
    (fun i ->
      if i <> last then
        Alcotest.(check int) "others untouched" 0
          (Assignment.column sol.Solution.schedule.Schedule.assignment i))
    [ 0; 1; 2; 3 ]

let test_chowdhury_infeasible_raises () =
  let g = diamond () in
  Alcotest.check_raises "infeasible" Chowdhury.Infeasible (fun () ->
      ignore (Chowdhury.run ~model g ~deadline:5.0))

let test_chowdhury_custom_sequence () =
  let g = diamond () in
  let sol = Chowdhury.run ~sequence:[ 0; 2; 1; 3 ] ~model g ~deadline:20.0 in
  Alcotest.(check (list int)) "sequence kept" [ 0; 2; 1; 3 ]
    sol.Solution.schedule.Schedule.sequence

(* --- Annealing --- *)

let test_annealing_feasible_and_not_worse_than_start () =
  let g = diamond () in
  let deadline = 20.0 in
  let rng = Batsched_numeric.Rng.create 99 in
  let sa = Annealing.run ~rng ~model g ~deadline in
  let start = Chowdhury.run ~model g ~deadline in
  Alcotest.(check bool) "feasible" true (feasible g sa ~deadline);
  Alcotest.(check bool) "no worse than start" true
    (sa.Solution.sigma <= start.Solution.sigma +. 1e-6)

let test_annealing_deterministic_given_seed () =
  let g = diamond () in
  let run () =
    Annealing.run ~rng:(Batsched_numeric.Rng.create 7) ~model g ~deadline:20.0
  in
  check_float "same sigma" (run ()).Solution.sigma (run ()).Solution.sigma

let test_annealing_param_validation () =
  let g = diamond () in
  Alcotest.check_raises "bad cooling" (Invalid_argument "Annealing: bad cooling")
    (fun () ->
      ignore
        (Annealing.run
           ~params:{ Annealing.default_params with Annealing.cooling = 1.5 }
           ~rng:(Batsched_numeric.Rng.create 1) ~model g ~deadline:20.0))

let test_annealing_infeasible_raises () =
  let g = diamond () in
  Alcotest.check_raises "infeasible" Annealing.No_feasible_state (fun () ->
      ignore
        (Annealing.run ~rng:(Batsched_numeric.Rng.create 1) ~model g
           ~deadline:5.0))

(* --- Annealing / random search: delta vs reference evaluation ---

   Both modes share the move-draw control flow, so a fixed seed drives
   the identical walk; the solutions must agree exactly (both are
   re-materialized through the full model, so equal schedules give
   bit-equal sigmas). *)

module Probe = Batsched_numeric.Probe

let solutions_agree name (a : Solution.t) (b : Solution.t) =
  Alcotest.(check (list int))
    (name ^ ": sequence")
    a.Solution.schedule.Schedule.sequence
    b.Solution.schedule.Schedule.sequence;
  Alcotest.(check (list int))
    (name ^ ": assignment")
    (Assignment.to_list a.Solution.schedule.Schedule.assignment)
    (Assignment.to_list b.Solution.schedule.Schedule.assignment);
  check_float (name ^ ": sigma") a.Solution.sigma b.Solution.sigma

let test_annealing_delta_matches_reference () =
  let check name g ~deadline seed =
    let run eval =
      Annealing.run ~eval
        ~rng:(Batsched_numeric.Rng.create seed)
        ~model g ~deadline
    in
    solutions_agree
      (Printf.sprintf "%s seed %d" name seed)
      (run `Delta) (run `Reference)
  in
  let g = diamond () in
  List.iter (fun seed -> check "diamond" g ~deadline:20.0 seed) [ 7; 99; 2024 ];
  check "g2" Instances.g2 ~deadline:(List.hd Instances.g2_deadlines) 5;
  let rng = Batsched_numeric.Rng.create 31 in
  let fj =
    Generators.fork_join ~rng ~spec:Generators.default_spec ~widths:[ 4; 3 ]
  in
  check "fork-join" fj ~deadline:(Generators.feasible_deadline fj ~slack:0.5) 13

let test_annealing_noop_skip () =
  (* a single design point per task makes every repoint draw a no-op:
     the walk must still replay (delta = reference under the same
     seed) and the skipped evaluations must show up in the probe *)
  let t id pairs =
    Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) pairs
  in
  let g =
    Graph.make ~label:"mono" ~edges:[ (0, 1) ]
      [ t 0 [ (400.0, 1.0) ];
        t 1 [ (600.0, 2.0) ];
        t 2 [ (500.0, 1.5) ] ]
  in
  let c0 = (Probe.totals ()).Probe.anneal_noops in
  let run eval =
    Annealing.run ~eval
      ~rng:(Batsched_numeric.Rng.create 7)
      ~model g ~deadline:10.0
  in
  solutions_agree "mono" (run `Delta) (run `Reference);
  Alcotest.(check bool) "noop repoints skipped and counted" true
    ((Probe.totals ()).Probe.anneal_noops - c0 > 0)

let test_annealing_delta_matches_reference_other_models () =
  (* the same exact-replay contract under the other delta strategies:
     kibam walks on its closed-form incremental decomposition,
     diffusion on the checkpointed PDE stepper — both must retrace the
     full-evaluation walk move for move *)
  let models =
    [ ("kibam", Batsched_battery.Kibam.model ());
      ( "diffusion",
        Batsched_battery.Diffusion.model
          ~params:
            (Batsched_battery.Diffusion.make_params ~nodes:8 ~dt:1.0
               ~alpha:40375.0 ~beta:0.273 ())
          () ) ]
  in
  let rng = Batsched_numeric.Rng.create 31 in
  let fj =
    Generators.fork_join ~rng ~spec:Generators.default_spec ~widths:[ 4; 3 ]
  in
  let fj_deadline = Generators.feasible_deadline fj ~slack:0.5 in
  List.iter
    (fun (mname, model) ->
      let check name g ~deadline seed =
        let run eval =
          Annealing.run ~eval
            ~rng:(Batsched_numeric.Rng.create seed)
            ~model g ~deadline
        in
        solutions_agree
          (Printf.sprintf "%s %s seed %d" mname name seed)
          (run `Delta) (run `Reference)
      in
      let g = diamond () in
      List.iter
        (fun seed -> check "diamond" g ~deadline:20.0 seed)
        [ 7; 99; 2024 ];
      check "fork-join" fj ~deadline:fj_deadline 13)
    models

let test_population_feasible_and_deterministic () =
  let params =
    { Annealing.default_params with Annealing.steps_per_temperature = 15 }
  in
  let g = diamond () in
  let run () =
    Annealing.run_population ~params ~pop:4
      ~rng:(Batsched_numeric.Rng.create 11)
      ~model g ~deadline:20.0
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "feasible" true (feasible g a ~deadline:20.0);
  solutions_agree "repeat run" a b;
  (* never worse than the shared starting point *)
  let start = Chowdhury.run ~model g ~deadline:20.0 in
  Alcotest.(check bool) "not worse than start" true
    (a.Solution.sigma <= start.Solution.sigma +. 1e-6)

let test_population_pool_invariant () =
  (* the batched population sweep shards over the pool; the walk and
     the result must not depend on the shard count *)
  let rng = Batsched_numeric.Rng.create 31 in
  let fj =
    Generators.fork_join ~rng ~spec:Generators.default_spec ~widths:[ 4; 3 ]
  in
  let deadline = Generators.feasible_deadline fj ~slack:0.5 in
  let run pool =
    Annealing.run_population ~pop:4 ?pool
      ~rng:(Batsched_numeric.Rng.create 5)
      ~model fj ~deadline
  in
  solutions_agree "pool 1 vs 4" (run None)
    (run (Some (Batsched_numeric.Pool.create 4)))

let test_population_validation () =
  Alcotest.check_raises "pop < 1"
    (Invalid_argument "Annealing.run_population: pop < 1") (fun () ->
      ignore
        (Annealing.run_population ~pop:0
           ~rng:(Batsched_numeric.Rng.create 1)
           ~model (diamond ()) ~deadline:20.0))

let test_random_search_delta_matches_reference () =
  let g = diamond () in
  let run eval =
    Random_search.run ~samples:100 ~eval
      ~rng:(Batsched_numeric.Rng.create 5)
      ~model g ~deadline:20.0
  in
  solutions_agree "diamond" (run `Delta) (run `Reference);
  let run2 eval =
    Random_search.run ~samples:60 ~eval
      ~rng:(Batsched_numeric.Rng.create 8)
      ~model Instances.g2
      ~deadline:(List.hd Instances.g2_deadlines)
  in
  solutions_agree "g2" (run2 `Delta) (run2 `Reference)

(* --- Exhaustive --- *)

let test_exhaustive_beats_or_ties_everything () =
  let g = diamond () in
  let deadline = 14.0 in
  let opt = Exhaustive.run ~model g ~deadline in
  Alcotest.(check bool) "feasible" true (feasible g opt ~deadline);
  let others =
    [ (Dp_energy.run ~model g ~deadline).Solution.sigma;
      (Chowdhury.run ~model g ~deadline).Solution.sigma;
      (Annealing.run ~rng:(Batsched_numeric.Rng.create 3) ~model g ~deadline)
        .Solution.sigma;
      (let cfg = Batsched.Config.make ~deadline () in
       (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma) ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "optimum <= heuristic" true
        (opt.Solution.sigma <= s +. 1e-6))
    others

let test_exhaustive_too_large_guard () =
  let rng = Batsched_numeric.Rng.create 1 in
  let g =
    Generators.random_dag ~rng
      ~spec:{ Generators.default_spec with Generators.num_points = 5 } ~n:12
      ~edge_prob:0.2
  in
  Alcotest.check_raises "guard" Exhaustive.Too_large (fun () ->
      ignore (Exhaustive.run ~max_assignments:1000 ~model g ~deadline:1000.0))

let test_exhaustive_infeasible () =
  let g = diamond () in
  Alcotest.check_raises "infeasible" Exhaustive.Infeasible (fun () ->
      ignore (Exhaustive.run ~model g ~deadline:5.0))

(* --- Branch and bound --- *)

let test_bnb_matches_exhaustive () =
  let g = diamond () in
  List.iter
    (fun deadline ->
      let opt = (Exhaustive.run ~model g ~deadline).Solution.sigma in
      let bnb = Branch_bound.run ~model g ~deadline in
      Alcotest.(check bool) "optimal flag" true bnb.Branch_bound.optimal;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "sigma at %.1f" deadline)
        opt bnb.Branch_bound.solution.Solution.sigma)
    [ 8.0; 12.0; 18.0; 26.0 ]

let test_bnb_prunes_vs_exhaustive_nodes () =
  (* pruning must explore far fewer nodes than the full m^n tree *)
  let g = diamond () in
  let bnb = Branch_bound.run ~model g ~deadline:14.0 in
  Alcotest.(check bool) "pruned" true (bnb.Branch_bound.nodes < 2 * 81 * 3)

let test_bnb_budget_truncation () =
  let rng = Batsched_numeric.Rng.create 2 in
  let g =
    Generators.layered ~rng
      ~spec:{ Generators.default_spec with Generators.num_points = 4 }
      ~layers:3 ~width:3 ~edge_prob:0.4
  in
  let deadline = Generators.feasible_deadline g ~slack:0.5 in
  let bnb = Branch_bound.run ~node_budget:50 ~model g ~deadline in
  Alcotest.(check bool) "truncated" false bnb.Branch_bound.optimal;
  Alcotest.(check bool) "still feasible" true
    (feasible g bnb.Branch_bound.solution ~deadline)

let test_bnb_infeasible () =
  let g = diamond () in
  Alcotest.check_raises "infeasible" Branch_bound.Infeasible (fun () ->
      ignore (Branch_bound.run ~model g ~deadline:5.0))

let test_bnb_beats_or_ties_chowdhury_seed () =
  let g = Instances.g2 in
  let deadline = 75.0 in
  let bnb = Branch_bound.run ~node_budget:200_000 ~model g ~deadline in
  let seed = Chowdhury.run ~model g ~deadline in
  Alcotest.(check bool) "no worse than seed" true
    (bnb.Branch_bound.solution.Solution.sigma <= seed.Solution.sigma +. 1e-6)

(* --- Random search --- *)

let test_random_search_feasible () =
  let g = diamond () in
  let deadline = 15.0 in
  let sol =
    Random_search.run ~samples:100 ~rng:(Batsched_numeric.Rng.create 5) ~model
      g ~deadline
  in
  Alcotest.(check bool) "feasible" true (feasible g sol ~deadline)

let test_random_search_more_samples_no_worse () =
  let g = diamond () in
  let deadline = 15.0 in
  let run samples =
    (Random_search.run ~samples ~rng:(Batsched_numeric.Rng.create 5) ~model g
       ~deadline)
      .Solution.sigma
  in
  Alcotest.(check bool) "improves" true (run 400 <= run 20 +. 1e-9)

let test_random_sequence_topological () =
  let g = Instances.g3 in
  let rng = Batsched_numeric.Rng.create 17 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "topological" true
      (Analysis.is_topological g (Random_search.random_sequence ~rng g))
  done

(* --- cross-algorithm properties --- *)

let gen_case =
  QCheck.(map
            (fun (seed, slack10) ->
              let rng = Batsched_numeric.Rng.create seed in
              let spec = { Generators.default_spec with Generators.num_points = 3 } in
              let g = Generators.fork_join ~rng ~spec ~widths:[ 2; 2 ] in
              let slack = 0.1 +. (0.8 *. float_of_int slack10 /. 10.0) in
              (g, Generators.feasible_deadline g ~slack))
            (pair (int_bound 10_000) (int_bound 10)))

let prop_all_baselines_feasible =
  QCheck.Test.make ~count:40 ~name:"every baseline returns a feasible schedule"
    gen_case (fun (g, deadline) ->
      let rng = Batsched_numeric.Rng.create 123 in
      let sols =
        [ Dp_energy.run ~model g ~deadline;
          Chowdhury.run ~model g ~deadline;
          Random_search.run ~samples:50 ~rng ~model g ~deadline ]
      in
      List.for_all (fun s -> feasible g s ~deadline) sols)

let prop_bnb_equals_exhaustive =
  QCheck.Test.make ~count:10 ~name:"branch-and-bound matches exhaustive"
    gen_case (fun (g, deadline) ->
      let opt = (Exhaustive.run ~model g ~deadline).Solution.sigma in
      let bnb = Branch_bound.run ~model g ~deadline in
      bnb.Branch_bound.optimal
      && Float.abs (bnb.Branch_bound.solution.Solution.sigma -. opt) < 1e-6)

let prop_exhaustive_lower_bounds_heuristics =
  QCheck.Test.make ~count:15
    ~name:"exhaustive optimum lower-bounds the iterative heuristic" gen_case
    (fun (g, deadline) ->
      let opt = (Exhaustive.run ~model g ~deadline).Solution.sigma in
      let cfg = Batsched.Config.make ~deadline () in
      let ours = (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma in
      opt <= ours +. 1e-6)

let prop_dp_energy_never_above_all_fastest_energy =
  QCheck.Test.make ~count:40
    ~name:"DP energy selection never exceeds the all-fastest energy" gen_case
    (fun (g, deadline) ->
      let a = Dp_energy.select_design_points g ~deadline in
      Assignment.total_energy g a
      <= Assignment.total_energy g (Assignment.all_fastest g) +. 1e-6)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_all_baselines_feasible;
      prop_bnb_equals_exhaustive;
      prop_exhaustive_lower_bounds_heuristics;
      prop_dp_energy_never_above_all_fastest_energy ]

let () =
  Alcotest.run "baselines"
    [ ( "dp_energy",
        [ Alcotest.test_case "loose deadline minimal" `Quick test_dp_loose_deadline_minimal_energy;
          Alcotest.test_case "tight deadline fastest" `Quick test_dp_tight_deadline_all_fastest;
          Alcotest.test_case "meets deadline" `Quick test_dp_meets_deadline_at_all_slacks;
          Alcotest.test_case "optimal vs bruteforce" `Quick test_dp_energy_optimality_against_bruteforce;
          Alcotest.test_case "infeasible raises" `Quick test_dp_infeasible_raises;
          Alcotest.test_case "full baseline" `Quick test_dp_run_full_baseline ] );
      ( "chowdhury",
        [ Alcotest.test_case "loose deadline all lowest" `Quick test_chowdhury_loose_deadline_all_lowest;
          Alcotest.test_case "tight deadline all fastest" `Quick test_chowdhury_tight_deadline_all_fastest;
          Alcotest.test_case "downscales late first" `Quick test_chowdhury_downscales_late_tasks_first;
          Alcotest.test_case "infeasible raises" `Quick test_chowdhury_infeasible_raises;
          Alcotest.test_case "custom sequence" `Quick test_chowdhury_custom_sequence ] );
      ( "annealing",
        [ Alcotest.test_case "feasible, beats start" `Quick test_annealing_feasible_and_not_worse_than_start;
          Alcotest.test_case "deterministic" `Quick test_annealing_deterministic_given_seed;
          Alcotest.test_case "param validation" `Quick test_annealing_param_validation;
          Alcotest.test_case "infeasible raises" `Quick test_annealing_infeasible_raises;
          Alcotest.test_case "delta matches reference" `Quick test_annealing_delta_matches_reference;
          Alcotest.test_case "delta matches reference (kibam, diffusion)" `Quick test_annealing_delta_matches_reference_other_models;
          Alcotest.test_case "noop repoints skipped" `Quick test_annealing_noop_skip;
          Alcotest.test_case "population feasible, deterministic" `Quick test_population_feasible_and_deterministic;
          Alcotest.test_case "population pool invariant" `Quick test_population_pool_invariant;
          Alcotest.test_case "population validation" `Quick test_population_validation ] );
      ( "exhaustive",
        [ Alcotest.test_case "lower bound" `Quick test_exhaustive_beats_or_ties_everything;
          Alcotest.test_case "too-large guard" `Quick test_exhaustive_too_large_guard;
          Alcotest.test_case "infeasible" `Quick test_exhaustive_infeasible ] );
      ( "branch_bound",
        [ Alcotest.test_case "matches exhaustive" `Quick test_bnb_matches_exhaustive;
          Alcotest.test_case "prunes" `Quick test_bnb_prunes_vs_exhaustive_nodes;
          Alcotest.test_case "budget truncation" `Quick test_bnb_budget_truncation;
          Alcotest.test_case "infeasible" `Quick test_bnb_infeasible;
          Alcotest.test_case "beats seed" `Quick test_bnb_beats_or_ties_chowdhury_seed ] );
      ( "random_search",
        [ Alcotest.test_case "feasible" `Quick test_random_search_feasible;
          Alcotest.test_case "more samples no worse" `Quick test_random_search_more_samples_no_worse;
          Alcotest.test_case "delta matches reference" `Quick test_random_search_delta_matches_reference;
          Alcotest.test_case "random sequences topological" `Quick test_random_sequence_topological ] );
      ("properties", qcheck_tests) ]
