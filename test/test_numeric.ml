(* Tests for the numeric substrate: compensated summation, the RV
   series kernel, root finding, interpolation, statistics, the PRNG and
   fixed-point ticks. *)

open Batsched_numeric

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Kahan --- *)

let test_kahan_empty () = check_float "empty sum" 0.0 (Kahan.sum Kahan.zero)

let test_kahan_simple () =
  check_float "1+2+3" 6.0 (Kahan.sum_list [ 1.0; 2.0; 3.0 ])

let test_kahan_compensation () =
  (* classic case: 1 + 1e16 - 1e16 loses the 1 under naive summation
     order 1e16, 1, -1e16 *)
  let naive = 1e16 +. 1.0 -. 1e16 in
  ignore naive;
  check_float "compensated" 1.0 (Kahan.sum_list [ 1e16; 1.0; -1e16 ])

let test_kahan_many_small () =
  let n = 100_000 in
  let v = Kahan.sum_fn n (fun _ -> 0.1) in
  check_close 1e-9 "100k * 0.1" 10_000.0 v

let test_kahan_sum_fn_negative () =
  Alcotest.check_raises "negative count" (Invalid_argument "Kahan.sum_fn: negative count")
    (fun () -> ignore (Kahan.sum_fn (-1) (fun _ -> 1.0)))

let test_kahan_array () =
  check_float "array" 15.0 (Kahan.sum_array [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

(* --- Series --- *)

let test_series_kernel_zero_interval () =
  (* a = b means no interval: kernel must be 0 *)
  check_float "empty interval" 0.0 (Series.kernel ~beta:0.273 2.0 2.0)

let test_series_kernel_positive () =
  let v = Series.kernel ~beta:0.273 0.0 10.0 in
  Alcotest.(check bool) "positive" true (v > 0.0)

let test_series_kernel_monotone_in_b () =
  let k b = Series.kernel ~beta:0.273 0.0 b in
  Alcotest.(check bool) "monotone" true (k 5.0 < k 10.0 && k 10.0 < k 50.0)

let test_series_kernel_bounded_by_limit () =
  let limit = Series.kernel_limit ~beta:0.273 in
  let v = Series.kernel ~terms:2000 ~beta:0.273 0.0 1e6 in
  Alcotest.(check bool) "below limit" true (v <= limit +. 1e-6);
  (* truncation tail is ~ 2/(beta^2 * terms) ~ 0.0134 here *)
  check_close 0.02 "approaches limit" limit v

let test_series_kernel_decays_with_a () =
  (* recovery: moving the interval into the past shrinks its
     unavailable-charge contribution *)
  let k a = Series.kernel ~beta:0.273 a (a +. 10.0) in
  Alcotest.(check bool) "decays" true (k 0.0 > k 10.0 && k 10.0 > k 100.0)

let test_series_large_beta_vanishes () =
  (* beta -> infinity is the ideal battery: kernel ~ 0 *)
  let v = Series.kernel ~beta:100.0 0.0 10.0 in
  Alcotest.(check bool) "vanishes" true (v < 1e-3)

let test_series_invalid () =
  Alcotest.check_raises "bad order"
    (Invalid_argument "Series.kernel: need 0 <= a <= b") (fun () ->
      ignore (Series.kernel ~beta:0.273 5.0 1.0));
  Alcotest.check_raises "bad beta"
    (Invalid_argument "Series: beta must be positive") (fun () ->
      ignore (Series.exp_sum ~beta:0.0 1.0))

let test_series_exp_sum_matches_kernel_at_zero () =
  (* kernel(0, b) = exp_sum(0) - exp_sum(b) *)
  let beta = 0.273 in
  let b = 7.0 in
  check_close 1e-9 "identity"
    (Series.exp_sum ~beta 0.0 -. Series.exp_sum ~beta b)
    (Series.kernel ~beta 0.0 b)

let test_series_negative_clamp () =
  (* cancellation noise within 1e-12 of zero evaluates as zero; a
     genuinely negative time is still a caller bug *)
  let beta = 0.273 in
  check_float "tiny negative clamps" (Series.exp_sum ~beta 0.0)
    (Series.exp_sum ~beta (-1e-13));
  check_float "cached clamps too" (Series.exp_sum_cached ~beta 0.0)
    (Series.exp_sum_cached ~beta (-1e-13));
  Alcotest.check_raises "beyond tolerance raises"
    (Invalid_argument "Series.exp_sum: negative time") (fun () ->
      ignore (Series.exp_sum ~beta (-1e-9)))

let test_series_cached_across_eviction () =
  (* churn well past the memo capacity so generations turn over, then
     confirm cached values are still exactly what exp_sum computes *)
  let beta = 0.273 in
  for i = 0 to 99_999 do
    ignore (Series.exp_sum_cached ~beta (float_of_int i /. 7.0))
  done;
  for i = 0 to 99 do
    let x = float_of_int (997 * i) /. 7.0 in
    Alcotest.(check bool) "bit-identical after churn" true
      (Float.equal (Series.exp_sum ~beta x) (Series.exp_sum_cached ~beta x))
  done

(* --- Fcache --- *)

let test_fcache_roundtrip () =
  let t = Fcache.create ~capacity:64 ~arity:3 () in
  Alcotest.(check bool) "fresh miss is nan" true
    (Float.is_nan (Fcache.find3 t 1.0 2.0 3.0));
  Fcache.add3 t 1.0 2.0 3.0 ~value:42.0;
  check_float "hit" 42.0 (Fcache.find3 t 1.0 2.0 3.0);
  Fcache.add3 t 1.0 2.0 3.0 ~value:7.0;
  check_float "overwrite in place" 7.0 (Fcache.find3 t 1.0 2.0 3.0);
  Alcotest.(check bool) "permuted key misses" true
    (Float.is_nan (Fcache.find3 t 3.0 2.0 1.0));
  (* keys compare bit-for-bit: -0.0 and 0.0 are different keys *)
  Fcache.add3 t 0.0 0.0 0.0 ~value:1.0;
  Alcotest.(check bool) "negative zero is a distinct key" true
    (Float.is_nan (Fcache.find3 t (-0.0) 0.0 0.0));
  Fcache.clear t;
  Alcotest.(check bool) "cleared" true
    (Float.is_nan (Fcache.find3 t 1.0 2.0 3.0));
  Alcotest.(check int) "empty after clear" 0 (Fcache.live_count t)

let test_fcache_arity_checked () =
  let t = Fcache.create ~capacity:64 ~arity:3 () in
  Alcotest.check_raises "find6 on arity 3"
    (Invalid_argument "Fcache.find6: table has arity 3") (fun () ->
      ignore (Fcache.find6 t 1.0 2.0 3.0 4.0 5.0 6.0));
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Fcache.create: arity not in 1..8") (fun () ->
      ignore (Fcache.create ~arity:0 ()))

let test_fcache_eviction_bounded () =
  let t = Fcache.create ~capacity:64 ~arity:3 () in
  let cap = Fcache.capacity t in
  let total = 4 * cap in
  for i = 0 to total - 1 do
    Fcache.add3 t (float_of_int i) 0.5 (-2.0) ~value:(float_of_int (2 * i))
  done;
  Alcotest.(check bool) "live set bounded by capacity" true
    (Fcache.live_count t <= cap);
  Alcotest.(check bool) "generations advanced" true (Fcache.generation t > 1);
  (* whatever still hits must return exactly the stored value *)
  let hits = ref 0 in
  for i = 0 to total - 1 do
    let v = Fcache.find3 t (float_of_int i) 0.5 (-2.0) in
    if not (Float.is_nan v) then begin
      incr hits;
      check_float "hit is stored value" (float_of_int (2 * i)) v
    end
  done;
  Alcotest.(check bool) "recent keys survive" true (!hits > 0)

(* --- Rootfind --- *)

let test_bisect_linear () =
  let r = Rootfind.bisect ~f:(fun x -> x -. 3.0) ~lo:0.0 ~hi:10.0 () in
  check_close 1e-6 "root" 3.0 r

let test_brent_polynomial () =
  let f x = (x *. x *. x) -. (2.0 *. x) -. 5.0 in
  let r = Rootfind.brent ~f ~lo:1.0 ~hi:3.0 () in
  check_close 1e-7 "wilkinson classic" 2.0945514815423265 r

let test_brent_endpoint_root () =
  let r = Rootfind.brent ~f:(fun x -> x) ~lo:0.0 ~hi:5.0 () in
  check_float "root at lo" 0.0 r

let test_bisect_no_sign_change () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Rootfind.bisect: bracket does not change sign")
    (fun () -> ignore (Rootfind.bisect ~f:(fun _ -> 1.0) ~lo:0.0 ~hi:1.0 ()))

let test_invert_monotone () =
  let f x = x *. x in
  let r = Rootfind.invert_monotone ~f ~target:49.0 ~lo:0.0 () in
  check_close 1e-6 "sqrt via inversion" 7.0 r

let test_invert_monotone_already_met () =
  let r = Rootfind.invert_monotone ~f:(fun x -> x) ~target:(-5.0) ~lo:2.0 () in
  check_float "lo already satisfies" 2.0 r

(* --- Interp --- *)

let test_interp_exact_at_knots () =
  let c = Interp.of_points [ (0.0, 1.0); (1.0, 3.0); (2.0, 2.0) ] in
  check_float "knot 0" 1.0 (Interp.eval c 0.0);
  check_float "knot 1" 3.0 (Interp.eval c 1.0);
  check_float "knot 2" 2.0 (Interp.eval c 2.0)

let test_interp_midpoint () =
  let c = Interp.of_points [ (0.0, 0.0); (2.0, 4.0) ] in
  check_float "midpoint" 2.0 (Interp.eval c 1.0)

let test_interp_extrapolation () =
  let c = Interp.of_points [ (0.0, 0.0); (1.0, 2.0) ] in
  check_float "beyond hi" 6.0 (Interp.eval c 3.0);
  check_float "below lo" (-2.0) (Interp.eval c (-1.0))

let test_interp_unsorted_input () =
  let c = Interp.of_points [ (2.0, 2.0); (0.0, 0.0); (1.0, 1.0) ] in
  check_float "sorted internally" 0.5 (Interp.eval c 0.5)

let test_interp_duplicate_x () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Interp.of_points: duplicate abscissa") (fun () ->
      ignore (Interp.of_points [ (1.0, 1.0); (1.0, 2.0) ]))

let test_interp_tabulate () =
  let c = Interp.tabulate ~f:(fun x -> 2.0 *. x) ~lo:0.0 ~hi:10.0 ~n:11 in
  check_float "domain lo" 0.0 (fst (Interp.domain c));
  check_float "domain hi" 10.0 (snd (Interp.domain c));
  check_float "linear reproduced" 7.0 (Interp.eval c 3.5)

(* --- Stats --- *)

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_stats_variance () =
  check_float "variance" 2.5 (Stats.variance [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let test_stats_singleton_variance () =
  check_float "singleton" 0.0 (Stats.variance [ 42.0 ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; 1.0; 2.0 ] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi

let test_stats_median_odd () =
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ])

let test_stats_median_even () =
  check_float "median even" 1.5 (Stats.median [ 1.0; 2.0 ])

let test_stats_percentile_bounds () =
  let xs = [ 10.0; 20.0; 30.0 ] in
  check_float "p0" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100" 30.0 (Stats.percentile 100.0 xs)

let test_stats_geometric_mean () =
  check_close 1e-9 "geomean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ])

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean []))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let g = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int g 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_float_range () =
  let g = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let g = Rng.create 5 in
  let h = Rng.split g in
  (* the split stream differs from the parent's continuation *)
  Alcotest.(check bool) "independent" true (Rng.bits64 g <> Rng.bits64 h)

let test_rng_shuffle_permutation () =
  let g = Rng.create 6 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_rng_pick_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick (Rng.create 1) []))

(* --- Ticks --- *)

let test_ticks_roundtrip () =
  Alcotest.(check int) "7.3 min" 73 (Ticks.of_minutes 7.3);
  check_float "back" 7.3 (Ticks.to_minutes 73)

let test_ticks_exact_rejects_offgrid () =
  Alcotest.(check bool) "on grid ok" true (Ticks.of_minutes_exn 5.3 = 53);
  Alcotest.check_raises "off grid"
    (Invalid_argument
       "Ticks.of_minutes_exn: not representable at 0.1-min resolution")
    (fun () -> ignore (Ticks.of_minutes_exn 5.34))

let test_ticks_ceil_floor () =
  Alcotest.(check int) "ceil off-grid" 54 (Ticks.of_minutes_ceil 5.34);
  Alcotest.(check int) "floor off-grid" 53 (Ticks.of_minutes_floor 5.34);
  Alcotest.(check int) "ceil on-grid exact" 53 (Ticks.of_minutes_ceil 5.3);
  Alcotest.(check int) "floor on-grid exact" 53 (Ticks.of_minutes_floor 5.3)

let test_ticks_sub_truncates () =
  Alcotest.(check int) "saturating" 0 (Ticks.sub 3 5)

let test_ticks_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Ticks.of_minutes: negative or non-finite") (fun () ->
      ignore (Ticks.of_minutes (-1.0)))

(* --- Tridiag --- *)

let test_tridiag_identity () =
  let x =
    Tridiag.solve ~lower:[| 0.0; 0.0 |] ~diag:[| 1.0; 1.0; 1.0 |]
      ~upper:[| 0.0; 0.0 |] ~rhs:[| 3.0; 4.0; 5.0 |]
  in
  Alcotest.(check (array (float 1e-12))) "identity" [| 3.0; 4.0; 5.0 |] x

let test_tridiag_known_system () =
  (* [[2,1,0];[1,2,1];[0,1,2]] x = [4;8;8] -> x = [1;2;3] *)
  let x =
    Tridiag.solve ~lower:[| 1.0; 1.0 |] ~diag:[| 2.0; 2.0; 2.0 |]
      ~upper:[| 1.0; 1.0 |] ~rhs:[| 4.0; 8.0; 8.0 |]
  in
  Alcotest.(check (array (float 1e-9))) "known" [| 1.0; 2.0; 3.0 |] x

let test_tridiag_single () =
  let x = Tridiag.solve ~lower:[||] ~diag:[| 4.0 |] ~upper:[||] ~rhs:[| 8.0 |] in
  Alcotest.(check (array (float 1e-12))) "single" [| 2.0 |] x

let test_tridiag_residual_random () =
  let g = Rng.create 9 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int g 20 in
    let diag = Array.init n (fun _ -> 4.0 +. Rng.float g 4.0) in
    let lower = Array.init (n - 1) (fun _ -> Rng.float g 1.0) in
    let upper = Array.init (n - 1) (fun _ -> Rng.float g 1.0) in
    let rhs = Array.init n (fun _ -> Rng.float g 10.0 -. 5.0) in
    let x = Tridiag.solve ~lower ~diag ~upper ~rhs in
    for i = 0 to n - 1 do
      let ax =
        (if i > 0 then lower.(i - 1) *. x.(i - 1) else 0.0)
        +. (diag.(i) *. x.(i))
        +. (if i < n - 1 then upper.(i) *. x.(i + 1) else 0.0)
      in
      check_close 1e-9 "residual" rhs.(i) ax
    done
  done

let test_tridiag_validation () =
  Alcotest.check_raises "lengths"
    (Invalid_argument "Tridiag.solve: inconsistent lengths") (fun () ->
      ignore (Tridiag.solve ~lower:[||] ~diag:[| 1.0; 1.0 |] ~upper:[| 1.0 |]
                ~rhs:[| 1.0; 1.0 |]))

(* --- Pool --- *)

let test_pool_sequential_is_map () =
  let xs = List.init 20 Fun.id in
  Alcotest.(check (list int)) "inline map"
    (List.map (fun x -> x * x) xs)
    (Pool.map_list Pool.sequential (fun x -> x * x) xs)

let test_pool_parallel_preserves_order () =
  let pool = Pool.create 4 in
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "order"
    (List.map (fun x -> (x * 7) mod 13) xs)
    (Pool.map_list pool (fun x -> (x * 7) mod 13) xs)

let test_pool_matches_sequential_floats () =
  let pool = Pool.create 4 in
  let xs = Array.init 64 (fun i -> float_of_int (i + 1)) in
  let f x = Series.exp_sum ~beta:0.273 x in
  Alcotest.(check bool) "bit-identical" true
    (Pool.map_array pool f xs = Array.map f xs)

let test_pool_empty_and_singleton () =
  let pool = Pool.create 8 in
  Alcotest.(check (list int)) "empty" [] (Pool.map_list pool succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map_list pool succ [ 1 ])

let test_pool_nested_runs_sequentially () =
  let pool = Pool.create 4 in
  let out =
    Pool.map_list pool
      (fun x -> Pool.map_list pool (fun y -> (x * 10) + y) [ 1; 2; 3 ])
      [ 1; 2 ]
  in
  Alcotest.(check (list (list int))) "nested" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] out

let test_pool_exception_first_index () =
  let pool = Pool.create 4 in
  Alcotest.check_raises "first failing index wins"
    (Invalid_argument "boom-3") (fun () ->
      ignore
        (Pool.map_list pool
           (fun x ->
             if x >= 3 then invalid_arg (Printf.sprintf "boom-%d" x) else x)
           (List.init 16 Fun.id)))

let test_pool_validation () =
  Alcotest.check_raises "size" (Invalid_argument "Pool.create: size < 1")
    (fun () -> ignore (Pool.create 0));
  Alcotest.(check bool) "recommended positive" true (Pool.recommended () >= 1)

let test_pool_map_list_direct () =
  (* the sequential/nested path builds the list directly (no array
     round-trip); a long list must not overflow the stack *)
  let n = 200_000 in
  let xs = List.init n Fun.id in
  let out = Pool.map_list Pool.sequential succ xs in
  Alcotest.(check int) "length" n (List.length out);
  Alcotest.(check int) "head" 1 (List.hd out);
  Alcotest.(check int) "last" n (List.nth out (n - 1));
  Alcotest.check_raises "exceptions pass through" (Failure "direct") (fun () ->
      ignore
        (Pool.map_list Pool.sequential
           (fun x -> if x = 7 then failwith "direct" else x)
           (List.init 16 Fun.id)))

let test_pool_for_range () =
  Pool.with_pool 4 @@ fun pool ->
  let n = 1000 in
  let out = Array.make n 0 in
  Pool.for_range pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- i * i
      done);
  Alcotest.(check bool) "span cover" true
    (out = Array.init n (fun i -> i * i));
  Alcotest.check_raises "smallest lo wins" (Failure "span-0") (fun () ->
      Pool.for_range pool ~n:64 (fun lo _ ->
          if lo < 32 then failwith (Printf.sprintf "span-%d" lo)))

let test_pool_submit_and_shutdown () =
  let pool = Pool.create 4 in
  let hits = Atomic.make 0 in
  for _ = 1 to 8 do
    Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get hits < 8 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  Alcotest.(check int) "all jobs ran" 8 (Atomic.get hits);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.(check int) "no workers after shutdown" 0 (Pool.live_workers pool);
  (* maps on a shut-down pool degrade to sequential, same results *)
  let xs = Array.init 40 Fun.id in
  Alcotest.(check bool) "post-shutdown map" true
    (Pool.map_array pool succ xs = Array.map succ xs);
  (* a job submitted after shutdown runs inline *)
  Pool.submit pool (fun () -> Atomic.incr hits);
  Alcotest.(check int) "inline job" 9 (Atomic.get hits)

(* Determinism under forced steals: a per-chunk delay dilates execution
   enough that idle workers steal (single-core hosts otherwise rarely
   interleave), and the output must still be bit-identical to the
   sequential map, run after run. *)
let test_pool_determinism_under_steals () =
  Pool.with_pool 4 @@ fun pool ->
  let xs = Array.init 96 (fun i -> float_of_int (i + 1)) in
  let f x = Series.exp_sum ~beta:0.273 x in
  let expected = Array.map f xs in
  Fun.protect ~finally:(fun () -> Pool.set_task_delay None) @@ fun () ->
  Pool.set_task_delay (Some (fun () -> Unix.sleepf 0.0002));
  for run = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "run %d bit-identical" run)
      true
      (Pool.map_array pool f xs = expected)
  done;
  let stats = Pool.worker_stats pool in
  let steals = Array.fold_left (fun a s -> a + s.Pool.steals) 0 stats in
  Alcotest.(check bool) "steals actually happened" true (steals > 0)

(* --- qcheck properties --- *)

let prop_kahan_matches_naive_small =
  QCheck.Test.make ~count:200 ~name:"kahan agrees with naive on benign input"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun xs ->
      let naive = List.fold_left ( +. ) 0.0 xs in
      Float.abs (Kahan.sum_list xs -. naive) <= 1e-6 *. (1.0 +. Float.abs naive))

let prop_kernel_nonnegative =
  QCheck.Test.make ~count:200 ~name:"series kernel is non-negative"
    QCheck.(pair (float_bound_exclusive 50.0) (float_bound_exclusive 50.0))
    (fun (a, d) ->
      let a = Float.abs a and d = Float.abs d in
      Series.kernel ~beta:0.273 a (a +. d) >= -1e-12)

let prop_interp_within_hull =
  QCheck.Test.make ~count:200 ~name:"interpolation stays within segment hull"
    QCheck.(triple (float_bound_exclusive 10.0) (float_bound_exclusive 10.0)
              (float_bound_exclusive 1.0))
    (fun (y0, y1, frac) ->
      let c = Interp.of_points [ (0.0, y0); (1.0, y1) ] in
      let v = Interp.eval c frac in
      v >= Float.min y0 y1 -. 1e-9 && v <= Float.max y0 y1 +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0))
    (fun xs ->
      Stats.percentile 25.0 xs <= Stats.percentile 75.0 xs +. 1e-9)

let prop_kernel_matches_direct =
  (* the memoized F(a) - F(b) evaluation against the term-by-term
     reference, including a = 0 and a = b edges *)
  QCheck.Test.make ~count:500 ~name:"cached kernel agrees with direct kernel"
    QCheck.(triple (float_bound_inclusive 50.0) (float_bound_inclusive 50.0)
              (float_bound_inclusive 2.0))
    (fun (a, d, beta_off) ->
      let a = Float.abs a and d = Float.abs d in
      let beta = 0.05 +. Float.abs beta_off in
      let cached = Series.kernel ~beta a (a +. d) in
      let direct = Series.kernel_direct ~beta a (a +. d) in
      Float.abs (cached -. direct) <= 1e-9)

let prop_kernel_zero_a_matches_direct =
  QCheck.Test.make ~count:200 ~name:"cached kernel a = 0 edge"
    QCheck.(float_bound_inclusive 100.0)
    (fun b ->
      let b = Float.abs b in
      Float.abs (Series.kernel ~beta:0.273 0.0 b
                 -. Series.kernel_direct ~beta:0.273 0.0 b)
      <= 1e-9)

let prop_exp_sum_cached_bit_identical =
  QCheck.Test.make ~count:200 ~name:"cached exp_sum is bit-identical"
    QCheck.(float_bound_inclusive 100.0)
    (fun t ->
      let t = Float.abs t in
      Series.exp_sum_cached ~beta:0.273 t = Series.exp_sum ~beta:0.273 t)

let prop_fcache_matches_hashtbl_model =
  (* behavioural equivalence with a Hashtbl that never evicts: the
     Fcache may miss at any time, but every hit must return the value
     of the most recent add for that key, and a find immediately after
     an add must hit.  Capacity 64 so the op stream crosses several
     generation flips. *)
  QCheck.Test.make ~count:100
    ~name:"fcache hits agree with a hashtbl model across eviction"
    QCheck.(list_of_size Gen.(int_range 1 400) (int_bound 40))
    (fun keys ->
      let t = Fcache.create ~capacity:64 ~arity:3 () in
      let model = Hashtbl.create 64 in
      let step = ref 0 in
      List.for_all
        (fun k ->
          incr step;
          let k0 = float_of_int k in
          let found = Fcache.find3 t k0 1.5 (-2.0) in
          let hit_ok =
            Float.is_nan found
            || (match Hashtbl.find_opt model k with
               | Some v -> Float.equal v found
               | None -> false)
          in
          let v = float_of_int !step in
          Fcache.add3 t k0 1.5 (-2.0) ~value:v;
          Hashtbl.replace model k v;
          hit_ok && Float.equal v (Fcache.find3 t k0 1.5 (-2.0)))
        keys)

(* One long-lived pool per size, shared across qcheck cases: pools are
   cheap to create but their worker domains persist, and creating one
   per generated case would drain the process-wide helper budget. *)
let prop_pools =
  [ (1, Pool.create 1); (2, Pool.create 2); (4, Pool.create 4) ]

let prop_pool_of_size k = List.assoc k prop_pools

let pool_size_gen = QCheck.(map (fun b -> 1 lsl b) (int_bound 2))

let prop_pool_map_matches_sequential =
  QCheck.Test.make ~count:50 ~name:"pool map is order-preserving"
    QCheck.(pair pool_size_gen (small_list small_int))
    (fun (size, xs) ->
      Pool.map_list (prop_pool_of_size size) (fun x -> x * 3) xs
      = List.map (fun x -> x * 3) xs)

(* The three execution strategies — inline, persistent work-stealing,
   legacy fork-join striding — must be indistinguishable from results
   alone, at every pool size. *)
let prop_pool_steal_matches_oracles =
  QCheck.Test.make ~count:30
    ~name:"work-stealing map = sequential map = strided map"
    QCheck.(pair pool_size_gen (list_of_size Gen.(int_range 0 80) small_int))
    (fun (size, xs) ->
      let pool = prop_pool_of_size size in
      let f x = Series.exp_sum ~beta:0.273 (float_of_int (abs x mod 50)) in
      let xs = Array.of_list xs in
      let seq = Array.map f xs in
      Pool.map_array pool f xs = seq
      && Pool.map_array_strided pool f xs = seq)

(* If several items raise, the re-raised exception must be the one a
   sequential left-to-right scan would surface first — for the
   work-stealing path and the strided oracle alike. *)
let prop_pool_first_exception_identity =
  QCheck.Test.make ~count:30 ~name:"first-exception identity under parallelism"
    QCheck.(
      triple pool_size_gen
        (int_range 1 60)
        (list_of_size Gen.(int_range 1 6) (int_bound 59)))
    (fun (size, n, bad) ->
      let pool = prop_pool_of_size size in
      let f i = if List.mem i bad then failwith (string_of_int i) else i in
      let xs = Array.init n Fun.id in
      let outcome map =
        match map () with
        | (_ : int array) -> None
        | exception Failure msg -> Some msg
      in
      let seq = outcome (fun () -> Array.map f xs) in
      outcome (fun () -> Pool.map_array pool f xs) = seq
      && outcome (fun () -> Pool.map_array_strided pool f xs) = seq)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_kahan_matches_naive_small;
      prop_kernel_nonnegative;
      prop_interp_within_hull;
      prop_percentile_monotone;
      prop_kernel_matches_direct;
      prop_kernel_zero_a_matches_direct;
      prop_exp_sum_cached_bit_identical;
      prop_fcache_matches_hashtbl_model;
      prop_pool_map_matches_sequential;
      prop_pool_steal_matches_oracles;
      prop_pool_first_exception_identity ]

let () =
  Alcotest.run "numeric"
    [ ( "kahan",
        [ Alcotest.test_case "empty" `Quick test_kahan_empty;
          Alcotest.test_case "simple" `Quick test_kahan_simple;
          Alcotest.test_case "compensation" `Quick test_kahan_compensation;
          Alcotest.test_case "many small" `Quick test_kahan_many_small;
          Alcotest.test_case "negative count" `Quick test_kahan_sum_fn_negative;
          Alcotest.test_case "array" `Quick test_kahan_array ] );
      ( "series",
        [ Alcotest.test_case "zero interval" `Quick test_series_kernel_zero_interval;
          Alcotest.test_case "positive" `Quick test_series_kernel_positive;
          Alcotest.test_case "monotone in b" `Quick test_series_kernel_monotone_in_b;
          Alcotest.test_case "bounded by limit" `Quick test_series_kernel_bounded_by_limit;
          Alcotest.test_case "decays with a" `Quick test_series_kernel_decays_with_a;
          Alcotest.test_case "large beta vanishes" `Quick test_series_large_beta_vanishes;
          Alcotest.test_case "invalid args" `Quick test_series_invalid;
          Alcotest.test_case "exp_sum identity" `Quick test_series_exp_sum_matches_kernel_at_zero;
          Alcotest.test_case "negative clamp" `Quick test_series_negative_clamp;
          Alcotest.test_case "cached across eviction" `Quick test_series_cached_across_eviction ] );
      ( "fcache",
        [ Alcotest.test_case "roundtrip" `Quick test_fcache_roundtrip;
          Alcotest.test_case "arity checked" `Quick test_fcache_arity_checked;
          Alcotest.test_case "eviction bounded" `Quick test_fcache_eviction_bounded ] );
      ( "rootfind",
        [ Alcotest.test_case "bisect linear" `Quick test_bisect_linear;
          Alcotest.test_case "brent polynomial" `Quick test_brent_polynomial;
          Alcotest.test_case "endpoint root" `Quick test_brent_endpoint_root;
          Alcotest.test_case "no sign change" `Quick test_bisect_no_sign_change;
          Alcotest.test_case "invert monotone" `Quick test_invert_monotone;
          Alcotest.test_case "invert already met" `Quick test_invert_monotone_already_met ] );
      ( "interp",
        [ Alcotest.test_case "exact at knots" `Quick test_interp_exact_at_knots;
          Alcotest.test_case "midpoint" `Quick test_interp_midpoint;
          Alcotest.test_case "extrapolation" `Quick test_interp_extrapolation;
          Alcotest.test_case "unsorted input" `Quick test_interp_unsorted_input;
          Alcotest.test_case "duplicate x" `Quick test_interp_duplicate_x;
          Alcotest.test_case "tabulate" `Quick test_interp_tabulate ] );
      ( "stats",
        [ Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "singleton variance" `Quick test_stats_singleton_variance;
          Alcotest.test_case "min max" `Quick test_stats_min_max;
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "percentile bounds" `Quick test_stats_percentile_bounds;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "empty" `Quick test_stats_empty ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "different seeds" `Quick test_rng_different_seeds;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty ] );
      ( "ticks",
        [ Alcotest.test_case "roundtrip" `Quick test_ticks_roundtrip;
          Alcotest.test_case "exact rejects off-grid" `Quick test_ticks_exact_rejects_offgrid;
          Alcotest.test_case "ceil and floor" `Quick test_ticks_ceil_floor;
          Alcotest.test_case "sub truncates" `Quick test_ticks_sub_truncates;
          Alcotest.test_case "negative" `Quick test_ticks_negative ] );
      ( "pool",
        [ Alcotest.test_case "sequential is map" `Quick test_pool_sequential_is_map;
          Alcotest.test_case "parallel preserves order" `Quick test_pool_parallel_preserves_order;
          Alcotest.test_case "bit-identical floats" `Quick test_pool_matches_sequential_floats;
          Alcotest.test_case "empty and singleton" `Quick test_pool_empty_and_singleton;
          Alcotest.test_case "nested runs sequentially" `Quick test_pool_nested_runs_sequentially;
          Alcotest.test_case "exception order" `Quick test_pool_exception_first_index;
          Alcotest.test_case "validation" `Quick test_pool_validation;
          Alcotest.test_case "map_list direct path" `Quick test_pool_map_list_direct;
          Alcotest.test_case "for_range" `Quick test_pool_for_range;
          Alcotest.test_case "submit and shutdown" `Quick test_pool_submit_and_shutdown;
          Alcotest.test_case "determinism under steals" `Quick
            test_pool_determinism_under_steals ] );
      ( "tridiag",
        [ Alcotest.test_case "identity" `Quick test_tridiag_identity;
          Alcotest.test_case "known system" `Quick test_tridiag_known_system;
          Alcotest.test_case "single" `Quick test_tridiag_single;
          Alcotest.test_case "random residuals" `Quick test_tridiag_residual_random;
          Alcotest.test_case "validation" `Quick test_tridiag_validation ] );
      ("properties", qcheck_tests) ]
