(* Tests for the core algorithm: configuration, window search,
   design-point selection (incl. the paper's worked DPF example) and the
   iterative loop on the published instances. *)

open Batsched_taskgraph
open Batsched_sched

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let diamond () =
  let t id pairs = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) pairs in
  Graph.make ~label:"diamond" ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
    [ t 0 [ (400.0, 1.0); (200.0, 2.0); (50.0, 4.0) ];
      t 1 [ (600.0, 2.0); (300.0, 4.0); (80.0, 8.0) ];
      t 2 [ (500.0, 1.0); (250.0, 2.0); (60.0, 4.0) ];
      t 3 [ (450.0, 3.0); (220.0, 6.0); (70.0, 12.0) ] ]

(* --- Config --- *)

let test_config_defaults () =
  let cfg = Batsched.Config.make ~deadline:10.0 () in
  Alcotest.(check string) "model" "rakhmatov" cfg.Batsched.Config.model.Batsched_battery.Model.name;
  check_float "sr weight" 1.0 cfg.Batsched.Config.weights.Batsched.Config.sr

let test_config_validation () =
  Alcotest.check_raises "deadline"
    (Invalid_argument "Config.make: deadline must be positive") (fun () ->
      ignore (Batsched.Config.make ~deadline:0.0 ()));
  Alcotest.check_raises "iterations"
    (Invalid_argument "Config.make: max_iterations < 1") (fun () ->
      ignore (Batsched.Config.make ~deadline:1.0 ~max_iterations:0 ()))

(* --- Window --- *)

let test_window_initial_start_full_slack () =
  (* deadline above all-slowest at column m-2: start = m-2 *)
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:30.0 () in
  Alcotest.(check int) "narrowest" 1 (Batsched.Window.initial_window_start cfg g)

let test_window_initial_start_tight () =
  (* deadline only meetable with the fastest column: start = 0 *)
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:7.5 () in
  Alcotest.(check int) "forced wide" 0 (Batsched.Window.initial_window_start cfg g)

let test_window_unmeetable_raises () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:6.0 () in
  Alcotest.check_raises "unmeetable" Batsched.Config.Deadline_unmeetable
    (fun () -> ignore (Batsched.Window.initial_window_start cfg g))

let test_window_evaluate_sweeps_down_to_zero () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:30.0 () in
  let seq = Analysis.any_topological_order g in
  let w = Batsched.Window.evaluate cfg g ~sequence:seq in
  let starts =
    List.map (fun (r : Batsched.Window.window_result) -> r.window_start)
      w.Batsched.Window.per_window
  in
  Alcotest.(check (list int)) "narrow to wide" [ 1; 0 ] starts

let test_window_best_is_min_sigma () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:20.0 () in
  let seq = Analysis.any_topological_order g in
  let w = Batsched.Window.evaluate cfg g ~sequence:seq in
  List.iter
    (fun (r : Batsched.Window.window_result) ->
      Alcotest.(check bool) "best <= all" true
        (w.Batsched.Window.best.Batsched.Window.sigma <= r.sigma +. 1e-9))
    w.Batsched.Window.per_window

let test_window_results_meet_deadline () =
  let g = diamond () in
  let deadline = 20.0 in
  let cfg = Batsched.Config.make ~deadline () in
  let seq = Analysis.any_topological_order g in
  let w = Batsched.Window.evaluate cfg g ~sequence:seq in
  List.iter
    (fun (r : Batsched.Window.window_result) ->
      Alcotest.(check bool) "finish <= d" true (r.finish <= deadline +. 1e-9))
    w.Batsched.Window.per_window

let test_window_mask () =
  let g = diamond () in
  Alcotest.(check (list (pair int bool))) "mask"
    [ (0, false); (1, true); (2, true) ]
    (Batsched.Window.mask g ~window_start:1)

(* --- Choose --- *)

let test_choose_last_task_lowest_power () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:30.0 () in
  let seq = [ 0; 1; 2; 3 ] in
  let a = Batsched.Choose.choose_design_points cfg g ~sequence:seq ~window_start:0 in
  Alcotest.(check int) "task 3 at m-1" 2 (Assignment.column a 3)

let test_choose_meets_deadline () =
  let g = diamond () in
  List.iter
    (fun deadline ->
      let cfg = Batsched.Config.make ~deadline () in
      let seq = [ 0; 2; 1; 3 ] in
      let ws = Batsched.Window.initial_window_start cfg g in
      let a = Batsched.Choose.choose_design_points cfg g ~sequence:seq ~window_start:ws in
      Alcotest.(check bool)
        (Printf.sprintf "meets %.1f" deadline)
        true
        (Assignment.total_time g a <= deadline +. 1e-9))
    [ 7.5; 10.0; 15.0; 20.0; 28.0 ]

let test_choose_loose_deadline_all_lowest () =
  (* with unlimited slack every task can sit at the lowest-power point *)
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:1000.0 () in
  let a =
    Batsched.Choose.choose_design_points cfg g ~sequence:[ 0; 1; 2; 3 ]
      ~window_start:0
  in
  for i = 0 to 3 do
    Alcotest.(check int) "lowest power" 2 (Assignment.column a i)
  done

let test_choose_respects_window () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:1000.0 () in
  let a =
    Batsched.Choose.choose_design_points cfg g ~sequence:[ 0; 1; 2; 3 ]
      ~window_start:1
  in
  for i = 0 to 3 do
    Alcotest.(check bool) "inside window" true (Assignment.column a i >= 1)
  done

let test_choose_rejects_bad_sequence () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:20.0 () in
  Alcotest.check_raises "invalid"
    (Invalid_argument "Choose.choose_design_points: invalid sequence")
    (fun () ->
      ignore
        (Batsched.Choose.choose_design_points cfg g ~sequence:[ 3; 2; 1; 0 ]
           ~window_start:0))

let test_calculate_dpf_feasible_state () =
  (* tagged task at position 1; suffix fixed at lowest power; deadline
     huge -> no upgrades needed, DPF from the parked prefix (all at the
     lowest-power column -> weight 0 -> DPF 0) *)
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:1000.0 () in
  let seq = [| 0; 1; 2; 3 |] in
  let a = Assignment.all_lowest_power g in
  let r =
    Batsched.Choose.calculate_dpf cfg g ~sequence:seq ~assignment:a
      ~tagged_pos:1 ~window_start:0
  in
  check_float "dpf" 0.0 r.Batsched.Choose.dpf;
  Alcotest.(check bool) "enr in unit" true
    (r.Batsched.Choose.enr >= 0.0 && r.Batsched.Choose.enr <= 1.0)

let test_calculate_dpf_upgrades_low_energy_first () =
  (* force upgrades: deadline below the all-lowest total (26) but above
     what one upgrade of the cheapest free task achieves *)
  let g = diamond () in
  (* energy vector: avg energies: t0 333.3, t1 1013.3, t2 413.3, t3 1170
     -> order [0;2;1;3].  Tagged pos 2 (task 2 in seq [0;1;2;3]);
     free = {0, 1}; first free in energy order is 0. *)
  let cfg = Batsched.Config.make ~deadline:24.5 () in
  let seq = [| 0; 1; 2; 3 |] in
  (* suffix: task 3 fixed at lowest (12), tagged task 2 at lowest (4),
     free 0,1 parked lowest (4 + 8) -> total 28 > 24.5; upgrading task 0
     (cheapest) to column 1 saves 2 -> 26 > 24.5; then to column 0 saves
     1 more -> 25 > 24.5; then task 0 fixed, upgrade task 1 to column 1
     saves 4 -> 21 <= 24.5. *)
  let a = Assignment.all_lowest_power g in
  let r =
    Batsched.Choose.calculate_dpf cfg g ~sequence:seq ~assignment:a
      ~tagged_pos:2 ~window_start:0
  in
  Alcotest.(check int) "task0 fully upgraded" 0
    (Assignment.column r.Batsched.Choose.hypothetical 0);
  Alcotest.(check int) "task1 one step" 1
    (Assignment.column r.Batsched.Choose.hypothetical 1);
  Alcotest.(check bool) "feasible" true (r.Batsched.Choose.dpf < Float.infinity)

let test_calculate_dpf_infeasible_is_infinite () =
  (* deadline below even the fully-upgraded prefix: dpf = infinity *)
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:10.0 () in
  let seq = [| 0; 1; 2; 3 |] in
  (* suffix task3 at lowest (12) alone already busts 10 *)
  let a = Assignment.all_lowest_power g in
  let r =
    Batsched.Choose.calculate_dpf cfg g ~sequence:seq ~assignment:a
      ~tagged_pos:2 ~window_start:0
  in
  Alcotest.(check bool) "infinite" true (r.Batsched.Choose.dpf = Float.infinity)

let test_calculate_dpf_last_task_slack_rule () =
  (* tagged_pos = 0: DPF equals the slack ratio of the complete
     assignment *)
  let g = diamond () in
  let d = 30.0 in
  let cfg = Batsched.Config.make ~deadline:d () in
  let seq = [| 0; 1; 2; 3 |] in
  let a = Assignment.all_lowest_power g in
  let r =
    Batsched.Choose.calculate_dpf cfg g ~sequence:seq ~assignment:a
      ~tagged_pos:0 ~window_start:0
  in
  let te = Assignment.total_time g a in
  check_close 1e-9 "slack rule" ((d -. te) /. d) r.Batsched.Choose.dpf

(* --- Iterate on the published instances --- *)

let test_iterate_g3_shape () =
  let g = Instances.g3 in
  let cfg = Batsched.Config.make ~deadline:Instances.g3_deadline () in
  let r = Batsched.Iterate.run cfg g in
  (* monotone min-sigma, terminates within a handful of iterations *)
  let sigmas =
    List.map (fun (it : Batsched.Iterate.iteration) -> it.min_sigma) r.iterations
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone sigmas);
  Alcotest.(check bool) "terminates quickly" true
    (List.length r.iterations >= 2 && List.length r.iterations <= 10);
  (* final quality: paper reports 13737 at Delta 229.8; our faithful
     reimplementation must land within 5% and meet the deadline *)
  check_close (0.05 *. 13737.0) "sigma near paper" 13737.0 r.sigma;
  Alcotest.(check bool) "meets deadline" true
    (r.finish <= Instances.g3_deadline +. 1e-9)

let test_iterate_g3_beats_first_iteration () =
  let g = Instances.g3 in
  let cfg = Batsched.Config.make ~deadline:Instances.g3_deadline () in
  let r = Batsched.Iterate.run cfg g in
  match r.iterations with
  | first :: _ :: _ ->
      Alcotest.(check bool) "improved" true (r.sigma < first.min_sigma)
  | _ -> Alcotest.fail "expected multiple iterations"

let test_iterate_g3_weighted_sequences_topological () =
  let g = Instances.g3 in
  let cfg = Batsched.Config.make ~deadline:Instances.g3_deadline () in
  let r = Batsched.Iterate.run cfg g in
  List.iter
    (fun (it : Batsched.Iterate.iteration) ->
      Alcotest.(check bool) "seq valid" true
        (Analysis.is_topological g it.sequence);
      Alcotest.(check bool) "weighted valid" true
        (Analysis.is_topological g it.weighted_sequence))
    r.iterations

let test_iterate_g3_every_iteration_usable () =
  (* the paper's selling point: each iteration yields a valid schedule
     meeting the deadline *)
  let g = Instances.g3 in
  let cfg = Batsched.Config.make ~deadline:Instances.g3_deadline () in
  let r = Batsched.Iterate.run cfg g in
  List.iter
    (fun it ->
      let s = Batsched.Iterate.schedule_of_iteration g it in
      Alcotest.(check bool) "meets deadline" true
        (Schedule.meets_deadline g s ~deadline:Instances.g3_deadline))
    r.iterations

let test_iterate_g2_all_deadlines () =
  let g = Instances.g2 in
  (* paper values: 30913 / 13751 / 7961; accept within 5% *)
  List.iter2
    (fun deadline paper ->
      let cfg = Batsched.Config.make ~deadline () in
      let r = Batsched.Iterate.run cfg g in
      check_close (0.05 *. paper)
        (Printf.sprintf "sigma at d=%.0f" deadline)
        paper r.sigma;
      Alcotest.(check bool) "meets deadline" true (r.finish <= deadline +. 1e-9))
    Instances.g2_deadlines [ 30913.0; 13751.0; 7961.0 ]

let test_iterate_sigma_decreases_with_deadline () =
  let g = Instances.g2 in
  let sigma d =
    (Batsched.Iterate.run (Batsched.Config.make ~deadline:d ()) g)
      .Batsched.Iterate.sigma
  in
  let s55 = sigma 55.0 and s75 = sigma 75.0 and s95 = sigma 95.0 in
  Alcotest.(check bool) "monotone in slack" true (s55 >= s75 && s75 >= s95)

let test_iterate_unmeetable_deadline () =
  let g = Instances.g2 in
  let cfg = Batsched.Config.make ~deadline:40.0 () in
  Alcotest.check_raises "unmeetable" Batsched.Config.Deadline_unmeetable
    (fun () -> ignore (Batsched.Iterate.run cfg g))

let test_iterate_single_task_graph () =
  let t = Task.of_pairs ~id:0 ~name:"only" [ (500.0, 2.0); (100.0, 6.0) ] in
  let g = Graph.make ~edges:[] [ t ] in
  let cfg = Batsched.Config.make ~deadline:10.0 () in
  let r = Batsched.Iterate.run cfg g in
  (* single task: fixed at the lowest-power point *)
  Alcotest.(check (list int)) "sequence" [ 0 ]
    r.Batsched.Iterate.schedule.Schedule.sequence;
  Alcotest.(check int) "lowest power" 1
    (Assignment.column r.Batsched.Iterate.schedule.Schedule.assignment 0)

let test_iterate_respects_max_iterations () =
  let g = Instances.g3 in
  let cfg =
    Batsched.Config.make ~deadline:Instances.g3_deadline ~max_iterations:1 ()
  in
  let r = Batsched.Iterate.run cfg g in
  Alcotest.(check int) "capped" 1 (List.length r.iterations)

let test_iterate_ideal_model_prefers_low_energy () =
  (* under the ideal model sigma = total charge; with a loose deadline
     the algorithm must discover the all-lowest-power assignment *)
  let g = diamond () in
  let model = Batsched_battery.Ideal.model in
  let cfg = Batsched.Config.make ~model ~deadline:1000.0 () in
  let r = Batsched.Iterate.run cfg g in
  let charge =
    Assignment.total_charge g r.Batsched.Iterate.schedule.Schedule.assignment
  in
  let minimal = Assignment.total_charge g (Assignment.all_lowest_power g) in
  check_close 1e-6 "minimal charge" minimal charge

(* --- regression pins --- *)

let test_published_points_pinned () =
  (* These pin THIS implementation's deterministic outputs (not the
     paper's — those live in test_iterate_g2_all_deadlines /
     test_iterate_g3_shape as 5% bands).  A refactor that shifts any of
     them has changed algorithmic behaviour and must update
     EXPERIMENTS.md consciously. *)
  List.iter
    (fun (g, deadline, expected) ->
      let r = Batsched.Iterate.run (Batsched.Config.make ~deadline ()) g in
      check_close 0.05
        (Printf.sprintf "%s at %.0f" (Graph.label g) deadline)
        expected r.Batsched.Iterate.sigma)
    [ (Instances.g2, 55.0, 30955.2177);
      (Instances.g2, 75.0, 13758.0765);
      (Instances.g2, 95.0, 8044.5141);
      (Instances.g3, 100.0, 57428.6781);
      (Instances.g3, 150.0, 41257.7628);
      (Instances.g3, 230.0, 14068.7027) ]

(* --- preprocessing equivalence --- *)

let test_transitive_reduction_preserves_result () =
  (* the algorithm only consumes precedence through descendants and
     ready sets, both invariant under transitive reduction, so the run
     must be bit-identical *)
  let t id pairs = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" id) pairs in
  let g =
    Graph.make ~label:"redundant"
      ~edges:[ (0, 1); (1, 2); (0, 2); (2, 3); (0, 3) ]
      [ t 0 [ (400.0, 1.0); (100.0, 3.0) ];
        t 1 [ (600.0, 2.0); (150.0, 5.0) ];
        t 2 [ (500.0, 1.0); (120.0, 4.0) ];
        t 3 [ (450.0, 3.0); (110.0, 9.0) ] ]
  in
  let reduced = Transform.transitive_reduction g in
  Alcotest.(check bool) "edges dropped" true
    (Graph.num_edges reduced < Graph.num_edges g);
  let cfg = Batsched.Config.make ~deadline:15.0 () in
  let a = Batsched.Iterate.run cfg g in
  let b = Batsched.Iterate.run cfg reduced in
  check_float "same sigma" a.Batsched.Iterate.sigma b.Batsched.Iterate.sigma;
  Alcotest.(check (list int)) "same sequence"
    a.Batsched.Iterate.schedule.Schedule.sequence
    b.Batsched.Iterate.schedule.Schedule.sequence

(* --- polish --- *)

let test_polish_never_worse () =
  List.iter
    (fun (g, deadline) ->
      let cfg = Batsched.Config.make ~deadline () in
      let r = Batsched.Iterate.run cfg g in
      let p = Batsched.Polish.polish cfg g r in
      Alcotest.(check bool) "no worse" true
        (p.Batsched.Iterate.sigma <= r.Batsched.Iterate.sigma +. 1e-9);
      Alcotest.(check bool) "still feasible" true
        (p.Batsched.Iterate.finish <= deadline +. 1e-9);
      Alcotest.(check bool) "still topological" true
        (Analysis.is_topological g
           p.Batsched.Iterate.schedule.Schedule.sequence))
    [ (Instances.g2, 75.0); (Instances.g3, 230.0); (diamond (), 20.0) ]

let test_polish_improves_bad_order () =
  (* feed an anti-sorted schedule (light tasks first): local search must
     strictly improve it *)
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:30.0 () in
  let bad =
    Schedule.make g ~sequence:[ 0; 2; 1; 3 ]
      ~assignment:(Assignment.of_list g [ 2; 0; 2; 2 ])
  in
  let polished = Batsched.Polish.two_swap cfg g bad in
  Alcotest.(check bool) "strictly better or equal" true
    (Schedule.battery_cost ~model:cfg.Batsched.Config.model g polished
     <= Schedule.battery_cost ~model:cfg.Batsched.Config.model g bad +. 1e-9)

let test_polish_validation () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:30.0 () in
  let r = Batsched.Iterate.run cfg g in
  Alcotest.check_raises "rounds" (Invalid_argument "Polish.two_swap: max_rounds < 1")
    (fun () ->
      ignore (Batsched.Polish.two_swap ~max_rounds:0 cfg g r.Batsched.Iterate.schedule))

(* Delta vs reference evaluation, at pool 1 and pool 4: same schedule
   out (the 1e-9 improvement margin absorbs the paths' round-off
   difference), same sigma from the full model. *)
let test_polish_delta_matches_reference () =
  List.iter
    (fun pool ->
      List.iter
        (fun (g, deadline) ->
          let cfg = Batsched.Config.make ?pool ~deadline () in
          let r = Batsched.Iterate.run cfg g in
          let run eval = Batsched.Polish.polish ~eval cfg g r in
          let a = run `Delta and b = run `Reference in
          Alcotest.(check (list int)) "sequence"
            b.Batsched.Iterate.schedule.Schedule.sequence
            a.Batsched.Iterate.schedule.Schedule.sequence;
          Alcotest.(check (list int)) "assignment"
            (Assignment.to_list b.Batsched.Iterate.schedule.Schedule.assignment)
            (Assignment.to_list a.Batsched.Iterate.schedule.Schedule.assignment);
          check_float "sigma" b.Batsched.Iterate.sigma a.Batsched.Iterate.sigma)
        [ (Instances.g2, 75.0); (Instances.g3, 230.0); (diamond (), 20.0) ])
    [ None; Some (Batsched_numeric.Pool.create 4) ]

(* --- multistart --- *)

let test_multistart_never_worse_than_single () =
  let g = Instances.g2 in
  List.iter
    (fun deadline ->
      let cfg = Batsched.Config.make ~deadline () in
      let single = (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma in
      let rng = Batsched_numeric.Rng.create 7 in
      let multi =
        (Batsched.Iterate.run_multistart ~rng ~starts:6 cfg g)
          .Batsched.Iterate.sigma
      in
      Alcotest.(check bool) "no worse" true (multi <= single +. 1e-9))
    Instances.g2_deadlines

let test_multistart_one_start_equals_run () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:20.0 () in
  let rng = Batsched_numeric.Rng.create 1 in
  check_float "identical"
    (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma
    (Batsched.Iterate.run_multistart ~rng ~starts:1 cfg g).Batsched.Iterate.sigma

let test_multistart_validation () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:20.0 () in
  Alcotest.check_raises "starts" (Invalid_argument "Iterate.run_multistart: starts < 1")
    (fun () ->
      ignore
        (Batsched.Iterate.run_multistart ~rng:(Batsched_numeric.Rng.create 1)
           ~starts:0 cfg g));
  Alcotest.check_raises "screen"
    (Invalid_argument "Iterate.run_multistart: screen < starts - 1") (fun () ->
      ignore
        (Batsched.Iterate.run_multistart ~rng:(Batsched_numeric.Rng.create 1)
           ~starts:4 ~screen:2 cfg g))

let test_multistart_screen_deterministic_and_feasible () =
  let g = Instances.g2 in
  let deadline = List.hd Instances.g2_deadlines in
  let cfg = Batsched.Config.make ~deadline () in
  let run () =
    Batsched.Iterate.run_multistart
      ~rng:(Batsched_numeric.Rng.create 7)
      ~starts:3 ~screen:8 cfg g
  in
  let a = run () and b = run () in
  check_float "deterministic" a.Batsched.Iterate.sigma b.Batsched.Iterate.sigma;
  Alcotest.(check bool) "meets deadline" true
    (a.Batsched.Iterate.finish <= deadline +. 1e-9);
  (* the screen only reorders/filters the random seeds; the greedy seed
     always runs, so the screened result can never lose to single-start *)
  let single = (Batsched.Iterate.run cfg g).Batsched.Iterate.sigma in
  Alcotest.(check bool) "no worse than single" true
    (a.Batsched.Iterate.sigma <= single +. 1e-9)

let test_multistart_screen_pool_invariant () =
  (* screening ranks by (sigma, draw index) with a deterministic batch
     sweep, so the screened seed choice — and the final result — is
     bit-identical at any pool size *)
  let g = Instances.g2 in
  let run pool =
    Batsched.Iterate.run_multistart
      ~rng:(Batsched_numeric.Rng.create 11)
      ~starts:3 ~screen:10
      (Batsched.Config.make ?pool ~deadline:(List.hd Instances.g2_deadlines) ())
      g
  in
  let a = run None and b = run (Some (Batsched_numeric.Pool.create 4)) in
  Alcotest.(check (list int)) "sequence"
    a.Batsched.Iterate.schedule.Schedule.sequence
    b.Batsched.Iterate.schedule.Schedule.sequence;
  check_float "sigma" a.Batsched.Iterate.sigma b.Batsched.Iterate.sigma

let test_multistart_screen_one_start_draws_nothing () =
  (* starts = 1 skips the screen entirely: the rng is untouched, so a
     draw made afterwards matches a fresh stream *)
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:20.0 () in
  let rng = Batsched_numeric.Rng.create 3 in
  ignore (Batsched.Iterate.run_multistart ~rng ~starts:1 ~screen:5 cfg g);
  Alcotest.(check int) "rng untouched"
    (Batsched_numeric.Rng.int (Batsched_numeric.Rng.create 3) 1_000_000)
    (Batsched_numeric.Rng.int rng 1_000_000)

(* --- Idle (peak shaving) --- *)

let test_idle_peak_sigma_constant_load () =
  (* under constant load sigma is increasing, so the peak is at the
     end *)
  let model = Batsched_battery.Rakhmatov.model () in
  let p = Batsched_battery.Profile.constant ~current:400.0 ~duration:30.0 in
  check_close 1e-9 "peak at end"
    (Batsched_battery.Rakhmatov.sigma p ~at:30.0)
    (Batsched.Idle.peak_sigma model p)

let test_idle_never_raises_peak () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:20.0 () in
  let sched = (Batsched.Iterate.run cfg g).Batsched.Iterate.schedule in
  let r = Batsched.Idle.optimize cfg g sched in
  Alcotest.(check bool) "improvement nonneg" true
    (r.Batsched.Idle.improvement >= -1e-9);
  Alcotest.(check bool) "gapped <= packed" true
    (r.Batsched.Idle.peak_gapped <= r.Batsched.Idle.peak_packed +. 1e-9)

let test_idle_fits_deadline () =
  let g = diamond () in
  let deadline = 22.0 in
  let cfg = Batsched.Config.make ~deadline () in
  (* force structural slack: schedule against a tighter inner deadline *)
  let inner = Batsched.Config.make ~deadline:12.0 () in
  let sched = (Batsched.Iterate.run inner g).Batsched.Iterate.schedule in
  let r = Batsched.Idle.optimize cfg g sched in
  Alcotest.(check bool) "fits deadline" true
    (Batsched_battery.Profile.length r.Batsched.Idle.profile
     <= deadline +. 1e-6)

let test_idle_shaves_with_structural_slack () =
  (* a sprint schedule plus generous slack must benefit from rest *)
  let g = Instances.g3 in
  let cfg_inner = Batsched.Config.make ~deadline:170.0 () in
  let cfg_full = Batsched.Config.make ~deadline:230.0 () in
  let sched = (Batsched.Iterate.run cfg_inner g).Batsched.Iterate.schedule in
  let r = Batsched.Idle.optimize cfg_full g sched in
  Alcotest.(check bool) "positive shave" true
    (r.Batsched.Idle.improvement > 0.0);
  Alcotest.(check bool) "has placements" true
    (r.Batsched.Idle.placements <> [])

let test_idle_rejects_missed_deadline () =
  let g = diamond () in
  let cfg = Batsched.Config.make ~deadline:30.0 () in
  let sched = (Batsched.Iterate.run cfg g).Batsched.Iterate.schedule in
  let tight = Batsched.Config.make ~deadline:8.0 () in
  Alcotest.check_raises "missed"
    (Invalid_argument "Idle.optimize: schedule misses the deadline")
    (fun () -> ignore (Batsched.Idle.optimize tight g sched))

let test_idle_survivable_window () =
  let g = Instances.g3 in
  let cfg_inner = Batsched.Config.make ~deadline:170.0 () in
  let cfg_full = Batsched.Config.make ~deadline:230.0 () in
  let sched = (Batsched.Iterate.run cfg_inner g).Batsched.Iterate.schedule in
  let r = Batsched.Idle.optimize cfg_full g sched in
  let lo, hi = Batsched.Idle.survivable_alphas r in
  check_float "lo is gapped peak" r.Batsched.Idle.peak_gapped lo;
  check_float "hi is packed peak" r.Batsched.Idle.peak_packed hi;
  (* a battery inside the window really does die packed and survive
     gapped *)
  let alpha = 0.5 *. (lo +. hi) in
  let model = cfg_full.Batsched.Config.model in
  let packed = Schedule.to_profile g sched in
  Alcotest.(check bool) "dies packed" false
    (Batsched_battery.Lifetime.survives ~model ~alpha packed);
  Alcotest.(check bool) "survives gapped" true
    (Batsched_battery.Lifetime.survives ~model ~alpha r.Batsched.Idle.profile)

(* --- term-weight ablation plumbing --- *)

let test_knockout_weights_still_feasible () =
  let g = Instances.g2 in
  List.iter
    (fun weights ->
      let cfg = Batsched.Config.make ~weights ~deadline:55.0 () in
      let r = Batsched.Iterate.run cfg g in
      Alcotest.(check bool) "meets deadline" true (r.finish <= 55.0 +. 1e-9))
    [ { Batsched.Config.paper_weights with Batsched.Config.sr = 0.0 };
      { Batsched.Config.paper_weights with Batsched.Config.cr = 0.0 };
      { Batsched.Config.paper_weights with Batsched.Config.enr = 0.0 };
      { Batsched.Config.paper_weights with Batsched.Config.cif = 0.0 };
      { Batsched.Config.paper_weights with Batsched.Config.dpf = 0.0 } ]

(* --- qcheck properties --- *)

let gen_case =
  QCheck.(map
            (fun (seed, slack10) ->
              let rng = Batsched_numeric.Rng.create seed in
              let spec = { Generators.default_spec with Generators.num_points = 4 } in
              let g = Generators.fork_join ~rng ~spec ~widths:[ 2; 3 ] in
              let slack = 0.05 +. (0.9 *. float_of_int slack10 /. 10.0) in
              (g, Generators.feasible_deadline g ~slack))
            (pair (int_bound 10_000) (int_bound 10)))

let prop_iterate_always_feasible =
  QCheck.Test.make ~count:40
    ~name:"iterate returns a feasible schedule on random instances" gen_case
    (fun (g, deadline) ->
      let cfg = Batsched.Config.make ~deadline () in
      let r = Batsched.Iterate.run cfg g in
      Analysis.is_topological g r.Batsched.Iterate.schedule.Schedule.sequence
      && r.Batsched.Iterate.finish <= deadline +. 1e-9)

let prop_iterate_min_sigma_monotone =
  QCheck.Test.make ~count:25 ~name:"per-iteration min sigma is monotone"
    gen_case (fun (g, deadline) ->
      let cfg = Batsched.Config.make ~deadline () in
      let r = Batsched.Iterate.run cfg g in
      let rec monotone = function
        | (a : Batsched.Iterate.iteration)
          :: (b :: _ as rest) -> a.min_sigma >= b.min_sigma -. 1e-9 && monotone rest
        | _ -> true
      in
      monotone r.Batsched.Iterate.iterations)

let prop_choose_within_window =
  QCheck.Test.make ~count:40 ~name:"chosen columns always inside the window"
    gen_case (fun (g, deadline) ->
      let cfg = Batsched.Config.make ~deadline () in
      let ws = Batsched.Window.initial_window_start cfg g in
      let seq = Priorities.sequence_dec_energy g in
      let a = Batsched.Choose.choose_design_points cfg g ~sequence:seq ~window_start:ws in
      List.for_all
        (fun i -> Assignment.column a i >= ws)
        (List.init (Graph.num_tasks g) Fun.id))

(* --- incremental CalculateDPF vs the seed reference --- *)

let test_choose_incremental_matches_reference_instances () =
  (* selection identity on every published instance, every published
     deadline, every feasible window start: the incremental evaluation
     must commit exactly the schedules the seed implementation did *)
  List.iter
    (fun (g, deadlines) ->
      List.iter
        (fun deadline ->
          let cfg = Batsched.Config.make ~deadline () in
          let seq = Priorities.sequence_dec_energy g in
          for ws = 0 to Batsched.Window.initial_window_start cfg g do
            let a =
              Batsched.Choose.choose_design_points cfg g ~sequence:seq
                ~window_start:ws
            in
            let b =
              Batsched.Choose.choose_design_points_reference cfg g
                ~sequence:seq ~window_start:ws
            in
            Alcotest.(check (list int))
              (Printf.sprintf "%s d=%.0f ws=%d" (Graph.label g) deadline ws)
              (Assignment.to_list b) (Assignment.to_list a)
          done)
        deadlines)
    [ (Instances.g2, Instances.g2_deadlines);
      (Instances.g3, Instances.g3_deadlines) ]

let prop_choose_incremental_matches_reference =
  QCheck.Test.make ~count:500
    ~name:"incremental choose selects the reference schedule" gen_case
    (fun (g, deadline) ->
      let cfg = Batsched.Config.make ~deadline () in
      let seq = Priorities.sequence_dec_energy g in
      let top = Batsched.Window.initial_window_start cfg g in
      List.for_all
        (fun ws ->
          Assignment.equal
            (Batsched.Choose.choose_design_points cfg g ~sequence:seq
               ~window_start:ws)
            (Batsched.Choose.choose_design_points_reference cfg g
               ~sequence:seq ~window_start:ws))
        (List.init (top + 1) Fun.id))

(* a random mid-selection state, shaped the way [choose_design_points]
   shapes them: suffix fixed at arbitrary window columns, tagged task at
   an arbitrary window column, free prefix parked at lowest power *)
let random_dpf_state rng g ~window_start ~tagged_pos seq =
  let n = Graph.num_tasks g in
  let m = Graph.num_points g in
  let cols = Array.make n (m - 1) in
  let draw () =
    window_start + Batsched_numeric.Rng.int rng (m - window_start)
  in
  for pos = tagged_pos to n - 1 do
    cols.(seq.(pos)) <- draw ()
  done;
  Assignment.of_list g (Array.to_list cols)

let prop_calculate_dpf_metrics_match =
  QCheck.Test.make ~count:200
    ~name:"calculate_dpf agrees with the reference within 1e-9"
    QCheck.(pair gen_case (int_bound 10_000))
    (fun ((g, deadline), seed) ->
      let cfg = Batsched.Config.make ~deadline () in
      let rng = Batsched_numeric.Rng.create (seed + 1) in
      let seq = Array.of_list (Priorities.sequence_dec_energy g) in
      let n = Array.length seq in
      let ws = Batsched.Window.initial_window_start cfg g in
      let close a b =
        (a = Float.infinity && b = Float.infinity) || Float.abs (a -. b) <= 1e-9
      in
      List.for_all
        (fun tagged_pos ->
          let a = random_dpf_state rng g ~window_start:ws ~tagged_pos seq in
          let r =
            Batsched.Choose.calculate_dpf cfg g ~sequence:seq ~assignment:a
              ~tagged_pos ~window_start:ws
          in
          let r' =
            Batsched.Choose.calculate_dpf_reference cfg g ~sequence:seq
              ~assignment:a ~tagged_pos ~window_start:ws
          in
          close r.Batsched.Choose.dpf r'.Batsched.Choose.dpf
          && close r.Batsched.Choose.enr r'.Batsched.Choose.enr
          && close r.Batsched.Choose.cif r'.Batsched.Choose.cif
          && Assignment.equal r.Batsched.Choose.hypothetical
               r'.Batsched.Choose.hypothetical)
        (List.init n Fun.id))

(* --- parallel paths vs the sequential reference --- *)

let parallel_pool = Batsched_numeric.Pool.create 4

let same_result name (a : Batsched.Iterate.result) (b : Batsched.Iterate.result) =
  Alcotest.(check (list int))
    (name ^ " sequence") a.Batsched.Iterate.schedule.Schedule.sequence
    b.Batsched.Iterate.schedule.Schedule.sequence;
  Alcotest.(check (list int))
    (name ^ " assignment")
    (Assignment.to_list a.Batsched.Iterate.schedule.Schedule.assignment)
    (Assignment.to_list b.Batsched.Iterate.schedule.Schedule.assignment);
  Alcotest.(check bool) (name ^ " sigma bit-identical") true
    (Float.equal a.Batsched.Iterate.sigma b.Batsched.Iterate.sigma)

let test_parallel_window_evaluate_identical () =
  List.iter
    (fun (g, deadline) ->
      let seq = Priorities.sequence_dec_energy g in
      let seq_cfg = Batsched.Config.make ~deadline () in
      let par_cfg = Batsched.Config.make ~pool:parallel_pool ~deadline () in
      let a = Batsched.Window.evaluate seq_cfg g ~sequence:seq in
      let b = Batsched.Window.evaluate par_cfg g ~sequence:seq in
      let summary (w : Batsched.Window.t) =
        List.map
          (fun (r : Batsched.Window.window_result) ->
            (r.window_start, Assignment.to_list r.assignment))
          w.Batsched.Window.per_window
      in
      Alcotest.(check (list (pair int (list int)))) "per-window identical"
        (summary a) (summary b);
      Alcotest.(check bool) "best sigma bit-identical" true
        (Float.equal a.Batsched.Window.best.Batsched.Window.sigma
           b.Batsched.Window.best.Batsched.Window.sigma))
    [ (Instances.g3, 230.0); (Instances.g2, 75.0); (Instances.g2, 95.0) ]

let test_parallel_multistart_identical_instances () =
  (* acceptance gate: on all published instances the pooled multistart
     must return bit-identical schedules to the sequential path *)
  List.iter
    (fun (g, deadline) ->
      let seq_cfg = Batsched.Config.make ~deadline () in
      let par_cfg = Batsched.Config.make ~pool:parallel_pool ~deadline () in
      let run cfg =
        Batsched.Iterate.run_multistart
          ~rng:(Batsched_numeric.Rng.create 11) ~starts:6 cfg g
      in
      same_result (Graph.label g) (run seq_cfg) (run par_cfg))
    ((Instances.g3, Instances.g3_deadline)
     :: List.map (fun d -> (Instances.g2, d)) Instances.g2_deadlines)

let prop_parallel_multistart_matches_sequential =
  QCheck.Test.make ~count:25
    ~name:"parallel multistart bit-identical to sequential on random graphs"
    gen_case (fun (g, deadline) ->
      let run pool =
        Batsched.Iterate.run_multistart
          ~rng:(Batsched_numeric.Rng.create 5) ~starts:4
          (Batsched.Config.make ~pool ~deadline ())
          g
      in
      let a = run Batsched_numeric.Pool.sequential in
      let b = run parallel_pool in
      a.Batsched.Iterate.schedule.Schedule.sequence
      = b.Batsched.Iterate.schedule.Schedule.sequence
      && Assignment.equal a.Batsched.Iterate.schedule.Schedule.assignment
           b.Batsched.Iterate.schedule.Schedule.assignment
      && Float.equal a.Batsched.Iterate.sigma b.Batsched.Iterate.sigma)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_iterate_always_feasible;
      prop_iterate_min_sigma_monotone;
      prop_choose_within_window;
      prop_choose_incremental_matches_reference;
      prop_calculate_dpf_metrics_match;
      prop_parallel_multistart_matches_sequential ]

let () =
  Alcotest.run "core"
    [ ( "config",
        [ Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation ] );
      ( "window",
        [ Alcotest.test_case "initial start full slack" `Quick test_window_initial_start_full_slack;
          Alcotest.test_case "initial start tight" `Quick test_window_initial_start_tight;
          Alcotest.test_case "unmeetable raises" `Quick test_window_unmeetable_raises;
          Alcotest.test_case "sweep narrow to wide" `Quick test_window_evaluate_sweeps_down_to_zero;
          Alcotest.test_case "best is min" `Quick test_window_best_is_min_sigma;
          Alcotest.test_case "results meet deadline" `Quick test_window_results_meet_deadline;
          Alcotest.test_case "mask" `Quick test_window_mask ] );
      ( "choose",
        [ Alcotest.test_case "last task lowest power" `Quick test_choose_last_task_lowest_power;
          Alcotest.test_case "meets deadline" `Quick test_choose_meets_deadline;
          Alcotest.test_case "loose deadline all lowest" `Quick test_choose_loose_deadline_all_lowest;
          Alcotest.test_case "respects window" `Quick test_choose_respects_window;
          Alcotest.test_case "rejects bad sequence" `Quick test_choose_rejects_bad_sequence;
          Alcotest.test_case "dpf feasible state" `Quick test_calculate_dpf_feasible_state;
          Alcotest.test_case "dpf upgrades low energy first" `Quick test_calculate_dpf_upgrades_low_energy_first;
          Alcotest.test_case "dpf infeasible infinite" `Quick test_calculate_dpf_infeasible_is_infinite;
          Alcotest.test_case "dpf last-task slack rule" `Quick test_calculate_dpf_last_task_slack_rule ] );
      ( "iterate",
        [ Alcotest.test_case "G3 shape" `Quick test_iterate_g3_shape;
          Alcotest.test_case "G3 beats first iteration" `Quick test_iterate_g3_beats_first_iteration;
          Alcotest.test_case "G3 sequences topological" `Quick test_iterate_g3_weighted_sequences_topological;
          Alcotest.test_case "G3 every iteration usable" `Quick test_iterate_g3_every_iteration_usable;
          Alcotest.test_case "G2 all deadlines" `Quick test_iterate_g2_all_deadlines;
          Alcotest.test_case "sigma monotone in deadline" `Quick test_iterate_sigma_decreases_with_deadline;
          Alcotest.test_case "unmeetable deadline" `Quick test_iterate_unmeetable_deadline;
          Alcotest.test_case "single task" `Quick test_iterate_single_task_graph;
          Alcotest.test_case "max iterations" `Quick test_iterate_respects_max_iterations;
          Alcotest.test_case "ideal model minimal charge" `Quick test_iterate_ideal_model_prefers_low_energy ] );
      ( "regression",
        [ Alcotest.test_case "published points pinned" `Quick test_published_points_pinned;
          Alcotest.test_case "incremental matches reference on instances" `Quick
            test_choose_incremental_matches_reference_instances ] );
      ( "preprocessing",
        [ Alcotest.test_case "reduction preserves result" `Quick test_transitive_reduction_preserves_result ] );
      ( "polish",
        [ Alcotest.test_case "never worse" `Quick test_polish_never_worse;
          Alcotest.test_case "improves bad order" `Quick test_polish_improves_bad_order;
          Alcotest.test_case "validation" `Quick test_polish_validation;
          Alcotest.test_case "delta matches reference" `Quick test_polish_delta_matches_reference ] );
      ( "multistart",
        [ Alcotest.test_case "never worse" `Quick test_multistart_never_worse_than_single;
          Alcotest.test_case "one start equals run" `Quick test_multistart_one_start_equals_run;
          Alcotest.test_case "validation" `Quick test_multistart_validation;
          Alcotest.test_case "screen deterministic, feasible" `Quick test_multistart_screen_deterministic_and_feasible;
          Alcotest.test_case "screen pool invariant" `Quick test_multistart_screen_pool_invariant;
          Alcotest.test_case "screen skipped at one start" `Quick test_multistart_screen_one_start_draws_nothing ] );
      ( "parallel",
        [ Alcotest.test_case "window evaluate identical" `Quick
            test_parallel_window_evaluate_identical;
          Alcotest.test_case "multistart identical on instances" `Quick
            test_parallel_multistart_identical_instances ] );
      ( "idle",
        [ Alcotest.test_case "peak of constant load" `Quick test_idle_peak_sigma_constant_load;
          Alcotest.test_case "never raises peak" `Quick test_idle_never_raises_peak;
          Alcotest.test_case "fits deadline" `Quick test_idle_fits_deadline;
          Alcotest.test_case "shaves with slack" `Quick test_idle_shaves_with_structural_slack;
          Alcotest.test_case "rejects missed deadline" `Quick test_idle_rejects_missed_deadline;
          Alcotest.test_case "survivable window" `Quick test_idle_survivable_window ] );
      ( "ablation",
        [ Alcotest.test_case "knockouts stay feasible" `Quick test_knockout_weights_still_feasible ] );
      ("properties", qcheck_tests) ]
