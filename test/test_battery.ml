(* Tests for the battery substrate: profiles, the three models,
   lifetime estimation and the demonstration curves. *)

open Batsched_battery

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Profile --- *)

let test_profile_empty () =
  check_float "length" 0.0 (Profile.length Profile.empty);
  check_float "charge" 0.0 (Profile.total_charge Profile.empty)

let test_profile_sequential_layout () =
  let p = Profile.sequential [ (100.0, 2.0); (200.0, 3.0); (50.0, 1.0) ] in
  let ivs = Profile.intervals p in
  Alcotest.(check int) "three intervals" 3 (List.length ivs);
  let starts = List.map (fun iv -> iv.Profile.start) ivs in
  Alcotest.(check (list (float 1e-9))) "back to back" [ 0.0; 2.0; 5.0 ] starts;
  check_float "length" 6.0 (Profile.length p)

let test_profile_total_charge () =
  let p = Profile.sequential [ (100.0, 2.0); (200.0, 3.0) ] in
  check_float "charge" 800.0 (Profile.total_charge p)

let test_profile_drops_zero_duration () =
  let p = Profile.sequential [ (100.0, 0.0); (200.0, 3.0) ] in
  Alcotest.(check int) "one interval" 1 (List.length (Profile.intervals p))

let test_profile_rejects_overlap () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Profile: overlapping intervals") (fun () ->
      ignore (Profile.of_intervals [ (0.0, 5.0, 10.0); (3.0, 2.0, 10.0) ]))

let test_profile_rejects_negative_current () =
  Alcotest.check_raises "negative current"
    (Invalid_argument "Profile: negative current") (fun () ->
      ignore (Profile.of_intervals [ (0.0, 1.0, -5.0) ]))

let test_profile_touching_ok () =
  let p = Profile.of_intervals [ (0.0, 2.0, 10.0); (2.0, 2.0, 20.0) ] in
  Alcotest.(check int) "two intervals" 2 (List.length (Profile.intervals p))

let test_profile_truncate_clips () =
  let p = Profile.sequential [ (100.0, 4.0) ] in
  let t = Profile.truncate p ~at:2.5 in
  check_float "clipped charge" 250.0 (Profile.total_charge t)

let test_profile_truncate_drops_later () =
  let p = Profile.sequential [ (100.0, 2.0); (200.0, 2.0) ] in
  let t = Profile.truncate p ~at:2.0 in
  Alcotest.(check int) "only first" 1 (List.length (Profile.intervals t))

let test_profile_with_idle () =
  let p = Profile.sequential [ (100.0, 2.0); (200.0, 2.0) ] in
  let q = Profile.with_idle p ~after:2.0 ~idle:5.0 in
  check_float "gap opened" 9.0 (Profile.length q);
  check_float "charge unchanged" (Profile.total_charge p) (Profile.total_charge q)

let test_profile_peak_current () =
  let p = Profile.sequential [ (100.0, 1.0); (700.0, 1.0); (300.0, 1.0) ] in
  check_float "peak" 700.0 (Profile.peak_current p)

(* --- Ideal model --- *)

let test_ideal_equals_charge () =
  let p = Profile.sequential [ (123.0, 4.5); (67.0, 2.5) ] in
  check_float "sigma = coulombs" (Profile.total_charge p)
    (Model.sigma_end Ideal.model p)

let test_ideal_truncation () =
  let p = Profile.sequential [ (100.0, 10.0) ] in
  check_float "half" 500.0 (Ideal.sigma p ~at:5.0)

(* --- Peukert model --- *)

let test_peukert_reference_current_ideal () =
  let p = Profile.constant ~current:100.0 ~duration:10.0 in
  check_close 1e-6 "reference" 1000.0
    (Peukert.sigma ~reference_current:100.0 p ~at:10.0)

let test_peukert_penalizes_high_current () =
  let hi = Profile.constant ~current:400.0 ~duration:10.0 in
  Alcotest.(check bool) "superlinear" true
    (Peukert.sigma hi ~at:10.0 > Profile.total_charge hi)

let test_peukert_rewards_low_current () =
  let lo = Profile.constant ~current:25.0 ~duration:10.0 in
  Alcotest.(check bool) "sublinear" true
    (Peukert.sigma lo ~at:10.0 < Profile.total_charge lo)

let test_peukert_exponent_one_is_ideal () =
  let p = Profile.sequential [ (300.0, 5.0); (80.0, 3.0) ] in
  check_close 1e-9 "p=1" (Profile.total_charge p)
    (Peukert.sigma ~exponent:1.0 p ~at:8.0)

let test_peukert_invalid () =
  Alcotest.check_raises "exponent < 1"
    (Invalid_argument "Peukert.sigma: exponent must be >= 1") (fun () ->
      ignore (Peukert.sigma ~exponent:0.5 Profile.empty ~at:0.0))

(* --- Rakhmatov model --- *)

let test_rv_exceeds_ideal_during_load () =
  let p = Profile.constant ~current:500.0 ~duration:30.0 in
  let sigma = Rakhmatov.sigma p ~at:30.0 in
  Alcotest.(check bool) "above coulombs" true (sigma > Profile.total_charge p)

let test_rv_recovers_at_rest () =
  let p = Profile.constant ~current:500.0 ~duration:30.0 in
  let long_after = Rakhmatov.sigma p ~at:100000.0 in
  check_close 1.0 "full recovery" (Profile.total_charge p) long_after

let test_rv_monotone_in_time_during_load () =
  let p = Profile.constant ~current:500.0 ~duration:60.0 in
  let s t = Rakhmatov.sigma p ~at:t in
  Alcotest.(check bool) "monotone" true (s 10.0 < s 30.0 && s 30.0 < s 60.0)

let test_rv_zero_at_time_zero () =
  let p = Profile.constant ~current:500.0 ~duration:60.0 in
  check_float "zero" 0.0 (Rakhmatov.sigma p ~at:0.0)

let test_rv_large_beta_is_ideal () =
  let p = Profile.sequential [ (400.0, 5.0); (100.0, 10.0) ] in
  check_close 0.5 "ideal limit" (Profile.total_charge p)
    (Rakhmatov.sigma ~beta:50.0 p ~at:15.0)

let test_rv_superposition_of_currents () =
  (* sigma is linear in current magnitudes: doubling currents doubles it *)
  let p1 = Profile.sequential [ (100.0, 5.0); (300.0, 5.0) ] in
  let p2 = Profile.sequential [ (200.0, 5.0); (600.0, 5.0) ] in
  check_close 1e-6 "linear"
    (2.0 *. Rakhmatov.sigma p1 ~at:10.0)
    (Rakhmatov.sigma p2 ~at:10.0)

let test_rv_paper_magnitude () =
  (* the G3 example's best profiles cost ~13-17k mA*min over ~230 min; a
     constant-current surrogate of the same average load must land in
     the same decade *)
  let p = Profile.constant ~current:60.0 ~duration:229.8 in
  let sigma = Rakhmatov.sigma ~beta:0.273 p ~at:229.8 in
  Alcotest.(check bool) "same decade" true (sigma > 13000.0 && sigma < 20000.0)

let test_rv_ordering_theorem_pairwise () =
  let heavy_first = Profile.sequential [ (800.0, 10.0); (100.0, 10.0) ] in
  let light_first = Profile.sequential [ (100.0, 10.0); (800.0, 10.0) ] in
  Alcotest.(check bool) "decreasing wins" true
    (Model.sigma_end (Rakhmatov.model ()) heavy_first
     < Model.sigma_end (Rakhmatov.model ()) light_first)

let test_rv_unavailable_nonnegative () =
  let p = Profile.sequential [ (500.0, 10.0); (200.0, 20.0) ] in
  Alcotest.(check bool) "nonneg" true
    (Rakhmatov.unavailable_charge p ~at:30.0 >= 0.0)

let test_rv_sigma_can_dip_after_heavy_load () =
  (* a documented non-monotonicity: once a heavy interval ends, its
     recoverable unavailable charge relaxes faster than a light
     successor accrues, so sigma dips — exactly the recovery phenomenon
     the scheduler exploits by putting heavy tasks early *)
  let p = Profile.sequential [ (550.0, 25.0); (50.0, 20.0) ] in
  let during = Rakhmatov.sigma p ~at:25.0 in
  let later = Rakhmatov.sigma p ~at:35.0 in
  Alcotest.(check bool) "dips" true (later < during)

let test_lifetime_first_crossing_on_dip () =
  (* with a dipping sigma the battery dies at the FIRST crossing even if
     sigma later falls back under alpha *)
  let model = Rakhmatov.model () in
  let p = Profile.sequential [ (550.0, 25.0); (50.0, 20.0) ] in
  let peak = Rakhmatov.sigma p ~at:25.0 in
  let at_end = Model.sigma_end model p in
  let alpha = (peak +. at_end) /. 2.0 in
  (* alpha sits between the dip and the peak: death must be reported *)
  match Lifetime.of_profile ~model ~alpha p with
  | Lifetime.Dies_at t ->
      Alcotest.(check bool) "dies before the heavy interval ends" true
        (t <= 25.0 +. 1e-3)
  | Lifetime.Survives _ -> Alcotest.fail "must report first crossing"

let test_rv_negative_time_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Rakhmatov.sigma: negative time") (fun () ->
      ignore (Rakhmatov.sigma Profile.empty ~at:(-1.0)))

(* --- KiBaM --- *)

let kp = Kibam.default_params

let test_kibam_full_state () =
  let st = Kibam.full kp in
  check_float "available" (kp.Kibam.c *. kp.Kibam.capacity) st.Kibam.available;
  check_float "total" kp.Kibam.capacity (st.Kibam.available +. st.Kibam.bound)

let test_kibam_conservation () =
  (* wells only exchange charge internally: y1 + y2 = y0 - I*t *)
  let st = Kibam.step kp (Kibam.full kp) ~current:400.0 ~duration:30.0 in
  check_close 1e-6 "conservation"
    (kp.Kibam.capacity -. (400.0 *. 30.0))
    (st.Kibam.available +. st.Kibam.bound)

let test_kibam_sigma_zero_at_start () =
  let p = Profile.constant ~current:400.0 ~duration:30.0 in
  check_close 1e-9 "zero" 0.0 (Kibam.sigma p ~at:0.0)

let test_kibam_sigma_equals_drawn_at_equilibrium () =
  (* after a long rest the wells re-equilibrate and sigma -> drawn *)
  let p = Profile.of_intervals [ (0.0, 10.0, 300.0) ] in
  let q = Profile.with_idle p ~after:10.0 ~idle:0.0 in
  ignore q;
  let sigma_late = Kibam.sigma p ~at:100000.0 in
  check_close 1.0 "full recovery" 3000.0 sigma_late

let test_kibam_rate_capacity () =
  (* under load sigma exceeds the coulomb count *)
  let p = Profile.constant ~current:800.0 ~duration:20.0 in
  Alcotest.(check bool) "apparent > drawn" true
    (Kibam.sigma p ~at:20.0 > Profile.total_charge p)

let test_kibam_recovery_between_bursts () =
  (* idle between bursts leaves more available charge at the end *)
  let packed = Profile.sequential [ (800.0, 20.0); (800.0, 20.0) ] in
  let gapped =
    Profile.of_intervals [ (0.0, 20.0, 800.0); (50.0, 20.0, 800.0) ]
  in
  let s_packed = Kibam.sigma packed ~at:40.0 in
  let s_gapped = Kibam.sigma gapped ~at:70.0 in
  Alcotest.(check bool) "recovery" true (s_gapped < s_packed)

let test_kibam_lifetime_decreases_with_load () =
  let model = Kibam.model () in
  let alpha = kp.Kibam.capacity in
  let l c = Lifetime.of_constant_current ~model ~alpha ~current:c in
  Alcotest.(check bool) "monotone" true (l 200.0 > l 400.0 && l 400.0 > l 800.0)

let test_kibam_delivers_less_at_high_rate () =
  let model = Kibam.model () in
  let alpha = kp.Kibam.capacity in
  let delivered c = c *. Lifetime.of_constant_current ~model ~alpha ~current:c in
  Alcotest.(check bool) "rate capacity on delivery" true
    (delivered 100.0 > delivered 1000.0)

let test_kibam_param_validation () =
  Alcotest.check_raises "bad c" (Invalid_argument "Kibam.make_params: c outside (0,1)")
    (fun () -> ignore (Kibam.make_params ~capacity:100.0 ~c:1.5 ~k_prime:0.1))

let test_kibam_step_validation () =
  Alcotest.check_raises "negative current"
    (Invalid_argument "Kibam.step: negative current") (fun () ->
      ignore (Kibam.step kp (Kibam.full kp) ~current:(-1.0) ~duration:1.0))

let test_kibam_zero_duration_step_identity () =
  (* a zero-length interval returns the input state unchanged —
     bit-for-bit, not merely to round-off — so degenerate intervals
     (same-column repoints, zero-duration design points) accumulate no
     drift no matter how many times they are stepped *)
  let st = Kibam.step kp (Kibam.full kp) ~current:650.0 ~duration:7.3 in
  let st' = ref st in
  for _ = 1 to 1000 do
    st' := Kibam.step kp !st' ~current:800.0 ~duration:0.0
  done;
  Alcotest.(check bool) "available bit-identical" true
    (Float.equal (!st').Kibam.available st.Kibam.available);
  Alcotest.(check bool) "bound bit-identical" true
    (Float.equal (!st').Kibam.bound st.Kibam.bound);
  (* state_at through a profile with the same load reaches the same
     place whether or not degenerate intervals are present, because
     the profile layer drops them and step ignores them *)
  let a = Kibam.state_at kp (Profile.sequential [ (650.0, 7.3) ]) ~at:7.3 in
  Alcotest.(check bool) "state_at agrees" true
    (Float.equal a.Kibam.available st.Kibam.available
    && Float.equal a.Kibam.bound st.Kibam.bound)

(* --- Lifetime --- *)

let test_lifetime_survives_light_load () =
  let model = Rakhmatov.model () in
  let p = Profile.constant ~current:10.0 ~duration:60.0 in
  match Lifetime.of_profile ~model ~alpha:Cell.itsy.Cell.alpha p with
  | Lifetime.Survives { headroom; _ } ->
      Alcotest.(check bool) "headroom positive" true (headroom > 0.0)
  | Lifetime.Dies_at _ -> Alcotest.fail "should survive"

let test_lifetime_dies_under_heavy_load () =
  let model = Rakhmatov.model () in
  let p = Profile.constant ~current:2000.0 ~duration:10000.0 in
  match Lifetime.of_profile ~model ~alpha:Cell.itsy.Cell.alpha p with
  | Lifetime.Dies_at t -> Alcotest.(check bool) "positive time" true (t > 0.0)
  | Lifetime.Survives _ -> Alcotest.fail "should die"

let test_lifetime_constant_current_consistent () =
  let model = Rakhmatov.model () in
  let alpha = Cell.itsy.Cell.alpha in
  let current = 500.0 in
  let t = Lifetime.of_constant_current ~model ~alpha ~current in
  let p = Profile.constant ~current ~duration:(2.0 *. t) in
  check_close 1.0 "sigma(T*) = alpha" alpha (model.Model.sigma p ~at:t)

let test_lifetime_decreases_with_load () =
  let model = Rakhmatov.model () in
  let alpha = Cell.itsy.Cell.alpha in
  let l c = Lifetime.of_constant_current ~model ~alpha ~current:c in
  Alcotest.(check bool) "monotone" true (l 100.0 > l 200.0 && l 200.0 > l 800.0)

let test_lifetime_ideal_model_exact () =
  let t =
    Lifetime.of_constant_current ~model:Ideal.model ~alpha:1000.0 ~current:50.0
  in
  check_close 1e-3 "alpha/I" 20.0 t

let test_lifetime_bad_alpha () =
  Alcotest.check_raises "alpha <= 0"
    (Invalid_argument "Lifetime: alpha must be positive") (fun () ->
      ignore (Lifetime.survives ~model:Ideal.model ~alpha:0.0 Profile.empty))

(* --- Diffusion PDE reference --- *)

(* coarse grid keeps these fast; tolerances account for it *)
let pde_params =
  Diffusion.make_params ~nodes:48 ~dt:0.05 ~alpha:40375.0 ~beta:0.273 ()

let test_diffusion_zero_load () =
  let p = Profile.empty in
  check_close 1e-6 "undisturbed" 0.0 (Diffusion.sigma ~params:pde_params p ~at:10.0)

let test_diffusion_conservation_at_rest () =
  (* long after the load, sigma -> drawn charge *)
  let p = Profile.constant ~current:500.0 ~duration:20.0 in
  check_close 30.0 "recovers to coulombs" 10000.0
    (Diffusion.sigma ~params:pde_params p ~at:500.0)

let test_diffusion_matches_analytic_under_load () =
  (* with a long series the analytic model must agree with the PDE *)
  let p = Profile.constant ~current:800.0 ~duration:20.0 in
  let analytic = Rakhmatov.sigma ~terms:5000 p ~at:20.0 in
  let pde = Diffusion.sigma ~params:pde_params p ~at:20.0 in
  check_close (0.005 *. analytic) "first principles" analytic pde

let test_diffusion_matches_analytic_with_recovery () =
  let p = Profile.of_intervals [ (0.0, 20.0, 800.0); (50.0, 20.0, 800.0) ] in
  let analytic = Rakhmatov.sigma ~terms:5000 p ~at:70.0 in
  let pde = Diffusion.sigma ~params:pde_params p ~at:70.0 in
  check_close (0.005 *. analytic) "with recovery" analytic pde

let test_diffusion_ten_terms_undercounts_under_load () =
  (* the documented truncation bias: 10 terms < PDE during discharge *)
  let p = Profile.constant ~current:800.0 ~duration:20.0 in
  Alcotest.(check bool) "undercounts" true
    (Rakhmatov.sigma p ~at:20.0 < Diffusion.sigma ~params:pde_params p ~at:20.0)

let test_diffusion_surface_depletes () =
  let p = Profile.constant ~current:800.0 ~duration:20.0 in
  let s0 = Diffusion.surface_density ~params:pde_params p ~at:0.0 in
  let s20 = Diffusion.surface_density ~params:pde_params p ~at:20.0 in
  check_close 1e-6 "starts full" 40375.0 s0;
  Alcotest.(check bool) "depletes" true (s20 < s0)

let test_diffusion_param_validation () =
  Alcotest.check_raises "nodes" (Invalid_argument "Diffusion.make_params: nodes < 8")
    (fun () -> ignore (Diffusion.make_params ~nodes:2 ~alpha:1.0 ~beta:1.0 ()))

(* --- Periodic --- *)

let ideal = Ideal.model

let outcome_t =
  Alcotest.testable
    (fun fmt -> function
      | Periodic.Dies n -> Format.fprintf fmt "Dies %d" n
      | Periodic.Censored n -> Format.fprintf fmt "Censored %d" n)
    ( = )

let test_periodic_ideal_matches_budget () =
  (* ideal battery: cycles = floor(alpha / charge-per-cycle), period
     irrelevant *)
  let cycle = Profile.constant ~current:100.0 ~duration:10.0 in
  (* 1000 mA*min per cycle; alpha 3500 -> dies in cycle 4, so 3 done *)
  Alcotest.check outcome_t "floor of budget" (Periodic.Dies 3)
    (Periodic.cycles_to_death ~model:ideal ~alpha:3500.0 ~period:20.0 cycle)

let test_periodic_unsustainable_first_cycle () =
  let cycle = Profile.constant ~current:100.0 ~duration:10.0 in
  match
    Periodic.cycles_to_death ~model:ideal ~alpha:500.0 ~period:20.0 cycle
  with
  | _ -> Alcotest.fail "first cycle should be fatal"
  | exception Periodic.Unsustainable sigma ->
      (* the payload is sigma at the fatal probe: the full burst's
         1000 mA*min against alpha 500 *)
      check_float "fatal sigma" 1000.0 sigma

let test_periodic_rv_rest_helps () =
  (* under RV a longer period (more recovery) never sustains fewer
     cycles, and here strictly more *)
  let model = Rakhmatov.model () in
  let cycle = Profile.constant ~current:800.0 ~duration:20.0 in
  let alpha = 62500.0 in
  let tight =
    Periodic.cycles_to_death ~max_cycles:50 ~model ~alpha ~period:20.0 cycle
  in
  let loose =
    Periodic.cycles_to_death ~max_cycles:50 ~model ~alpha ~period:120.0 cycle
  in
  Alcotest.(check bool) "rest helps" true
    (Periodic.cycles loose > Periodic.cycles tight)

let test_periodic_cycle_longer_than_period () =
  let cycle = Profile.constant ~current:100.0 ~duration:10.0 in
  Alcotest.check_raises "too long"
    (Invalid_argument "Periodic: cycle longer than the period") (fun () ->
      ignore
        (Periodic.cycles_to_death ~model:ideal ~alpha:1e6 ~period:5.0 cycle))

let test_periodic_max_cycles_cap () =
  let cycle = Profile.constant ~current:1.0 ~duration:1.0 in
  Alcotest.check outcome_t "capped" (Periodic.Censored 7)
    (Periodic.cycles_to_death ~max_cycles:7 ~model:ideal ~alpha:1e9
       ~period:2.0 cycle)

let test_periodic_min_period () =
  let model = Rakhmatov.model () in
  let cycle = Profile.constant ~current:800.0 ~duration:20.0 in
  let alpha = 62500.0 in
  let target =
    1
    + Periodic.cycles
        (Periodic.cycles_to_death ~max_cycles:50 ~model ~alpha ~period:20.0
           cycle)
  in
  (match
     Periodic.min_period_for_cycles ~max_cycles:50 ~model ~alpha cycle ~target
   with
  | Some p ->
      Alcotest.(check bool) "longer than the cycle" true (p >= 20.0);
      Alcotest.(check bool) "achieves the target" true
        (Periodic.max_sustainable_cycles ~max_cycles:50 ~model ~alpha cycle
           ~period:p ~target);
      Alcotest.(check bool) "tight: slightly less fails" true
        (p <= 20.0 +. 0.02
         || not
              (Periodic.max_sustainable_cycles ~max_cycles:50 ~model ~alpha
                 cycle ~period:(p -. 0.1) ~target))
  | None -> Alcotest.fail "a finite period should suffice")

let test_periodic_min_period_impossible () =
  (* 100 cycles of 1000 mA*min against alpha 3500 can never fit *)
  let cycle = Profile.constant ~current:100.0 ~duration:10.0 in
  Alcotest.(check bool) "impossible" true
    (Periodic.min_period_for_cycles ~model:ideal ~alpha:3500.0 cycle
       ~target:100
     = None)

let test_periodic_interp_curve () =
  let model = Rakhmatov.model () in
  let cycle = Profile.constant ~current:800.0 ~duration:20.0 in
  let curve =
    Periodic.interp_cycles ~model ~alpha:60000.0 cycle
      ~periods:[ 20.0; 60.0; 120.0 ]
  in
  let lo, hi = Batsched_numeric.Interp.domain curve in
  check_float "domain lo" 20.0 lo;
  check_float "domain hi" 120.0 hi

let test_periodic_fast_path_engages () =
  (* the scalar estimator must route decay models through the channel
     kernel and stepper models through the carried state, not fall back
     to the quadratic reference *)
  let cycle = Profile.constant ~current:100.0 ~duration:10.0 in
  let named c name =
    match List.assoc_opt name (Batsched_numeric.Probe.named_counts c) with
    | Some v -> v
    | None -> 0
  in
  let c0 = Batsched_numeric.Probe.totals () in
  ignore (Periodic.cycles_to_death ~model:ideal ~alpha:3500.0 ~period:20.0 cycle);
  ignore
    (Periodic.cycles_to_death
       ~model:(Diffusion.model ~params:(Diffusion.make_params ~nodes:8 ~dt:1.0 ~alpha:20000.0 ~beta:0.273 ()) ())
       ~alpha:20000.0 ~period:20.0 cycle);
  let c1 = Batsched_numeric.Probe.totals () in
  Alcotest.(check int) "channel device" 1
    (named c1 "periodic/channel_devices" - named c0 "periodic/channel_devices");
  Alcotest.(check int) "carried device" 1
    (named c1 "periodic/carried_devices" - named c0 "periodic/carried_devices");
  Alcotest.(check int) "no reference fallback" 0
    (named c1 "periodic/reference_devices"
    - named c0 "periodic/reference_devices")

let test_periodic_batch_matches_scalar () =
  (* heterogeneous population: every device's batch result must agree
     with the scalar call — same code path by construction, so the
     comparison is exact, fatal sigma included *)
  let devices =
    [| { Periodic.model = Ideal.model; alpha = 3500.0; period = 20.0;
         cycle = Profile.constant ~current:100.0 ~duration:10.0 };
       { Periodic.model = Rakhmatov.model (); alpha = 62500.0; period = 30.0;
         cycle = Profile.constant ~current:800.0 ~duration:20.0 };
       { Periodic.model = Kibam.model (); alpha = 20000.0; period = 60.0;
         cycle = Profile.sequential [ (400.0, 10.0); (150.0, 20.0) ] };
       { Periodic.model = Peukert.model (); alpha = 900.0; period = 25.0;
         cycle = Profile.constant ~current:120.0 ~duration:8.0 };
       (* first-cycle death: batch reports Dies 0 where scalar raises *)
       { Periodic.model = Ideal.model; alpha = 500.0; period = 20.0;
         cycle = Profile.constant ~current:100.0 ~duration:10.0 } |]
  in
  let results =
    Periodic.Batch.run ~max_cycles:40 ~n:(Array.length devices)
      ~device:(fun i -> devices.(i))
      ()
  in
  Array.iteri
    (fun i (r : Periodic.Batch.result) ->
      let d = devices.(i) in
      match
        Periodic.cycles_to_death ~max_cycles:40 ~model:d.Periodic.model
          ~alpha:d.Periodic.alpha ~period:d.Periodic.period d.Periodic.cycle
      with
      | outcome ->
          Alcotest.check outcome_t
            (Printf.sprintf "device %d outcome" i)
            outcome r.Periodic.Batch.outcome
      | exception Periodic.Unsustainable sigma ->
          Alcotest.check outcome_t
            (Printf.sprintf "device %d first-cycle death" i)
            (Periodic.Dies 0) r.Periodic.Batch.outcome;
          check_float
            (Printf.sprintf "device %d fatal sigma" i)
            sigma r.Periodic.Batch.fatal_sigma)
    results

(* --- Cell --- *)

let test_cell_presets () =
  check_float "itsy alpha" 40375.0 Cell.itsy.Cell.alpha;
  check_float "itsy beta" 0.273 Cell.itsy.Cell.beta;
  check_close 1e-9 "mAh" (40375.0 /. 60.0) (Cell.rated_capacity_mah Cell.itsy)

let test_cell_validation () =
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Cell.make: alpha must be positive") (fun () ->
      ignore (Cell.make ~label:"x" ~alpha:0.0 ~beta:1.0))

(* --- Curves --- *)

let test_curves_rate_capacity_shape () =
  let pts =
    Curves.rate_capacity ~cell:Cell.itsy ~currents:[ 100.0; 400.0; 1600.0 ]
  in
  match pts with
  | [ a; b; c ] ->
      Alcotest.(check bool) "falling efficiency" true
        (a.Curves.efficiency > b.Curves.efficiency
         && b.Curves.efficiency > c.Curves.efficiency);
      Alcotest.(check bool) "bounded" true
        (a.Curves.efficiency <= 1.0 && c.Curves.efficiency > 0.0)
  | _ -> Alcotest.fail "expected three points"

let test_curves_recovery_shape () =
  let pts =
    Curves.recovery ~cell:Cell.itsy ~current:800.0 ~burst:20.0
      ~idles:[ 0.0; 10.0; 60.0 ]
  in
  match pts with
  | [ zero; ten; sixty ] ->
      check_float "no idle no recovery" 0.0 zero.Curves.recovered;
      Alcotest.(check bool) "monotone recovery" true
        (ten.Curves.recovered > 0.0
         && sixty.Curves.recovered > ten.Curves.recovered)
  | _ -> Alcotest.fail "expected three points"

let test_curves_sigma_curve_monotone () =
  let model = Rakhmatov.model () in
  let p = Profile.constant ~current:300.0 ~duration:50.0 in
  let c = Curves.sigma_curve ~model p ~n:20 in
  let pts = Batsched_numeric.Interp.points c in
  let rec check = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-6 && check rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (check pts)

let test_curves_ordering_gap () =
  let tasks = [ (900.0, 5.0); (100.0, 5.0); (500.0, 5.0) ] in
  let dec, inc = Curves.ordering_gap ~cell:Cell.itsy tasks in
  Alcotest.(check bool) "decreasing no worse" true (dec <= inc)

(* --- qcheck properties --- *)

let gen_loads =
  QCheck.(
    list_of_size Gen.(int_range 1 8)
      (pair (float_range 10.0 1000.0) (float_range 0.5 30.0)))

let prop_sigma_monotone_in_time =
  (* monotonicity holds under constant load; with varying load sigma can
     dip after heavy intervals (recovery) — see the dedicated dip test *)
  QCheck.Test.make ~count:100
    ~name:"RV sigma is non-decreasing in T under constant load"
    QCheck.(pair (float_range 10.0 1000.0) (float_range 1.0 100.0))
    (fun (current, duration) ->
      let p = Profile.constant ~current ~duration in
      let s1 = Rakhmatov.sigma p ~at:(duration /. 2.0) in
      let s2 = Rakhmatov.sigma p ~at:duration in
      s1 <= s2 +. 1e-6)

let prop_sigma_at_least_ideal_at_end =
  QCheck.Test.make ~count:100
    ~name:"RV sigma at completion >= coulomb count" gen_loads (fun loads ->
      let p = Profile.sequential loads in
      Model.sigma_end (Rakhmatov.model ()) p >= Profile.total_charge p -. 1e-6)

let prop_decreasing_order_never_worse =
  QCheck.Test.make ~count:100
    ~name:"decreasing-current order never worse than increasing" gen_loads
    (fun loads ->
      let dec, inc = Curves.ordering_gap ~cell:Cell.itsy loads in
      dec <= inc +. 1e-6)

let prop_idle_never_hurts =
  QCheck.Test.make ~count:100 ~name:"inserting idle never raises sigma"
    QCheck.(pair gen_loads (float_range 0.1 60.0))
    (fun (loads, idle) ->
      QCheck.assume (List.length loads >= 2);
      let p = Profile.sequential loads in
      let last_start =
        match List.rev (Profile.intervals p) with
        | last :: _ -> last.Profile.start
        | [] -> 0.0
      in
      let q = Profile.with_idle p ~after:last_start ~idle in
      let model = Rakhmatov.model () in
      Model.sigma_end model q <= Model.sigma_end model p +. 1e-6)

let prop_sigma_matches_reference =
  (* the cached/incremental evaluator against the truncate-and-sum
     seed implementation, observed at several instants including ones
     that clip a straddling interval *)
  QCheck.Test.make ~count:200 ~name:"fast RV sigma agrees with reference"
    QCheck.(pair gen_loads (float_range 0.0 1.0))
    (fun (loads, frac) ->
      let p = Profile.sequential loads in
      let ends = Profile.length p in
      let ats = [ frac *. ends; ends; ends +. 10.0 ] in
      List.for_all
        (fun at ->
          let fast = Rakhmatov.sigma p ~at in
          let slow = Rakhmatov.sigma_reference p ~at in
          Float.abs (fast -. slow) <= 1e-9 *. (1.0 +. Float.abs slow))
        ats)

let prop_sigma_matches_reference_with_gaps =
  QCheck.Test.make ~count:100
    ~name:"fast RV sigma agrees with reference across idle gaps"
    QCheck.(triple gen_loads (float_range 0.1 60.0) (float_range 0.0 1.0))
    (fun (loads, idle, frac) ->
      QCheck.assume (List.length loads >= 2);
      let p = Profile.sequential loads in
      let q = Profile.with_idle p ~after:(frac *. Profile.length p) ~idle in
      let at = Profile.length q in
      Float.abs (Rakhmatov.sigma q ~at -. Rakhmatov.sigma_reference q ~at)
      <= 1e-9 *. (1.0 +. Rakhmatov.sigma_reference q ~at))

(* --- Periodic fast kernel vs quadratic oracle --- *)

(* Random mission: a 1-4 interval cycle (optionally with an idle gap
   inside), a period leaving factor-1 headroom, and a budget expressed
   in cycles' worth of charge so deaths land within the horizon. *)
let gen_mission =
  QCheck.(
    quad
      (list_of_size Gen.(int_range 1 4)
         (pair (float_range 50.0 900.0) (float_range 1.0 20.0)))
      (float_range 0.0 10.0)   (* idle gap inside the cycle *)
      (float_range 1.0 2.5)    (* period / cycle-length factor *)
      (float_range 0.8 25.0))  (* alpha in charge-per-cycle units *)

let mission_of (loads, idle, factor, worth) =
  let p = Profile.sequential loads in
  let cycle =
    match Profile.intervals p with
    | first :: _ :: _ when idle > 0.01 ->
        Profile.with_idle p
          ~after:(first.Profile.start +. first.Profile.duration)
          ~idle
    | _ -> p
  in
  let period = Profile.length cycle *. factor in
  let alpha = Profile.total_charge cycle *. worth in
  (cycle, period, alpha)

let endured f ~max_cycles ~model ~alpha ~period cycle =
  match f ?max_cycles:(Some max_cycles) ~model ~alpha ~period cycle with
  | o -> Periodic.cycles o
  | exception Periodic.Unsustainable _ -> 0

(* The fast kernel and the oracle compute the same mathematical sigma
   with different float accumulation, so at probes landing within a few
   ulps of alpha the death cycle may legitimately differ.  Instead of a
   point comparison, bracket: lifetime is monotone in alpha, so the
   fast result must sit between the oracle's answers at alpha shrunk
   and grown by a 1e-6 relative margin — and on the (overwhelmingly
   common) draws where no probe is that close, the bracket is tight and
   the comparison exact. *)
let prop_periodic_matches_oracle ?(count = 40) ?(max_cycles = 25) name model =
  QCheck.Test.make ~count
    ~name:(Printf.sprintf "periodic fast kernel matches oracle (%s)" name)
    gen_mission
    (fun draw ->
      let cycle, period, alpha = mission_of draw in
      let fast =
        endured Periodic.cycles_to_death ~max_cycles ~model ~alpha ~period
          cycle
      in
      let lo =
        endured Periodic.cycles_to_death_reference ~max_cycles ~model
          ~alpha:(alpha *. (1.0 -. 1e-6))
          ~period cycle
      in
      let hi =
        endured Periodic.cycles_to_death_reference ~max_cycles ~model
          ~alpha:(alpha *. (1.0 +. 1e-6))
          ~period cycle
      in
      lo <= fast && fast <= hi)

let prop_periodic_oracle_ideal =
  prop_periodic_matches_oracle ~count:60 "ideal" Ideal.model

let prop_periodic_oracle_peukert =
  prop_periodic_matches_oracle ~count:60 "peukert" (Peukert.model ())

let prop_periodic_oracle_rakhmatov =
  prop_periodic_matches_oracle ~count:30 "rakhmatov" (Rakhmatov.model ())

let prop_periodic_oracle_kibam =
  prop_periodic_matches_oracle ~count:40 "kibam" (Kibam.model ())

(* The carried-stepper path replays the oracle's arithmetic exactly
   (same run_to targets, same spans), so for the PDE the two paths are
   bit-identical — no bracket needed. *)
let prop_periodic_oracle_diffusion_exact =
  let params = Diffusion.make_params ~nodes:8 ~dt:1.0 ~alpha:1.0 ~beta:0.273 () in
  QCheck.Test.make ~count:15
    ~name:"periodic carried stepper is bit-identical to oracle (diffusion)"
    gen_mission
    (fun draw ->
      let cycle, period, alpha = mission_of draw in
      let params = { params with Diffusion.alpha } in
      let model = Diffusion.model ~params () in
      let run f =
        match f ?max_cycles:(Some 10) ~model ~alpha ~period cycle with
        | o -> (Periodic.cycles o, Float.nan)
        | exception Periodic.Unsustainable s -> (0, s)
      in
      let fast, fs = run Periodic.cycles_to_death in
      let slow, ss = run Periodic.cycles_to_death_reference in
      fast = slow
      && Int64.equal (Int64.bits_of_float fs) (Int64.bits_of_float ss))

let test_sigma_reference_single_interval () =
  let p = Profile.constant ~current:500.0 ~duration:10.0 in
  (* a = 0 edge: observation instant coincides with the interval end *)
  check_float "at end"
    (Rakhmatov.sigma_reference p ~at:10.0)
    (Rakhmatov.sigma p ~at:10.0);
  check_float "mid-interval clip"
    (Rakhmatov.sigma_reference p ~at:4.0)
    (Rakhmatov.sigma p ~at:4.0);
  check_float "empty prefix" 0.0 (Rakhmatov.sigma p ~at:0.0)

let test_profile_fold_until_matches_truncate () =
  let p = Profile.sequential [ (100.0, 2.0); (200.0, 3.0); (50.0, 4.0) ] in
  List.iter
    (fun at ->
      let folded =
        List.rev
          (Profile.fold_until p ~at ~init:[]
             ~f:(fun acc ~start ~duration ~current ->
               (start, duration, current) :: acc))
      in
      let copied =
        List.map
          (fun iv -> (iv.Profile.start, iv.Profile.duration, iv.Profile.current))
          (Profile.intervals (Profile.truncate p ~at))
      in
      Alcotest.(check (list (triple (float 1e-12) (float 1e-12) (float 1e-12))))
        (Printf.sprintf "at %.1f" at) copied folded)
    [ 0.0; 1.0; 2.0; 3.5; 9.0; 20.0 ]

let test_profile_sequential_fn_matches_sequential () =
  let pairs = [ (100.0, 2.0); (200.0, 0.0); (50.0, 4.0) ] in
  let arr = Array.of_list pairs in
  let a = Profile.sequential pairs in
  let b = Profile.sequential_fn ~n:(Array.length arr) (fun i -> arr.(i)) in
  Alcotest.(check int) "count" (Profile.num_intervals a) (Profile.num_intervals b);
  check_float "length" (Profile.length a) (Profile.length b);
  check_float "charge" (Profile.total_charge a) (Profile.total_charge b)

(* --- Delta: incremental sigma evaluation --- *)

module Probe = Batsched_numeric.Probe

(* Delta agrees with the full path within 1e-9 relative, not absolute:
   the two accumulate the recovery times in opposite directions (see
   delta.mli), same convention as the fast-vs-reference sigma tests
   above. *)
let check_rel name want got =
  let ok = Float.abs (got -. want) <= 1e-9 *. (1.0 +. Float.abs want) in
  if not ok then
    Alcotest.failf "%s: got %.17g, want %.17g (rel %.3g)" name got want
      (Float.abs (got -. want) /. (1.0 +. Float.abs want))

let rv = Rakhmatov.model ()

let full_eval model points =
  let p = Profile.sequential points in
  (Model.sigma_end model p, Profile.length p)

let delta_of model points =
  let arr = Array.of_list points in
  Delta.init model ~n:(Array.length arr) ~point:(fun i -> arr.(i))

let check_against_full model d points =
  let sigma, finish = full_eval model points in
  check_rel "sigma" sigma (Delta.sigma d);
  check_rel "finish" finish (Delta.finish d)

let base_points =
  [ (400.0, 2.0); (150.0, 4.0); (800.0, 1.0); (250.0, 3.0); (90.0, 6.0) ]

let swap_list l k =
  List.mapi
    (fun i x ->
      if i = k then List.nth l (k + 1)
      else if i = k + 1 then List.nth l k
      else x)
    l

let set_list l k v = List.mapi (fun i x -> if i = k then v else x) l

let test_delta_load_matches_full () =
  List.iter
    (fun model -> check_against_full model (delta_of model base_points) base_points)
    [ rv; Ideal.model; Peukert.model (); Kibam.model () ]

let test_delta_swap_matches_full () =
  let d = delta_of rv base_points in
  (* candidate = oracle of the swapped list; committed state unchanged
     until commit *)
  let want_sigma, want_finish = full_eval rv (swap_list base_points 1) in
  let got_sigma, got_finish = Delta.try_swap d 1 in
  check_rel "candidate sigma" want_sigma got_sigma;
  check_rel "candidate finish" want_finish got_finish;
  Delta.discard d;
  check_against_full rv d base_points;
  ignore (Delta.try_swap d 1);
  Delta.commit d;
  check_against_full rv d (swap_list base_points 1)

let test_delta_swap_boundaries () =
  let n = List.length base_points in
  List.iter
    (fun k ->
      let d = delta_of rv base_points in
      ignore (Delta.try_swap d k);
      Delta.commit d;
      check_against_full rv d (swap_list base_points k))
    [ 0; n - 2 ]

let test_delta_set_boundaries () =
  let n = List.length base_points in
  List.iter
    (fun k ->
      let d = delta_of rv base_points in
      let v = (333.0, 2.5) in
      let want_sigma, want_finish = full_eval rv (set_list base_points k v) in
      let got_sigma, got_finish =
        Delta.try_set d k ~current:(fst v) ~duration:(snd v)
      in
      check_rel "candidate sigma" want_sigma got_sigma;
      check_rel "candidate finish" want_finish got_finish;
      Delta.commit d;
      check_against_full rv d (set_list base_points k v))
    [ 0; n - 1 ]

let test_delta_swap_after_set () =
  let d = delta_of rv base_points in
  let points = set_list base_points 3 (500.0, 0.5) in
  ignore (Delta.try_set d 3 ~current:500.0 ~duration:0.5);
  Delta.commit d;
  let points' = swap_list points 2 in
  ignore (Delta.try_swap d 2);
  Delta.commit d;
  check_against_full rv d points'

let test_delta_zero_duration () =
  (* zero-duration positions are kept with an exactly-zero term, so
     sigma matches the profile path, which drops them *)
  let points = [ (400.0, 2.0); (999.0, 0.0); (150.0, 4.0) ] in
  let d = delta_of rv points in
  check_against_full rv d points;
  (* shrinking a position to zero duration and back *)
  let d = delta_of rv base_points in
  ignore (Delta.try_set d 2 ~current:800.0 ~duration:0.0);
  Delta.commit d;
  check_against_full rv d (set_list base_points 2 (800.0, 0.0));
  ignore (Delta.try_set d 2 ~current:800.0 ~duration:1.0);
  Delta.commit d;
  check_against_full rv d base_points

let test_delta_single_interval () =
  let points = [ (500.0, 3.0) ] in
  let d = delta_of rv points in
  check_against_full rv d points;
  Alcotest.check_raises "no swap on n=1"
    (Invalid_argument "Delta.try_swap: position out of range") (fun () ->
      ignore (Delta.try_swap d 0));
  ignore (Delta.try_set d 0 ~current:200.0 ~duration:7.0);
  Delta.commit d;
  check_against_full rv d [ (200.0, 7.0) ]

let test_delta_pending_protocol () =
  let d = delta_of rv base_points in
  Alcotest.check_raises "commit w/o move"
    (Invalid_argument "Delta.commit: no pending move") (fun () ->
      Delta.commit d);
  Alcotest.check_raises "discard w/o move"
    (Invalid_argument "Delta.discard: no pending move") (fun () ->
      Delta.discard d);
  ignore (Delta.try_swap d 0);
  Alcotest.check_raises "second try while pending"
    (Invalid_argument "Delta.try_set: uncommitted pending move") (fun () ->
      ignore (Delta.try_set d 1 ~current:1.0 ~duration:1.0));
  Delta.discard d

let test_delta_of_profile_rejects_gaps () =
  let gapped =
    Profile.with_idle
      (Profile.sequential [ (100.0, 2.0); (200.0, 3.0) ])
      ~after:2.0 ~idle:1.0
  in
  Alcotest.check_raises "idle gaps"
    (Invalid_argument "Delta.of_profile: profile has idle gaps") (fun () ->
      ignore (Delta.of_profile rv gapped));
  let ok = Profile.sequential base_points in
  check_against_full rv (Delta.of_profile rv ok) base_points

let test_delta_fallback_counts_full_evals () =
  (* a deliberately opaque model — no incremental terms, no stepper, no
     batch kernel — forces the counted full-profile fallback; the probe
     books each one both in the flat field and under the model's name
     in the open-keyed counters (kibam itself no longer falls back: it
     has a closed-form incremental decomposition) *)
  let model =
    { Model.name = "opaque";
      sigma = (fun p ~at -> Kibam.sigma p ~at);
      incremental = None;
      stepper = None;
      batch = None;
      decay = None }
  in
  let named c =
    match List.assoc_opt "delta_full_evals/opaque" (Probe.named_counts c) with
    | Some v -> v
    | None -> 0
  in
  let c0 = Probe.totals () in
  let d = delta_of model base_points in
  ignore (Delta.try_swap d 1);
  Delta.discard d;
  check_against_full model d base_points;
  ignore (Delta.try_set d 0 ~current:50.0 ~duration:2.0);
  Delta.commit d;
  check_against_full model d (set_list base_points 0 (50.0, 2.0));
  let c1 = Probe.totals () in
  let evals = c1.Probe.delta_full_evals - c0.Probe.delta_full_evals in
  Alcotest.(check bool) "full evals counted" true (evals >= 3);
  Alcotest.(check int) "attributed to the model by name" evals
    (named c1 - named c0)

let test_delta_kibam_incremental_no_fallback () =
  (* the closed-form decomposition keeps kibam off the fallback path
     entirely: a burst of swap/set candidates costs zero full evals *)
  let model = Kibam.model () in
  let c0 = (Probe.totals ()).Probe.delta_full_evals in
  let d = delta_of model base_points in
  ignore (Delta.try_swap d 1);
  Delta.commit d;
  ignore (Delta.try_set d 0 ~current:50.0 ~duration:2.0);
  Delta.commit d;
  ignore (Delta.try_swap d 2);
  Delta.discard d;
  check_against_full model d
    (set_list (swap_list base_points 1) 0 (50.0, 2.0));
  Alcotest.(check int) "no full evals" c0
    (Probe.totals ()).Probe.delta_full_evals

let coarse_diffusion =
  (* 8 nodes, 1-minute steps: the checkpointing logic under test is
     grid-independent, and the default grid would dominate test time *)
  Diffusion.model
    ~params:(Diffusion.make_params ~nodes:8 ~dt:1.0 ~alpha:40375.0 ~beta:0.273 ())
    ()

let test_delta_checkpoint_counters () =
  (* a stepper-only model goes through the checkpoint path: candidates
     restore a snapshot and re-advance the suffix, and commits
     invalidate downstream snapshots — all visible in the probe *)
  let c0 = Probe.totals () in
  let points = List.init 16 (fun i -> (100.0 +. (10.0 *. float_of_int i), 1.5)) in
  let d = delta_of coarse_diffusion points in
  ignore (Delta.try_swap d 9);
  Delta.discard d;
  ignore (Delta.try_swap d 9);
  Delta.commit d;
  check_against_full coarse_diffusion d (swap_list points 9);
  let c1 = Probe.totals () in
  Alcotest.(check bool) "restores counted" true
    (c1.Probe.delta_ck_restores > c0.Probe.delta_ck_restores);
  Alcotest.(check bool) "advances counted" true
    (c1.Probe.delta_ck_advances > c0.Probe.delta_ck_advances);
  Alcotest.(check int) "no uncounted fallback" c0.Probe.delta_full_evals
    c1.Probe.delta_full_evals

let test_delta_swap_term_evals_constant () =
  (* the headline O(1) claim: a swap costs at most 2 term evaluations
     under the RV model, independent of n — and none at all for a
     tail-insensitive model *)
  let points = List.init 40 (fun i -> (100.0 +. float_of_int i, 1.0)) in
  let d = delta_of rv points in
  let c0 = (Probe.totals ()).Probe.delta_terms in
  for k = 0 to 38 do
    ignore (Delta.try_swap d k);
    Delta.commit d
  done;
  let per_swap = (Probe.totals ()).Probe.delta_terms - c0 in
  Alcotest.(check int) "2 terms per swap" (2 * 39) per_swap;
  let d = delta_of Ideal.model points in
  let c0 = (Probe.totals ()).Probe.delta_terms in
  let s0 = Delta.sigma d in
  ignore (Delta.try_swap d 10);
  Delta.commit d;
  Alcotest.(check int) "0 terms for ideal" c0
    (Probe.totals ()).Probe.delta_terms;
  check_float "ideal sigma invariant under swap" s0 (Delta.sigma d)

let test_delta_suffix_cache_across_makespans () =
  (* the suffix-time cache key: stretching the *first* interval leaves
     every later interval's (I, D, tail) key intact, so re-costing the
     stretched schedule misses only on the changed interval — the old
     at-keyed cache missed on all of them.  A beta unique to this test
     isolates it from entries cached by other tests. *)
  let model = Rakhmatov.model ~beta:0.311 () in
  let p1 = Profile.sequential base_points in
  ignore (Model.sigma_end model p1);
  let c0 = (Probe.totals ()).Probe.contrib_misses in
  let p2 = Profile.sequential (set_list base_points 0 (400.0, 9.0)) in
  ignore (Model.sigma_end model p2);
  let misses = (Probe.totals ()).Probe.contrib_misses - c0 in
  Alcotest.(check int) "one miss despite new makespan" 1 misses

let test_delta_refresh_noop () =
  let d = delta_of rv base_points in
  for _ = 1 to 100 do
    ignore (Delta.try_swap d 1);
    Delta.commit d;
    ignore (Delta.try_swap d 1);
    Delta.commit d
  done;
  (* 200 commits crossed several automatic re-sum boundaries; a manual
     refresh must not move the value either *)
  let s = Delta.sigma d in
  Delta.refresh d;
  check_float "refresh stable" s (Delta.sigma d);
  check_against_full rv d base_points

let delta_tests =
  [ Alcotest.test_case "load matches full (all models)" `Quick test_delta_load_matches_full;
    Alcotest.test_case "swap matches full" `Quick test_delta_swap_matches_full;
    Alcotest.test_case "swap at 0 and n-2" `Quick test_delta_swap_boundaries;
    Alcotest.test_case "set at 0 and n-1" `Quick test_delta_set_boundaries;
    Alcotest.test_case "swap after set" `Quick test_delta_swap_after_set;
    Alcotest.test_case "zero-duration positions" `Quick test_delta_zero_duration;
    Alcotest.test_case "single interval" `Quick test_delta_single_interval;
    Alcotest.test_case "pending protocol" `Quick test_delta_pending_protocol;
    Alcotest.test_case "of_profile rejects gaps" `Quick test_delta_of_profile_rejects_gaps;
    Alcotest.test_case "fallback counts full evals" `Quick test_delta_fallback_counts_full_evals;
    Alcotest.test_case "kibam incremental, no fallback" `Quick test_delta_kibam_incremental_no_fallback;
    Alcotest.test_case "checkpoint counters" `Quick test_delta_checkpoint_counters;
    Alcotest.test_case "O(1) swap term evals" `Quick test_delta_swap_term_evals_constant;
    Alcotest.test_case "suffix cache across makespans" `Quick test_delta_suffix_cache_across_makespans;
    Alcotest.test_case "refresh after many commits" `Quick test_delta_refresh_noop ]

(* --- Sigma_batch: structure-of-arrays population evaluation --- *)

let test_sigma_batch_single_row_matches_full () =
  let b = Sigma_batch.create rv in
  let pts = Array.of_list base_points in
  let n = Array.length pts in
  Sigma_batch.eval b ~pop:1 ~n
    ~current:(fun _ k -> fst pts.(k))
    ~duration:(fun _ k -> snd pts.(k));
  let want_sigma, want_finish = full_eval rv base_points in
  check_rel "sigma" want_sigma (Sigma_batch.sigma b 0);
  check_rel "finish" want_finish (Sigma_batch.finish b 0);
  Alcotest.(check int) "pop" 1 (Sigma_batch.pop b);
  Alcotest.(check int) "width" n (Sigma_batch.width b);
  (* reuse with a wider block: the arrays regrow, every row agrees *)
  Sigma_batch.eval b ~pop:5 ~n
    ~current:(fun _ k -> fst pts.(k))
    ~duration:(fun _ k -> snd pts.(k));
  for p = 0 to 4 do
    check_rel "row sigma" want_sigma (Sigma_batch.sigma b p)
  done

let test_sigma_batch_validation () =
  let b = Sigma_batch.create rv in
  Alcotest.check_raises "negative current"
    (Invalid_argument "Sigma_batch.eval: negative current") (fun () ->
      Sigma_batch.eval b ~pop:1 ~n:1
        ~current:(fun _ _ -> -1.0)
        ~duration:(fun _ _ -> 1.0));
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Sigma_batch.eval: negative duration") (fun () ->
      Sigma_batch.eval b ~pop:1 ~n:1
        ~current:(fun _ _ -> 1.0)
        ~duration:(fun _ _ -> -1.0));
  Alcotest.check_raises "non-finite"
    (Invalid_argument "Sigma_batch.eval: non-finite interval field")
    (fun () ->
      Sigma_batch.eval b ~pop:1 ~n:1
        ~current:(fun _ _ -> Float.nan)
        ~duration:(fun _ _ -> 1.0));
  Sigma_batch.eval b ~pop:2 ~n:1
    ~current:(fun _ _ -> 1.0)
    ~duration:(fun _ _ -> 1.0);
  Alcotest.check_raises "sigma out of range"
    (Invalid_argument "Sigma_batch.sigma: out of range") (fun () ->
      ignore (Sigma_batch.sigma b 2));
  Alcotest.check_raises "finish out of range"
    (Invalid_argument "Sigma_batch.finish: out of range") (fun () ->
      ignore (Sigma_batch.finish b (-1)))

let test_sigma_batch_counters () =
  (* kernel models book candidates, kernel-less models book fallbacks *)
  let run model =
    let b = Sigma_batch.create model in
    Sigma_batch.eval b ~pop:3 ~n:2
      ~current:(fun _ _ -> 100.0)
      ~duration:(fun _ _ -> 1.0)
  in
  let c0 = Probe.totals () in
  run rv;
  let c1 = Probe.totals () in
  Alcotest.(check int) "eval counted" 1 (c1.Probe.batch_evals - c0.Probe.batch_evals);
  Alcotest.(check int) "kernel candidates" 3
    (c1.Probe.batch_candidates - c0.Probe.batch_candidates);
  run coarse_diffusion;
  let c2 = Probe.totals () in
  Alcotest.(check int) "fallback candidates" 3
    (c2.Probe.batch_fallbacks - c1.Probe.batch_fallbacks)

let sigma_batch_tests =
  [ Alcotest.test_case "single row matches full" `Quick test_sigma_batch_single_row_matches_full;
    Alcotest.test_case "validation" `Quick test_sigma_batch_validation;
    Alcotest.test_case "work counters" `Quick test_sigma_batch_counters ]

(* Random interval lists driven through random move traces: committed
   sigma/finish track the full evaluation of the mirrored list.  One
   instance per delta strategy — incremental terms (Rakhmatov, KiBaM)
   and the checkpointed stepper (diffusion). *)
let prop_delta_traces ~count ~name model =
  QCheck.Test.make ~count ~name
    QCheck.(pair (int_bound 100_000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Batsched_numeric.Rng.create seed in
      let point () =
        let current = 10.0 +. Batsched_numeric.Rng.float rng 800.0 in
        let duration =
          (* one position in five is zero-duration *)
          if Batsched_numeric.Rng.int rng 5 = 0 then 0.0
          else 0.1 +. Batsched_numeric.Rng.float rng 8.0
        in
        (current, duration)
      in
      let points = ref (List.init n (fun _ -> point ())) in
      let d = delta_of model !points in
      for _ = 1 to 40 do
        let commit_it = Batsched_numeric.Rng.int rng 4 > 0 in
        if n >= 2 && Batsched_numeric.Rng.bool rng then begin
          let k = Batsched_numeric.Rng.int rng (n - 1) in
          ignore (Delta.try_swap d k);
          if commit_it then begin
            Delta.commit d;
            points := swap_list !points k
          end
          else Delta.discard d
        end
        else begin
          let k = Batsched_numeric.Rng.int rng n in
          let v = point () in
          ignore (Delta.try_set d k ~current:(fst v) ~duration:(snd v));
          if commit_it then begin
            Delta.commit d;
            points := set_list !points k v
          end
          else Delta.discard d
        end
      done;
      let sigma, finish = full_eval model !points in
      Float.abs (Delta.sigma d -. sigma) <= 1e-9 *. (1.0 +. Float.abs sigma)
      && Float.abs (Delta.finish d -. finish)
         <= 1e-9 *. (1.0 +. Float.abs finish))

let prop_delta_traces_match_full =
  prop_delta_traces ~count:200 ~name:"delta random move traces match full eval"
    rv

let prop_delta_traces_kibam =
  prop_delta_traces ~count:500
    ~name:"kibam delta traces match full eval (incremental)" (Kibam.model ())

let prop_delta_traces_diffusion =
  prop_delta_traces ~count:500
    ~name:"diffusion delta traces match full eval (checkpointed)"
    coarse_diffusion

(* Sigma_batch agrees with per-row sequential evaluation for every
   model — kernel (ideal/peukert/rakhmatov/kibam) and fallback
   (diffusion) — and is invariant under pool sharding. *)
let prop_sigma_batch_matches_sequential =
  let pool4 = Batsched_numeric.Pool.create 4 in
  QCheck.Test.make ~count:100
    ~name:"sigma batch matches per-row sequential eval"
    QCheck.(pair (int_bound 100_000) (int_range 1 4))
    (fun (seed, pop) ->
      let rng = Batsched_numeric.Rng.create seed in
      let n = 1 + Batsched_numeric.Rng.int rng 10 in
      let currents =
        Array.init (pop * n) (fun _ ->
            10.0 +. Batsched_numeric.Rng.float rng 800.0)
      in
      let durations =
        Array.init (pop * n) (fun _ ->
            if Batsched_numeric.Rng.int rng 5 = 0 then 0.0
            else 0.1 +. Batsched_numeric.Rng.float rng 8.0)
      in
      List.for_all
        (fun model ->
          let want =
            Array.init pop (fun p ->
                let profile =
                  Profile.sequential_fn ~n (fun k ->
                      (currents.((p * n) + k), durations.((p * n) + k)))
                in
                (Model.sigma_end model profile, Profile.length profile))
          in
          List.for_all
            (fun pool ->
              let b = Sigma_batch.create ?pool model in
              Sigma_batch.eval b ~pop ~n
                ~current:(fun p k -> currents.((p * n) + k))
                ~duration:(fun p k -> durations.((p * n) + k));
              List.for_all
                (fun p ->
                  let ws, wf = want.(p) in
                  Float.abs (Sigma_batch.sigma b p -. ws)
                  <= 1e-9 *. (1.0 +. Float.abs ws)
                  && Float.abs (Sigma_batch.finish b p -. wf)
                     <= 1e-9 *. (1.0 +. Float.abs wf))
                (List.init pop Fun.id))
            [ None; Some pool4 ])
        [ rv; Ideal.model; Peukert.model (); Kibam.model (); coarse_diffusion ])

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_delta_traces_match_full;
      prop_delta_traces_kibam;
      prop_delta_traces_diffusion;
      prop_sigma_batch_matches_sequential;
      prop_sigma_monotone_in_time;
      prop_sigma_at_least_ideal_at_end;
      prop_decreasing_order_never_worse;
      prop_idle_never_hurts;
      prop_sigma_matches_reference;
      prop_sigma_matches_reference_with_gaps;
      prop_periodic_oracle_ideal;
      prop_periodic_oracle_peukert;
      prop_periodic_oracle_rakhmatov;
      prop_periodic_oracle_kibam;
      prop_periodic_oracle_diffusion_exact ]

let () =
  Alcotest.run "battery"
    [ ( "profile",
        [ Alcotest.test_case "empty" `Quick test_profile_empty;
          Alcotest.test_case "sequential layout" `Quick test_profile_sequential_layout;
          Alcotest.test_case "total charge" `Quick test_profile_total_charge;
          Alcotest.test_case "drops zero duration" `Quick test_profile_drops_zero_duration;
          Alcotest.test_case "rejects overlap" `Quick test_profile_rejects_overlap;
          Alcotest.test_case "rejects negative current" `Quick test_profile_rejects_negative_current;
          Alcotest.test_case "touching ok" `Quick test_profile_touching_ok;
          Alcotest.test_case "truncate clips" `Quick test_profile_truncate_clips;
          Alcotest.test_case "truncate drops later" `Quick test_profile_truncate_drops_later;
          Alcotest.test_case "with idle" `Quick test_profile_with_idle;
          Alcotest.test_case "peak current" `Quick test_profile_peak_current;
          Alcotest.test_case "fold_until matches truncate" `Quick test_profile_fold_until_matches_truncate;
          Alcotest.test_case "sequential_fn matches sequential" `Quick test_profile_sequential_fn_matches_sequential ] );
      ( "ideal",
        [ Alcotest.test_case "equals charge" `Quick test_ideal_equals_charge;
          Alcotest.test_case "truncation" `Quick test_ideal_truncation ] );
      ( "peukert",
        [ Alcotest.test_case "reference current" `Quick test_peukert_reference_current_ideal;
          Alcotest.test_case "penalizes high" `Quick test_peukert_penalizes_high_current;
          Alcotest.test_case "rewards low" `Quick test_peukert_rewards_low_current;
          Alcotest.test_case "exponent 1 is ideal" `Quick test_peukert_exponent_one_is_ideal;
          Alcotest.test_case "invalid" `Quick test_peukert_invalid ] );
      ( "rakhmatov",
        [ Alcotest.test_case "reference edges" `Quick test_sigma_reference_single_interval;
          Alcotest.test_case "exceeds ideal during load" `Quick test_rv_exceeds_ideal_during_load;
          Alcotest.test_case "recovers at rest" `Quick test_rv_recovers_at_rest;
          Alcotest.test_case "monotone in time" `Quick test_rv_monotone_in_time_during_load;
          Alcotest.test_case "zero at time zero" `Quick test_rv_zero_at_time_zero;
          Alcotest.test_case "large beta is ideal" `Quick test_rv_large_beta_is_ideal;
          Alcotest.test_case "linear in currents" `Quick test_rv_superposition_of_currents;
          Alcotest.test_case "paper magnitude" `Quick test_rv_paper_magnitude;
          Alcotest.test_case "pairwise ordering" `Quick test_rv_ordering_theorem_pairwise;
          Alcotest.test_case "unavailable nonneg" `Quick test_rv_unavailable_nonnegative;
          Alcotest.test_case "sigma dips after heavy load" `Quick test_rv_sigma_can_dip_after_heavy_load;
          Alcotest.test_case "negative time" `Quick test_rv_negative_time_rejected ] );
      ( "kibam",
        [ Alcotest.test_case "full state" `Quick test_kibam_full_state;
          Alcotest.test_case "conservation" `Quick test_kibam_conservation;
          Alcotest.test_case "sigma zero at start" `Quick test_kibam_sigma_zero_at_start;
          Alcotest.test_case "sigma equals drawn at rest" `Quick test_kibam_sigma_equals_drawn_at_equilibrium;
          Alcotest.test_case "rate capacity" `Quick test_kibam_rate_capacity;
          Alcotest.test_case "recovery between bursts" `Quick test_kibam_recovery_between_bursts;
          Alcotest.test_case "lifetime monotone in load" `Quick test_kibam_lifetime_decreases_with_load;
          Alcotest.test_case "delivers less at high rate" `Quick test_kibam_delivers_less_at_high_rate;
          Alcotest.test_case "param validation" `Quick test_kibam_param_validation;
          Alcotest.test_case "step validation" `Quick test_kibam_step_validation;
          Alcotest.test_case "zero-duration step identity" `Quick test_kibam_zero_duration_step_identity ] );
      ("delta", delta_tests);
      ("sigma_batch", sigma_batch_tests);
      ( "lifetime",
        [ Alcotest.test_case "survives light load" `Quick test_lifetime_survives_light_load;
          Alcotest.test_case "dies under heavy load" `Quick test_lifetime_dies_under_heavy_load;
          Alcotest.test_case "constant consistency" `Quick test_lifetime_constant_current_consistent;
          Alcotest.test_case "decreases with load" `Quick test_lifetime_decreases_with_load;
          Alcotest.test_case "ideal exact" `Quick test_lifetime_ideal_model_exact;
          Alcotest.test_case "first crossing on dip" `Quick test_lifetime_first_crossing_on_dip;
          Alcotest.test_case "bad alpha" `Quick test_lifetime_bad_alpha ] );
      ( "diffusion",
        [ Alcotest.test_case "zero load" `Quick test_diffusion_zero_load;
          Alcotest.test_case "conservation at rest" `Quick test_diffusion_conservation_at_rest;
          Alcotest.test_case "matches analytic under load" `Quick test_diffusion_matches_analytic_under_load;
          Alcotest.test_case "matches analytic with recovery" `Quick test_diffusion_matches_analytic_with_recovery;
          Alcotest.test_case "ten terms undercount" `Quick test_diffusion_ten_terms_undercounts_under_load;
          Alcotest.test_case "surface depletes" `Quick test_diffusion_surface_depletes;
          Alcotest.test_case "param validation" `Quick test_diffusion_param_validation ] );
      ( "periodic",
        [ Alcotest.test_case "ideal matches budget" `Quick test_periodic_ideal_matches_budget;
          Alcotest.test_case "unsustainable" `Quick test_periodic_unsustainable_first_cycle;
          Alcotest.test_case "rest helps" `Quick test_periodic_rv_rest_helps;
          Alcotest.test_case "cycle longer than period" `Quick test_periodic_cycle_longer_than_period;
          Alcotest.test_case "max cycles cap" `Quick test_periodic_max_cycles_cap;
          Alcotest.test_case "min period" `Quick test_periodic_min_period;
          Alcotest.test_case "min period impossible" `Quick test_periodic_min_period_impossible;
          Alcotest.test_case "interp curve" `Quick test_periodic_interp_curve;
          Alcotest.test_case "fast path engages" `Quick test_periodic_fast_path_engages;
          Alcotest.test_case "batch matches scalar" `Quick test_periodic_batch_matches_scalar ] );
      ( "cell",
        [ Alcotest.test_case "presets" `Quick test_cell_presets;
          Alcotest.test_case "validation" `Quick test_cell_validation ] );
      ( "curves",
        [ Alcotest.test_case "rate capacity shape" `Quick test_curves_rate_capacity_shape;
          Alcotest.test_case "recovery shape" `Quick test_curves_recovery_shape;
          Alcotest.test_case "sigma curve monotone" `Quick test_curves_sigma_curve_monotone;
          Alcotest.test_case "ordering gap" `Quick test_curves_ordering_gap ] );
      ("properties", qcheck_tests) ]
