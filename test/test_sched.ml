(* Tests for the scheduling substrate: assignments, schedules, the three
   sequencing priorities and the paper's metric kernel. *)

open Batsched_taskgraph
open Batsched_sched

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let diamond () =
  let t id pairs = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) pairs in
  Graph.make ~label:"diamond" ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
    [ t 0 [ (400.0, 1.0); (200.0, 2.0); (50.0, 4.0) ];
      t 1 [ (600.0, 2.0); (300.0, 4.0); (80.0, 8.0) ];
      t 2 [ (500.0, 1.0); (250.0, 2.0); (60.0, 4.0) ];
      t 3 [ (450.0, 3.0); (220.0, 6.0); (70.0, 12.0) ] ]

let model = Batsched_battery.Rakhmatov.model ()

(* --- Assignment --- *)

let test_assignment_uniform_builders () =
  let g = diamond () in
  let fast = Assignment.all_fastest g in
  let slow = Assignment.all_lowest_power g in
  for i = 0 to 3 do
    Alcotest.(check int) "fast col" 0 (Assignment.column fast i);
    Alcotest.(check int) "slow col" 2 (Assignment.column slow i)
  done

let test_assignment_of_list_and_set () =
  let g = diamond () in
  let a = Assignment.of_list g [ 0; 1; 2; 0 ] in
  Alcotest.(check int) "col 1" 1 (Assignment.column a 1);
  let a' = Assignment.set a 1 2 in
  Alcotest.(check int) "functional update" 1 (Assignment.column a 1);
  Alcotest.(check int) "updated" 2 (Assignment.column a' 1)

let test_assignment_validation () =
  let g = diamond () in
  Alcotest.check_raises "length" (Invalid_argument "Assignment.of_list: length mismatch")
    (fun () -> ignore (Assignment.of_list g [ 0; 1 ]));
  Alcotest.check_raises "column" (Invalid_argument "Assignment.of_list: column out of range")
    (fun () -> ignore (Assignment.of_list g [ 0; 1; 2; 3 ]))

let test_assignment_totals () =
  let g = diamond () in
  let fast = Assignment.all_fastest g in
  check_float "time" 7.0 (Assignment.total_time g fast);
  check_float "charge" (400.0 +. 1200.0 +. 500.0 +. 1350.0)
    (Assignment.total_charge g fast);
  (* voltages default to 1, so energy = charge *)
  check_float "energy" (Assignment.total_charge g fast)
    (Assignment.total_energy g fast)

let test_assignment_equal () =
  let g = diamond () in
  let a = Assignment.of_list g [ 0; 1; 2; 0 ] in
  let b = Assignment.of_list g [ 0; 1; 2; 0 ] in
  Alcotest.(check bool) "equal" true (Assignment.equal a b);
  Alcotest.(check bool) "not equal" false (Assignment.equal a (Assignment.set b 0 1))

let test_assignment_paper_rendering () =
  let g = diamond () in
  let a = Assignment.of_list g [ 0; 1; 2; 0 ] in
  Alcotest.(check string) "paper row" "P1,P2,P3,P1"
    (Format.asprintf "%a" (Assignment.pp_paper g) a)

(* --- Schedule --- *)

let test_schedule_rejects_bad_sequence () =
  let g = diamond () in
  Alcotest.check_raises "invalid"
    (Invalid_argument "Schedule.make: sequence is not a topological order")
    (fun () ->
      ignore
        (Schedule.make g ~sequence:[ 1; 0; 2; 3 ]
           ~assignment:(Assignment.all_fastest g)))

let test_schedule_profile_layout () =
  let g = diamond () in
  let s =
    Schedule.make g ~sequence:[ 0; 2; 1; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  let p = Schedule.to_profile g s in
  let ivs = Batsched_battery.Profile.intervals p in
  Alcotest.(check int) "four intervals" 4 (List.length ivs);
  (* second interval is task 2 at its fastest: 500 mA starting at 1.0 *)
  (match ivs with
  | _ :: iv :: _ ->
      check_float "start" 1.0 iv.Batsched_battery.Profile.start;
      check_float "current" 500.0 iv.Batsched_battery.Profile.current
  | _ -> Alcotest.fail "expected intervals");
  check_float "finish = total time" (Schedule.finish_time g s)
    (Batsched_battery.Profile.length p)

let test_schedule_meets_deadline () =
  let g = diamond () in
  let s =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  Alcotest.(check bool) "meets 7" true (Schedule.meets_deadline g s ~deadline:7.0);
  Alcotest.(check bool) "misses 6.9" false (Schedule.meets_deadline g s ~deadline:6.9)

let test_schedule_battery_cost_positive () =
  let g = diamond () in
  let s =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  Alcotest.(check bool) "positive and above coulombs" true
    (Schedule.battery_cost ~model g s
     > Assignment.total_charge g (Assignment.all_fastest g))

let test_schedule_currents_in_sequence_order () =
  let g = diamond () in
  let s =
    Schedule.make g ~sequence:[ 0; 2; 1; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  Alcotest.(check (list (float 1e-9))) "currents" [ 400.0; 500.0; 600.0; 450.0 ]
    (Schedule.currents g s)

(* --- Priorities --- *)

let test_sequence_dec_energy_orders_by_avg_energy () =
  let g = diamond () in
  (* avg energies: T1 (id0): (400+400+200)/3 = 333.3; T2 (id1):
     (1200+1200+640)/3 = 1013.3; T3 (id2): (500+500+240)/3 = 413.3; T4:
     (1350+1320+840)/3 = 1170.  After source 0, ready = {1,2}: 1 wins. *)
  Alcotest.(check (list int)) "order" [ 0; 1; 2; 3 ]
    (Priorities.sequence_dec_energy g)

let test_weighted_sequence_uses_chosen_currents () =
  let g = diamond () in
  (* make task 2's chosen current dominate: assign task 1 to its lowest
     power (80 mA) and task 2 to fastest (500): w(2) > w(1) *)
  let a = Assignment.of_list g [ 0; 2; 0; 0 ] in
  let seq = Priorities.weighted_sequence g a in
  Alcotest.(check (list int)) "order" [ 0; 2; 1; 3 ] seq

let test_greedy_mean_current_valid () =
  let g = diamond () in
  let a = Assignment.all_fastest g in
  Alcotest.(check bool) "topological" true
    (Analysis.is_topological g (Priorities.greedy_mean_current g a))

(* --- Metrics --- *)

let test_slack_ratio () =
  check_float "half used" 0.5 (Metrics.slack_ratio ~deadline:10.0 ~time:5.0);
  check_float "exact" 0.0 (Metrics.slack_ratio ~deadline:10.0 ~time:10.0);
  Alcotest.(check bool) "negative over deadline" true
    (Metrics.slack_ratio ~deadline:10.0 ~time:12.0 < 0.0)

let test_current_ratio_bounds () =
  let g = diamond () in
  (* global range: 50 .. 600 *)
  check_float "min" 0.0 (Metrics.current_ratio g 50.0);
  check_float "max" 1.0 (Metrics.current_ratio g 600.0);
  check_close 1e-9 "mid" ((300.0 -. 50.0) /. 550.0) (Metrics.current_ratio g 300.0)

let test_energy_ratio_bounds () =
  let g = diamond () in
  check_float "all slowest" 0.0 (Metrics.energy_ratio g (Assignment.all_lowest_power g));
  check_float "all fastest" 1.0 (Metrics.energy_ratio g (Assignment.all_fastest g))

let test_cif_counts_increases () =
  let g = diamond () in
  let a = Assignment.all_fastest g in
  (* currents in order 0,1,2,3: 400,600,500,450 -> one increase of three
     transitions *)
  check_close 1e-9 "one third" (1.0 /. 3.0)
    (Metrics.current_increase_fraction g a [ 0; 1; 2; 3 ]);
  (* order 1,0: wait, must be topological-agnostic: metric works on any
     list *)
  check_float "single task" 0.0 (Metrics.current_increase_fraction g a [ 0 ])

let test_cif_extremes () =
  let t id pairs = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" id) pairs in
  let g =
    Graph.make ~edges:[]
      [ t 0 [ (100.0, 1.0) ]; t 1 [ (200.0, 1.0) ]; t 2 [ (300.0, 1.0) ] ]
  in
  let a = Assignment.all_fastest g in
  check_float "strictly rising" 1.0
    (Metrics.current_increase_fraction g a [ 0; 1; 2 ]);
  check_float "strictly falling" 0.0
    (Metrics.current_increase_fraction g a [ 2; 1; 0 ])

let test_dpf_static_paper_example () =
  (* Figure 4-c: m = 4, full window; free = {T1 at DP2, T2 at DP4} *)
  let t id = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1))
      [ (800.0, 2.0); (400.0, 4.0); (200.0, 6.0); (100.0, 8.0) ]
  in
  let g = Graph.make ~edges:[] (List.init 5 t) in
  let a = Assignment.of_list g [ 1; 3; 1; 0; 3 ] in
  check_close 1e-12 "paper value" (1.0 /. 3.0)
    (Metrics.dpf_static g a ~free:[ 0; 1 ] ~window_start:0)

let test_dpf_static_extremes () =
  let g = diamond () in
  (* all free tasks at lowest power -> weight 0 -> DPF 0 *)
  check_float "all lowest" 0.0
    (Metrics.dpf_static g (Assignment.all_lowest_power g) ~free:[ 0; 1; 2 ]
       ~window_start:0);
  (* all free tasks at the fastest column -> weight 1 each -> DPF 1 *)
  check_float "all fastest" 1.0
    (Metrics.dpf_static g (Assignment.all_fastest g) ~free:[ 0; 1; 2 ]
       ~window_start:0);
  (* no free tasks -> 0 *)
  check_float "no free" 0.0
    (Metrics.dpf_static g (Assignment.all_fastest g) ~free:[] ~window_start:0)

let test_dpf_static_window_relative () =
  let g = diamond () in
  (* window 1..2 (0-based): column 1 has weight 1, column 2 weight 0 *)
  let a = Assignment.of_list g [ 1; 2; 1; 2 ] in
  check_float "half" 0.5
    (Metrics.dpf_static g a ~free:[ 0; 1 ] ~window_start:1);
  (* single-column window -> degenerate 0 *)
  check_float "degenerate" 0.0
    (Metrics.dpf_static g a ~free:[ 0; 1 ] ~window_start:2)

let test_suitability_sum () =
  check_float "sum" 2.5
    (Metrics.suitability ~sr:0.5 ~cr:0.5 ~enr:0.5 ~cif:0.5 ~dpf:0.5)

(* --- Continuous relaxation --- *)

let cube_graph () =
  (* tasks whose design points lie exactly on the cube law, so the
     relaxation is a true lower bound for them *)
  let mk id base_current base_duration =
    let pairs, voltages =
      Designpoints.cube_law ~base_current ~base_duration
        ~factors:[ 1.0; 0.8; 0.6; 0.4 ] ()
    in
    Task.of_pairs ~id ~name:(Printf.sprintf "T%d" (id + 1)) ~voltages pairs
  in
  Graph.make ~label:"cube" ~edges:[ (0, 1); (1, 2) ]
    [ mk 0 900.0 2.0; mk 1 500.0 3.0; mk 2 700.0 1.5 ]

let test_continuous_infeasible () =
  let g = cube_graph () in
  Alcotest.check_raises "below fastest" Continuous.Infeasible (fun () ->
      ignore (Continuous.relax g ~deadline:5.0))

let test_continuous_exhausts_deadline () =
  let g = cube_graph () in
  let deadline = 12.0 in
  let sol = Continuous.relax g ~deadline in
  let total = Array.fold_left ( +. ) 0.0 sol.Continuous.durations in
  check_close 1e-6 "active constraint" deadline total

let test_continuous_kkt_stationarity () =
  (* interior scalings satisfy u_i^3 * 2 I_i = lambda *)
  let g = cube_graph () in
  let sol = Continuous.relax g ~deadline:12.0 in
  Array.iteri
    (fun i u ->
      if u < 1.0 -. 1e-9 then
        check_close 1e-6 "kkt"
          sol.Continuous.lambda
          (2.0 *. (Task.fastest (Graph.task g i)).Task.current *. (u ** 3.0)))
    sol.Continuous.scalings

let test_continuous_bounds_discrete_choices () =
  (* every deadline-feasible discrete assignment of a cube-law graph
     has at least the relaxed charge *)
  let g = cube_graph () in
  let deadline = 12.0 in
  let bound = Continuous.lower_bound_charge g ~deadline in
  let m = Graph.num_points g in
  for c0 = 0 to m - 1 do
    for c1 = 0 to m - 1 do
      for c2 = 0 to m - 1 do
        let a = Assignment.of_list g [ c0; c1; c2 ] in
        if Assignment.total_time g a <= deadline +. 1e-9 then
          Alcotest.(check bool) "bounded" true
            (Assignment.total_charge g a >= bound -. 1e-6)
      done
    done
  done

let test_continuous_monotone_in_deadline () =
  let g = cube_graph () in
  let b d = Continuous.lower_bound_charge g ~deadline:d in
  Alcotest.(check bool) "looser is cheaper" true
    (b 8.0 > b 12.0 && b 12.0 > b 20.0)

let test_continuous_scalings_in_range () =
  let g = cube_graph () in
  let sol = Continuous.relax g ~deadline:15.0 in
  Array.iter
    (fun u -> Alcotest.(check bool) "in (0,1]" true (u > 0.0 && u <= 1.0 +. 1e-12))
    sol.Continuous.scalings

(* --- Render --- *)

let test_render_gantt_mentions_tasks () =
  let g = diamond () in
  let s =
    Schedule.make g ~sequence:[ 0; 2; 1; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  let out = Render.gantt g s in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length out in
        let rec go i =
          i + nl <= hl && (String.sub out i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true found)
    [ "T1"; "T2"; "T3"; "T4"; "#"; "P1" ]

let test_render_gantt_row_count () =
  let g = diamond () in
  let s =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  let lines = String.split_on_char '\n' (Render.gantt g s) in
  (* header + 4 tasks + axis + trailing empty *)
  Alcotest.(check int) "lines" 7 (List.length lines)

let test_render_profile_chart_dimensions () =
  let p = Batsched_battery.Profile.sequential [ (500.0, 5.0); (100.0, 5.0) ] in
  let out = Render.profile_chart ~width:40 ~height:6 p in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  (* 6 chart rows + axis + time labels *)
  Alcotest.(check int) "rows" 8 (List.length lines)

let test_render_profile_chart_empty () =
  Alcotest.(check string) "empty note" "(empty profile)\n"
    (Render.profile_chart Batsched_battery.Profile.empty)

let test_render_validation () =
  let g = diamond () in
  let s =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  Alcotest.check_raises "narrow" (Invalid_argument "Render: width < 10")
    (fun () -> ignore (Render.gantt ~width:3 g s))

(* --- edge cases --- *)

let test_schedule_single_task () =
  let t = Task.of_pairs ~id:0 ~name:"only" [ (100.0, 2.0) ] in
  let g = Graph.make ~edges:[] [ t ] in
  let s = Schedule.make g ~sequence:[ 0 ] ~assignment:(Assignment.all_fastest g) in
  check_float "finish" 2.0 (Schedule.finish_time g s);
  Alcotest.(check int) "one interval" 1
    (List.length (Batsched_battery.Profile.intervals (Schedule.to_profile g s)))

let test_cif_flat_currents () =
  (* equal adjacent currents are not "increases" *)
  let t id = Task.of_pairs ~id ~name:(Printf.sprintf "T%d" id) [ (100.0, 1.0) ] in
  let g = Graph.make ~edges:[] [ t 0; t 1; t 2 ] in
  check_float "flat" 0.0
    (Metrics.current_increase_fraction g (Assignment.all_fastest g) [ 0; 1; 2 ])

let test_current_ratio_degenerate_graph () =
  (* all design points share one current: CR collapses to 0 *)
  let t id = Task.of_pairs ~id ~name:"T" [ (100.0, 1.0); (100.0, 2.0) ] in
  let g = Graph.make ~edges:[] [ t 0 ] in
  check_float "degenerate" 0.0 (Metrics.current_ratio g 100.0)

let test_continuous_single_task () =
  let t = Task.of_pairs ~id:0 ~name:"only" [ (800.0, 2.0) ] in
  let g = Graph.make ~edges:[] [ t ] in
  let sol = Continuous.relax g ~deadline:8.0 in
  (* one task: u = D/d exactly, charge = I D (D/d)^2 *)
  check_close 1e-6 "scaling" 0.25 sol.Continuous.scalings.(0);
  check_close 1e-6 "charge" (800.0 *. 2.0 *. 0.0625) sol.Continuous.charge

(* --- Schedule.unsafe_make and Eval --- *)

let check_rel name want got =
  let ok = Float.abs (got -. want) <= 1e-9 *. (1.0 +. Float.abs want) in
  if not ok then
    Alcotest.failf "%s: got %.17g, want %.17g" name got want

let check_eval_against_oracle g ev =
  let sched = Eval.to_schedule ev in
  check_rel "sigma"
    (Schedule.battery_cost ~model g sched)
    (Eval.sigma ev);
  check_rel "finish" (Schedule.finish_time g sched) (Eval.finish ev)

let test_unsafe_make () =
  let g = diamond () in
  let assignment = Assignment.all_fastest g in
  (* same result as the checked constructor on a valid order *)
  let s = Schedule.unsafe_make g ~sequence:[ 0; 2; 1; 3 ] ~assignment in
  Alcotest.(check (list int)) "sequence kept" [ 0; 2; 1; 3 ] s.Schedule.sequence;
  (* the contract: only the length is validated — a non-topological
     order is the caller's bug, not detected here *)
  ignore (Schedule.unsafe_make g ~sequence:[ 3; 0; 1; 2 ] ~assignment);
  Alcotest.check_raises "length still checked"
    (Invalid_argument "Schedule.unsafe_make: sequence length mismatch")
    (fun () -> ignore (Schedule.unsafe_make g ~sequence:[ 0; 1 ] ~assignment))

let test_eval_matches_oracle_at_load () =
  let g = diamond () in
  let sched =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.of_list g [ 1; 0; 2; 1 ])
  in
  let ev = Eval.make ~model g sched in
  check_rel "sigma" (Schedule.battery_cost ~model g sched) (Eval.sigma ev);
  check_rel "finish" (Schedule.finish_time g sched) (Eval.finish ev);
  Alcotest.(check (list int)) "sequence" [ 0; 1; 2; 3 ] (Eval.sequence ev);
  Alcotest.(check int) "column" 2 (Eval.column ev 2);
  Alcotest.(check int) "task_at" 1 (Eval.task_at ev 1);
  Alcotest.(check int) "position" 3 (Eval.position ev 3)

let test_eval_swap_allowed () =
  let g = diamond () in
  let sched =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  let ev = Eval.make ~model g sched in
  (* 0 -> 1 is an edge; 1 and 2 are incomparable; 2 -> 3 is an edge *)
  Alcotest.(check bool) "edge blocks" false (Eval.swap_allowed ev 0);
  Alcotest.(check bool) "incomparable swaps" true (Eval.swap_allowed ev 1);
  Alcotest.(check bool) "edge blocks tail" false (Eval.swap_allowed ev 2);
  Alcotest.check_raises "forbidden swap raises"
    (Invalid_argument "Eval.try_swap: swap violates a precedence edge")
    (fun () -> ignore (Eval.try_swap ev 0))

let test_eval_moves_match_oracle () =
  let g = diamond () in
  let sched =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.of_list g [ 0; 1; 0; 2 ])
  in
  let ev = Eval.make ~model g sched in
  (* swap candidate = oracle of the swapped schedule *)
  let swapped =
    Schedule.make g ~sequence:[ 0; 2; 1; 3 ]
      ~assignment:(Assignment.of_list g [ 0; 1; 0; 2 ])
  in
  let got_sigma, got_finish = Eval.try_swap ev 1 in
  check_rel "swap sigma" (Schedule.battery_cost ~model g swapped) got_sigma;
  check_rel "swap finish" (Schedule.finish_time g swapped) got_finish;
  Eval.discard ev;
  check_eval_against_oracle g ev;
  (* repoint candidate likewise; the finish moves with the duration *)
  let repointed =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.of_list g [ 0; 2; 0; 2 ])
  in
  let got_sigma, got_finish = Eval.try_repoint ev ~task:1 ~col:2 in
  check_rel "repoint sigma"
    (Schedule.battery_cost ~model g repointed)
    got_sigma;
  check_rel "repoint finish" (Schedule.finish_time g repointed) got_finish;
  Eval.commit ev;
  Alcotest.(check int) "column updated" 2 (Eval.column ev 1);
  check_eval_against_oracle g ev;
  (* and a swap after the repoint, committed *)
  ignore (Eval.try_swap ev 1);
  Eval.commit ev;
  Alcotest.(check (list int)) "sequence updated" [ 0; 2; 1; 3 ]
    (Eval.sequence ev);
  check_eval_against_oracle g ev

let test_eval_pending_protocol () =
  let g = diamond () in
  let sched =
    Schedule.make g ~sequence:[ 0; 1; 2; 3 ]
      ~assignment:(Assignment.all_fastest g)
  in
  let ev = Eval.make ~model g sched in
  ignore (Eval.try_swap ev 1);
  Alcotest.check_raises "try while pending"
    (Invalid_argument "Eval.try_repoint: uncommitted pending move")
    (fun () -> ignore (Eval.try_repoint ev ~task:0 ~col:1));
  Alcotest.check_raises "to_schedule while pending"
    (Invalid_argument "Eval.to_schedule: uncommitted pending move")
    (fun () -> ignore (Eval.to_schedule ev));
  Eval.commit ev;
  Alcotest.check_raises "commit w/o move"
    (Invalid_argument "Eval.commit: no pending move") (fun () ->
      Eval.commit ev)

let test_eval_load_reuses_evaluator () =
  let g = diamond () in
  let a = Assignment.all_fastest g in
  let s1 = Schedule.make g ~sequence:[ 0; 1; 2; 3 ] ~assignment:a in
  let s2 =
    Schedule.make g ~sequence:[ 0; 2; 1; 3 ]
      ~assignment:(Assignment.all_lowest_power g)
  in
  let ev = Eval.make ~model g s1 in
  ignore (Eval.try_swap ev 1);
  (* load drops the pending move and re-seats *)
  Eval.load ev s2;
  check_rel "sigma after load" (Schedule.battery_cost ~model g s2)
    (Eval.sigma ev);
  check_eval_against_oracle g ev

(* --- qcheck properties --- *)

let gen_graph =
  QCheck.(map
            (fun seed ->
              let rng = Batsched_numeric.Rng.create seed in
              let spec = { Generators.default_spec with Generators.num_points = 4 } in
              Generators.fork_join ~rng ~spec ~widths:[ 2; 3 ])
            (int_bound 10_000))

let gen_assignment g seed =
  let rng = Batsched_numeric.Rng.create seed in
  Assignment.of_list g
    (List.init (Graph.num_tasks g) (fun _ ->
         Batsched_numeric.Rng.int rng (Graph.num_points g)))

let prop_metrics_in_unit_interval =
  QCheck.Test.make ~count:100 ~name:"ENR and CIF stay in [0,1]"
    QCheck.(pair gen_graph (int_bound 1000))
    (fun (g, seed) ->
      let a = gen_assignment g seed in
      let seq = Analysis.any_topological_order g in
      let enr = Metrics.energy_ratio g a in
      let cif = Metrics.current_increase_fraction g a seq in
      enr >= -1e-9 && enr <= 1.0 +. 1e-9 && cif >= 0.0 && cif <= 1.0)

let prop_dpf_in_unit_interval =
  QCheck.Test.make ~count:100 ~name:"static DPF stays in [0,1]"
    QCheck.(triple gen_graph (int_bound 1000) (int_bound 3))
    (fun (g, seed, ws) ->
      (* free columns must lie inside the window, as in the algorithm *)
      let m = Graph.num_points g in
      let rng = Batsched_numeric.Rng.create seed in
      let a =
        Assignment.of_list g
          (List.init (Graph.num_tasks g) (fun _ ->
               ws + Batsched_numeric.Rng.int rng (m - ws)))
      in
      let free = List.init (Graph.num_tasks g / 2) Fun.id in
      let dpf = Metrics.dpf_static g a ~free ~window_start:ws in
      dpf >= -1e-9 && dpf <= 1.0 +. 1e-9)

let prop_schedule_profile_charge_consistent =
  QCheck.Test.make ~count:100
    ~name:"profile coulombs equal assignment total charge"
    QCheck.(pair gen_graph (int_bound 1000))
    (fun (g, seed) ->
      let a = gen_assignment g seed in
      let s = Schedule.make g ~sequence:(Analysis.any_topological_order g)
          ~assignment:a
      in
      Float.abs
        (Batsched_battery.Profile.total_charge (Schedule.to_profile g s)
         -. Assignment.total_charge g a)
      < 1e-6)

let prop_priorities_always_topological =
  QCheck.Test.make ~count:100 ~name:"all three priorities yield linearizations"
    QCheck.(pair gen_graph (int_bound 1000))
    (fun (g, seed) ->
      let a = gen_assignment g seed in
      Analysis.is_topological g (Priorities.sequence_dec_energy g)
      && Analysis.is_topological g (Priorities.weighted_sequence g a)
      && Analysis.is_topological g (Priorities.greedy_mean_current g a))

(* Random DAGs driven through random precedence-respecting move traces:
   the incremental evaluator's committed sigma/finish track the full
   [Schedule] path throughout, and its sequence stays topological (the
   invariant that makes [unsafe_make] sound). *)
let prop_eval_traces_match_oracle =
  QCheck.Test.make ~count:500 ~name:"eval random DAG move traces match oracle"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Batsched_numeric.Rng.create seed in
      let spec = { Generators.default_spec with Generators.num_points = 4 } in
      let g =
        if Batsched_numeric.Rng.bool rng then
          Generators.fork_join ~rng ~spec ~widths:[ 2; 3 ]
        else
          Generators.random_dag ~rng ~spec
            ~n:(1 + Batsched_numeric.Rng.int rng 12)
            ~edge_prob:0.3
      in
      let n = Graph.num_tasks g and m = Graph.num_points g in
      let sequence = Analysis.any_topological_order g in
      let assignment = gen_assignment g (Batsched_numeric.Rng.int rng 1000) in
      let ev = Eval.make ~model g (Schedule.make g ~sequence ~assignment) in
      for _ = 1 to 30 do
        let commit_it = Batsched_numeric.Rng.int rng 4 > 0 in
        if n >= 2 && Batsched_numeric.Rng.bool rng then begin
          let k = Batsched_numeric.Rng.int rng (n - 1) in
          if Eval.swap_allowed ev k then begin
            ignore (Eval.try_swap ev k);
            if commit_it then Eval.commit ev else Eval.discard ev
          end
        end
        else begin
          let i = Batsched_numeric.Rng.int rng n in
          let j = Batsched_numeric.Rng.int rng m in
          ignore (Eval.try_repoint ev ~task:i ~col:j);
          if commit_it then Eval.commit ev else Eval.discard ev
        end
      done;
      let sched = Eval.to_schedule ev in
      Analysis.is_topological g sched.Schedule.sequence
      && Float.abs (Eval.sigma ev -. Schedule.battery_cost ~model g sched)
         <= 1e-9 *. (1.0 +. Float.abs (Eval.sigma ev))
      && Float.abs (Eval.finish ev -. Schedule.finish_time g sched)
         <= 1e-9 *. (1.0 +. Float.abs (Eval.finish ev)))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_metrics_in_unit_interval;
      prop_dpf_in_unit_interval;
      prop_schedule_profile_charge_consistent;
      prop_priorities_always_topological;
      prop_eval_traces_match_oracle ]

let () =
  Alcotest.run "sched"
    [ ( "assignment",
        [ Alcotest.test_case "uniform builders" `Quick test_assignment_uniform_builders;
          Alcotest.test_case "of_list and set" `Quick test_assignment_of_list_and_set;
          Alcotest.test_case "validation" `Quick test_assignment_validation;
          Alcotest.test_case "totals" `Quick test_assignment_totals;
          Alcotest.test_case "equal" `Quick test_assignment_equal;
          Alcotest.test_case "paper rendering" `Quick test_assignment_paper_rendering ] );
      ( "schedule",
        [ Alcotest.test_case "rejects bad sequence" `Quick test_schedule_rejects_bad_sequence;
          Alcotest.test_case "profile layout" `Quick test_schedule_profile_layout;
          Alcotest.test_case "meets deadline" `Quick test_schedule_meets_deadline;
          Alcotest.test_case "battery cost" `Quick test_schedule_battery_cost_positive;
          Alcotest.test_case "currents order" `Quick test_schedule_currents_in_sequence_order ] );
      ( "eval",
        [ Alcotest.test_case "unsafe_make" `Quick test_unsafe_make;
          Alcotest.test_case "matches oracle at load" `Quick test_eval_matches_oracle_at_load;
          Alcotest.test_case "swap_allowed" `Quick test_eval_swap_allowed;
          Alcotest.test_case "moves match oracle" `Quick test_eval_moves_match_oracle;
          Alcotest.test_case "pending protocol" `Quick test_eval_pending_protocol;
          Alcotest.test_case "load reuses evaluator" `Quick test_eval_load_reuses_evaluator ] );
      ( "priorities",
        [ Alcotest.test_case "dec energy" `Quick test_sequence_dec_energy_orders_by_avg_energy;
          Alcotest.test_case "weighted uses chosen currents" `Quick test_weighted_sequence_uses_chosen_currents;
          Alcotest.test_case "greedy valid" `Quick test_greedy_mean_current_valid ] );
      ( "metrics",
        [ Alcotest.test_case "slack ratio" `Quick test_slack_ratio;
          Alcotest.test_case "current ratio" `Quick test_current_ratio_bounds;
          Alcotest.test_case "energy ratio" `Quick test_energy_ratio_bounds;
          Alcotest.test_case "cif counts" `Quick test_cif_counts_increases;
          Alcotest.test_case "cif extremes" `Quick test_cif_extremes;
          Alcotest.test_case "dpf paper example" `Quick test_dpf_static_paper_example;
          Alcotest.test_case "dpf extremes" `Quick test_dpf_static_extremes;
          Alcotest.test_case "dpf window relative" `Quick test_dpf_static_window_relative;
          Alcotest.test_case "suitability" `Quick test_suitability_sum ] );
      ( "continuous",
        [ Alcotest.test_case "infeasible" `Quick test_continuous_infeasible;
          Alcotest.test_case "exhausts deadline" `Quick test_continuous_exhausts_deadline;
          Alcotest.test_case "kkt stationarity" `Quick test_continuous_kkt_stationarity;
          Alcotest.test_case "bounds discrete choices" `Quick test_continuous_bounds_discrete_choices;
          Alcotest.test_case "monotone in deadline" `Quick test_continuous_monotone_in_deadline;
          Alcotest.test_case "scalings in range" `Quick test_continuous_scalings_in_range ] );
      ( "edge-cases",
        [ Alcotest.test_case "single task schedule" `Quick test_schedule_single_task;
          Alcotest.test_case "flat currents cif" `Quick test_cif_flat_currents;
          Alcotest.test_case "degenerate current ratio" `Quick test_current_ratio_degenerate_graph;
          Alcotest.test_case "continuous single task" `Quick test_continuous_single_task ] );
      ( "render",
        [ Alcotest.test_case "gantt mentions tasks" `Quick test_render_gantt_mentions_tasks;
          Alcotest.test_case "gantt row count" `Quick test_render_gantt_row_count;
          Alcotest.test_case "chart dimensions" `Quick test_render_profile_chart_dimensions;
          Alcotest.test_case "chart empty" `Quick test_render_profile_chart_empty;
          Alcotest.test_case "validation" `Quick test_render_validation ] );
      ("properties", qcheck_tests) ]
