(* Tests for the fleet endurance engine: spec parsing, sampler purity,
   survival accounting, and the bit-identical-across-pool-sizes
   guarantee the sharded engine rests on. *)

open Batsched_fleet

let spec_json =
  {|{
  "horizon": 30,
  "alpha": {"min": 20000, "max": 40000},
  "soh": {"min": 0.8, "max": 1.0},
  "period_factor": {"min": 1.2, "max": 2.0},
  "models": [
    {"model": "ideal", "weight": 0.5},
    {"model": "peukert", "exponent": {"min": 1.05, "max": 1.3}},
    {"model": "rakhmatov", "weight": 2.0, "beta": {"min": 0.2, "max": 0.6}},
    {"model": "kibam", "c": {"min": 0.3, "max": 0.7},
     "k_prime": {"min": 0.02, "max": 0.1}},
    {"model": "pde", "weight": 0.4, "beta": {"min": 0.2, "max": 0.5},
     "nodes": 8, "dt": 1.0}
  ],
  "cycle": {"kind": "bursts", "count": {"min": 1, "max": 4},
            "current": {"min": 200, "max": 900},
            "duration": {"min": 2, "max": 15}}
}|}

let parse_spec () =
  match Spec.of_json (Batsched_obs.Json.parse spec_json) with
  | Ok s -> s
  | Error msg -> Alcotest.failf "spec should parse: %s" msg

(* --- Spec --- *)

let test_spec_parses () =
  let s = parse_spec () in
  Alcotest.(check int) "horizon" 30 s.Spec.horizon;
  Alcotest.(check int) "models" 5 (List.length s.Spec.models);
  Alcotest.(check (float 1e-9)) "alpha lo" 20000.0 s.Spec.alpha.Spec.lo;
  let labels = List.map (fun m -> m.Spec.label) s.Spec.models in
  Alcotest.(check (list string)) "labels"
    [ "ideal"; "peukert"; "rakhmatov"; "kibam"; "pde" ]
    labels;
  match s.Spec.cycle with
  | Spec.Bursts { count; _ } ->
      Alcotest.(check (float 1e-9)) "count hi" 4.0 count.Spec.hi
  | Spec.Graph _ -> Alcotest.fail "expected a bursts cycle"

let test_spec_graph_cycle () =
  let j =
    Batsched_obs.Json.parse
      {|{"models": [{"model": "ideal"}],
         "cycle": {"kind": "graph", "graph": "g2", "law": "fastest"}}|}
  in
  match Spec.of_json j with
  | Error msg -> Alcotest.failf "should parse: %s" msg
  | Ok s -> begin
      Alcotest.(check int) "default horizon" 200 s.Spec.horizon;
      match s.Spec.cycle with
      | Spec.Graph { name; law = Spec.Fastest; _ } ->
          Alcotest.(check string) "graph" "g2" name
      | _ -> Alcotest.fail "expected g2/fastest"
    end

let test_spec_rejects () =
  let reject label json =
    match Spec.of_json (Batsched_obs.Json.parse json) with
    | Ok _ -> Alcotest.failf "%s: should be rejected" label
    | Error msg ->
        Alcotest.(check bool)
          (label ^ ": message names the spec") true
          (String.length msg > 0)
  in
  reject "no models" {|{"cycle": {"kind": "bursts"}, "models": []}|};
  reject "unknown model"
    {|{"cycle": {"kind": "bursts"}, "models": [{"model": "magic"}]}|};
  reject "inverted range"
    {|{"alpha": {"min": 10, "max": 5}, "cycle": {"kind": "bursts"},
       "models": [{"model": "ideal"}]}|};
  reject "period factor below 1"
    {|{"period_factor": 0.5, "cycle": {"kind": "bursts"},
       "models": [{"model": "ideal"}]}|};
  reject "unknown graph"
    {|{"cycle": {"kind": "graph", "graph": "g9"},
       "models": [{"model": "ideal"}]}|}

(* --- Sampler --- *)

let profiles_equal a b =
  let la = Batsched_battery.Profile.intervals a in
  let lb = Batsched_battery.Profile.intervals b in
  List.length la = List.length lb
  && List.for_all2
       (fun (x : Batsched_battery.Profile.interval)
            (y : Batsched_battery.Profile.interval) ->
         x.Batsched_battery.Profile.start = y.Batsched_battery.Profile.start
         && x.Batsched_battery.Profile.duration
            = y.Batsched_battery.Profile.duration
         && x.Batsched_battery.Profile.current
            = y.Batsched_battery.Profile.current)
       la lb

let test_sampler_pure () =
  let spec = parse_spec () in
  let base = Sampler.base ~seed:7 in
  for i = 0 to 49 do
    let a = Sampler.device spec ~base i in
    let b = Sampler.device spec ~base i in
    Alcotest.(check int)
      (Printf.sprintf "device %d model" i)
      a.Sampler.model_index b.Sampler.model_index;
    Alcotest.(check bool)
      (Printf.sprintf "device %d alpha bit-equal" i)
      true
      (Int64.equal
         (Int64.bits_of_float a.Sampler.periodic.Batsched_battery.Periodic.alpha)
         (Int64.bits_of_float b.Sampler.periodic.Batsched_battery.Periodic.alpha));
    Alcotest.(check bool)
      (Printf.sprintf "device %d period bit-equal" i)
      true
      (a.Sampler.periodic.Batsched_battery.Periodic.period
      = b.Sampler.periodic.Batsched_battery.Periodic.period);
    Alcotest.(check bool)
      (Printf.sprintf "device %d cycle equal" i)
      true
      (profiles_equal a.Sampler.periodic.Batsched_battery.Periodic.cycle
         b.Sampler.periodic.Batsched_battery.Periodic.cycle)
  done

let test_sampler_covers_models () =
  (* with 400 draws every listed model should appear — a smoke test
     that the weighted choice is not stuck on one branch *)
  let spec = parse_spec () in
  let base = Sampler.base ~seed:11 in
  let seen = Array.make (List.length spec.Spec.models) 0 in
  for i = 0 to 399 do
    let d = Sampler.device spec ~base i in
    seen.(d.Sampler.model_index) <- seen.(d.Sampler.model_index) + 1
  done;
  Array.iteri
    (fun m c ->
      Alcotest.(check bool) (Printf.sprintf "model %d drawn" m) true (c > 0))
    seen

(* --- Survival --- *)

let test_survival_quantiles () =
  let t = Survival.create ~horizon:10 ~models:[| "m" |] in
  for _ = 1 to 5 do
    Survival.observe t ~model_index:0 (Batsched_battery.Periodic.Dies 2)
  done;
  for _ = 1 to 4 do
    Survival.observe t ~model_index:0 (Batsched_battery.Periodic.Dies 5)
  done;
  Survival.observe t ~model_index:0 (Batsched_battery.Periodic.Censored 10);
  Alcotest.(check int) "n" 10 (Survival.n t);
  Alcotest.(check int) "censored" 1 (Survival.censored t);
  Alcotest.(check int) "p50" 2 (Survival.quantile t 50.0);
  Alcotest.(check int) "p90" 5 (Survival.quantile t 90.0);
  Alcotest.(check int) "p99 hits the censored mass" 10
    (Survival.quantile t 99.0);
  Alcotest.(check (list (pair int (float 1e-9))))
    "staircase"
    [ (0, 1.0); (3, 0.5); (6, 0.1) ]
    (Survival.survival t)

let test_survival_merge_partition_invariant () =
  (* folding the same outcomes in any partition and order gives the
     same counters, hence the same checksum *)
  let outcomes =
    Array.init 200 (fun i ->
        if i mod 17 = 0 then Batsched_battery.Periodic.Censored 30
        else Batsched_battery.Periodic.Dies (i mod 29))
  in
  let direct = Survival.create ~horizon:30 ~models:[| "a"; "b" |] in
  Array.iteri
    (fun i o -> Survival.observe direct ~model_index:(i mod 2) o)
    outcomes;
  let sharded = Survival.create ~horizon:30 ~models:[| "a"; "b" |] in
  let shard_of = [| [] ; []; [] |] in
  Array.iteri
    (fun i o -> shard_of.(i mod 3) <- (i, o) :: shard_of.(i mod 3))
    outcomes;
  Array.iter
    (fun items ->
      let acc = Survival.create ~horizon:30 ~models:[| "a"; "b" |] in
      List.iter
        (fun (i, o) -> Survival.observe acc ~model_index:(i mod 2) o)
        items;
      Survival.merge ~into:sharded acc)
    shard_of;
  Alcotest.(check string) "checksums agree" (Survival.checksum direct)
    (Survival.checksum sharded);
  let render t =
    let b = Buffer.create 256 in
    Survival.to_json t b;
    Buffer.contents b
  in
  Alcotest.(check string) "json agrees" (render direct) (render sharded)

let test_survival_rejects_foreign () =
  let t = Survival.create ~horizon:10 ~models:[| "m" |] in
  Alcotest.(check bool) "foreign horizon" true
    (match
       Survival.observe t ~model_index:0 (Batsched_battery.Periodic.Censored 9)
     with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad model" true
    (match
       Survival.observe t ~model_index:3 (Batsched_battery.Periodic.Dies 1)
     with
    | () -> false
    | exception Invalid_argument _ -> true);
  let other = Survival.create ~horizon:11 ~models:[| "m" |] in
  Alcotest.(check bool) "merge horizon mismatch" true
    (match Survival.merge ~into:t other with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Engine --- *)

let run_fleet ~pool_size ~devices ~seed spec =
  Batsched_numeric.Pool.with_pool pool_size (fun pool ->
      Engine.run ~pool ~spec ~devices ~seed ())

let test_engine_pool_size_invariant () =
  let spec = parse_spec () in
  let reference = run_fleet ~pool_size:1 ~devices:240 ~seed:42 spec in
  let checksum = Survival.checksum reference in
  Alcotest.(check int) "all devices land" 240 (Survival.n reference);
  List.iter
    (fun size ->
      let r = run_fleet ~pool_size:size ~devices:240 ~seed:42 spec in
      Alcotest.(check string)
        (Printf.sprintf "pool %d bit-identical" size)
        checksum (Survival.checksum r);
      let render t =
        let b = Buffer.create 256 in
        Survival.to_json t b;
        Buffer.contents b
      in
      Alcotest.(check string)
        (Printf.sprintf "pool %d json identical" size)
        (render reference) (render r))
    [ 2; 4 ]

let test_engine_block_size_invariant () =
  (* the block size is a batching knob, not a semantic one *)
  let spec = parse_spec () in
  let a = Engine.run ~block:7 ~spec ~devices:100 ~seed:3 () in
  let b = Engine.run ~block:256 ~spec ~devices:100 ~seed:3 () in
  Alcotest.(check string) "block-size independent" (Survival.checksum a)
    (Survival.checksum b)

let test_engine_seed_sensitivity () =
  let spec = parse_spec () in
  let a = Engine.run ~spec ~devices:100 ~seed:1 () in
  let b = Engine.run ~spec ~devices:100 ~seed:2 () in
  Alcotest.(check bool) "different seeds differ" true
    (Survival.checksum a <> Survival.checksum b)

let test_engine_events_and_counters () =
  let spec = parse_spec () in
  let ev = Batsched_obs.Events.create_memory () in
  let c0 = Batsched_numeric.Probe.totals () in
  let r = Engine.run ~events:ev ~block:32 ~spec ~devices:64 ~seed:5 () in
  let c1 = Batsched_numeric.Probe.totals () in
  let named c name =
    match List.assoc_opt name (Batsched_numeric.Probe.named_counts c) with
    | Some v -> v
    | None -> 0
  in
  Alcotest.(check int) "device counter" 64
    (named c1 "fleet/devices" - named c0 "fleet/devices");
  let records = Batsched_obs.Events.snapshot ev in
  let blocks =
    List.filter (fun r -> r.Batsched_obs.Events.kind = "fleet-block") records
  in
  Alcotest.(check int) "one event per block" 2 (List.length blocks);
  match
    List.find_opt
      (fun r -> r.Batsched_obs.Events.kind = "fleet-done")
      records
  with
  | None -> Alcotest.fail "missing fleet-done event"
  | Some d -> begin
      match
        List.assoc_opt "checksum" d.Batsched_obs.Events.fields
      with
      | Some (Batsched_obs.Events.S s) ->
          Alcotest.(check string) "event checksum matches result"
            (Survival.checksum r) s
      | _ -> Alcotest.fail "fleet-done lacks a checksum field"
    end

let test_engine_empty_fleet () =
  let spec = parse_spec () in
  let r = Engine.run ~spec ~devices:0 ~seed:0 () in
  Alcotest.(check int) "no devices" 0 (Survival.n r)

let () =
  Alcotest.run "fleet"
    [ ( "spec",
        [ Alcotest.test_case "parses" `Quick test_spec_parses;
          Alcotest.test_case "graph cycle" `Quick test_spec_graph_cycle;
          Alcotest.test_case "rejects bad input" `Quick test_spec_rejects ] );
      ( "sampler",
        [ Alcotest.test_case "pure per index" `Quick test_sampler_pure;
          Alcotest.test_case "covers all models" `Quick
            test_sampler_covers_models ] );
      ( "survival",
        [ Alcotest.test_case "exact quantiles" `Quick test_survival_quantiles;
          Alcotest.test_case "partition-invariant merge" `Quick
            test_survival_merge_partition_invariant;
          Alcotest.test_case "rejects foreign folds" `Quick
            test_survival_rejects_foreign ] );
      ( "engine",
        [ Alcotest.test_case "bit-identical across pool sizes" `Quick
            test_engine_pool_size_invariant;
          Alcotest.test_case "block-size invariant" `Quick
            test_engine_block_size_invariant;
          Alcotest.test_case "seed sensitivity" `Quick
            test_engine_seed_sensitivity;
          Alcotest.test_case "events and counters" `Quick
            test_engine_events_and_counters;
          Alcotest.test_case "empty fleet" `Quick test_engine_empty_fleet ] )
    ]
