The scheduler CLI reads the native text format.

  $ cat > pipe.btg << EOF
  > graph pipe
  > task A 600:2 350:3 150:5
  > task B 800:4 450:6 200:9
  > task C 900:3 500:5 220:8
  > edge A B
  > edge B C
  > EOF

  $ basched pipe.btg --deadline 15
  graph pipe: 3 tasks, 3 design points, 2 edges
  schedule: A,B,C / P2,P1,P3
  finish:   15.00 min
  sigma:    15980.1 mA*min

The Chowdhury baseline on the same instance:

  $ basched pipe.btg --deadline 15 --algo chowdhury
  graph pipe: 3 tasks, 3 design points, 2 edges
  schedule: A,B,C / P2,P1,P3
  finish:   15.00 min
  sigma:    15980.1 mA*min

An unmeetable deadline reports the feasibility bound:

  $ basched pipe.btg --deadline 5
  graph pipe: 3 tasks, 3 design points, 2 edges
  basched: deadline 5.00 min cannot be met (all-fastest serial time 9.00)
  [124]

TGFF-dialect input is auto-detected and can embed its deadline:

  $ cat > pipe.tgff << EOF
  > @TASK_GRAPH 0 {
  >   TASK A TYPE 0
  >   TASK B TYPE 1
  >   ARC a0 FROM A TO B TYPE 0
  >   HARD_DEADLINE d0 ON B AT 9
  > }
  > @DESIGN_POINT 0 {
  >   0 600 2
  >   1 800 4
  > }
  > @DESIGN_POINT 1 {
  >   0 150 5
  >   1 200 9
  > }
  > EOF

  $ basched pipe.tgff
  graph tgff: 2 tasks, 2 design points, 1 edges
  deadline 9.00 min (from the file)
  schedule: A,B / P2,P1
  finish:   9.00 min
  sigma:    20680.7 mA*min

A parse error points at the offending line:

  $ printf 'task A banana\n' > broken.btg
  $ basched broken.btg --deadline 5
  basched: broken.btg:1: bad design point: banana
  [124]

Multi-start search with local-search polish, and the exact reference:

  $ basched pipe.btg --deadline 15 --algo iterative-ms --polish | tail -3
  schedule: A,B,C / P2,P1,P3
  finish:   15.00 min
  sigma:    15980.1 mA*min

  $ basched pipe.btg --deadline 15 --algo branch-bound | tail -3
  schedule: A,B,C / P2,P1,P3
  finish:   15.00 min
  sigma:    15980.1 mA*min

Observability: the work-counter block of --stats is deterministic for a
fixed instance (the phase timings below it are not, so the report is
cut off after the counters):

  $ basched pipe.btg --deadline 15 --stats | sed -n '/^counters/,/contrib hit rate/p'
  counters
    sigma_evals                   7
    fmemo_hits                    5
    fmemo_misses                  7
    contrib_hits                 15
    contrib_misses                6
    dpf_steps                     6
    window_evals                  4
    choose_calls                  4
    iterations                    2
    anneal_accepted               0
    anneal_rejected               0
    anneal_noops                  0
    delta_swaps                   0
    delta_repoints                0
    delta_commits                 0
    delta_discards                0
    delta_terms                   0
    delta_full_evals              0
    batch_evals                   0
    batch_candidates              0
    batch_fallbacks               0
    delta_ck_advances             0
    delta_ck_restores             0
    fcache_evictions              0
    pool_regions                  0
    pool_tasks                    4
    pool_steals                   0
    fmemo hit rate            41.7%  (12 lookups)
    contrib hit rate          71.4%  (21 lookups)

--trace writes a Chrome trace-event file: 2 iteration spans plus a
window and a choose span per window evaluation, and per-track metadata:

  $ basched pipe.btg --deadline 15 --trace out.json | tail -1
  wrote trace to out.json (load it in chrome://tracing or ui.perfetto.dev)
  $ grep -c '"ph":"X"' out.json
  10
  $ grep -c '"ph":"M"' out.json
  2

Telemetry sinks: --events streams JSONL while the run is in flight,
--metrics writes an OpenMetrics exposition, --ledger records a run
manifest (the id embeds a timestamp, so it is masked here):

  $ basched pipe.btg --deadline 15 --algo annealing --seed 7 \
  >     --events ev.jsonl --metrics m.prom --ledger led \
  >   | tail -3 | sed 's/run-[0-9][0-9-]*/run-ID/'
  wrote convergence events to ev.jsonl (render with basched report)
  wrote OpenMetrics exposition to m.prom
  ledger: recorded run-ID in led

The event-kind census is deterministic for a fixed seed (the
per-level timing table below it is not):

  $ basched report ev.jsonl | sed -n '1,6p'
  78 event records from ev.jsonl
    anneal_start          1
    anneal_level         73
    anneal_done           1
    hist                  2
    run_done              1

  $ tail -1 m.prom
  # EOF

BATSCHED_LEDGER is the env-var equivalent of --ledger; runs list
reads the same registry:

  $ BATSCHED_LEDGER=led basched runs list | awk 'NR>1 {print $2, $3}'
  basched annealing

  $ BATSCHED_LEDGER=led basched runs show run- | sed -n '2,4p'
  tool:          basched annealing
  instance:      pipe.btg (40f4fc19f9e559b8da32ba6e2867b16c)
  model:         rakhmatov

Replaying the stream through the dashboard reaches the same summary a
live watcher would print (stream time is wall-clock, so masked):

  $ basched watch ev.jsonl --replay | sed 's/[0-9.]*s stream time/_ stream time/'
  run delta: 78 records, _ stream time, finished
    best sigma 15980.1  finish 15  evals 4380
    accepted 1758 / rejected 2622 (rate 0.401) over 73 levels
    hist delta/commit_batch: count 9 p50 32 p99 32 max 32
    hist fcache/probe_len: count 47 p50 1.03125 p99 2 max 2

watch --last resolves the newest ledger run that carries an events
file, even when later runs were recorded without one:

  $ basched pipe.btg --deadline 15 --algo annealing --seed 8 --ledger led > /dev/null
  $ basched pipe.btg --deadline 15 --algo random --seed 7 --ledger led > /dev/null
  $ basched pipe.btg --deadline 15 --algo random --seed 8 --ledger led > /dev/null
  $ BATSCHED_LEDGER=led basched watch --last --replay | sed -n 2p
    best sigma 15980.1  finish 15  evals 4380

Cohort comparison by label; the evals axis and the fixed-seed
bootstrap make the verdict deterministic:

  $ basched profile annealing random --ledger led | grep -E 'profile:|anytime|verdict'
  profile: annealing (2 runs) vs random (2 runs), axis=evals
    anytime score (mean median sigma over grid): annealing=15980.1 random=15980.1
    verdict: random dominates (random better in 100.0% of 400 bootstrap resamples)

runs diff contrasts two manifests; work counters separate the
searchers even when both reach the same sigma:

  $ A=$(basched runs list --ledger led | awk 'NR==2 {print $1}')
  $ B=$(basched runs list --ledger led | awk 'NR==4 {print $1}')
  $ basched runs diff $A $B --ledger led | grep -E 'label|anneal_accepted'
    label          annealing -> random
    counter anneal_accepted             1758 ->            0
