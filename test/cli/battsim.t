Lifetime under a constant load (the ideal model is exact: alpha / I).

  $ battsim lifetime --current 50 --alpha 1000 --model ideal
  model ideal, alpha 1000 mA*min, constant 50.0 mA -> lifetime 20.00 min (0.33 h), delivered 1000 mA*min (100.0% of alpha)

The Rakhmatov-Vrudhula model delivers less at the same load:

  $ battsim lifetime --current 800 | sed 's/lifetime .*//'
  model rakhmatov, alpha 40375 mA*min, constant 800.0 mA -> 

Sigma of a two-burst profile, with and without a recovery gap
(the gapped variant loses less apparent charge):

  $ battsim sigma --load 800:20 --load 800:20 | tail -1
  sigma at end: 64181.5 mA*min

  $ battsim sigma --load 800:20 --load 800:20 --idle 30 | tail -1
  sigma at end: 60821.8 mA*min

Bad input is rejected:

  $ battsim sigma --load banana
  battsim: bad load (want I:D): banana
  [124]

Every subcommand takes --stats and --trace; a sigma evaluation is one
counted model call under one top-level span:

  $ battsim sigma --load 500:10 --stats | sed -n '/^counters/,/sigma_evals/p'
  counters
    sigma_evals                   1
  $ battsim sigma --load 500:10 --trace t.json | tail -1
  wrote trace to t.json
  $ grep -c '"name":"sigma"' t.json
  1
