Lifetime under a constant load (the ideal model is exact: alpha / I).

  $ battsim lifetime --current 50 --alpha 1000 --model ideal
  model ideal, alpha 1000 mA*min, constant 50.0 mA -> lifetime 20.00 min (0.33 h), delivered 1000 mA*min (100.0% of alpha)

The Rakhmatov-Vrudhula model delivers less at the same load:

  $ battsim lifetime --current 800 | sed 's/lifetime .*//'
  model rakhmatov, alpha 40375 mA*min, constant 800.0 mA -> 

Sigma of a two-burst profile, with and without a recovery gap
(the gapped variant loses less apparent charge):

  $ battsim sigma --load 800:20 --load 800:20 | tail -1
  sigma at end: 64181.5 mA*min

  $ battsim sigma --load 800:20 --load 800:20 --idle 30 | tail -1
  sigma at end: 60821.8 mA*min

Bad input is rejected:

  $ battsim sigma --load banana
  battsim: bad load (want I:D): banana
  [124]

Every subcommand takes --stats and --trace; a sigma evaluation is one
counted model call under one top-level span:

  $ battsim sigma --load 500:10 --stats | sed -n '/^counters/,/sigma_evals/p'
  counters
    sigma_evals                   1
  $ battsim sigma --load 500:10 --trace t.json | tail -1
  wrote trace to t.json
  $ grep -c '"name":"sigma"' t.json
  1

Monte Carlo fleet endurance over the built-in population: a fixed
seed pins every draw, so the whole report is reproducible and the
checksum is bit-identical at any pool size:

  $ battsim fleet --devices 300 --seed 11
  fleet: 300 devices, horizon 200 cycles (seed 11, pool 1)
    deaths 260, censored 40, mean lifetime 100.7 cycles
    quantiles: p1=25 p5=28 p50=86 p90=200 p99=200
    model ideal            35 devices,      7 censored, mean 114.5
    model peukert          55 devices,      5 censored, mean 98.1
    model rakhmatov       145 devices,     22 censored, mean 101.1
    model kibam            65 devices,      6 censored, mean 94.7
    checksum sv1-7ee5e6cdbe497e5b

  $ battsim fleet --devices 300 --seed 11 --pool 2 | tail -1
    checksum sv1-7ee5e6cdbe497e5b

The JSON report carries the same checksum:

  $ battsim fleet --devices 300 --seed 11 --json - | tail -1 | grep -c 'sv1-7ee5e6cdbe497e5b'
  1

A bad spec is rejected with a pointed message:

  $ echo '{"models": []}' > bad.json
  $ battsim fleet --spec bad.json
  battsim: fleet spec: models: must not be empty
  [124]
