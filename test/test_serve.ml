(* The serve daemon: request parsing, end-to-end batching on the
   work-stealing pool, bit-identity with single-shot runs, in-flight
   cancellation, and bounded admission. *)

module Pool = Batsched_numeric.Pool
module Rng = Batsched_numeric.Rng
module Events = Batsched_obs.Events
module Request = Batsched_serve.Request
module Daemon = Batsched_serve.Daemon
module Soak = Batsched_serve.Soak
module Annealing = Batsched_baselines.Annealing
module Solution = Batsched_baselines.Solution

let graph_src =
  "graph g\n\
   task A 600:2 350:3 150:5\n\
   task B 519:2 319:3 163:5\n\
   task C 417:2 250:3 120:5\n\
   edge A B\n\
   edge B C"

let request_line ?(id = "r1") ?(algo = "annealing") ?(model = "rakhmatov")
    ?(seed = 7) ?(extra = "") () =
  Printf.sprintf
    "{\"id\":\"%s\",\"deadline\":12.0,\"algo\":\"%s\",\"model\":\"%s\",\
     \"seed\":%d%s,\"graph\":\"%s\"}"
    id algo model seed extra
    (Batsched_obs.Json.escape_string graph_src)

(* --- Request.of_json --- *)

let test_parse_submit () =
  match Request.of_json (request_line ~extra:",\"t0\":50,\"steps\":3" ()) with
  | Ok (Request.Submit r) ->
      Alcotest.(check string) "id" "r1" r.Request.id;
      Alcotest.(check (float 0.0)) "deadline" 12.0 r.Request.deadline;
      Alcotest.(check string) "algo" "annealing" r.Request.search.Request.algo;
      Alcotest.(check int) "seed" 7 r.Request.search.Request.seed;
      Alcotest.(check (option int)) "steps" (Some 3)
        r.Request.search.Request.steps;
      Alcotest.(check (option (float 0.0))) "t0" (Some 50.0)
        r.Request.search.Request.t0
  | Ok (Request.Cancel _) -> Alcotest.fail "parsed as cancel"
  | Error msg -> Alcotest.fail msg

let test_parse_cancel () =
  match Request.of_json "{\"cancel\":\"r9\"}" with
  | Ok (Request.Cancel id) -> Alcotest.(check string) "id" "r9" id
  | _ -> Alcotest.fail "expected cancel"

let expect_error name line =
  match Request.of_json line with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (name ^ ": expected a parse error")

let test_parse_rejects () =
  expect_error "not json" "{oops";
  expect_error "missing id"
    (Printf.sprintf "{\"deadline\":9.0,\"graph\":\"%s\"}"
       (Batsched_obs.Json.escape_string graph_src));
  expect_error "missing graph" "{\"id\":\"r1\",\"deadline\":9.0}";
  expect_error "unknown algo" (request_line ~algo:"gradient-descent" ());
  expect_error "unknown model" (request_line ~model:"unobtanium" ());
  expect_error "bad graph"
    "{\"id\":\"r1\",\"deadline\":9.0,\"graph\":\"task without header\"}";
  expect_error "non-positive deadline"
    (Printf.sprintf "{\"id\":\"r1\",\"deadline\":0.0,\"graph\":\"%s\"}"
       (Batsched_obs.Json.escape_string graph_src))

(* --- daemon end-to-end --- *)

let with_daemon ?(capacity = 64) ?(pool_size = 4) ?(events = Events.noop)
    ?(stream_search = false) f =
  Pool.with_pool pool_size @@ fun pool ->
  f (Daemon.create ~capacity ~stream_search ~pool ~events ())

let test_daemon_mixed_batch () =
  with_daemon @@ fun d ->
  let n = 24 in
  List.iter (Daemon.handle_line d) (Soak.mixed_lines ~n ~seed:5);
  Daemon.drain d;
  let c = Daemon.counts d in
  Alcotest.(check int) "accepted" n c.Daemon.accepted;
  Alcotest.(check int) "completed" n c.Daemon.completed;
  Alcotest.(check int) "errors" 0 c.Daemon.errors;
  Alcotest.(check int) "rejected" 0 c.Daemon.rejected

(* A served request must commit exactly the solution a direct run with
   the same seed and knobs commits — nested regions degrade to
   sequential on the worker, so pooling cannot perturb the search. *)
let test_daemon_bit_identical_to_single_shot () =
  let events = Events.create_memory () in
  (with_daemon ~events ~stream_search:false @@ fun d ->
   Daemon.handle_line d (request_line ~extra:",\"t0\":80,\"steps\":4" ());
   Daemon.drain d);
  let result =
    match
      List.find_opt
        (fun (r : Events.record) -> r.Events.kind = "result")
        (Events.snapshot events)
    with
    | Some r -> r
    | None -> Alcotest.fail "no result record"
  in
  let field name =
    match List.assoc_opt name result.Events.fields with
    | Some (Events.F v) -> v
    | _ -> Alcotest.fail ("missing float field " ^ name)
  in
  (* the same search, run directly *)
  let g = Batsched_taskgraph.Textio.of_string graph_src in
  let params =
    { Annealing.default_params with
      Annealing.initial_temperature = 80.0;
      steps_per_temperature = 4 }
  in
  let sol =
    Annealing.run ~params
      ~rng:(Rng.create 7)
      ~model:(Batsched_battery.Rakhmatov.model ())
      g ~deadline:12.0
  in
  Alcotest.(check (float 0.0)) "sigma" sol.Solution.sigma (field "sigma");
  Alcotest.(check (float 0.0)) "finish" sol.Solution.finish (field "finish")

let slow_line id =
  request_line ~id ~extra:",\"t0\":1e7,\"steps\":5000" ()

let test_daemon_cancel_in_flight () =
  let t0 = Unix.gettimeofday () in
  (with_daemon @@ fun d ->
   Daemon.handle_line d (slow_line "slow");
   (* give the job a moment to actually start its ladder *)
   Unix.sleepf 0.01;
   Daemon.handle_line d "{\"cancel\":\"slow\"}";
   Daemon.drain d;
   let c = Daemon.counts d in
   Alcotest.(check int) "cancelled" 1 c.Daemon.cancelled;
   Alcotest.(check int) "completed" 0 c.Daemon.completed);
  (* a full 1e7-to-1 ladder at 5000 steps/level would run for minutes;
     promptness means we return within a level or two *)
  Alcotest.(check bool) "prompt" true (Unix.gettimeofday () -. t0 < 30.0)

let test_daemon_cancel_before_submit () =
  with_daemon @@ fun d ->
  Daemon.handle_line d "{\"cancel\":\"early\"}";
  Daemon.handle_line d (slow_line "early");
  Daemon.drain d;
  let c = Daemon.counts d in
  Alcotest.(check int) "cancelled on entry" 1 c.Daemon.cancelled

let test_daemon_overload () =
  let events = Events.create_memory () in
  (with_daemon ~capacity:1 ~events @@ fun d ->
   Daemon.handle_line d (slow_line "hog");
   Daemon.handle_line d (request_line ~id:"spill" ());
   Daemon.handle_line d "{\"cancel\":\"hog\"}";
   Daemon.drain d;
   let c = Daemon.counts d in
   Alcotest.(check int) "rejected" 1 c.Daemon.rejected;
   Alcotest.(check int) "accepted" 1 c.Daemon.accepted);
  let overloaded =
    List.filter
      (fun (r : Events.record) -> r.Events.kind = "overloaded")
      (Events.snapshot events)
  in
  Alcotest.(check int) "overloaded record" 1 (List.length overloaded)

let test_daemon_malformed_line () =
  let events = Events.create_memory () in
  (with_daemon ~events @@ fun d ->
   Daemon.handle_line d "{not json at all";
   Daemon.handle_line d "";
   Daemon.drain d;
   Alcotest.(check int) "errors" 1 (Daemon.counts d).Daemon.errors);
  Alcotest.(check bool) "parse_error record" true
    (List.exists
       (fun (r : Events.record) -> r.Events.kind = "parse_error")
       (Events.snapshot events))

let test_soak_run () =
  Pool.with_pool 4 @@ fun pool ->
  let r = Soak.run ~pool ~n:40 () in
  Alcotest.(check int) "completed" 40 r.Soak.counts.Daemon.completed;
  Alcotest.(check int) "errors" 0 r.Soak.counts.Daemon.errors;
  Alcotest.(check bool) "throughput positive" true (r.Soak.req_per_s > 0.0);
  Alcotest.(check bool) "p99 >= p50" true
    (r.Soak.latency_p99_ms >= r.Soak.latency_p50_ms)

let test_fixture_shape () =
  let lines = Soak.fixture_lines ~n:10 ~seed:3 in
  Alcotest.(check int) "line count" 11 (List.length lines);
  Alcotest.(check bool) "ends with the cancel" true
    (List.nth lines 10 = "{\"cancel\":\"slow-1\"}");
  List.iter
    (fun l ->
      match Request.of_json l with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (msg ^ ": " ^ l))
    lines

let () =
  Alcotest.run "serve"
    [ ( "request",
        [ Alcotest.test_case "parse submit" `Quick test_parse_submit;
          Alcotest.test_case "parse cancel" `Quick test_parse_cancel;
          Alcotest.test_case "rejects" `Quick test_parse_rejects ] );
      ( "daemon",
        [ Alcotest.test_case "mixed batch" `Quick test_daemon_mixed_batch;
          Alcotest.test_case "bit-identical to single-shot" `Quick
            test_daemon_bit_identical_to_single_shot;
          Alcotest.test_case "cancel in flight" `Quick
            test_daemon_cancel_in_flight;
          Alcotest.test_case "cancel before submit" `Quick
            test_daemon_cancel_before_submit;
          Alcotest.test_case "overload" `Quick test_daemon_overload;
          Alcotest.test_case "malformed line" `Quick
            test_daemon_malformed_line ] );
      ( "soak",
        [ Alcotest.test_case "run" `Quick test_soak_run;
          Alcotest.test_case "fixture shape" `Quick test_fixture_shape ] ) ]
