open Batsched_numeric
open Batsched_taskgraph
open Batsched_sched
module Events = Batsched_obs.Events

exception No_feasible_sample

(* Convergence records mirror the annealing ones: emission reads the
   draw index and the best sigma, never the RNG, so an instrumented
   run draws exactly the same stream as a bare one. *)
let emit_start events ~mode ~samples =
  if Events.is_active events then
    Events.emit events "random_start"
      [ ("mode", Events.S mode); ("samples", Events.I samples) ]

let emit_best events ~sample ~best_sigma =
  if Events.is_active events then
    Events.emit events "sample"
      [ ("sample", Events.I sample); ("samples", Events.I sample);
        ("best_sigma", Events.F best_sigma) ]

let random_sequence ~rng g =
  let n = Graph.num_tasks g in
  let remaining = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let scheduled = Array.make n false in
  let rec step acc count =
    if count = n then List.rev acc
    else begin
      let ready =
        List.filter
          (fun v -> (not scheduled.(v)) && remaining.(v) = 0)
          (List.init n Fun.id)
      in
      let v = Rng.pick rng ready in
      scheduled.(v) <- true;
      List.iter (fun w -> remaining.(w) <- remaining.(w) - 1) (Graph.succs g v);
      step (v :: acc) (count + 1)
    end
  in
  step [] 0

let random_feasible_assignment ~rng g ~deadline =
  let n = Graph.num_tasks g and m = Graph.num_points g in
  let duration i j = (Task.point (Graph.task g i) j).Task.duration in
  let columns = Array.init n (fun _ -> Rng.int rng m) in
  let total () =
    Kahan.sum_fn n (fun i -> duration i columns.(i))
  in
  (* Repair: while over deadline, speed up a random slowable task. *)
  let rec repair attempts =
    if total () <= deadline +. 1e-9 then Some (Array.to_list columns)
    else begin
      let candidates =
        List.filter (fun i -> columns.(i) > 0) (List.init n Fun.id)
      in
      if candidates = [] || attempts = 0 then None
      else begin
        let i = Rng.pick rng candidates in
        columns.(i) <- columns.(i) - 1;
        repair (attempts - 1)
      end
    end
  in
  match repair (n * m) with
  | Some cols -> Some (Assignment.of_list g cols)
  | None -> None

let run_reference ~samples ~rng ~model ~events g ~deadline =
  emit_start events ~mode:"reference" ~samples;
  let best = ref None in
  for sample = 1 to samples do
    match random_feasible_assignment ~rng g ~deadline with
    | None -> ()
    | Some assignment ->
        let sequence = random_sequence ~rng g in
        let sol =
          Solution.of_schedule ~model g (Schedule.make g ~sequence ~assignment)
        in
        (match !best with
        | Some b when b.Solution.sigma <= sol.Solution.sigma -> ()
        | _ ->
            best := Some sol;
            emit_best events ~sample ~best_sigma:sol.Solution.sigma)
  done;
  match !best with Some s -> s | None -> raise No_feasible_sample

(* Delta mode: same draws, but each sample is costed by re-seating one
   reused evaluator — no per-sample schedule validation (the ready-list
   sampler yields topological orders by construction, so [unsafe_make]
   applies), profile allocation, or solution record.  Only the winner
   is materialized, through the full model path. *)
let run_delta ~samples ~rng ~model ~events g ~deadline =
  emit_start events ~mode:"delta" ~samples;
  let ev = ref None in
  let best = ref None in
  for sample = 1 to samples do
    match random_feasible_assignment ~rng g ~deadline with
    | None -> ()
    | Some assignment ->
        let sequence = random_sequence ~rng g in
        let sched = Schedule.unsafe_make g ~sequence ~assignment in
        let e =
          match !ev with
          | Some e ->
              Eval.load e sched;
              e
          | None ->
              let e = Eval.make ~model g sched in
              ev := Some e;
              e
        in
        let sigma = Eval.sigma e in
        (match !best with
        | Some (best_sigma, _) when best_sigma <= sigma -> ()
        | _ ->
            best := Some (sigma, sched);
            emit_best events ~sample ~best_sigma:sigma)
  done;
  match !best with
  | Some (_, sched) -> Solution.of_schedule ~model g sched
  | None -> raise No_feasible_sample

let run ?(samples = 200) ?(eval = `Delta) ?(events = Events.noop) ~rng ~model
    g ~deadline =
  match eval with
  | `Delta -> run_delta ~samples ~rng ~model ~events g ~deadline
  | `Reference -> run_reference ~samples ~rng ~model ~events g ~deadline
