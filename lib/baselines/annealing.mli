(** Simulated-annealing scheduler.

    The paper's related-work section argues SA is too heavy to run {e on
    the embedded platform itself}; we implement it anyway as an offline
    quality yardstick.  The state is a (sequence, assignment) pair; the
    neighbourhood either re-points one task or swaps two adjacent
    sequence positions when the swap preserves precedence.  Deadline
    violations are admitted during the walk but penalized, so the
    returned solution is always feasible (the best feasible state
    seen). *)

open Batsched_taskgraph
open Batsched_battery

exception No_feasible_state
(** Raised when the walk never visits a deadline-feasible state (only
    possible when even all-fastest is infeasible). *)

type params = {
  initial_temperature : float;  (** > 0; in sigma units *)
  cooling : float;              (** geometric factor in (0, 1) *)
  steps_per_temperature : int;  (** > 0 *)
  temperature_floor : float;    (** stop when T drops below; > 0 *)
}

val default_params : params
(** T0 = 2000 mA*min, cooling 0.9, 60 steps per level, floor 1.0. *)

val run :
  ?params:params -> ?eval:[ `Delta | `Reference ] ->
  ?events:Batsched_obs.Events.t -> ?should_stop:(unit -> bool) ->
  rng:Batsched_numeric.Rng.t -> model:Model.t ->
  Graph.t -> deadline:float -> Solution.t
(** Anneal from the Chowdhury starting point.

    [should_stop] (default [fun () -> false]) is polled once per
    temperature level; when it turns true the walk stops and the best
    solution found so far is returned — the anytime cancellation hook
    the serve daemon uses.  A hook that never fires leaves the RNG
    stream and the result bit-identical to an unhooked run.

    [events] (default noop) receives convergence records: one
    [anneal_start], one [anneal_level] per temperature level (with the
    level's acceptance window, the current energy and the best sigma so
    far), and one [anneal_done].  Emission reads only probe-counter
    deltas and never the RNG, so the walk is bit-identical with any
    stream.

    [eval] selects the candidate-costing path: [`Delta] (default) runs
    the walk on the incremental evaluator ({!Batsched_sched.Eval}) —
    O(1) per swap candidate instead of a full schedule + sigma
    evaluation; [`Reference] keeps the original full path, as oracle
    and benchmark baseline.  Both modes draw the same RNG stream (the
    neighbourhood control flow is shared), repoints onto the current
    column are booked as accepted without evaluation (the original
    always accepted them — counted in [Probe.anneal_noops]), and the
    returned solution is always re-materialized through the full
    model, so results agree with pre-delta runs under the same seed up
    to sigma round-off (see {!Batsched_sched.Eval}).
    @raise No_feasible_state; @raise Invalid_argument on bad params. *)

val run_population :
  ?params:params -> ?pop:int -> ?pool:Batsched_numeric.Pool.t ->
  ?events:Batsched_obs.Events.t -> ?should_stop:(unit -> bool) ->
  rng:Batsched_numeric.Rng.t -> model:Model.t ->
  Graph.t -> deadline:float -> Solution.t
(** Population variant: [pop] (default 8) delta-evaluated walkers share
    one cooling ladder, stepped round-robin off the single [rng] (so
    the walk is deterministic for a fixed seed).  After every
    temperature level the whole population is re-costed in one
    {!Batsched_battery.Sigma_batch} structure-of-arrays sweep — sharded
    over [pool] (default sequential; the batch results are
    bit-identical at any pool size) — which resynchronizes the
    walkers' running energies, tracks the population best (confirmed
    through the full model path), and reseeds the worst walker from
    the best one's state, consuming no RNG draws.  [pop = 1] is {!run}
    with [`Delta] up to the per-level best-tracking granularity.
    @raise No_feasible_state; @raise Invalid_argument on bad params or
    [pop < 1]. *)
