(** Random search: uniformly random linearizations and feasible
    assignments, keep the best.  The weakest sensible baseline — a
    floor that any informed heuristic must beat on average. *)

open Batsched_taskgraph
open Batsched_battery

exception No_feasible_sample
(** No sampled assignment met the deadline (or all-fastest is itself
    infeasible). *)

val random_sequence : rng:Batsched_numeric.Rng.t -> Graph.t -> int list
(** A linearization drawn by randomized list scheduling (uniform choice
    among ready tasks at each step). *)

val run :
  ?samples:int -> ?eval:[ `Delta | `Reference ] ->
  ?events:Batsched_obs.Events.t ->
  rng:Batsched_numeric.Rng.t -> model:Model.t -> Graph.t ->
  deadline:float -> Solution.t
(** [run ~rng ~model g ~deadline] draws [samples] (default 200)
    random schedules; assignments are drawn uniformly per task and
    repaired to feasibility by speeding random tasks up while over the
    deadline.

    [eval] picks the per-sample costing path: [`Delta] (default)
    re-seats one reused {!Batsched_sched.Eval} per sample and
    materializes only the winner through the full model; [`Reference]
    keeps the original schedule-per-sample path.  Both consume the
    same RNG stream and agree up to sigma round-off.

    [events] receives one [random_start] record plus a [sample] record
    per best-so-far improvement; emission never touches the RNG, so an
    instrumented run is bit-identical to a bare one.
    @raise No_feasible_sample. *)
