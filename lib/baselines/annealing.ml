open Batsched_numeric
open Batsched_taskgraph
open Batsched_sched
module Events = Batsched_obs.Events

exception No_feasible_state

type params = {
  initial_temperature : float;
  cooling : float;
  steps_per_temperature : int;
  temperature_floor : float;
}

let default_params =
  { initial_temperature = 2000.0;
    cooling = 0.9;
    steps_per_temperature = 60;
    temperature_floor = 1.0 }

let check_params p =
  if not (p.initial_temperature > 0.0) then invalid_arg "Annealing: bad T0";
  if not (p.cooling > 0.0 && p.cooling < 1.0) then invalid_arg "Annealing: bad cooling";
  if p.steps_per_temperature < 1 then invalid_arg "Annealing: bad steps";
  if not (p.temperature_floor > 0.0) then invalid_arg "Annealing: bad floor"

(* Deadline overruns are priced steeply so the walk is pulled back into
   the feasible region: 1 minute over costs as much as ~1 A of load. *)
let penalty_rate = 1000.0

type move = Move_swap of int | Move_repoint of int * int

(* One neighbourhood draw.  The control flow — and therefore the RNG
   stream — replicates the original try-swap-or-repoint attempt loop
   exactly, so walks replay bit-for-bit under existing seeds: each
   attempt draws a bool; heads draws a swap position and retries (no
   further draws) when the swap would violate precedence; tails draws
   (task, column); after 8 failed attempts a repoint is forced. *)
let draw_move ~rng ~n ~m ~swap_ok =
  let repoint () =
    let i = Rng.int rng n in
    let j = Rng.int rng m in
    Move_repoint (i, j)
  in
  let rec attempt tries =
    if tries = 0 then repoint ()
    else if Rng.bool rng then
      if n < 2 then attempt (tries - 1)
      else begin
        let k = Rng.int rng (n - 1) in
        if swap_ok k then Move_swap k else attempt (tries - 1)
      end
    else repoint ()
  in
  attempt 8

(* A repoint onto the task's current column is a no-op: the candidate
   equals the current state, its (deterministic) energy equals the
   current energy bit-for-bit, so the original loop always accepted it
   without consuming a Metropolis draw and never improved the best.
   Both evaluation modes therefore skip the evaluation entirely and
   book it as an accepted step — observably identical, minus the
   wasted sigma evaluation. *)

let start_solution ~model g ~deadline =
  match Chowdhury.run ~model g ~deadline with
  | sol -> sol
  | exception Chowdhury.Infeasible -> raise No_feasible_state

(* Reference mode: the original implementation — every candidate is
   costed through a freshly validated schedule and the model's full
   sigma path.  This is the benchmark baseline and the equivalence-test
   oracle for the delta mode below.  Both modes draw one Metropolis
   uniform per evaluated candidate whether or not the move is downhill,
   so the RNG stream position never depends on which evaluation
   strategy produced the energies: the walks stay move-for-move aligned
   even when the two paths disagree by an ulp at an exact tie (which
   happens routinely on graphs with identical parallel tasks, where a
   swap leaves sigma unchanged bit-for-bit on one path and one ulp off
   on the other). *)

type state = { sequence : int array; assignment : Assignment.t }

let energy_of ~model g ~deadline st =
  let sequence = Array.to_list st.sequence in
  let sched = Schedule.make g ~sequence ~assignment:st.assignment in
  let sigma = Schedule.battery_cost ~model g sched in
  let overrun = Float.max 0.0 (Schedule.finish_time g sched -. deadline) in
  (sigma +. (penalty_rate *. overrun), sigma, overrun <= 1e-9, sched)

let swap_ok g st k =
  (* positions k and k+1 may swap iff no edge between the two tasks *)
  let a = st.sequence.(k) and b = st.sequence.(k + 1) in
  not (List.mem b (Graph.succs g a))

let apply_move st = function
  | Move_swap k ->
      let seq = Array.copy st.sequence in
      let tmp = seq.(k) in
      seq.(k) <- seq.(k + 1);
      seq.(k + 1) <- tmp;
      { st with sequence = seq }
  | Move_repoint (i, j) -> { st with assignment = Assignment.set st.assignment i j }

(* Convergence records.  Emission reads only the walk's outputs (probe
   counter deltas, energies, the best sigma) and never touches the RNG,
   so the event stream cannot perturb the walk — pinned down by the
   bit-identity property tests.  With events off the hot loop carries
   no extra bookkeeping: the per-level snapshots below are guarded. *)

let emit_start events ~mode ~n ~m ~params =
  if Events.is_active events then
    Events.emit events "anneal_start"
      [ ("mode", Events.S mode); ("n", Events.I n); ("m", Events.I m);
        ("t0", Events.F params.initial_temperature);
        ("cooling", Events.F params.cooling);
        ("floor", Events.F params.temperature_floor);
        ("steps_per_temp", Events.I params.steps_per_temperature) ]

let emit_level events ~mode ~level ~temperature ~evals ~lvl_acc ~lvl_rej
    ~cur_energy ~best_sigma =
  let attempts = lvl_acc + lvl_rej in
  let rate =
    if attempts = 0 then 1.0
    else float_of_int lvl_acc /. float_of_int attempts
  in
  Events.emit events "anneal_level"
    [ ("mode", Events.S mode); ("level", Events.I level);
      ("temp", Events.F temperature); ("evals", Events.I evals);
      ("accepted", Events.I lvl_acc); ("rejected", Events.I lvl_rej);
      ("accept_rate", Events.F rate); ("cur_energy", Events.F cur_energy);
      ("best_sigma", Events.F best_sigma) ]

let emit_done events ~mode ~evals ~best_sigma =
  if Events.is_active events then
    Events.emit events "anneal_done"
      [ ("mode", Events.S mode); ("evals", Events.I evals);
        ("best_sigma", Events.F best_sigma) ]

let run_reference ~params ~rng ~model ~events ~should_stop g ~deadline sol =
  let n = Graph.num_tasks g and m = Graph.num_points g in
  let st =
    ref
      { sequence = Array.of_list sol.Solution.schedule.Schedule.sequence;
        assignment = sol.Solution.schedule.Schedule.assignment }
  in
  let cur_energy = ref (let e, _, _, _ = energy_of ~model g ~deadline !st in e) in
  let best = ref sol in
  let temperature = ref params.initial_temperature in
  let probe = Probe.local () in
  let ev_on = Events.is_active events in
  emit_start events ~mode:"reference" ~n ~m ~params;
  let acc0 = probe.Probe.anneal_accepted
  and rej0 = probe.Probe.anneal_rejected in
  let level = ref 0 in
  while !temperature > params.temperature_floor && not (should_stop ()) do
    let lacc = if ev_on then probe.Probe.anneal_accepted else 0
    and lrej = if ev_on then probe.Probe.anneal_rejected else 0 in
    for _ = 1 to params.steps_per_temperature do
      let mv = draw_move ~rng ~n ~m ~swap_ok:(fun k -> swap_ok g !st k) in
      match mv with
      | Move_repoint (i, j) when Assignment.column (!st).assignment i = j ->
          probe.Probe.anneal_noops <- probe.Probe.anneal_noops + 1;
          probe.Probe.anneal_accepted <- probe.Probe.anneal_accepted + 1
      | _ ->
          let cand = apply_move !st mv in
          let e, sigma, feasible, sched = energy_of ~model g ~deadline cand in
          (* the Metropolis uniform is drawn even for downhill moves:
             RNG consumption must not depend on the energy comparison,
             or an ulp-level tie evaluated differently by the delta
             path would silently desynchronize the two walks *)
          let u = Rng.float rng 1.0 in
          let accept =
            e <= !cur_energy || u < exp ((!cur_energy -. e) /. !temperature)
          in
          if accept then begin
            probe.Probe.anneal_accepted <- probe.Probe.anneal_accepted + 1;
            st := cand;
            cur_energy := e;
            if feasible && sigma < !best.Solution.sigma then
              best := Solution.of_schedule ~model g sched
          end
          else probe.Probe.anneal_rejected <- probe.Probe.anneal_rejected + 1
    done;
    if ev_on then
      emit_level events ~mode:"reference" ~level:!level
        ~temperature:!temperature
        ~evals:
          (probe.Probe.anneal_accepted + probe.Probe.anneal_rejected - acc0
         - rej0)
        ~lvl_acc:(probe.Probe.anneal_accepted - lacc)
        ~lvl_rej:(probe.Probe.anneal_rejected - lrej)
        ~cur_energy:!cur_energy ~best_sigma:(!best).Solution.sigma;
    incr level;
    temperature := !temperature *. params.cooling
  done;
  emit_done events ~mode:"reference"
    ~evals:
      (probe.Probe.anneal_accepted + probe.Probe.anneal_rejected - acc0 - rej0)
    ~best_sigma:(!best).Solution.sigma;
  !best

(* Delta mode: the same walk costed through the incremental evaluator —
   O(1) per swap candidate, O(position) per repoint, no schedule or
   profile allocation.  Only the best feasible states (a handful per
   run) are materialized as schedules, through the full-model
   [Solution.of_schedule], so the reported sigma always comes from the
   oracle path. *)
let run_delta ~params ~rng ~model ~events ~should_stop g ~deadline sol =
  let n = Graph.num_tasks g and m = Graph.num_points g in
  let ev = Eval.make ~model g sol.Solution.schedule in
  let energy sigma finish =
    sigma +. (penalty_rate *. Float.max 0.0 (finish -. deadline))
  in
  let cur_energy = ref (energy (Eval.sigma ev) (Eval.finish ev)) in
  let best = ref sol in
  let temperature = ref params.initial_temperature in
  let probe = Probe.local () in
  let ev_on = Events.is_active events in
  emit_start events ~mode:"delta" ~n ~m ~params;
  let acc0 = probe.Probe.anneal_accepted
  and rej0 = probe.Probe.anneal_rejected in
  let level = ref 0 in
  while !temperature > params.temperature_floor && not (should_stop ()) do
    let lacc = if ev_on then probe.Probe.anneal_accepted else 0
    and lrej = if ev_on then probe.Probe.anneal_rejected else 0 in
    for _ = 1 to params.steps_per_temperature do
      let mv = draw_move ~rng ~n ~m ~swap_ok:(fun k -> Eval.swap_allowed ev k) in
      match mv with
      | Move_repoint (i, j) when Eval.column ev i = j ->
          probe.Probe.anneal_noops <- probe.Probe.anneal_noops + 1;
          probe.Probe.anneal_accepted <- probe.Probe.anneal_accepted + 1
      | _ ->
          let sigma, finish =
            match mv with
            | Move_swap k -> Eval.try_swap ev k
            | Move_repoint (i, j) -> Eval.try_repoint ev ~task:i ~col:j
          in
          let overrun = Float.max 0.0 (finish -. deadline) in
          let e = sigma +. (penalty_rate *. overrun) in
          (* unconditional draw: see [run_reference] *)
          let u = Rng.float rng 1.0 in
          let accept =
            e <= !cur_energy || u < exp ((!cur_energy -. e) /. !temperature)
          in
          if accept then begin
            probe.Probe.anneal_accepted <- probe.Probe.anneal_accepted + 1;
            Eval.commit ev;
            cur_energy := e;
            if overrun <= 1e-9 && sigma < !best.Solution.sigma then begin
              (* confirm through the full path before adopting: the
                 delta sigma can sit an ulp below the full value, and
                 on graphs with identical tasks an exact tie must stay
                 a tie (the reference walk keeps the earlier best) *)
              let sol = Solution.of_schedule ~model g (Eval.to_schedule ev) in
              if sol.Solution.sigma < !best.Solution.sigma then best := sol
            end
          end
          else begin
            probe.Probe.anneal_rejected <- probe.Probe.anneal_rejected + 1;
            Eval.discard ev
          end
    done;
    if ev_on then
      emit_level events ~mode:"delta" ~level:!level ~temperature:!temperature
        ~evals:
          (probe.Probe.anneal_accepted + probe.Probe.anneal_rejected - acc0
         - rej0)
        ~lvl_acc:(probe.Probe.anneal_accepted - lacc)
        ~lvl_rej:(probe.Probe.anneal_rejected - lrej)
        ~cur_energy:!cur_energy ~best_sigma:(!best).Solution.sigma;
    incr level;
    temperature := !temperature *. params.cooling
  done;
  emit_done events ~mode:"delta"
    ~evals:
      (probe.Probe.anneal_accepted + probe.Probe.anneal_rejected - acc0 - rej0)
    ~best_sigma:(!best).Solution.sigma;
  !best

let run ?(params = default_params) ?(eval = `Delta)
    ?(events = Events.noop) ?(should_stop = fun () -> false) ~rng ~model g
    ~deadline =
  check_params params;
  let sol = start_solution ~model g ~deadline in
  match eval with
  | `Delta -> run_delta ~params ~rng ~model ~events ~should_stop g ~deadline sol
  | `Reference ->
      run_reference ~params ~rng ~model ~events ~should_stop g ~deadline sol

(* Population mode: [pop] delta-evaluated walkers advance through the
   same cooling ladder, stepped round-robin off one shared RNG (walker
   [w] draws its whole per-temperature sweep before walker [w+1], so
   the streams are deterministic and pool-independent).  After each
   temperature level the whole population is re-costed in a single
   {!Batsched_battery.Sigma_batch} structure-of-arrays sweep — sharded over [pool] —
   which (a) resynchronizes every walker's running energy against a
   fresh batched evaluation, bounding delta drift across the long walk,
   (b) tracks the population best, confirmed through the full model
   path before adoption, and (c) reheats the stragglers: the worst
   walker is reseeded from the best walker's state (no RNG draws are
   consumed, so the move streams stay aligned).  Per-temperature best
   tracking is coarser than {!run}'s per-accept tracking — the
   population trades that for breadth. *)
let run_population ?(params = default_params) ?(pop = 8)
    ?(pool = Pool.sequential) ?(events = Events.noop)
    ?(should_stop = fun () -> false) ~rng ~model g ~deadline =
  check_params params;
  if pop < 1 then invalid_arg "Annealing.run_population: pop < 1";
  let sol0 = start_solution ~model g ~deadline in
  let n = Graph.num_tasks g and m = Graph.num_points g in
  let energy sigma finish =
    sigma +. (penalty_rate *. Float.max 0.0 (finish -. deadline))
  in
  let walkers =
    Array.init pop (fun _ -> Eval.make ~model g sol0.Solution.schedule)
  in
  let cur_energy =
    Array.map (fun ev -> energy (Eval.sigma ev) (Eval.finish ev)) walkers
  in
  let batch = Batsched_battery.Sigma_batch.create ~pool model in
  let best = ref sol0 in
  let temperature = ref params.initial_temperature in
  let probe = Probe.local () in
  let ev_on = Events.is_active events in
  emit_start events ~mode:"population" ~n ~m ~params;
  let acc0 = probe.Probe.anneal_accepted
  and rej0 = probe.Probe.anneal_rejected in
  let level = ref 0 in
  while !temperature > params.temperature_floor && not (should_stop ()) do
    let lacc = if ev_on then probe.Probe.anneal_accepted else 0
    and lrej = if ev_on then probe.Probe.anneal_rejected else 0 in
    for w = 0 to pop - 1 do
      let ev = walkers.(w) in
      let ce = ref cur_energy.(w) in
      for _ = 1 to params.steps_per_temperature do
        let mv =
          draw_move ~rng ~n ~m ~swap_ok:(fun k -> Eval.swap_allowed ev k)
        in
        match mv with
        | Move_repoint (i, j) when Eval.column ev i = j ->
            probe.Probe.anneal_noops <- probe.Probe.anneal_noops + 1;
            probe.Probe.anneal_accepted <- probe.Probe.anneal_accepted + 1
        | _ ->
            let sigma, finish =
              match mv with
              | Move_swap k -> Eval.try_swap ev k
              | Move_repoint (i, j) -> Eval.try_repoint ev ~task:i ~col:j
            in
            let e = energy sigma finish in
            (* unconditional draw: see [run_reference] *)
            let u = Rng.float rng 1.0 in
            let accept = e <= !ce || u < exp ((!ce -. e) /. !temperature) in
            if accept then begin
              probe.Probe.anneal_accepted <- probe.Probe.anneal_accepted + 1;
              Eval.commit ev;
              ce := e
            end
            else begin
              probe.Probe.anneal_rejected <- probe.Probe.anneal_rejected + 1;
              Eval.discard ev
            end
      done;
      cur_energy.(w) <- !ce
    done;
    (* population step: one batched sweep over every walker's committed
       intervals (positional reads of the delta state — no schedule or
       profile materialization) *)
    Batsched_battery.Sigma_batch.eval batch ~pop ~n
      ~current:(fun p k -> Eval.interval_current walkers.(p) k)
      ~duration:(fun p k -> Eval.interval_duration walkers.(p) k);
    for p = 0 to pop - 1 do
      cur_energy.(p) <-
        energy (Batsched_battery.Sigma_batch.sigma batch p) (Batsched_battery.Sigma_batch.finish batch p)
    done;
    let bi = ref 0 and wi = ref 0 in
    for p = 1 to pop - 1 do
      if cur_energy.(p) < cur_energy.(!bi) then bi := p;
      if cur_energy.(p) > cur_energy.(!wi) then wi := p
    done;
    let bsigma = Batsched_battery.Sigma_batch.sigma batch !bi
    and bfinish = Batsched_battery.Sigma_batch.finish batch !bi in
    if
      Float.max 0.0 (bfinish -. deadline) <= 1e-9
      && bsigma < !best.Solution.sigma
    then begin
      (* confirm through the full path before adopting, as in {!run} *)
      let sol =
        Solution.of_schedule ~model g (Eval.to_schedule walkers.(!bi))
      in
      if sol.Solution.sigma < !best.Solution.sigma then best := sol
    end;
    if ev_on then begin
      (* emitted before the reseed below so worst_energy reflects the
         population spread this level actually produced *)
      emit_level events ~mode:"population" ~level:!level
        ~temperature:!temperature
        ~evals:
          (probe.Probe.anneal_accepted + probe.Probe.anneal_rejected - acc0
         - rej0)
        ~lvl_acc:(probe.Probe.anneal_accepted - lacc)
        ~lvl_rej:(probe.Probe.anneal_rejected - lrej)
        ~cur_energy:cur_energy.(!bi) ~best_sigma:(!best).Solution.sigma;
      Events.emit events "anneal_pop_spread"
        [ ("level", Events.I !level);
          ("best_energy", Events.F cur_energy.(!bi));
          ("worst_energy", Events.F cur_energy.(!wi)) ]
    end;
    if !wi <> !bi then begin
      Eval.load walkers.(!wi) (Eval.to_schedule walkers.(!bi));
      cur_energy.(!wi) <- cur_energy.(!bi)
    end;
    incr level;
    temperature := !temperature *. params.cooling
  done;
  emit_done events ~mode:"population"
    ~evals:
      (probe.Probe.anneal_accepted + probe.Probe.anneal_rejected - acc0 - rej0)
    ~best_sigma:(!best).Solution.sigma;
  !best
