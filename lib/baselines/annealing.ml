open Batsched_numeric
open Batsched_taskgraph
open Batsched_sched

exception No_feasible_state

type params = {
  initial_temperature : float;
  cooling : float;
  steps_per_temperature : int;
  temperature_floor : float;
}

let default_params =
  { initial_temperature = 2000.0;
    cooling = 0.9;
    steps_per_temperature = 60;
    temperature_floor = 1.0 }

let check_params p =
  if not (p.initial_temperature > 0.0) then invalid_arg "Annealing: bad T0";
  if not (p.cooling > 0.0 && p.cooling < 1.0) then invalid_arg "Annealing: bad cooling";
  if p.steps_per_temperature < 1 then invalid_arg "Annealing: bad steps";
  if not (p.temperature_floor > 0.0) then invalid_arg "Annealing: bad floor"

type state = { sequence : int array; assignment : Assignment.t }

(* Deadline overruns are priced steeply so the walk is pulled back into
   the feasible region: 1 minute over costs as much as ~1 A of load. *)
let penalty_rate = 1000.0

let energy_of ~model g ~deadline st =
  let sequence = Array.to_list st.sequence in
  let sched = Schedule.make g ~sequence ~assignment:st.assignment in
  let sigma = Schedule.battery_cost ~model g sched in
  let overrun = Float.max 0.0 (Schedule.finish_time g sched -. deadline) in
  (sigma +. (penalty_rate *. overrun), sigma, overrun <= 1e-9, sched)

let swap_ok g st k =
  (* positions k and k+1 may swap iff no edge between the two tasks *)
  let a = st.sequence.(k) and b = st.sequence.(k + 1) in
  not (List.mem b (Graph.succs g a))

let neighbour ~rng g st =
  let n = Array.length st.sequence and m = Graph.num_points g in
  let try_swap () =
    if n < 2 then None
    else begin
      let k = Rng.int rng (n - 1) in
      if swap_ok g st k then begin
        let seq = Array.copy st.sequence in
        let tmp = seq.(k) in
        seq.(k) <- seq.(k + 1);
        seq.(k + 1) <- tmp;
        Some { st with sequence = seq }
      end
      else None
    end
  in
  let repoint () =
    let i = Rng.int rng n in
    let j = Rng.int rng m in
    Some { st with assignment = Assignment.set st.assignment i j }
  in
  let rec attempt tries =
    if tries = 0 then repoint ()
    else
      match (if Rng.bool rng then try_swap () else repoint ()) with
      | Some s -> Some s
      | None -> attempt (tries - 1)
  in
  match attempt 8 with Some s -> s | None -> st

let run ?(params = default_params) ~rng ~model g ~deadline =
  check_params params;
  let start_solution =
    try Some (Chowdhury.run ~model g ~deadline)
    with Chowdhury.Infeasible -> None
  in
  match start_solution with
  | None -> raise No_feasible_state
  | Some sol ->
      let st =
        ref
          { sequence = Array.of_list sol.Solution.schedule.Schedule.sequence;
            assignment = sol.Solution.schedule.Schedule.assignment }
      in
      let cur_energy = ref (let e, _, _, _ = energy_of ~model g ~deadline !st in e) in
      let best = ref sol in
      let temperature = ref params.initial_temperature in
      let probe = Probe.local () in
      while !temperature > params.temperature_floor do
        for _ = 1 to params.steps_per_temperature do
          let cand = neighbour ~rng g !st in
          let e, sigma, feasible, sched = energy_of ~model g ~deadline cand in
          let accept =
            e <= !cur_energy
            || Rng.float rng 1.0 < exp ((!cur_energy -. e) /. !temperature)
          in
          if accept then begin
            probe.Probe.anneal_accepted <- probe.Probe.anneal_accepted + 1;
            st := cand;
            cur_energy := e;
            if feasible && sigma < !best.Solution.sigma then
              best := Solution.of_schedule ~model g sched
          end
          else
            probe.Probe.anneal_rejected <- probe.Probe.anneal_rejected + 1
        done;
        temperature := !temperature *. params.cooling
      done;
      !best
