open Batsched_sched
module Log = Batsched_obs.Log
module Sink = Batsched_obs.Sink
module Events = Batsched_obs.Events

type iteration = {
  index : int;
  sequence : int list;
  windows : Window.t;
  weighted_sequence : int list;
  weighted_sigma : float;
  min_sigma : float;
}

type result = {
  iterations : iteration list;
  schedule : Schedule.t;
  sigma : float;
  finish : float;
}

type incumbent = {
  inc_sigma : float;
  inc_sequence : int list;
  inc_assignment : Assignment.t;
}

let cost (cfg : Config.t) g ~sequence ~assignment =
  Schedule.battery_cost ~model:cfg.Config.model g
    (Schedule.make g ~sequence ~assignment)

let improve incumbent candidate =
  if candidate.inc_sigma < incumbent.inc_sigma then candidate else incumbent

(* The paper threads MinBCost (and the matching assignment) through all
   iterations: EvaluateWindows only ever improves the incumbent, which
   is why Table 3's "Min sigma" column is monotone and the final
   iteration repeats the previous value. *)
let run_from ~on_iteration ~initial (cfg : Config.t) g =
  (* One "iteration" span per loop pass; the tail call happens outside
     the span so successive iterations are siblings on the trace track,
     not a nest. *)
  let iteration_body ~index ~sequence ~incumbent =
    let probe = Batsched_numeric.Probe.local () in
    probe.Batsched_numeric.Probe.iterations <-
      probe.Batsched_numeric.Probe.iterations + 1;
    let windows = Window.evaluate cfg g ~sequence in
    let best_w = windows.Window.best in
    let incumbent =
      improve incumbent
        { inc_sigma = best_w.Window.sigma;
          inc_sequence = sequence;
          inc_assignment = best_w.Window.assignment }
    in
    let weighted_sequence =
      Priorities.weighted_sequence g incumbent.inc_assignment
    in
    let weighted_sigma =
      cost cfg g ~sequence:weighted_sequence
        ~assignment:incumbent.inc_assignment
    in
    let incumbent =
      improve incumbent
        { inc_sigma = weighted_sigma;
          inc_sequence = weighted_sequence;
          inc_assignment = incumbent.inc_assignment }
    in
    let it =
      { index;
        sequence;
        windows;
        weighted_sequence;
        weighted_sigma;
        min_sigma = incumbent.inc_sigma }
    in
    Log.debug (fun () ->
        Printf.sprintf
          "iteration %d: window best %.1f, weighted %.1f, incumbent %.1f"
          index best_w.Window.sigma weighted_sigma incumbent.inc_sigma);
    if Events.is_active cfg.Config.events then
      Events.emit cfg.Config.events "iteration"
        [ ("index", Events.I index);
          ("window_best", Events.F best_w.Window.sigma);
          ("weighted_sigma", Events.F weighted_sigma);
          ("min_sigma", Events.F incumbent.inc_sigma) ];
    on_iteration it;
    (it, incumbent)
  in
  let rec loop ~index ~sequence ~incumbent ~prev_cost acc =
    let it, incumbent =
      Sink.with_span cfg.Config.obs "iteration" (fun () ->
          iteration_body ~index ~sequence ~incumbent)
    in
    let acc = it :: acc in
    if incumbent.inc_sigma >= prev_cost || index >= cfg.Config.max_iterations
    then (List.rev acc, incumbent)
    else
      loop ~index:(index + 1) ~sequence:it.weighted_sequence ~incumbent
        ~prev_cost:incumbent.inc_sigma acc
  in
  let start =
    { inc_sigma = Float.infinity;
      inc_sequence = initial;
      inc_assignment = Assignment.all_lowest_power g }
  in
  let iterations, incumbent =
    loop ~index:1 ~sequence:initial ~incumbent:start ~prev_cost:Float.infinity []
  in
  let schedule =
    Schedule.make g ~sequence:incumbent.inc_sequence
      ~assignment:incumbent.inc_assignment
  in
  { iterations;
    schedule;
    sigma = incumbent.inc_sigma;
    finish = Schedule.finish_time g schedule }

let run ?(on_iteration = fun _ -> ()) (cfg : Config.t) g =
  run_from ~on_iteration ~initial:(Priorities.sequence_dec_energy g) cfg g

(* A uniformly random linearization by randomized ready-list choice.
   The ready list is maintained explicitly (sorted by id, matching the
   ascending scan of the previous [List.filter]-per-step version so
   the streams coincide seed for seed) and updated as predecessors
   retire — O(ready + out-degree) per step instead of O(n). *)
let random_sequence ~rng g =
  let open Batsched_taskgraph in
  let n = Graph.num_tasks g in
  let remaining = Array.init n (fun i -> List.length (Graph.preds g i)) in
  let rec insert v = function
    | w :: rest when w < v -> w :: insert v rest
    | rest -> v :: rest
  in
  let initial_ready =
    List.filter (fun v -> remaining.(v) = 0) (List.init n Fun.id)
  in
  let rec step acc count ready =
    if count = n then List.rev acc
    else begin
      let v = Batsched_numeric.Rng.pick rng ready in
      let ready = List.filter (fun w -> w <> v) ready in
      let ready =
        List.fold_left
          (fun ready w ->
            remaining.(w) <- remaining.(w) - 1;
            if remaining.(w) = 0 then insert w ready else ready)
          ready (Graph.succs g v)
      in
      step (v :: acc) (count + 1) ready
    end
  in
  step [] 0 initial_ready

(* Batched seed screening: draw [s] random linearizations, cost them
   all under the all-lowest-power assignment in one structure-of-arrays
   sweep, and keep the [keep] most promising.  The screen is a cheap
   filter in front of the expensive window-sweep runs: one
   [Sigma_batch.eval] against the configured model instead of [s]
   full profile evaluations.  Ranking ties resolve to the earlier draw
   (index order), so the outcome is deterministic for a fixed [rng]
   and independent of the pool size. *)
let screen_seeds ~rng ~screen ~keep (cfg : Config.t) g =
  let open Batsched_taskgraph in
  let cands = Array.make screen [] in
  (* drawn sequentially, before any fan-out *)
  for i = 0 to screen - 1 do
    cands.(i) <- random_sequence ~rng g
  done;
  let n = Graph.num_tasks g in
  let cols =
    Array.of_list (Assignment.to_list (Assignment.all_lowest_power g))
  in
  let seqs = Array.map Array.of_list cands in
  let point p k =
    let task = seqs.(p).(k) in
    Task.point (Graph.task g task) cols.(task)
  in
  let batch =
    Batsched_battery.Sigma_batch.create ~pool:cfg.Config.pool cfg.Config.model
  in
  Batsched_battery.Sigma_batch.eval batch ~pop:screen ~n
    ~current:(fun p k -> (point p k).Task.current)
    ~duration:(fun p k -> (point p k).Task.duration);
  let order = Array.init screen (fun i -> i) in
  Array.sort
    (fun a b ->
      let c =
        Float.compare
          (Batsched_battery.Sigma_batch.sigma batch a)
          (Batsched_battery.Sigma_batch.sigma batch b)
      in
      if c <> 0 then c else Int.compare a b)
    order;
  List.init keep (fun i -> cands.(order.(i)))

let run_multistart ?(on_iteration = fun _ -> ()) ?screen ~rng ~starts
    (cfg : Config.t) g =
  if starts < 1 then invalid_arg "Iterate.run_multistart: starts < 1";
  (* Seeds are drawn sequentially from [rng] before any fan-out, so
     the seed list is independent of the pool size. *)
  let random_seeds =
    match screen with
    | None -> List.init (starts - 1) (fun _ -> random_sequence ~rng g)
    | Some s ->
        if s < starts - 1 then
          invalid_arg "Iterate.run_multistart: screen < starts - 1";
        if starts = 1 then []
        else
          Sink.with_span cfg.Config.obs "screen" (fun () ->
              screen_seeds ~rng ~screen:s ~keep:(starts - 1) cfg g)
  in
  let seeds = Priorities.sequence_dec_energy g :: random_seeds in
  if Events.is_active cfg.Config.events then
    Events.emit cfg.Config.events "multistart_start"
      [ ("starts", Events.I (List.length seeds));
        ("pool", Events.I (Batsched_numeric.Pool.size cfg.Config.pool)) ];
  let runs =
    Batsched_numeric.Pool.map_list cfg.Config.pool
      (fun (trial, initial) ->
        Sink.with_span cfg.Config.obs "start" (fun () ->
            (* the clock is only read with events on, and emission never
               touches the RNG, so instrumented and uninstrumented runs
               stay bit-identical (property-tested) *)
            let ev_on = Events.is_active cfg.Config.events in
            let t0 = if ev_on then Events.now_ns () else 0L in
            let r = run_from ~on_iteration ~initial cfg g in
            (* per-trial convergence record; [Events.emit] is
               mutex-protected, so pool workers may emit freely *)
            if ev_on then begin
              let dur_ms =
                Int64.to_float (Int64.sub (Events.now_ns ()) t0) /. 1e6
              in
              Events.emit cfg.Config.events "trial"
                [ ("trial", Events.I trial);
                  ("sigma", Events.F r.sigma);
                  ("finish", Events.F r.finish);
                  ("iterations", Events.I (List.length r.iterations));
                  ("worker", Events.I (Batsched_numeric.Pool.worker_index ()));
                  ("dur_ms", Events.F dur_ms) ]
            end;
            r))
      (List.mapi (fun i s -> (i, s)) seeds)
  in
  match runs with
  | [] -> assert false
  | first :: rest ->
      (* strict [<] keeps the earlier seed on ties — deterministic and
         independent of evaluation order, hence of the pool size *)
      let best =
        List.fold_left (fun acc r -> if r.sigma < acc.sigma then r else acc)
          first rest
      in
      if Events.is_active cfg.Config.events then
        Events.emit cfg.Config.events "multistart_done"
          [ ("starts", Events.I (List.length seeds));
            ("best_sigma", Events.F best.sigma) ];
      best

let schedule_of_iteration g it =
  let best = it.windows.Window.best in
  let sequence =
    if it.weighted_sigma < best.Window.sigma then it.weighted_sequence
    else it.sequence
  in
  Schedule.make g ~sequence ~assignment:best.Window.assignment
