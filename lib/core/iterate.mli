(** The top-level iterative loop — the paper's
    [BatteryAwareSQNDPAllocation] (Fig. 1).

    Each iteration sweeps all windows for the current sequence, derives
    a new current-weighted sequence (Eq. 4) from the winning assignment,
    and re-costs it; the loop stops as soon as an iteration fails to
    improve on the previous one (or at the configured iteration cap).
    Full traces are retained so the experiment harness can regenerate
    the paper's Tables 2 and 3 verbatim in structure. *)

open Batsched_taskgraph
open Batsched_sched

type iteration = {
  index : int;                       (** 1-based, as in Table 2 *)
  sequence : int list;               (** L: the sequence swept (S<i>) *)
  windows : Window.t;                (** per-window data (Table 3 row) *)
  weighted_sequence : int list;      (** Ltemp (S<i>w) *)
  weighted_sigma : float;            (** cost of (Ltemp, best assignment) *)
  min_sigma : float;                 (** iteration best: min of window best
                                         and [weighted_sigma] *)
}

type result = {
  iterations : iteration list;       (** in execution order *)
  schedule : Schedule.t;             (** overall best (sequence, assignment) *)
  sigma : float;                     (** its battery cost, mA*min *)
  finish : float;                    (** its completion time, minutes *)
}

val run : ?on_iteration:(iteration -> unit) -> Config.t -> Graph.t -> result
(** Run the algorithm to termination.  [on_iteration] is invoked after
    each iteration completes — the anytime hook matching the paper's
    claim that a valid, deadline-meeting schedule exists at every
    iteration boundary (pair it with {!schedule_of_iteration}); an
    embedded caller can stop consuming whenever its budget runs out.
    Progress is also logged through {!Batsched_obs.Log} at debug level
    (quiet unless the embedder raises the level), each iteration is
    wrapped in an ["iteration"] span on [cfg.obs], and per-iteration
    work lands in the {!Batsched_numeric.Probe} counters.
    @raise Config.Deadline_unmeetable if the deadline cannot be met at
    all. *)

val run_multistart :
  ?on_iteration:(iteration -> unit) -> ?screen:int ->
  rng:Batsched_numeric.Rng.t ->
  starts:int -> Config.t -> Graph.t -> result
(** Multi-start variant: the first start is the paper's
    [SequenceDecEnergy] seed; the remaining [starts - 1] seeds are
    uniformly random linearizations.  Returns the best run (its
    [iterations] trace belongs to the winning start).  [starts = 1]
    reduces exactly to {!run}.  The paper's single greedy seed
    occasionally loses to blind random search on tight instances;
    a handful of extra starts closes that gap at proportional cost.

    Starts are independent and fan out over [cfg.pool].  The seed
    sequences are drawn from [rng] before the fan-out and the winner
    is picked by lowest sigma with ties resolving to the earlier seed,
    so the returned result is bit-identical at any pool size; with a
    parallel pool, [on_iteration] runs on worker domains (possibly
    concurrently) and must be thread-safe.

    [screen] widens the random-seed draw: [screen = s] draws [s]
    random linearizations, costs them all under the all-lowest-power
    assignment in one {!Batsched_battery.Sigma_batch} sweep (sharded
    over [cfg.pool], wrapped in a ["screen"] span), and keeps only the
    [starts - 1] most promising — ties to the earlier draw, so the
    choice is deterministic and pool-independent.  The deterministic
    [SequenceDecEnergy] seed always runs.  With [starts = 1] the
    screen is skipped entirely (no draws are consumed).
    @raise Invalid_argument if [starts < 1] or [screen < starts - 1].
    @raise Config.Deadline_unmeetable as {!run}. *)

val schedule_of_iteration : Graph.t -> iteration -> Schedule.t
(** The better of (L, S) and (Ltemp, S) for one iteration — the paper's
    point that "in any given iteration a valid schedule and assignment
    is available which can be used". *)
