(** Local-search polish — squeezing the last few percent out of the
    iterative algorithm's schedule.

    The paper's loop only explores sequences reachable through the
    Eq. 4 weighted rescheduling; adjacent-transposition local search
    explores a different neighbourhood.  The pass alternates two moves
    until a fixed point (or the round budget):

    - swap two adjacent tasks when precedence allows and the battery
      cost drops (durations are untouched, so feasibility is free);
    - re-run the window sweep on the improved sequence and adopt the
      re-fitted design points when they help.

    The result is never worse than the input schedule. *)

open Batsched_taskgraph
open Batsched_sched

val two_swap :
  ?max_rounds:int -> ?eval:[ `Delta | `Reference ] ->
  Config.t -> Graph.t -> Schedule.t -> Schedule.t
(** [two_swap cfg g sched] with at most [max_rounds] (default 10)
    improvement rounds.

    [eval] picks the per-candidate costing path: [`Delta] (default)
    sweeps on the incremental evaluator ({!Batsched_sched.Eval}) —
    O(1) per candidate swap; [`Reference] keeps the original full
    path (topological check + schedule + full sigma per candidate) as
    oracle and baseline.  Results agree up to sigma round-off; the
    1e-9 improvement margin makes the accepted moves identical in
    practice.
    @raise Invalid_argument if [max_rounds < 1]. *)

val polish :
  ?max_rounds:int -> ?eval:[ `Delta | `Reference ] ->
  Config.t -> Graph.t -> Iterate.result -> Iterate.result
(** Convenience: polish an {!Iterate} result, updating its schedule,
    sigma and finish when the local search improves them. *)
