open Batsched_taskgraph
open Batsched_sched

let swap_at sequence k =
  (* swap positions k and k+1; None if out of range *)
  let arr = Array.of_list sequence in
  if k < 0 || k + 1 >= Array.length arr then None
  else begin
    let tmp = arr.(k) in
    arr.(k) <- arr.(k + 1);
    arr.(k + 1) <- tmp;
    Some (Array.to_list arr)
  end

let cost (cfg : Config.t) g sched =
  Schedule.battery_cost ~model:cfg.Config.model g sched

let two_swap ?(max_rounds = 10) (cfg : Config.t) g sched =
  if max_rounds < 1 then invalid_arg "Polish.two_swap: max_rounds < 1";
  Batsched_obs.Sink.with_span cfg.Config.obs "polish" @@ fun () ->
  let n = Graph.num_tasks g in
  let best = ref sched in
  let best_cost = ref (cost cfg g sched) in
  let continue = ref true in
  let rounds = ref 0 in
  while !continue && !rounds < max_rounds do
    incr rounds;
    continue := false;
    (* adjacent transpositions on the sequence, assignment fixed *)
    for k = 0 to n - 2 do
      match swap_at !best.Schedule.sequence k with
      | None -> ()
      | Some sequence ->
          if Analysis.is_topological g sequence then begin
            let trial =
              Schedule.make g ~sequence
                ~assignment:!best.Schedule.assignment
            in
            let c = cost cfg g trial in
            if c < !best_cost -. 1e-9 then begin
              best := trial;
              best_cost := c;
              continue := true
            end
          end
    done;
    (* re-fit the design points to the improved sequence *)
    if !continue then begin
      let windows =
        Window.evaluate cfg g ~sequence:!best.Schedule.sequence
      in
      let w = windows.Window.best in
      if w.Window.sigma < !best_cost -. 1e-9 then begin
        best :=
          Schedule.make g ~sequence:!best.Schedule.sequence
            ~assignment:w.Window.assignment;
        best_cost := w.Window.sigma
      end
    end
  done;
  !best

let polish ?max_rounds (cfg : Config.t) g (result : Iterate.result) =
  let sched = two_swap ?max_rounds cfg g result.Iterate.schedule in
  let sigma = cost cfg g sched in
  if sigma < result.Iterate.sigma then
    { result with
      Iterate.schedule = sched;
      sigma;
      finish = Schedule.finish_time g sched }
  else result
