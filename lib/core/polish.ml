open Batsched_taskgraph
open Batsched_sched
module Events = Batsched_obs.Events

(* One convergence record per improvement round; reads only the
   round's outcome, never feeds back into the sweep. *)
let emit_round events ~mode ~round ~cost ~improved =
  if Events.is_active events then
    Events.emit events "polish_round"
      [ ("mode", Events.S mode); ("round", Events.I round);
        ("cost", Events.F cost); ("improved", Events.B improved) ]

let swap_at sequence k =
  (* swap positions k and k+1; None if out of range *)
  let arr = Array.of_list sequence in
  if k < 0 || k + 1 >= Array.length arr then None
  else begin
    let tmp = arr.(k) in
    arr.(k) <- arr.(k + 1);
    arr.(k + 1) <- tmp;
    Some (Array.to_list arr)
  end

let cost (cfg : Config.t) g sched =
  Schedule.battery_cost ~model:cfg.Config.model g sched

(* Reference mode: the original pass, kept verbatim as the equivalence
   oracle — every candidate swap pays an O(n+e) topological check, a
   schedule construction and a full sigma evaluation. *)
let two_swap_reference ~max_rounds (cfg : Config.t) g sched =
  let n = Graph.num_tasks g in
  let best = ref sched in
  let best_cost = ref (cost cfg g sched) in
  let continue = ref true in
  let rounds = ref 0 in
  while !continue && !rounds < max_rounds do
    incr rounds;
    continue := false;
    (* adjacent transpositions on the sequence, assignment fixed *)
    for k = 0 to n - 2 do
      match swap_at !best.Schedule.sequence k with
      | None -> ()
      | Some sequence ->
          if Analysis.is_topological g sequence then begin
            let trial =
              Schedule.make g ~sequence
                ~assignment:!best.Schedule.assignment
            in
            let c = cost cfg g trial in
            if c < !best_cost -. 1e-9 then begin
              best := trial;
              best_cost := c;
              continue := true
            end
          end
    done;
    (* re-fit the design points to the improved sequence *)
    if !continue then begin
      let windows =
        Window.evaluate cfg g ~sequence:!best.Schedule.sequence
      in
      let w = windows.Window.best in
      if w.Window.sigma < !best_cost -. 1e-9 then begin
        best :=
          Schedule.make g ~sequence:!best.Schedule.sequence
            ~assignment:w.Window.assignment;
        best_cost := w.Window.sigma
      end
    end;
    emit_round cfg.Config.events ~mode:"reference" ~round:!rounds
      ~cost:!best_cost ~improved:!continue
  done;
  !best

(* Delta mode: same first-improvement sweep on the incremental
   evaluator — the precedence check is O(out-degree), a candidate swap
   is O(1) model terms, and nothing is allocated until the final
   schedule is materialized.  The window re-fit stays on the full path
   (it costs whole assignments, not moves); its result re-seats the
   evaluator. *)
let two_swap_delta ~max_rounds (cfg : Config.t) g sched =
  let n = Graph.num_tasks g in
  let ev = Eval.make ~model:cfg.Config.model g sched in
  let best_cost = ref (Eval.sigma ev) in
  let continue = ref true in
  let rounds = ref 0 in
  while !continue && !rounds < max_rounds do
    incr rounds;
    continue := false;
    for k = 0 to n - 2 do
      if Eval.swap_allowed ev k then begin
        let c, _ = Eval.try_swap ev k in
        if c < !best_cost -. 1e-9 then begin
          Eval.commit ev;
          best_cost := c;
          continue := true
        end
        else Eval.discard ev
      end
    done;
    if !continue then begin
      let windows = Window.evaluate cfg g ~sequence:(Eval.sequence ev) in
      let w = windows.Window.best in
      if w.Window.sigma < !best_cost -. 1e-9 then begin
        Eval.load ev
          (Schedule.unsafe_make g ~sequence:(Eval.sequence ev)
             ~assignment:w.Window.assignment);
        best_cost := Eval.sigma ev
      end
    end;
    emit_round cfg.Config.events ~mode:"delta" ~round:!rounds
      ~cost:!best_cost ~improved:!continue
  done;
  Eval.to_schedule ev

let two_swap ?(max_rounds = 10) ?(eval = `Delta) (cfg : Config.t) g sched =
  if max_rounds < 1 then invalid_arg "Polish.two_swap: max_rounds < 1";
  Batsched_obs.Sink.with_span cfg.Config.obs "polish" @@ fun () ->
  match eval with
  | `Delta -> two_swap_delta ~max_rounds cfg g sched
  | `Reference -> two_swap_reference ~max_rounds cfg g sched

let polish ?max_rounds ?eval (cfg : Config.t) g (result : Iterate.result) =
  let sched = two_swap ?max_rounds ?eval cfg g result.Iterate.schedule in
  let sigma = cost cfg g sched in
  if sigma < result.Iterate.sigma then
    { result with
      Iterate.schedule = sched;
      sigma;
      finish = Schedule.finish_time g sched }
  else result
