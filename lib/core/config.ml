open Batsched_battery

exception Deadline_unmeetable

type term_weights = {
  sr : float;
  cr : float;
  enr : float;
  cif : float;
  dpf : float;
}

let paper_weights = { sr = 1.0; cr = 1.0; enr = 1.0; cif = 1.0; dpf = 1.0 }

type t = {
  model : Model.t;
  deadline : float;
  weights : term_weights;
  max_iterations : int;
  full_window_only : bool;
  pool : Batsched_numeric.Pool.t;
  obs : Batsched_obs.Sink.t;
  events : Batsched_obs.Events.t;
}

let make ?model ?(weights = paper_weights) ?(max_iterations = 100)
    ?(full_window_only = false) ?(pool = Batsched_numeric.Pool.sequential)
    ?(obs = Batsched_obs.Sink.noop) ?(events = Batsched_obs.Events.noop)
    ~deadline () =
  if not (deadline > 0.0) then invalid_arg "Config.make: deadline must be positive";
  if max_iterations < 1 then invalid_arg "Config.make: max_iterations < 1";
  let model =
    match model with Some m -> m | None -> Rakhmatov.model ()
  in
  { model; deadline; weights; max_iterations; full_window_only; pool; obs;
    events }
