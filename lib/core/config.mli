(** Configuration of the iterative battery-aware scheduler. *)

open Batsched_battery

exception Deadline_unmeetable
(** Raised when even the all-fastest configuration misses the deadline
    (the paper's "Exit with error" branch of [EvaluateWindows]). *)

type term_weights = {
  sr : float;   (** slack ratio *)
  cr : float;   (** current ratio *)
  enr : float;  (** energy ratio *)
  cif : float;  (** current-increase fraction *)
  dpf : float;  (** design-point fraction *)
}
(** Multipliers on the five terms of the suitability objective
    B = SR + CR + ENR + CIF + DPF.  The paper uses all ones; setting a
    weight to 0 knocks the term out (used by the ablation experiment).
    Deadline feasibility is enforced independently of the weights. *)

val paper_weights : term_weights
(** All ones — the published objective. *)

type t = {
  model : Model.t;        (** battery cost model (default RV, beta 0.273) *)
  deadline : float;       (** the task graph's deadline, minutes *)
  weights : term_weights;
  max_iterations : int;   (** safety cap on outer iterations *)
  full_window_only : bool;
      (** ablation switch: evaluate only the full design-point window
          instead of the paper's narrow-to-wide sweep (default
          false = the paper's behaviour) *)
  pool : Batsched_numeric.Pool.t;
      (** domain pool for the window sweep and multistart fan-out
          (default {!Batsched_numeric.Pool.sequential} = fully
          sequential).  Results are bit-identical at any pool size;
          see [Pool]'s determinism guarantees. *)
  obs : Batsched_obs.Sink.t;
      (** observability sink for phase span timers (default
          {!Batsched_obs.Sink.noop} = timers disabled at the cost of
          one branch per phase).  Instrumentation never feeds back
          into the search: schedules and sigma are bit-identical with
          any sink.  Work counters ({!Batsched_numeric.Probe}) are
          always on and independent of this field. *)
  events : Batsched_obs.Events.t;
      (** anytime-event stream for convergence records (default
          {!Batsched_obs.Events.noop}).  Same non-perturbation
          guarantee as [obs]: the search never reads it. *)
}

val make :
  ?model:Model.t -> ?weights:term_weights -> ?max_iterations:int ->
  ?full_window_only:bool -> ?pool:Batsched_numeric.Pool.t ->
  ?obs:Batsched_obs.Sink.t -> ?events:Batsched_obs.Events.t ->
  deadline:float -> unit -> t
(** [make ~deadline ()] with defaults: Rakhmatov–Vrudhula model with the
    paper's beta, {!paper_weights}, [max_iterations = 100], the full
    window sweep, a sequential pool, the no-op sink, the no-op event
    stream.
    @raise Invalid_argument on non-positive deadline or
    [max_iterations < 1]. *)
