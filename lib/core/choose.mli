(** Design-point selection for a fixed sequence — the paper's
    [ChooseDesignPoints] and [CalculateDPF] (Figs. 1–2).

    Walking the sequence from the last task to the first, each task is
    "tagged" at every column the window allows; the suitability
    [B = SR + CR + ENR + CIF + DPF] of each tagging is evaluated against
    a hypothetical completion of the still-free prefix, and the column
    with the least [B] is fixed.  Columns are 0-based (0 = fastest);
    a window [ws] allows columns [ws .. m-1].

    {2 Incremental evaluation}

    The default entry points evaluate consecutive trials at one tagged
    position incrementally: per-position prefix/suffix aggregates plus
    a precomputed upgrade schedule turn each trial into O(1) patches of
    a live scratch state instead of O(n) rescans (derivation in
    DESIGN.md §9).  The seed per-trial implementation is retained as
    {!calculate_dpf_reference} / {!choose_design_points_reference}; the
    property tests pin selection identity on the published instances
    and on random DAGs, and metric agreement to within 1e-9 (the only
    deviation is compensated-summation rounding, a few ulps). *)

open Batsched_taskgraph
open Batsched_sched

type dpf_result = {
  enr : float;
  cif : float;
  dpf : float;           (** [infinity] if the tagging is infeasible *)
  hypothetical : Assignment.t;
      (** the free-prefix completion used for ENR/CIF: free tasks parked
          at lowest power, upgraded lowest-average-energy-first until
          the deadline holds *)
}

val calculate_dpf :
  Config.t -> Graph.t -> sequence:int array -> assignment:Assignment.t ->
  tagged_pos:int -> window_start:int -> dpf_result
(** [calculate_dpf cfg g ~sequence ~assignment ~tagged_pos ~window_start]
    evaluates the paper's [CalculateDPF] for the task at position
    [tagged_pos]: [assignment] must already hold the fixed suffix
    (positions after [tagged_pos]), the tagged column at [tagged_pos],
    and all earlier (free) tasks at the lowest-power column.  Free
    tasks are upgraded one column at a time, in increasing
    average-energy order, until the serial time meets the deadline;
    running out of upgrades yields [dpf = infinity].  When
    [tagged_pos = 0] (no free task remains) [dpf] is the slack ratio of
    the complete assignment, per the pseudocode's last-task rule. *)

val calculate_dpf_reference :
  Config.t -> Graph.t -> sequence:int array -> assignment:Assignment.t ->
  tagged_pos:int -> window_start:int -> dpf_result
(** The seed implementation of {!calculate_dpf}, kept verbatim as the
    oracle: per trial it rescans the whole sequence (O(n) sums) and
    runs the upgrade loop from scratch.  Same contract as
    {!calculate_dpf}; the hypothetical assignments are identical and
    the metrics agree to within 1e-9 (compensated-rounding ulps). *)

val choose_design_points :
  Config.t -> Graph.t -> sequence:int list -> window_start:int ->
  Assignment.t
(** The paper's [ChooseDesignPoints]: returns the committed assignment
    for [sequence] under the window.  The last task is fixed at the
    slowest column that leaves the remaining tasks feasible at the
    window's fastest column (the paper unconditionally uses the
    lowest-power column, which only works with enough slack — see
    DESIGN.md); every other task gets the column minimizing [B], ties
    resolving to the lower-power column.
    @raise Invalid_argument if [sequence] is not a linearization or
    [window_start] is out of range.
    @raise Config.Deadline_unmeetable if no feasible choice exists for
    some task (cannot happen when [window_start] satisfies
    [Analysis.column_time g window_start <= deadline]). *)

val choose_design_points_reference :
  Config.t -> Graph.t -> sequence:int list -> window_start:int ->
  Assignment.t
(** {!choose_design_points} driven by the seed per-trial
    {!calculate_dpf_reference} evaluation instead of the incremental
    path.  Selects identical assignments (property-tested); exists as
    the oracle for tests and as the before/after pair in the
    [choose-n64] bench scenarios. *)
