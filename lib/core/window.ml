open Batsched_taskgraph
open Batsched_sched

type window_result = {
  window_start : int;
  assignment : Assignment.t;
  sigma : float;
  finish : float;
}

type t = {
  per_window : window_result list;
  best : window_result;
}

let initial_window_start (cfg : Config.t) g =
  let d = cfg.Config.deadline in
  let feasible ws = Analysis.column_time g ws <= d +. 1e-9 in
  if not (feasible 0) then raise Config.Deadline_unmeetable;
  let m = Graph.num_points g in
  (* The paper starts the scan at column m-1 (1-based), i.e. it never
     evaluates the single-column all-lowest-power window. *)
  let rec search ws = if feasible ws then ws else search (ws - 1) in
  search (Stdlib.max 0 (m - 2))

let evaluate (cfg : Config.t) g ~sequence =
  let start =
    (* the ablation switch skips the paper's narrow-to-wide sweep and
       evaluates only the full matrix *)
    if cfg.Config.full_window_only then begin
      ignore (initial_window_start cfg g) (* still validates feasibility *);
      0
    end
    else initial_window_start cfg g
  in
  let run ws =
    Batsched_obs.Sink.with_span cfg.Config.obs "window" (fun () ->
        let probe = Batsched_numeric.Probe.local () in
        probe.Batsched_numeric.Probe.window_evals <-
          probe.Batsched_numeric.Probe.window_evals + 1;
        let assignment =
          Choose.choose_design_points cfg g ~sequence ~window_start:ws
        in
        let sched = Schedule.make g ~sequence ~assignment in
        { window_start = ws;
          assignment;
          sigma = Schedule.battery_cost ~model:cfg.Config.model g sched;
          finish = Schedule.finish_time g sched })
  in
  (* Fan the independent window evaluations out over the config's
     domain pool; [Pool.map_list] keeps results in the sequential
     narrow-to-wide order, so [best] (and its tie-breaks) are
     bit-identical to the sequential sweep. *)
  let per_window =
    Batsched_numeric.Pool.map_list cfg.Config.pool run
      (List.init (start + 1) (fun k -> start - k))
  in
  let best =
    match per_window with
    | [] -> assert false (* start >= 0 always yields one window *)
    | first :: rest ->
        List.fold_left
          (fun acc r -> if r.sigma < acc.sigma then r else acc)
          first rest
  in
  { per_window; best }

let mask g ~window_start =
  List.init (Graph.num_points g) (fun j -> (j, j >= window_start))
