(** Window search over design-point columns — the paper's
    [EvaluateWindows].

    A window with start [ws] restricts selection to columns
    [ws .. m-1] (the paper's "[ws+1]:m" in 1-based notation, cf. its
    Figure 3).  The search begins at the narrowest feasible window and
    widens one column at a time down to the full matrix, running
    {!Choose.choose_design_points} under each and keeping the
    assignment with the least battery cost. *)

open Batsched_taskgraph
open Batsched_sched

type window_result = {
  window_start : int;        (** 0-based first allowed column *)
  assignment : Assignment.t;
  sigma : float;             (** battery cost of (sequence, assignment) *)
  finish : float;            (** serial completion time, minutes *)
}

type t = {
  per_window : window_result list;  (** in evaluation order (narrow to wide) *)
  best : window_result;             (** least sigma; ties keep the earlier *)
}

val initial_window_start : Config.t -> Graph.t -> int
(** Largest [ws] in [0 .. m-2] whose all-column-[ws] serial time meets
    the deadline.
    @raise Config.Deadline_unmeetable if even [ws = 0] (all tasks at
    their fastest) misses it. *)

val evaluate : Config.t -> Graph.t -> sequence:int list -> t
(** Run the full window sweep for one sequence.  Window evaluations
    are independent and fan out over [cfg.pool]; [per_window] order,
    [best] and its ties are bit-identical to a sequential sweep.
    @raise Config.Deadline_unmeetable as {!initial_window_start}. *)

val mask : Graph.t -> window_start:int -> (int * bool) list
(** [mask g ~window_start] is the Figure-3 view of a window: each
    column index paired with whether the window admits it. *)
