open Batsched_taskgraph
open Batsched_sched
open Batsched_numeric

type dpf_result = {
  enr : float;
  cif : float;
  dpf : float;
  hypothetical : Assignment.t;
}

let eps = 1e-9

(* Per-call context: everything [CalculateDPF] needs, hoisted out of
   the O(n * m) tagging loop.  The seed implementation recomputed the
   energy order (a sort), the energy bounds and the current range — and
   rebuilt list/assignment copies — inside every one of those calls;
   here each is computed once per [choose_design_points] and every
   design-point lookup is a flat array read.  All float expressions
   below replicate the seed's operation order exactly, so selections
   (and thus schedules) are bit-identical. *)
type ctx = {
  n : int;
  m : int;
  deadline : float;
  window_start : int;
  seq : int array;
  dur : float array array;    (* dur.(task).(col), from [Task.point] *)
  cur : float array array;
  energy : float array array; (* current *. voltage *. duration *)
  energy_order : int array;   (* increasing average energy, ties by id *)
  emin : float;
  emax : float;
  imin : float;
  imax : float;
  (* scratch reused across the thousands of CalculateDPF calls *)
  scratch_cols : int array;
  fixed_e : bool array;
}

let make_ctx (cfg : Config.t) g ~seq ~window_start =
  let n = Graph.num_tasks g in
  let m = Graph.num_points g in
  let point i j = Task.point (Graph.task g i) j in
  let table f = Array.init n (fun i -> Array.init m (fun j -> f (point i j))) in
  let emin, emax = Analysis.energy_bounds g in
  let imin, imax = Analysis.current_range g in
  { n;
    m;
    deadline = cfg.Config.deadline;
    window_start;
    seq;
    dur = table (fun p -> p.Task.duration);
    cur = table (fun p -> p.Task.current);
    energy = table (fun p -> p.Task.current *. p.Task.voltage *. p.Task.duration);
    energy_order = Array.of_list (Analysis.energy_vector g);
    emin;
    emax;
    imin;
    imax;
    scratch_cols = Array.make n 0;
    fixed_e = Array.make n false }

(* Metrics.current_ratio over the precomputed range. *)
let current_ratio ctx i =
  if ctx.imax -. ctx.imin <= 0.0 then 0.0
  else (i -. ctx.imin) /. (ctx.imax -. ctx.imin)

(* Metrics.energy_ratio over the precomputed bounds; the total is the
   same Kahan sum in task-id order as [Assignment.total_energy]. *)
let energy_ratio ctx cols =
  if ctx.emax -. ctx.emin <= 0.0 then 0.0
  else
    (Kahan.sum_fn ctx.n (fun i -> ctx.energy.(i).(cols.(i))) -. ctx.emin)
    /. (ctx.emax -. ctx.emin)

(* Metrics.current_increase_fraction over the full sequence. *)
let increase_fraction ctx cols =
  if ctx.n <= 1 then 0.0
  else begin
    let current v = ctx.cur.(v).(cols.(v)) in
    let count = ref 0 in
    let prev = ref (current ctx.seq.(0)) in
    for pos = 1 to ctx.n - 1 do
      let c = current ctx.seq.(pos) in
      if c > !prev then incr count;
      prev := c
    done;
    float_of_int !count /. float_of_int (ctx.n - 1)
  end

(* Metrics.dpf_static over the free prefix (positions < tagged_pos),
   whose task order is exactly the seed's [free] list. *)
let dpf_static ctx cols ~tagged_pos =
  if ctx.window_start < 0 || ctx.window_start >= ctx.m then
    invalid_arg "Metrics.dpf_static: window_start out of range";
  if tagged_pos = 0 || ctx.window_start = ctx.m - 1 then 0.0
  else begin
    let span = float_of_int (ctx.m - 1 - ctx.window_start) in
    let weight k =
      if k < ctx.window_start then
        invalid_arg "Metrics.dpf_static: free task assigned outside the window"
      else float_of_int (ctx.m - 1 - k) /. span
    in
    Kahan.sum_fn tagged_pos (fun pos -> weight cols.(ctx.seq.(pos)))
    /. float_of_int tagged_pos
  end

(* The paper's CalculateDPF.  [ctx.scratch_cols] must hold the tagged
   state on entry (free prefix at lowest power, tagged task at its
   trial column, suffix committed); it is mutated into the
   hypothetical completion.  Returns (enr, cif, dpf). *)
let calculate_dpf_ctx ctx ~tagged_pos =
  let d = ctx.deadline in
  let cols = ctx.scratch_cols in
  let fixed_e = ctx.fixed_e in
  let probe = Probe.local () in
  Array.fill fixed_e 0 ctx.n true;
  for pos = 0 to tagged_pos - 1 do
    fixed_e.(ctx.seq.(pos)) <- false
  done;
  let te = ref (Kahan.sum_fn ctx.n (fun i -> ctx.dur.(i).(cols.(i)))) in
  let finish infeasible =
    let enr = energy_ratio ctx cols in
    let cif = increase_fraction ctx cols in
    let dpf =
      if infeasible then Float.infinity
      else if tagged_pos = 0 then Metrics.slack_ratio ~deadline:d ~time:!te
      else dpf_static ctx cols ~tagged_pos
    in
    (enr, cif, dpf)
  in
  (* First upgradable free task in increasing-average-energy order.
     Tasks only ever get fixed, and columns only ever decrease, so the
     first free candidate moves monotonically through [energy_order] —
     the pointer [k] replaces the seed's scan-from-scratch without
     changing which task each round picks. *)
  let k = ref 0 in
  let rec candidate () =
    if !k >= ctx.n then None
    else begin
      let q = ctx.energy_order.(!k) in
      if fixed_e.(q) then begin incr k; candidate () end
      else if cols.(q) <= ctx.window_start then begin
        (* already at the fastest allowed column: cannot upgrade *)
        fixed_e.(q) <- true;
        incr k;
        candidate ()
      end
      else Some q
    end
  in
  let rec upgrade () =
    if !te <= d +. eps then finish false
    else
      match candidate () with
      | None -> finish true
      | Some q ->
          probe.Probe.dpf_steps <- probe.Probe.dpf_steps + 1;
          let col = cols.(q) in
          let col' = col - 1 in
          te := !te -. ctx.dur.(q).(col) +. ctx.dur.(q).(col');
          cols.(q) <- col';
          if col' = ctx.window_start then fixed_e.(q) <- true;
          upgrade ()
  in
  upgrade ()

let calculate_dpf (cfg : Config.t) g ~sequence ~assignment ~tagged_pos
    ~window_start =
  let ctx = make_ctx cfg g ~seq:sequence ~window_start in
  List.iteri
    (fun i col -> ctx.scratch_cols.(i) <- col)
    (Assignment.to_list assignment);
  let enr, cif, dpf = calculate_dpf_ctx ctx ~tagged_pos in
  { enr;
    cif;
    dpf;
    hypothetical = Assignment.of_list g (Array.to_list ctx.scratch_cols) }

let suitability (cfg : Config.t) ~sr ~cr ~enr ~cif ~dpf =
  if dpf = Float.infinity then Float.infinity
  else begin
    let w = cfg.Config.weights in
    (w.Config.sr *. sr) +. (w.Config.cr *. cr)
    +. (w.Config.enr *. enr)
    +. (w.Config.cif *. cif)
    +. (w.Config.dpf *. dpf)
  end

let choose_design_points (cfg : Config.t) g ~sequence ~window_start =
  let m = Graph.num_points g in
  if window_start < 0 || window_start >= m then
    invalid_arg "Choose.choose_design_points: window out of range";
  if not (Analysis.is_topological g sequence) then
    invalid_arg "Choose.choose_design_points: invalid sequence";
  Batsched_obs.Sink.with_span cfg.Config.obs "choose" @@ fun () ->
  let probe = Probe.local () in
  probe.Probe.choose_calls <- probe.Probe.choose_calls + 1;
  let seq = Array.of_list sequence in
  let ctx = make_ctx cfg g ~seq ~window_start in
  let n = ctx.n in
  let d = cfg.Config.deadline in
  let lowest = m - 1 in
  (* Committed columns of the fixed suffix; free tasks read as lowest
     power, which is also their hypothetical parking column. *)
  let cols = Array.make n lowest in
  (* The paper fixes the last task at the lowest-power column outright
     ("S(n,m) = 1"), which can bust a tight deadline before selection
     even starts.  We take the slowest column that leaves the rest of
     the sequence feasible at the window's fastest column — identical
     to the paper whenever its own examples apply (see DESIGN.md). *)
  let last = seq.(n - 1) in
  let rest_fastest =
    Kahan.sum_fn (n - 1) (fun pos -> ctx.dur.(seq.(pos)).(window_start))
  in
  let last_col =
    let rec pick j =
      if j <= window_start then window_start
      else if ctx.dur.(last).(j) +. rest_fastest <= d +. 1e-9 then j
      else pick (j - 1)
    in
    pick lowest
  in
  if ctx.dur.(last).(last_col) +. rest_fastest > d +. 1e-9 then
    raise Config.Deadline_unmeetable;
  cols.(last) <- last_col;
  let tsum = ref ctx.dur.(last).(last_col) in
  for pos = n - 2 downto 0 do
    let t = seq.(pos) in
    let best = ref None in
    for j = lowest downto window_start do
      Array.blit cols 0 ctx.scratch_cols 0 n;
      ctx.scratch_cols.(t) <- j;
      let ttemp = !tsum +. ctx.dur.(t).(j) in
      let sr = Metrics.slack_ratio ~deadline:d ~time:ttemp in
      let cr = current_ratio ctx ctx.cur.(t).(j) in
      let enr, cif, dpf = calculate_dpf_ctx ctx ~tagged_pos:pos in
      let b = suitability cfg ~sr ~cr ~enr ~cif ~dpf in
      match !best with
      | Some (_, best_b) when best_b <= b -> ()
      | _ -> if b < Float.infinity then best := Some (j, b)
    done;
    match !best with
    | None -> raise Config.Deadline_unmeetable
    | Some (col, _) ->
        cols.(t) <- col;
        tsum := !tsum +. ctx.dur.(t).(col)
  done;
  Assignment.of_list g (Array.to_list cols)
