open Batsched_taskgraph
open Batsched_sched
open Batsched_numeric

type dpf_result = {
  enr : float;
  cif : float;
  dpf : float;
  hypothetical : Assignment.t;
}

let eps = 1e-9

(* Per-call context: everything [CalculateDPF] needs, hoisted out of
   the O(n * m) tagging loop.  The seed implementation recomputed the
   energy order (a sort), the energy bounds and the current range — and
   rebuilt list/assignment copies — inside every one of those calls;
   here each is computed once per [choose_design_points] and every
   design-point lookup is a flat array read.

   On top of the hoisted tables sits the *incremental* trial path (see
   [begin_pos]/[trial] below and DESIGN.md §9): per tagged position the
   serial-time / energy totals and the current-increase count are
   maintained as O(1) deltas between consecutive column trials, and the
   scratch column array is patched and un-patched instead of re-blitted
   per trial.  [calculate_dpf_reference_ctx] keeps the seed's per-trial
   O(n) rescans verbatim as the oracle the property tests (and the
   [choose-n64] bench pair) compare against. *)
type ctx = {
  n : int;
  m : int;
  deadline : float;
  window_start : int;
  seq : int array;
  pos_of : int array;         (* task -> position in [seq] *)
  dur : float array array;    (* dur.(task).(col), from [Task.point] *)
  cur : float array array;
  energy : float array array; (* current *. voltage *. duration *)
  energy_order : int array;   (* increasing average energy, ties by id *)
  emin : float;
  emax : float;
  imin : float;
  imax : float;
  (* durations non-decreasing in column index for every task: the
     precondition for the incremental upgrade walk (it makes the
     feasibility predicate monotone in the step count).  Every paper
     and generated instance satisfies it; when violated the choose
     loop falls back to the reference trial path. *)
  mono_dur : bool;
  (* scratch reused across the thousands of CalculateDPF calls *)
  scratch_cols : int array;
  fixed_e : bool array;
  (* --- incremental per-position state (valid between [begin_pos] and
     the next [begin_pos]; one position in flight at a time) --- *)
  step_task : int array;      (* task upgraded at step s, s < nsteps *)
  cum_dt : float array;       (* cum_dt.(k): duration delta of steps < k *)
  cum_de : float array;       (* cum_de.(k): energy delta of steps < k *)
  acc : float array;          (* 2-cell compensated accumulator *)
  acc2 : float array;         (* second accumulator (paired sums) *)
  mutable nsteps : int;
  mutable applied : int;      (* steps currently applied to scratch_cols *)
  mutable inc_count : int;    (* live current-increase count of scratch *)
  mutable base_te : float;    (* serial time, all tasks but the tagged *)
  mutable base_energy : float;(* energy total, all tasks but the tagged *)
  mutable tagged_pos : int;
  mutable tagged_task : int;
}

(* Compensated (Neumaier) accumulation into a 2-cell float array —
   [acc.(0)] running total, [acc.(1)] compensation.  Unlike folding
   [Kahan.add] this allocates nothing: the cells live in a preallocated
   unboxed float array and the compiler keeps the arithmetic in
   registers. *)
let[@inline] kacc_clear acc =
  acc.(0) <- 0.0;
  acc.(1) <- 0.0

let[@inline] kacc_add acc x =
  let total = acc.(0) in
  let t = total +. x in
  acc.(1) <-
    acc.(1)
    +.
    (if Float.abs total >= Float.abs x then (total -. t) +. x
     else (x -. t) +. total);
  acc.(0) <- t

let[@inline] kacc_sum acc = acc.(0) +. acc.(1)

let make_ctx (cfg : Config.t) g ~seq ~window_start =
  let n = Graph.num_tasks g in
  let m = Graph.num_points g in
  let point i j = Task.point (Graph.task g i) j in
  let table f = Array.init n (fun i -> Array.init m (fun j -> f (point i j))) in
  let emin, emax = Analysis.energy_bounds g in
  let imin, imax = Analysis.current_range g in
  let dur = table (fun p -> p.Task.duration) in
  let mono_dur =
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 1 to m - 1 do
        if dur.(i).(j) < dur.(i).(j - 1) then ok := false
      done
    done;
    !ok
  in
  let pos_of = Array.make n 0 in
  Array.iteri (fun pos t -> pos_of.(t) <- pos) seq;
  let max_steps = (n * (m - 1)) + 1 in
  { n;
    m;
    deadline = cfg.Config.deadline;
    window_start;
    seq;
    pos_of;
    dur;
    cur = table (fun p -> p.Task.current);
    energy = table (fun p -> p.Task.current *. p.Task.voltage *. p.Task.duration);
    energy_order = Array.of_list (Analysis.energy_vector g);
    emin;
    emax;
    imin;
    imax;
    mono_dur;
    scratch_cols = Array.make n 0;
    fixed_e = Array.make n false;
    step_task = Array.make max_steps 0;
    cum_dt = Array.make max_steps 0.0;
    cum_de = Array.make max_steps 0.0;
    acc = Array.make 2 0.0;
    acc2 = Array.make 2 0.0;
    nsteps = 0;
    applied = 0;
    inc_count = 0;
    base_te = 0.0;
    base_energy = 0.0;
    tagged_pos = 0;
    tagged_task = 0 }

(* Metrics.current_ratio over the precomputed range. *)
let current_ratio ctx i =
  if ctx.imax -. ctx.imin <= 0.0 then 0.0
  else (i -. ctx.imin) /. (ctx.imax -. ctx.imin)

(* Metrics.energy_ratio over the precomputed bounds; the total is the
   same Kahan sum in task-id order as [Assignment.total_energy]. *)
let energy_ratio ctx cols =
  if ctx.emax -. ctx.emin <= 0.0 then 0.0
  else
    (Kahan.sum_fn ctx.n (fun i -> ctx.energy.(i).(cols.(i))) -. ctx.emin)
    /. (ctx.emax -. ctx.emin)

(* Metrics.current_increase_fraction over the full sequence. *)
let increase_fraction ctx cols =
  if ctx.n <= 1 then 0.0
  else begin
    let current v = ctx.cur.(v).(cols.(v)) in
    let count = ref 0 in
    let prev = ref (current ctx.seq.(0)) in
    for pos = 1 to ctx.n - 1 do
      let c = current ctx.seq.(pos) in
      if c > !prev then incr count;
      prev := c
    done;
    float_of_int !count /. float_of_int (ctx.n - 1)
  end

(* Metrics.dpf_static over the free prefix (positions < tagged_pos),
   whose task order is exactly the seed's [free] list. *)
let dpf_static ctx cols ~tagged_pos =
  if ctx.window_start < 0 || ctx.window_start >= ctx.m then
    invalid_arg "Metrics.dpf_static: window_start out of range";
  if tagged_pos = 0 || ctx.window_start = ctx.m - 1 then 0.0
  else begin
    let span = float_of_int (ctx.m - 1 - ctx.window_start) in
    let weight k =
      if k < ctx.window_start then
        invalid_arg "Metrics.dpf_static: free task assigned outside the window"
      else float_of_int (ctx.m - 1 - k) /. span
    in
    Kahan.sum_fn tagged_pos (fun pos -> weight cols.(ctx.seq.(pos)))
    /. float_of_int tagged_pos
  end

(* The paper's CalculateDPF, seed implementation: O(n) rescans per
   trial.  [ctx.scratch_cols] must hold the tagged state on entry (free
   prefix at lowest power, tagged task at its trial column, suffix
   committed); it is mutated into the hypothetical completion.  Kept
   verbatim as the oracle for the incremental path below.  Returns
   (enr, cif, dpf). *)
let calculate_dpf_reference_ctx ctx ~tagged_pos =
  let d = ctx.deadline in
  let cols = ctx.scratch_cols in
  let fixed_e = ctx.fixed_e in
  let probe = Probe.local () in
  Array.fill fixed_e 0 ctx.n true;
  for pos = 0 to tagged_pos - 1 do
    fixed_e.(ctx.seq.(pos)) <- false
  done;
  let te = ref (Kahan.sum_fn ctx.n (fun i -> ctx.dur.(i).(cols.(i)))) in
  let finish infeasible =
    let enr = energy_ratio ctx cols in
    let cif = increase_fraction ctx cols in
    let dpf =
      if infeasible then Float.infinity
      else if tagged_pos = 0 then Metrics.slack_ratio ~deadline:d ~time:!te
      else dpf_static ctx cols ~tagged_pos
    in
    (enr, cif, dpf)
  in
  (* First upgradable free task in increasing-average-energy order.
     Tasks only ever get fixed, and columns only ever decrease, so the
     first free candidate moves monotonically through [energy_order] —
     the pointer [k] replaces the seed's scan-from-scratch without
     changing which task each round picks. *)
  let k = ref 0 in
  let rec candidate () =
    if !k >= ctx.n then None
    else begin
      let q = ctx.energy_order.(!k) in
      if fixed_e.(q) then begin incr k; candidate () end
      else if cols.(q) <= ctx.window_start then begin
        (* already at the fastest allowed column: cannot upgrade *)
        fixed_e.(q) <- true;
        incr k;
        candidate ()
      end
      else Some q
    end
  in
  let rec upgrade () =
    if !te <= d +. eps then finish false
    else
      match candidate () with
      | None -> finish true
      | Some q ->
          probe.Probe.dpf_steps <- probe.Probe.dpf_steps + 1;
          let col = cols.(q) in
          let col' = col - 1 in
          te := !te -. ctx.dur.(q).(col) +. ctx.dur.(q).(col');
          cols.(q) <- col';
          if col' = ctx.window_start then fixed_e.(q) <- true;
          upgrade ()
  in
  upgrade ()

(* --- incremental CalculateDPF ---

   For a fixed tagged position the trial loop sweeps the tagged task's
   column; everything else about the hypothetical state is a function
   of *how many* upgrade steps the deadline forces.  The upgrade
   schedule itself — which free task moves, from which column — is
   fixed by the energy order and does not depend on the trial column,
   so [begin_pos] materializes it once (with compensated prefix sums of
   its duration/energy deltas) and [trial] only moves the tagged column
   (one O(1) patch) and slides the applied-step count to the smallest
   feasible value.  Total time and energy then read off the prefix
   sums; the current-increase count is maintained exactly under each
   single-column patch; the DPF numerator *is* the applied-step count,
   because every step raises one free task's slowdown weight by exactly
   1/span.

   The column sweep visits slower-to-faster trial columns, so with
   monotone durations the required step count only ever decreases
   within a position: the walk below is amortized O(1) per trial. *)

(* Patch one task's column in the live scratch state, keeping the
   current-increase count of the sequence exact.  Only the two pairs
   adjacent to the task's position can change. *)
let[@inline] cur_at ctx p =
  let v = ctx.seq.(p) in
  ctx.cur.(v).(ctx.scratch_cols.(v))

let set_col ctx v c =
  let p = ctx.pos_of.(v) in
  if p > 0 && cur_at ctx p > cur_at ctx (p - 1) then
    ctx.inc_count <- ctx.inc_count - 1;
  if p < ctx.n - 1 && cur_at ctx (p + 1) > cur_at ctx p then
    ctx.inc_count <- ctx.inc_count - 1;
  ctx.scratch_cols.(v) <- c;
  if p > 0 && cur_at ctx p > cur_at ctx (p - 1) then
    ctx.inc_count <- ctx.inc_count + 1;
  if p < ctx.n - 1 && cur_at ctx (p + 1) > cur_at ctx p then
    ctx.inc_count <- ctx.inc_count + 1

(* Stage the tagged position: blit the committed columns once (the
   only O(n) copy this position will make), compute the base aggregates
   excluding the tagged task, and materialize the upgrade schedule.
   [cols] must hold the committed suffix, with every free task and the
   tagged task parked at the lowest-power column. *)
let begin_pos ctx ~cols ~pos =
  let n = ctx.n in
  let t = ctx.seq.(pos) in
  ctx.tagged_pos <- pos;
  ctx.tagged_task <- t;
  Array.blit cols 0 ctx.scratch_cols 0 n;
  let te = ctx.acc and en = ctx.acc2 in
  kacc_clear te;
  kacc_clear en;
  for i = 0 to n - 1 do
    if i <> t then begin
      let c = ctx.scratch_cols.(i) in
      kacc_add te ctx.dur.(i).(c);
      kacc_add en ctx.energy.(i).(c)
    end
  done;
  ctx.base_te <- kacc_sum te;
  ctx.base_energy <- kacc_sum en;
  (* exact increase count of the entry state *)
  let count = ref 0 in
  if n > 1 then begin
    let prev = ref (cur_at ctx 0) in
    for p = 1 to n - 1 do
      let c = cur_at ctx p in
      if c > !prev then incr count;
      prev := c
    done
  end;
  ctx.inc_count <- !count;
  (* upgrade schedule: free tasks in increasing-average-energy order,
     each from the lowest-power column down to the window edge — the
     exact visit order of the reference upgrade loop, flattened *)
  let dt = ctx.acc and de = ctx.acc2 in
  kacc_clear dt;
  kacc_clear de;
  ctx.cum_dt.(0) <- 0.0;
  ctx.cum_de.(0) <- 0.0;
  let s = ref 0 in
  for k = 0 to n - 1 do
    let q = ctx.energy_order.(k) in
    if ctx.pos_of.(q) < pos then
      for c = ctx.m - 1 downto ctx.window_start + 1 do
        ctx.step_task.(!s) <- q;
        kacc_add dt (ctx.dur.(q).(c - 1) -. ctx.dur.(q).(c));
        kacc_add de (ctx.energy.(q).(c - 1) -. ctx.energy.(q).(c));
        incr s;
        ctx.cum_dt.(!s) <- kacc_sum dt;
        ctx.cum_de.(!s) <- kacc_sum de
      done
  done;
  ctx.nsteps <- !s;
  ctx.applied <- 0

(* Evaluate the tagged task at column [j] against the staged position:
   O(1) plus the (amortized O(1)) slide of the applied-step count.
   Returns (enr, cif, dpf) for the hypothetical completion. *)
let trial ctx ~j =
  let t = ctx.tagged_task in
  if ctx.scratch_cols.(t) <> j then set_col ctx t j;
  let te_entry = ctx.base_te +. ctx.dur.(t).(j) in
  let d = ctx.deadline in
  let feasible k = te_entry +. ctx.cum_dt.(k) <= d +. eps in
  while ctx.applied > 0 && feasible (ctx.applied - 1) do
    let s = ctx.applied - 1 in
    let q = ctx.step_task.(s) in
    set_col ctx q (ctx.scratch_cols.(q) + 1);
    ctx.applied <- s
  done;
  let probe = Probe.local () in
  while ctx.applied < ctx.nsteps && not (feasible ctx.applied) do
    let q = ctx.step_task.(ctx.applied) in
    probe.Probe.dpf_steps <- probe.Probe.dpf_steps + 1;
    set_col ctx q (ctx.scratch_cols.(q) - 1);
    ctx.applied <- ctx.applied + 1
  done;
  let infeasible = not (feasible ctx.applied) in
  let enr =
    if ctx.emax -. ctx.emin <= 0.0 then 0.0
    else
      (ctx.base_energy +. ctx.energy.(t).(j) +. ctx.cum_de.(ctx.applied)
      -. ctx.emin)
      /. (ctx.emax -. ctx.emin)
  in
  let cif =
    if ctx.n <= 1 then 0.0
    else float_of_int ctx.inc_count /. float_of_int (ctx.n - 1)
  in
  let dpf =
    if infeasible then Float.infinity
    else if ctx.tagged_pos = 0 then
      Metrics.slack_ratio ~deadline:d
        ~time:(te_entry +. ctx.cum_dt.(ctx.applied))
    else if ctx.window_start = ctx.m - 1 then 0.0
    else
      float_of_int ctx.applied
      /. float_of_int (ctx.m - 1 - ctx.window_start)
      /. float_of_int ctx.tagged_pos
  in
  (enr, cif, dpf)

let mk_result ctx (enr, cif, dpf) g =
  { enr;
    cif;
    dpf;
    hypothetical = Assignment.of_list g (Array.to_list ctx.scratch_cols) }

let calculate_dpf_reference (cfg : Config.t) g ~sequence ~assignment
    ~tagged_pos ~window_start =
  let ctx = make_ctx cfg g ~seq:sequence ~window_start in
  List.iteri
    (fun i col -> ctx.scratch_cols.(i) <- col)
    (Assignment.to_list assignment);
  mk_result ctx (calculate_dpf_reference_ctx ctx ~tagged_pos) g

let calculate_dpf (cfg : Config.t) g ~sequence ~assignment ~tagged_pos
    ~window_start =
  let ctx = make_ctx cfg g ~seq:sequence ~window_start in
  let cols = Array.make ctx.n 0 in
  List.iteri (fun i col -> cols.(i) <- col) (Assignment.to_list assignment);
  let parked_free =
    let ok = ref true in
    for pos = 0 to tagged_pos - 1 do
      if cols.(ctx.seq.(pos)) <> ctx.m - 1 then ok := false
    done;
    !ok
  in
  if ctx.mono_dur && parked_free then begin
    (* [begin_pos] expects the tagged task parked at lowest power;
       [trial] then patches it to the actual tagged column. *)
    let t = ctx.seq.(tagged_pos) in
    let j = cols.(t) in
    cols.(t) <- ctx.m - 1;
    begin_pos ctx ~cols ~pos:tagged_pos;
    mk_result ctx (trial ctx ~j) g
  end
  else begin
    Array.blit cols 0 ctx.scratch_cols 0 ctx.n;
    mk_result ctx (calculate_dpf_reference_ctx ctx ~tagged_pos) g
  end

let suitability (cfg : Config.t) ~sr ~cr ~enr ~cif ~dpf =
  if dpf = Float.infinity then Float.infinity
  else begin
    let w = cfg.Config.weights in
    (w.Config.sr *. sr) +. (w.Config.cr *. cr)
    +. (w.Config.enr *. enr)
    +. (w.Config.cif *. cif)
    +. (w.Config.dpf *. dpf)
  end

let choose_impl ~incremental (cfg : Config.t) g ~sequence ~window_start =
  let m = Graph.num_points g in
  if window_start < 0 || window_start >= m then
    invalid_arg "Choose.choose_design_points: window out of range";
  if not (Analysis.is_topological g sequence) then
    invalid_arg "Choose.choose_design_points: invalid sequence";
  Batsched_obs.Sink.with_span cfg.Config.obs "choose" @@ fun () ->
  let probe = Probe.local () in
  probe.Probe.choose_calls <- probe.Probe.choose_calls + 1;
  (* convergence record per call: attribute the upgrade-loop work
     (dpf_steps delta) to this window *)
  let dpf0 =
    if Batsched_obs.Events.is_active cfg.Config.events then
      probe.Probe.dpf_steps
    else 0
  in
  Fun.protect ~finally:(fun () ->
      if Batsched_obs.Events.is_active cfg.Config.events then
        Batsched_obs.Events.emit cfg.Config.events "choose"
          [ ("window_start", Batsched_obs.Events.I window_start);
            ("dpf_steps", Batsched_obs.Events.I (probe.Probe.dpf_steps - dpf0))
          ])
  @@ fun () ->
  let seq = Array.of_list sequence in
  let ctx = make_ctx cfg g ~seq ~window_start in
  let n = ctx.n in
  let d = cfg.Config.deadline in
  let lowest = m - 1 in
  (* The incremental walk needs monotone durations; fall back to the
     reference trials (still hoisted-context) on exotic instances. *)
  let use_incremental = incremental && ctx.mono_dur in
  (* Committed columns of the fixed suffix; free tasks read as lowest
     power, which is also their hypothetical parking column. *)
  let cols = Array.make n lowest in
  (* The paper fixes the last task at the lowest-power column outright
     ("S(n,m) = 1"), which can bust a tight deadline before selection
     even starts.  We take the slowest column that leaves the rest of
     the sequence feasible at the window's fastest column — identical
     to the paper whenever its own examples apply (see DESIGN.md). *)
  let last = seq.(n - 1) in
  let rest_fastest =
    Kahan.sum_fn (n - 1) (fun pos -> ctx.dur.(seq.(pos)).(window_start))
  in
  let last_col =
    let rec pick j =
      if j <= window_start then window_start
      else if ctx.dur.(last).(j) +. rest_fastest <= d +. 1e-9 then j
      else pick (j - 1)
    in
    pick lowest
  in
  if ctx.dur.(last).(last_col) +. rest_fastest > d +. 1e-9 then
    raise Config.Deadline_unmeetable;
  cols.(last) <- last_col;
  let tsum = ref ctx.dur.(last).(last_col) in
  for pos = n - 2 downto 0 do
    let t = seq.(pos) in
    let best = ref None in
    if use_incremental then begin_pos ctx ~cols ~pos;
    for j = lowest downto window_start do
      let ttemp = !tsum +. ctx.dur.(t).(j) in
      let sr = Metrics.slack_ratio ~deadline:d ~time:ttemp in
      let cr = current_ratio ctx ctx.cur.(t).(j) in
      let enr, cif, dpf =
        if use_incremental then trial ctx ~j
        else begin
          Array.blit cols 0 ctx.scratch_cols 0 n;
          ctx.scratch_cols.(t) <- j;
          calculate_dpf_reference_ctx ctx ~tagged_pos:pos
        end
      in
      let b = suitability cfg ~sr ~cr ~enr ~cif ~dpf in
      match !best with
      | Some (_, best_b) when best_b <= b -> ()
      | _ -> if b < Float.infinity then best := Some (j, b)
    done;
    match !best with
    | None -> raise Config.Deadline_unmeetable
    | Some (col, _) ->
        cols.(t) <- col;
        tsum := !tsum +. ctx.dur.(t).(col)
  done;
  Assignment.of_list g (Array.to_list cols)

let choose_design_points cfg g ~sequence ~window_start =
  choose_impl ~incremental:true cfg g ~sequence ~window_start

let choose_design_points_reference cfg g ~sequence ~window_start =
  choose_impl ~incremental:false cfg g ~sequence ~window_start
