(** Persistent run registry: one JSON manifest per instrumented run.

    Manifests live in a ledger directory ([$BATSCHED_LEDGER], else
    [~/.basched/runs], else [--ledger DIR]) and record provenance
    (git rev, instance hash, model, knobs, seed, pool size), outcome
    (wall time, final sigma/finish), a work-counter snapshot and a
    downsampled best-so-far convergence curve.  [basched runs] lists
    and inspects them; [basched profile] aggregates them into anytime
    performance profiles. *)

val schema_version : int
(** Bumped on any incompatible manifest change; {!load} skips entries
    from other versions. *)

type spec = {
  tool : string;           (** ["basched"] | ["battsim"] | ["bench"] *)
  label : string;          (** algo/scenario label, e.g. ["anneal"] *)
  instance : string;       (** instance file path or scenario name *)
  instance_hash : string;  (** content hash of the instance, if any *)
  model : string;
  seed : int;
  pool_size : int;
  knobs : (string * string) list;  (** flag name -> rendered value *)
  wall_s : float;
  sigma : float option;    (** final objective (lifetime proxy) *)
  finish : float option;   (** final makespan, when meaningful *)
  events_path : string option;
  curve : (float * float * float) list;
      (** best-so-far improvements as (seconds, evals, sigma) *)
}
(** What the writing tool knows about the run it just finished.  The
    counter snapshot is taken from {!Batsched_numeric.Probe.totals} at
    {!record} time. *)

type entry = {
  id : string;
  schema : int;
  created : float;         (** epoch seconds *)
  e_tool : string;
  e_label : string;
  e_instance : string;
  e_instance_hash : string;
  e_model : string;
  e_seed : int;
  e_pool_size : int;
  git_rev : string;
  e_wall_s : float;
  e_sigma : float option;
  e_finish : float option;
  e_events_path : string option;
  e_knobs : (string * string) list;
  counters : (string * float) list;
  e_curve : (float * float * float) list;
}

val default_dir : unit -> string
(** [$BATSCHED_LEDGER] when set and nonempty, else [~/.basched/runs]. *)

val record : dir:string -> spec -> (string, string) result
(** Write one manifest; returns its id.  Creates [dir] as needed and
    garbage-collects the oldest manifests past the retention limit
    ([$BATSCHED_LEDGER_KEEP], default 1000).  Never raises — a ledger
    failure must not fail the run it describes. *)

val load : string -> entry list * int
(** All readable manifests in a directory, oldest first, plus a count
    of files skipped (unparseable or wrong schema version).  An absent
    directory reads as empty. *)

val find : string -> string -> (entry, string) result
(** [find dir id_or_prefix] resolves an exact id, else a unique
    prefix; the error describes no-match and ambiguity. *)

val gc : ?keep:int -> string -> int
(** Delete the oldest manifests beyond [keep]; returns the number
    removed. *)

val git_rev : unit -> string
(** Short git revision of the working directory, or ["unknown"]. *)
