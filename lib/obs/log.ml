type level = Quiet | Error | Warn | Info | Debug

let severity = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let label = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let of_string = function
  | "quiet" -> Some Quiet
  | "error" -> Some Error
  | "warn" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current = Atomic.make Quiet

let set_level l = Atomic.set current l

let level () = Atomic.get current

let enabled l = l <> Quiet && severity l <= severity (Atomic.get current)

let default_output line =
  prerr_string line;
  prerr_newline ();
  flush stderr

let output = Atomic.make default_output

let set_output f = Atomic.set output f

let log l msg =
  if enabled l then
    (Atomic.get output) (Printf.sprintf "basched: [%s] %s" (label l) (msg ()))

let err msg = log Error msg

let warn msg = log Warn msg

let info msg = log Info msg

let debug msg = log Debug msg
