type level = Quiet | Error | Warn | Info | Debug

let severity = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let label = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let of_string = function
  | "quiet" -> Some Quiet
  | "error" -> Some Error
  | "warn" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current = Atomic.make Quiet

let set_level l = Atomic.set current l

let level () = Atomic.get current

let enabled l = l <> Quiet && severity l <= severity (Atomic.get current)

let default_output line =
  prerr_string line;
  prerr_newline ();
  flush stderr

let output = Atomic.make default_output

let set_output f = Atomic.set output f

let log l msg =
  if enabled l then
    (Atomic.get output) (Printf.sprintf "basched: [%s] %s" (label l) (msg ()))

(* Environment hooks: cram tests and CI want telemetry without
   plumbing flags through every harness.  Unknown BATSCHED_LOG values
   are reported (at the requested-by-accident cost of one stderr line)
   rather than silently ignored. *)
let init_from_env () =
  match Sys.getenv_opt "BATSCHED_LOG" with
  | None | Some "" -> ()
  | Some s -> (
      match of_string s with
      | Some l -> set_level l
      | None ->
          default_output
            (Printf.sprintf "basched: [warn] BATSCHED_LOG=%s not a level" s))

let env_stats () =
  match Sys.getenv_opt "BATSCHED_STATS" with
  | Some "1" | Some "true" -> true
  | _ -> false

(* a set-but-empty variable reads as unset, so `BATSCHED_EVENTS= cmd`
   disables an outer-scope export instead of writing a file named "" *)
let env_opt name =
  match Sys.getenv_opt name with
  | Some "" | None -> None
  | Some v -> Some v

let err msg = log Error msg

let warn msg = log Warn msg

let info msg = log Info msg

let debug msg = log Debug msg
