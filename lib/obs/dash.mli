(** Terminal dashboard state for [basched watch].

    The state is a pure fold over event records: no wall-clock reads,
    no dependence on how the byte stream was chunked.  Tailing a live
    file and replaying the finished file therefore reach identical
    states, and {!summary} prints the same final report either way —
    the property the watch tests pin down. *)

type t

val empty : t

val update : t -> Json.t -> t
(** Fold one event record into the state.  Unknown kinds still count
    toward the record total. *)

val feed_all : t -> Json.t list -> t

val note_skipped : t -> int -> t
(** Record [n] torn/unparseable lines reported by the tailer. *)

val finished : t -> bool
(** Whether a terminal record ([run_done]) has been seen. *)

val summary : t -> string
(** Plain-text final report — identical for live and replay. *)

val render : ?width:int -> t -> string
(** One ANSI frame (cursor home + clear-to-end; no full clear, so the
    repaint does not flicker).  Hand-rolled escapes, no curses. *)

val sparkline : float list -> string
(** Unicode block-height sparkline of the values, oldest first. *)
