(** Anytime-event stream: a JSONL file tracing search convergence.

    Each record is one JSON object on its own line with two standard
    fields — ["kind"] (the record type) and ["t_ns"] (monotonic
    nanoseconds since the stream was created) — plus whatever the
    emission site attaches.  The schema per kind is documented in
    EXPERIMENTS.md; [basched report] renders a stream into a summary
    table and [basched watch] tails one live.

    The default stream is {e live}: every record is written (one whole
    line, under the stream mutex, flushed) at emission, so an external
    tailer sees convergence while the run is in flight — at worst it
    observes one torn trailing line mid-write, never interleaved ones.
    Emission is safe from multiple domains.  The {!noop} stream makes
    every call free; hot call sites should still guard with
    {!is_active} to avoid building the field list. *)

type field = I of int | F of float | S of string | B of bool

type record = {
  seq : int;          (** emission order, 0-based *)
  t_ns : int64;       (** monotonic ns since stream creation *)
  kind : string;
  fields : (string * field) list;
}

type t

val noop : t
(** The disabled stream: {!emit} and {!close} are no-ops. *)

val is_active : t -> bool

val now_ns : unit -> int64
(** The stream's monotonic clock, for callers that want to attach
    duration fields consistent with [t_ns]. *)

val create : ?live:bool -> string -> t
(** [create path] opens (truncates) [path] for writing.  With
    [~live:true] (the default) records reach the file as they are
    emitted; with [~live:false] everything renders once at {!close}.
    @raise Sys_error if the file cannot be opened. *)

val create_memory : unit -> t
(** An active stream with no file: records accumulate for {!snapshot}
    only.  Used by the run ledger to capture a convergence curve when
    no [--events] file was requested. *)

val create_channel : out_channel -> t
(** An active stream rendering each record live to a {e borrowed}
    channel and retaining nothing in memory — the sink for
    long-running daemons ([basched serve] writes responses to stdout
    this way), where accumulating records would grow without bound.
    {!snapshot} returns [[]]; {!close} flushes but does not close the
    channel. *)

val with_tags : t -> (string * field) list -> t
(** [with_tags t tags] is a derived stream sharing [t]'s clock, mutex
    and sink, with [tags] appended to every record's fields — how the
    serve daemon stamps one request's search events with its request
    id on the shared response stream.  Derived streams nest (tags
    accumulate); {!close} on a derived stream is a no-op — close the
    underlying [t] instead. *)

val emit : t -> string -> (string * field) list -> unit
(** [emit t kind fields] appends one record.  Non-finite floats are
    written as [null] so the stream stays parseable JSON. *)

val snapshot : t -> record list
(** All records emitted so far, oldest first.  [[]] on {!noop}. *)

val close : t -> unit
(** Flush and close the underlying channel (no-op for
    {!create_memory} streams).  Required for buffered records to reach
    disk; double-close raises like [close_out] does. *)
