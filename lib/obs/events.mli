(** Anytime-event stream: a JSONL file tracing search convergence.

    Each record is one JSON object on its own line with two standard
    fields — ["kind"] (the record type) and ["t_ns"] (monotonic
    nanoseconds since the stream was created) — plus whatever the
    emission site attaches.  The schema per kind is documented in
    EXPERIMENTS.md; [basched report] renders a stream into a summary
    table.

    Emission is buffered (flushed once, at {!close}) and safe from
    multiple domains — lines never interleave.  The {!noop} stream
    makes every call free; hot call sites should still guard with
    {!is_active} to avoid building the field list. *)

type field = I of int | F of float | S of string | B of bool

type t

val noop : t
(** The disabled stream: {!emit} and {!close} are no-ops. *)

val is_active : t -> bool

val create : string -> t
(** [create path] opens (truncates) [path] for writing.
    @raise Sys_error if the file cannot be opened. *)

val emit : t -> string -> (string * field) list -> unit
(** [emit t kind fields] appends one record.  Non-finite floats are
    written as [null] so the stream stays parseable JSON. *)

val close : t -> unit
(** Flush and close the underlying channel.  Required for the records
    to reach disk; double-close raises like [close_out] does. *)
