type span = {
  track : int;
  name : string;
  start_ns : int64;
  dur_ns : int64;
  alloc_words : float;
}

type state = {
  mutex : Mutex.t;
  epoch_ns : int64;
  mutable merged : span list;
}

type t = Noop | Active of state

let noop = Noop

let is_active = function Noop -> false | Active _ -> true

(* Per-domain span buffer: spans are recorded locally (no locks on the
   hot path) and batch-merged under the sink mutex when the domain
   leaves its pool region (or at export, for the main domain). *)
type buffer = { mutable spans : span list; mutable track : int }

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { spans = []; track = 0 })

(* The sink pool-worker hooks flush into.  [Pool] hooks are global and
   worker domains carry no sink reference, so only one sink can collect
   spans at a time: [create] supersedes the previous one (whose already
   merged spans stay readable). *)
let ambient : t Atomic.t = Atomic.make Noop

let flush_local st =
  let b = Domain.DLS.get buffer_key in
  match b.spans with
  | [] -> ()
  | spans ->
      Mutex.lock st.mutex;
      st.merged <- List.rev_append spans st.merged;
      Mutex.unlock st.mutex;
      b.spans <- []

let pool_hooks =
  lazy
    (Batsched_numeric.Pool.set_worker_hooks
       ~on_start:(fun w -> (Domain.DLS.get buffer_key).track <- w)
       ~on_finish:(fun _ ->
         (match Atomic.get ambient with
         | Noop -> (Domain.DLS.get buffer_key).spans <- []
         | Active st -> flush_local st);
         (* histogram shards follow the same join discipline as spans *)
         Histogram.flush_local ();
         (Domain.DLS.get buffer_key).track <- 0))

(* Let [Histogram.enable] force these hooks without depending on this
   module (which depends on it). *)
let () = Histogram.set_pool_hook_installer (fun () -> Lazy.force pool_hooks)

let create () =
  Lazy.force pool_hooks;
  let st =
    { mutex = Mutex.create ();
      epoch_ns = Monotonic_clock.now ();
      merged = [] }
  in
  (* Drop any spans a superseded sink left unflushed in this domain so
     they cannot leak into the new sink's merge. *)
  (Domain.DLS.get buffer_key).spans <- [];
  let t = Active st in
  Atomic.set ambient t;
  t

let with_span t name f =
  match t with
  | Noop -> f ()
  | Active _ ->
      let b = Domain.DLS.get buffer_key in
      let w0 = Gc.minor_words () in
      let t0 = Monotonic_clock.now () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = Monotonic_clock.now () in
          let w1 = Gc.minor_words () in
          let dur_ns = Int64.sub t1 t0 in
          b.spans <-
            { track = b.track; name; start_ns = t0; dur_ns;
              alloc_words = w1 -. w0 }
            :: b.spans;
          if Histogram.enabled () then
            Histogram.observe ("span/" ^ name) (Int64.to_float dur_ns))
        f

let compare_span (a : span) (b : span) =
  let c = Int.compare a.track b.track in
  if c <> 0 then c
  else
    let c = Int64.compare a.start_ns b.start_ns in
    if c <> 0 then c
    else
      (* longer first, so an enclosing span precedes the children it
         shares a start timestamp with *)
      let c = Int64.compare b.dur_ns a.dur_ns in
      if c <> 0 then c else String.compare a.name b.name

let spans t =
  match t with
  | Noop -> []
  | Active st ->
      (* Flush this domain's buffer only if [t] is still the ambient
         sink — once superseded by a later [create], the buffer holds
         the {e new} sink's spans and must not leak into this one. *)
      if Atomic.get ambient == t then flush_local st;
      Mutex.lock st.mutex;
      let merged = st.merged in
      Mutex.unlock st.mutex;
      List.sort compare_span merged

let epoch_ns = function Noop -> 0L | Active st -> st.epoch_ns
