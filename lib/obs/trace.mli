(** Chrome trace-event export.

    Serializes a sink's spans in the Trace Event Format's JSON-object
    form (complete ["X"] events plus thread-name metadata), which
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto} load
    directly.  One track ([tid]) per pool worker slot: [tid 0] is the
    main domain, [tid w] the worker that took stride [w] of a parallel
    region.  Timestamps are microseconds from the sink's creation. *)

val to_string : Sink.t -> string
(** The complete JSON document.  A {!Sink.noop} sink yields a valid
    trace with metadata only. *)

val write : Sink.t -> string -> unit
(** [write sink path] saves {!to_string} to [path].
    @raise Sys_error as [open_out]. *)
