(** Noise-aware comparison of two bench [--json] snapshots.

    Joins rows by scenario name (stripping the bechamel group prefix
    ["batsched/"]), sets a per-scenario threshold from the OLS fit
    quality on both sides plus the rerun-guard dispersion, and
    classifies each pair.  Additionally pairs ["X-reference/..."] rows
    in the {e new} snapshot with their optimized twins
    (["X-delta/..."] or ["X/..."]) — a machine-independent speedup
    check usable even when the old snapshot predates the scenario.

    The threshold per scenario is

    {v 0.10 + 0.5*(sqrt(1-r2_old) + sqrt(1-r2_new)) + disp_old + disp_new v}

    where [disp] is [|ns_first - ns_final| / ns_final] when the bench
    rerun guard re-measured the row.  Rows with [r_square] below 0.5
    on either side (or tagged [low_confidence]) never fail the gate:
    they classify as {!Low_confidence} and only warn. *)

type row = {
  name : string;  (** normalized: group prefix stripped *)
  ns_per_run : float;
  r_square : float;
  low_confidence : bool;
  ns_per_run_first : float option;
      (** first estimate, when the rerun guard re-measured the row *)
  counters : (string * float) list;
      (** the row's work-profile snapshot (the ["counters"] object);
          deterministic per scenario, so diffs are algorithmic changes *)
}

type verdict = Improved | Flat | Regressed | Low_confidence

type comparison = {
  scenario : string;
  old_ns : float;
  new_ns : float;
  ratio : float;  (** new/old after normalization *)
  threshold : float;
  verdict : verdict;
}

type counter_diff = {
  cd_scenario : string;
  cd_counter : string;
  cd_old : float;
  cd_new : float;
}

type report = {
  joined : comparison list;  (** rows present in both snapshots *)
  pairs : comparison list;  (** in-file reference pairs of the new one *)
  added : string list;
  removed : string list;
  norm_factor : float option;
      (** the median ratio divided out, when [~normalize] was set *)
  work : counter_diff list;
      (** counters that changed between joined rows — informational
          context for the timing verdicts; never affects
          {!has_confident_regression} *)
}

val row_of_json : Json.t -> row option
(** Parse one bench row object; [None] if name/ns_per_run missing. *)

val rows_of_json : Json.t -> row list
(** Rows of a whole snapshot (the ["rows"] array). *)

val load_file : string -> row list

val classify_pair :
  ?norm:float -> scenario:string -> row -> row -> comparison
(** [classify_pair ~scenario old new] applies the threshold rule to
    one pair; [norm] divides the new measurement first (default 1). *)

val compare_rows : ?normalize:bool -> row list -> row list -> report
(** Full comparison.  [~normalize:true] divides all new measurements
    by the median joined ratio, cancelling overall machine speed — use
    for cross-machine comparisons (CI versus a committed baseline);
    leave off when both snapshots come from the same machine. *)

val compare_files : ?normalize:bool -> string -> string -> report

val has_confident_regression : report -> bool
(** True when any row (joined or pair) classified {!Regressed} —
    low-confidence rows never count. *)

val verdict_string : verdict -> string

val to_string : report -> string
(** Render the report as an aligned text table with a summary line. *)
