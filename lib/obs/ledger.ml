(* Persistent append-only run registry.

   Every instrumented invocation (basched, battsim, bench) can record
   one manifest — provenance (git rev, instance hash, model, searcher,
   knobs, seed, pool size), outcome (wall time, final sigma/finish), a
   counter snapshot, and a downsampled quality-vs-time curve pulled
   from the run's event stream — as one JSON file in a ledger
   directory.  One file per run keeps appends atomic-enough (a torn
   manifest only loses itself; [load] skips it with a count) and makes
   GC a plain unlink.

   The directory defaults to [$BATSCHED_LEDGER], else
   [~/.basched/runs]; binaries only write when a ledger was requested
   (flag or env var), so tests and ad-hoc runs stay side-effect-free.

   File names are [run-<epoch-ms>-<pid>-<n>.json]: zero-padded epoch
   milliseconds make lexicographic order creation order, the pid and a
   process-local counter break same-millisecond collisions between and
   within processes.

   Schema versioning: every manifest carries [schema_version]; [load]
   keeps entries whose major version matches and counts the rest as
   skipped, so an old binary on a new ledger degrades loudly, not
   wrongly. *)

let schema_version = 1

type spec = {
  tool : string;
  label : string;
  instance : string;
  instance_hash : string;
  model : string;
  seed : int;
  pool_size : int;
  knobs : (string * string) list;
  wall_s : float;
  sigma : float option;
  finish : float option;
  events_path : string option;
  curve : (float * float * float) list;  (* t_s, evals, best sigma *)
}

type entry = {
  id : string;
  schema : int;
  created : float;
  e_tool : string;
  e_label : string;
  e_instance : string;
  e_instance_hash : string;
  e_model : string;
  e_seed : int;
  e_pool_size : int;
  git_rev : string;
  e_wall_s : float;
  e_sigma : float option;
  e_finish : float option;
  e_events_path : string option;
  e_knobs : (string * string) list;
  counters : (string * float) list;
  e_curve : (float * float * float) list;
}

let default_keep = 1000

let default_dir () =
  match Sys.getenv_opt "BATSCHED_LEDGER" with
  | Some d when d <> "" -> d
  | _ ->
      let home =
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> h
        | _ -> "."
      in
      Filename.concat (Filename.concat home ".basched") "runs"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* --- manifest rendering (hand-rolled, like every exporter here) --- *)

(* roundtrip-exact float rendering, same scheme as [Events]: compact
   [%.12g] unless it loses ulps, then [%.17g] *)
let add_num buf f =
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    if String.for_all (function '-' | '0' .. '9' -> true | _ -> false) s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let add_str buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Json.escape_string s);
  Buffer.add_char buf '"'

let render_manifest ~id ~created spec counters =
  let buf = Buffer.create 2048 in
  let field ?(last = false) name render =
    Buffer.add_string buf "  \"";
    Buffer.add_string buf name;
    Buffer.add_string buf "\": ";
    render ();
    if not last then Buffer.add_char buf ',';
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf "{\n";
  field "schema_version" (fun () ->
      Buffer.add_string buf (string_of_int schema_version));
  field "id" (fun () -> add_str buf id);
  field "created" (fun () -> add_num buf created);
  field "tool" (fun () -> add_str buf spec.tool);
  field "label" (fun () -> add_str buf spec.label);
  field "instance" (fun () -> add_str buf spec.instance);
  field "instance_hash" (fun () -> add_str buf spec.instance_hash);
  field "model" (fun () -> add_str buf spec.model);
  field "seed" (fun () -> Buffer.add_string buf (string_of_int spec.seed));
  field "pool_size" (fun () ->
      Buffer.add_string buf (string_of_int spec.pool_size));
  field "git_rev" (fun () -> add_str buf (git_rev ()));
  field "wall_s" (fun () -> add_num buf spec.wall_s);
  field "sigma" (fun () ->
      match spec.sigma with
      | Some s -> add_num buf s
      | None -> Buffer.add_string buf "null");
  field "finish" (fun () ->
      match spec.finish with
      | Some f -> add_num buf f
      | None -> Buffer.add_string buf "null");
  field "events_path" (fun () ->
      match spec.events_path with
      | Some p -> add_str buf p
      | None -> Buffer.add_string buf "null");
  field "knobs" (fun () ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          add_str buf k;
          Buffer.add_string buf ": ";
          add_str buf v)
        spec.knobs;
      Buffer.add_char buf '}');
  field "counters" (fun () ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          add_str buf k;
          Buffer.add_string buf ": ";
          Buffer.add_string buf (string_of_int v))
        counters;
      Buffer.add_char buf '}');
  field ~last:true "curve" (fun () ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i (t, e, q) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '[';
          add_num buf t;
          Buffer.add_string buf ", ";
          add_num buf e;
          Buffer.add_string buf ", ";
          add_num buf q;
          Buffer.add_char buf ']')
        spec.curve;
      Buffer.add_char buf ']');
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- writing --- *)

let counter = Atomic.make 0

let keep_limit () =
  match Sys.getenv_opt "BATSCHED_LEDGER_KEEP" with
  | Some s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> k
      | _ -> default_keep)
  | None -> default_keep

let manifest_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let names = Array.to_list names in
      List.filter
        (fun n ->
          String.length n > 9
          && String.sub n 0 4 = "run-"
          && Filename.check_suffix n ".json")
        names
      |> List.sort String.compare

(* Oldest-first deletion down to [keep] manifests.  File names embed
   the creation time, so lexicographic order is age order and GC needs
   no parsing. *)
let gc ?(keep = keep_limit ()) dir =
  let files = manifest_files dir in
  let excess = List.length files - keep in
  if excess <= 0 then 0
  else begin
    List.iteri
      (fun i n ->
        if i < excess then
          try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      files;
    excess
  end

let record ~dir spec =
  try
    mkdir_p dir;
    let created = Unix.gettimeofday () in
    let n = Atomic.fetch_and_add counter 1 in
    let id =
      Printf.sprintf "run-%013.0f-%05d-%03d"
        (created *. 1000.0)
        (Unix.getpid () mod 100_000)
        (n mod 1000)
    in
    let counters =
      let c = Batsched_numeric.Probe.totals () in
      List.map (fun (name, get) -> (name, get c)) Batsched_numeric.Probe.fields
      @ Batsched_numeric.Probe.named_counts c
    in
    let path = Filename.concat dir (id ^ ".json") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (render_manifest ~id ~created spec counters));
    ignore (gc dir);
    Ok id
  with Sys_error msg | Unix.Unix_error (_, msg, _) -> Error msg

(* --- reading --- *)

let entry_of_json j =
  let str name = Option.value ~default:"" (Json.str_field name j) in
  let num name = Json.num_field name j in
  let int_of name = Option.map int_of_float (num name) in
  match (Json.num_field "schema_version" j, Json.str_field "id" j) with
  | Some v, Some id when int_of_float v = schema_version ->
      let pairs name to_v =
        match Json.field name j with
        | Some (Json.Obj kvs) ->
            List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) (to_v v)) kvs
        | _ -> []
      in
      let curve =
        match Json.field "curve" j with
        | Some (Json.Arr pts) ->
            List.filter_map
              (function
                | Json.Arr [ Json.Num t; Json.Num e; Json.Num q ] ->
                    Some (t, e, q)
                | _ -> None)
              pts
        | _ -> []
      in
      Some
        { id;
          schema = int_of_float v;
          created = Option.value ~default:0.0 (num "created");
          e_tool = str "tool";
          e_label = str "label";
          e_instance = str "instance";
          e_instance_hash = str "instance_hash";
          e_model = str "model";
          e_seed = Option.value ~default:0 (int_of "seed");
          e_pool_size = Option.value ~default:1 (int_of "pool_size");
          git_rev = str "git_rev";
          e_wall_s = Option.value ~default:0.0 (num "wall_s");
          e_sigma = num "sigma";
          e_finish = num "finish";
          e_events_path = Json.str_field "events_path" j;
          e_knobs = pairs "knobs" Json.to_str;
          counters = pairs "counters" Json.to_num;
          e_curve = curve }
  | _ -> None

let load dir =
  let files = manifest_files dir in
  let skipped = ref 0 in
  let entries =
    List.filter_map
      (fun n ->
        match Json.of_file (Filename.concat dir n) with
        | j -> (
            match entry_of_json j with
            | Some e -> Some e
            | None ->
                incr skipped;
                None)
        | exception (Json.Bad_json _ | Sys_error _) ->
            incr skipped;
            None)
      files
  in
  let entries =
    List.sort
      (fun a b ->
        let c = Float.compare a.created b.created in
        if c <> 0 then c else String.compare a.id b.id)
      entries
  in
  (entries, !skipped)

let find dir needle =
  let entries, _ = load dir in
  let matches prefix e =
    let n = String.length prefix in
    String.length e.id >= n && String.sub e.id 0 n = prefix
  in
  match List.find_opt (fun e -> e.id = needle) entries with
  | Some e -> Ok e
  | None -> (
      match List.filter (matches needle) entries with
      | [ e ] -> Ok e
      | [] -> Error (Printf.sprintf "no run matching %S in %s" needle dir)
      | many ->
          Error
            (Printf.sprintf "ambiguous id %S: %s" needle
               (String.concat ", " (List.map (fun e -> e.id) many))))
