(* Anytime-event stream: one JSON object per line.

   The searchers are anytime algorithms, so their interesting output is
   the quality-vs-time trajectory, not the endpoint.  Emission sites
   (annealing temperature levels, multistart trials, polish rounds,
   choose calls) are orders of magnitude rarer than evaluations, but
   they sit inside timed search loops, so [emit] must stay cheap: it
   stamps the clock outside the lock and conses the raw record inside.

   Three sinks share that protocol:

   - [create path] (live): each record is additionally rendered and
     flushed to [path] at emission, so an external tailer ([basched
     watch], `tail -f`) sees the stream while the run is in flight.
     Line writes happen whole under the mutex, so a reader can at worst
     observe one torn trailing line mid-[output], never an interleaved
     one.  Rendering costs ~1us per record, which the rare emission
     sites absorb.
   - [create ~live:false path] (buffered): the PR-7 behavior — records
     cons in memory and render once at {!close}.  For benchmarking the
     emission path itself.
   - [create_memory ()]: no file at all; the records exist only for
     {!snapshot}.  The run ledger uses this to extract a convergence
     curve when the caller did not ask for an events file.

   Memory stays bounded by the record count: tens to a few thousand
   per run, never per-evaluation.  Like [Sink], the noop value makes
   instrumentation free when off: call sites guard with {!is_active}
   so they do not even build the field list. *)

type field = I of int | F of float | S of string | B of bool

type record = {
  seq : int;
  t_ns : int64;
  kind : string;
  fields : (string * field) list;
}

type mode =
  | Buffered of out_channel
  | Live of out_channel
  | Memory
  | Stream of out_channel
    (* live rendering to a borrowed channel, nothing retained: the
       sink for long-running daemons, where keeping every record would
       grow without bound.  The channel (typically stdout) stays open
       across [close]. *)

type state = {
  mode : mode;
  mutex : Mutex.t;
  epoch_ns : int64;
  mutable seq : int;
  mutable records : record list;  (* newest first *)
}

type t = Noop | Active of state | Tagged of state * (string * field) list

let noop = Noop

let is_active = function Noop -> false | Active _ | Tagged _ -> true

let now_ns () = Monotonic_clock.now ()

let make mode =
  Active
    { mode;
      mutex = Mutex.create ();
      epoch_ns = Monotonic_clock.now ();
      seq = 0;
      records = [] }

let create ?(live = true) path =
  let oc = open_out path in
  make (if live then Live oc else Buffered oc)

let create_memory () = make Memory

let create_channel oc = make (Stream oc)

(* Rendering helpers.  Strings are almost always plain identifiers,
   so the escape scan avoids [Json.escape_string]'s allocation on that
   path.  Floats must survive the file roundtrip bit-exactly — the
   ledger's in-memory curve and [basched report]'s file parse of the
   same stream are compared in tests — so rendering tries the compact
   [%.12g] first and falls back to [%.17g] when that loses ulps. *)
let add_json_string buf s =
  let needs_escape = ref false in
  String.iter
    (fun c -> if c = '"' || c = '\\' || Char.code c < 0x20 then
        needs_escape := true)
    s;
  if !needs_escape then Buffer.add_string buf (Json.escape_string s)
  else Buffer.add_string buf s

let add_float buf f =
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    if String.for_all (function '-' | '0' .. '9' -> true | _ -> false) s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let add_field buf (name, v) =
  Buffer.add_char buf ',';
  Buffer.add_char buf '"';
  add_json_string buf name;
  Buffer.add_string buf "\":";
  match v with
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> add_float buf f
  | S s ->
      Buffer.add_char buf '"';
      add_json_string buf s;
      Buffer.add_char buf '"'
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let render buf r =
  Buffer.add_string buf "{\"kind\":\"";
  add_json_string buf r.kind;
  Buffer.add_string buf "\",\"t_ns\":";
  Buffer.add_string buf (Int64.to_string r.t_ns);
  Buffer.add_string buf ",\"seq\":";
  Buffer.add_string buf (string_of_int r.seq);
  List.iter (add_field buf) r.fields;
  Buffer.add_char buf '}';
  Buffer.add_char buf '\n'

(* Multiple domains may emit (multistart trials run on pool workers):
   the clock read happens outside the lock; the seq stamp, the cons and
   — in live mode — the whole-line write happen inside, so the file
   order matches the seq order and lines never interleave. *)
let with_tags t tags =
  match t with
  | Noop -> Noop
  | Active st -> Tagged (st, tags)
  | Tagged (st, base) -> Tagged (st, base @ tags)

let emit_st st kind fields =
  let now = Monotonic_clock.now () in
  let t_ns = Int64.sub now st.epoch_ns in
  Mutex.lock st.mutex;
  let seq = st.seq in
  st.seq <- seq + 1;
  let r = { seq; t_ns; kind; fields } in
  (match st.mode with
  | Stream _ -> () (* unbounded daemons: render only, retain nothing *)
  | Buffered _ | Live _ | Memory -> st.records <- r :: st.records);
  (match st.mode with
  | Live oc | Stream oc ->
      let buf = Buffer.create 128 in
      render buf r;
      Buffer.output_buffer oc buf;
      flush oc
  | Buffered _ | Memory -> ());
  Mutex.unlock st.mutex

let emit t kind fields =
  match t with
  | Noop -> ()
  | Tagged (st, tags) -> emit_st st kind (fields @ tags)
  | Active st -> emit_st st kind fields

let snapshot = function
  | Noop -> []
  | Active st | Tagged (st, _) ->
      Mutex.lock st.mutex;
      let rs = st.records in
      Mutex.unlock st.mutex;
      List.rev rs

let close = function
  | Noop | Tagged _ -> ()
  | Active st -> (
      match st.mode with
      | Memory -> ()
      | Stream oc -> flush oc (* borrowed channel: the caller closes it *)
      | Live oc -> close_out oc
      | Buffered oc ->
          let records = List.rev st.records in
          let buf = Buffer.create 256 in
          List.iter
            (fun r ->
              Buffer.clear buf;
              render buf r;
              Buffer.output_buffer oc buf)
            records;
          close_out oc)
