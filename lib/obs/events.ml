(* Anytime-event stream: one JSON object per line.

   The searchers are anytime algorithms, so their interesting output is
   the quality-vs-time trajectory, not the endpoint.  Emission sites
   (annealing temperature levels, multistart trials, polish rounds,
   choose calls) are orders of magnitude rarer than evaluations, but
   they sit inside timed search loops, so [emit] must stay in the
   hundreds-of-ns range: it only stamps the clock and conses the raw
   record under the mutex.  All JSON rendering happens once, at
   {!close} — which loses nothing, because the channel was never
   flushed mid-run anyway (a crash costs the stream in either design).
   Memory stays bounded by the record count: tens to a few thousand
   per run, never per-evaluation.

   Like [Sink], the noop value makes instrumentation free when off:
   call sites guard with {!is_active} so they do not even build the
   field list. *)

type field = I of int | F of float | S of string | B of bool

type record = {
  seq : int;
  t_ns : int64;
  kind : string;
  fields : (string * field) list;
}

type state = {
  oc : out_channel;
  mutex : Mutex.t;
  epoch_ns : int64;
  mutable seq : int;
  mutable records : record list;  (* newest first *)
}

type t = Noop | Active of state

let noop = Noop

let is_active = function Noop -> false | Active _ -> true

let create path =
  let oc = open_out path in
  Active
    { oc;
      mutex = Mutex.create ();
      epoch_ns = Monotonic_clock.now ();
      seq = 0;
      records = [] }

(* Multiple domains may emit (multistart trials run on pool workers):
   the clock read happens outside the lock, the seq stamp and the cons
   inside, so the file order at close is the seq order. *)
let emit t kind fields =
  match t with
  | Noop -> ()
  | Active st ->
      let now = Monotonic_clock.now () in
      let t_ns = Int64.sub now st.epoch_ns in
      Mutex.lock st.mutex;
      let seq = st.seq in
      st.seq <- seq + 1;
      st.records <- { seq; t_ns; kind; fields } :: st.records;
      Mutex.unlock st.mutex

(* Close-time rendering helpers.  Strings are almost always plain
   identifiers, so the escape scan avoids [Json.escape_string]'s
   allocation on that path; [Float.to_string] is shortest-round-trip
   [%.17g] plus a trailing ['.'] on integral values, which JSON
   numbers cannot carry — patch it to [".0"]. *)
let add_json_string buf s =
  let needs_escape = ref false in
  String.iter
    (fun c -> if c = '"' || c = '\\' || Char.code c < 0x20 then
        needs_escape := true)
    s;
  if !needs_escape then Buffer.add_string buf (Json.escape_string s)
  else Buffer.add_string buf s

let add_float buf f =
  if Float.is_finite f then begin
    let s = Float.to_string f in
    Buffer.add_string buf s;
    if s.[String.length s - 1] = '.' then Buffer.add_char buf '0'
  end
  else Buffer.add_string buf "null"

let add_field buf (name, v) =
  Buffer.add_char buf ',';
  Buffer.add_char buf '"';
  add_json_string buf name;
  Buffer.add_string buf "\":";
  match v with
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> add_float buf f
  | S s ->
      Buffer.add_char buf '"';
      add_json_string buf s;
      Buffer.add_char buf '"'
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let render buf r =
  Buffer.add_string buf "{\"kind\":\"";
  add_json_string buf r.kind;
  Buffer.add_string buf "\",\"t_ns\":";
  Buffer.add_string buf (Int64.to_string r.t_ns);
  Buffer.add_string buf ",\"seq\":";
  Buffer.add_string buf (string_of_int r.seq);
  List.iter (add_field buf) r.fields;
  Buffer.add_char buf '}';
  Buffer.add_char buf '\n'

let close = function
  | Noop -> ()
  | Active st ->
      let records = List.rev st.records in
      st.records <- [];
      let buf = Buffer.create 256 in
      List.iter
        (fun r ->
          Buffer.clear buf;
          render buf r;
          Buffer.output_buffer st.oc buf)
        records;
      close_out st.oc
