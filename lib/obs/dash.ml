(* Live terminal dashboard state for [basched watch].

   The invariant that makes watching trustworthy: all displayed state
   is a {e pure fold} over the event records fed in.  No wall clock is
   read, no hidden accumulator depends on chunk boundaries — so
   tailing a live file byte-by-byte and replaying the finished file in
   one gulp land in identical states, and the final {!summary} printed
   by both paths is the same string.  That agreement is
   property-tested over random chunkings.

   Rendering is split off from state: {!summary} is the plain-text
   final report; {!render} paints one ANSI frame (home + clear-to-end,
   no full-screen clear, so the terminal does not flicker at watch
   cadence).  Hand-rolled escapes — no curses dependency. *)

type t = {
  records : int;
  last_t_ns : int64;
  mode : string option;       (* searcher label from the start record *)
  best_sigma : float option;
  best_finish : float option;
  accepted : int;
  rejected : int;
  levels : int;               (* annealing temperature levels seen *)
  levels_total : int option;  (* derived from t0/cooling/floor *)
  evals : float;              (* cumulative, from the records *)
  starts : int option;        (* expected multistart trials *)
  trials : int;
  trial_ms : float list;      (* recent trial durations, newest first *)
  workers : (int * int) list; (* worker index -> trials completed *)
  iterations : int;
  finished : bool;
  skipped : int;              (* torn/corrupt lines, via {!note_skipped} *)
  hists : (string * (float * float * float * float)) list;
      (* name -> (count, p50, p99, max), from terminal hist records *)
}

let empty =
  { records = 0; last_t_ns = 0L; mode = None; best_sigma = None;
    best_finish = None; accepted = 0; rejected = 0; levels = 0;
    levels_total = None; evals = 0.0; starts = None; trials = 0;
    trial_ms = []; workers = []; iterations = 0; finished = false;
    skipped = 0; hists = [] }

let note_skipped t n = { t with skipped = t.skipped + n }

let max_spark = 32

let better cur cand =
  match cur with Some c when c <= cand -> cur | _ -> Some cand

(* number of levels a geometric cooling schedule will run:
   t0 * cooling^k > floor while k < total *)
let cooling_levels ~t0 ~cooling ~floor =
  if t0 <= floor || cooling <= 0.0 || cooling >= 1.0 then None
  else Some (1 + int_of_float (Float.floor (log (floor /. t0) /. log cooling)))

let bump_worker ws w =
  let cur = match List.assoc_opt w ws with Some c -> c | None -> 0 in
  (w, cur + 1) :: List.remove_assoc w ws

let update t j =
  let num name = Json.num_field name j in
  let int name = Option.map int_of_float (num name) in
  let t =
    { t with
      records = t.records + 1;
      last_t_ns =
        (match num "t_ns" with
        | Some ns -> Int64.of_float (Float.max ns (Int64.to_float t.last_t_ns))
        | None -> t.last_t_ns) }
  in
  match Json.str_field "kind" j with
  | Some "anneal_start" ->
      let levels_total =
        match (num "t0", num "cooling", num "floor") with
        | Some t0, Some cooling, Some floor ->
            cooling_levels ~t0 ~cooling ~floor
        | _ -> None
      in
      { t with mode = Some (Option.value ~default:"anneal"
                              (Json.str_field "mode" j));
               levels_total }
  | Some "anneal_level" ->
      { t with
        levels = t.levels + 1;
        accepted = t.accepted + Option.value ~default:0 (int "accepted");
        rejected = t.rejected + Option.value ~default:0 (int "rejected");
        evals = (match num "evals" with Some e -> e | None -> t.evals);
        best_sigma =
          (match num "best_sigma" with
          | Some s -> better t.best_sigma s
          | None -> t.best_sigma) }
  | Some "anneal_done" ->
      { t with
        evals = (match num "evals" with Some e -> e | None -> t.evals);
        best_sigma =
          (match num "best_sigma" with
          | Some s -> better t.best_sigma s
          | None -> t.best_sigma) }
  | Some "multistart_start" ->
      { t with mode = Some "multistart"; starts = int "starts" }
  | Some "random_start" ->
      { t with
        mode = Some (match Json.str_field "mode" j with
                    | Some m -> "random/" ^ m
                    | None -> "random");
        starts = int "samples" }
  | Some "sample" ->
      { t with
        trials = (match int "sample" with Some s -> max s t.trials
                                        | None -> t.trials);
        evals = (match num "samples" with Some s -> s | None -> t.evals);
        best_sigma =
          (match num "best_sigma" with
          | Some s -> better t.best_sigma s
          | None -> t.best_sigma) }
  | Some "trial" ->
      let t =
        match num "sigma" with
        | Some s ->
            { t with
              best_sigma = better t.best_sigma s;
              best_finish =
                (match (t.best_sigma, num "finish") with
                | Some b, Some f when s <= b -> Some f
                | _ -> t.best_finish) }
        | None -> t
      in
      { t with
        trials = t.trials + 1;
        evals = t.evals +. Option.value ~default:1.0 (num "iterations");
        trial_ms =
          (match num "dur_ms" with
          | Some d ->
              let keep =
                if List.length t.trial_ms >= max_spark then
                  List.filteri (fun i _ -> i < max_spark - 1) t.trial_ms
                else t.trial_ms
              in
              d :: keep
          | None -> t.trial_ms);
        workers =
          (match int "worker" with
          | Some w -> bump_worker t.workers w
          | None -> t.workers) }
  | Some "multistart_done" ->
      { t with
        starts = (match int "starts" with Some s -> Some s | None -> t.starts);
        best_sigma =
          (match num "best_sigma" with
          | Some s -> better t.best_sigma s
          | None -> t.best_sigma) }
  | Some "run_done" ->
      { t with
        finished = true;
        best_sigma =
          (match num "sigma" with
          | Some s -> better t.best_sigma s
          | None -> t.best_sigma);
        best_finish =
          (match num "finish" with Some f -> Some f | None -> t.best_finish) }
  | Some "iteration" -> { t with iterations = t.iterations + 1 }
  | Some "hist" -> (
      match Json.str_field "name" j with
      | Some name ->
          let g k = Option.value ~default:0.0 (num k) in
          { t with
            hists =
              (name, (g "count", g "p50", g "p99", g "max"))
              :: List.remove_assoc name t.hists }
      | None -> t)
  | _ -> t

let feed_all t js = List.fold_left update t js

(* --- derived, still pure --- *)

let finished t = t.finished

let elapsed_s t = Int64.to_float t.last_t_ns *. 1e-9

let accept_rate t =
  let n = t.accepted + t.rejected in
  if n = 0 then None else Some (float_of_int t.accepted /. float_of_int n)

(* fraction of the run completed, from whichever progress notion the
   stream carries — annealing levels or multistart trials *)
let progress t =
  match (t.levels_total, t.starts) with
  | Some total, _ when total > 0 && t.levels > 0 ->
      Some (Float.min 1.0 (float_of_int t.levels /. float_of_int total))
  | _, Some starts when starts > 0 ->
      Some (Float.min 1.0 (float_of_int t.trials /. float_of_int starts))
  | _ -> None

(* remaining stream-time estimate: elapsed scaled by remaining work.
   Uses only record timestamps, so live and replay agree. *)
let eta_s t =
  if t.finished then Some 0.0
  else
    match progress t with
    | Some p when p > 0.0 ->
        Some (elapsed_s t *. (1.0 -. p) /. p)
    | _ -> None

(* --- rendering --- *)

let fnum f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "-"

let opt_num = function Some f -> fnum f | None -> "-"

let summary t =
  let buf = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf s;
                      Buffer.add_char buf '\n') fmt
  in
  line "run %s: %d records, %.3fs stream time%s"
    (match t.mode with Some m -> m | None -> "?")
    t.records (elapsed_s t)
    (if t.finished then ", finished" else "");
  line "  best sigma %s  finish %s  evals %s" (opt_num t.best_sigma)
    (opt_num t.best_finish) (fnum t.evals);
  (match accept_rate t with
  | Some r ->
      line "  accepted %d / rejected %d (rate %.3f) over %d levels"
        t.accepted t.rejected r t.levels
  | None -> ());
  if t.trials > 0 then
    line "  trials %d%s" t.trials
      (match t.starts with
      | Some s -> Printf.sprintf " of %d" s
      | None -> "");
  if t.workers <> [] then
    line "  workers %s"
      (String.concat " "
         (List.map
            (fun (w, c) -> Printf.sprintf "%d:%d" w c)
            (List.sort compare t.workers)));
  if t.skipped > 0 then line "  skipped %d unparseable line(s)" t.skipped;
  List.iter
    (fun (name, (count, p50, p99, mx)) ->
      line "  hist %s: count %s p50 %s p99 %s max %s" name (fnum count)
        (fnum p50) (fnum p99) (fnum mx))
    (List.sort compare t.hists);
  Buffer.contents buf

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let span = if hi > lo then hi -. lo else 1.0 in
      String.concat ""
        (List.map
           (fun v ->
             let i =
               int_of_float ((v -. lo) /. span *. 7.0 +. 0.5)
             in
             spark_levels.(max 0 (min 7 i)))
           values)

let bar width frac =
  let full = int_of_float (frac *. float_of_int width +. 0.5) in
  let full = max 0 (min width full) in
  String.concat ""
    [ String.concat "" (List.init full (fun _ -> "\xe2\x96\x88"));
      String.make (width - full) ' ' ]

let render ?(width = 72) t =
  let buf = Buffer.create 512 in
  (* home + clear-to-end per frame: repaint without flicker *)
  Buffer.add_string buf "\x1b[H\x1b[J";
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf s;
                      Buffer.add_string buf "\x1b[K\n") fmt
  in
  line "\x1b[1mbasched watch\x1b[0m  %s  %s"
    (match t.mode with Some m -> m | None -> "waiting for events...")
    (if t.finished then "\x1b[32mfinished\x1b[0m" else "\x1b[33mrunning\x1b[0m");
  line "";
  line "  best sigma   \x1b[1m%s\x1b[0m   finish %s" (opt_num t.best_sigma)
    (opt_num t.best_finish);
  line "  stream time  %.3fs   records %d   evals %s" (elapsed_s t) t.records
    (fnum t.evals);
  (match accept_rate t with
  | Some r ->
      line "  accept rate  %.3f   (%d acc / %d rej, %d levels)" r t.accepted
        t.rejected t.levels
  | None -> ());
  (match progress t with
  | Some p ->
      line "  progress     [%s] %3.0f%%%s" (bar (width - 30) p) (100.0 *. p)
        (match eta_s t with
        | Some e when e > 0.0 -> Printf.sprintf "  eta ~%.1fs" e
        | _ -> "")
  | None -> ());
  if t.trial_ms <> [] then
    line "  trial ms     %s  (last %s)" (sparkline (List.rev t.trial_ms))
      (fnum (List.hd t.trial_ms));
  if t.workers <> [] then begin
    let total = List.fold_left (fun a (_, c) -> a + c) 0 t.workers in
    line "  workers      (trials per worker)";
    List.iter
      (fun (w, c) ->
        let frac =
          if total = 0 then 0.0 else float_of_int c /. float_of_int total
        in
        line "    w%-2d [%s] %d" w (bar (width - 40) frac) c)
      (List.sort compare t.workers)
  end;
  if t.skipped > 0 then
    line "  \x1b[33mskipped %d unparseable line(s)\x1b[0m" t.skipped;
  Buffer.contents buf
