(** Log-bucketed mergeable histograms (HDR-style).

    Each power-of-two octave is split into 16 equal sub-buckets, giving
    a uniform relative resolution of ~6% over [2^-64, 2^64] — wide
    enough for nanosecond latencies and batch counts alike without
    configuration.  Merging adds bucket counts element-wise, so totals
    are independent of merge order and of which domain observed what:
    the same determinism argument as [Batsched_numeric.Probe].

    {2 Registry}

    Hot paths do not hold histogram values; they call {!observe} with a
    metric name, which records into a per-domain shard (lock-free on
    the record path).  Shards merge into a global table when a
    [Batsched_numeric.Pool] worker finishes ([Sink]'s worker hooks call
    {!flush_local}) and when {!snapshot} runs.  The registry is off by
    default; {!enable} also installs the [Probe.observe] forwarding
    hook so numeric/battery-layer observations flow here. *)

type t

val create : unit -> t

val clear : t -> unit
(** Zero a histogram in place. *)

val record : t -> float -> unit
(** Record one observation.  Non-positive values land in the lowest
    bucket; no value is ever rejected. *)

val merge : into:t -> t -> unit
(** Element-wise bucket addition; commutative and associative. *)

val copy : t -> t

val count : t -> int

val sum : t -> float

val min_value : t -> float
(** Exact observed minimum; [nan] when empty. *)

val max_value : t -> float
(** Exact observed maximum; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile h p] for [p] in [0, 100], via cumulative bucket walk.
    Accurate to half a bucket width (relative error < ~3%), clamped to
    the observed min/max; [p = 0] and [p = 100] return the exact
    observed extrema; [nan] when empty.
    @raise Invalid_argument if [p] is outside [0, 100]. *)

val bucket_lower : int -> float
(** Lower edge of bucket [i] (for exposition formats). *)

val bucket_upper : int -> float
(** Upper edge of bucket [i]; [infinity] for the top bucket. *)

val nonzero_buckets : t -> (int * int) list
(** [(index, count)] for every populated bucket, ascending by index. *)

(** {2 Named registry with per-domain shards} *)

val enable : unit -> unit
(** Turn the registry on, install the [Probe] observer hook, and force
    [Sink]'s pool worker hooks so shards flush at joins. *)

val disable : unit -> unit
(** Turn the registry off and remove the [Probe] hook.  Recorded data
    is kept until {!reset}. *)

val enabled : unit -> bool

val observe : string -> float -> unit
(** Record [v] under [name] in the calling domain's shard.  No-op when
    the registry is disabled. *)

val flush_local : unit -> unit
(** Merge the calling domain's shard into the global table and clear
    it.  Called by [Sink]'s pool worker hooks; safe to call anywhere. *)

val snapshot : unit -> (string * t) list
(** Flush the calling domain, then return a deep copy of the merged
    table sorted by name.  Worker-domain shards are already merged at
    pool joins, so after the pool quiesces this is complete. *)

val reset : unit -> unit
(** Drop all recorded data (calling domain's shard + merged table). *)

val set_pool_hook_installer : (unit -> unit) -> unit
(** Used by [Sink] at module-init to let {!enable} force the pool
    worker hooks without a dependency cycle.  Not for end users. *)
