(** Minimal JSON reader for our own exporters' output.

    Covers exactly the grammar the repo's hand-rolled emitters produce
    (bench [--json] snapshots, Chrome traces, JSONL event streams):
    objects, arrays, strings with standard escapes, numbers,
    [true]/[false]/[null].  [\u] escapes are validated but decoded to
    ['?'] — no exporter emits them.  Not a general-purpose JSON
    library and not tolerant of extensions (comments, trailing
    commas). *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad_json of string
(** Raised with a byte offset on malformed input. *)

val parse : string -> t
(** Parse one complete JSON value; trailing garbage is an error.
    @raise Bad_json on malformed input. *)

val field : string -> t -> t option
(** [field name j] looks up a member when [j] is an object. *)

val to_num : t -> float option

val to_str : t -> string option

val num_field : string -> t -> float option

val str_field : string -> t -> string option

val bool_field : string -> t -> bool option

val of_file : string -> t
(** Read and parse a whole file.
    @raise Bad_json or [Sys_error]. *)

val of_jsonl_file : string -> t list
(** Read a JSON-Lines file: one value per nonempty line. *)

val escape_string : string -> string
(** Escape a string's contents for embedding between double quotes in
    JSON output (quotes not included). *)
