(* Anytime performance profiles over ledger entries.

   The searchers are anytime algorithms: the honest comparison between
   two of them is not final quality but the whole best-so-far
   trajectory — who is ahead after any given budget.  This module
   turns event streams into best-so-far curves, aggregates curves
   across runs into quantile bands, derives ERT-style
   expected-time-to-target tables, and renders a two-cohort comparison
   with a bootstrap dominance verdict.

   Axes: [`Time] (wall seconds) reflects what a user waits for but
   varies with pool size and machine load; [`Evals] (cumulative
   evaluation count carried by the events themselves) is
   pool-size-invariant and machine-invariant, which the property tests
   rely on.  Both are staircases: quality only changes at an
   improvement point, so lookups take the last point at-or-before the
   query.

   Everything here is deterministic: the bootstrap uses a fixed-seed
   splitmix64 stream, sorts break ties structurally, and no wall clock
   is read — the same ledger always yields the same report. *)

type axis = [ `Time | `Evals ]

type run = {
  pts : (float * float) array;  (* x, best sigma; x sorted, sigma nonincreasing *)
  horizon : float;              (* budget actually spent on this run *)
}

(* --- best-so-far curve extraction from an event stream --- *)

let max_curve_points = 96

(* Quality-bearing record kinds and how they advance the evals axis.
   [anneal_level]/[anneal_done] carry a cumulative move count directly;
   multistart [trial] records carry per-trial iteration counts that
   accumulate; [multistart_done] and basched's terminal [run_done]
   carry quality only. *)
let quality_of kind get =
  match kind with
  | "anneal_level" | "anneal_done" | "multistart_done" | "sample" ->
      get "best_sigma"
  | "trial" | "run_done" -> get "sigma"
  | _ -> None

let evals_of kind get ~cum =
  match kind with
  | "anneal_level" | "anneal_done" -> (
      match get "evals" with Some e -> e | None -> cum)
  | "sample" -> ( match get "samples" with Some s -> s | None -> cum)
  | "trial" -> (
      cum +. match get "iterations" with Some i -> i | None -> 1.0)
  | _ -> cum

let downsample pts =
  let n = List.length pts in
  if n <= max_curve_points then pts
  else
    let arr = Array.of_list pts in
    List.init max_curve_points (fun i ->
        arr.(i * (n - 1) / (max_curve_points - 1)))

(* [records]: (t_ns, kind, field lookup) in emission order. *)
let curve_of_seq records =
  let best = ref infinity and cum = ref 0.0 and out = ref [] in
  List.iter
    (fun (t_ns, kind, get) ->
      cum := evals_of kind get ~cum:!cum;
      match quality_of kind get with
      | Some q when q < !best ->
          best := q;
          out := (Int64.to_float t_ns *. 1e-9, !cum, q) :: !out
      | _ -> ())
    records;
  downsample (List.rev !out)

let curve_of_events records =
  curve_of_seq
    (List.map
       (fun (r : Events.record) ->
         let get name =
           match List.assoc_opt name r.Events.fields with
           | Some (Events.F f) -> Some f
           | Some (Events.I i) -> Some (float_of_int i)
           | _ -> None
         in
         (r.Events.t_ns, r.Events.kind, get))
       records)

let curve_of_json records =
  curve_of_seq
    (List.filter_map
       (fun j ->
         match Json.str_field "kind" j with
         | Some kind ->
             let t_ns =
               match Json.num_field "t_ns" j with
               | Some t -> Int64.of_float t
               | None -> 0L
             in
             Some (t_ns, kind, fun name -> Json.num_field name j)
         | None -> None)
       records)

(* --- runs from ledger entries --- *)

let run_of_entry ~axis (e : Ledger.entry) =
  let proj (t, ev, q) = match axis with `Time -> (t, q) | `Evals -> (ev, q) in
  let pts = List.map proj e.Ledger.e_curve in
  (* a final-sigma-only entry (no events captured) still yields a
     one-point staircase at its full budget *)
  let pts =
    match (pts, e.Ledger.e_sigma) with
    | [], Some s ->
        [ ((match axis with `Time -> e.Ledger.e_wall_s | `Evals -> 1.0), s) ]
    | pts, _ -> pts
  in
  match pts with
  | [] -> None
  | _ ->
      let last_x = List.fold_left (fun a (x, _) -> Float.max a x) 0.0 pts in
      let horizon =
        match axis with
        | `Time -> Float.max e.Ledger.e_wall_s last_x
        | `Evals -> last_x
      in
      Some { pts = Array.of_list pts; horizon }

let best_at run x =
  let best = ref None in
  Array.iter (fun (px, q) -> if px <= x then best := Some q) run.pts;
  !best

let final_best run =
  if Array.length run.pts = 0 then infinity
  else snd run.pts.(Array.length run.pts - 1)

let first_quality run =
  if Array.length run.pts = 0 then infinity else snd run.pts.(0)

(* first x at which the run reaches [target]; None if it never does *)
let hit_x run ~target =
  let hit = ref None in
  Array.iter
    (fun (x, q) -> if !hit = None && q <= target then hit := Some x)
    run.pts;
  !hit

(* --- aggregation --- *)

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let r = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor r) in
    let hi = int_of_float (Float.ceil r) in
    let f = r -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. f)) +. (sorted.(hi) *. f)

let grid ?(n = 24) runs =
  let hmax = List.fold_left (fun a r -> Float.max a r.horizon) 0.0 runs in
  let hmax = if hmax <= 0.0 then 1.0 else hmax in
  List.init n (fun i -> hmax *. float_of_int (i + 1) /. float_of_int n)

(* quality quantiles across runs at [x]; a run with no point yet
   contributes its first (worst) quality, so early-x bands do not
   silently drop the slow starters *)
let band runs ~x ~p =
  let vals =
    List.map
      (fun r -> match best_at r x with Some q -> q | None -> first_quality r)
      runs
  in
  let arr = Array.of_list vals in
  Array.sort Float.compare arr;
  quantile arr p

(* Expected running time to [target]: (sum of hitting budgets over
   successes + full budgets of failures) / #successes — the standard
   restart-style estimator.  None when no run ever reaches it. *)
let ert runs ~target =
  let spent, hits =
    List.fold_left
      (fun (s, h) r ->
        match hit_x r ~target with
        | Some x -> (s +. x, h + 1)
        | None -> (s +. r.horizon, h))
      (0.0, 0) runs
  in
  if hits = 0 then None else Some (spent /. float_of_int hits)

(* target ladder between the worst starting quality and the best final
   quality across both cohorts: fractions of the remaining gap *)
let target_fractions = [ 0.5; 0.25; 0.1; 0.05; 0.01; 0.0 ]

let targets runs =
  let q_best =
    List.fold_left (fun a r -> Float.min a (final_best r)) infinity runs
  in
  let q_start =
    List.fold_left
      (fun a r -> Float.max a (first_quality r))
      neg_infinity runs
  in
  if not (Float.is_finite q_best && Float.is_finite q_start) then []
  else if q_start <= q_best then [ q_best ]
  else
    List.map (fun f -> q_best +. (f *. (q_start -. q_best))) target_fractions

(* --- bootstrap dominance --- *)

(* fixed-seed splitmix64 (the shared [Batsched_numeric.Splitmix] core,
   with the raw unpremixed seeding this bootstrap has always used): the
   verdict must be a pure function of the ledger, so reruns of
   [basched profile] agree bit-for-bit *)
let rand_below = Batsched_numeric.Splitmix.rand_below

(* anytime score of a cohort: mean median-quality over the shared grid
   — lower is better, and a cohort that is ahead everywhere has the
   smaller area under its median staircase *)
let score runs ~xs =
  let s = List.fold_left (fun a x -> a +. band runs ~x ~p:0.5) 0.0 xs in
  s /. float_of_int (List.length xs)

type verdict = {
  a_wins : float;       (* bootstrap fraction where A's score is lower *)
  score_a : float;
  score_b : float;
  resamples : int;
}

let resample state arr =
  let n = Array.length arr in
  List.init n (fun _ -> arr.(rand_below state n))

let dominance ?(resamples = 400) ?(seed = 0x5eed) a b =
  let xs = grid (a @ b) in
  let state = Batsched_numeric.Splitmix.of_raw (Int64.of_int seed) in
  let a_arr = Array.of_list a and b_arr = Array.of_list b in
  let wins = ref 0 in
  for _ = 1 to resamples do
    let sa = score (resample state a_arr) ~xs in
    let sb = score (resample state b_arr) ~xs in
    if sa < sb then incr wins
  done;
  { a_wins = float_of_int !wins /. float_of_int resamples;
    score_a = score a ~xs;
    score_b = score b ~xs;
    resamples }

(* --- rendering --- *)

let axis_name = function `Time -> "seconds" | `Evals -> "evals"

let fnum f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "-"

let compare_to_string ?(axis = `Evals) ~name_a ~name_b a_entries b_entries =
  let runs_of entries =
    List.filter_map (fun e -> run_of_entry ~axis e) entries
  in
  let a = runs_of a_entries and b = runs_of b_entries in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s;
                                   Buffer.add_char buf '\n') fmt in
  line "profile: %s (%d runs) vs %s (%d runs), axis=%s" name_a
    (List.length a) name_b (List.length b) (axis_name axis);
  if a = [] || b = [] then begin
    line "  not enough runs with convergence data to compare";
    Buffer.contents buf
  end
  else begin
    let xs = grid (a @ b) in
    line "";
    line "  best-so-far sigma (median [q25..q75])";
    line "  %12s  %28s  %28s" (axis_name axis) name_a name_b;
    List.iter
      (fun x ->
        let cell runs =
          Printf.sprintf "%10s [%s..%s]"
            (fnum (band runs ~x ~p:0.5))
            (fnum (band runs ~x ~p:0.25))
            (fnum (band runs ~x ~p:0.75))
        in
        line "  %12s  %28s  %28s" (fnum x) (cell a) (cell b))
      (List.filteri (fun i _ -> i mod 4 = 3) xs);
    line "";
    line "  expected %s to target (ERT)" (axis_name axis);
    line "  %14s  %14s  %14s" "target sigma" name_a name_b;
    List.iter
      (fun t ->
        let cell runs =
          match ert runs ~target:t with Some e -> fnum e | None -> "never"
        in
        line "  %14s  %14s  %14s" (fnum t) (cell a) (cell b))
      (targets (a @ b));
    line "";
    let v = dominance a b in
    line "  anytime score (mean median sigma over grid): %s=%s %s=%s" name_a
      (fnum v.score_a) name_b (fnum v.score_b);
    let verdict =
      if v.a_wins >= 0.95 then Printf.sprintf "%s dominates" name_a
      else if v.a_wins <= 0.05 then Printf.sprintf "%s dominates" name_b
      else "no significant dominance"
    in
    line "  verdict: %s (%s better in %.1f%% of %d bootstrap resamples)"
      verdict
      (if v.a_wins >= 0.5 then name_a else name_b)
      (100.0 *. if v.a_wins >= 0.5 then v.a_wins else 1.0 -. v.a_wins)
      v.resamples;
    Buffer.contents buf
  end
