open Batsched_numeric

let pct hits misses =
  let total = hits + misses in
  if total = 0 then None
  else Some (100.0 *. float_of_int hits /. float_of_int total, total)

let by_phase spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Sink.span) ->
      let ms = Int64.to_float s.Sink.dur_ns /. 1e6 in
      let ds, ws =
        try Hashtbl.find tbl s.Sink.name with Not_found -> ([], [])
      in
      Hashtbl.replace tbl s.Sink.name
        (ms :: ds, s.Sink.alloc_words :: ws))
    spans;
  Hashtbl.fold (fun name dws acc -> (name, dws) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let add_counters buf (c : Probe.t) =
  Buffer.add_string buf "counters\n";
  List.iter
    (fun (name, get) -> Printf.bprintf buf "  %-18s %12d\n" name (get c))
    Probe.fields;
  (* open-keyed counters, e.g. per-model delta fallback attribution *)
  List.iter
    (fun (name, v) -> Printf.bprintf buf "  %-28s %12d\n" name v)
    (Probe.named_counts c);
  let derived label = function
    | None -> ()
    | Some (p, total) ->
        Printf.bprintf buf "  %-18s %11.1f%%  (%d lookups)\n" label p total
  in
  derived "fmemo hit rate" (pct c.Probe.fmemo_hits c.Probe.fmemo_misses);
  derived "contrib hit rate" (pct c.Probe.contrib_hits c.Probe.contrib_misses);
  List.iter
    (fun (label, live, capacity, flips) ->
      Printf.bprintf buf "  fcache %-16s %6d/%d slots, %d evictions\n" label
        live capacity flips)
    (Fcache.occupancy ())

let add_phases buf spans =
  match by_phase spans with
  | [] -> ()
  | phases ->
      let grand_total =
        List.fold_left
          (fun acc (_, (ds, _)) -> acc +. List.fold_left ( +. ) 0.0 ds)
          0.0 phases
      in
      let width =
        List.fold_left
          (fun acc (name, _) -> max acc (String.length name))
          (String.length "phase") phases
      in
      Printf.bprintf buf "\n%-*s %7s %12s %10s %10s %10s %10s %10s\n" width
        "phase" "count" "total ms" "mean" "p50" "p90" "max" "kw/call";
      List.iter
        (fun (name, (ds, ws)) ->
          (* a phase can legitimately have zero completed spans (its
             sink was superseded mid-run): render a stub row instead of
             tripping Stats.percentile's nonempty precondition *)
          if ds = [] then
            Printf.bprintf buf "%-*s %7d %12s (no completed spans)\n" width
              name 0 "-"
          else begin
            let total = List.fold_left ( +. ) 0.0 ds in
            let _, max_d = Stats.min_max ds in
            let share =
              if grand_total > 0.0 then total /. grand_total else 0.0
            in
            let bar =
              String.make
                (int_of_float (Float.round (share *. 24.0)))
                '#'
            in
            Printf.bprintf buf
              "%-*s %7d %12.3f %10.3f %10.3f %10.3f %10.3f %10.1f  %s\n" width
              name (List.length ds) total (Stats.mean ds) (Stats.median ds)
              (Stats.percentile 90.0 ds) max_d
              (Stats.mean ws /. 1e3) bar
          end)
        phases

(* Histogram quantiles, when the registry is on: latency and batch-size
   distributions that the flat counters cannot express. *)
let add_histograms buf =
  match Histogram.snapshot () with
  | [] -> ()
  | hists ->
      let width =
        List.fold_left
          (fun acc (name, _) -> max acc (String.length name))
          (String.length "histogram") hists
      in
      Printf.bprintf buf "\n%-*s %9s %12s %12s %12s %12s %12s\n" width
        "histogram" "count" "p50" "p90" "p99" "max" "mean";
      List.iter
        (fun (name, h) ->
          let n = Histogram.count h in
          if n > 0 then
            Printf.bprintf buf
              "%-*s %9d %12.1f %12.1f %12.1f %12.1f %12.1f\n" width name n
              (Histogram.quantile h 50.0) (Histogram.quantile h 90.0)
              (Histogram.quantile h 99.0) (Histogram.max_value h)
              (Histogram.sum h /. float_of_int n))
        hists

let to_string sink =
  let buf = Buffer.create 1024 in
  add_counters buf (Probe.totals ());
  add_phases buf (Sink.spans sink);
  add_histograms buf;
  Buffer.contents buf
