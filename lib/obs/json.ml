(* Minimal JSON reader shared by the bench comparator, the [basched
   report] subcommand, and the test suite.

   No JSON library ships in the image, so this is a small
   recursive-descent parser covering exactly the grammar our own
   exporters emit (objects, arrays, strings with escapes, numbers,
   true/false/null).  It began life in the obs test suite validating
   the Chrome trace export and moved here once runtime code needed to
   read bench snapshots and event streams. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad_json of string

let parse text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "short \\u escape";
              let hex = String.sub text !pos 4 in
              ignore (int_of_string ("0x" ^ hex));
              pos := !pos + 4;
              Buffer.add_char buf '?';
              go ()
          | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
              advance ();
              Buffer.add_char buf
                (match c with
                | 'b' -> '\b'
                | 'f' -> '\012'
                | 'n' -> '\n'
                | 'r' -> '\r'
                | 't' -> '\t'
                | c -> c);
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let field name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let num_field name j = Option.bind (field name j) to_num

let str_field name j = Option.bind (field name j) to_str

let bool_field name j =
  match field name j with Some (Bool b) -> Some b | _ -> None

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      parse (really_input_string ic n))

(* One JSON value per nonempty line — the events-stream framing. *)
let of_jsonl_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then acc := parse line :: !acc
         done
       with End_of_file -> ());
      List.rev !acc)

(* Writer-side helper shared by every hand-rolled exporter. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
