(** Prometheus/OpenMetrics text exposition of process telemetry.

    Renders every [Batsched_numeric.Probe] counter (fixed fields and
    named counters) as samples of one counter family
    [batsched_counter_total{name="..."}], every registered
    {!Histogram} as its own histogram family (cumulative [le] buckets,
    [_sum], [_count]), and the [Gc.quick_stat] gauges.  The exposition
    ends with [# EOF] per the OpenMetrics spec.

    Histogram names are sanitized into metric names (characters
    outside [[a-zA-Z0-9_]] become ['_']), so ["span/choose"] exports
    as [batsched_span_choose]. *)

val sanitize : string -> string
(** Metric-name sanitization: characters outside [[a-zA-Z0-9_]]
    become ['_']. *)

val escape_label : string -> string
(** Label-value escaping per the Prometheus text format: exactly
    backslash, double-quote and line-feed — never the JSON-only
    escapes (tab, [u]-hex) that exposition parsers reject. *)

val to_string : unit -> string
(** Render one exposition from the current [Probe.totals],
    [Histogram.snapshot], and [Gc.quick_stat]. *)

val write_file : string -> unit
(** [write_file path] writes {!to_string} to [path] (truncating). *)
