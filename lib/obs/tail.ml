(* Incremental JSONL consumption tolerating torn tails.

   Both consumers of an events stream — [basched report] on a file
   that may come from a run killed mid-write, and [basched watch]
   tailing a file another process is still appending to — face the
   same hazard: the final line may be incomplete (no newline yet, or a
   truncated JSON object).  A torn tail is not an error; it is the
   normal state of a live file between two writes.

   The tailer therefore frames on newlines: bytes after the last
   newline stay buffered until the line completes.  A {e complete}
   line that fails to parse is counted in [bad] and skipped — on a
   truncated file that is exactly the torn final record; mid-stream it
   would indicate corruption, which the caller can surface via the
   count without losing the rest of the stream. *)

type t = {
  partial : Buffer.t;           (* bytes after the last newline seen *)
  mutable bad : int;            (* complete lines that failed to parse *)
}

let create () = { partial = Buffer.create 256; bad = 0 }

let bad t = t.bad

let pending t = Buffer.length t.partial > 0

let parse_line t acc line =
  if String.trim line = "" then acc
  else
    match Json.parse line with
    | v -> v :: acc
    | exception Json.Bad_json _ ->
        t.bad <- t.bad + 1;
        acc

let feed t chunk =
  let acc = ref [] in
  let flush_line () =
    let line = Buffer.contents t.partial in
    Buffer.clear t.partial;
    acc := parse_line t !acc line
  in
  String.iter
    (fun c -> if c = '\n' then flush_line () else Buffer.add_char t.partial c)
    chunk;
  List.rev !acc

(* End-of-input: a buffered partial line is all we will ever get —
   parse it if it happens to be complete JSON (a writer killed between
   the line and its newline), otherwise count it as torn. *)
let finish t =
  if Buffer.length t.partial = 0 then []
  else begin
    let line = Buffer.contents t.partial in
    Buffer.clear t.partial;
    List.rev (parse_line t [] line)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let t = create () in
      let records = feed t (really_input_string ic n) in
      let records = records @ finish t in
      (records, t.bad))
