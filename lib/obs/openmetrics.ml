(* Prometheus/OpenMetrics text exposition of the process's telemetry:
   every [Probe] counter, every registered [Histogram], and the GC
   quick-stat gauges.  This is the scrape format the ROADMAP's
   scheduling daemon will serve; until then the binaries dump one
   exposition per run behind [--metrics FILE].

   Format rules honoured (and linted in the test suite): one TYPE line
   per family, counter samples end in [_total], histogram buckets are
   cumulative with increasing [le] plus a [+Inf] bucket equal to
   [_count], and the exposition ends with [# EOF]. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* The text exposition defines exactly three label-value escapes:
   backslash, double-quote and line-feed.  [Json.escape_string] would
   also emit \t and \uXXXX, which Prometheus parsers reject, so label
   escaping is its own little function. *)
let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let add_counters buf (c : Batsched_numeric.Probe.t) =
  Buffer.add_string buf
    "# TYPE batsched_counter counter\n\
     # HELP batsched_counter Work counters from Batsched_numeric.Probe.\n";
  let sample name v =
    Printf.bprintf buf "batsched_counter_total{name=\"%s\"} %d\n"
      (escape_label name) v
  in
  List.iter
    (fun (name, get) -> sample name (get c))
    Batsched_numeric.Probe.fields;
  List.iter
    (fun (name, v) -> sample name v)
    (Batsched_numeric.Probe.named_counts c)

let add_histogram buf name h =
  let family = "batsched_" ^ sanitize name in
  Printf.bprintf buf "# TYPE %s histogram\n" family;
  let cumulative = ref 0 in
  List.iter
    (fun (i, n) ->
      cumulative := !cumulative + n;
      Printf.bprintf buf "%s_bucket{le=\"%.17g\"} %d\n" family
        (Histogram.bucket_upper i) !cumulative)
    (List.filter
       (fun (i, _) -> Histogram.bucket_upper i < Float.infinity)
       (Histogram.nonzero_buckets h));
  Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" family (Histogram.count h);
  Printf.bprintf buf "%s_sum %.17g\n" family (Histogram.sum h);
  Printf.bprintf buf "%s_count %d\n" family (Histogram.count h)

let add_gc buf =
  let s = Gc.quick_stat () in
  let gauge name v =
    Printf.bprintf buf "# TYPE %s gauge\n%s %.17g\n" name name v
  in
  gauge "batsched_gc_minor_words" s.Gc.minor_words;
  gauge "batsched_gc_promoted_words" s.Gc.promoted_words;
  gauge "batsched_gc_major_words" s.Gc.major_words;
  gauge "batsched_gc_minor_collections" (float_of_int s.Gc.minor_collections);
  gauge "batsched_gc_major_collections" (float_of_int s.Gc.major_collections);
  gauge "batsched_gc_heap_words" (float_of_int s.Gc.heap_words);
  gauge "batsched_gc_compactions" (float_of_int s.Gc.compactions)

let to_string () =
  let buf = Buffer.create 4096 in
  add_counters buf (Batsched_numeric.Probe.totals ());
  List.iter (fun (name, h) -> add_histogram buf name h) (Histogram.snapshot ());
  add_gc buf;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ()))
