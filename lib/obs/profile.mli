(** Anytime performance profiles over ledger entries.

    Best-so-far quality curves extracted from event streams,
    aggregated across runs into quantile bands, ERT-style
    expected-budget-to-target tables, and a bootstrap dominance
    verdict between two cohorts.  Deterministic throughout: fixed-seed
    bootstrap, no wall-clock reads — the same ledger always renders
    the same report. *)

type axis = [ `Time | `Evals ]
(** X coordinate for curves: wall seconds (machine- and
    pool-dependent) or cumulative evaluation count carried by the
    events themselves (pool-size-invariant). *)

type run = {
  pts : (float * float) array;
      (** improvement staircase: (x, best sigma), x ascending *)
  horizon : float;  (** total budget this run spent *)
}

val curve_of_events : Events.record list -> (float * float * float) list
(** Best-so-far improvements [(seconds, cumulative evals, sigma)]
    extracted from an in-memory event stream, downsampled to at most
    96 points.  This is what the ledger stores as the run's curve. *)

val curve_of_json : Json.t list -> (float * float * float) list
(** Same extraction from parsed JSONL event records (file-based). *)

val run_of_entry : axis:axis -> Ledger.entry -> run option
(** Project a ledger entry's curve onto an axis.  An entry with no
    curve but a final sigma becomes a one-point staircase; an entry
    with neither yields [None]. *)

val best_at : run -> float -> float option
(** Staircase lookup: best quality achieved at or before budget [x];
    [None] before the first improvement. *)

val hit_x : run -> target:float -> float option
(** First budget at which the run reaches quality [target]. *)

val ert : run list -> target:float -> float option
(** Expected running time to [target]: (Σ hitting budgets + Σ full
    budgets of runs that never hit) / #hits.  [None] if no run hits. *)

val targets : run list -> float list
(** Default target ladder: fractions of the gap between the worst
    starting quality and the best final quality across the runs. *)

val grid : ?n:int -> run list -> float list
(** Shared evaluation grid: [n] (default 24) equispaced budgets up to
    the largest horizon. *)

val band : run list -> x:float -> p:float -> float
(** Cross-run quality quantile [p] at budget [x]; runs with no
    improvement yet contribute their first (worst) quality. *)

type verdict = {
  a_wins : float;  (** bootstrap fraction where A scored lower *)
  score_a : float;
  score_b : float;
  resamples : int;
}

val dominance : ?resamples:int -> ?seed:int -> run list -> run list -> verdict
(** Bootstrap comparison of two cohorts' anytime scores (mean median
    quality over the shared grid; lower is better).  Fixed [seed]
    makes the verdict a pure function of the inputs. *)

val compare_to_string :
  ?axis:axis ->
  name_a:string ->
  name_b:string ->
  Ledger.entry list ->
  Ledger.entry list ->
  string
(** The [basched profile A B] report: aligned quantile bands, ERT
    table, dominance verdict. *)
