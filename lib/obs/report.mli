(** Human-readable run report: counter table + per-phase wall time.

    The counter block prints every {!Batsched_numeric.Probe} field (the
    process-global totals) plus derived cache hit rates.  The phase
    block — present when the sink recorded spans — summarizes per-phase
    wall time through {!Batsched_numeric.Stats} (mean, median, 90th
    percentile, max) with a total-time share bar per phase. *)

val to_string : Sink.t -> string
(** Render the report.  With {!Sink.noop} only the counter block
    appears (counting is always on; timers need an active sink). *)
