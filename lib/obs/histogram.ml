(* Log-bucketed mergeable histograms (HDR-style).

   Buckets are log-linear: each power-of-two octave of the value range
   is split into [sub_count] equal-width sub-buckets, so the relative
   resolution is uniform (~1/sub_count) across fourteen orders of
   magnitude.  Bucket indices come from [Float.frexp], which is exact
   and branch-free — no logarithms, no search.  Counts are plain ints;
   merging is element-wise addition, so merged results are independent
   of merge order and of which domain recorded what.

   The registry mirrors [Sink]'s shard discipline: recordings go to a
   per-domain shard (no locks on the record path beyond one Hashtbl
   probe), and shards merge into the global table when a
   [Batsched_numeric.Pool] worker finishes its slice ([Sink]'s worker
   hooks call {!flush_local}) or when the main domain takes a
   {!snapshot}. *)

let sub_count = 16

let min_exp = -64 (* values below 2^-65 collapse into bucket 0 *)

let max_exp = 64 (* values at or above 2^64 collapse into the top bucket *)

let octaves = max_exp - min_exp + 1

let num_buckets = octaves * sub_count

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { counts = Array.make num_buckets 0;
    count = 0;
    sum = 0.0;
    min_v = Float.infinity;
    max_v = Float.neg_infinity }

let clear h =
  Array.fill h.counts 0 num_buckets 0;
  h.count <- 0;
  h.sum <- 0.0;
  h.min_v <- Float.infinity;
  h.max_v <- Float.neg_infinity

(* frexp v = (m, e) with m in [0.5, 1): sub-bucket from the mantissa,
   octave from the exponent.  Non-positive and subnormal-small values
   land in bucket 0, oversized ones in the top bucket — the histogram
   never rejects a sample. *)
let bucket_of v =
  if not (v > 0.0) then 0
  else begin
    let m, e = Float.frexp v in
    if e < min_exp then 0
    else if e > max_exp then num_buckets - 1
    else
      let sub = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub_count) in
      let sub = if sub >= sub_count then sub_count - 1 else sub in
      ((e - min_exp) * sub_count) + sub
  end

(* Lower edge of bucket [i]; bucket [i] covers [lower i, lower (i+1)). *)
let bucket_lower i =
  let e = (i / sub_count) + min_exp in
  let sub = i mod sub_count in
  Float.ldexp (0.5 +. (float_of_int sub /. (2.0 *. float_of_int sub_count))) e

let bucket_upper i =
  if i >= num_buckets - 1 then Float.infinity else bucket_lower (i + 1)

(* Representative value: the bucket midpoint.  Within-bucket position
   is unknown, so any quantile is off by at most half a bucket width —
   a relative error under 1/(2*sub_count) ~ 3%. *)
let bucket_mid i = 0.5 *. (bucket_lower i +. bucket_lower (i + 1))

let record h v =
  let i = bucket_of v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let merge ~into h =
  for i = 0 to num_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + h.counts.(i)
  done;
  into.count <- into.count + h.count;
  into.sum <- into.sum +. h.sum;
  if h.min_v < into.min_v then into.min_v <- h.min_v;
  if h.max_v > into.max_v then into.max_v <- h.max_v

let copy h =
  let c = create () in
  merge ~into:c h;
  c

let count h = h.count

let sum h = h.sum

let max_value h = if h.count = 0 then Float.nan else h.max_v

let min_value h = if h.count = 0 then Float.nan else h.min_v

(* Quantile by cumulative bucket walk, clamped to the exact observed
   extrema so p=0 and p=100 are exact and interior quantiles can never
   leave the sample range. *)
let quantile h p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.quantile: p outside [0,100]";
  if h.count = 0 then Float.nan
  else if p = 0.0 then h.min_v
  else if p = 100.0 then h.max_v
  else begin
    let rank = p /. 100.0 *. float_of_int h.count in
    let target = Stdlib.max 1 (int_of_float (Float.ceil rank)) in
    let i = ref 0 in
    let seen = ref 0 in
    while !seen < target && !i < num_buckets do
      seen := !seen + h.counts.(!i);
      incr i
    done;
    let v = bucket_mid (!i - 1) in
    Float.min h.max_v (Float.max h.min_v v)
  end

let nonzero_buckets h =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then acc := (i, h.counts.(i)) :: !acc
  done;
  !acc

(* --- named registry with per-domain shards --- *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

type shard = (string, t) Hashtbl.t

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let merged : (string, t) Hashtbl.t = Hashtbl.create 16

let merged_mutex = Mutex.create ()

let flush_local () =
  let shard = Domain.DLS.get shard_key in
  if Hashtbl.length shard > 0 then begin
    Mutex.lock merged_mutex;
    Hashtbl.iter
      (fun name h ->
        match Hashtbl.find_opt merged name with
        | Some g -> merge ~into:g h
        | None -> Hashtbl.add merged name (copy h))
      shard;
    Mutex.unlock merged_mutex;
    Hashtbl.reset shard
  end

let observe name v =
  if Atomic.get enabled_flag then begin
    let shard = Domain.DLS.get shard_key in
    let h =
      match Hashtbl.find_opt shard name with
      | Some h -> h
      | None ->
          let h = create () in
          Hashtbl.add shard name h;
          h
    in
    record h v
  end

(* [Sink] owns the [Pool] worker hooks (one global pair); it registers
   an installer here at module-init time so {!enable} can force the
   hooks without a dependency cycle. *)
let pool_hook_installer = ref (fun () -> ())

let set_pool_hook_installer f = pool_hook_installer := f

let enable () =
  Atomic.set enabled_flag true;
  Batsched_numeric.Probe.set_observer observe;
  !pool_hook_installer ()

let disable () =
  Atomic.set enabled_flag false;
  Batsched_numeric.Probe.clear_observer ()

let snapshot () =
  flush_local ();
  Mutex.lock merged_mutex;
  let out = Hashtbl.fold (fun name h acc -> (name, copy h) :: acc) merged [] in
  Mutex.unlock merged_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) out

let reset () =
  Hashtbl.reset (Domain.DLS.get shard_key);
  Mutex.lock merged_mutex;
  Hashtbl.reset merged;
  Mutex.unlock merged_mutex
