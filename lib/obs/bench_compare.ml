(* Noise-aware comparison of two bench [--json] snapshots.

   A bare ratio of ns_per_run numbers misclassifies constantly: the
   bechamel OLS fit can be poor (r_square well below 1 on noisy
   scenarios), and run-to-run dispersion on shared machines is easily
   10%.  So every scenario gets its own threshold derived from the fit
   quality on both sides:

     noise side   = sqrt(max 0 (1 - r_square))   (unexplained variance)
     dispersion   = |first - final| / final       (from the bench
                    fit-quality rerun guard, when the row carries it)
     threshold    = 0.10 + 0.5*(noise_old + noise_new)
                         + dispersion_old + dispersion_new

   and a verdict: ratio below 1 - threshold is Improved, above
   1 + threshold is Regressed, else Flat.  Rows whose fit is too poor
   to trust (r_square < 0.5 on either side, or tagged
   low_confidence by the rerun guard) are classified Low_confidence
   and never fail the gate — they warn.

   Two row populations are compared.  (1) Cross-file joins: rows
   present in both snapshots, matched by name after stripping the
   bechamel group prefix ("batsched/"), optionally normalized by the
   median ratio so cross-machine comparisons cancel overall machine
   speed.  (2) In-file reference pairs of the NEW snapshot: a row
   named "X-reference/..." paired with its optimized twin
   "X-delta/..." or "X/..." — a machine-independent speedup check
   that works even when the old snapshot predates the scenario. *)

type row = {
  name : string;
  ns_per_run : float;
  r_square : float;
  low_confidence : bool;
  ns_per_run_first : float option;
  counters : (string * float) list;
}

type verdict = Improved | Flat | Regressed | Low_confidence

type comparison = {
  scenario : string;
  old_ns : float;
  new_ns : float;
  ratio : float;
  threshold : float;
  verdict : verdict;
}

type counter_diff = {
  cd_scenario : string;
  cd_counter : string;
  cd_old : float;
  cd_new : float;
}

type report = {
  joined : comparison list;
  pairs : comparison list;
  added : string list;
  removed : string list;
  norm_factor : float option;
  work : counter_diff list;
}

let group_prefix = "batsched/"

let normalize_name name =
  let pl = String.length group_prefix in
  if String.length name > pl && String.sub name 0 pl = group_prefix then
    String.sub name pl (String.length name - pl)
  else name

let row_of_json j =
  match (Json.str_field "name" j, Json.num_field "ns_per_run" j) with
  | Some name, Some ns ->
      Some
        { name = normalize_name name;
          ns_per_run = ns;
          r_square = Option.value ~default:1.0 (Json.num_field "r_square" j);
          low_confidence =
            Option.value ~default:false (Json.bool_field "low_confidence" j);
          ns_per_run_first = Json.num_field "ns_per_run_first" j;
          counters =
            (match Json.field "counters" j with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun v -> (k, v)) (Json.to_num v))
                  kvs
            | _ -> []) }
  | _ -> None

let rows_of_json j =
  match Json.field "rows" j with
  | Some (Json.Arr rows) -> List.filter_map row_of_json rows
  | _ -> []

let load_file path = rows_of_json (Json.of_file path)

let noise r2 = Float.sqrt (Float.max 0.0 (1.0 -. r2))

let dispersion r =
  match r.ns_per_run_first with
  | Some first when r.ns_per_run > 0.0 ->
      Float.abs (first -. r.ns_per_run) /. r.ns_per_run
  | _ -> 0.0

let confidence_floor = 0.5

let classify_pair ?(norm = 1.0) ~scenario old_r new_r =
  let old_ns = old_r.ns_per_run in
  let new_ns = new_r.ns_per_run in
  let ratio = if old_ns > 0.0 then new_ns /. norm /. old_ns else Float.nan in
  let threshold =
    0.10
    +. (0.5 *. (noise old_r.r_square +. noise new_r.r_square))
    +. dispersion old_r +. dispersion new_r
  in
  let verdict =
    if
      old_r.r_square < confidence_floor
      || new_r.r_square < confidence_floor
      || old_r.low_confidence || new_r.low_confidence
      || not (Float.is_finite ratio)
    then Low_confidence
    else if ratio < 1.0 -. threshold then Improved
    else if ratio > 1.0 +. threshold then Regressed
    else Flat
  in
  { scenario; old_ns; new_ns; ratio; threshold; verdict }

(* "X-reference/rest" pairs with "X-delta/rest" (substituted evaluator)
   or "X/rest" (the optimization made the suffix redundant). *)
let reference_twin rows ref_name =
  let marker = "-reference" in
  let ml = String.length marker in
  let rec find_marker i =
    if i + ml > String.length ref_name then None
    else if String.sub ref_name i ml = marker then Some i
    else find_marker (i + 1)
  in
  match find_marker 0 with
  | None -> None
  | Some i ->
      let before = String.sub ref_name 0 i in
      let after =
        String.sub ref_name (i + ml) (String.length ref_name - i - ml)
      in
      let candidates = [ before ^ "-delta" ^ after; before ^ after ] in
      List.find_opt (fun r -> List.mem r.name candidates) rows

let median xs = Batsched_numeric.Stats.median xs

let compare_rows ?(normalize = false) old_rows new_rows =
  (* rows from [load_file] arrive normalized; strip the group prefix
     again so hand-built rows behave the same *)
  let renorm r = { r with name = normalize_name r.name } in
  let old_rows = List.map renorm old_rows in
  let new_rows = List.map renorm new_rows in
  let find rows name = List.find_opt (fun r -> r.name = name) rows in
  let joined_names =
    List.filter_map
      (fun r -> Option.map (fun _ -> r.name) (find new_rows r.name))
      old_rows
  in
  let norm_factor =
    if normalize && joined_names <> [] then
      let ratios =
        List.filter_map
          (fun name ->
            match (find old_rows name, find new_rows name) with
            | Some o, Some n when o.ns_per_run > 0.0 ->
                Some (n.ns_per_run /. o.ns_per_run)
            | _ -> None)
          joined_names
      in
      if ratios = [] then None else Some (median ratios)
    else None
  in
  let norm = Option.value ~default:1.0 norm_factor in
  let joined =
    List.filter_map
      (fun name ->
        match (find old_rows name, find new_rows name) with
        | Some o, Some n -> Some (classify_pair ~norm ~scenario:name o n)
        | _ -> None)
      joined_names
  in
  let pairs =
    (* [reference_twin] yields None for rows without the marker, so
       mapping over all new rows visits exactly the reference ones *)
    List.filter_map
      (fun r ->
        match reference_twin new_rows r.name with
        | Some twin ->
            Some
              (classify_pair
                 ~scenario:(twin.name ^ " (vs " ^ r.name ^ ")")
                 r twin)
        | None -> None)
      new_rows
  in
  let added =
    List.filter_map
      (fun r -> if find old_rows r.name = None then Some r.name else None)
      new_rows
  in
  let removed =
    List.filter_map
      (fun r -> if find new_rows r.name = None then Some r.name else None)
      old_rows
  in
  (* Work-profile diff: counter snapshots are deterministic work, so a
     changed count is an algorithmic change, not machine noise.  Purely
     informational — it contextualizes a timing verdict ("regressed
     because it now does 2x the sigma evals") but never gates.  The
     allocation-word counters wobble by a few words on cache warm-up,
     hence the small relative+absolute floor. *)
  let work =
    List.concat_map
      (fun name ->
        match (find old_rows name, find new_rows name) with
        | Some o, Some n when o.counters <> [] && n.counters <> [] ->
            List.filter_map
              (fun (k, ov) ->
                match List.assoc_opt k n.counters with
                | Some nv
                  when Float.abs (nv -. ov)
                       > Float.max 0.5
                           (0.005 *. Float.max (Float.abs ov) (Float.abs nv))
                  ->
                    Some
                      { cd_scenario = name; cd_counter = k; cd_old = ov;
                        cd_new = nv }
                | _ -> None)
              o.counters
        | _ -> [])
      joined_names
  in
  { joined; pairs; added; removed; norm_factor; work }

let compare_files ?normalize old_path new_path =
  compare_rows ?normalize (load_file old_path) (load_file new_path)

let verdict_string = function
  | Improved -> "improved"
  | Flat -> "flat"
  | Regressed -> "REGRESSED"
  | Low_confidence -> "low-confidence"

let has_confident_regression report =
  List.exists
    (fun c -> c.verdict = Regressed)
    (report.joined @ report.pairs)

let add_section buf title comparisons =
  if comparisons <> [] then begin
    Printf.bprintf buf "%s\n" title;
    let width =
      List.fold_left
        (fun acc c -> max acc (String.length c.scenario))
        (String.length "scenario") comparisons
    in
    Printf.bprintf buf "  %-*s %14s %14s %7s %7s  %s\n" width "scenario"
      "old ns/run" "new ns/run" "ratio" "thresh" "verdict";
    List.iter
      (fun c ->
        Printf.bprintf buf "  %-*s %14.1f %14.1f %7.3f %7.3f  %s\n" width
          c.scenario c.old_ns c.new_ns c.ratio c.threshold
          (verdict_string c.verdict))
      comparisons
  end

let to_string report =
  let buf = Buffer.create 2048 in
  (match report.norm_factor with
  | Some f ->
      Printf.bprintf buf
        "median-ratio normalization: %.4f (machine-speed factor divided out)\n"
        f
  | None -> ());
  add_section buf "joined scenarios (old vs new)" report.joined;
  add_section buf "in-file reference pairs (new snapshot)" report.pairs;
  let listing title names =
    if names <> [] then
      Printf.bprintf buf "%s: %s\n" title (String.concat ", " names)
  in
  listing "added" report.added;
  listing "removed" report.removed;
  if report.work <> [] then begin
    Printf.bprintf buf "work-profile changes (informational, never gates)\n";
    let width =
      List.fold_left
        (fun acc d ->
          max acc (String.length d.cd_scenario + String.length d.cd_counter + 1))
        0 report.work
    in
    List.iter
      (fun d ->
        let label = d.cd_scenario ^ " " ^ d.cd_counter in
        let ratio =
          if d.cd_old <> 0.0 then
            Printf.sprintf "%7.3fx" (d.cd_new /. d.cd_old)
          else "     new"
        in
        Printf.bprintf buf "  %-*s %14.0f -> %14.0f  %s\n" width label d.cd_old
          d.cd_new ratio)
      report.work
  end;
  let count v =
    List.length
      (List.filter (fun c -> c.verdict = v) (report.joined @ report.pairs))
  in
  Printf.bprintf buf
    "summary: %d improved, %d flat, %d regressed, %d low-confidence\n"
    (count Improved) (count Flat) (count Regressed) (count Low_confidence);
  Buffer.contents buf
