(** Leveled logging facade for library code.

    Library modules must never write to the terminal unconditionally;
    they log through this facade, which is {e quiet by default} — an
    embedding application (or [basched --verbose]) opts in by raising
    the level.  Messages are thunks, so a disabled level costs one
    atomic read and a comparison: no formatting, no allocation.

    Output goes to [stderr] by default; {!set_output} redirects it
    (used by tests, or to bridge into a host application's logger). *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit
(** Messages at severities above the set level are dropped.  [Quiet]
    (the default) drops everything. *)

val level : unit -> level
(** The current level. *)

val enabled : level -> bool
(** Whether a message at the given level would be emitted. *)

val of_string : string -> level option
(** Parse ["quiet"], ["error"], ["warn"], ["info"] or ["debug"]. *)

val set_output : (string -> unit) -> unit
(** Replace the line consumer (default: write to [stderr] and flush).
    The consumer receives complete, already-prefixed lines. *)

val init_from_env : unit -> unit
(** Apply [BATSCHED_LOG] (a level name) if set; warns on stderr for an
    unrecognized value.  Binaries call this at startup so cram tests
    and CI can enable telemetry without flags. *)

val env_stats : unit -> bool
(** Whether [BATSCHED_STATS] is set to [1] or [true] — binaries treat
    it as an implicit [--stats]. *)

val env_opt : string -> string option
(** The environment variable's value, with set-but-empty normalized to
    [None] — so [BATSCHED_EVENTS= cmd] cancels an exported value
    rather than naming a file [""].  Binaries use this for the
    [BATSCHED_EVENTS] / [BATSCHED_METRICS] / [BATSCHED_LEDGER]
    equivalents of [--events] / [--metrics] / [--ledger]. *)

val err : (unit -> string) -> unit
val warn : (unit -> string) -> unit
val info : (unit -> string) -> unit

val debug : (unit -> string) -> unit
(** [debug (fun () -> ...)] — the thunk is only forced when the level
    admits the message. *)
