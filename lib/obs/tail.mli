(** Incremental JSONL reader tolerating torn tails.

    Feeds of arbitrary byte chunks are framed on newlines; bytes after
    the last newline stay buffered until their line completes, so a
    file being appended to (or truncated by a mid-run kill) never
    raises.  Complete lines that fail to parse are skipped and counted
    — the count is the caller's warning signal. *)

type t

val create : unit -> t

val feed : t -> string -> Json.t list
(** [feed t chunk] consumes the next bytes and returns the records
    whose lines completed within them, in order. *)

val finish : t -> Json.t list
(** Declare end-of-input: parses a buffered newline-less final line if
    it is complete JSON, otherwise counts it as torn.  The tailer is
    reusable afterwards (the buffer is drained either way). *)

val pending : t -> bool
(** Whether a partial line is buffered. *)

val bad : t -> int
(** Lines skipped so far (torn tail or corrupt). *)

val read_file : string -> Json.t list * int
(** One-shot lenient read: [(records, skipped)].  Unlike
    {!Json.of_jsonl_file}, never raises on a truncated tail.
    @raise Sys_error if the file cannot be opened. *)
