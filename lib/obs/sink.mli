(** Span-timer sink: monotonic-clock phase timing with a no-op mode.

    A sink is either {!noop} — every {!with_span} call reduces to one
    branch and a direct call, no clock reads, no allocation — or active,
    in which case spans are stamped with the monotonic clock and
    recorded in a {e per-domain} buffer (no locks on the hot path).

    Buffers merge into the sink when a {!Batsched_numeric.Pool} worker
    finishes its slice (hooks installed on first {!create}) and when the
    main domain calls {!spans}; the merge is batched under one mutex.
    Timing never feeds back into the computation, so instrumented runs
    return bit-identical schedules and sigma — property-tested in
    [test/test_obs.ml].

    Only one sink collects at a time: worker domains reach the sink
    through an ambient reference, which {!create} supersedes.  Spans a
    superseded sink already merged remain readable through it. *)

type span = {
  track : int;        (** pool worker index; [0] is the main domain *)
  name : string;      (** phase name, e.g. ["window"], ["choose"] *)
  start_ns : int64;   (** monotonic-clock start *)
  dur_ns : int64;     (** duration, nanoseconds *)
  alloc_words : float;
      (** minor-heap words allocated by this domain during the span
          ([Gc.minor_words] delta); nested spans double-count their
          children, like [dur_ns] does *)
}

type t

val noop : t
(** The disabled sink: {!with_span} is a tail call to the thunk. *)

val create : unit -> t
(** A fresh active sink, installed as the collector for subsequent
    spans (superseding any previous sink).  Records its creation time
    as the trace epoch. *)

val is_active : t -> bool
(** [false] exactly for {!noop}. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f ()]; on an active sink it records a
    [name] span around the call (also when [f] raises). *)

val spans : t -> span list
(** All merged spans, sorted by track, then start time, then duration
    decreasing (an enclosing span precedes children sharing its start).
    Empty for {!noop}.  Flushes the calling domain's buffer first. *)

val epoch_ns : t -> int64
(** The sink's creation timestamp — the zero point of trace export.
    [0L] for {!noop}. *)
