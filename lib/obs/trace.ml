let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Trace-event timestamps are microseconds; emit them with nanosecond
   resolution relative to the sink epoch. *)
let us_of epoch ns = Int64.to_float (Int64.sub ns epoch) /. 1e3

let track_name = function 0 -> "main domain" | w -> Printf.sprintf "worker %d" w

let to_buffer buf sink =
  let spans = Sink.spans sink in
  let epoch = Sink.epoch_ns sink in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  emit
    "  {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
     \"args\":{\"name\":\"batsched\"}}";
  let tracks =
    List.sort_uniq Int.compare
      (List.map (fun (s : Sink.span) -> s.Sink.track) spans)
  in
  List.iter
    (fun w ->
      emit
        (Printf.sprintf
           "  {\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\
            \"args\":{\"name\":\"%s\"}}"
           w (escape (track_name w))))
    tracks;
  List.iter
    (fun (s : Sink.span) ->
      emit
        (Printf.sprintf
           "  {\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\
            \"cat\":\"batsched\",\"ts\":%.3f,\"dur\":%.3f,\
            \"args\":{\"minor_words\":%.0f}}"
           s.Sink.track (escape s.Sink.name)
           (us_of epoch s.Sink.start_ns)
           (Int64.to_float s.Sink.dur_ns /. 1e3)
           s.Sink.alloc_words))
    spans;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_string sink =
  let buf = Buffer.create 4096 in
  to_buffer buf sink;
  Buffer.contents buf

let write sink path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string sink))
