open Batsched_taskgraph
open Batsched_sched
open Batsched_battery

let name = "endurance"

(* A three-cell pack: cycle counts land around ten, where per-cycle
   policy differences compound visibly without hundred-cycle horizons.
   (One Itsy cell sustains only 2-3 G2 missions; 40% degradation kills
   even the first, since one mission's sigma peak is ~19k mA*min.) *)
let cell =
  Cell.make ~label:"itsy-pack-3" ~alpha:(3.0 *. Cell.itsy.Cell.alpha)
    ~beta:Cell.itsy.Cell.beta

let model = Cell.model cell

let deadline = 75.0

let profiles () =
  let g = Instances.g2 in
  let iterative =
    let cfg = Batsched.Config.make ~model ~deadline () in
    Schedule.to_profile g (Batsched.Iterate.run cfg g).Batsched.Iterate.schedule
  in
  let dp =
    Schedule.to_profile g
      (Batsched_baselines.Dp_energy.run ~model g ~deadline)
        .Batsched_baselines.Solution.schedule
  in
  let chowdhury =
    Schedule.to_profile g
      (Batsched_baselines.Chowdhury.run ~model g ~deadline)
        .Batsched_baselines.Solution.schedule
  in
  [ ("iterative", iterative); ("dp-energy", dp); ("chowdhury", chowdhury) ]

let cycles cycle ~period =
  match
    Periodic.cycles_to_death ~max_cycles:200 ~model ~alpha:cell.Cell.alpha
      ~period cycle
  with
  | outcome -> Periodic.cycles outcome
  | exception Periodic.Unsustainable _ -> 0

let run () =
  let named = profiles () in
  let periods = [ 75.0; 90.0; 120.0; 180.0 ] in
  let rows =
    List.map
      (fun (label, cycle) ->
        let charge = Profile.total_charge cycle in
        let budget = cell.Cell.alpha /. charge in
        label
        :: Tables.f0 charge
        :: Printf.sprintf "%.1f" budget
        :: List.map
             (fun period -> string_of_int (cycles cycle ~period))
             periods)
      named
  in
  let headers =
    "schedule" :: "chg/cycle" :: "chg budget"
    :: List.map (fun p -> Printf.sprintf "@%.0fmin" p) periods
  in
  let iterative_cycle = List.assoc "iterative" named in
  let c label period = cycles (List.assoc label named) ~period in
  Printf.sprintf
    "Periodic G2 missions (d = %.0f) on a three-cell pack \
     (alpha = %.0f mA*min): complete cycles before battery death\n%s\n\
     \"chg budget\" = alpha / charge-per-cycle, the ideal-battery cycle \
     ceiling.\n\
     finding: over repeated missions the energy-DP baseline (least \
     charge per cycle) OUTLASTS the paper's sigma-minimizing schedule \
     (%d vs %d cycles) — sigma rewards within-mission recovery that \
     stops mattering once missions repeat, so single-shot sigma is the \
     wrong endurance objective.  Chowdhury, which burns the most charge \
     per cycle, dies first (%d cycles).\n\
     shape checks: cycle counts track the charge budget ordering: %b; \
     cycles non-decreasing in the period: %b; every count is below its \
     ideal ceiling: %b\n"
    deadline cell.Cell.alpha
    (Tables.render ~headers ~rows)
    (c "dp-energy" 75.0) (c "iterative" 75.0) (c "chowdhury" 75.0)
    (List.for_all
       (fun period ->
         c "dp-energy" period >= c "iterative" period
         && c "iterative" period >= c "chowdhury" period)
       periods)
    (let cs = List.map (fun p -> cycles iterative_cycle ~period:p) periods in
     let rec nondec = function
       | a :: (b :: _ as rest) -> a <= b && nondec rest
       | _ -> true
     in
     nondec cs)
    (List.for_all
       (fun (label, cycle) ->
         let budget = cell.Cell.alpha /. Profile.total_charge cycle in
         List.for_all
           (fun period -> float_of_int (c label period) <= budget)
           periods)
       named)
