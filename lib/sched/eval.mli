(** Incremental schedule evaluation for the local-search hot loops.

    An [Eval.t] pairs a {!Batsched_battery.Delta} evaluator with the
    task-level state of one schedule: the sequence (position -> task),
    its inverse, and the design-point assignment.  Search loops cost
    candidate moves through {!try_swap} / {!try_repoint} — O(1) and
    O(position) respectively for incremental battery models, instead
    of the O(n) full profile evaluation per candidate — then {!commit}
    or {!discard} each candidate before trying the next.

    Committed sigma values agree with
    [Schedule.battery_cost ~model g (to_schedule t)] within 1e-9
    relative (see {!Batsched_battery.Delta} for why not bit-for-bit).
    The sequence mirror is only mutated through precedence-checked
    swaps from a validated starting schedule, which is what makes the
    {!to_schedule} fast path ([Schedule.unsafe_make]) sound. *)

open Batsched_taskgraph
open Batsched_battery

type t

val make : model:Model.t -> Graph.t -> Schedule.t -> t
(** Build an evaluator positioned at the given schedule.  O(n) model
    terms. *)

val load : t -> Schedule.t -> unit
(** Re-seat an existing evaluator on another schedule of the same
    graph, dropping any pending move; reuses the internal arrays.
    @raise Invalid_argument on a sequence length mismatch. *)

val graph : t -> Graph.t

val length : t -> int
(** Number of tasks. *)

val sigma : t -> float
(** Committed battery cost at the schedule's completion instant. *)

val finish : t -> float
(** Committed completion time. *)

val task_at : t -> int -> int
(** Task id at a sequence position. *)

val position : t -> int -> int
(** Sequence position of a task id. *)

val column : t -> int -> int
(** Committed design-point column of a task id. *)

val interval_current : t -> int -> float

val interval_duration : t -> int -> float
(** Committed interval fields at a {e sequence position} — direct reads
    of the underlying delta state, for population evaluators that lay
    walkers out positionally ({!Batsched_battery.Sigma_batch}).
    @raise Invalid_argument out of range. *)

val swap_allowed : t -> int -> bool
(** Whether exchanging positions [k] and [k+1] preserves precedence:
    true iff there is no direct edge between the two tasks (transitive
    constraints cannot bind between adjacent positions).  O(out-degree)
    instead of the O(n+e) full topological check.
    @raise Invalid_argument if [k+1] is out of range. *)

val try_swap : t -> int -> float * float
(** Cost exchanging positions [k] and [k+1]; returns the candidate
    [(sigma, finish)] without committing.  The finish is invariant
    under swaps.
    @raise Invalid_argument if the swap violates a precedence edge, is
    out of range, or a move is already pending. *)

val try_repoint : t -> task:int -> col:int -> float * float
(** Cost moving [task] to design-point column [col]; returns the
    candidate [(sigma, finish)] without committing.
    @raise Invalid_argument on bad task/column or a pending move. *)

val commit : t -> unit
(** Adopt the pending candidate (updates sequence / assignment mirrors
    and the delta state).  @raise Invalid_argument if none pending. *)

val discard : t -> unit
(** Drop the pending candidate.
    @raise Invalid_argument if none pending. *)

val sequence : t -> int list
(** Committed sequence (position order). *)

val assignment : t -> Assignment.t
(** Committed assignment (validated copy; O(n)). *)

val to_schedule : t -> Schedule.t
(** Committed state as a schedule, via [Schedule.unsafe_make] (the
    sequence is topological by construction — see the module
    preamble).
    @raise Invalid_argument if a move is pending. *)
