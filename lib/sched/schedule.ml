open Batsched_taskgraph
open Batsched_battery

type t = { sequence : int list; assignment : Assignment.t }

let make g ~sequence ~assignment =
  if not (Analysis.is_topological g sequence) then
    invalid_arg "Schedule.make: sequence is not a topological order";
  { sequence; assignment }

let unsafe_make g ~sequence ~assignment =
  if List.length sequence <> Graph.num_tasks g then
    invalid_arg "Schedule.unsafe_make: sequence length mismatch";
  { sequence; assignment }

let to_profile g t =
  let seq = Array.of_list t.sequence in
  Profile.sequential_fn ~n:(Array.length seq) (fun k ->
      let p = Assignment.chosen_point g t.assignment seq.(k) in
      (p.Task.current, p.Task.duration))

let finish_time g t = Assignment.total_time g t.assignment

let meets_deadline g t ~deadline = finish_time g t <= deadline +. 1e-9

let battery_cost ~model g t = Model.sigma_end model (to_profile g t)

let currents g t =
  List.map
    (fun i -> (Assignment.chosen_point g t.assignment i).Task.current)
    t.sequence

let pp_sequence g fmt seq =
  Format.pp_print_string fmt
    (String.concat "," (List.map (fun i -> (Graph.task g i).Task.name) seq))

let pp g fmt t =
  pp_sequence g fmt t.sequence;
  Format.pp_print_string fmt " / ";
  let parts =
    List.map
      (fun i -> Printf.sprintf "P%d" (Assignment.column t.assignment i + 1))
      t.sequence
  in
  Format.pp_print_string fmt (String.concat "," parts)
