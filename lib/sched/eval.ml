open Batsched_taskgraph
open Batsched_battery

(* Task-level view over [Delta]: the evaluator below maps schedule
   moves (swap two adjacent tasks, repoint one task) onto positional
   interval moves and keeps the sequence / assignment mirrors in sync
   with the committed delta state. *)

type pending = No_move | Swap of int | Repoint of { task : int; col : int }

type t = {
  graph : Graph.t;
  delta : Delta.t;
  mutable seq : int array;   (* position -> task id *)
  mutable pos : int array;   (* task id -> position *)
  mutable cols : int array;  (* task id -> design-point column *)
  mutable pending : pending;
}

let point_of g seq cols k =
  let task = seq.(k) in
  let p = Task.point (Graph.task g task) cols.(task) in
  (p.Task.current, p.Task.duration)

let load t (s : Schedule.t) =
  let n = Graph.num_tasks t.graph in
  let seq = Array.of_list s.Schedule.sequence in
  if Array.length seq <> n then invalid_arg "Eval.load: sequence length";
  let pos = Array.make n 0 in
  Array.iteri (fun k task -> pos.(task) <- k) seq;
  let cols = Array.of_list (Assignment.to_list s.Schedule.assignment) in
  t.seq <- seq;
  t.pos <- pos;
  t.cols <- cols;
  t.pending <- No_move;
  Delta.load t.delta ~n ~point:(point_of t.graph seq cols)

let make ~model g (s : Schedule.t) =
  let t =
    { graph = g;
      delta = Delta.create model;
      seq = [||];
      pos = [||];
      cols = [||];
      pending = No_move }
  in
  load t s;
  t

let graph t = t.graph

let length t = Array.length t.seq

let sigma t = Delta.sigma t.delta

let finish t = Delta.finish t.delta

let task_at t k =
  if k < 0 || k >= Array.length t.seq then
    invalid_arg "Eval.task_at: position out of range";
  t.seq.(k)

let position t task =
  if task < 0 || task >= Array.length t.pos then
    invalid_arg "Eval.position: task out of range";
  t.pos.(task)

let column t task =
  if task < 0 || task >= Array.length t.cols then
    invalid_arg "Eval.column: task out of range";
  t.cols.(task)

let interval_current t k = Delta.current t.delta k

let interval_duration t k = Delta.duration t.delta k

let check_no_pending t name =
  match t.pending with
  | No_move -> ()
  | _ -> invalid_arg ("Eval." ^ name ^ ": uncommitted pending move")

(* Exchanging adjacent positions [k, k+1] preserves topological order
   iff there is no direct edge between the two tasks (a transitive
   precedence always has a witness between them, so only the direct
   edge can be violated) — an O(out-degree) check replacing the
   O(n + e) [Analysis.is_topological] sweep per candidate. *)
let swap_allowed t k =
  if k < 0 || k + 1 >= Array.length t.seq then
    invalid_arg "Eval.swap_allowed: position out of range";
  let a = t.seq.(k) and b = t.seq.(k + 1) in
  not (List.mem b (Graph.succs t.graph a))

let try_swap t k =
  check_no_pending t "try_swap";
  if not (swap_allowed t k) then
    invalid_arg "Eval.try_swap: swap violates a precedence edge";
  let r = Delta.try_swap t.delta k in
  t.pending <- Swap k;
  r

let try_repoint t ~task ~col =
  check_no_pending t "try_repoint";
  if task < 0 || task >= Array.length t.pos then
    invalid_arg "Eval.try_repoint: task out of range";
  let p = Task.point (Graph.task t.graph task) col in
  let r =
    Delta.try_set t.delta t.pos.(task) ~current:p.Task.current
      ~duration:p.Task.duration
  in
  t.pending <- Repoint { task; col };
  r

let commit t =
  (match t.pending with
  | No_move -> invalid_arg "Eval.commit: no pending move"
  | Swap k ->
      let a = t.seq.(k) and b = t.seq.(k + 1) in
      t.seq.(k) <- b;
      t.seq.(k + 1) <- a;
      t.pos.(a) <- k + 1;
      t.pos.(b) <- k
  | Repoint { task; col } -> t.cols.(task) <- col);
  t.pending <- No_move;
  Delta.commit t.delta

let discard t =
  (match t.pending with
  | No_move -> invalid_arg "Eval.discard: no pending move"
  | _ -> ());
  t.pending <- No_move;
  Delta.discard t.delta

let sequence t = Array.to_list t.seq

let assignment t = Assignment.of_list t.graph (Array.to_list t.cols)

(* The sequence is only ever mutated through precedence-checked
   adjacent swaps starting from a validated schedule, so it stays a
   topological order by construction — [unsafe_make] skips the O(n+e)
   re-validation. *)
let to_schedule t =
  check_no_pending t "to_schedule";
  Schedule.unsafe_make t.graph ~sequence:(sequence t)
    ~assignment:(assignment t)
