(** Complete schedules: a linearization plus a design-point assignment.

    The platform executes tasks back to back in sequence order, each at
    its assigned design point; the induced discharge profile is what the
    battery model evaluates. *)

open Batsched_taskgraph
open Batsched_battery

type t = private {
  sequence : int list;      (** a valid linearization of the graph *)
  assignment : Assignment.t;
}

val make : Graph.t -> sequence:int list -> assignment:Assignment.t -> t
(** @raise Invalid_argument if [sequence] is not a topological order of
    the graph. *)

val unsafe_make : Graph.t -> sequence:int list -> assignment:Assignment.t -> t
(** [make] without the O(n+e) topological re-validation — only the
    sequence length is checked.  For hot paths (the delta-evaluating
    search loops) that construct sequences known-valid by construction:
    permutations reached from a validated order through precedence-
    checked adjacent swaps.  The caller owns that invariant; entry
    points parsing external input must keep using {!make}.
    @raise Invalid_argument if [sequence] has the wrong length. *)

val to_profile : Graph.t -> t -> Profile.t
(** Back-to-back discharge profile starting at time 0. *)

val finish_time : Graph.t -> t -> float
(** Completion time of the last task (= assignment's total time). *)

val meets_deadline : Graph.t -> t -> deadline:float -> bool
(** [finish_time <= deadline] with a 1e-9 tolerance for float noise in
    published 0.1-minute data. *)

val battery_cost : model:Model.t -> Graph.t -> t -> float
(** The paper's [CalculateBatteryCost]: sigma at the schedule's
    completion instant. *)

val currents : Graph.t -> t -> float list
(** Chosen current of each task in sequence order (the discharge
    staircase). *)

val pp : Graph.t -> Format.formatter -> t -> unit
(** Paper-style rendering: task names in sequence order and the DP row
    ("T1,T4,T5,... / P5,P5,P4,..." with DPs in sequence order). *)

val pp_sequence : Graph.t -> Format.formatter -> int list -> unit
(** Just the comma-separated task names of a sequence. *)
