(** Evaluation of the exponential-sum kernel of the Rakhmatov–Vrudhula
    battery model.

    The model (Eq. 1 of the paper) needs, for each discharge interval,

    {[ F(beta, a, b) = 2 * sum_{m=1..terms} (exp(-beta^2 m^2 a)
                                           - exp(-beta^2 m^2 b))
                                           / (beta^2 m^2) ]}

    with [0 <= a <= b].  [F] is the "unavailable charge" contribution: it
    measures how much of the charge drawn during an interval is
    recovered by diffusion between the end of the interval ([a] time
    units before the observation instant) and its start ([b] before it).

    The paper truncates the series at 10 terms; callers can request more.
    Terms decay like [exp(-beta^2 m^2 a)], so convergence is extremely
    fast unless [a = 0].

    {2 Caching}

    The two-sided kernel telescopes as [F(a, b) = F(a) - F(b)] over the
    one-sided tail {!exp_sum}, so {!kernel} is served from a memoized,
    domain-local {!Fcache} of tail values keyed on [(beta, terms, t)]
    (raw float words, no per-lookup allocation, generational eviction):
    adjacent intervals of a back-to-back profile share their boundary
    evaluations, and repeated sigma evaluations over the same candidate
    schedules hit the table outright.  {!kernel_direct} bypasses the
    cache and sums the differences term by term — it is the reference
    the property tests compare against.

    {2 Negative-time noise}

    Time arguments are typically differences of profile endpoints, so
    float cancellation can produce a few-ulp negative where the exact
    value is zero.  {!exp_sum} and {!exp_sum_cached} clamp arguments in
    [[-1e-12, 0)] to [0.0]; anything more negative is a genuine caller
    bug and still raises. *)

val default_terms : int
(** Number of series terms used by the paper (10). *)

val exp_sum : ?terms:int -> beta:float -> float -> float
(** [exp_sum ~beta t] is [2 * sum_{m=1..terms} exp(-beta^2 m^2 t)
    / (beta^2 m^2)], the one-sided tail used to build {!kernel}.
    [t] must be [>= -1e-12]; values in [[-1e-12, 0)] are cancellation
    noise and evaluate as [0.0].
    @raise Invalid_argument on [t < -1e-12], non-positive [beta] or
    non-positive [terms]. *)

val exp_sum_cached : ?terms:int -> beta:float -> float -> float
(** As {!exp_sum}, served from the domain-local memo table.  Returns
    values bit-identical to {!exp_sum} (the table stores exactly what
    {!exp_sum} computed).
    @raise Invalid_argument as {!exp_sum}. *)

val kernel : ?terms:int -> beta:float -> float -> float -> float
(** [kernel ~beta a b] is [F(beta, a, b)] above, computed as the
    difference of two memoized {!exp_sum_cached} tails and clamped at
    [0].  Requires [0 <= a <= b].  Agrees with {!kernel_direct} to a
    few ulps (well within 1e-9).
    @raise Invalid_argument if the ordering constraint is violated. *)

val kernel_direct : ?terms:int -> beta:float -> float -> float -> float
(** The uncached reference: sums [(exp(-b2 m2 a) - exp(-b2 m2 b))
    / (b2 m2)] term by term with compensated summation, two [exp]
    calls per term, no memoization.
    @raise Invalid_argument as {!kernel}. *)

val kernel_limit : beta:float -> float
(** [kernel_limit ~beta] is [lim_{b -> infinity} F(beta, 0, b)
    = 2 * sum 1/(beta^2 m^2) = pi^2 / (3 beta^2)], the total
    unavailable-charge ceiling for an instantaneous unit of load.
    Useful as a sanity bound in tests. *)
