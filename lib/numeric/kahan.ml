type t = { total : float; compensation : float }

let zero = { total = 0.0; compensation = 0.0 }

let create x = { total = x; compensation = 0.0 }

(* Neumaier's variant: unlike plain Kahan it also compensates when the
   incoming term is larger in magnitude than the running total. *)
let add { total; compensation } x =
  let t = total +. x in
  let c =
    if Float.abs total >= Float.abs x then compensation +. ((total -. t) +. x)
    else compensation +. ((x -. t) +. total)
  in
  { total = t; compensation = c }

let sum { total; compensation } = total +. compensation

let sum_list xs = sum (List.fold_left add zero xs)

let sum_array xs = sum (Array.fold_left add zero xs)

let sum_fn n f =
  if n < 0 then invalid_arg "Kahan.sum_fn: negative count";
  let rec loop i acc = if i >= n then acc else loop (i + 1) (add acc (f i)) in
  sum (loop 0 zero)

(* Mutable variant for hot loops: both fields are floats, so the record
   is flat and [add] allocates nothing — unlike the immutable [t],
   whose per-[add] record allocation would defeat the zero-allocation
   contract of the batched sigma kernels. *)
module Acc = struct
  type t = { mutable total : float; mutable comp : float }

  let create () = { total = 0.0; comp = 0.0 }

  let reset a =
    a.total <- 0.0;
    a.comp <- 0.0

  let add a x =
    let t = a.total +. x in
    a.comp <-
      a.comp
      +. (if Float.abs a.total >= Float.abs x then (a.total -. t) +. x
          else (x -. t) +. a.total);
    a.total <- t

  let sum a = a.total +. a.comp
end
