(** Compensated (Kahan–Neumaier) floating-point summation.

    The Rakhmatov–Vrudhula charge function sums many exponential terms of
    widely varying magnitude; naive accumulation loses precision for long
    discharge profiles.  This module provides a small accumulator that
    keeps a running compensation term. *)

type t
(** A summation accumulator.  Immutable; [add] returns a new accumulator. *)

val zero : t
(** The empty sum. *)

val create : float -> t
(** [create x] is an accumulator holding exactly [x]. *)

val add : t -> float -> t
(** [add acc x] adds [x] to the running sum with Neumaier compensation. *)

val sum : t -> float
(** [sum acc] is the compensated value of the accumulated sum. *)

val sum_list : float list -> float
(** [sum_list xs] is the compensated sum of [xs]. *)

val sum_array : float array -> float
(** [sum_array xs] is the compensated sum of [xs]. *)

val sum_fn : int -> (int -> float) -> float
(** [sum_fn n f] is the compensated sum of [f 0 + ... + f (n-1)].
    @raise Invalid_argument if [n < 0]. *)

(** Mutable accumulator for allocation-sensitive inner loops.  The
    record is flat (all-float fields), so {!Acc.add} allocates nothing
    — the immutable {!t} above boxes a fresh record per [add].  Same
    Neumaier compensation. *)
module Acc : sig
  type t

  val create : unit -> t

  val reset : t -> unit
  (** Zero the accumulator for reuse. *)

  val add : t -> float -> unit

  val sum : t -> float
  (** Compensated value accumulated since the last {!reset}. *)
end
