(** SplitMix64: the repository's one pseudo-random core.

    Every deterministic stream in the repo is SplitMix64 underneath —
    {!Rng} (search walks, graph generators), the bootstrap resampler in
    [Batsched_obs.Profile], and the fleet sampler's per-device
    substreams.  This module is the shared primitive: a 64-bit state
    advanced by the golden-gamma increment and finalized by the
    Stafford mix13 permutation.

    The draw functions here reproduce the historical call sites
    bit-for-bit ({!next} is [Rng.bits64], {!rand_below} is the
    bootstrap's rem-based pick), so extracting the generator changed no
    committed stream.

    {2 Substreams}

    {!substream} derives child stream [i] as a {e pure function} of the
    parent state and [i] — the parent is neither read destructively nor
    advanced, and children with distinct indices never collide (the
    state jump is injective in [i]).  A population sampler that seeds
    device [i] from [substream base i] therefore produces the same
    device no matter how the index range is sharded across domains:
    pool-size invariance by construction, not by careful scheduling. *)

type t
(** Mutable generator state. *)

val golden_gamma : int64
(** The Weyl-sequence increment 0x9E3779B97F4A7C15. *)

val mix64 : int64 -> int64
(** The Stafford variant-13 finalizer: a bijective avalanche of the
    state into an output word. *)

val create : int -> t
(** [create seed] premixes the seed once — equal seeds, equal streams.
    This is the {!Rng}-compatible construction. *)

val of_raw : int64 -> t
(** [of_raw state] adopts [state] verbatim (no premix) — the
    construction the [Batsched_obs.Profile] bootstrap has always used,
    kept for bit-compatibility with committed dominance verdicts. *)

val state : t -> int64
(** The current raw state (diagnostics, checkpointing). *)

val copy : t -> t
(** Duplicate the state; both copies continue the same future stream. *)

val next : t -> int64
(** Advance by the golden gamma and return the mixed output. *)

val split : t -> t
(** [split g] derives an independent generator seeded from [g]'s next
    output; [g] advances once. *)

val substream : t -> int -> t
(** [substream g i] is the [i]-th child stream: a fresh generator whose
    state is a mix of [g]'s current state jumped [i + 1] gammas ahead.
    Pure — [g] is not advanced, and the same [(g, i)] always yields the
    same child, whatever order (or domain) the calls happen in.
    Requires [i >= 0].
    @raise Invalid_argument on a negative index. *)

val float01 : t -> float
(** Uniform in [[0, 1)], from the top 53 bits of {!next}. *)

val rand_below : t -> int -> int
(** [rand_below g n] is an integer in [[0, n-1]] via the historical
    [rem]-based draw (negligible modulo bias at the bounds used here).
    Requires [n > 0].
    @raise Invalid_argument on a non-positive bound. *)
