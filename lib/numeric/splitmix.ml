type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let of_raw state = { state }

let state g = g.state

let copy g = { state = g.state }

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = next g }

(* jump [i + 1] gammas ahead of the parent's current position and
   avalanche: distinct indices land on distinct states (the jump is
   injective in [i]), and the parent is untouched, so child identity is
   a pure function of (parent state, i) — the property the fleet
   sampler's pool-size invariance rests on *)
let substream g i =
  if i < 0 then invalid_arg "Splitmix.substream: negative index";
  { state =
      mix64 (Int64.add g.state (Int64.mul golden_gamma (Int64.of_int (i + 1))))
  }

let float01 g =
  let v = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let rand_below g n =
  if n <= 0 then invalid_arg "Splitmix.rand_below: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next g) 1) (Int64.of_int n))
