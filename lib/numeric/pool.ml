(* Persistent work-stealing executor.

   Earlier revisions spawned fresh domains on every parallel region and
   divided work by static striding.  That pays domain-spawn cost
   (~100us) per region — ruinous for window sweeps and multistart
   screens that open many small regions — and a static split leaves
   workers idle at the join barrier when item costs are skewed.  This
   version keeps one set of long-lived worker domains per pool and
   deals work through per-worker Chase–Lev deques:

   - The calling domain doubles as worker 0.  A region starts by
     pushing one [Chunk] covering the whole index range onto the
     caller's deque; whoever picks a chunk up splits it in half while
     it is above the region's grain, pushing the upper half back onto
     its own deque.  Thieves steal from the top — the oldest, hence
     largest, outstanding half — so lazy binary splitting doubles as
     steal-half scheduling with adaptive chunk size and no up-front
     partitioning.
   - Idle workers steal from victims drawn from a per-worker
     deterministic RNG, then park on a condition variable; pushes of
     split halves wake them only when someone is actually parked, so
     the steady state takes no syscalls.
   - Determinism: results are written at their input index, every item
     is executed exactly once, and exceptions are banked per item and
     re-raised in index order — which domain ran what never shows.

   The contract of [map_array]/[map_list] is unchanged from the
   fork-join version (see the .mli); [map_array_strided] keeps the old
   spawn-per-region path alive as a benchmark baseline and test
   oracle. *)

type worker_stat = {
  items : int;
  chunks : int;
  steals : int;
  jobs : int;
  busy_s : float;
}

(* Work-stealing deque (Chase–Lev).  The owner pushes and pops at the
   bottom; thieves CAS the top.  Cells are [option] atomics so no
   dummy element is needed.  Fixed capacity: the owner holds at most
   O(log n) split halves plus the initial seeds, far below 256; if a
   push ever finds the ring full the caller simply keeps the range and
   runs it inline, which is always correct. *)
module Deque : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> bool
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
end = struct
  let capacity = 256
  let mask = capacity - 1

  type 'a t = {
    cells : 'a option Atomic.t array;
    top : int Atomic.t;
    bottom : int Atomic.t;
  }

  let create () =
    { cells = Array.init capacity (fun _ -> Atomic.make None);
      top = Atomic.make 0;
      bottom = Atomic.make 0 }

  let push q v =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    if b - t >= capacity - 1 then false
    else begin
      Atomic.set q.cells.(b land mask) (Some v);
      Atomic.set q.bottom (b + 1);
      true
    end

  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* empty; restore *)
      Atomic.set q.bottom t;
      None
    end
    else if b > t then begin
      let c = q.cells.(b land mask) in
      let v = Atomic.get c in
      Atomic.set c None;
      v
    end
    else begin
      (* last element: race thieves for it via the top counter *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        let c = q.cells.(b land mask) in
        let v = Atomic.get c in
        Atomic.set c None;
        v
      end
      else None
    end

  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b - t <= 0 then None
    else begin
      let c = q.cells.(t land mask) in
      let v = Atomic.get c in
      if Atomic.compare_and_set q.top t (t + 1) then begin
        (* we own index [t] now; clearing cannot clobber a fresh push
           because the owner rejects pushes at capacity - 1 *)
        Atomic.set c None;
        v
      end
      else None
    end
end

(* A parallel region: one [map_array]/[for_range] call.  [run_span]
   executes a half-open index range, catching item exceptions into the
   caller's result buffer; [remaining] counts unexecuted items;
   [participants] counts helper workers currently checked in, so the
   caller can wait for their Probe drains and obs hooks before
   returning — the fork-join version got the same guarantee from
   [Domain.join]. *)
type region = {
  run_span : int -> int -> unit;
  remaining : int Atomic.t;
  participants : int Atomic.t;
  grain : int;
  t0 : float;
  mu : Mutex.t;
  cv : Condition.t;
}

type task = Chunk of region * int * int | Job of (unit -> unit)

type wstat = {
  mutable st_items : int;
  mutable st_chunks : int;
  mutable st_steals : int;
  mutable st_jobs : int;
  mutable st_busy_s : float;
}

type exec = {
  slots : int;  (* requested degree, including the caller slot 0 *)
  helpers : int;  (* worker domains actually spawned (slots 1..helpers) *)
  deques : task Deque.t array;
  injector : task Queue.t;
  inj_lock : Mutex.t;
  park : Mutex.t;
  cond : Condition.t;
  wake_seq : int Atomic.t;
  idlers : int Atomic.t;
  stop : bool Atomic.t;
  region_lock : Mutex.t;  (* serializes map regions across domains *)
  stats : wstat array;
  rngs : Rng.t array;  (* per-slot victim choice *)
  mutable domains : unit Domain.t list;
}

type state = Idle | Running of exec | Dead

type t = { requested : int; lock : Mutex.t; mutable state : state }

let sequential = { requested = 1; lock = Mutex.create (); state = Dead }

let create size =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  { requested = size; lock = Mutex.create (); state = Idle }

let recommended () = Domain.recommended_domain_count ()

let create_recommended () = create (recommended ())

let size t = t.requested

(* Set while a domain is executing region work or a submitted job, so
   nested [map] calls degrade to the sequential path instead of
   oversubscribing the machine (and so the worker-count arithmetic
   stays deterministic). *)
let inside_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Which worker slot this domain occupies within the current region;
   0 outside any region (the calling domain doubles as worker 0).
   Observability only — telemetry tags records with it. *)
let current_worker : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker_index () = Domain.DLS.get current_worker

(* Observability hooks, run inside each worker domain around its share
   of a parallel region or a submitted job.  [Batsched_obs.Sink]
   installs hooks that tag the worker's trace track and flush its span
   buffer at region joins; the default hooks do nothing. *)
let worker_start : (int -> unit) ref = ref (fun _ -> ())

let worker_finish : (int -> unit) ref = ref (fun _ -> ())

let set_worker_hooks ~on_start ~on_finish =
  worker_start := on_start;
  worker_finish := on_finish

(* Test-only: an injected delay run before each chunk, to dilate chunk
   execution enough that steals reliably happen even on few cores. *)
let task_delay : (unit -> unit) option ref = ref None

let set_task_delay d = task_delay := d

(* Helper domains alive across all pools of the process, kept well
   under the runtime's ~128-domain ceiling.  A pool that cannot get
   its full complement spawns fewer helpers (possibly none) and stays
   correct — regions just fan out less. *)
let max_helper_domains = 96

let helper_budget = Atomic.make max_helper_domains

let rec take_budget want =
  if want <= 0 then 0
  else
    let avail = Atomic.get helper_budget in
    if avail <= 0 then 0
    else
      let take = Stdlib.min want avail in
      if Atomic.compare_and_set helper_budget avail (avail - take) then take
      else take_budget want

let zero_stat () =
  { st_items = 0; st_chunks = 0; st_steals = 0; st_jobs = 0; st_busy_s = 0.0 }

let now () = Unix.gettimeofday ()

let wake_all ex =
  Atomic.incr ex.wake_seq;
  Mutex.lock ex.park;
  Condition.broadcast ex.cond;
  Mutex.unlock ex.park

let wake_if_idle ex = if Atomic.get ex.idlers > 0 then wake_all ex

(* Execute [lo, hi): split the range in half while above the grain,
   pushing upper halves onto our own deque for thieves, then run the
   leading piece.  Returns the span's wall time and whether this
   chunk zeroed the region. *)
let execute_chunk ex w r lo0 hi0 =
  let dq = ex.deques.(w) in
  let lo = ref lo0 and hi = ref hi0 in
  (try
     while !hi - !lo > r.grain do
       let mid = !lo + ((!hi - !lo) / 2) in
       if Deque.push dq (Chunk (r, mid, !hi)) then begin
         hi := mid;
         wake_if_idle ex
       end
       else raise Exit (* ring full: run the rest inline *)
     done
   with Exit -> ());
  (match !task_delay with Some d -> d () | None -> ());
  let t1 = now () in
  r.run_span !lo !hi;
  let dt = now () -. t1 in
  let st = ex.stats.(w) in
  let count = !hi - !lo in
  st.st_chunks <- st.st_chunks + 1;
  st.st_items <- st.st_items + count;
  st.st_busy_s <- st.st_busy_s +. dt;
  let before = Atomic.fetch_and_add r.remaining (-count) in
  (dt, before - count = 0)

let take_injector ex =
  Mutex.lock ex.inj_lock;
  let t = if Queue.is_empty ex.injector then None else Some (Queue.pop ex.injector) in
  Mutex.unlock ex.inj_lock;
  t

let steal_task ex w rng =
  if ex.slots <= 1 then None
  else
    let rec go k =
      if k = 0 then None
      else
        let v = Rng.int rng ex.slots in
        if v = w then go (k - 1)
        else
          match Deque.steal ex.deques.(v) with
          | Some _ as t ->
              ex.stats.(w).st_steals <- ex.stats.(w).st_steals + 1;
              let p = Probe.local () in
              p.Probe.pool_steals <- p.Probe.pool_steals + 1;
              t
          | None -> go (k - 1)
    in
    go (2 * ex.slots)

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)

let worker_loop ex w =
  let rng = ex.rngs.(w) in
  (* the region this worker is checked into, with its busy-time
     accumulator; at most one at a time because regions are serialized
     and a region's caller returns only after every participant has
     checked out *)
  let joined : (region * float ref) option ref = ref None in
  let checkout () =
    match !joined with
    | None -> ()
    | Some (r, busy) ->
        joined := None;
        if !Probe.observing then begin
          let wall = now () -. r.t0 in
          if wall > 0.0 then
            Probe.observe "pool/occupancy" (Float.min 1.0 (!busy /. wall))
        end;
        Probe.drain_local ();
        !worker_finish w;
        Domain.DLS.set current_worker 0;
        Domain.DLS.set inside_region false;
        ignore (Atomic.fetch_and_add r.participants (-1));
        (* wake the region's caller: it waits on [cv] for both
           [remaining] and [participants] to hit zero *)
        Mutex.lock r.mu;
        Condition.broadcast r.cv;
        Mutex.unlock r.mu
  in
  let checkin r =
    joined := Some (r, ref 0.0);
    Atomic.incr r.participants;
    Domain.DLS.set inside_region true;
    Domain.DLS.set current_worker w;
    !worker_start w
  in
  let run_chunk r lo hi =
    (match !joined with
    | Some (r0, _) when r0 == r -> ()
    | Some _ ->
        checkout ();
        checkin r
    | None -> checkin r);
    let dt, finished = execute_chunk ex w r lo hi in
    (match !joined with Some (_, b) -> b := !b +. dt | None -> ());
    if finished then checkout ()
  in
  let run_job fn =
    let st = ex.stats.(w) in
    st.st_jobs <- st.st_jobs + 1;
    Domain.DLS.set inside_region true;
    Domain.DLS.set current_worker w;
    !worker_start w;
    let t1 = now () in
    (* jobs own their exceptions (see the .mli); anything escaping is
       dropped rather than tearing the worker down *)
    (try fn () with _ -> ());
    st.st_busy_s <- st.st_busy_s +. (now () -. t1);
    Probe.drain_local ();
    !worker_finish w;
    Domain.DLS.set current_worker 0;
    Domain.DLS.set inside_region false
  in
  let find () =
    match Deque.pop ex.deques.(w) with
    | Some _ as t -> t
    | None -> (
        (* while checked into a region, skip the injector: picking up a
           long job there would stall the region's join *)
        let from_injector = if !joined = None then take_injector ex else None in
        match from_injector with
        | Some _ as t -> t
        | None -> steal_task ex w rng)
  in
  while not (Atomic.get ex.stop) do
    let seen = Atomic.get ex.wake_seq in
    match find () with
    | Some (Chunk (r, lo, hi)) -> run_chunk r lo hi
    | Some (Job fn) -> run_job fn
    | None ->
        checkout ();
        Mutex.lock ex.park;
        if Atomic.get ex.wake_seq = seen && not (Atomic.get ex.stop) then begin
          Atomic.incr ex.idlers;
          Condition.wait ex.cond ex.park;
          Atomic.decr ex.idlers
        end;
        Mutex.unlock ex.park
  done;
  checkout ();
  Probe.drain_local ()

let make_exec pool helpers =
  let slots = pool.requested in
  let ex =
    { slots;
      helpers;
      deques = Array.init slots (fun _ -> Deque.create ());
      injector = Queue.create ();
      inj_lock = Mutex.create ();
      park = Mutex.create ();
      cond = Condition.create ();
      wake_seq = Atomic.make 0;
      idlers = Atomic.make 0;
      stop = Atomic.make false;
      region_lock = Mutex.create ();
      stats = Array.init slots (fun _ -> zero_stat ());
      rngs = Array.init slots (fun w -> Rng.create (0x5eed0 + w));
      domains = [] }
  in
  ex.domains <-
    List.init helpers (fun k -> Domain.spawn (fun () -> worker_loop ex (k + 1)));
  ex

(* The executor is built on first parallel use, not in [create]: a
   pool value stays cheap to make and store in a config, and purely
   sequential programs never spawn a domain. *)
let ensure_exec pool =
  Mutex.lock pool.lock;
  let r =
    match pool.state with
    | Running ex -> Some ex
    | Dead -> None
    | Idle ->
        let helpers = take_budget (pool.requested - 1) in
        if helpers = 0 then None (* budget exhausted: run sequentially *)
        else begin
          let ex = make_exec pool helpers in
          pool.state <- Running ex;
          Some ex
        end
  in
  Mutex.unlock pool.lock;
  r

let shutdown pool =
  Mutex.lock pool.lock;
  (match pool.state with
  | Dead -> ()
  | Idle -> pool.state <- Dead
  | Running ex ->
      Atomic.set ex.stop true;
      wake_all ex;
      List.iter Domain.join ex.domains;
      ignore (Atomic.fetch_and_add helper_budget ex.helpers);
      pool.state <- Dead);
  Mutex.unlock pool.lock

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let live_workers pool =
  Mutex.lock pool.lock;
  let n = match pool.state with Running ex -> ex.helpers | _ -> 0 in
  Mutex.unlock pool.lock;
  n

let worker_stats pool =
  Mutex.lock pool.lock;
  let stats =
    match pool.state with
    | Running ex ->
        Array.map
          (fun s ->
            { items = s.st_items;
              chunks = s.st_chunks;
              steals = s.st_steals;
              jobs = s.st_jobs;
              busy_s = s.st_busy_s })
          ex.stats
    | _ -> [||]
  in
  Mutex.unlock pool.lock;
  stats

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)

(* Caller side of a region: keep executing chunks (own deque first,
   then steals) until every item is done, sleeping on the region's
   condition variable when no work is visible — residual chunks are
   then in the hands of live workers, and whichever zeroes [remaining]
   broadcasts on checkout. *)
let drive ex r =
  let rng = ex.rngs.(0) in
  let busy = ref 0.0 in
  let rec loop () =
    if Atomic.get r.remaining > 0 then begin
      let found =
        match Deque.pop ex.deques.(0) with
        | Some _ as t -> t
        | None -> steal_task ex 0 rng
      in
      (match found with
      | Some (Chunk (r', lo, hi)) ->
          let dt, _ = execute_chunk ex 0 r' lo hi in
          if r' == r then busy := !busy +. dt
      | Some (Job _) ->
          (* jobs never sit on deques, only in the injector *)
          assert false
      | None ->
          Mutex.lock r.mu;
          if Atomic.get r.remaining > 0 then Condition.wait r.cv r.mu;
          Mutex.unlock r.mu);
      loop ()
    end
  in
  loop ();
  !busy

let wait_participants r =
  Mutex.lock r.mu;
  while Atomic.get r.participants > 0 do
    Condition.wait r.cv r.mu
  done;
  Mutex.unlock r.mu

(* How many chunks per slot the grain aims for.  8 keeps scheduling
   overhead negligible while leaving enough slack for stealing to
   rebalance a 10x cost skew. *)
let chunk_factor = 8

let run_region ex ~n ~run_span =
  Mutex.lock ex.region_lock;
  let r =
    { run_span;
      remaining = Atomic.make n;
      participants = Atomic.make 0;
      grain = Stdlib.max 1 (n / ((ex.helpers + 1) * chunk_factor));
      t0 = now ();
      mu = Mutex.create ();
      cv = Condition.create () }
  in
  Domain.DLS.set inside_region true;
  Domain.DLS.set current_worker 0;
  !worker_start 0;
  let finally () =
    (* mirror the worker checkout: bank the caller's counters and let
       the observability layer flush, exactly as the fork-join version
       did for its slice 0 *)
    Probe.drain_local ();
    Domain.DLS.set current_worker 0;
    !worker_finish 0;
    Domain.DLS.set inside_region false;
    Mutex.unlock ex.region_lock
  in
  Fun.protect ~finally (fun () ->
      ignore (Deque.push ex.deques.(0) (Chunk (r, 0, n)));
      wake_all ex;
      let busy = drive ex r in
      wait_participants r;
      if !Probe.observing then begin
        let wall = now () -. r.t0 in
        if wall > 0.0 then
          Probe.observe "pool/occupancy" (Float.min 1.0 (busy /. wall))
      end)

let region_map ex f xs n =
  let results = Array.make n None in
  let run_span lo hi =
    for i = lo to hi - 1 do
      results.(i) <- Some (try Ok (f xs.(i)) with e -> Error e)
    done
  in
  run_region ex ~n ~run_span;
  results

(* Surface results in input order; the first stored exception (in
   index order, matching what a sequential map would have hit first)
   is re-raised. *)
let unwrap = function
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let map_array pool f xs =
  let n = Array.length xs in
  let workers = Stdlib.min pool.requested n in
  let probe = Probe.local () in
  probe.Probe.pool_tasks <- probe.Probe.pool_tasks + n;
  if workers <= 1 || Domain.DLS.get inside_region then Array.map f xs
  else
    match ensure_exec pool with
    | None -> Array.map f xs
    | Some ex ->
        probe.Probe.pool_regions <- probe.Probe.pool_regions + 1;
        Array.map unwrap (region_map ex f xs n)

let map_list pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let probe = Probe.local () in
      let go_direct () =
        (* direct path: no array round-trip; [rev_map] keeps it
           tail-recursive for long lists *)
        List.rev (List.rev_map f xs)
      in
      if pool.requested <= 1 || Domain.DLS.get inside_region then begin
        probe.Probe.pool_tasks <- probe.Probe.pool_tasks + List.length xs;
        go_direct ()
      end
      else begin
        let arr = Array.of_list xs in
        let n = Array.length arr in
        probe.Probe.pool_tasks <- probe.Probe.pool_tasks + n;
        match ensure_exec pool with
        | None -> go_direct ()
        | Some ex ->
            probe.Probe.pool_regions <- probe.Probe.pool_regions + 1;
            let results = region_map ex f arr n in
            (* surface the smallest-index exception first, then build
               the list back-to-front without an intermediate array *)
            Array.iter
              (function Some (Error e) -> raise e | _ -> ())
              results;
            let rec build i acc =
              if i < 0 then acc else build (i - 1) (unwrap results.(i) :: acc)
            in
            build (n - 1) []
      end

let for_range pool ~n f =
  if n <= 0 then ()
  else begin
    let probe = Probe.local () in
    probe.Probe.pool_tasks <- probe.Probe.pool_tasks + n;
    let workers = Stdlib.min pool.requested n in
    if workers <= 1 || Domain.DLS.get inside_region then f 0 n
    else
      match ensure_exec pool with
      | None -> f 0 n
      | Some ex ->
          probe.Probe.pool_regions <- probe.Probe.pool_regions + 1;
          (* keep the span exception of the smallest start index — the
             first failure a sequential left-to-right sweep would hit *)
          let err_mu = Mutex.create () in
          let err = ref None in
          let run_span lo hi =
            try f lo hi
            with e ->
              Mutex.lock err_mu;
              (match !err with
              | Some (lo0, _) when lo0 <= lo -> ()
              | _ -> err := Some (lo, e));
              Mutex.unlock err_mu
          in
          run_region ex ~n ~run_span;
          (match !err with Some (_, e) -> raise e | None -> ())
  end

let submit pool fn =
  match ensure_exec pool with
  | Some ex when ex.helpers > 0 ->
      Mutex.lock ex.inj_lock;
      Queue.push (Job fn) ex.injector;
      Mutex.unlock ex.inj_lock;
      wake_all ex
  | _ ->
      (* no helpers: run the job inline, with the same degradation of
         nested parallel regions as on a worker *)
      let saved = Domain.DLS.get inside_region in
      Domain.DLS.set inside_region true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside_region saved)
        (fun () -> try fn () with _ -> ())

(* ------------------------------------------------------------------ *)
(* Legacy fork-join path: spawn fresh domains per region and deal work
   by static striding.  Kept verbatim as the published baseline the
   work-stealing path is benchmarked against, and as an independent
   oracle in the property tests. *)

let map_array_strided pool f xs =
  let n = Array.length xs in
  let workers = Stdlib.min pool.requested n in
  let probe = Probe.local () in
  probe.Probe.pool_tasks <- probe.Probe.pool_tasks + n;
  if workers <= 1 || Domain.DLS.get inside_region then Array.map f xs
  else begin
    probe.Probe.pool_regions <- probe.Probe.pool_regions + 1;
    let results = Array.make n None in
    let slice w () =
      Domain.DLS.set inside_region true;
      Domain.DLS.set current_worker w;
      !worker_start w;
      Fun.protect
        ~finally:(fun () ->
          Probe.drain_local ();
          Domain.DLS.set current_worker 0;
          !worker_finish w)
        (fun () ->
          let i = ref w in
          while !i < n do
            results.(!i) <- Some (try Ok (f xs.(!i)) with e -> Error e);
            i := !i + workers
          done)
    in
    let spawned =
      List.init (workers - 1) (fun k -> Domain.spawn (slice (k + 1)))
    in
    let finally () =
      List.iter Domain.join spawned;
      Domain.DLS.set inside_region false
    in
    Fun.protect ~finally (slice 0);
    Array.map unwrap results
  end
