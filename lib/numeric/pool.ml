type t = { requested : int }

let sequential = { requested = 1 }

let create size =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  { requested = size }

let recommended () = Domain.recommended_domain_count ()

let create_recommended () = create (recommended ())

let size t = t.requested

(* Set while a domain is executing a parallel region, so nested [map]
   calls degrade to the sequential path instead of oversubscribing the
   machine (and so the worker-count arithmetic stays deterministic). *)
let inside_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Which worker slot this domain occupies within the current region;
   0 outside any region (the calling domain doubles as worker 0).
   Observability only — telemetry tags records with it. *)
let current_worker : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker_index () = Domain.DLS.get current_worker

(* Observability hooks, run inside each worker domain around its slice
   of a parallel region.  [Batsched_obs.Sink] installs hooks that tag
   the worker's trace track and flush its span buffer before the domain
   dies; the default hooks do nothing. *)
let worker_start : (int -> unit) ref = ref (fun _ -> ())

let worker_finish : (int -> unit) ref = ref (fun _ -> ())

let set_worker_hooks ~on_start ~on_finish =
  worker_start := on_start;
  worker_finish := on_finish

let map_array pool f xs =
  let n = Array.length xs in
  let workers = Stdlib.min pool.requested n in
  let probe = Probe.local () in
  probe.Probe.pool_tasks <- probe.Probe.pool_tasks + n;
  if workers <= 1 || Domain.DLS.get inside_region then Array.map f xs
  else begin
    probe.Probe.pool_regions <- probe.Probe.pool_regions + 1;
    let results = Array.make n None in
    (* Strided slices: worker [w] computes indices w, w+workers, ...
       Window sweeps and multistart seeds have index-correlated cost,
       so striding balances better than contiguous chunks. *)
    let slice w () =
      Domain.DLS.set inside_region true;
      Domain.DLS.set current_worker w;
      !worker_start w;
      Fun.protect
        ~finally:(fun () ->
          (* Workers other than 0 are about to die with their
             domain-local state; bank their counters and let the
             observability layer collect their spans.  Integer merges
             commute, so the totals are join-order-independent. *)
          Probe.drain_local ();
          Domain.DLS.set current_worker 0;
          !worker_finish w)
        (fun () ->
          let i = ref w in
          while !i < n do
            results.(!i) <- Some (try Ok (f xs.(!i)) with e -> Error e);
            i := !i + workers
          done)
    in
    let spawned =
      List.init (workers - 1) (fun k -> Domain.spawn (slice (k + 1)))
    in
    let finally () =
      List.iter Domain.join spawned;
      Domain.DLS.set inside_region false
    in
    Fun.protect ~finally (slice 0);
    (* Surface results in input order; the first stored exception (in
       index order, matching what a sequential map would have hit
       first) is re-raised. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> Array.to_list (map_array pool f (Array.of_list xs))
