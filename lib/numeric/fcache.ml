(* Open-addressed float-keyed memo table.  See the .mli for the
   contract; the points that matter for the implementation:

   - Keys live in one flat [float array] ([capacity * arity] cells) so
     a probe reads adjacent unboxed floats; values in a second flat
     array; per-slot generation stamps in a [Bytes.t].  Nothing is
     allocated per lookup: hashing goes through
     [Int64.to_int (Int64.bits_of_float x)], whose intermediate boxing
     the compiler eliminates, and misses are reported as [nan] instead
     of an [option].

   - Linear probing, at most [max_probe] slots.  Slots are never
     emptied (generation stamps only ever advance), so probe chains
     stay valid without tombstones: a lookup stops at a never-used slot
     (stamp 0), skips over expired slots, and otherwise compares keys
     bit-for-bit.

   - Generations: a slot is live while its stamp is the current or the
     previous generation.  Every [capacity / 2] insertions the current
     stamp advances, expiring the older half-table in place — the
     replacement for the old [Hashtbl.reset] cliff.  Stamps cycle
     through 1..255; a stamp that wraps around onto a live value can at
     worst resurrect a stale entry of the *same key*, which for a memo
     of a pure function is still the correct value. *)

type t = {
  label : string;
  arity : int;
  mask : int;               (* capacity - 1; capacity is a power of two *)
  keys : float array;       (* capacity * arity *)
  values : float array;     (* capacity *)
  stamps : Bytes.t;         (* 0 = never used, else generation stamp *)
  scratch : float array;    (* arity; the key being looked up / added *)
  mutable current : int;    (* live generation stamp, cycles in 1..255 *)
  mutable previous : int;   (* the other live stamp (0 before first flip) *)
  mutable fresh : int;      (* insertions since the last flip *)
  mutable flips : int;      (* total generation advances, for tests *)
}

let max_probe = 8

let default_capacity = 1 lsl 16

(* Registry of every live table, for the occupancy lines of the --stats
   report.  Domain-local caches register one instance per domain that
   touched them (the report aggregates by label).  Registration happens
   once per table at [create] — never on the lookup path. *)
let registry_mutex = Mutex.create ()

let registry : t list ref = ref []

let create ?(label = "anon") ?(capacity = default_capacity) ~arity () =
  if arity < 1 || arity > 8 then invalid_arg "Fcache.create: arity not in 1..8";
  if capacity < 1 then invalid_arg "Fcache.create: capacity < 1";
  let cap = ref 1 in
  while !cap < capacity || !cap < 2 * max_probe do
    cap := !cap * 2
  done;
  let cap = !cap in
  let t =
    { label;
      arity;
      mask = cap - 1;
      keys = Array.make (cap * arity) 0.0;
      values = Array.make cap 0.0;
      stamps = Bytes.make cap '\000';
      scratch = Array.make arity 0.0;
      current = 1;
      previous = 0;
      fresh = 0;
      flips = 0 }
  in
  Mutex.lock registry_mutex;
  registry := t :: !registry;
  Mutex.unlock registry_mutex;
  t

let capacity t = t.mask + 1

let arity t = t.arity

let generation t = t.flips + 1

let clear t =
  Bytes.fill t.stamps 0 (capacity t) '\000';
  t.current <- 1;
  t.previous <- 0;
  t.fresh <- 0;
  t.flips <- 0

(* SplitMix64-flavoured mixing over the raw float words.  [to_int]
   drops the top bit — irrelevant for a hash — and the final xor-shift
   spreads entropy into the low bits the mask keeps. *)
let[@inline] hash t =
  let h = ref 0x27d4eb2f165667c5 in
  for i = 0 to t.arity - 1 do
    let w = Int64.to_int (Int64.bits_of_float t.scratch.(i)) in
    h := (!h lxor w) * 0x2545F4914F6CDD1D
  done;
  let h = !h in
  let h = h lxor (h lsr 29) in
  (h * 0x2545F4914F6CDD1D) lsr 8

let[@inline] live t stamp = stamp = t.current || stamp = t.previous

(* Bit-for-bit key equality.  Float [=] alone would conflate -0.0 and
   0.0 (different words, so possibly different hash slots — a key could
   then occupy two slots with diverging values); the word comparison
   only runs in the both-zero case, keeping the common path free of
   [Int64] boxing.  NaN keys never match themselves and so always
   miss — callers must not use NaN key components. *)
let[@inline] fbits_equal a b =
  a = b && (a <> 0.0 || Int64.bits_of_float a = Int64.bits_of_float b)

let[@inline] keys_match t slot =
  let base = slot * t.arity in
  let rec eq i =
    i >= t.arity
    || (fbits_equal (t.keys.(base + i) : float) t.scratch.(i) && eq (i + 1))
  in
  eq 0

(* Find the scratch key: value on a live bit-exact match, nan else. *)
let find_scratch t =
  let h = hash t in
  let rec probe i =
    if i >= max_probe then Float.nan
    else begin
      let slot = (h + i) land t.mask in
      let stamp = Char.code (Bytes.unsafe_get t.stamps slot) in
      if stamp = 0 then Float.nan
      else if live t stamp && keys_match t slot then begin
        (* refresh: a hot key survives generation turnover *)
        if stamp <> t.current then
          Bytes.unsafe_set t.stamps slot (Char.unsafe_chr t.current);
        t.values.(slot)
      end
      else probe (i + 1)
    end
  in
  probe 0

let advance_generation t =
  t.previous <- t.current;
  t.current <- (if t.current >= 255 then 1 else t.current + 1);
  t.fresh <- 0;
  t.flips <- t.flips + 1;
  (* one flip expires half a table in place — the eviction event the
     occupancy/hit-rate analysis wants to see counted *)
  let probe = Probe.local () in
  probe.Probe.fcache_evictions <- probe.Probe.fcache_evictions + 1

let store t slot value =
  let base = slot * t.arity in
  Array.blit t.scratch 0 t.keys base t.arity;
  t.values.(slot) <- value;
  Bytes.unsafe_set t.stamps slot (Char.unsafe_chr t.current);
  t.fresh <- t.fresh + 1;
  if 2 * t.fresh >= capacity t then advance_generation t

(* Probe-length distribution, recorded on the insert path only.  The
   lookup path is far too hot to instrument (it runs per contribution
   lookup); inserts happen once per genuine miss, where one guarded
   observe call is noise. *)
let[@inline] observe_probe_len i =
  if !Probe.observing then
    Probe.observe "fcache/probe_len" (float_of_int i)

let add_scratch t value =
  let h = hash t in
  let rec probe i victim =
    if i >= max_probe then begin
      (* window full of live strangers: overwrite the last slot *)
      observe_probe_len max_probe;
      store t (if victim >= 0 then victim else (h + max_probe - 1) land t.mask)
        value
    end
    else begin
      let slot = (h + i) land t.mask in
      let stamp = Char.code (Bytes.unsafe_get t.stamps slot) in
      if stamp = 0 then begin
        (* never-used slot: no live duplicate can sit beyond it *)
        observe_probe_len (i + 1);
        store t (if victim >= 0 then victim else slot) value
      end
      else if live t stamp then
        if keys_match t slot then begin
          t.values.(slot) <- value;
          if stamp <> t.current then
            Bytes.unsafe_set t.stamps slot (Char.unsafe_chr t.current)
        end
        else probe (i + 1) victim
      else probe (i + 1) (if victim >= 0 then victim else slot)
    end
  in
  probe 0 (-1)

let check_arity t expected name =
  if t.arity <> expected then
    invalid_arg
      (Printf.sprintf "Fcache.%s: table has arity %d" name t.arity)

let find3 t k0 k1 k2 =
  check_arity t 3 "find3";
  let s = t.scratch in
  s.(0) <- k0;
  s.(1) <- k1;
  s.(2) <- k2;
  find_scratch t

let add3 t k0 k1 k2 ~value =
  check_arity t 3 "add3";
  let s = t.scratch in
  s.(0) <- k0;
  s.(1) <- k1;
  s.(2) <- k2;
  add_scratch t value

let find5 t k0 k1 k2 k3 k4 =
  check_arity t 5 "find5";
  let s = t.scratch in
  s.(0) <- k0;
  s.(1) <- k1;
  s.(2) <- k2;
  s.(3) <- k3;
  s.(4) <- k4;
  find_scratch t

let add5 t k0 k1 k2 k3 k4 ~value =
  check_arity t 5 "add5";
  let s = t.scratch in
  s.(0) <- k0;
  s.(1) <- k1;
  s.(2) <- k2;
  s.(3) <- k3;
  s.(4) <- k4;
  add_scratch t value

let find6 t k0 k1 k2 k3 k4 k5 =
  check_arity t 6 "find6";
  let s = t.scratch in
  s.(0) <- k0;
  s.(1) <- k1;
  s.(2) <- k2;
  s.(3) <- k3;
  s.(4) <- k4;
  s.(5) <- k5;
  find_scratch t

let add6 t k0 k1 k2 k3 k4 k5 ~value =
  check_arity t 6 "add6";
  let s = t.scratch in
  s.(0) <- k0;
  s.(1) <- k1;
  s.(2) <- k2;
  s.(3) <- k3;
  s.(4) <- k4;
  s.(5) <- k5;
  add_scratch t value

let live_count t =
  let n = ref 0 in
  for slot = 0 to t.mask do
    let stamp = Char.code (Bytes.get t.stamps slot) in
    if stamp <> 0 && live t stamp then incr n
  done;
  !n

let label t = t.label

(* Aggregate (live, capacity, flips) per label across every registered
   instance — one row per distinct cache, merging the per-domain copies
   of a domain-local table.  O(total capacity); report path only. *)
let occupancy () =
  Mutex.lock registry_mutex;
  let tables = !registry in
  Mutex.unlock registry_mutex;
  let rows = ref [] in
  List.iter
    (fun t ->
      let live = live_count t and cap = capacity t in
      match List.assoc_opt t.label !rows with
      | Some (l, c, f) ->
          rows :=
            (t.label, (l + live, c + cap, f + t.flips))
            :: List.remove_assoc t.label !rows
      | None -> rows := (t.label, (live, cap, t.flips)) :: !rows)
    tables;
  List.sort compare
    (List.map (fun (name, (l, c, f)) -> (name, l, c, f)) !rows)
