(** Open-addressed, float-keyed memo table for the numeric hot paths.

    The [Hashtbl] caches this replaces paid, on every lookup, for a
    freshly allocated tuple key, a polymorphic-hash walk over it, and a
    [find_opt] option — plus a wholesale [Hashtbl.reset] cliff when the
    table filled.  An [Fcache] key is a fixed number of floats hashed on
    their [Int64.bits_of_float] words directly into a flat open-addressed
    table: a lookup allocates nothing and touches at most {!max_probe}
    adjacent slots.

    {2 Semantics}

    The table is a {e lossy} memo, not a map: [add] may silently evict
    other entries (bounded probing) and entries expire generationally,
    so a [find] after an [add] is allowed to miss.  What is guaranteed
    is that a hit returns exactly the value stored by the most recent
    [add] for that key — for a cache of a pure function that is the only
    property correctness needs.  Keys are compared bit-for-bit on their
    float words ([nan] keys never match anything; do not use them).

    {2 Eviction}

    Entries are stamped with a generation.  Every [capacity / 2]
    insertions the generation advances and the {e older} half of the
    live entries becomes reclaimable in place — newly inserted entries
    overwrite expired slots as they are probed.  Unlike the previous
    [Hashtbl.reset], a full table therefore never drops its warm recent
    half, and no O(capacity) sweep ever runs.  A hit refreshes its
    entry's stamp, so hot keys survive indefinitely.

    Stored values must not be [nan]: [nan] is the miss sentinel
    returned by [find]. *)

type t

val create : ?label:string -> ?capacity:int -> arity:int -> unit -> t
(** [create ~arity ()] is an empty table whose keys are [arity] floats
    ([1 <= arity <= 8]).  [capacity] (default [65536]) is rounded up to
    a power of two and is the total slot count; the live working set is
    bounded by it and generations turn over every [capacity / 2]
    insertions.  [label] (default ["anon"]) names the table in the
    {!occupancy} report; per-domain instances of a domain-local cache
    share a label and are aggregated.
    @raise Invalid_argument on a non-positive capacity or an arity
    outside [1..8]. *)

val max_probe : int
(** Slots examined per lookup/insert (8): the bound that keeps misses
    O(1) in a table that never tombstones. *)

val capacity : t -> int
val arity : t -> int

val find3 : t -> float -> float -> float -> float
(** [find3 t k0 k1 k2] is the cached value for the key [(k0, k1, k2)],
    or [nan] when absent (test with [Float.is_nan]).  The table must
    have arity 3. @raise Invalid_argument on an arity mismatch. *)

val add3 : t -> float -> float -> float -> value:float -> unit
(** Insert or overwrite.  @raise Invalid_argument on arity mismatch. *)

val find5 : t -> float -> float -> float -> float -> float -> float
(** As {!find3} for 5-float keys. *)

val add5 :
  t -> float -> float -> float -> float -> float -> value:float -> unit
(** As {!add3} for 5-float keys. *)

val find6 : t -> float -> float -> float -> float -> float -> float -> float
(** As {!find3} for 6-float keys. *)

val add6 :
  t -> float -> float -> float -> float -> float -> float -> value:float ->
  unit
(** As {!add3} for 6-float keys. *)

val clear : t -> unit
(** Forget every entry (O(capacity); test/bench helper, not hot path). *)

val live_count : t -> int
(** Number of slots holding a non-expired entry.  O(capacity); always
    [<= capacity t].  Test/introspection helper. *)

val generation : t -> int
(** The current generation stamp (starts at 1, advances every
    [capacity / 2] insertions).  Test/introspection helper. *)

val label : t -> string
(** The name the table registered under. *)

val occupancy : unit -> (string * int * int * int) list
(** One [(label, live, capacity, flips)] row per distinct cache label,
    aggregated over every table instance created so far (per-domain
    copies of a domain-local cache merge into one row).  O(total
    capacity); report/introspection path, not for hot loops.  Flips
    count generation advances — each one expired half a table in
    place. *)
